"""Scenario: consolidating from raw monitoring traces.

The paper assumes each VM's four-tuple (p_on, p_off, R_b, R_e) is known.  In
an operating cloud you only have monitoring traces.  This example closes the
loop:

1. generate "monitoring data" for a heterogeneous fleet (ground truth known
   only to the generator);
2. fit the ON-OFF model to each trace (two-means level split + Markov-chain
   MLE for the switch probabilities);
3. consolidate with the exact Poisson-binomial variant (no parameter
   rounding needed);
4. verify on fresh workload that the CVR bound survives estimation error.

Run:  python examples/parameter_estimation.py
"""

import numpy as np

from repro.analysis.cvr import evaluate_placement_cvr
from repro.core.heterogeneous import HeterogeneousQueuingFFD
from repro.core.types import PMSpec, VMSpec
from repro.viz.ascii_charts import sparkline
from repro.workload.estimation import fit_fleet
from repro.workload.onoff_generator import demand_trace, ensemble_states

RHO = 0.01
N_VMS = 80
OBSERVATION_INTERVALS = 20_000  # ~1 week at sigma = 30 s


def ground_truth_fleet(seed: int) -> list[VMSpec]:
    rng = np.random.default_rng(seed)
    return [
        VMSpec(
            p_on=float(rng.uniform(0.005, 0.03)),
            p_off=float(rng.uniform(0.05, 0.15)),
            r_base=float(rng.uniform(4, 18)),
            r_extra=float(rng.uniform(4, 18)),
        )
        for _ in range(N_VMS)
    ]


def main() -> None:
    truth = ground_truth_fleet(seed=17)

    # 1. "Monitoring": demand samples with measurement noise.
    states = ensemble_states(truth, OBSERVATION_INTERVALS,
                             start_stationary=True, seed=18)
    traces = demand_trace(truth, states)
    traces = traces + np.random.default_rng(19).normal(0, 0.3, traces.shape)
    print("one VM's observed demand (first 120 intervals):")
    print("  " + sparkline(traces[0][:120]))

    # 2. Fit the four-tuple per VM.
    fits = fit_fleet(traces)
    p_on_err = np.mean([abs(f.p_on - v.p_on) / v.p_on
                        for f, v in zip(fits, truth)])
    base_err = np.mean([abs(f.r_base - v.r_base) for f, v in zip(fits, truth)])
    print(f"\nfit quality over {N_VMS} VMs: mean |p_on| error "
          f"{100 * p_on_err:.0f}%, mean R_b error {base_err:.2f} units, "
          f"mean transitions observed "
          f"{np.mean([f.n_transitions for f in fits]):.0f}")

    # 3. Consolidate on the *fitted* specs; margin the demand levels by the
    #    90th percentile of each regime to absorb estimation noise.
    from repro.workload.estimation import fit_onoff

    margin_specs = [
        fit_onoff(traces[i], percentile_margin=0.9).to_vmspec()
        for i in range(N_VMS)
    ]
    pms = [PMSpec(100.0) for _ in range(N_VMS)]
    placer = HeterogeneousQueuingFFD(rho=RHO, d=16)
    placement = placer.place(margin_specs, pms)
    print(f"\nconsolidated onto {placement.n_used_pms} PMs "
          f"(peak provisioning would need "
          f"{int(np.ceil(sum(v.r_peak for v in truth) / 100.0))}+)")

    # 4. Verify against the TRUE workload on a fresh seed.
    stats = evaluate_placement_cvr(placement, truth, pms,
                                   n_steps=40_000, seed=20)
    print(f"verification on fresh ground-truth workload: "
          f"mean CVR {stats['mean']:.4f}, max {stats['max']:.4f} "
          f"(bound rho = {RHO})")
    verdict = "holds" if stats["mean"] <= RHO * 1.5 else "VIOLATED"
    print(f"-> the CVR guarantee {verdict} despite parameters being estimated.")


if __name__ == "__main__":
    main()
