"""Scenario: quoting operational SLAs from the transient analysis.

The paper's rho bounds the *long-run* violation fraction.  An operator also
wants transient answers right after a consolidation event:

1. how quickly does the violation probability ramp up from the all-OFF
   start (is the steady-state CVR already the right number an hour in)?
2. how long, in expectation, until a freshly consolidated PM suffers its
   first violation?
3. once a violation starts, how long does the episode last (this is where
   spike *duration* matters even though it never moves the stationary CVR)?

All three come from the same busy-block chain MapCal builds — no simulation
required (we simulate anyway, to show the curves agree).

Run:  python examples/transient_sla.py
"""

import numpy as np

from repro.core.mapcal import mapcal
from repro.markov.onoff import OnOffChain
from repro.queueing.transient import (
    expected_time_to_violation,
    expected_violation_episode_length,
    violation_probability_curve,
)
from repro.viz.ascii_charts import line_chart

K_VMS = 16          # VMs on the PM
RHO = 0.01
P_ON = 0.01
SIGMA_SECONDS = 30  # one interval


def main() -> None:
    blocks = mapcal(K_VMS, P_ON, 0.09, RHO)
    print(f"PM with {K_VMS} VMs, rho = {RHO}: MapCal reserves {blocks} blocks.\n")

    # 1. Violation-probability ramp from the all-OFF start.
    horizon = 120
    curve = violation_probability_curve(K_VMS, P_ON, 0.09, blocks, horizon)
    chain = OnOffChain(P_ON, 0.09)
    n_pops, steps = 3000, horizon
    states = chain.simulate_ensemble(K_VMS * n_pops, steps, seed=1)
    busy = states.reshape(n_pops, K_VMS, steps + 1).sum(axis=1)
    empirical = (busy > blocks).mean(axis=0)
    print(line_chart(
        {"analytic": curve.tolist(), "empirical": empirical.tolist()},
        height=8, width=60,
        title=f"P[violation] after consolidation (reaches {curve[-1]:.4f})",
    ))
    settle = int(np.argmax(curve >= 0.95 * curve[-1]))
    print(f"\nThe ramp settles within ~{settle} intervals "
          f"({settle * SIGMA_SECONDS / 60:.0f} minutes): after that, quoting "
          f"the stationary CVR is honest.\n")

    # 2. Expected time to the first violation.
    ttv = expected_time_to_violation(K_VMS, P_ON, 0.09, blocks)
    print(f"Expected time to first violation: {ttv:,.0f} intervals "
          f"(~{ttv * SIGMA_SECONDS / 3600:.1f} hours).")

    # 3. Episode length vs spike duration (same stationary CVR!).
    print("\nEpisode length depends on spike duration, CVR does not:")
    print(f"{'mean spike (intervals)':>23s} {'blocks':>6s} "
          f"{'CVR bound':>9s} {'mean episode':>12s} {'time-to-violation':>18s}")
    for mean_burst in (2, 11.1, 50):
        p_off = 1.0 / mean_burst
        p_on = p_off / 9.0  # hold q = 0.1
        k_blocks = mapcal(K_VMS, p_on, p_off, RHO)
        episode = expected_violation_episode_length(K_VMS, p_on, p_off, k_blocks)
        t_first = expected_time_to_violation(K_VMS, p_on, p_off, k_blocks)
        print(f"{mean_burst:23.1f} {k_blocks:6d} {RHO:9.3f} "
              f"{episode:12.2f} {t_first:18,.0f}")
    print("\n-> long spikes concentrate the same violation budget into "
          "fewer, longer episodes; short spikes spread it into frequent "
          "blips. An SLA about *outage duration* needs the episode column, "
          "not just rho.")


if __name__ == "__main__":
    main()
