"""Quickstart: burstiness-aware consolidation in ten lines.

Builds a random bursty VM fleet, consolidates it with the paper's QueuingFFD
and the two classic baselines, and verifies the headline trade-off: QUEUE
packs far tighter than peak provisioning while keeping every PM's capacity
violation ratio (CVR) below the threshold rho.

Run:  python examples/quickstart.py
"""

from repro import QueuingFFD, ffd_by_base, ffd_by_peak, generate_pattern_instance, mapcal
from repro.analysis.cvr import evaluate_placement_cvr

RHO = 0.01  # allow capacity violations at most 1% of the time
D = 16      # at most 16 VMs per PM


def main() -> None:
    # 1. How many reservation blocks do k collocated bursty VMs need?
    #    (spikes arrive with prob 0.01/interval and end with prob 0.09/interval)
    for k in (4, 8, 16):
        print(f"MapCal: {k:2d} VMs need only {mapcal(k, 0.01, 0.09, RHO)} "
              f"spike blocks (not {k}) for CVR <= {RHO}")

    # 2. A fleet of 200 VMs with normal-sized spikes (R_b = R_e pattern).
    vms, pms = generate_pattern_instance("equal", n_vms=200, seed=42)

    # 3. Consolidate three ways.
    placements = {
        "QUEUE (this paper)": QueuingFFD(rho=RHO, d=D).place(vms, pms),
        "RP (peak provisioning)": ffd_by_peak(max_vms_per_pm=D).place(vms, pms),
        "RB (normal provisioning)": ffd_by_base(max_vms_per_pm=D).place(vms, pms),
    }

    # 4. Compare PMs used and measured CVR on a simulated 20k-interval run.
    print(f"\n{'strategy':26s} {'PMs used':>8s} {'mean CVR':>9s} {'max CVR':>9s}")
    for name, placement in placements.items():
        stats = evaluate_placement_cvr(placement, vms, pms, n_steps=20_000, seed=7)
        print(f"{name:26s} {placement.n_used_pms:8d} "
              f"{stats['mean']:9.4f} {stats['max']:9.4f}")

    queue, rp = placements["QUEUE (this paper)"], placements["RP (peak provisioning)"]
    saved = 100 * (rp.n_used_pms - queue.n_used_pms) / rp.n_used_pms
    print(f"\nQUEUE uses {saved:.0f}% fewer PMs than peak provisioning while "
          f"keeping CVR bounded by rho={RHO}.")


if __name__ == "__main__":
    main()
