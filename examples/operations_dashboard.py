"""Scenario: an operations review of consolidation strategies.

One call per strategy, every operational dimension at once: the Scenario
facade composes the placer with migration pricing, a linear energy model,
PM failure injection and per-VM fairness accounting, all over a shared
workload stream so differences are attributable to placement alone.

Run:  python examples/operations_dashboard.py
"""

from repro import QueuingFFD, RBExPlacer, ffd_by_base, ffd_by_peak
from repro.simulation.costmodel import MigrationCostModel
from repro.simulation.energy import EnergyModel
from repro.simulation.scenario import compare_scenarios
from repro.viz.ascii_charts import bar_chart
from repro.workload.patterns import generate_pattern_instance

N_VMS = 120
N_INTERVALS = 200


def main() -> None:
    vms, pms = generate_pattern_instance("equal", N_VMS, seed=31)

    reports = compare_scenarios(
        vms, pms,
        {
            "QUEUE": QueuingFFD(rho=0.01, d=16),
            "RP": ffd_by_peak(max_vms_per_pm=16),
            "RB": ffd_by_base(max_vms_per_pm=16),
            "RB-EX": RBExPlacer(delta=0.3, max_vms_per_pm=16),
        },
        n_intervals=N_INTERVALS,
        seed=32,
        cost_model=MigrationCostModel(bandwidth_units_per_interval=8.0),
        energy_model=EnergyModel(idle_power=150.0, peak_power=300.0),
        # rare crashes: each one scatters the victims via evacuation, so a
        # high rate would let fragmentation dominate the packing comparison
        failures={"failure_probability": 0.0003, "repair_probability": 0.1},
    )

    header = (f"{'strategy':8s} {'PMs':>4s} {'migr':>5s} {'downtime':>8s} "
              f"{'mean CVR':>8s} {'energy kWh':>10s} {'crashes':>7s} "
              f"{'stranded':>8s}")
    print(header)
    print("-" * len(header))
    for name, r in reports.items():
        print(f"{name:8s} {r.final_pms_used:4d} {r.total_migrations:5d} "
              f"{r.migration_downtime_seconds:7.1f}s "
              f"{r.mean_cvr:8.4f} {r.energy_joules / 3.6e6:10.2f} "
              f"{r.failures.failures:7d} "
              f"{r.failures.stranded_vm_intervals:8d}")

    print()
    print(bar_chart(
        {name: float(r.total_migrations) for name, r in reports.items()},
        title="migrations over the evaluation period", value_fmt=".0f",
    ))
    print()
    print(bar_chart(
        {name: r.energy_joules / 3.6e6 for name, r in reports.items()},
        title="energy (kWh)", value_fmt=".2f",
    ))

    print("\nfull QUEUE report:")
    print(reports["QUEUE"].summary())


if __name__ == "__main__":
    main()
