"""Scenario: capacity planning with the queueing model directly.

Uses the finite-source Geom/Geom/K machinery (the paper's analytical core)
as a standalone planning tool:

1. how reservation needs scale with colocation density and with the CVR
   budget rho;
2. how spike *duration* changes the answer even at a fixed spike *rate*
   (the time dimension that distinguishes this model from stochastic
   bin packing);
3. a two-resource (CPU + memory) consolidation with the multi-dimensional
   extension of Section IV-E.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import FiniteSourceGeomGeomK, mapcal
from repro.core.multidim import MultiDimFirstFit, MultiDimPMSpec, MultiDimVMSpec
from repro.placement.sbp import StochasticBinPacker
from repro.core.types import PMSpec, VMSpec
from repro.placement.ffd import ffd_by_peak


def main() -> None:
    # --- 1. blocks needed vs density and rho -------------------------------
    print("blocks K needed (p_on=0.01, p_off=0.09):")
    print(f"{'k VMs':>6s} " + " ".join(f"rho={r:<5g}" for r in (0.05, 0.01, 0.001)))
    for k in (4, 8, 12, 16, 24, 32):
        row = [mapcal(k, 0.01, 0.09, r) for r in (0.05, 0.01, 0.001)]
        print(f"{k:6d} " + " ".join(f"{K:9d}" for K in row))
    print("-> reservation grows sublinearly in k: statistical multiplexing.")

    # --- 2. the time dimension matters --------------------------------------
    # Fix the stationary ON-probability at 10% but vary burst duration.
    print("\nsame 10% ON fraction, different burst durations (k=16, rho=0.01):")
    for mean_burst in (2, 5, 10, 50):
        p_off = 1.0 / mean_burst
        p_on = p_off / 9.0  # keeps q = p_on/(p_on+p_off) = 0.1
        model = FiniteSourceGeomGeomK(16, p_on, p_off)
        K = model.min_windows_for_overflow(0.01)
        print(f"  mean burst {mean_burst:3d} intervals -> K = {K}, "
              f"P[demand > K] = {model.overflow_probability(K):.4f}")
    print("-> the stationary tail is duration-invariant (binomial marginal), "
          "which is why the paper's K depends on (k, q, rho); duration shows "
          "up in how long each violation episode lasts, not how often.")

    # A normal-approximation packer (stochastic bin packing) sees only q too,
    # but approximates the binomial tail with a Gaussian: compare admissions.
    sbp = StochasticBinPacker(epsilon=0.01, max_vms_per_pm=16)
    vm = VMSpec(0.01, 0.09, 10.0, 10.0)
    mu, var = sbp.effective_mean_var(vm)
    print(f"\nSBP effective size of a (10+10) VM: "
          f"{mu + sbp.z_score * np.sqrt(var):.2f} units vs 20 peak / 10 base")

    # --- 3. multi-dimensional consolidation ---------------------------------
    rng = np.random.default_rng(3)
    vms = [
        MultiDimVMSpec(
            p_on=0.01, p_off=0.09,
            r_base=(float(rng.uniform(2, 10)), float(rng.uniform(4, 20))),
            r_extra=(float(rng.uniform(2, 10)), float(rng.uniform(2, 10))),
        )
        for _ in range(100)
    ]
    pms = [MultiDimPMSpec(capacity=(100.0, 160.0)) for _ in range(100)]
    md = MultiDimFirstFit(rho=0.01, d=16).place(vms, pms)
    # Peak-provisioned reference on the tighter dimension for scale:
    proj = [v.projected(0) for v in vms]
    rp = ffd_by_peak(max_vms_per_pm=16).place(proj, [PMSpec(100.0)] * 100)
    print(f"\nCPU+memory fleet: QUEUE-MD uses {md.n_used_pms} PMs "
          f"(peak provisioning on CPU alone would use {rp.n_used_pms}).")


if __name__ == "__main__":
    main()
