"""Scenario: an elastic cloud with VMs arriving and departing online.

The paper's Section IV-E sketch, exercised: single arrivals first-fit into
the reserved-capacity fleet, departures shrink the reservations
automatically, and a batch arrival reuses Algorithm 2's clustering order.
We track how the used-PM count and total reserved resources breathe as the
population changes.

Run:  python examples/online_arrivals.py
"""

import numpy as np

from repro import OnlineConsolidator, QueuingFFD, VMSpec
from repro.workload.patterns import make_pms

RNG = np.random.default_rng(5)


def random_vm() -> VMSpec:
    """A web-server-ish VM with a random footprint and normal-sized spike."""
    r_base = float(RNG.uniform(4, 16))
    return VMSpec(p_on=0.01, p_off=0.09, r_base=r_base,
                  r_extra=float(RNG.uniform(0.5, 1.5)) * r_base)


def fleet_summary(consolidator: OnlineConsolidator) -> str:
    used = consolidator.n_used_pms
    reserved = sum(
        consolidator.state_of(j).reserved for j in range(consolidator.n_pms)
    )
    return (f"{consolidator.n_vms:3d} VMs on {used:2d} PMs, "
            f"{reserved:7.1f} units reserved for spikes")


def main() -> None:
    pms = make_pms(64, seed=5)
    consolidator = OnlineConsolidator(pms, QueuingFFD(rho=0.01, d=16))

    # Morning: 40 single arrivals trickle in.
    ids = []
    for _ in range(40):
        vm_id, pm = consolidator.admit(random_vm())
        ids.append(vm_id)
    print("after 40 single arrivals:  ", fleet_summary(consolidator))

    # Midday: a tenant deploys a 30-VM batch; Algorithm 2 ordering applies.
    batch = [random_vm() for _ in range(30)]
    placed = consolidator.admit_batch(batch)
    ids.extend(vm_id for vm_id, _ in placed)
    print("after a 30-VM batch:       ", fleet_summary(consolidator))

    # Evening: half the morning VMs shut down; reservations shrink in place.
    for vm_id in ids[:20]:
        consolidator.depart(vm_id)
    print("after 20 departures:       ", fleet_summary(consolidator))

    # The per-PM view: block counts follow the mapping table as counts change.
    print("\nper-PM snapshot (used PMs):")
    for j in range(consolidator.n_pms):
        state = consolidator.state_of(j)
        if not state.is_empty:
            print(f"  PM {j:2d}: {state.count:2d} VMs, "
                  f"{state.n_blocks} blocks x {state.max_extra:5.1f} = "
                  f"{state.reserved:6.1f} reserved, "
                  f"headroom {state.headroom:6.1f}")


if __name__ == "__main__":
    main()
