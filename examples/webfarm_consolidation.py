"""Scenario: consolidating a bursty web-server farm with live migration.

This is the paper's Section V-D setting end-to-end: a farm of web-server VMs
whose user populations surge aperiodically (flash crowds), consolidated with
three strategies and then run for 100 scheduling intervals under a dynamic
scheduler that migrates VMs off overloaded hosts.  We report the paper's two
runtime metrics (migrations = performance, final PMs = energy) plus a
watt-level energy estimate from the linear power model.

Run:  python examples/webfarm_consolidation.py
"""

import numpy as np

from repro import QueuingFFD, RBExPlacer, ffd_by_base
from repro.markov.onoff import OnOffChain
from repro.simulation.energy import EnergyModel
from repro.simulation.scheduler import run_simulation
from repro.workload.patterns import make_pms, table_i_vms
from repro.workload.webserver import WebServerWorkload

N_VMS = 120
N_INTERVALS = 100       # the paper's 100 sigma evaluation period
INTERVAL_SECONDS = 30.0  # sigma


def main() -> None:
    # 1. Peek at one web server's request trace (the paper's Fig. 8).
    chain = OnOffChain(p_on=0.01, p_off=0.09)
    workload = WebServerWorkload(chain, normal_users=400, peak_users=1200,
                                 interval=INTERVAL_SECONDS)
    states, requests = workload.generate(60, seed=1)
    spikes = int(states.sum())
    print(f"sample web server: {spikes}/60 intervals spiking, request rate "
          f"{requests[states == 0].mean():.0f}/interval normal vs "
          f"{requests[states == 1].mean():.0f}/interval in flash crowd"
          if spikes else
          f"sample web server: no spike in 60 intervals "
          f"(expected every ~{1/0.01:.0f})")

    # 2. A 120-VM farm drawn from the paper's Table I specs (Rb=Re pattern).
    vms = table_i_vms("equal", N_VMS, seed=11)
    pms = make_pms(N_VMS, seed=11)

    strategies = {
        "QUEUE": QueuingFFD(rho=0.01, d=16),
        "RB": ffd_by_base(max_vms_per_pm=16),
        "RB-EX": RBExPlacer(delta=0.3, max_vms_per_pm=16),
    }

    # 3. Place and run each strategy on identical workload randomness.
    energy_model = EnergyModel(idle_power=150.0, peak_power=300.0)
    print(f"\n{'strategy':8s} {'initial PMs':>11s} {'migrations':>10s} "
          f"{'final PMs':>9s} {'energy kWh':>10s} {'worst CVR':>9s}")
    for name, placer in strategies.items():
        placement = placer.place(vms, pms)
        sim = run_simulation(vms, pms, placement,
                             n_intervals=N_INTERVALS, seed=99)
        kwh = energy_model.run_energy(
            sim.record.pms_used_series, interval_seconds=INTERVAL_SECONDS
        ) / 3.6e6
        worst_cvr = float(sim.record.cvr_per_pm().max())
        print(f"{name:8s} {sim.initial_pms_used:11d} {sim.total_migrations:10d} "
              f"{sim.final_pms_used:9d} {kwh:10.2f} {worst_cvr:9.3f}")

    print("\nReading the table: RB packs tightest but thrashes with migrations "
          "(each one risks downtime for the VM and CPU overhead for both "
          "hosts); QUEUE pays a few extra PMs up front and the farm then "
          "runs essentially migration-free.")


if __name__ == "__main__":
    main()
