"""Tests for repro.workload.webserver — the Fig. 8 request generator."""

import numpy as np
import pytest

from repro.markov.onoff import OnOffChain
from repro.workload.webserver import (
    THINK_TIME_FLOOR,
    UserPool,
    WebServerWorkload,
)


class TestUserPool:
    def test_effective_mean_think_time(self):
        pool = UserPool(10)
        # E[max(X, 0.1)] = 0.1 + exp(-0.1) for Exp(1)
        assert pool.effective_mean_think_time == pytest.approx(
            0.1 + np.exp(-0.1), abs=1e-12
        )

    def test_no_floor_reduces_to_plain_mean(self):
        pool = UserPool(10, think_time_floor=0.0)
        assert pool.effective_mean_think_time == pytest.approx(1.0)

    def test_request_rate_scales_with_users(self):
        r1 = UserPool(100).request_rate
        r2 = UserPool(200).request_rate
        assert r2 == pytest.approx(2 * r1)

    def test_zero_users(self):
        assert UserPool(0).request_rate == 0.0

    def test_sample_think_times_floored(self):
        pool = UserPool(1)
        samples = pool.sample_think_times(10_000, seed=0)
        assert samples.min() >= THINK_TIME_FLOOR
        assert samples.mean() == pytest.approx(pool.effective_mean_think_time,
                                               rel=0.05)

    def test_requests_in_interval_matches_rate(self):
        pool = UserPool(20)
        counts = pool.requests_in_interval(interval=5.0, n_intervals=40, seed=1)
        expected = pool.request_rate * 5.0
        assert counts.mean() == pytest.approx(expected, rel=0.1)

    def test_requests_shape(self):
        counts = UserPool(3).requests_in_interval(1.0, 7, seed=0)
        assert counts.shape == (7,)
        assert counts.dtype == np.int64

    def test_validation(self):
        with pytest.raises(ValueError):
            UserPool(-1)
        with pytest.raises(ValueError):
            UserPool(1, think_time_mean=0.0)
        with pytest.raises(ValueError):
            UserPool(1, think_time_floor=-0.5)


class TestWebServerWorkload:
    @pytest.fixture
    def workload(self):
        return WebServerWorkload(OnOffChain(0.05, 0.2), normal_users=400,
                                 peak_users=1200, interval=30.0)

    def test_generate_shapes(self, workload):
        states, counts = workload.generate(50, seed=0)
        assert states.shape == (50,)
        assert counts.shape == (50,)

    def test_levels_follow_state(self, workload):
        states, counts = workload.generate(3000, seed=1)
        off_mean = counts[states == 0].mean()
        on_mean = counts[states == 1].mean()
        assert on_mean > 2.5 * off_mean  # 1200 vs 400 users
        expected_off = UserPool(400).request_rate * 30.0
        assert off_mean == pytest.approx(expected_off, rel=0.05)

    def test_exact_mode_agrees_with_poisson_mode(self):
        wl = WebServerWorkload(OnOffChain(0.05, 0.2), normal_users=30,
                               peak_users=90, interval=5.0)
        _, fast = wl.generate(200, seed=3, exact=False)
        _, slow = wl.generate(200, seed=3, exact=True)
        assert slow.mean() == pytest.approx(fast.mean(), rel=0.15)

    def test_peak_below_normal_rejected(self):
        with pytest.raises(ValueError, match="peak_users"):
            WebServerWorkload(OnOffChain(0.01, 0.09), 100, 50)

    def test_reproducible(self, workload):
        a = workload.generate(100, seed=9)
        b = workload.generate(100, seed=9)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_burstiness_visible(self, workload):
        from repro.workload.stats import index_of_dispersion

        _, counts = workload.generate(5000, seed=2)
        assert index_of_dispersion(counts) > 10.0
