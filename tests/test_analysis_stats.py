"""Tests for repro.analysis.stats — batch means and warm-up detection."""

import numpy as np
import pytest

from repro.analysis.stats import batch_means, required_runs, warmup_cutoff


class TestBatchMeans:
    def test_mean_matches_sample_mean(self):
        x = np.arange(100.0)
        r = batch_means(x, n_batches=10)
        assert r.mean == pytest.approx(x.mean())
        assert r.batch_size == 10
        assert r.n_batches == 10

    def test_interval_contains_truth_for_iid(self):
        rng = np.random.default_rng(0)
        hits = 0
        for i in range(50):
            x = rng.normal(5.0, 1.0, 2000)
            r = batch_means(x, n_batches=20, confidence=0.95)
            hits += r.contains(5.0)
        assert hits >= 42  # ~95% coverage, allow sampling slack

    def test_half_width_shrinks_with_data(self):
        rng = np.random.default_rng(1)
        short = batch_means(rng.normal(0, 1, 400), n_batches=20)
        long = batch_means(rng.normal(0, 1, 40_000), n_batches=20)
        assert long.half_width < short.half_width

    def test_correlated_series_wider_than_iid_naive(self):
        """Batch means must widen the interval for a positively correlated
        series relative to the (wrong) iid formula."""
        from repro.markov.onoff import OnOffChain

        traj = OnOffChain(0.01, 0.09).simulate(100_000, seed=2).astype(float)
        r = batch_means(traj, n_batches=20)
        naive_se = traj.std(ddof=1) / np.sqrt(traj.size)
        assert r.half_width > 2 * naive_se

    def test_constant_series_zero_width(self):
        r = batch_means(np.full(100, 3.0), n_batches=10)
        assert r.mean == 3.0
        assert r.half_width == 0.0
        assert r.low == r.high == 3.0

    def test_trailing_remainder_dropped(self):
        x = np.concatenate([np.zeros(100), np.array([1e9] * 3)])
        r = batch_means(x, n_batches=10)  # batch=10, uses first 100 only
        assert r.mean == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_means(np.arange(5.0), n_batches=10)
        with pytest.raises(ValueError):
            batch_means(np.arange(100.0), n_batches=1)
        with pytest.raises(ValueError):
            batch_means(np.ones((10, 10)))
        with pytest.raises(ValueError):
            batch_means(np.arange(100.0), confidence=1.0)


class TestWarmupCutoff:
    def test_detects_transient(self):
        # 200 biased samples then 2000 stationary ones.
        rng = np.random.default_rng(3)
        x = np.concatenate([
            np.linspace(10, 0, 200) + rng.normal(0, 0.1, 200),
            rng.normal(0, 0.1, 2000),
        ])
        cut = warmup_cutoff(x, batch=5)
        assert 100 <= cut <= 600

    def test_stationary_series_small_cutoff(self):
        rng = np.random.default_rng(4)
        x = rng.normal(0, 1, 2000)
        assert warmup_cutoff(x) <= 500  # capped at half anyway

    def test_short_series_returns_zero(self):
        assert warmup_cutoff(np.arange(10.0), batch=5) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            warmup_cutoff(np.empty(0))


class TestRequiredRuns:
    def test_formula(self):
        # z(95%) ~ 1.96: n = (1.96 * 2 / 0.5)^2 ~ 61.5 -> 62
        assert required_runs(0.5, 2.0) == 62

    def test_zero_std(self):
        assert required_runs(0.1, 0.0) == 2

    def test_tighter_target_needs_more(self):
        assert required_runs(0.1, 1.0) > required_runs(0.5, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            required_runs(0.0, 1.0)
        with pytest.raises(ValueError):
            required_runs(0.5, -1.0)
