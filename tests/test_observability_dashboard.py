"""Observatory end-to-end: live runs, JSONL replay, dashboard, compare."""

from __future__ import annotations

import io

import pytest

from repro.experiments.runner import main
from repro.observability import Observatory, render_frame, render_html
from repro.observability.dashboard import (
    EXPERIMENT_ALIASES,
    RECIPES,
    build_scenario,
    resolve_experiment,
)
from repro.telemetry import JSONLSink, Telemetry


def observed_run(tmp_path, *, overcommit=1.0, n_intervals=60, seed=11,
                 name="run.jsonl"):
    """Run a small observed scenario; return (observatory, trace path)."""
    trace = tmp_path / name
    obs = Observatory()
    tel = Telemetry(JSONLSink(trace))
    scenario = build_scenario("fig6", observatory=obs, telemetry=tel,
                              overcommit=overcommit, seed=seed)
    scenario.run(n_intervals, seed=seed)
    tel.close()
    return obs, trace


class TestLiveObservation:
    def test_observatory_tracks_every_interval(self, tmp_path):
        obs, _ = observed_run(tmp_path)
        assert obs.recorder.ticks == 60
        assert obs.recorder.last_time == 59
        assert obs.recorder.pms  # per-PM state populated

    def test_overcommitted_run_fires_cvr_alert(self, tmp_path):
        obs, _ = observed_run(tmp_path, overcommit=1.6)
        assert obs.slo.fired_total >= 1
        assert any(s.rule == "cvr_burn" for s in obs.slo.timeline)
        # burn far above budget: CVR near 0.5 against rho=0.01
        assert obs.recorder.cvr() > 0.05

    def test_nominal_run_is_quiet(self, tmp_path):
        obs, _ = observed_run(tmp_path)
        assert obs.slo.fired_total == 0
        assert obs.drift.flagged_pms == []


class TestReplay:
    def test_replay_matches_live_state(self, tmp_path):
        obs, trace = observed_run(tmp_path, overcommit=1.6)
        replayed = Observatory.from_jsonl(trace)
        assert replayed.recorder.ticks == obs.recorder.ticks
        assert replayed.recorder.cvr() == pytest.approx(obs.recorder.cvr())
        # the replay recomputes the same alert timeline...
        assert ([(s.rule, s.fired_at, s.resolved_at)
                 for s in replayed.slo.timeline]
                == [(s.rule, s.fired_at, s.resolved_at)
                    for s in obs.slo.timeline])
        # ...and also sees the recorded alert events in the stream
        recorded_fired = [e for e in replayed.recorded_alerts
                          if e.kind == "alert_fired"]
        assert len(recorded_fired) == obs.slo.fired_total

    def test_replay_runs_no_simulator(self, tmp_path, monkeypatch):
        _, trace = observed_run(tmp_path)
        import repro.simulation.engine as engine_mod

        def boom(self, *a, **k):  # pragma: no cover - must not be reached
            raise AssertionError("simulator executed during replay")

        monkeypatch.setattr(engine_mod.SimulationEngine, "run", boom)
        replayed = Observatory.from_jsonl(trace)
        assert replayed.recorder.ticks == 60

    def test_replay_tolerates_corrupt_lines(self, tmp_path):
        _, trace = observed_run(tmp_path)
        text = trace.read_text().splitlines()
        text.insert(3, "{truncated")
        text.insert(10, '{"kind": "no_such_kind", "time": 1}')
        trace.write_text("\n".join(text) + "\n")
        replayed = Observatory.from_jsonl(trace)
        assert replayed.skipped_lines == 2
        assert replayed.recorder.ticks == 60


class TestRendering:
    def test_frame_renders_alerts_and_offenders(self, tmp_path):
        obs, _ = observed_run(tmp_path, overcommit=1.6)
        frame = render_frame(obs)
        assert "cvr_burn" in frame
        assert "worst offenders" in frame
        assert "utilization" in frame

    def test_frame_on_empty_observatory(self):
        frame = render_frame(Observatory())
        assert "(no data)" in frame
        assert "alerts: none firing" in frame

    def test_html_self_contained_and_escaped(self, tmp_path):
        obs, _ = observed_run(tmp_path)
        html = render_html(obs, title="smoke <test>")
        assert html.startswith("<!DOCTYPE html>")
        assert "smoke <test>" not in html  # title is not escaped into <pre>
        assert "http" not in html  # no external assets
        assert "<pre>" in html


class TestRecipes:
    def test_aliases_resolve(self):
        assert resolve_experiment("fig6_cvr") == "fig6"
        for alias, target in EXPERIMENT_ALIASES.items():
            assert target in RECIPES
        with pytest.raises(ValueError, match="unknown experiment"):
            resolve_experiment("fig99")

    def test_overcommit_validated(self):
        with pytest.raises(ValueError, match="overcommit"):
            build_scenario("fig6", observatory=Observatory(), overcommit=0.5)


class TestCLI:
    def test_dashboard_once_with_html_and_jsonl(self, tmp_path, capsys):
        html = tmp_path / "obs.html"
        jsonl = tmp_path / "run.jsonl"
        rc = main(["dashboard", "fig6_cvr", "--once", "-n", "40",
                   "--html", str(html), "--jsonl", str(jsonl)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "run observatory" in out or "live:" in out
        assert html.exists() and "<pre>" in html.read_text()
        assert jsonl.exists() and jsonl.stat().st_size > 0

    def test_dashboard_from_jsonl(self, tmp_path, capsys):
        _, trace = observed_run(tmp_path, overcommit=1.6)
        rc = main(["dashboard", "x", "--from-jsonl", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cvr_burn" in out

    def test_dashboard_inject_drift_flags_pms(self, capsys):
        rc = main(["dashboard", "fig6", "--once", "-n", "200",
                   "--inject-drift", "0.08", "--drift-at", "40"])
        assert rc == 0
        assert "MODEL DRIFT" in capsys.readouterr().out

    def test_compare_identical_traces_no_regression(self, tmp_path, capsys):
        _, a = observed_run(tmp_path, name="a.jsonl")
        rc = main(["compare", str(a), str(a)])
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_flags_regression(self, tmp_path, capsys):
        _, a = observed_run(tmp_path, name="a.jsonl")
        _, b = observed_run(tmp_path, overcommit=1.6, name="b.jsonl")
        rc = main(["compare", str(a), str(b)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "cvr_window" in out

    def test_compare_missing_file(self, tmp_path, capsys):
        _, a = observed_run(tmp_path, name="a.jsonl")
        rc = main(["compare", str(a), str(tmp_path / "nope.jsonl")])
        assert rc == 2

    def test_dashboard_follow_renders_frames(self, tmp_path):
        from repro.observability.dashboard import run_dashboard

        buf = io.StringIO()
        rc = run_dashboard("fig6", n_intervals=30, refresh=10, follow=True,
                           stream=buf)
        assert rc == 0
        # intermediate frames plus the final one
        assert buf.getvalue().count("live: fig6") >= 3

    def test_dashboard_custom_rules_file(self, tmp_path, capsys):
        import json

        rules = [{
            "name": "always_cvr", "metric": "cvr", "budget": 0.5,
            "fast": {"window": 2, "factor": 0.001},
            "slow": {"window": 4, "factor": 0.001},
        }]
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": rules}))
        rc = main(["dashboard", "fig6", "--once", "-n", "30",
                   "--rules", str(path), "--overcommit", "1.6"])
        assert rc == 0
        assert "always_cvr" in capsys.readouterr().out
