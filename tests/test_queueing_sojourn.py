"""Sojourn-time formulary and the percentile-based Cs² estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.queueing import (
    FiniteSourceGeomGeomK,
    kingman_waiting_time,
    mean_sojourn,
    sojourn_distribution,
    sojourn_tail,
)
from repro.workload import Z99, fit_cs2_from_percentiles


class TestSojournDistribution:
    def test_unit_capacity_sojourn_is_position(self):
        """With c = 1, a request that finds j queued departs after j + 1."""
        pmf = [0.5, 0.3, 0.2]
        out = sojourn_distribution(pmf, 1)
        assert out[0] == 0.0
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(0.3)
        assert out[3] == pytest.approx(0.2)

    def test_batch_capacity_groups_positions(self):
        """With c = 2, positions 1-2 depart in 1 interval, 3-4 in 2, ..."""
        pmf = [0.25, 0.25, 0.25, 0.25]  # j = 0..3 -> positions 1..4
        out = sojourn_distribution(pmf, 2)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(0.5)

    def test_distribution_is_normalized(self):
        model = FiniteSourceGeomGeomK(12, 0.1, 0.3)
        pmf = model.stationary_distribution()
        out = sojourn_distribution(pmf, 3)
        assert out.sum() == pytest.approx(1.0)

    def test_tail_consistent_with_distribution(self):
        pmf = [0.5, 0.3, 0.2]
        dist = sojourn_distribution(pmf, 1)
        for t in range(5):
            assert sojourn_tail(pmf, 1, t) == pytest.approx(
                float(dist[t + 1:].sum()))
        assert sojourn_tail(pmf, 1, 10) == 0.0

    def test_mean_sojourn(self):
        pmf = [0.5, 0.5]
        # half the arrivals take 1 interval, half take 2
        assert mean_sojourn(pmf, 1) == pytest.approx(1.5)
        # with capacity 2 both depart in 1 interval
        assert mean_sojourn(pmf, 2) == pytest.approx(1.0)

    def test_capacity_speeds_up_stochastically(self):
        model = FiniteSourceGeomGeomK(16, 0.1, 0.3)
        pmf = model.stationary_distribution()
        means = [mean_sojourn(pmf, c) for c in (1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(means, means[1:]))

    def test_validation(self):
        with pytest.raises(ValueError, match="sum to 1"):
            sojourn_distribution([0.5, 0.2], 1)
        with pytest.raises(ValueError, match="non-negative"):
            sojourn_distribution([1.5, -0.5], 1)
        with pytest.raises(ValueError, match="capacity"):
            sojourn_distribution([1.0], 0)


class TestKingman:
    def test_md1_like_limit(self):
        """Deterministic service (Cs² = 0), Poisson arrivals (Ca² = 1):
        Kingman reduces to rho / (1 - rho) * E[S] / 2 (the M/D/1 wait)."""
        w = kingman_waiting_time(0.8, 1.0, 0.0, 2.0)
        assert w == pytest.approx(0.8 / 0.2 * 0.5 * 2.0)

    def test_scales_with_variability(self):
        lo = kingman_waiting_time(0.7, 1.0, 0.5, 1.0)
        hi = kingman_waiting_time(0.7, 1.0, 4.0, 1.0)
        assert hi > lo
        assert hi / lo == pytest.approx((1.0 + 4.0) / (1.0 + 0.5))

    def test_explodes_toward_saturation(self):
        assert kingman_waiting_time(0.99, 1.0, 1.0, 1.0) > \
            kingman_waiting_time(0.9, 1.0, 1.0, 1.0) * 5

    def test_validation(self):
        with pytest.raises(ValueError, match="rho"):
            kingman_waiting_time(1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="coefficients"):
            kingman_waiting_time(0.5, -1.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="mean_service"):
            kingman_waiting_time(0.5, 1.0, 1.0, 0.0)


class TestCs2FromPercentiles:
    def test_recovers_known_lognormal(self):
        """Percentiles of an exact lognormal recover sigma and Cs²."""
        mu, sigma = 1.2, 0.6
        p50 = float(np.exp(mu))
        p99 = float(np.exp(mu + sigma * Z99))
        fit = fit_cs2_from_percentiles(p50, p99)
        assert fit.mu == pytest.approx(mu)
        assert fit.sigma == pytest.approx(sigma)
        assert fit.cs2 == pytest.approx(np.expm1(sigma * sigma))
        assert fit.mean == pytest.approx(np.exp(mu + sigma * sigma / 2))

    def test_degenerate_distribution_has_zero_variability(self):
        fit = fit_cs2_from_percentiles(4.0, 4.0)
        assert fit.sigma == 0.0
        assert fit.cs2 == 0.0
        assert fit.mean == pytest.approx(4.0)

    def test_monte_carlo_cross_check(self):
        rng = np.random.default_rng(5)
        sample = rng.lognormal(mean=0.8, sigma=0.5, size=200_000)
        p50, p99 = np.percentile(sample, [50, 99])
        fit = fit_cs2_from_percentiles(float(p50), float(p99))
        empirical_cs2 = float(sample.var() / sample.mean() ** 2)
        assert fit.cs2 == pytest.approx(empirical_cs2, rel=0.05)

    def test_feeds_kingman(self):
        fit = fit_cs2_from_percentiles(2.0, 9.0)
        w = kingman_waiting_time(0.8, 1.0, fit.cs2, fit.mean)
        assert w > 0

    def test_validation(self):
        with pytest.raises(ValueError, match="p50"):
            fit_cs2_from_percentiles(0.0, 1.0)
        with pytest.raises(ValueError, match="p99"):
            fit_cs2_from_percentiles(5.0, 4.0)
        with pytest.raises(ValueError, match="z99"):
            fit_cs2_from_percentiles(1.0, 2.0, z99=0.0)
