"""The serving plane wired through scenarios: parity, checkpoints, SLOs."""

from __future__ import annotations

import pytest

from repro.core import QueuingFFD
from repro.observability import Observatory, default_serving_rules
from repro.simulation.checkpoint import (
    canonical_state_bytes,
    restore_checkpoint,
    save_checkpoint,
)
from repro.simulation.scenario import Scenario
from repro.telemetry import RingBufferSink, Telemetry
from repro.workload.patterns import generate_pattern_instance


def small_instance(n_vms=24, seed=7):
    return generate_pattern_instance("equal", n_vms, seed=seed)


def make_scenario(vms, pms, *, serving=True, **kwargs):
    return Scenario(vms, pms, placer=QueuingFFD(rho=0.01, d=16),
                    serving=serving, **kwargs)


class TestConfig:
    def test_serving_true_uses_defaults(self):
        vms, pms = small_instance()
        sc = make_scenario(vms, pms, serving=True)
        assert sc.serving == Scenario.SERVING_DEFAULTS

    def test_serving_dict_overrides_merge(self):
        vms, pms = small_instance()
        sc = make_scenario(vms, pms, serving={"tier": True, "sla_t": 4})
        assert sc.serving["tier"] is True
        assert sc.serving["sla_t"] == 4
        assert sc.serving["service_rate"] == \
            Scenario.SERVING_DEFAULTS["service_rate"]

    def test_unknown_serving_option_rejected(self):
        vms, pms = small_instance()
        with pytest.raises(ValueError, match="unknown serving option"):
            make_scenario(vms, pms, serving={"typo_knob": 1})

    def test_serving_off_by_default(self):
        vms, pms = small_instance()
        sc = Scenario(vms, pms, placer=QueuingFFD(rho=0.01, d=16))
        assert sc.serving is None
        report = sc.run(10, seed=3)
        assert report.serving is None


class TestDeterminism:
    def test_same_seed_same_serving_report(self):
        vms, pms = small_instance()
        a = make_scenario(vms, pms).run(25, seed=11).serving
        b = make_scenario(vms, pms).run(25, seed=11).serving
        assert a == b

    def test_serving_does_not_perturb_consolidation_stream(self):
        """Enabling serving must not change what the datacenter does."""
        vms, pms = small_instance()
        base = Scenario(vms, pms, placer=QueuingFFD(rho=0.01, d=16)).run(
            25, seed=11)
        with_serving = make_scenario(vms, pms).run(25, seed=11)
        assert with_serving.final_pms_used == base.final_pms_used
        assert with_serving.total_migrations == base.total_migrations
        assert with_serving.mean_cvr == base.mean_cvr

    def test_scalar_and_vectorized_agree_bit_for_bit(self):
        vms, pms = small_instance()
        states = {}
        for mode in ("vectorized", "scalar"):
            run = make_scenario(
                vms, pms, serving={"tier": True}, tick_mode=mode,
            ).start(seed=11)
            run.advance(25)
            states[mode] = canonical_state_bytes(
                run.capture_state()["serving"])
            run.close()
        assert states["vectorized"] == states["scalar"]


class TestCheckpoint:
    def test_round_trip_resumes_bit_identically(self, tmp_path):
        vms, pms = small_instance()
        sc = make_scenario(vms, pms, serving={"tier": True})
        run = sc.start(seed=11)
        run.advance(12)
        path = tmp_path / "serving.ckpt.json"
        save_checkpoint(run, path)
        run.advance(12)
        want = canonical_state_bytes(run.capture_state())
        run.close()

        resumed = restore_checkpoint(path)
        resumed.advance(12)
        got = canonical_state_bytes(resumed.capture_state())
        resumed.close()
        assert got == want

    def test_serving_mismatch_rejected(self, tmp_path):
        vms, pms = small_instance()
        run = make_scenario(vms, pms).start(seed=11)
        run.advance(5)
        state = run.capture_state()
        run.close()
        plain = Scenario(vms, pms, placer=QueuingFFD(rho=0.01, d=16))
        bare = plain.start(seed=11)
        with pytest.raises(ValueError, match="serving"):
            bare.restore_state(state)
        bare.close()

    def test_pre_serving_checkpoint_state_still_restores(self):
        """A state dict without a 'serving' key (older format) restores."""
        vms, pms = small_instance()
        sc = Scenario(vms, pms, placer=QueuingFFD(rho=0.01, d=16))
        run = sc.start(seed=11)
        run.advance(5)
        state = run.capture_state()
        state.pop("serving")
        run2 = sc.start(seed=11)
        run2.restore_state(state)  # must not raise
        assert run2.time == 5
        run.close()
        run2.close()


class TestTierValue:
    def test_tier_lowers_p99_and_loss_on_bursty_small_config(self):
        """The load-leveling tier prevents thrash collapse: lower tail
        latency AND lower loss than direct admission on the same seed."""
        vms, pms = small_instance(n_vms=24, seed=7)
        without = make_scenario(vms, pms, serving={"tier": False}).run(
            40, seed=7).serving
        with_tier = make_scenario(vms, pms, serving={"tier": True}).run(
            40, seed=7).serving
        assert with_tier.p99 < without.p99
        assert with_tier.loss_rate < without.loss_rate
        assert with_tier.sla_violation_fraction < \
            without.sla_violation_fraction


class TestObservability:
    def run_observed(self, *, rules, n_intervals=40, serving=True):
        vms, pms = small_instance()
        tel = Telemetry(RingBufferSink())
        obs = Observatory(window=120, rules=rules)
        sc = make_scenario(vms, pms, serving=serving,
                           telemetry=tel, observatory=obs)
        report = sc.run(n_intervals, seed=7)
        return report, obs

    def test_recorder_folds_serving_snapshots(self):
        report, obs = self.run_observed(rules=[])
        rec = obs.recorder
        assert rec.serving_seen
        assert rec.req_arrivals.sum > 0
        assert rec.req_completions.sum > 0
        # recorder totals match the run report
        assert int(rec.req_arrivals.sum) == report.serving.arrivals
        assert int(rec.req_completions.sum) == report.serving.completions
        assert rec.charts["latency_p99"].last == report.serving.p99
        summary = rec.fleet_summary()
        assert "latency_p50" in summary
        assert "loss_rate_window" in summary
        assert summary["latency_p99"] == report.serving.p99

    def test_p99_latency_rule_fires_under_overload(self):
        # tight SLA + tiny tail budget: the rule must page
        vms, pms = small_instance()
        tel = Telemetry(RingBufferSink())
        rules = default_serving_rules(tail_budget=0.0001)
        obs = Observatory(window=120, rules=rules)
        sc = make_scenario(vms, pms, serving={"sla_t": 1},
                           telemetry=tel, observatory=obs)
        sc.run(40, seed=7)
        fired = [s for s in obs.slo.timeline if s.rule == "p99_latency"]
        assert fired, "p99_latency rule never fired under forced overload"

    def test_serving_rules_stay_quiet_without_serving(self):
        _, obs = self.run_observed(rules=default_serving_rules(),
                                   serving=False)
        assert not obs.recorder.serving_seen
        assert obs.slo.fired_total == 0

    def test_summary_line_mentions_serving(self):
        vms, pms = small_instance()
        report = make_scenario(vms, pms).run(10, seed=3)
        assert "serving:" in report.summary()
