"""Tests for repro.simulation.reconsolidation."""

import pytest

from repro.core.queuing_ffd import QueuingFFD
from repro.placement.ffd import ffd_by_base, ffd_by_peak
from repro.simulation.datacenter import Datacenter
from repro.simulation.engine import SimulationEngine
from repro.simulation.monitor import Monitor
from repro.simulation.reconsolidation import ReconsolidationScheduler
from repro.workload.patterns import generate_pattern_instance


def run_with(scheduler_factory, vms, pms, placement, n_intervals=100, seed=0):
    dc = Datacenter(vms, pms, placement, seed=seed)
    scheduler = scheduler_factory(dc)
    monitor = Monitor(dc.n_pms)
    engine = SimulationEngine()

    def tick(t):
        dc.step()
        monitor.record_interval(dc, scheduler.resolve_overloads(t))

    engine.add_hook("tick", tick)
    engine.run(n_intervals)
    return monitor.finalize(), scheduler


class TestReconsolidation:
    def test_replan_fires_on_period(self):
        vms, pms = generate_pattern_instance("equal", 40, seed=1)
        # Start from a deliberately loose placement (peak provisioning).
        placement = ffd_by_peak(max_vms_per_pm=16).place(vms, pms)
        record, scheduler = run_with(
            lambda dc: ReconsolidationScheduler(dc, period=25),
            vms, pms, placement, n_intervals=60, seed=2,
        )
        # The first re-plan (t = 25) must compact the RP placement.
        assert scheduler.planned_migrations > 0
        assert record.pms_used_series[-1] < record.pms_used_series[0]

    def test_compacts_toward_queue_packing(self):
        vms, pms = generate_pattern_instance("equal", 60, seed=3)
        placement = ffd_by_peak(max_vms_per_pm=16).place(vms, pms)
        queue_pms = QueuingFFD(rho=0.01, d=16).place(vms, pms).n_used_pms
        record, _ = run_with(
            lambda dc: ReconsolidationScheduler(
                dc, placer=QueuingFFD(rho=0.01, d=16), period=20),
            vms, pms, placement, n_intervals=50, seed=4,
        )
        assert record.pms_used_series[-1] <= queue_pms + 2

    def test_planned_moves_capped(self):
        vms, pms = generate_pattern_instance("equal", 50, seed=5)
        placement = ffd_by_peak(max_vms_per_pm=16).place(vms, pms)
        record, scheduler = run_with(
            lambda dc: ReconsolidationScheduler(dc, period=10,
                                                max_planned_moves=3),
            vms, pms, placement, n_intervals=21, seed=6,
        )
        # two re-plans (t = 10, 20), each at most 3 moves
        assert scheduler.planned_migrations <= 6

    def test_no_replan_before_period(self):
        vms, pms = generate_pattern_instance("equal", 30, seed=7)
        placement = ffd_by_peak(max_vms_per_pm=16).place(vms, pms)
        record, scheduler = run_with(
            lambda dc: ReconsolidationScheduler(dc, period=1000),
            vms, pms, placement, n_intervals=50, seed=8,
        )
        assert scheduler.planned_migrations == 0

    def test_reactive_split_consistent(self):
        vms, pms = generate_pattern_instance("equal", 60, seed=9)
        placement = ffd_by_base(max_vms_per_pm=16).place(vms, pms)
        record, scheduler = run_with(
            lambda dc: ReconsolidationScheduler(dc, period=30),
            vms, pms, placement, n_intervals=100, seed=10,
        )
        reactive = scheduler.reactive_migrations(record.total_migrations)
        assert reactive >= 0
        assert reactive + scheduler.planned_migrations == record.total_migrations

    def test_zero_period_invalid(self):
        vms, pms = generate_pattern_instance("equal", 5, seed=0)
        placement = ffd_by_peak(max_vms_per_pm=16).place(vms, pms)
        dc = Datacenter(vms, pms, placement, seed=0)
        with pytest.raises(ValueError):
            ReconsolidationScheduler(dc, period=0)
