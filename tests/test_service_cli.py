"""`repro serve` end to end, including the kill -9 chaos drill.

These run the real CLI in subprocesses — the kill drill's ``os._exit(137)``
cannot be simulated in-process.  The CI ``service-smoke`` job runs the
same drill at 1k-arrival scale; this is the fast tier-1 version.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parent.parent / "src")

BASE = ["--arrivals", "60", "--rate", "3", "--pms", "8", "--seed", "13",
        "--recalibrate-every", "7", "--checkpoint-every", "20"]


def serve(tmp_path, *extra):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", "serve",
         "--wal", str(tmp_path / "wal.jsonl"), *BASE, *extra],
        capture_output=True, text=True, env=env, timeout=300)


@pytest.fixture(scope="module")
def clean_state(tmp_path_factory):
    """One uninterrupted run; its state file is the parity reference."""
    tmp_path = tmp_path_factory.mktemp("clean")
    out = tmp_path / "state.json"
    proc = serve(tmp_path, "--state-out", str(out))
    assert proc.returncode == 0, proc.stderr
    return proc, out.read_bytes()


def test_clean_run_reports_and_writes_state(clean_state):
    proc, state = clean_state
    assert "state fingerprint:" in proc.stdout
    parsed = json.loads(state)
    assert set(parsed) == {"consolidator", "pool", "results", "counters"}


def test_kill_twice_then_resume_is_byte_identical(tmp_path, clean_state):
    _, want = clean_state
    for seq in ("25", "60"):
        proc = serve(tmp_path, "--chaos", "kill", "--chaos-at", seq)
        assert proc.returncode == 137, proc.stdout + proc.stderr
        assert f"kill -9 at WAL seq {seq}" in proc.stdout
    out = tmp_path / "state.json"
    final = serve(tmp_path, "--state-out", str(out))
    assert final.returncode == 0, final.stderr
    assert "[recover]" in final.stdout
    assert out.read_bytes() == want


def test_corrupt_wal_is_truncated_and_state_preserved(tmp_path, clean_state):
    _, want = clean_state
    first = serve(tmp_path, "--chaos", "corrupt-wal")
    assert first.returncode == 0, first.stderr
    out = tmp_path / "state.json"
    second = serve(tmp_path, "--state-out", str(out))
    assert second.returncode == 0, second.stderr
    assert "1 torn tail lines dropped" in second.stdout
    assert out.read_bytes() == want


def test_stall_degrades_instead_of_failing(tmp_path):
    proc = serve(tmp_path, "--chaos", "stall", "--chaos-at", "10")
    assert proc.returncode == 0, proc.stderr
    staleness = int(proc.stdout.split("solver staleness ")[1].split(";")[0])
    assert staleness >= 1  # served on last-known-good, loudly
