"""Tests for repro.workload.diurnal — time-varying spike rates."""

import numpy as np
import pytest

from repro.core.types import VMSpec
from repro.workload.diurnal import (
    STANDARD_DAY,
    DiurnalSchedule,
    effective_q,
    ensemble_states_diurnal,
    phase_cvr,
)


class TestDiurnalSchedule:
    def test_multiplier_cycles(self):
        s = DiurnalSchedule(multipliers=(1.0, 2.0), phase_length=3)
        values = [s.multiplier_at(t) for t in range(8)]
        assert values == [1, 1, 1, 2, 2, 2, 1, 1]
        assert s.period == 6

    def test_series_matches_pointwise(self):
        s = DiurnalSchedule(multipliers=(0.5, 1.5, 3.0), phase_length=2)
        series = s.multiplier_series(10)
        np.testing.assert_array_equal(
            series, [s.multiplier_at(t) for t in range(10)]
        )

    def test_mean_and_peak(self):
        s = DiurnalSchedule(multipliers=(0.5, 1.5))
        assert s.mean_multiplier == 1.0
        assert s.peak_multiplier == 1.5

    def test_standard_day_sane(self):
        assert STANDARD_DAY.period == 24 * 120
        assert STANDARD_DAY.peak_multiplier == 3.0
        assert 1.0 <= STANDARD_DAY.mean_multiplier <= 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalSchedule(multipliers=())
        with pytest.raises(ValueError):
            DiurnalSchedule(multipliers=(1.0,), phase_length=0)
        with pytest.raises(ValueError):
            DiurnalSchedule(multipliers=(-1.0,))
        with pytest.raises(ValueError):
            DiurnalSchedule(multipliers=(1.0,)).multiplier_at(-1)


class TestEffectiveQ:
    def test_mean_and_peak_ordering(self):
        vm = VMSpec(0.01, 0.09, 1.0, 1.0)
        q = effective_q(vm, DiurnalSchedule(multipliers=(0.5, 2.0)))
        assert q["mean"] < q["peak"]
        # peak multiplier 2: q = 0.02/(0.02+0.09)
        assert q["peak"] == pytest.approx(0.02 / 0.11)

    def test_multiplier_one_recovers_stationary_q(self):
        vm = VMSpec(0.01, 0.09, 1.0, 1.0)
        q = effective_q(vm, DiurnalSchedule(multipliers=(1.0,)))
        assert q["mean"] == q["peak"] == pytest.approx(0.1)

    def test_huge_multiplier_clipped(self):
        vm = VMSpec(0.5, 0.5, 1.0, 1.0)
        q = effective_q(vm, DiurnalSchedule(multipliers=(10.0,)))
        assert q["peak"] == pytest.approx(1.0 / 1.5)  # p_on clipped to 1


class TestEnsembleDiurnal:
    def test_shape_and_start(self):
        vms = [VMSpec(0.01, 0.09, 1.0, 1.0)] * 5
        states = ensemble_states_diurnal(vms, STANDARD_DAY, 100, seed=0)
        assert states.shape == (5, 101)
        assert not states[:, 0].any()

    def test_constant_schedule_matches_homogeneous(self):
        from repro.workload.onoff_generator import ensemble_states

        vms = [VMSpec(0.02, 0.1, 1.0, 1.0)] * 4
        flat = DiurnalSchedule(multipliers=(1.0,))
        a = ensemble_states_diurnal(vms, flat, 200, seed=3)
        b = ensemble_states(vms, 200, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_busy_phase_has_more_on_time(self):
        vms = [VMSpec(0.01, 0.09, 1.0, 1.0)] * 400
        schedule = DiurnalSchedule(multipliers=(0.2, 3.0), phase_length=500)
        states = ensemble_states_diurnal(vms, schedule, 10_000, seed=1)
        mults = schedule.multiplier_series(10_000)
        quiet = states[:, 1:][:, mults == 0.2].mean()
        busy = states[:, 1:][:, mults == 3.0].mean()
        assert busy > 2 * quiet

    def test_reproducible(self):
        vms = [VMSpec(0.01, 0.09, 1.0, 1.0)] * 3
        a = ensemble_states_diurnal(vms, STANDARD_DAY, 50, seed=2)
        b = ensemble_states_diurnal(vms, STANDARD_DAY, 50, seed=2)
        np.testing.assert_array_equal(a, b)


class TestPhaseCvr:
    def test_groups_by_multiplier(self):
        schedule = DiurnalSchedule(multipliers=(1.0, 2.0), phase_length=2)
        # 1 PM, 8 intervals; violate only in the 2.0-phases
        loads = np.array([[5, 5, 15, 15, 5, 5, 15, 15.0]])
        caps = np.array([10.0])
        by_phase = phase_cvr(loads, caps, schedule)
        assert by_phase[1.0] == 0.0
        assert by_phase[2.0] == 1.0

    def test_average_consistent(self):
        schedule = DiurnalSchedule(multipliers=(1.0, 2.0), phase_length=1)
        rng = np.random.default_rng(0)
        loads = rng.uniform(0, 20, (3, 100))
        caps = np.full(3, 10.0)
        by_phase = phase_cvr(loads, caps, schedule)
        overall = (loads > caps[:, None] + 1e-9).mean()
        assert np.mean(list(by_phase.values())) == pytest.approx(overall,
                                                                 abs=0.05)


class TestSizingGuidance:
    def test_average_sizing_violates_in_busy_hours_peak_sizing_does_not(self):
        """The headline diurnal result at unit-test scale."""
        from repro.core.mapcal import mapcal

        base = VMSpec(0.01, 0.09, 0.0, 1.0)
        k = 12
        schedule = DiurnalSchedule(multipliers=(0.2, 3.0), phase_length=1000)
        vms = [base] * k
        states = ensemble_states_diurnal(vms, schedule, 200_000, seed=5)
        busy_cols = schedule.multiplier_series(200_000) == 3.0
        demand = states[:, 1:].sum(axis=0)

        q_stats = effective_q(base, schedule)
        for label, q in q_stats.items():
            p_on_equiv = q * 0.09 / (1 - q)
            K = mapcal(k, p_on_equiv, 0.09, 0.01)
            busy_viol = float((demand[busy_cols] > K).mean())
            if label == "peak":
                assert busy_viol <= 0.015
            else:
                assert busy_viol > 0.015  # average sizing under-reserves
