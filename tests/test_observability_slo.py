"""SLO rules, multi-window burn-rate alerting, alert event round-trips."""

from __future__ import annotations

import json

import pytest

from repro.observability.recorder import TimeSeriesRecorder
from repro.observability.slo import (
    BurnWindow,
    SLOEngine,
    SLORule,
    default_rules,
    load_rules,
)
from repro.telemetry import JSONLSink, Telemetry
from repro.telemetry.events import AlertFired, AlertResolved, event_from_dict
from tests.test_observability_recorder import snap


def make_rule(**overrides) -> SLORule:
    kwargs = dict(name="cvr_burn", metric="cvr", budget=0.05,
                  fast=BurnWindow(3, 5.0), slow=BurnWindow(10, 2.0))
    kwargs.update(overrides)
    return SLORule(**kwargs)


class TestRuleValidation:
    def test_round_trips_through_dict(self):
        rule = make_rule()
        assert SLORule.from_dict(rule.to_dict()) == rule

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            make_rule(metric="latency")

    def test_fast_window_must_not_exceed_slow(self):
        with pytest.raises(ValueError, match="fast window"):
            make_rule(fast=BurnWindow(20, 5.0), slow=BurnWindow(10, 2.0))

    def test_burn_window_validated(self):
        with pytest.raises(ValueError):
            BurnWindow(0, 1.0)
        with pytest.raises(ValueError):
            BurnWindow(5, 0.0)

    def test_default_rules_cover_cvr_and_churn(self):
        rules = default_rules(rho=0.02)
        by_name = {r.name: r for r in rules}
        assert by_name["cvr_burn"].budget == 0.02
        assert by_name["cvr_burn"].fast.factor == 14.0
        assert "migration_storm" in by_name


class TestLoadRules:
    def test_json_file(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [make_rule().to_dict()]}))
        rules = load_rules(path)
        assert rules == [make_rule()]

    def test_yaml_file(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "rules.yaml"
        path.write_text(yaml.safe_dump({"rules": [make_rule().to_dict()]}))
        assert load_rules(path) == [make_rule()]

    def test_top_level_list(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps([make_rule().to_dict()]))
        assert load_rules(path) == [make_rule()]

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("not json {{{")
        with pytest.raises(ValueError, match="could not parse"):
            load_rules(path)


def drive(engine: SLOEngine, rec: TimeSeriesRecorder, n: int, *,
          violate: bool, start: int = 0) -> list:
    """Feed n intervals (2 PMs, optional persistent violation), evaluating."""
    from repro.telemetry.events import CapacityViolation

    out = []
    for t in range(start, start + n):
        if violate:
            rec.on_event(CapacityViolation(time=t, pm_id=0, load=1,
                                           capacity=0))
        rec.on_event(snap(t))
        out.extend(engine.evaluate(t))
    return out


class TestEngine:
    def test_fires_when_both_windows_burn(self):
        rec = TimeSeriesRecorder(window=30)
        engine = SLOEngine(rec, [make_rule()], emit=False)
        events = drive(engine, rec, 6, violate=True)
        fired = [e for e in events if isinstance(e, AlertFired)]
        assert len(fired) == 1
        assert fired[0].rule == "cvr_burn"
        # CVR 0.5 vs budget 0.05 -> 10x burn on both windows
        assert fired[0].burn_fast == pytest.approx(10.0)
        assert engine.has_active_alerts()

    def test_no_verdict_before_fast_window_fills(self):
        rec = TimeSeriesRecorder(window=30)
        engine = SLOEngine(rec, [make_rule()], emit=False)
        events = drive(engine, rec, 2, violate=True)
        assert events == []

    def test_resolves_when_fast_window_cools(self):
        rec = TimeSeriesRecorder(window=30)
        engine = SLOEngine(rec, [make_rule()], emit=False)
        drive(engine, rec, 6, violate=True)
        events = drive(engine, rec, 10, violate=False, start=6)
        resolved = [e for e in events if isinstance(e, AlertResolved)]
        assert len(resolved) == 1
        assert not engine.has_active_alerts()
        span = engine.timeline[0]
        assert span.resolved_at is not None
        assert span.peak_burn_fast >= 5.0

    def test_single_blip_does_not_fire(self):
        # slow window guards: one violated interval in an otherwise clean
        # stream exceeds the fast factor but not the slow one
        rec = TimeSeriesRecorder(window=30)
        rule = make_rule(fast=BurnWindow(3, 5.0), slow=BurnWindow(20, 4.0))
        engine = SLOEngine(rec, [rule], emit=False)
        drive(engine, rec, 15, violate=False)
        events = drive(engine, rec, 1, violate=True, start=15)
        events += drive(engine, rec, 5, violate=False, start=16)
        assert [e for e in events if isinstance(e, AlertFired)] == []

    def test_slow_window_exceeding_recorder_rejected(self):
        rec = TimeSeriesRecorder(window=5)
        with pytest.raises(ValueError, match="recorder window"):
            SLOEngine(rec, [make_rule()], emit=False)

    def test_duplicate_rule_names_rejected(self):
        rec = TimeSeriesRecorder(window=30)
        with pytest.raises(ValueError, match="duplicate"):
            SLOEngine(rec, [make_rule(), make_rule()], emit=False)

    def test_severity_filter(self):
        rec = TimeSeriesRecorder(window=30)
        engine = SLOEngine(rec, [make_rule(severity="ticket")], emit=False)
        drive(engine, rec, 6, violate=True)
        assert engine.has_active_alerts("ticket")
        assert not engine.has_active_alerts("page")


class TestAlertEventsRoundTrip:
    def test_alert_events_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        rec = TimeSeriesRecorder(window=30)
        tel = Telemetry(JSONLSink(path))
        engine = SLOEngine(rec, [make_rule()], telemetry=tel)
        drive(engine, rec, 6, violate=True)
        drive(engine, rec, 10, violate=False, start=6)
        tel.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = [d["kind"] for d in lines]
        assert "alert_fired" in kinds and "alert_resolved" in kinds
        replayed = [event_from_dict(d) for d in lines]
        fired = [e for e in replayed if isinstance(e, AlertFired)]
        assert fired[0].rule == "cvr_burn"
        assert fired[0].budget == pytest.approx(0.05)
        # byte-identical re-serialization
        assert [e.to_dict() for e in replayed] == lines
