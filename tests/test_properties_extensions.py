"""Property-based tests (hypothesis) for the extension modules.

Invariants: Poisson-binomial correctness and degeneracies, exact
heterogeneous blocks vs MapCal, quantile-vs-block dominance, estimation
consistency under label-preserving transforms, persistence round-trips, and
transient-analysis identities.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heterogeneous import (
    heterogeneous_blocks,
    heterogeneous_cvr,
    poisson_binomial_pmf,
)
from repro.core.mapcal import mapcal
from repro.core.quantile import quantile_cvr, quantile_reservation
from repro.core.types import VMSpec
from repro.queueing.transient import (
    expected_time_to_violation,
    occupancy_at,
    violation_probability_curve,
)
from repro.workload.estimation import estimate_switch_probabilities, fit_onoff

probs = st.floats(min_value=0.001, max_value=0.999)
q_lists = st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=0,
                   max_size=25)


@st.composite
def vm_sets(draw, min_size=1, max_size=12):
    n = draw(st.integers(min_size, max_size))
    return [
        VMSpec(
            draw(probs), draw(probs),
            draw(st.floats(0.0, 50.0)), draw(st.floats(0.0, 50.0)),
        )
        for _ in range(n)
    ]


class TestPoissonBinomialProperties:
    @given(q=q_lists)
    @settings(max_examples=60, deadline=None)
    def test_valid_pmf(self, q):
        pmf = poisson_binomial_pmf(np.array(q))
        assert pmf.size == len(q) + 1
        assert np.all(pmf >= -1e-12)
        np.testing.assert_allclose(pmf.sum(), 1.0, atol=1e-9)

    @given(q=q_lists)
    @settings(max_examples=40, deadline=None)
    def test_mean_is_sum_of_probs(self, q):
        pmf = poisson_binomial_pmf(np.array(q))
        mean = float(np.arange(pmf.size) @ pmf)
        np.testing.assert_allclose(mean, sum(q), atol=1e-9)

    @given(q=q_lists, extra=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_adding_a_source_shifts_mass_up(self, q, extra):
        base = poisson_binomial_pmf(np.array(q))
        bigger = poisson_binomial_pmf(np.array(q + [extra]))
        # survival function dominance: P[N' > j] >= P[N > j] for all j
        sf_base = 1.0 - np.cumsum(base)
        sf_big = 1.0 - np.cumsum(bigger)[: base.size]
        assert np.all(sf_big >= sf_base - 1e-9)


class TestHeterogeneousProperties:
    @given(vms=vm_sets(), rho=st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_blocks_bound_and_minimality(self, vms, rho):
        K = heterogeneous_blocks(vms, rho)
        assert 0 <= K <= len(vms)
        assert heterogeneous_cvr(vms, K) <= rho + 1e-9
        if K > 0:
            assert heterogeneous_cvr(vms, K - 1) > rho - 1e-9

    @given(k=st.integers(1, 15), p_on=probs, p_off=probs,
           rho=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_uniform_reduces_to_mapcal(self, k, p_on, p_off, rho):
        vms = [VMSpec(p_on, p_off, 1.0, 1.0)] * k
        assert heterogeneous_blocks(vms, rho) == mapcal(k, p_on, p_off, rho)


class TestQuantileProperties:
    @given(vms=vm_sets(), rho=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_reservation_bounds_cvr(self, vms, rho):
        r = quantile_reservation(vms, rho, resolution=0.5)
        assert r >= 0.0
        assert quantile_cvr(vms, r, resolution=0.5) <= rho + 1e-9

    @given(vms=vm_sets())
    @settings(max_examples=30, deadline=None)
    def test_dominated_by_block_reservation(self, vms):
        K = heterogeneous_blocks(vms, 0.01)
        block_reserve = K * max(v.r_extra for v in vms)
        r = quantile_reservation(vms, 0.01, resolution=0.25)
        assert r <= block_reserve + 0.25 * len(vms) + 1e-9

    @given(vms=vm_sets())
    @settings(max_examples=30, deadline=None)
    def test_reservation_never_exceeds_total_spike_mass(self, vms):
        r = quantile_reservation(vms, 0.0, resolution=0.5)
        total = sum(v.r_extra for v in vms)
        assert r <= total + 0.5 * len(vms) + 1e-9


class TestEstimationProperties:
    @given(
        runs=st.lists(st.tuples(st.booleans(), st.integers(1, 20)),
                      min_size=2, max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_mle_probabilities_in_range(self, runs):
        states = np.concatenate([
            np.full(length, int(on)) for on, length in runs
        ])
        if states.size < 2:
            return
        p_on, p_off, n_trans, ll = estimate_switch_probabilities(states)
        assert 0.0 < p_on < 1.0
        assert 0.0 < p_off < 1.0
        assert n_trans >= 0
        assert ll <= 0.0

    @given(
        scale=st.floats(0.5, 10.0), shift=st.floats(0.0, 100.0),
        seed=st.integers(0, 10),
    )
    @settings(max_examples=20, deadline=None)
    def test_fit_equivariant_under_affine_demand_transform(self, scale, shift,
                                                           seed):
        """Scaling/shifting the demand axis scales/shifts the fitted levels
        and leaves the switch probabilities untouched."""
        vm = VMSpec(0.05, 0.2, 10.0, 8.0)
        from repro.workload.onoff_generator import demand_trace, ensemble_states

        states = ensemble_states([vm], 5000, start_stationary=True, seed=seed)
        trace = demand_trace([vm], states)[0]
        base_fit = fit_onoff(trace)
        scaled_fit = fit_onoff(trace * scale + shift)
        assert scaled_fit.p_on == base_fit.p_on
        assert scaled_fit.p_off == base_fit.p_off
        np.testing.assert_allclose(scaled_fit.r_base,
                                   base_fit.r_base * scale + shift, atol=1e-6)
        np.testing.assert_allclose(scaled_fit.r_extra,
                                   base_fit.r_extra * scale, atol=1e-6)


class TestTransientProperties:
    @given(k=st.integers(1, 10), p_on=probs, p_off=probs,
           t=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_occupancy_is_distribution(self, k, p_on, p_off, t):
        pi = occupancy_at(k, p_on, p_off, t)
        assert np.all(pi >= -1e-12)
        np.testing.assert_allclose(pi.sum(), 1.0, atol=1e-9)

    @given(k=st.integers(2, 10), p_on=probs, p_off=probs,
           K=st.integers(0, 9))
    @settings(max_examples=40, deadline=None)
    def test_curve_bounded_and_consistent(self, k, p_on, p_off, K):
        K = min(K, k)
        curve = violation_probability_curve(k, p_on, p_off, K, 30)
        assert np.all(curve >= -1e-12) and np.all(curve <= 1.0 + 1e-12)
        # point evaluation agrees with occupancy_at
        pi10 = occupancy_at(k, p_on, p_off, 10)
        expected = pi10[K + 1:].sum() if K < k else 0.0
        np.testing.assert_allclose(curve[10], expected, atol=1e-9)

    @given(k=st.integers(2, 10), p_on=probs, p_off=probs)
    @settings(max_examples=30, deadline=None)
    def test_hitting_time_decreases_with_fewer_blocks(self, k, p_on, p_off):
        times = [expected_time_to_violation(k, p_on, p_off, K)
                 for K in range(0, k)]
        # Relative tolerance: rare-event hitting times reach ~1e15 where the
        # (I - Q) solve's float noise breaks exact monotonicity.
        assert all(a <= b * (1 + 1e-6) + 1e-6 for a, b in zip(times, times[1:]))


class TestPersistenceProperties:
    @given(vms=vm_sets(max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_instance_roundtrip(self, vms, tmp_path_factory):
        from repro.core.types import PMSpec
        from repro.workload.io import load_instance, save_instance

        path = tmp_path_factory.mktemp("io") / "inst.json"
        pms = [PMSpec(100.0)]
        save_instance(path, vms, pms)
        vms2, pms2 = load_instance(path)
        assert vms2 == vms and pms2 == pms
