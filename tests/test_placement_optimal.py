"""Tests for repro.placement.optimal — exact packing and lower bounds."""

import numpy as np
import pytest

from repro.core.types import PMSpec, VMSpec
from repro.placement.base import InsufficientCapacityError
from repro.placement.ffd import FirstFitDecreasing, size_by_base
from repro.placement.optimal import (
    BranchAndBoundPacker,
    lower_bound_l1,
    lower_bound_l2,
)
from repro.placement.validation import check_capacity_at_base


def vm(b):
    return VMSpec(0.01, 0.09, float(b), 0.0)


def pms(n, cap=10.0):
    return [PMSpec(cap)] * n


class TestLowerBounds:
    def test_l1_exact_division(self):
        assert lower_bound_l1(np.array([5.0, 5.0, 5.0, 5.0]), 10.0) == 2

    def test_l1_rounds_up(self):
        assert lower_bound_l1(np.array([5.0, 5.0, 1.0]), 10.0) == 2

    def test_l1_empty(self):
        assert lower_bound_l1(np.empty(0), 10.0) == 0

    def test_l2_dominates_l1(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            sizes = rng.uniform(0.5, 10.0, 15)
            assert lower_bound_l2(sizes, 10.0) >= lower_bound_l1(sizes, 10.0)

    def test_l2_counts_big_items(self):
        # Three items > C/2 can never share: L2 >= 3, L1 = 2.
        sizes = np.array([6.0, 6.0, 6.0])
        assert lower_bound_l1(sizes, 10.0) == 2
        assert lower_bound_l2(sizes, 10.0) == 3

    def test_l2_with_riders(self):
        # items 6,6,6 force 3 bins; 4,4,4 fill the slack exactly.
        sizes = np.array([6.0, 6.0, 6.0, 4.0, 4.0, 4.0])
        assert lower_bound_l2(sizes, 10.0) == 3

    def test_bounds_reject_oversize(self):
        with pytest.raises(ValueError):
            lower_bound_l1(np.array([11.0]), 10.0)
        with pytest.raises(ValueError):
            lower_bound_l2(np.array([-1.0]), 10.0)


class TestBranchAndBound:
    def test_beats_ffd_on_known_instance(self):
        # FFD uses 3 bins on [5,4,4,3,2,2]/10; optimum is 2.
        vms = [vm(s) for s in (5, 4, 4, 3, 2, 2)]
        packer = BranchAndBoundPacker(size_by_base)
        placement = packer.place(vms, pms(6))
        assert placement.n_used_pms == 2
        assert packer.last_proven_optimal
        check_capacity_at_base(placement, vms, pms(6))

    def test_never_worse_than_ffd(self):
        rng = np.random.default_rng(1)
        for trial in range(10):
            sizes = rng.uniform(1.0, 9.0, 12)
            vms = [vm(s) for s in sizes]
            fleet = pms(12)
            ffd = FirstFitDecreasing(size_by_base).place(vms, fleet)
            packer = BranchAndBoundPacker(size_by_base)
            opt = packer.place(vms, fleet)
            assert opt.n_used_pms <= ffd.n_used_pms
            assert opt.n_used_pms >= lower_bound_l2(sizes, 10.0)
            check_capacity_at_base(opt, vms, fleet)

    def test_matches_l2_when_tight(self):
        vms = [vm(s) for s in (6, 6, 4, 4)]
        packer = BranchAndBoundPacker(size_by_base)
        placement = packer.place(vms, pms(4))
        assert placement.n_used_pms == 2
        assert packer.last_proven_optimal

    def test_all_items_in_one_bin(self):
        vms = [vm(2), vm(3), vm(4)]
        placement = BranchAndBoundPacker(size_by_base).place(vms, pms(3))
        assert placement.n_used_pms == 1

    def test_each_item_needs_own_bin(self):
        vms = [vm(9), vm(9), vm(9)]
        placement = BranchAndBoundPacker(size_by_base).place(vms, pms(3))
        assert placement.n_used_pms == 3

    def test_oversize_item_raises(self):
        with pytest.raises(InsufficientCapacityError):
            BranchAndBoundPacker(size_by_base).place([vm(11)], pms(2))

    def test_heterogeneous_capacity_rejected(self):
        with pytest.raises(ValueError, match="uniform"):
            BranchAndBoundPacker(size_by_base).place(
                [vm(1)], [PMSpec(10.0), PMSpec(20.0)]
            )

    def test_empty_instances(self):
        assert BranchAndBoundPacker().place([], []).n_vms == 0
        assert BranchAndBoundPacker().place([], pms(2)).n_used_pms == 0
        with pytest.raises(InsufficientCapacityError):
            BranchAndBoundPacker().place([vm(1)], [])

    def test_node_budget_degrades_to_incumbent(self):
        rng = np.random.default_rng(2)
        sizes = rng.uniform(1.0, 9.0, 20)
        vms = [vm(s) for s in sizes]
        fleet = pms(20)
        packer = BranchAndBoundPacker(size_by_base, max_nodes=5)
        placement = packer.place(vms, fleet)
        ffd = FirstFitDecreasing(size_by_base).place(vms, fleet)
        assert placement.n_used_pms <= ffd.n_used_pms
        check_capacity_at_base(placement, vms, fleet)

    def test_default_size_is_peak(self):
        # peak sizing: two VMs with r_peak 6 each cannot share a 10-bin.
        vms = [VMSpec(0.01, 0.09, 3.0, 3.0), VMSpec(0.01, 0.09, 3.0, 3.0)]
        placement = BranchAndBoundPacker().place(vms, pms(2))
        assert placement.n_used_pms == 2

    def test_nodes_explored_recorded(self):
        packer = BranchAndBoundPacker(size_by_base)
        packer.place([vm(5), vm(5)], pms(2))
        assert packer.last_nodes_explored >= 1
