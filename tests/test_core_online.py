"""Tests for repro.core.online — Section IV-E online consolidation."""

import pytest

from repro.core.online import OnlineConsolidator
from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import PMSpec, VMSpec
from repro.placement.base import InsufficientCapacityError

P_ON, P_OFF = 0.01, 0.09


def vm(base, extra, p_on=P_ON, p_off=P_OFF):
    return VMSpec(p_on, p_off, base, extra)


@pytest.fixture
def consolidator():
    return OnlineConsolidator([PMSpec(100.0) for _ in range(8)],
                              QueuingFFD(rho=0.01, d=16))


class TestAdmit:
    def test_first_fit_goes_to_first_pm(self, consolidator):
        vm_id, pm = consolidator.admit(vm(10, 10))
        assert (vm_id, pm) == (0, 0)
        assert consolidator.n_vms == 1
        assert consolidator.n_used_pms == 1

    def test_ids_are_unique_and_increasing(self, consolidator):
        ids = [consolidator.admit(vm(5, 5))[0] for _ in range(10)]
        assert ids == sorted(set(ids))

    def test_spills_to_next_pm_when_full(self, consolidator):
        # Each VM commits 30 base + reservation; a 100-unit PM takes 3 tops.
        placements = [consolidator.admit(vm(30, 10))[1] for _ in range(6)]
        assert placements[0] == 0
        assert max(placements) >= 1  # overflowed onto another PM
        assert consolidator.n_used_pms >= 2

    def test_eq17_respected_on_every_pm(self, consolidator):
        for _ in range(30):
            consolidator.admit(vm(12, 8))
        for j in range(consolidator.n_pms):
            state = consolidator.state_of(j)
            if not state.is_empty:
                assert state.committed <= state.spec.capacity + 1e-9

    def test_raises_when_fleet_exhausted(self):
        c = OnlineConsolidator([PMSpec(50.0)], QueuingFFD(rho=0.01, d=16))
        c.admit(vm(30, 10))
        with pytest.raises(InsufficientCapacityError):
            for _ in range(10):
                c.admit(vm(30, 10))


class TestDepart:
    def test_depart_frees_capacity(self, consolidator):
        vm_id, pm = consolidator.admit(vm(40, 20))
        before = consolidator.state_of(pm).committed
        consolidator.depart(vm_id)
        assert consolidator.state_of(pm).committed < before
        assert consolidator.n_vms == 0

    def test_depart_unknown_raises(self, consolidator):
        with pytest.raises(KeyError):
            consolidator.depart(99)

    def test_readmission_after_departures(self, consolidator):
        ids = [consolidator.admit(vm(30, 10))[0] for _ in range(6)]
        for i in ids:
            consolidator.depart(i)
        assert consolidator.n_used_pms == 0
        vm_id, pm = consolidator.admit(vm(30, 10))
        assert pm == 0  # first-fit restarts from the front

    def test_queue_shrinks_on_departure(self, consolidator):
        ids = [consolidator.admit(vm(10, 10))[0] for _ in range(6)]
        state = consolidator.state_of(0)
        blocks_before = state.n_blocks
        for i in ids[:4]:
            consolidator.depart(i)
        assert consolidator.state_of(0).n_blocks <= blocks_before


class TestBatch:
    def test_batch_uses_algorithm2_order(self, consolidator):
        batch = [vm(5, 2), vm(20, 18), vm(10, 17)]
        results = consolidator.admit_batch(batch)
        assert len(results) == 3
        assert consolidator.n_vms == 3
        # results align with input positions
        for vm_id, pm in results:
            assert consolidator.pm_of(vm_id) == pm

    def test_empty_batch(self, consolidator):
        assert consolidator.admit_batch([]) == []

    def test_batch_atomic_on_failure(self):
        c = OnlineConsolidator([PMSpec(100.0)], QueuingFFD(rho=0.01, d=16))
        batch = [vm(40, 10), vm(40, 10), vm(40, 10)]  # third cannot fit
        with pytest.raises(InsufficientCapacityError):
            c.admit_batch(batch)
        assert c.n_vms == 0
        assert c.n_used_pms == 0

    def test_batch_then_single_interleave(self, consolidator):
        consolidator.admit_batch([vm(10, 5) for _ in range(5)])
        vm_id, _ = consolidator.admit(vm(10, 5))
        assert consolidator.n_vms == 6
        assert vm_id == 5


class TestRecalibrate:
    def test_noop_when_uniform(self, consolidator):
        consolidator.admit(vm(10, 10))
        assert consolidator.recalibrate() is False

    def test_rebuilds_on_population_drift(self):
        c = OnlineConsolidator([PMSpec(200.0) for _ in range(4)],
                               QueuingFFD(rho=0.01, d=16))
        a, _ = c.admit(vm(10, 10, p_on=0.01, p_off=0.09))
        c.admit(vm(10, 10, p_on=0.05, p_off=0.05))
        # rounded mean changed after the second arrival
        assert c.recalibrate() is True
        # all states now reference the new mapping
        assert c.state_of(0).mapping.p_on == pytest.approx(0.03)

    def test_no_vms_is_noop(self, consolidator):
        assert consolidator.recalibrate() is False


class TestAccessors:
    def test_state_before_any_admit_raises(self, consolidator):
        with pytest.raises(RuntimeError, match="no VMs admitted"):
            consolidator.state_of(0)

    def test_hosted_vms_snapshot(self, consolidator):
        vm_id, _ = consolidator.admit(vm(10, 5))
        hosted = consolidator.hosted_vms()
        assert list(hosted.keys()) == [vm_id]
        assert hosted[vm_id].r_base == 10.0

    def test_requires_pms(self):
        with pytest.raises(ValueError):
            OnlineConsolidator([], QueuingFFD())
