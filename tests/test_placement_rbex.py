"""Tests for repro.placement.rbex — the delta-reservation baseline."""

import pytest

from repro.core.types import PMSpec, VMSpec
from repro.placement.base import InsufficientCapacityError
from repro.placement.ffd import ffd_by_base
from repro.placement.rbex import RBExPlacer
from repro.placement.validation import check_placement_complete

P_ON, P_OFF = 0.01, 0.09


def vm(base, extra=0.0):
    return VMSpec(P_ON, P_OFF, base, extra)


class TestRBEx:
    def test_reserves_delta_fraction(self):
        # delta=0.3 on a 10-unit PM leaves 7 usable: two 3.5-base VMs fit,
        # a third does not.
        placer = RBExPlacer(delta=0.3)
        vms = [vm(3.5), vm(3.5), vm(3.5)]
        placement = placer.place(vms, [PMSpec(10.0), PMSpec(10.0)])
        assert placement.n_used_pms == 2

    def test_delta_zero_equals_rb(self, medium_instance):
        vms, pms = medium_instance
        rbex = RBExPlacer(delta=0.0, max_vms_per_pm=16).place(vms, pms)
        rb = ffd_by_base(max_vms_per_pm=16).place(vms, pms)
        assert rbex.n_used_pms == rb.n_used_pms

    def test_uses_at_least_as_many_pms_as_rb(self, medium_instance):
        vms, pms = medium_instance
        rbex = RBExPlacer(delta=0.3, max_vms_per_pm=16).place(vms, pms)
        rb = ffd_by_base(max_vms_per_pm=16).place(vms, pms)
        assert rbex.n_used_pms >= rb.n_used_pms

    def test_larger_delta_uses_more_pms(self, medium_instance):
        vms, pms = medium_instance
        small = RBExPlacer(delta=0.1, max_vms_per_pm=16).place(vms, pms)
        large = RBExPlacer(delta=0.5, max_vms_per_pm=16).place(vms, pms)
        assert large.n_used_pms >= small.n_used_pms

    def test_original_capacities_untouched(self):
        pms = [PMSpec(10.0)]
        RBExPlacer(delta=0.3).place([vm(5.0)], pms)
        assert pms[0].capacity == 10.0

    def test_complete(self, medium_instance):
        vms, pms = medium_instance
        placement = RBExPlacer(delta=0.3, max_vms_per_pm=16).place(vms, pms)
        check_placement_complete(placement)

    def test_base_loads_respect_shrunk_capacity(self, medium_instance):
        vms, pms = medium_instance
        placement = RBExPlacer(delta=0.3, max_vms_per_pm=16).place(vms, pms)
        import numpy as np

        loads = np.zeros(len(pms))
        for vm_idx, pm_idx in placement:
            loads[pm_idx] += vms[vm_idx].r_base
        caps = np.array([p.capacity for p in pms])
        assert np.all(loads <= 0.7 * caps + 1e-6)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            RBExPlacer(delta=1.0)
        with pytest.raises(ValueError):
            RBExPlacer(delta=-0.1)

    def test_infeasible_raises(self):
        with pytest.raises(InsufficientCapacityError):
            RBExPlacer(delta=0.5).place([vm(6.0)], [PMSpec(10.0)])

    def test_max_vms_per_pm_exposed(self):
        assert RBExPlacer(max_vms_per_pm=8).max_vms_per_pm == 8

    def test_name(self):
        assert RBExPlacer().name == "RB-EX"
