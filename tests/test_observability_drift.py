"""Drift detector: sequential chi-square on ON-counts vs the assumed law."""

from __future__ import annotations

import numpy as np
import pytest

from repro.observability.drift import DriftDetector
from repro.telemetry.events import IntervalSnapshot

# the paper's switch probabilities and their stationary law
P_ON, P_OFF = 0.01, 0.09
Q = P_ON / (P_ON + P_OFF)
R = 1.0 - P_ON - P_OFF
#: per-interval occupation-time variance rate with Markov autocorrelation
VAR_RATE = Q * (1 - Q) * (1 + R) / (1 - R)


def markov_on_counts(n_vms: int, n_steps: int, p_on: float, p_off: float,
                     rng) -> np.ndarray:
    """Summed ON counts of n_vms independent chains, stationary start."""
    q = p_on / (p_on + p_off)
    state = rng.random(n_vms) < q
    counts = np.empty(n_steps, dtype=int)
    for t in range(n_steps):
        u = rng.random(n_vms)
        state = np.where(state, u >= p_off, u < p_on)
        counts[t] = int(state.sum())
    return counts


def feed(det: DriftDetector, counts: np.ndarray, *, n_vms: int,
         pm_id: int = 0, start: int = 0) -> list:
    fired = []
    for i, c in enumerate(counts):
        fired.extend(det.observe(IntervalSnapshot(
            time=start + i, pm_ids=(pm_id,), loads=(0.0,),
            capacities=(100.0,), hosted=(n_vms,), on_vms=(int(c),),
            expected_on=(n_vms * Q,), expected_var=(n_vms * VAR_RATE,))))
    return fired


class TestStationaryNull:
    def test_no_flags_on_stationary_run(self):
        # long stationary run, several PMs: zero drift flags expected
        rng = np.random.default_rng(42)
        det = DriftDetector(window=30, emit=False)
        n_vms = 16
        counts = [markov_on_counts(n_vms, 600, P_ON, P_OFF, rng)
                  for _ in range(4)]
        for t in range(600):
            det.observe(IntervalSnapshot(
                time=t, pm_ids=(0, 1, 2, 3), loads=(0.0,) * 4,
                capacities=(100.0,) * 4, hosted=(n_vms,) * 4,
                on_vms=tuple(int(c[t]) for c in counts),
                expected_on=(n_vms * Q,) * 4,
                expected_var=(n_vms * VAR_RATE,) * 4))
        assert det.flagged_pms == []

    def test_autocorrelation_inflation_is_load_bearing(self):
        # the same stationary traffic judged against a *naive binomial*
        # variance fires constantly — the (1+r)/(1-r) factor is why the
        # detector can run with zero false positives
        rng = np.random.default_rng(7)
        n_vms = 16
        counts = markov_on_counts(n_vms, 600, P_ON, P_OFF, rng)
        naive_var = n_vms * Q * (1 - Q)
        window = 30
        naive_stats, correct_stats = [], []
        for w in range(0, 600, window):
            chunk = counts[w:w + window]
            dev = (chunk.sum() - n_vms * Q * window) ** 2
            naive_stats.append(dev / (naive_var * window))
            correct_stats.append(dev / (n_vms * VAR_RATE * window))
        assert max(correct_stats) < 10.83
        assert max(naive_stats) > 10.83  # the naive test would have paged


class TestDriftCatches:
    def test_flags_shifted_pm_within_three_windows(self):
        rng = np.random.default_rng(3)
        det = DriftDetector(window=25, emit=False)
        n_vms = 16
        # 100 stationary intervals, then p_on jumps 0.01 -> 0.08
        feed(det, markov_on_counts(n_vms, 100, P_ON, P_OFF, rng),
             n_vms=n_vms)
        fired = feed(det, markov_on_counts(n_vms, 75, 0.08, P_OFF, rng),
                     n_vms=n_vms, start=100)
        assert det.flagged_pms == [0]
        # flagged within 3 evaluation windows of the shift
        assert fired[0].time <= 100 + 3 * 25
        assert fired[0].observed_on_fraction > fired[0].expected_on_fraction
        assert fired[0].statistic > fired[0].threshold

    def test_flag_latches_once(self):
        rng = np.random.default_rng(5)
        det = DriftDetector(window=20, consecutive=1, emit=False)
        n_vms = 16
        feed(det, markov_on_counts(n_vms, 400, 0.08, P_OFF, rng), n_vms=n_vms)
        assert len(det.detections) == 1

    def test_sparse_windows_accumulate_instead_of_voting(self):
        det = DriftDetector(window=4, min_samples=10, emit=False)
        # 4-interval windows but min_samples 10: the first windows must
        # not evaluate (samples roll over), so no verdict yet
        rng = np.random.default_rng(1)
        feed(det, markov_on_counts(8, 8, P_ON, P_OFF, rng), n_vms=8)
        assert det.pms[0].windows == 0
        assert det.pms[0].samples == 8

    def test_parameters_validated(self):
        for kwargs in ({"window": 1}, {"threshold": 0.0},
                       {"consecutive": 0}, {"min_samples": 0}):
            with pytest.raises(ValueError):
                DriftDetector(**kwargs)


class TestResetEvidence:
    def test_reset_clears_windows_streaks_and_flags(self):
        det = DriftDetector(window=20, consecutive=2, min_samples=5)
        rng = np.random.default_rng(11)
        # drifted traffic: evidence accumulates and eventually flags
        counts = markov_on_counts(64, 200, 0.06, P_OFF, rng)
        feed(det, counts, n_vms=64)
        assert det.flagged_pms
        n_detections = len(det.detections)
        det.reset_evidence()
        assert det.flagged_pms == []
        for state in det.pms.values():
            assert state.streak == 0 and not state.flagged
        # the audit trail survives the reset
        assert len(det.detections) == n_detections
        # and a stationary continuation does not re-flag from stale counts
        calm = markov_on_counts(64, 200, P_ON, P_OFF, rng)
        fired = feed(det, calm, n_vms=64, start=200)
        assert fired == []
