"""Resilience-layer tests: correlated failures, degradation, retry/backoff.

Covers the fault-domain failure model end-to-end plus the two invariants
the layer exists to guarantee:

- **no VM ever resides on a failed PM** except the explicitly-stranded set
  (and, with headroom plus degradation, that set is empty);
- **no migration — scheduler- or evacuation-driven — ever targets a
  failed PM**.
"""

import numpy as np
import pytest

from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import Placement, PMSpec, VMSpec
from repro.simulation.datacenter import Datacenter
from repro.simulation.failures import FailureInjector
from repro.simulation.migration import MigrationExecutor, RetryPolicy
from repro.simulation.scenario import Scenario
from repro.simulation.scheduler import DynamicScheduler
from repro.simulation.topology import Topology
from repro.workload.patterns import generate_pattern_instance


def steady_vm(base=10.0, extra=5.0):
    return VMSpec(0.01, 0.09, base, extra)


def spread_dc(n_vms=4, n_pms=4, cap=100.0, seed=0):
    """One VM per PM, plenty of headroom."""
    vms = [steady_vm() for _ in range(n_vms)]
    pms = [PMSpec(cap)] * n_pms
    placement = Placement(n_vms, n_pms,
                          assignment=np.arange(n_vms) % n_pms)
    return Datacenter(vms, pms, placement, seed=seed)


class TestCorrelatedFailures:
    def test_domain_crash_fails_all_its_pms(self):
        dc = spread_dc(n_vms=2, n_pms=4)
        topo = Topology.racks(4, 2)
        inj = FailureInjector(dc, failure_probability=0.0,
                              topology=topo,
                              domain_failure_probability=1.0,
                              domain_repair_probability=0.0, seed=1)
        inj.step(0)
        assert inj.domain_failed.all()
        assert inj.failed.all()
        assert inj.record.domain_failures == 2

    def test_domain_failure_requires_topology(self):
        dc = spread_dc()
        with pytest.raises(ValueError, match="requires a topology"):
            FailureInjector(dc, domain_failure_probability=0.5)

    def test_topology_size_mismatch(self):
        dc = spread_dc(n_pms=4)
        with pytest.raises(ValueError, match="datacenter has 4"):
            FailureInjector(dc, topology=Topology.racks(6, 2))

    def test_blast_radius_recorded_per_domain_event(self):
        # Both VMs in rack 0; rack 1 is empty but also fails.
        vms = [steady_vm(), steady_vm()]
        pms = [PMSpec(100.0)] * 4
        placement = Placement(2, 4, assignment=np.array([0, 1]))
        dc = Datacenter(vms, pms, placement, seed=2)
        inj = FailureInjector(dc, failure_probability=0.0,
                              topology=Topology.racks(4, 2),
                              domain_failure_probability=1.0,
                              domain_repair_probability=0.0,
                              degrade_stranded=False, seed=3)
        inj.step(0)
        assert sorted(inj.record.blast_radii) == [0, 2]

    def test_pm_repair_blocked_while_domain_down(self):
        dc = spread_dc(n_pms=2)
        topo = Topology.single_domain(2)
        inj = FailureInjector(dc, failure_probability=0.0,
                              repair_probability=1.0,
                              topology=topo,
                              domain_failure_probability=1.0,
                              domain_repair_probability=0.0, seed=4)
        inj.step(0)
        assert inj.failed.all()
        inj.domain_failure_probability = 0.0
        inj.step(1)  # repair_probability=1 but the domain is still dark
        assert inj.failed.all()
        inj.domain_repair_probability = 1.0
        inj.step(2)  # domain restored, then PMs repair individually
        assert not inj.failed.any()

    def test_repair_durations_feed_mttr(self):
        dc = spread_dc(n_pms=1, n_vms=1)
        inj = FailureInjector(dc, failure_probability=1.0,
                              repair_probability=0.0, seed=5)
        inj.step(0)
        inj.failure_probability = 0.0
        inj.repair_probability = 1.0
        inj.step(3)
        assert inj.record.repair_durations == [3]


class TestGracefulDegradation:
    def _crash_with_spiking_vm(self, cap_free=40.0):
        # VM 0 spikes to 70 on the crashing PM; PM 1 has only 40 free.
        vms = [VMSpec(0.01, 0.09, 30.0, 40.0), steady_vm(100.0 - cap_free, 0.0)]
        pms = [PMSpec(100.0), PMSpec(100.0)]
        placement = Placement(2, 2, assignment=np.array([0, 1]))
        dc = Datacenter(vms, pms, placement, seed=6)
        dc._on[0] = True
        dc.vms[0].on = True
        return dc

    def test_stranded_vm_degrades_instead_of_dropping(self):
        dc = self._crash_with_spiking_vm()
        inj = FailureInjector(dc, failure_probability=0.0,
                              repair_probability=0.0, seed=7)
        inj.failed[0] = True
        inj._evacuate(0)
        # Full demand 70 does not fit, but R_b = 30 does: VM is throttled
        # and moved, not stranded.
        assert dc.placement.pm_of(0) == 1
        assert 0 in inj.degraded_vms
        assert not inj.stranded_vms
        assert inj.record.degraded_evacuations == 1
        assert dc.vm_demands()[0] == pytest.approx(30.0)

    def test_degraded_vm_restored_when_room_returns(self):
        dc = self._crash_with_spiking_vm()
        inj = FailureInjector(dc, failure_probability=0.0,
                              repair_probability=0.0, seed=8)
        inj.failed[0] = True
        inj._evacuate(0)
        assert 0 in inj.degraded_vms
        # VM 1 departs its spike budget: drop its demand by shrinking state.
        dc.vms[1].spec = VMSpec(0.01, 0.09, 10.0, 0.0)
        dc._r_base[1] = 10.0
        inj.step(0)
        assert not inj.degraded_vms
        assert inj.record.restorations == 1
        assert dc.vm_demands()[0] == pytest.approx(70.0)

    def test_degraded_intervals_accumulate(self):
        dc = self._crash_with_spiking_vm()
        inj = FailureInjector(dc, failure_probability=0.0,
                              repair_probability=0.0, seed=9)
        inj.failed[0] = True
        inj._evacuate(0)
        for t in range(3):
            inj.step(t)
        assert inj.record.degraded_vm_intervals == 3


class TestRetryAndBackoff:
    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_intervals=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_intervals=4, max_backoff_intervals=2)

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(base_backoff_intervals=1, max_backoff_intervals=8)
        assert [policy.backoff(n) for n in (1, 2, 3, 4, 5)] == [1, 2, 4, 8, 8]

    def test_failed_attempt_leaves_vm_on_source(self):
        dc = spread_dc()
        ex = MigrationExecutor(dc, failure_probability=1.0, seed=10)
        assert ex.attempt(0, 3, time=0) is False
        assert dc.placement.pm_of(0) == 0
        assert ex.failures == 1
        assert ex.in_backoff(0, time=0)

    def test_success_clears_backoff_state(self):
        dc = spread_dc()
        ex = MigrationExecutor(dc, failure_probability=1.0, seed=11)
        ex.attempt(0, 3, time=0)
        ex.failure_probability = 0.0
        assert ex.attempt(0, 3, time=5) is True
        assert dc.placement.pm_of(0) == 3
        assert not ex.in_backoff(0, time=5)

    def test_flapping_target_blacklisted(self):
        dc = spread_dc(n_vms=6, n_pms=6)
        retry = RetryPolicy(blacklist_threshold=2, blacklist_intervals=10)
        ex = MigrationExecutor(dc, failure_probability=1.0, retry=retry,
                               seed=12)
        ex.attempt(0, 5, time=0)
        assert ex.blacklisted_mask(0) is None  # one strike is not flapping
        ex.attempt(1, 5, time=0)
        mask = ex.blacklisted_mask(0)
        assert mask is not None and mask[5]
        assert not ex.blacklisted_mask(11)  # veto expires

    def test_zero_failure_probability_draws_no_rng(self):
        dc = spread_dc()
        ex = MigrationExecutor(dc, failure_probability=0.0, seed=13)
        before = ex._rng.bit_generator.state
        ex.attempt(0, 2, time=0)
        assert ex._rng.bit_generator.state == before

    def test_scheduler_skips_vm_in_backoff(self):
        # Overloaded PM whose best migration candidate is cooling down.
        vms = [VMSpec(0.5, 0.5, 60.0, 30.0), steady_vm(10.0, 0.0)]
        pms = [PMSpec(80.0), PMSpec(100.0)]
        placement = Placement(2, 2, assignment=np.array([0, 0]))
        dc = Datacenter(vms, pms, placement, seed=14)
        sched = DynamicScheduler(dc, migration_failure_probability=1.0,
                                 seed=15)
        dc._on[0] = True
        dc.vms[0].on = True  # load 90 > cap 80
        events = sched.resolve_overloads(0)
        assert events == []
        assert sched.failed_attempts_last_interval == 1
        # Next interval the VM is still backing off: no second attempt.
        events = sched.resolve_overloads(0)
        assert sched.executor.attempts == 1


class TestInvariants:
    """The two acceptance properties, over many random runs."""

    def test_no_vm_on_failed_pm_and_no_migration_into_one(self):
        for seed in range(6):
            vms, pms = generate_pattern_instance("equal", 40, seed=seed)
            placement = QueuingFFD(rho=0.01, d=16).place(vms, pms)
            dc = Datacenter(vms, pms, placement, seed=seed + 50)
            inj = FailureInjector(
                dc, failure_probability=0.05, repair_probability=0.2,
                topology=Topology.racks(len(pms), 4),
                domain_failure_probability=0.02,
                domain_repair_probability=0.3, seed=seed + 100,
            )
            sched = DynamicScheduler(
                dc, excluded_pms_fn=lambda: inj.failed,
                migration_failure_probability=0.2, seed=seed + 150,
            )
            for t in range(50):
                dc.step()
                inj.step(t)
                failed_before = inj.failed_mask
                for ev in sched.resolve_overloads(t):
                    assert not failed_before[ev.target_pm]
                on_failed = {
                    v for v in range(dc.n_vms)
                    if inj.failed[dc.placement.pm_of(v)]
                }
                assert on_failed == inj.stranded_vms

    def test_ample_headroom_means_no_stranding(self):
        # Twice the PMs any placement needs: every evacuation must succeed
        # (possibly degraded), so no VM is ever left on dead hardware.
        for seed in range(4):
            vms, pms = generate_pattern_instance("equal", 30, seed=seed)
            placement = QueuingFFD(rho=0.01, d=16).place(vms, pms)
            dc = Datacenter(vms, pms, placement, seed=seed + 60)
            inj = FailureInjector(dc, failure_probability=0.03,
                                  repair_probability=0.3, seed=seed + 110)
            for t in range(50):
                dc.step()
                inj.step(t)
                assert not inj.stranded_vms

    def test_seeded_determinism_identical_records(self):
        def run(seed):
            vms, pms = generate_pattern_instance("equal", 30, seed=21)
            placement = QueuingFFD(rho=0.01, d=16).place(vms, pms)
            dc = Datacenter(vms, pms, placement, seed=22)
            inj = FailureInjector(
                dc, failure_probability=0.05, repair_probability=0.2,
                topology=Topology.striped(len(pms), 5),
                domain_failure_probability=0.02,
                domain_repair_probability=0.3, seed=seed,
            )
            sched = DynamicScheduler(dc, excluded_pms_fn=lambda: inj.failed,
                                     migration_failure_probability=0.1,
                                     seed=seed + 1)
            for t in range(60):
                dc.step()
                inj.step(t)
                sched.resolve_overloads(t)
            return inj.record

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestScenarioIntegration:
    def test_correlated_scenario_reports_availability(self):
        vms, pms = generate_pattern_instance("equal", 40, seed=31)
        report = Scenario(
            vms, pms, placer=QueuingFFD(rho=0.01, d=16),
            topology=Topology.racks(len(pms), 4),
            failures={"failure_probability": 0.01,
                      "domain_failure_probability": 0.02,
                      "domain_repair_probability": 0.2},
            migration_failure_probability=0.1,
        ).run(80, seed=32)
        avail = report.availability
        assert avail is not None
        assert 0.0 <= avail["min_availability"] <= avail["mean_availability"] <= 1.0
        assert avail["domain_failures"] >= 1
        assert avail["blast_events"] >= 1
        assert "availability" in report.summary()

    def test_topology_alone_enables_failures(self):
        vms, pms = generate_pattern_instance("equal", 20, seed=33)
        report = Scenario(
            vms, pms, placer=QueuingFFD(rho=0.01, d=16),
            topology=Topology.racks(len(pms), 4),
        ).run(30, seed=34)
        assert report.failures is not None
        assert report.availability is not None

    def test_scenario_seeded_determinism(self):
        vms, pms = generate_pattern_instance("equal", 30, seed=35)

        def run():
            return Scenario(
                vms, pms, placer=QueuingFFD(rho=0.01, d=16),
                topology=Topology.racks(len(pms), 2),
                failures={"failure_probability": 0.02,
                          "domain_failure_probability": 0.01},
                migration_failure_probability=0.1,
            ).run(60, seed=36)

        a, b = run(), run()
        assert a.failures == b.failures
        assert a.availability == b.availability
