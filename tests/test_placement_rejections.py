"""Rejection-reason provenance: every placer explains every loser.

Satellite contract of the decision-provenance PR: each ``Placer`` (and the
migration target selector) must attach a *typed* rejection verdict to every
candidate PM it passes over — drawn from the fixed ``PLACEMENT_REASONS``
vocabulary, which is a wire protocol (``repro explain`` renders these
strings and recorded traces must stay readable).
"""

import numpy as np
import pytest

from repro.core.online import OnlineConsolidator
from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import Placement, PMSpec, VMSpec
from repro.placement.base import (
    PLACEMENT_REASONS,
    REASON_BLACKLISTED,
    REASON_CAPACITY,
    REASON_CHOSEN,
    REASON_CRASHED,
    REASON_CVR_THRESHOLD,
    REASON_FEASIBLE,
    REASON_SOURCE,
    REASON_SPREAD,
    REASON_VM_CAP,
    InsufficientCapacityError,
    truncate_candidates,
)
from repro.placement.ffd import (
    BestFitDecreasing,
    FirstFitDecreasing,
    NextFit,
    WorstFitDecreasing,
    ffd_by_base,
    ffd_by_peak,
    size_by_base,
    size_by_peak,
)
from repro.placement.grand import GreedyRandomPlacer
from repro.placement.rbex import RBExPlacer
from repro.placement.sbp import StochasticBinPacker
from repro.placement.spread import DomainSpreadConstraint
from repro.simulation.datacenter import Datacenter
from repro.simulation.migration import explain_targets
from repro.simulation.topology import Topology
from repro.telemetry import PlacementDecided, RingBufferSink, Telemetry

P_ON, P_OFF = 0.01, 0.09


def vm(base, extra=0.0, p_on=P_ON, p_off=P_OFF):
    return VMSpec(p_on, p_off, base, extra)


def pms(*caps):
    return [PMSpec(c) for c in caps]


def decisions_for(placer, vms, pm_list):
    """Run an instrumented pass; return its PlacementDecided events."""
    sink = RingBufferSink()
    tel = Telemetry(sink)
    placer.place_and_report(vms, pm_list, telemetry=tel)
    return [e for e in sink.events if isinstance(e, PlacementDecided)]


ALL_PLACERS = [
    pytest.param(lambda: FirstFitDecreasing(size_by_peak), id="FFD"),
    pytest.param(lambda: BestFitDecreasing(size_by_peak), id="BFD"),
    pytest.param(lambda: WorstFitDecreasing(size_by_peak), id="WFD"),
    pytest.param(lambda: NextFit(size_by_peak), id="NF"),
    pytest.param(lambda: ffd_by_peak(), id="RP"),
    pytest.param(lambda: ffd_by_base(), id="RB"),
    pytest.param(lambda: StochasticBinPacker(), id="SBP"),
    pytest.param(lambda: QueuingFFD(rho=0.01, d=16), id="QUEUE"),
    pytest.param(lambda: RBExPlacer(delta=0.3), id="RBEx"),
    pytest.param(lambda: GreedyRandomPlacer(rho=0.01, d=16, seed=3),
                 id="GRAND"),
]


class TestReasonVocabulary:
    def test_reason_strings_are_stable(self):
        # Wire protocol: recorded traces must stay explainable.  Changing
        # any of these strings breaks `repro explain` on old JSONL.
        assert PLACEMENT_REASONS == {
            "chosen", "feasible", "capacity", "cvr_threshold", "vm_cap",
            "spread_constraint", "crashed_pm", "blacklisted_pm", "source_pm",
            "draining_pm", "fleet_full", "shed_inbox_full", "shed_priority",
            "shed_solver_degraded",
        }

    @pytest.mark.parametrize("make_placer", ALL_PLACERS)
    def test_every_placer_emits_typed_verdicts(self, make_placer):
        vms = [vm(20, 10) for _ in range(6)]
        events = decisions_for(make_placer(), vms, pms(*[64.0] * 4))
        assert len(events) == len(vms)  # one decision per VM
        for e in events:
            assert set(e.cand_verdicts) <= PLACEMENT_REASONS
            assert len(e.cand_pms) == len(e.cand_scores)
            assert len(e.cand_pms) == len(e.cand_verdicts)
            assert e.total_pms == 4
            # exactly one winner per successful decision
            assert e.chosen_pm >= 0
            assert e.cand_verdicts.count(REASON_CHOSEN) == 1
            assert e.cand_verdicts[e.cand_pms.index(e.chosen_pm)] \
                == REASON_CHOSEN

    @pytest.mark.parametrize("make_placer", ALL_PLACERS)
    def test_no_decisions_without_telemetry(self, make_placer):
        # The zero-telemetry hot path must not pay for provenance.
        placer = make_placer()
        placer.place([vm(20, 10) for _ in range(4)], pms(*[64.0] * 4))
        assert placer.explainer is None


class TestGreedyRejections:
    def test_capacity_rejection(self):
        events = decisions_for(FirstFitDecreasing(size_by_peak),
                               [vm(20)], pms(10, 30))
        (e,) = events
        assert e.chosen_pm == 1
        assert e.cand_verdicts[e.cand_pms.index(0)] == REASON_CAPACITY

    def test_vm_cap_rejection(self):
        placer = FirstFitDecreasing(size_by_base, max_vms_per_pm=1)
        events = decisions_for(placer, [vm(5), vm(5)], pms(100, 100))
        second = events[1]
        assert second.chosen_pm == 1
        assert second.cand_verdicts[second.cand_pms.index(0)] == REASON_VM_CAP

    def test_spread_rejection(self):
        spread = DomainSpreadConstraint(Topology([0, 1]),
                                        max_vms_per_domain=1)
        placer = FirstFitDecreasing(size_by_base, spread=spread)
        events = decisions_for(placer, [vm(5), vm(5)], pms(100, 100))
        second = events[1]
        assert second.chosen_pm == 1
        assert second.cand_verdicts[second.cand_pms.index(0)] == REASON_SPREAD

    def test_infeasible_decision_recorded_before_raise(self):
        sink = RingBufferSink()
        tel = Telemetry(sink)
        with pytest.raises(InsufficientCapacityError):
            FirstFitDecreasing(size_by_peak).place_and_report(
                [vm(20)], pms(10, 5), telemetry=tel)
        events = [e for e in sink.events if isinstance(e, PlacementDecided)]
        (e,) = events
        assert e.chosen_pm == -1
        assert set(e.cand_verdicts) == {REASON_CAPACITY}


class TestSBPRejections:
    def test_overflow_probability_rejection(self):
        # Each VM alone fits (peak 9 <= 12), but two share too much
        # variance: the z-scored need exceeds the capacity, which is the
        # SBP analogue of the CVR threshold.
        bursty = vm(5, 4, p_on=0.5, p_off=0.5)
        events = decisions_for(StochasticBinPacker(epsilon=0.01),
                               [bursty, bursty], pms(12, 12))
        second = events[1]
        assert second.chosen_pm == 1
        assert second.cand_verdicts[second.cand_pms.index(0)] \
            == REASON_CVR_THRESHOLD
        assert second.score_kind == "overflow_probability"

    def test_peak_capacity_rejection(self):
        events = decisions_for(StochasticBinPacker(epsilon=0.01),
                               [vm(5, 10)], pms(10, 20))
        (e,) = events
        assert e.chosen_pm == 1
        assert e.cand_verdicts[e.cand_pms.index(0)] == REASON_CAPACITY


class TestQueuingFFDRejections:
    def test_vm_cap_rejection(self):
        placer = QueuingFFD(rho=0.01, d=1, cluster_method="none")
        events = decisions_for(placer, [vm(5, 5), vm(5, 5)], pms(100, 100))
        second = events[1]
        assert second.chosen_pm == 1
        assert second.cand_verdicts[second.cand_pms.index(0)] == REASON_VM_CAP

    def test_reservation_rejection(self):
        # One PM too small for the Eq. (17) reservation of two VMs but
        # fine for one: the second VM is turned away with cvr_threshold.
        placer = QueuingFFD(rho=0.01, d=16, cluster_method="none")
        big = vm(30, 30, p_on=0.2, p_off=0.2)
        events = decisions_for(placer, [big, big], pms(70, 200))
        second = events[1]
        assert second.chosen_pm == 1
        assert second.cand_verdicts[second.cand_pms.index(0)] \
            == REASON_CVR_THRESHOLD

    def test_spread_rejection(self):
        spread = DomainSpreadConstraint(Topology([0, 1]),
                                        max_vms_per_domain=1)
        placer = QueuingFFD(rho=0.01, d=16, cluster_method="none",
                            spread=spread)
        events = decisions_for(placer, [vm(5, 5), vm(5, 5)], pms(100, 100))
        second = events[1]
        assert second.chosen_pm == 1
        assert second.cand_verdicts[second.cand_pms.index(0)] == REASON_SPREAD

    def test_inputs_carry_model_provenance(self):
        placer = QueuingFFD(rho=0.01, d=16, cluster_method="none")
        events = decisions_for(placer, [vm(5, 5)], pms(100,))
        (e,) = events
        assert len(e.table_fingerprint) == 12
        assert e.score_kind == "reservation_headroom"
        assert e.p_on == pytest.approx(P_ON, abs=0.05)


class TestOnlineRejections:
    def test_admission_decision_recorded(self):
        sink = RingBufferSink()
        tel = Telemetry(sink)
        online = OnlineConsolidator([PMSpec(100.0)] * 3,
                                    QueuingFFD(rho=0.01, d=16),
                                    telemetry=tel)
        online.admit(vm(10, 10))
        events = [e for e in sink.events if isinstance(e, PlacementDecided)]
        (e,) = events
        assert e.context == "online"
        assert e.chosen_pm == 0
        assert e.cand_verdicts[e.cand_pms.index(0)] == REASON_CHOSEN
        assert set(e.cand_verdicts) <= PLACEMENT_REASONS

    def test_rejected_admission_recorded(self):
        sink = RingBufferSink()
        tel = Telemetry(sink)
        online = OnlineConsolidator([PMSpec(10.0)],
                                    QueuingFFD(rho=0.01, d=16),
                                    telemetry=tel)
        with pytest.raises(InsufficientCapacityError):
            online.admit(vm(50, 10))
        events = [e for e in sink.events if isinstance(e, PlacementDecided)]
        (e,) = events
        assert e.chosen_pm == -1
        assert e.cand_verdicts[0] == REASON_CVR_THRESHOLD


class TestMigrationRejections:
    def _dc(self):
        vms = [vm(10, 0), vm(10, 0), vm(10, 0)]
        pm_list = pms(100, 100, 100, 12)
        placement = Placement(len(vms), len(pm_list),
                              assignment=np.array([0, 0, 1]))
        return Datacenter(vms, pm_list, placement, seed=0)

    def test_source_crashed_blacklisted_capacity(self):
        dc = self._dc()
        crashed = np.array([False, True, False, False])
        blacklisted = np.array([False, False, True, False])
        verdicts, scores = explain_targets(dc, 0, 0, crashed=crashed,
                                           blacklisted=blacklisted)
        assert verdicts[0] == REASON_SOURCE
        assert verdicts[1] == REASON_CRASHED
        assert verdicts[2] == REASON_BLACKLISTED
        assert verdicts[3] == REASON_FEASIBLE  # 12 >= 10 demand
        assert len(scores) == 4

    def test_capacity_veto(self):
        dc = self._dc()
        big = [vm(50, 0), vm(10, 0), vm(10, 0)]
        pm_list = pms(100, 100, 100, 12)
        placement = Placement(3, 4, assignment=np.array([0, 0, 1]))
        dc = Datacenter(big, pm_list, placement, seed=0)
        verdicts, scores = explain_targets(dc, 0, 0)
        assert verdicts[3] == REASON_CAPACITY  # 50 > 12
        assert scores[3] < 0


class TestCandidateTruncation:
    def test_winner_and_feasible_kept_first(self):
        verdicts = (["capacity"] * 5 + ["feasible"] * 5 + ["chosen"]
                    + ["capacity"] * 5)
        keep, dropped = truncate_candidates(verdicts, chosen=10, top_k=8)
        assert dropped == 8
        assert 10 in keep                      # the winner survives
        assert set(keep) >= set(range(5, 10))  # all feasible survive
        assert keep == sorted(keep)            # rendered in PM order

    def test_no_truncation_when_small(self):
        keep, dropped = truncate_candidates(["chosen", "feasible"], 0)
        assert keep == [0, 1]
        assert dropped == 0

    def test_truncation_is_counted_in_events(self):
        events = decisions_for(FirstFitDecreasing(size_by_base),
                               [vm(5)], pms(*[100] * 20))
        (e,) = events
        assert len(e.cand_pms) == 8
        assert e.dropped_candidates == 12
        assert e.total_pms == 20
