"""Tests for repro.queueing.geom_geom_k — the finite-source queue model."""

import numpy as np
import pytest

from repro.markov.onoff import OnOffChain
from repro.queueing.geom_geom_k import FiniteSourceGeomGeomK


@pytest.fixture
def model():
    return FiniteSourceGeomGeomK(k=10, p_on=0.01, p_off=0.09)


class TestConstruction:
    def test_requires_positive_k(self):
        with pytest.raises(ValueError):
            FiniteSourceGeomGeomK(0, 0.1, 0.1)

    def test_requires_nonzero_probs(self):
        with pytest.raises(ValueError):
            FiniteSourceGeomGeomK(5, 0.0, 0.1)
        with pytest.raises(ValueError):
            FiniteSourceGeomGeomK(5, 0.1, 0.0)


class TestStationary:
    def test_matches_closed_form_binomial(self, model):
        np.testing.assert_allclose(
            model.stationary_distribution(),
            model.stationary_distribution_closed_form(),
            atol=1e-10,
        )

    @pytest.mark.parametrize("k,p_on,p_off", [
        (3, 0.5, 0.5), (7, 0.2, 0.6), (20, 0.01, 0.09), (16, 0.9, 0.05),
    ])
    def test_closed_form_across_parameters(self, k, p_on, p_off):
        m = FiniteSourceGeomGeomK(k, p_on, p_off)
        np.testing.assert_allclose(
            m.stationary_distribution(),
            m.stationary_distribution_closed_form(),
            atol=1e-9,
        )

    def test_cached_per_method(self, model):
        a = model.stationary_distribution("linear")
        b = model.stationary_distribution("linear")
        assert a is b  # cache returns the same array object

    def test_matches_ensemble_simulation(self):
        m = FiniteSourceGeomGeomK(6, 0.05, 0.2)
        chain = OnOffChain(0.05, 0.2)
        states = chain.simulate_ensemble(6, 100_000, start_stationary=True, seed=0)
        busy = states.sum(axis=0)
        empirical = np.bincount(busy, minlength=7) / busy.size
        np.testing.assert_allclose(empirical, m.stationary_distribution(), atol=0.01)

    def test_expected_demand(self, model):
        pi = model.stationary_distribution()
        mean_from_pi = float(np.arange(11) @ pi)
        assert model.expected_demand() == pytest.approx(mean_from_pi, abs=1e-10)
        assert model.expected_demand() == pytest.approx(10 * 0.1)


class TestOverflow:
    def test_overflow_zero_at_k(self, model):
        assert model.overflow_probability(10) == 0.0
        assert model.overflow_probability(15) == 0.0

    def test_overflow_decreasing_in_windows(self, model):
        values = [model.overflow_probability(K) for K in range(11)]
        assert all(a >= b - 1e-15 for a, b in zip(values, values[1:]))

    def test_overflow_at_zero_is_on_probability_complement(self, model):
        # P[demand > 0] = 1 - pi_0
        pi = model.stationary_distribution()
        assert model.overflow_probability(0) == pytest.approx(1 - pi[0])

    def test_min_windows_satisfies_bound(self, model):
        for rho in (0.3, 0.1, 0.01, 0.001):
            K = model.min_windows_for_overflow(rho)
            assert model.overflow_probability(K) <= rho + 1e-12
            if K > 0:
                assert model.overflow_probability(K - 1) > rho

    def test_min_windows_monotone_in_rho(self, model):
        ks = [model.min_windows_for_overflow(r) for r in (0.5, 0.1, 0.01, 1e-4)]
        assert ks == sorted(ks)

    def test_rho_one_needs_zero_windows(self, model):
        assert model.min_windows_for_overflow(1.0) == 0

    def test_rho_zero_needs_k_windows(self, model):
        assert model.min_windows_for_overflow(0.0) == 10

    def test_negative_windows_rejected(self, model):
        with pytest.raises(ValueError):
            model.overflow_probability(-1)


class TestLossSystem:
    def test_kernel_rows_stochastic(self, model):
        P = model.loss_system_kernel(4)
        assert P.shape == (5, 5)
        np.testing.assert_allclose(P.sum(axis=1), 1.0, atol=1e-10)
        assert np.all(P >= 0)

    def test_full_windows_equals_unrestricted(self, model):
        # With K = k clipping does nothing.
        full = model.demand_chain().transition_matrix
        np.testing.assert_allclose(model.loss_system_kernel(10), full, atol=1e-15)

    def test_distribution_sums_to_one(self, model):
        pi = model.loss_system_distribution(3)
        assert pi.shape == (4,)
        assert pi.sum() == pytest.approx(1.0)

    def test_time_blocking_decreasing_in_windows(self, model):
        blocks = [model.time_blocking_probability(K) for K in range(1, 11)]
        assert all(a >= b - 1e-12 for a, b in zip(blocks, blocks[1:]))

    def test_blocking_below_overflow_of_one_fewer(self, model):
        # Loss-system full-probability is related to, but not above, the
        # unrestricted tail at K-1 (clipping removes mass above K).
        for K in (2, 4, 6):
            assert model.time_blocking_probability(K) <= (
                model.overflow_probability(K - 1) + 1e-12
            )

    def test_invalid_window_counts(self, model):
        with pytest.raises(ValueError):
            model.loss_system_kernel(0)
        with pytest.raises(ValueError):
            model.loss_system_kernel(11)
