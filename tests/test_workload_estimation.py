"""Tests for repro.workload.estimation — fitting the four-tuple from traces."""

import numpy as np
import pytest

from repro.core.types import VMSpec
from repro.workload.estimation import (
    classify_states,
    estimate_switch_probabilities,
    fit_fleet,
    fit_onoff,
    two_means_split,
)
from repro.workload.onoff_generator import demand_trace, ensemble_states


def synthetic_trace(vm: VMSpec, n_steps: int, seed: int, noise: float = 0.0):
    states = ensemble_states([vm], n_steps, start_stationary=True, seed=seed)
    trace = demand_trace([vm], states)[0]
    if noise:
        rng = np.random.default_rng(seed + 1)
        trace = trace + rng.normal(0.0, noise, trace.size)
    return trace, states[0]


class TestTwoMeansSplit:
    def test_bimodal_threshold_between_levels(self):
        trace = np.concatenate([np.full(90, 10.0), np.full(10, 20.0)])
        thr = two_means_split(trace)
        assert 10.0 < thr < 20.0

    def test_constant_trace(self):
        assert two_means_split(np.full(10, 5.0)) == 5.0

    def test_noisy_bimodal(self):
        rng = np.random.default_rng(0)
        trace = np.concatenate([
            rng.normal(10, 0.5, 900), rng.normal(20, 0.5, 100)
        ])
        thr = two_means_split(trace)
        assert 12.0 < thr < 18.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            two_means_split(np.empty(0))
        with pytest.raises(ValueError):
            two_means_split(np.array([1.0, np.nan]))


class TestClassifyStates:
    def test_threshold_semantics(self):
        states = classify_states(np.array([1.0, 2.0, 3.0]), 2.0)
        np.testing.assert_array_equal(states, [0, 0, 1])


class TestEstimateSwitchProbabilities:
    def test_exact_counting(self):
        # OFF OFF ON ON OFF: 1 off->on out of 2 off-steps wait:
        # prev=[0,0,1,1], curr=[0,1,1,0]: off->on = 1 of 2 off; on->off = 1 of 2 on.
        states = np.array([0, 0, 1, 1, 0])
        p_on, p_off, n_trans, ll = estimate_switch_probabilities(states)
        assert p_on == pytest.approx(0.5)
        assert p_off == pytest.approx(0.5)
        assert n_trans == 2
        assert ll < 0

    def test_no_transitions_clipped(self):
        p_on, p_off, n_trans, _ = estimate_switch_probabilities(
            np.zeros(100, dtype=int)
        )
        assert p_on == pytest.approx(1e-4)
        assert n_trans == 0

    def test_recovers_true_parameters(self):
        from repro.markov.onoff import OnOffChain

        traj = OnOffChain(0.02, 0.1).simulate(400_000, seed=1)
        p_on, p_off, _, _ = estimate_switch_probabilities(traj)
        assert p_on == pytest.approx(0.02, rel=0.1)
        assert p_off == pytest.approx(0.1, rel=0.1)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            estimate_switch_probabilities(np.array([1]))


class TestFitOnOff:
    def test_recovers_clean_synthetic_vm(self):
        vm = VMSpec(0.02, 0.1, r_base=10.0, r_extra=8.0)
        trace, _ = synthetic_trace(vm, 200_000, seed=2)
        fit = fit_onoff(trace)
        assert fit.p_on == pytest.approx(0.02, rel=0.15)
        assert fit.p_off == pytest.approx(0.1, rel=0.15)
        assert fit.r_base == pytest.approx(10.0, abs=0.01)
        assert fit.r_extra == pytest.approx(8.0, abs=0.01)
        assert fit.on_fraction == pytest.approx(0.02 / 0.12, abs=0.01)

    def test_recovers_noisy_synthetic_vm(self):
        vm = VMSpec(0.02, 0.1, r_base=10.0, r_extra=8.0)
        trace, _ = synthetic_trace(vm, 100_000, seed=3, noise=0.5)
        fit = fit_onoff(trace)
        assert fit.r_base == pytest.approx(10.0, abs=0.5)
        assert fit.r_extra == pytest.approx(8.0, abs=1.0)
        assert fit.p_on == pytest.approx(0.02, rel=0.3)

    def test_to_vmspec_roundtrip(self):
        vm = VMSpec(0.02, 0.1, 10.0, 8.0)
        trace, _ = synthetic_trace(vm, 50_000, seed=4)
        spec = fit_onoff(trace).to_vmspec()
        assert isinstance(spec, VMSpec)
        assert spec.r_peak == pytest.approx(18.0, abs=0.5)

    def test_percentile_margin_is_conservative(self):
        vm = VMSpec(0.02, 0.1, 10.0, 8.0)
        trace, _ = synthetic_trace(vm, 50_000, seed=5, noise=0.5)
        mean_fit = fit_onoff(trace)
        cons_fit = fit_onoff(trace, percentile_margin=0.95)
        assert cons_fit.r_base >= mean_fit.r_base
        assert cons_fit.r_base + cons_fit.r_extra >= (
            mean_fit.r_base + mean_fit.r_extra
        )

    def test_explicit_threshold_honoured(self):
        trace = np.array([1.0, 5.0, 1.0, 5.0, 1.0])
        fit = fit_onoff(trace, threshold=3.0)
        assert fit.threshold == 3.0
        assert fit.on_fraction == pytest.approx(2 / 5)

    def test_constant_trace_degenerates_gracefully(self):
        fit = fit_onoff(np.full(100, 7.0))
        assert fit.r_base == pytest.approx(7.0)
        assert fit.r_extra == 0.0
        assert fit.on_fraction == 0.0
        fit.to_vmspec()  # must still be constructible

    def test_log_likelihood_prefers_truth(self):
        """The fitted parameters have higher likelihood than perturbed ones."""
        vm = VMSpec(0.02, 0.1, 10.0, 8.0)
        trace, states = synthetic_trace(vm, 100_000, seed=6)
        fit = fit_onoff(trace)
        # Compute likelihood of a clearly wrong parameterization.
        s = states.astype(bool)
        prev, curr = s[:-1], s[1:]
        wrong_p_on, wrong_p_off = 0.3, 0.3
        ll_wrong = (
            (~prev & curr).sum() * np.log(wrong_p_on)
            + (~prev & ~curr).sum() * np.log(1 - wrong_p_on)
            + (prev & ~curr).sum() * np.log(wrong_p_off)
            + (prev & curr).sum() * np.log(1 - wrong_p_off)
        )
        assert fit.log_likelihood > ll_wrong

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            fit_onoff(np.array([1.0]))
        with pytest.raises(ValueError):
            fit_onoff(np.array([1.0, np.inf]))
        with pytest.raises(ValueError):
            fit_onoff(np.arange(10.0), percentile_margin=1.5)


class TestFitFleet:
    def test_fits_every_row(self):
        vms = [VMSpec(0.02, 0.1, 10.0, 8.0), VMSpec(0.05, 0.2, 4.0, 12.0)]
        states = ensemble_states(vms, 100_000, start_stationary=True, seed=7)
        traces = demand_trace(vms, states)
        fits = fit_fleet(traces)
        assert len(fits) == 2
        assert fits[0].r_base == pytest.approx(10.0, abs=0.1)
        assert fits[1].r_extra == pytest.approx(12.0, abs=0.1)
        assert fits[1].p_off == pytest.approx(0.2, rel=0.15)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            fit_fleet(np.arange(10.0))

    def test_end_to_end_consolidation_from_traces(self):
        """The estimation closes the loop: traces -> specs -> placement."""
        from repro.core.queuing_ffd import QueuingFFD
        from repro.workload.patterns import generate_pattern_instance

        vms, pms = generate_pattern_instance("equal", 30, seed=8)
        states = ensemble_states(vms, 50_000, start_stationary=True, seed=9)
        traces = demand_trace(vms, states)
        fitted = [f.to_vmspec() for f in fit_fleet(traces)]
        placement = QueuingFFD(rho=0.01, d=16).place(fitted, pms)
        assert placement.all_placed
        # Fitted specs are close to truth, so PM counts should agree closely.
        truth = QueuingFFD(rho=0.01, d=16).place(vms, pms)
        assert abs(placement.n_used_pms - truth.n_used_pms) <= 2
