"""End-to-end integration tests: the paper's central claims, verified.

These cross module boundaries — analytic MapCal guarantees against
simulated workloads, full placement pipelines against the runtime
scheduler — and assert the *shapes* the paper reports.
"""

import numpy as np
import pytest

from repro.analysis.cvr import cvr_per_pm, evaluate_placement_cvr
from repro.core.mapcal import mapcal
from repro.core.online import OnlineConsolidator
from repro.core.queuing_ffd import QueuingFFD
from repro.placement.ffd import ffd_by_base, ffd_by_peak
from repro.placement.rbex import RBExPlacer
from repro.simulation.scheduler import run_simulation
from repro.workload.onoff_generator import ensemble_states
from repro.workload.patterns import generate_pattern_instance, make_pms, table_i_vms

RHO, D = 0.01, 16


class TestCvrGuarantee:
    """The paper's core claim: QUEUE placements keep CVR <= rho."""

    @pytest.mark.parametrize("pattern", ["equal", "small", "large"])
    def test_mean_cvr_bounded(self, pattern):
        vms, pms = generate_pattern_instance(pattern, 120, seed=10)
        placement = QueuingFFD(rho=RHO, d=D).place(vms, pms)
        stats = evaluate_placement_cvr(placement, vms, pms,
                                       n_steps=40_000, seed=11)
        # Mean over PMs must be within statistical noise of rho; the paper
        # itself admits "very few PMs with CVRs slightly higher than rho".
        assert stats["mean"] <= RHO * 1.3
        per_pm = stats["per_pm"]
        assert (per_pm > 2.5 * RHO).mean() < 0.1

    def test_analytic_equals_empirical_per_pm(self):
        """For a PM with known hosted set, the analytic overflow probability
        matches the simulated CVR."""
        from repro.queueing.geom_geom_k import FiniteSourceGeomGeomK

        vms, pms = generate_pattern_instance("equal", 100, seed=12)
        placer = QueuingFFD(rho=RHO, d=D)
        placement, states_list = placer.place_with_states(vms, pms)
        mapping = placer.mapping_for(vms)
        sim_states = ensemble_states(vms, 60_000, start_stationary=True, seed=13)
        cvrs = cvr_per_pm(placement, vms, pms, sim_states)
        checked = 0
        for pm_idx, state in enumerate(states_list):
            k = state.count
            if k < 3:
                continue
            model = FiniteSourceGeomGeomK(k, 0.01, 0.09)
            # The PM violates when > K' VMs spike, where K' is the number of
            # blocks that physically fit: depends on capacity headroom. With
            # Eq. 17 satisfied, at least mapping[k] blocks fit, so the CVR is
            # at most the analytic tail at mapping[k].
            bound = model.overflow_probability(mapping.blocks_for(k))
            assert cvrs[pm_idx] <= max(2.0 * bound, 0.02) + 0.01
            checked += 1
        assert checked > 0


class TestPackingShapes:
    def test_paper_reduction_ordering(self):
        """Abstract: ~45% reduction (large spikes) > ~30% (normal) > (small)."""
        reductions = {}
        for pattern in ("equal", "small", "large"):
            vals = []
            for seed in (20, 21, 22):
                vms, pms = generate_pattern_instance(pattern, 200, seed=seed)
                queue = QueuingFFD(rho=RHO, d=D).place(vms, pms)
                rp = ffd_by_peak(max_vms_per_pm=D).place(vms, pms)
                vals.append(100 * (rp.n_used_pms - queue.n_used_pms) / rp.n_used_pms)
            reductions[pattern] = np.mean(vals)
        assert reductions["large"] > reductions["equal"] > reductions["small"]
        assert reductions["large"] > 35.0   # paper: up to 45%
        assert 15.0 < reductions["equal"] < 40.0  # paper: ~30%

    def test_queue_between_rb_and_rp(self):
        vms, pms = generate_pattern_instance("equal", 300, seed=23)
        queue = QueuingFFD(rho=RHO, d=D).place(vms, pms)
        rb = ffd_by_base(max_vms_per_pm=D).place(vms, pms)
        rp = ffd_by_peak(max_vms_per_pm=D).place(vms, pms)
        assert rb.n_used_pms < queue.n_used_pms < rp.n_used_pms


class TestRuntimeShapes:
    """Fig. 9/10 shapes under the live-migration scheduler."""

    @pytest.fixture(scope="class")
    def runtime_results(self):
        results = {}
        vms = table_i_vms("equal", 100, seed=30)
        pms = make_pms(100, seed=30)
        strategies = {
            "QUEUE": QueuingFFD(rho=RHO, d=D),
            "RB": ffd_by_base(max_vms_per_pm=D),
            "RB-EX": RBExPlacer(0.3, max_vms_per_pm=D),
        }
        for name, placer in strategies.items():
            placement = placer.place(vms, pms)
            results[name] = run_simulation(vms, pms, placement,
                                           n_intervals=100, seed=31)
        return results

    def test_queue_rarely_migrates(self, runtime_results):
        assert runtime_results["QUEUE"].total_migrations <= 3

    def test_rb_migrates_an_order_more(self, runtime_results):
        assert runtime_results["RB"].total_migrations >= (
            5 * max(runtime_results["QUEUE"].total_migrations, 1)
        )

    def test_rbex_between(self, runtime_results):
        rb = runtime_results["RB"].total_migrations
        rbex = runtime_results["RB-EX"].total_migrations
        assert rbex <= rb

    def test_rb_pm_count_grows_from_tight_start(self, runtime_results):
        series = runtime_results["RB"].record.pms_used_series
        assert series[-1] >= series[0]

    def test_queue_pm_count_stable(self, runtime_results):
        series = runtime_results["QUEUE"].record.pms_used_series
        assert series.max() - series.min() <= 1

    def test_rb_final_pms_not_more_than_queue(self, runtime_results):
        # Paper Fig. 9(b): RB commonly uses fewer PMs at the end (cycle
        # migration keeps its count low).
        assert (runtime_results["RB"].final_pms_used
                <= runtime_results["QUEUE"].final_pms_used + 1)


class TestOnlineMatchesOffline:
    def test_online_single_arrivals_equal_offline_first_fit(self):
        """Feeding VMs one-by-one in Algorithm 2's order reproduces the
        offline QueuingFFD placement exactly."""
        vms, pms = generate_pattern_instance("equal", 60, seed=40)
        placer = QueuingFFD(rho=RHO, d=D)
        offline = placer.place(vms, pms)
        online = OnlineConsolidator(pms, QueuingFFD(rho=RHO, d=D))
        order = placer.order_vms(vms)
        pm_by_vm = {}
        for idx in order:
            _, pm = online.admit(vms[int(idx)])
            pm_by_vm[int(idx)] = pm
        for vm_idx in range(len(vms)):
            assert pm_by_vm[vm_idx] == offline.pm_of(vm_idx)

    def test_online_batch_equals_offline(self):
        vms, pms = generate_pattern_instance("equal", 60, seed=41)
        offline = QueuingFFD(rho=RHO, d=D).place(vms, pms)
        online = OnlineConsolidator(pms, QueuingFFD(rho=RHO, d=D))
        results = online.admit_batch(vms)
        for vm_idx, (_, pm) in enumerate(results):
            assert pm == offline.pm_of(vm_idx)


class TestMapcalSimulationAgreement:
    @pytest.mark.parametrize("k,rho", [(6, 0.05), (10, 0.01), (16, 0.02)])
    def test_blocks_bound_simulated_violations(self, k, rho):
        from repro.markov.onoff import OnOffChain

        K = mapcal(k, 0.01, 0.09, rho)
        states = OnOffChain(0.01, 0.09).simulate_ensemble(
            k, 200_000, start_stationary=True, seed=k)
        violation = float((states.sum(axis=0) > K).mean())
        assert violation <= rho * 1.5 + 0.002
