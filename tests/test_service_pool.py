"""Elastic PM pool: hysteresis, two-phase scale-down, the retire guard."""

import pytest

from repro.service.pool import (
    ACTIVE,
    DRAINING,
    RETIRED,
    STANDBY,
    ElasticPMPool,
    PoolGuardError,
)


def pool(**kwargs):
    defaults = dict(initial_active=4, low_watermark=1, high_watermark=2,
                    patience=3, drain_ticks=2)
    defaults.update(kwargs)
    return ElasticPMPool(6, **defaults)


def run_policy(p, empty):
    """One service evaluation: propose, apply, advance the clocks."""
    actions = p.evaluate(empty)
    for action, pm in actions:
        p.apply(action, pm, pm_empty=pm in set(empty))
    p.tick(empty)
    return actions


class TestLifecycle:
    def test_initial_split(self):
        p = pool()
        assert p.counts() == {ACTIVE: 4, STANDBY: 2, DRAINING: 0, RETIRED: 0}
        assert p.active_indices() == [0, 1, 2, 3]

    def test_scale_up_wakes_standby_when_reserve_dry(self):
        p = pool()
        # no empty active PMs -> below low watermark -> wake a standby
        assert run_policy(p, empty=[]) == [("up", 4)]
        assert p.status[4] == ACTIVE

    def test_scale_down_needs_patience(self):
        p = pool()  # patience=3: two over-watermark ticks are not enough
        for _ in range(2):
            assert run_policy(p, empty=[0, 1, 2, 3]) == []
        assert run_policy(p, empty=[0, 1, 2, 3]) == [("down_prepare", 3)]
        assert p.status[3] == DRAINING
        assert 3 not in p.active_indices()  # drains take no admissions

    def test_drain_commits_only_after_drain_ticks(self):
        p = pool(patience=1, drain_ticks=2)
        run_policy(p, empty=[0, 1, 2, 3])      # prepares PM 3
        # reserve back at the watermark while the drain ages
        assert run_policy(p, empty=[0, 1, 3]) == []  # age 1 < 2
        actions = run_policy(p, empty=[0, 1, 3])
        assert ("down_commit", 3) in actions
        assert p.status[3] == RETIRED

    def test_pressure_aborts_the_drain_instead_of_waking_standby(self):
        p = pool(patience=1)
        run_policy(p, empty=[0, 1, 2, 3])  # prepares PM 3
        assert p.status[3] == DRAINING
        actions = run_policy(p, empty=[])  # reserve dry while draining
        assert actions == [("down_abort", 3)]
        assert p.status[3] == ACTIVE
        assert p._drain_age == {}

    def test_retirement_is_terminal(self):
        p = pool(patience=1, drain_ticks=1)
        run_policy(p, empty=[0, 1, 2, 3])
        run_policy(p, empty=[0, 1, 3])
        assert p.status[3] == RETIRED
        # pressure wakes the remaining standby machines, never the retiree
        for _ in range(4):
            for action, pm in run_policy(p, empty=[]):
                assert (action, p.status[pm]) == ("up", ACTIVE)
        assert p.status[3] == RETIRED


class TestGuard:
    def test_never_retires_a_pm_hosting_vms(self):
        p = pool()
        p.apply("down_prepare", 3)
        with pytest.raises(PoolGuardError, match="still hosts VMs"):
            p.apply("down_commit", 3, pm_empty=False)
        assert p.status[3] == DRAINING  # unchanged; decision can roll back

    def test_lifecycle_order_is_enforced(self):
        p = pool()
        with pytest.raises(PoolGuardError):
            p.apply("up", 0)            # already active
        with pytest.raises(PoolGuardError):
            p.apply("down_commit", 0)   # active, never prepared
        with pytest.raises(PoolGuardError):
            p.apply("down_abort", 0)    # nothing to abort
        with pytest.raises(PoolGuardError):
            p.apply("down_prepare", 4)  # standby cannot drain

    def test_unknown_action_and_bad_index(self):
        p = pool()
        with pytest.raises(ValueError):
            p.apply("sideways", 0)
        with pytest.raises(ValueError):
            p.apply("up", 99)


class TestDurability:
    def test_capture_restore_round_trips_clocks(self):
        p = pool(patience=5)
        run_policy(p, empty=[0, 1, 2, 3])  # accumulates over_ticks
        p.apply("down_prepare", 3)
        p.tick([0, 1, 2])
        snapshot = p.capture_state()
        fresh = pool(patience=5)
        fresh.restore_state(snapshot)
        assert fresh.status == p.status
        assert fresh._over_ticks == p._over_ticks
        assert fresh._drain_age == p._drain_age
        assert fresh.capture_state() == snapshot

    def test_restore_rejects_wrong_fleet_size(self):
        snapshot = pool().capture_state()
        with pytest.raises(ValueError):
            ElasticPMPool(3).restore_state(snapshot)

    def test_restore_rejects_unknown_status(self):
        snapshot = pool().capture_state()
        snapshot["status"][0] = "melted"
        with pytest.raises(ValueError):
            pool().restore_state(snapshot)


class TestValidation:
    def test_constructor_bounds(self):
        with pytest.raises(ValueError):
            ElasticPMPool(0)
        with pytest.raises(ValueError):
            ElasticPMPool(4, initial_active=5)
        with pytest.raises(ValueError):
            ElasticPMPool(4, low_watermark=3, high_watermark=1)
        with pytest.raises(ValueError):
            ElasticPMPool(4, patience=0)
