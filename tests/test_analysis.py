"""Tests for repro.analysis — CVR, consolidation metrics, reporting."""

import numpy as np
import pytest

from repro.analysis.consolidation import (
    consolidation_ratio,
    pm_reduction_percent,
    pms_used,
)
from repro.analysis.cvr import cvr_from_loads, cvr_per_pm, evaluate_placement_cvr
from repro.analysis.report import ExperimentResult, render_result
from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import Placement, PMSpec, VMSpec
from repro.workload.patterns import generate_pattern_instance


class TestCvrFromLoads:
    def test_fraction_of_violating_intervals(self):
        loads = np.array([[5.0, 15.0, 25.0, 5.0]])
        caps = np.array([10.0])
        np.testing.assert_allclose(cvr_from_loads(loads, caps), [0.5])

    def test_boundary_not_a_violation(self):
        loads = np.array([[10.0, 10.0]])
        caps = np.array([10.0])
        np.testing.assert_allclose(cvr_from_loads(loads, caps), [0.0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cvr_from_loads(np.zeros(3), np.ones(1))
        with pytest.raises(ValueError):
            cvr_from_loads(np.zeros((2, 3)), np.ones(3))


class TestCvrPerPm:
    def test_deterministic_states(self):
        vms = [VMSpec(0.01, 0.09, 8.0, 4.0)]
        pms = [PMSpec(10.0)]
        placement = Placement(1, 1, assignment=np.array([0]))
        states = np.array([[False, True, True, False]])
        cvr = cvr_per_pm(placement, vms, pms, states)
        np.testing.assert_allclose(cvr, [0.5])


class TestEvaluatePlacementCvr:
    def test_queue_placement_bounded(self):
        vms, pms = generate_pattern_instance("equal", 60, seed=0)
        placement = QueuingFFD(rho=0.01, d=16).place(vms, pms)
        stats = evaluate_placement_cvr(placement, vms, pms, n_steps=30_000, seed=1)
        assert stats["mean"] <= 0.01 + 0.005
        assert stats["n_used"] == placement.n_used_pms
        assert len(stats["per_pm"]) == placement.n_used_pms

    def test_summary_consistency(self):
        vms, pms = generate_pattern_instance("equal", 40, seed=2)
        placement = QueuingFFD().place(vms, pms)
        stats = evaluate_placement_cvr(placement, vms, pms, n_steps=5000, seed=3)
        per_pm = stats["per_pm"]
        assert stats["mean"] == pytest.approx(float(np.mean(per_pm)))
        assert stats["max"] == pytest.approx(float(np.max(per_pm)))


class TestConsolidationMetrics:
    def _placement(self, assignment, n_pms):
        return Placement(len(assignment), n_pms, assignment=np.array(assignment))

    def test_pms_used(self):
        assert pms_used(self._placement([0, 0, 1], 4)) == 2

    def test_consolidation_ratio(self):
        assert consolidation_ratio(self._placement([0, 0, 1, 1], 4)) == 2.0

    def test_consolidation_ratio_empty(self):
        assert consolidation_ratio(Placement(0, 3)) == 0.0

    def test_pm_reduction_percent(self):
        candidate = self._placement([0, 0, 0], 4)
        baseline = self._placement([0, 1, 2], 4)
        assert pm_reduction_percent(candidate, baseline) == pytest.approx(200 / 3)

    def test_pm_reduction_negative_when_worse(self):
        candidate = self._placement([0, 1], 4)
        baseline = self._placement([0, 0], 4)
        assert pm_reduction_percent(candidate, baseline) == -100.0

    def test_zero_baseline_raises(self):
        with pytest.raises(ValueError):
            pm_reduction_percent(self._placement([0], 2), Placement(0, 2))


class TestExperimentResult:
    def test_add_row_arity_checked(self):
        r = ExperimentResult("x", "d", headers=["a", "b"])
        r.add_row(1, 2)
        with pytest.raises(ValueError):
            r.add_row(1)

    def test_column_extraction(self):
        r = ExperimentResult("x", "d", headers=["a", "b"])
        r.add_row(1, 10)
        r.add_row(2, 20)
        assert r.column("b") == [10, 20]
        with pytest.raises(KeyError):
            r.column("c")

    def test_render_contains_everything(self):
        r = ExperimentResult("fig0", "demo", params={"rho": 0.01},
                             headers=["a"], rows=[[1.5]])
        r.notes.append("shape ok")
        text = render_result(r)
        assert "fig0" in text and "rho=0.01" in text
        assert "1.500" in text and "note: shape ok" in text
