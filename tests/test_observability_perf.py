"""Performance observatory: attribution, budgets, traces, sweep, CLI gate."""

from __future__ import annotations

import json

import pytest

from repro.analysis.regression import metric_tolerance, regression_diff
from repro.experiments.runner import main
from repro.observability.perf import (
    PHASE_ORDER,
    BudgetRule,
    MemoryProbe,
    PerfBudget,
    PerfSnapshot,
    PhaseAttributor,
    chrome_trace_to_spans,
    flatten_metrics,
    run_perf_sweep,
    spans_to_chrome_trace,
)
from repro.telemetry.profiling import Profiler, Span


def synthetic_tree() -> Profiler:
    """A hand-built profiler tree with known per-phase self times."""
    prof = Profiler()
    tick = prof.root.child("tick")
    tick.count, tick.total_seconds = 2, 1.0
    demand = tick.child("phase.demand")
    demand.count, demand.total_seconds = 2, 0.30
    solve = demand.child("mapcal.solve")  # unmapped -> inherits demand
    solve.count, solve.total_seconds = 4, 0.10
    sched = tick.child("phase.scheduler")
    sched.count, sched.total_seconds = 2, 0.25
    mig = sched.child("migration.attempt")  # mapped -> its own phase
    mig.count, mig.total_seconds, mig.errors = 3, 0.05, 1
    emit = tick.child("telemetry.emit")
    emit.count, emit.total_seconds = 10, 0.15
    return prof


class TestPhaseAttribution:
    def test_phases_exactly_partition_tick_time(self):
        report = PhaseAttributor().attribute(synthetic_tree())
        assert report.tick_count == 2
        assert report.tick_seconds == pytest.approx(1.0)
        assert sum(report.phase_seconds.values()) == pytest.approx(
            report.tick_seconds)

    def test_self_time_lands_in_the_mapped_phase(self):
        report = PhaseAttributor().attribute(synthetic_tree())
        # demand span 0.30 total, 0.10 of it in the (inherited) solve child
        assert report.phase_seconds["demand"] == pytest.approx(0.30)
        # migration is mapped away from its scheduler parent
        assert report.phase_seconds["scheduler"] == pytest.approx(0.20)
        assert report.phase_seconds["migration"] == pytest.approx(0.05)
        assert report.phase_seconds["telemetry"] == pytest.approx(0.15)
        # tick's own bookkeeping: 1.0 - 0.30 - 0.25 - 0.15
        assert report.phase_seconds["other"] == pytest.approx(0.30)

    def test_span_calls_and_errors_are_flat_aggregates(self):
        report = PhaseAttributor().attribute(synthetic_tree())
        assert "<root>" not in report.span_calls
        assert report.span_calls["migration.attempt"] == 3
        assert report.span_calls["mapcal.solve"] == 4
        assert report.span_errors == {"migration.attempt": 1}

    def test_fractions_and_table(self):
        report = PhaseAttributor().attribute(synthetic_tree())
        assert sum(report.phase_fraction.values()) == pytest.approx(1.0)
        text = report.table(vm_intervals=100)
        assert "ns/vm-interval" in text
        for phase in PHASE_ORDER:
            assert phase in text

    def test_empty_profiler_yields_zero_report(self):
        report = PhaseAttributor().attribute(Profiler())
        assert report.tick_count == 0
        assert report.tick_seconds == 0.0
        assert all(v == 0.0 for v in report.phase_fraction.values())

    def test_snapshot_throughput(self):
        snap = PerfSnapshot.capture(synthetic_tree(), n_vms=50,
                                    elapsed_seconds=2.0)
        # 2 ticks * 50 VMs / 2 s
        assert snap.vm_intervals_per_second == pytest.approx(50.0)


class TestMemoryProbe:
    def test_probe_sees_allocation_and_stops_tracing(self):
        import tracemalloc
        with MemoryProbe() as probe:
            blob = [bytearray(1 << 16) for _ in range(8)]
        del blob
        assert probe.peak_bytes > 8 * (1 << 16) // 2
        assert not tracemalloc.is_tracing()


class TestChromeTrace:
    def roundtrip(self, forests):
        trace = spans_to_chrome_trace(forests)
        json.loads(json.dumps(trace))  # must be plain JSON
        return chrome_trace_to_spans(trace)

    def test_lossless_roundtrip_of_a_real_run(self):
        prof = synthetic_tree()
        forests = {"n50": prof.to_dict()}
        assert self.roundtrip(forests) == forests

    def test_multiple_labels_map_to_processes(self):
        forests = {"a": synthetic_tree().to_dict(),
                   "b": synthetic_tree().to_dict()}
        back = self.roundtrip(forests)
        assert sorted(back) == ["a", "b"]
        assert back["a"] == forests["a"]

    def test_unbalanced_close_rejected(self):
        trace = spans_to_chrome_trace({"x": synthetic_tree().to_dict()})
        bad = [e for e in trace["traceEvents"] if e["ph"] != "E"]
        with pytest.raises(ValueError, match="never closed"):
            chrome_trace_to_spans({"traceEvents": bad})

    def test_mismatched_close_rejected(self):
        trace = spans_to_chrome_trace({"x": synthetic_tree().to_dict()})
        for event in trace["traceEvents"]:
            if event["ph"] == "E" and event["name"] == "tick":
                event["name"] = "not_tick"
        with pytest.raises(ValueError, match="does not close"):
            chrome_trace_to_spans(trace)

    def test_spans_from_dict_accepts_roundtripped_tree(self):
        back = self.roundtrip({"n1": synthetic_tree().to_dict()})
        (tick,) = (Span.from_dict(s) for s in back["n1"]["spans"])
        assert tick.name == "tick" and tick.count == 2
        assert tick.children["phase.scheduler"] \
            .children["migration.attempt"].errors == 1


class TestFlattenMetrics:
    def test_nested_dicts_become_dotted_keys(self):
        flat = flatten_metrics(
            {"sweep": {"50": {"a": 1, "b": {"c": 2.5}}}, "top": 3})
        assert flat == {"sweep.50.a": 1.0, "sweep.50.b.c": 2.5, "top": 3.0}

    def test_non_numeric_leaves_dropped(self):
        assert flatten_metrics({"fmt": "v1", "x": 1, "ok": True}) == {
            "x": 1.0, "ok": 1.0}


class TestPerfBudget:
    def test_max_with_tolerance(self):
        budget = PerfBudget([BudgetRule("a.*", max=10.0, tolerance=0.5)])
        ok, _ = budget.check({"a.x": 14.9})
        assert ok == []
        bad, _ = budget.check({"a.x": 15.1})
        assert [v.metric for v in bad] == ["a.x"]
        assert "max 10" in bad[0].reason

    def test_min_with_tolerance(self):
        budget = PerfBudget([BudgetRule("rate", min=100.0, tolerance=0.2)])
        assert budget.check({"rate": 81.0})[0] == []
        bad, _ = budget.check({"rate": 79.0})
        assert bad and "min 100" in bad[0].reason

    def test_unmatched_rules_reported_not_silently_disarmed(self):
        budget = PerfBudget([BudgetRule("renamed.*", max=1.0)])
        violations, unmatched = budget.check({"other.metric": 99.0})
        assert violations == []
        assert [r.pattern for r in unmatched] == ["renamed.*"]

    def test_metric_must_pass_every_matching_rule(self):
        budget = PerfBudget([BudgetRule("a.*", max=10.0),
                             BudgetRule("*.x", max=5.0)])
        bad, _ = budget.check({"a.x": 7.0})
        assert len(bad) == 1 and bad[0].rule.pattern == "*.x"

    def test_from_file_and_empty_rejected(self, tmp_path):
        path = tmp_path / "budgets.json"
        path.write_text(json.dumps({
            "format": "repro-perf-budget-v1",
            "budgets": {"sweep.*.x": {"max": 2, "tolerance": 0.1}},
        }))
        budget = PerfBudget.from_file(path)
        assert [r.pattern for r in budget.rules] == ["sweep.*.x"]
        assert budget.rules[0].effective_max == pytest.approx(2.2)
        path.write_text(json.dumps({"budgets": {}}))
        with pytest.raises(ValueError, match="no budget rules"):
            PerfBudget.from_file(path)

    def test_committed_budget_file_parses(self):
        budget = PerfBudget.from_file("benchmarks/perf_budgets.json")
        assert any(r.min is not None for r in budget.rules)
        assert any(r.max is not None for r in budget.rules)


class TestToleranceAwareRegression:
    def test_first_matching_pattern_wins(self):
        tolerances = {"sweep.*.median_seconds": 0.5, "sweep.*": 0.1}
        assert metric_tolerance("sweep.50.median_seconds", tolerances,
                                0.01) == 0.5
        assert metric_tolerance("sweep.50.migrations", tolerances,
                                0.01) == 0.1
        assert metric_tolerance("unrelated", tolerances, 0.01) == 0.01

    def test_perf_metric_gets_slack_accuracy_stays_exact(self):
        base = {"sweep.50.median_seconds": 1.0, "cvr_window": 0.010}
        cand = {"sweep.50.median_seconds": 1.3, "cvr_window": 0.011}
        strict = regression_diff(base, cand, rtol=0.0)
        assert {d.metric for d in strict if d.verdict == "regression"} == {
            "sweep.50.median_seconds", "cvr_window"}
        slack = regression_diff(
            base, cand, rtol=0.0,
            tolerances={"*.median_seconds": 0.5})
        regressed = {d.metric for d in slack if d.verdict == "regression"}
        assert "sweep.50.median_seconds" not in regressed
        assert "cvr_window" in regressed

    def test_lower_is_worse_direction_by_leaf(self):
        base = {"sweep.50.vm_intervals_per_second": 1000.0}
        cand = {"sweep.50.vm_intervals_per_second": 500.0}
        (diff,) = regression_diff(base, cand, rtol=0.1)
        assert diff.verdict == "regression"
        (diff,) = regression_diff(cand, base, rtol=0.1)
        assert diff.verdict != "regression"


SWEEP_KW = dict(sweep=(12,), intervals=6, repeats=2, seed=7,
                trace_memory=False)


class TestPerfSweep:
    def test_facts_deterministic_and_wall_clock_free(self):
        first = run_perf_sweep(**SWEEP_KW)
        second = run_perf_sweep(**SWEEP_KW)
        assert json.dumps(first.facts_dict(), sort_keys=True) == \
            json.dumps(second.facts_dict(), sort_keys=True)
        text = json.dumps(first.facts_dict())
        assert "seconds" not in text  # wall clock lives in the sidecar only

    def test_phase_sum_matches_tick_total(self):
        result = run_perf_sweep(**SWEEP_KW)
        point = result.points[12]
        assert point.report.tick_count == 6
        total = sum(point.report.phase_seconds.values())
        assert total == pytest.approx(point.report.tick_seconds, rel=0.05)
        assert point.telemetry_fraction < 0.5

    def test_artifacts_written_and_loadable(self, tmp_path):
        result = run_perf_sweep(**SWEEP_KW)
        paths = result.write(tmp_path)
        facts = json.loads(paths["facts"].read_text())
        assert facts["format"] == "repro-perf-v1"
        timings = json.loads(paths["timings"].read_text())
        assert timings["format"] == "repro-perf-timings-v1"
        assert "median_seconds" in timings["sweep"]["12"]
        trace = json.loads(paths["trace"].read_text())
        assert chrome_trace_to_spans(trace)["n12"] == result.points[12].spans

    def test_slow_phase_shifts_attribution(self):
        slowed = run_perf_sweep(slow_phase=("monitor", 0.002), **SWEEP_KW)
        frac = slowed.points[12].report.phase_fraction["monitor"]
        assert frac > 0.5, f"slowed monitor only {frac:.0%} of tick time"

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            run_perf_sweep(sweep=(10,), mode="turbo")
        with pytest.raises(ValueError, match="positive"):
            run_perf_sweep(sweep=(0,))
        with pytest.raises(ValueError, match="repeats"):
            run_perf_sweep(sweep=(10,), repeats=0)
        with pytest.raises(ValueError, match="unknown --slow-phase"):
            run_perf_sweep(slow_phase=("warp", 1.0), **SWEEP_KW)


class TestParallelSpanIntegrity:
    """`bench --parallel` + REPRO_PROFILE_JOBS: per-job trees stay whole."""

    def run_profiled(self, monkeypatch, tmp_path, parallel):
        from repro.perf.bench import run_bench

        monkeypatch.setenv("REPRO_PROFILE_JOBS", "1")
        return run_bench("[pt]*", parallel=parallel,
                         output_dir=tmp_path / f"p{parallel}")

    def test_each_job_gets_its_own_unmingled_tree(self, monkeypatch,
                                                  tmp_path):
        results = self.run_profiled(monkeypatch, tmp_path, parallel=2)
        assert [r.name for r in results] == ["perf_scaling", "table1"]
        by_name = {r.name: r.spans for r in results}
        for name, spans in by_name.items():
            assert spans is not None, f"{name} was not profiled"
        # perf_scaling runs simulations -> has tick spans; table1 only
        # solves MapCal models.  Interleaving or double-counting across
        # the pool would leak tick spans into table1's tree.
        names_of = {
            name: {s["name"] for s in spans["spans"]}
            for name, spans in by_name.items()
        }
        assert not any("tick" in top for top in names_of["table1"])

        def count_ticks(node):
            own = node["count"] if node["name"] == "tick" else 0
            return own + sum(count_ticks(c) for c in node["children"])

        ticks = sum(count_ticks(s) for s in by_name["perf_scaling"]["spans"])
        # perf_scaling: sweep (20, 40) x 10 intervals x (1 plain is
        # untraced + 1 instrumented repeat) = 2 sizes * 10 ticks
        assert ticks == 20

    def test_parallel_matches_serial_and_stays_out_of_results_json(
            self, monkeypatch, tmp_path):
        fanned = self.run_profiled(monkeypatch, tmp_path, parallel=2)
        serial = self.run_profiled(monkeypatch, tmp_path, parallel=1)

        def shape(node):
            """Structure + call counts, wall-clock stripped."""
            return (node["name"], node["count"], node.get("errors", 0),
                    tuple(shape(c) for c in node["children"]))

        for a, b in zip(serial, fanned):
            assert a.name == b.name
            assert tuple(shape(s) for s in a.spans["spans"]) == \
                tuple(shape(s) for s in b.spans["spans"])
            assert "spans" not in a.summary_dict()
        assert (tmp_path / "p1" / "BENCH_results.json").read_text() == \
            (tmp_path / "p2" / "BENCH_results.json").read_text()

    def test_forked_worker_trees_roundtrip_through_chrome_trace(
            self, monkeypatch, tmp_path):
        results = self.run_profiled(monkeypatch, tmp_path, parallel=2)
        forests = {f"worker:{r.name}": r.spans for r in results}
        trace = spans_to_chrome_trace(forests)
        assert chrome_trace_to_spans(trace) == forests

    def test_unprofiled_by_default(self, tmp_path):
        from repro.perf.bench import run_bench

        (result,) = run_bench("table1", output_dir=tmp_path)
        assert result.spans is None


class TestPerfCLI:
    def cli(self, tmp_path, *extra):
        return main(["perf", "--sweep", "15", "-n", "6", "--repeats", "1",
                     "--seed", "7", "--no-memory",
                     "-o", str(tmp_path), *extra])

    def test_perf_writes_artifacts_and_reports(self, tmp_path, capsys):
        assert self.cli(tmp_path) == 0
        out = capsys.readouterr().out
        assert "scaling sweep" in out
        assert "phase attribution" in out
        assert "observer-effect check" in out
        for name in ("BENCH_PERF.json", "BENCH_PERF_timings.json",
                     "BENCH_PERF_trace.json"):
            assert (tmp_path / name).exists(), name

    def test_budget_gate_trips_on_slowed_phase(self, tmp_path, capsys):
        rc = self.cli(tmp_path, "--slow-phase", "monitor=0.004",
                      "--budget", "benchmarks/perf_budgets.json")
        assert rc == 1
        out = capsys.readouterr().out
        assert "BUDGET VIOLATION" in out
        assert "phase_fraction.monitor" in out

    def test_budget_gate_passes_nominal_run(self, tmp_path, capsys):
        rc = self.cli(tmp_path, "--budget", "benchmarks/perf_budgets.json")
        assert rc == 0
        assert "within budget" in capsys.readouterr().out

    def test_observer_effect_ceiling_enforced(self, tmp_path, capsys):
        rc = self.cli(tmp_path, "--max-telemetry-fraction", "0.000001")
        assert rc == 1
        assert "observer-effect check" in capsys.readouterr().err

    def test_bad_sweep_and_slow_phase_rejected(self, tmp_path, capsys):
        assert main(["perf", "--sweep", "ten", "-o", str(tmp_path)]) == 2
        assert main(["perf", "--sweep", "15", "--slow-phase", "nope",
                     "-o", str(tmp_path)]) == 2
        capsys.readouterr()


class TestCompareCLI:
    def timings_pair(self, tmp_path, *, scale=1.0):
        """Baseline timings plus a copy with the medians scaled."""
        data = run_perf_sweep(**SWEEP_KW).timings_dict()
        a = tmp_path / "a.json"
        a.write_text(json.dumps(data, indent=2, sort_keys=True))
        for point in data["sweep"].values():
            point["median_seconds"] *= scale
            point["vm_intervals_per_second"] /= scale
        b = tmp_path / "b.json"
        b.write_text(json.dumps(data, indent=2, sort_keys=True))
        return a, b

    def test_identical_perf_files_pass(self, tmp_path, capsys):
        a, _ = self.timings_pair(tmp_path)
        assert main(["compare", str(a), str(a)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_perf_regression_flagged_and_tolerance_waives_it(
            self, tmp_path, capsys):
        a, b = self.timings_pair(tmp_path, scale=3.0)
        assert main(["compare", str(a), str(b)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        rc = main(["compare", str(a), str(b),
                   "--tolerance", "sweep.*.median_seconds=400",
                   "--tolerance", "sweep.*.vm_intervals_per_second=400"])
        assert rc == 0
        capsys.readouterr()

    def test_bad_tolerance_spec_rejected(self, tmp_path, capsys):
        a, _ = self.timings_pair(tmp_path)
        assert main(["compare", str(a), str(a),
                     "--tolerance", "no-equals-sign"]) == 2
        capsys.readouterr()

    def test_budget_mode_gates_on_exit_code(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        budgets = tmp_path / "b.json"
        metrics.write_text(json.dumps(
            {"format": "repro-perf-timings-v1",
             "sweep": {"50": {"telemetry_fraction": 0.9}}}))
        budgets.write_text(json.dumps(
            {"budgets": {"sweep.*.telemetry_fraction":
                         {"max": 0.15, "tolerance": 0.5}}}))
        assert main(["compare", "--budget", str(budgets), str(metrics)]) == 1
        assert "BUDGET VIOLATION" in capsys.readouterr().out
        metrics.write_text(json.dumps(
            {"format": "repro-perf-timings-v1",
             "sweep": {"50": {"telemetry_fraction": 0.01}}}))
        assert main(["compare", "--budget", str(budgets), str(metrics)]) == 0
        assert "within budget" in capsys.readouterr().out

    def test_budget_mode_missing_file_is_exit_2(self, tmp_path, capsys):
        budgets = tmp_path / "b.json"
        budgets.write_text(json.dumps({"budgets": {"x": {"max": 1}}}))
        rc = main(["compare", "--budget", str(budgets),
                   str(tmp_path / "missing.json")])
        assert rc == 2
        capsys.readouterr()
