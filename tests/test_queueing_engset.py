"""Tests for repro.queueing.engset and its link to the discrete model."""

import numpy as np
import pytest
from scipy.special import comb

from repro.queueing.engset import engset_blocking_probability, engset_distribution
from repro.queueing.geom_geom_k import FiniteSourceGeomGeomK


class TestEngsetDistribution:
    def test_matches_direct_formula_small(self):
        k, K, alpha = 8, 5, 0.25
        j = np.arange(K + 1)
        terms = comb(k, j) * alpha**j
        expected = terms / terms.sum()
        np.testing.assert_allclose(engset_distribution(k, K, alpha), expected,
                                   atol=1e-12)

    def test_sums_to_one(self):
        pi = engset_distribution(50, 20, 0.1)
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi >= 0)

    def test_large_k_no_overflow(self):
        pi = engset_distribution(500, 100, 0.05)
        assert np.isfinite(pi).all()
        assert pi.sum() == pytest.approx(1.0)

    def test_full_servers_is_truncated_binomial(self):
        # K = k: Engset == Binomial(k, alpha/(1+alpha)).
        k, alpha = 12, 0.2
        pi = engset_distribution(k, k, alpha)
        p = alpha / (1 + alpha)
        j = np.arange(k + 1)
        expected = comb(k, j) * p**j * (1 - p) ** (k - j)
        np.testing.assert_allclose(pi, expected, atol=1e-12)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            engset_distribution(0, 0, 1.0)
        with pytest.raises(ValueError):
            engset_distribution(5, 6, 1.0)
        with pytest.raises(ValueError):
            engset_distribution(5, 3, -1.0)


class TestEngsetBlocking:
    def test_blocking_is_last_entry(self):
        pi = engset_distribution(10, 4, 0.3)
        assert engset_blocking_probability(10, 4, 0.3) == pytest.approx(pi[-1])

    def test_blocking_decreasing_in_servers(self):
        vals = [engset_blocking_probability(10, K, 0.3) for K in range(1, 11)]
        assert all(a >= b for a, b in zip(vals, vals[1:]))


class TestDiscreteToEngsetLimit:
    def test_unrestricted_tail_matches_engset_truncation(self):
        """As p_on, p_off -> 0 with fixed ratio, the discrete loss system's
        occupancy converges to the Engset law with alpha = p_on / p_off."""
        k, K = 8, 4
        alpha = 1 / 9
        for scale, tol in ((0.1, 0.05), (0.01, 0.005)):
            p_off = scale
            p_on = alpha * scale
            m = FiniteSourceGeomGeomK(k, p_on, p_off)
            discrete = m.loss_system_distribution(K)
            engset = engset_distribution(k, K, alpha)
            assert np.max(np.abs(discrete - engset)) < tol

    def test_stationary_binomial_matches_engset_full(self):
        # Unrestricted discrete marginal is Binomial(k, q); Engset with K = k
        # is the same binomial with p = alpha/(1+alpha) = q.
        k = 10
        p_on, p_off = 0.02, 0.08
        m = FiniteSourceGeomGeomK(k, p_on, p_off)
        np.testing.assert_allclose(
            m.stationary_distribution(),
            engset_distribution(k, k, p_on / p_off),
            atol=1e-10,
        )
