"""Tests for repro.core.queuing_ffd — Algorithm 2."""

import numpy as np
import pytest

from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import PMSpec, VMSpec
from repro.placement.base import InsufficientCapacityError
from repro.placement.ffd import ffd_by_peak
from repro.placement.validation import (
    check_capacity_at_base,
    check_placement_complete,
    max_vms_on_any_pm,
)
from repro.workload.patterns import generate_pattern_instance

P_ON, P_OFF = 0.01, 0.09


def vm(base, extra):
    return VMSpec(P_ON, P_OFF, base, extra)


class TestOrdering:
    def test_clusters_sorted_by_spike_descending(self):
        placer = QueuingFFD(n_clusters=2)
        vms = [vm(1, 2), vm(9, 18), vm(2, 3), vm(8, 17)]
        order = placer.order_vms(vms)
        # big-spike cluster (indices 1, 3) must come first
        assert set(order[:2].tolist()) == {1, 3}

    def test_within_cluster_by_base_descending(self):
        placer = QueuingFFD(n_clusters=1)
        vms = [vm(5, 10), vm(20, 10), vm(10, 10)]
        order = placer.order_vms(vms)
        np.testing.assert_array_equal(order, [1, 2, 0])

    def test_no_clustering_is_pure_base_sort(self):
        placer = QueuingFFD(cluster_method="none")
        vms = [vm(5, 100), vm(20, 1), vm(10, 50)]
        np.testing.assert_array_equal(placer.order_vms(vms), [1, 2, 0])

    def test_deterministic(self):
        placer = QueuingFFD()
        vms, _ = generate_pattern_instance("equal", 50, seed=3)
        np.testing.assert_array_equal(placer.order_vms(vms), placer.order_vms(vms))

    def test_kmeans_variant_runs(self):
        placer = QueuingFFD(cluster_method="kmeans", n_clusters=3)
        vms, _ = generate_pattern_instance("equal", 30, seed=4)
        order = placer.order_vms(vms)
        assert sorted(order.tolist()) == list(range(30))


class TestPlacement:
    def test_places_every_vm(self, medium_instance):
        vms, pms = medium_instance
        placement = QueuingFFD(rho=0.01, d=16).place(vms, pms)
        check_placement_complete(placement)

    def test_base_demand_fits(self, medium_instance):
        vms, pms = medium_instance
        placement = QueuingFFD(rho=0.01, d=16).place(vms, pms)
        check_capacity_at_base(placement, vms, pms)

    def test_respects_d(self, medium_instance):
        vms, pms = medium_instance
        placement = QueuingFFD(rho=0.01, d=4).place(vms, pms)
        assert max_vms_on_any_pm(placement) <= 4

    def test_eq17_holds_on_every_pm(self, medium_instance):
        vms, pms = medium_instance
        placer = QueuingFFD(rho=0.01, d=16)
        placement, states = placer.place_with_states(vms, pms)
        for pm_idx, state in enumerate(states):
            if state.is_empty:
                continue
            assert state.committed <= pms[pm_idx].capacity + 1e-9
            hosted = placement.vms_on(pm_idx)
            assert len(hosted) == state.count

    def test_states_match_placement(self, medium_instance):
        vms, pms = medium_instance
        placement, states = QueuingFFD().place_with_states(vms, pms)
        for pm_idx, state in enumerate(states):
            assert set(state.vms.keys()) == set(placement.vms_on(pm_idx).tolist())

    def test_uses_fewer_pms_than_peak_provisioning(self):
        for pattern in ("equal", "small", "large"):
            vms, pms = generate_pattern_instance(pattern, 150, seed=11)
            queue = QueuingFFD(rho=0.01, d=16).place(vms, pms)
            rp = ffd_by_peak(max_vms_per_pm=16).place(vms, pms)
            assert queue.n_used_pms <= rp.n_used_pms

    def test_insufficient_capacity_raises(self):
        vms = [vm(50, 50) for _ in range(4)]
        pms = [PMSpec(60.0)]
        with pytest.raises(InsufficientCapacityError):
            QueuingFFD(rho=0.01, d=16).place(vms, pms)

    def test_empty_vm_list(self):
        placement = QueuingFFD().place([], [PMSpec(10.0)])
        assert placement.n_vms == 0
        assert placement.n_used_pms == 0

    def test_single_vm(self):
        placement = QueuingFFD().place([vm(10, 10)], [PMSpec(100.0)])
        assert placement.pm_of(0) == 0

    def test_rho_one_reserves_nothing(self):
        # With rho = 1 violations are always tolerated: packing by R_b only.
        vms = [vm(10, 1000) for _ in range(5)]
        pms = [PMSpec(51.0), PMSpec(51.0)]
        placement = QueuingFFD(rho=1.0, d=16).place(vms, pms)
        assert placement.n_used_pms == 1

    def test_tight_rho_packs_by_peakish(self):
        # rho = 0 forces K = k blocks of size max R_e: at least as many PMs
        # as packing by R_b + max R_e * k, i.e. close to peak provisioning.
        vms, pms = generate_pattern_instance("equal", 60, seed=5)
        strict = QueuingFFD(rho=0.0, d=16).place(vms, pms)
        loose = QueuingFFD(rho=0.5, d=16).place(vms, pms)
        assert strict.n_used_pms >= loose.n_used_pms


class TestVectorizedEqualsReference:
    @pytest.mark.parametrize("pattern", ["equal", "small", "large"])
    def test_assignments_identical(self, pattern):
        vms, pms = generate_pattern_instance(pattern, 120, seed=21)
        placer = QueuingFFD(rho=0.01, d=16)
        fast, fast_states = placer.place_with_states(vms, pms)
        ref, ref_states = placer._place_reference(vms, pms)
        np.testing.assert_array_equal(fast.assignment, ref.assignment)
        for a, b in zip(fast_states, ref_states):
            assert set(a.vms) == set(b.vms)
            assert a.base_sum == pytest.approx(b.base_sum)
            assert a.max_extra == b.max_extra

    def test_identical_under_tight_capacity(self):
        vms, pms = generate_pattern_instance(
            "equal", 60, capacity_range=(45.0, 55.0), seed=22
        )
        placer = QueuingFFD(rho=0.01, d=16)
        fast, _ = placer.place_with_states(vms, pms)
        ref, _ = placer._place_reference(vms, pms)
        np.testing.assert_array_equal(fast.assignment, ref.assignment)

    def test_identical_failure_behaviour(self):
        vms = [VMSpec(P_ON, P_OFF, 50.0, 50.0) for _ in range(4)]
        pms = [PMSpec(60.0)]
        placer = QueuingFFD(rho=0.01, d=16)
        with pytest.raises(InsufficientCapacityError) as fast_exc:
            placer.place_with_states(vms, pms)
        with pytest.raises(InsufficientCapacityError) as ref_exc:
            placer._place_reference(vms, pms)
        assert fast_exc.value.vm_index == ref_exc.value.vm_index


class TestMappingCache:
    def test_mapping_solves_cached_across_calls(self):
        from repro.perf.cache import fresh_cache

        placer = QueuingFFD()
        vms, _ = generate_pattern_instance("equal", 10, seed=0)
        with fresh_cache() as cache:
            m1 = placer.mapping_for(vms)
            solves = cache.misses
            m2 = placer.mapping_for(vms)
            assert cache.misses == solves  # rebuild is pure cache hits
        assert (m1.table == m2.table).all()

    def test_heterogeneous_probs_rounded(self):
        placer = QueuingFFD(rounding_rule="mean")
        vms = [
            VMSpec(0.01, 0.08, 1.0, 1.0),
            VMSpec(0.03, 0.10, 1.0, 1.0),
        ]
        mapping = placer.mapping_for(vms)
        assert mapping.p_on == pytest.approx(0.02)
        assert mapping.p_off == pytest.approx(0.09)

    def test_invalid_cluster_method(self):
        with pytest.raises(ValueError):
            QueuingFFD(cluster_method="bogus")
