"""Checkpoint/restore: the split-run == straight-run bit-identity guarantee.

The contract under test (see ``repro/simulation/checkpoint.py``)::

    run(T)  ==  restore(checkpoint(run(T/2))).run(T/2)

with equality on the *entire* final mutable state (all three RNG streams,
datacenter, scheduler, monitor, injector), the report summary, and the
telemetry event stream — across randomized configurations and both tick
modes, including snapshots taken mid-migration and mid-failure-window.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import PMSpec, VMSpec
from repro.placement.base import InsufficientCapacityError
from repro.simulation import (
    CheckpointError,
    Scenario,
    load_checkpoint,
    restore_checkpoint,
    save_checkpoint,
)
from repro.simulation.costmodel import CostedScheduler, MigrationCostModel
from repro.simulation.energy import EnergyModel
from repro.simulation.topology import Topology
from repro.telemetry import RingBufferSink, Telemetry

#: how many random configurations the property sweep covers (per tick mode)
N_RANDOM_CONFIGS = 20


def _PLACER() -> QueuingFFD:
    # rho = 0.4 under-reserves on purpose: overloads (and therefore
    # migrations, retries, blacklists) actually occur during the sweep
    return QueuingFFD(rho=0.4, d=16)


def _random_params(config_seed: int) -> dict:
    """Sample one scenario configuration (deterministic in the seed).

    Capacities are kept tight so overloads, migrations, and failures all
    actually occur — a checkpoint of an idle run proves nothing.
    """
    rng = np.random.default_rng(config_seed)
    n_vms = int(rng.integers(6, 12))
    n_pms = max(2, n_vms // 3)
    vms = [
        VMSpec(
            p_on=float(rng.uniform(0.05, 0.5)),
            p_off=float(rng.uniform(0.1, 0.6)),
            r_base=float(rng.uniform(5.0, 20.0)),
            r_extra=float(rng.uniform(20.0, 70.0)),
        )
        for _ in range(n_vms)
    ]
    # Tight enough for overloads/migrations, loose enough to be placeable:
    # probe multipliers of sum-of-peaks until QueuingFFD accepts the fleet.
    sum_peak = sum(v.r_base + v.r_extra for v in vms)
    pms = None
    for mult in (0.8, 0.9, 1.0, 1.1, 1.25, 1.4, 1.7, 2.0):
        candidate = [PMSpec(float(sum_peak / n_pms * mult))] * n_pms
        try:
            _PLACER().place(vms, candidate)
        except InsufficientCapacityError:
            continue
        pms = candidate
        break
    assert pms is not None, f"config seed {config_seed} never feasible"
    return {
        "vms": vms,
        "pms": pms,
        "failures": {
            "failure_probability": float(rng.uniform(0.0, 0.02)),
            "repair_probability": float(rng.uniform(0.2, 0.6)),
        },
        "migration_failure_probability": float(rng.uniform(0.0, 0.2)),
        "with_cost": bool(rng.integers(0, 2)),
        "with_energy": bool(rng.integers(0, 2)),
        "run_seed": int(rng.integers(0, 2**31)),
    }


def _make_scenario(params: dict, tick_mode: str,
                   telemetry: Telemetry | None) -> Scenario:
    return Scenario(
        params["vms"], params["pms"],
        placer=_PLACER(),
        failures=params["failures"],
        migration_failure_probability=params[
            "migration_failure_probability"],
        cost_model=MigrationCostModel() if params["with_cost"] else None,
        energy_model=EnergyModel() if params["with_energy"] else None,
        telemetry=telemetry,
        tick_mode=tick_mode,
    )


def _event_dicts(sink: RingBufferSink, *, drop_checkpoint: bool = False):
    return [e.to_dict() for e in sink.events
            if not (drop_checkpoint and e.kind == "checkpoint_written")]


def _straight(params: dict, tick_mode: str, n: int):
    """Uninterrupted run: (final_state, summary, event_dicts)."""
    sink = RingBufferSink()
    scn = _make_scenario(params, tick_mode, Telemetry(sink))
    run = scn.start(seed=params["run_seed"])
    run.advance(n)
    run.close()
    report = run.finish()
    report.telemetry = None  # the digest carries wall-clock, not state
    return run.capture_state(), report.summary(), _event_dicts(sink)


def _split(params: dict, tick_mode: str, n: int, split_at: int, tmp_path):
    """Checkpoint at ``split_at``, restore, finish: same tuple shape."""
    sink_a = RingBufferSink()
    scn = _make_scenario(params, tick_mode, Telemetry(sink_a))
    first = scn.start(seed=params["run_seed"])
    first.advance(split_at)
    path = save_checkpoint(first, tmp_path / "split.ckpt")
    first.close()

    sink_b = RingBufferSink()
    resumed = restore_checkpoint(path, telemetry=Telemetry(sink_b))
    assert resumed.time == split_at
    resumed.advance(n - split_at)
    resumed.close()
    report = resumed.finish()
    report.telemetry = None  # the digest carries wall-clock, not state
    events = (_event_dicts(sink_a, drop_checkpoint=True)
              + _event_dicts(sink_b))
    return resumed.capture_state(), report.summary(), events


class TestSplitRunParity:
    @pytest.mark.parametrize("tick_mode", ["vectorized", "scalar"])
    @pytest.mark.parametrize("config_seed", range(N_RANDOM_CONFIGS))
    def test_split_equals_straight(self, config_seed, tick_mode, tmp_path):
        params = _random_params(config_seed)
        n = 30
        straight = _straight(params, tick_mode, n)
        split = _split(params, tick_mode, n, n // 2, tmp_path)
        assert split[0] == straight[0]  # full final mutable state
        assert split[1] == straight[1]  # report summary
        assert split[2] == straight[2]  # telemetry event stream

    def test_modes_agree_through_a_checkpoint(self, tmp_path):
        # The two tick modes are bit-identical to each other, and stay so
        # when one of them round-trips through a checkpoint file.
        params = _random_params(3)
        vec = _straight(params, "vectorized", 30)
        scal = _split(params, "scalar", 30, 15, tmp_path)
        assert vec[1] == scal[1]
        assert vec[2] == scal[2]


def _advance_until(run, predicate, limit=400):
    for _ in range(limit):
        if predicate():
            return True
        run.advance(1)
    return False


class TestAwkwardSnapshotPoints:
    def test_mid_migration_snapshot(self, tmp_path):
        """Snapshot while migrations are in flight (costed scheduler)."""
        params = _random_params(7)
        params["with_cost"] = True
        # slow transfers keep migrations in flight across intervals
        sink_a = RingBufferSink()
        scn = Scenario(
            params["vms"], params["pms"],
            placer=_PLACER(),
            cost_model=MigrationCostModel(bandwidth_units_per_interval=5.0),
            telemetry=Telemetry(sink_a),
        )
        run = scn.start(seed=params["run_seed"])
        assert isinstance(run.scheduler, CostedScheduler)
        assert _advance_until(run, lambda: run.scheduler._in_flight), \
            "scenario never put a migration in flight"
        split_at = run.time
        path = save_checkpoint(run, tmp_path / "midmig.ckpt")
        run.advance(30)
        run.close()
        expected = run.capture_state()

        resumed = restore_checkpoint(path)
        assert resumed.scheduler._in_flight  # restored mid-transfer
        resumed.advance(30)
        resumed.close()
        assert resumed.capture_state() == expected
        assert resumed.time == split_at + 30

    @pytest.mark.parametrize("tick_mode", ["vectorized", "scalar"])
    def test_mid_failure_window_snapshot(self, tick_mode, tmp_path):
        """Snapshot while a PM is down and awaiting repair."""
        params = _random_params(11)
        params["failures"] = {"failure_probability": 0.05,
                              "repair_probability": 0.2}
        scn = _make_scenario(params, tick_mode, None)
        run = scn.start(seed=params["run_seed"])
        assert _advance_until(run, lambda: bool(run.injector.failed.any())), \
            "injector never crashed a PM"
        path = save_checkpoint(run, tmp_path / "midfail.ckpt")
        run.advance(40)
        run.close()
        expected = run.capture_state()

        resumed = restore_checkpoint(path)
        assert resumed.injector.failed.any()  # restored mid-outage
        resumed.advance(40)
        resumed.close()
        assert resumed.capture_state() == expected

    def test_topology_round_trips(self, tmp_path):
        params = _random_params(5)
        n_pms = len(params["pms"])
        topo = Topology([i % 2 for i in range(n_pms)])
        scn = Scenario(
            params["vms"], params["pms"],
            placer=_PLACER(),
            failures={"failure_probability": 0.02,
                      "domain_failure_probability": 0.01},
            topology=topo,
        )
        run = scn.start(seed=params["run_seed"])
        run.advance(10)
        path = save_checkpoint(run, tmp_path / "topo.ckpt")
        run.advance(20)
        expected = run.capture_state()
        resumed = restore_checkpoint(path)
        assert resumed.scenario.topology is not None
        resumed.advance(20)
        assert resumed.capture_state() == expected


class TestFileFormat:
    def _checkpoint(self, tmp_path):
        params = _random_params(0)
        run = _make_scenario(params, "vectorized", None).start(
            seed=params["run_seed"])
        run.advance(5)
        return save_checkpoint(run, tmp_path / "fmt.ckpt")

    def test_future_version_rejected(self, tmp_path):
        path = self._checkpoint(tmp_path)
        envelope = json.loads(path.read_text())
        envelope["version"] = 99
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(CheckpointError, match="not a repro-checkpoint"):
            load_checkpoint(path)

    def test_checksum_detects_tampering(self, tmp_path):
        path = self._checkpoint(tmp_path)
        envelope = json.loads(path.read_text())
        envelope["payload"]["state"]["time"] += 1
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = self._checkpoint(tmp_path)
        path.write_bytes(path.read_bytes()[:100])
        with pytest.raises(CheckpointError, match="JSON"):
            load_checkpoint(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope.ckpt")

    def test_checkpoint_written_event_emitted(self, tmp_path):
        params = _random_params(1)
        sink = RingBufferSink()
        run = _make_scenario(params, "vectorized", Telemetry(sink)).start(
            seed=params["run_seed"])
        run.advance(4)
        path = save_checkpoint(run, tmp_path / "ev.ckpt")
        written = [e for e in sink.events if e.kind == "checkpoint_written"]
        assert len(written) == 1
        assert written[0].time == 4
        assert written[0].path == str(path)
        assert written[0].size_bytes == path.stat().st_size


class TestNonPortableConfigs:
    def test_custom_trigger_needs_supplied_scenario(self, tmp_path):
        from repro.simulation.triggers import OverflowTrigger

        class MyTrigger(OverflowTrigger):
            pass

        params = _random_params(2)

        def build():
            return Scenario(params["vms"], params["pms"],
                            placer=_PLACER(),
                            trigger=MyTrigger())

        run = build().start(seed=params["run_seed"])
        run.advance(8)
        path = save_checkpoint(run, tmp_path / "custom.ckpt")
        run.advance(12)
        expected = run.capture_state()

        with pytest.raises(CheckpointError, match="non-serializable"):
            restore_checkpoint(path)

        # supplying an identically-configured scenario restores it fine
        resumed = restore_checkpoint(path, scenario=build())
        resumed.advance(12)
        assert resumed.capture_state() == expected

    def test_restored_scenario_placer_refuses_to_place(self, tmp_path):
        params = _random_params(4)
        run = _make_scenario(params, "vectorized", None).start(
            seed=params["run_seed"])
        run.advance(3)
        path = save_checkpoint(run, tmp_path / "p.ckpt")
        resumed = restore_checkpoint(path)
        with pytest.raises(CheckpointError, match="no placer"):
            resumed.scenario.placer.place(params["vms"], params["pms"])
