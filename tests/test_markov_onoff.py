"""Tests for repro.markov.onoff — the per-VM ON-OFF chain."""

import numpy as np
import pytest

from repro.markov.onoff import OFF, ON, OnOffChain
from repro.workload.stats import burst_lengths


@pytest.fixture
def chain():
    return OnOffChain(p_on=0.01, p_off=0.09)


class TestConstruction:
    def test_rejects_zero_probabilities(self):
        with pytest.raises(ValueError):
            OnOffChain(0.0, 0.5)
        with pytest.raises(ValueError):
            OnOffChain(0.5, 0.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            OnOffChain(1.5, 0.5)


class TestAnalytics:
    def test_stationary_probabilities(self, chain):
        assert chain.stationary_on_probability == pytest.approx(0.1)
        assert chain.stationary_off_probability == pytest.approx(0.9)
        assert (chain.stationary_on_probability
                + chain.stationary_off_probability) == pytest.approx(1.0)

    def test_burst_and_gap_means(self, chain):
        assert chain.mean_burst_length == pytest.approx(1 / 0.09)
        assert chain.mean_gap_length == pytest.approx(100.0)
        assert chain.cycle_length == pytest.approx(100.0 + 1 / 0.09)

    def test_burst_length_pmf_is_geometric(self, chain):
        lengths = np.arange(1, 200)
        pmf = chain.burst_length_pmf(lengths)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-6)
        assert pmf[0] == pytest.approx(0.09)
        # mean of the pmf equals 1/p_off
        assert (lengths * pmf).sum() == pytest.approx(1 / 0.09, rel=1e-4)

    def test_burst_length_pmf_zero_below_one(self, chain):
        assert chain.burst_length_pmf(np.array([0])) == pytest.approx(0.0)

    def test_autocorrelation_decay(self, chain):
        lam = 1 - 0.01 - 0.09
        assert chain.autocorrelation(0) == pytest.approx(1.0)
        assert chain.autocorrelation(3) == pytest.approx(lam**3)
        with pytest.raises(ValueError):
            chain.autocorrelation(-1)

    def test_transition_matrix(self, chain):
        P = chain.transition_matrix()
        np.testing.assert_allclose(P, [[0.99, 0.01], [0.09, 0.91]])

    def test_as_chain_stationary_matches(self, chain):
        pi = chain.as_chain().stationary_distribution()
        np.testing.assert_allclose(
            pi, [chain.stationary_off_probability, chain.stationary_on_probability],
            atol=1e-12,
        )


class TestSimulation:
    def test_trajectory_shape_and_values(self, chain):
        traj = chain.simulate(500, seed=0)
        assert traj.shape == (501,)
        assert set(np.unique(traj)) <= {OFF, ON}

    def test_initial_state_respected(self, chain):
        assert chain.simulate(0, initial_state=ON, seed=0)[0] == ON
        with pytest.raises(ValueError):
            chain.simulate(5, initial_state=2)

    def test_long_run_on_fraction(self, chain):
        traj = chain.simulate(300_000, seed=42)
        assert traj.mean() == pytest.approx(0.1, abs=0.01)

    def test_mean_burst_length_empirical(self, chain):
        traj = chain.simulate(300_000, seed=7)
        bursts = burst_lengths(traj)
        assert bursts.mean() == pytest.approx(1 / 0.09, rel=0.1)

    def test_negative_steps_rejected(self, chain):
        with pytest.raises(ValueError):
            chain.simulate(-1)


class TestEnsemble:
    def test_shape(self, chain):
        states = chain.simulate_ensemble(10, 50, seed=0)
        assert states.shape == (10, 51)

    def test_all_start_off_by_default(self, chain):
        states = chain.simulate_ensemble(10, 5, seed=0)
        assert not states[:, 0].any()

    def test_stationary_start_fraction(self, chain):
        states = chain.simulate_ensemble(50_000, 0, start_stationary=True, seed=1)
        assert states[:, 0].mean() == pytest.approx(0.1, abs=0.01)

    def test_ensemble_long_run_occupancy(self, chain):
        states = chain.simulate_ensemble(200, 5000, start_stationary=True, seed=2)
        assert states.mean() == pytest.approx(0.1, abs=0.01)

    def test_zero_vms(self, chain):
        states = chain.simulate_ensemble(0, 10, seed=0)
        assert states.shape == (0, 11)

    def test_invalid_args(self, chain):
        with pytest.raises(ValueError):
            chain.simulate_ensemble(-1, 5)
        with pytest.raises(ValueError):
            chain.simulate_ensemble(5, -1)
