"""Tests for repro.workload.io — instance/trace/placement persistence."""

import json

import numpy as np
import pytest

from repro.core.types import Placement, VMSpec
from repro.workload.io import (
    load_instance,
    load_placement,
    load_traces,
    save_instance,
    save_placement,
    save_traces,
)
from repro.workload.patterns import generate_pattern_instance


class TestInstanceRoundtrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        vms, pms = generate_pattern_instance("equal", 20, seed=0)
        path = tmp_path / "instance.json"
        save_instance(path, vms, pms)
        vms2, pms2 = load_instance(path)
        assert vms2 == vms
        assert pms2 == pms

    def test_empty_instance(self, tmp_path):
        path = tmp_path / "empty.json"
        save_instance(path, [], [])
        vms, pms = load_instance(path)
        assert vms == [] and pms == []

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "vms": [], "pms": []}))
        with pytest.raises(ValueError, match="version"):
            load_instance(path)

    def test_malformed_entries_rejected(self, tmp_path):
        path = tmp_path / "bad2.json"
        path.write_text(json.dumps({
            "format_version": 1,
            "vms": [{"p_on": 0.1}],  # missing fields
            "pms": [],
        }))
        with pytest.raises(ValueError, match="malformed"):
            load_instance(path)

    def test_invalid_values_rejected_by_spec_validation(self, tmp_path):
        path = tmp_path / "bad3.json"
        path.write_text(json.dumps({
            "format_version": 1,
            "vms": [{"p_on": 2.0, "p_off": 0.1, "r_base": 1.0, "r_extra": 1.0}],
            "pms": [],
        }))
        with pytest.raises(ValueError):
            load_instance(path)


class TestTraceRoundtrip:
    def test_roundtrip(self, tmp_path):
        traces = np.random.default_rng(0).uniform(0, 50, (5, 100))
        path = tmp_path / "traces.csv"
        save_traces(path, traces)
        loaded = load_traces(path)
        np.testing.assert_allclose(loaded, traces, rtol=1e-9)

    def test_single_vm_keeps_2d(self, tmp_path):
        traces = np.arange(10.0).reshape(1, 10)
        path = tmp_path / "one.csv"
        save_traces(path, traces)
        assert load_traces(path).shape == (1, 10)

    def test_rejects_non_2d(self, tmp_path):
        with pytest.raises(ValueError):
            save_traces(tmp_path / "x.csv", np.arange(5.0))

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "foreign.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="not a repro trace file"):
            load_traces(path)

    def test_estimation_pipeline_from_file(self, tmp_path):
        """Traces written to disk feed the estimator unchanged."""
        from repro.workload.estimation import fit_fleet
        from repro.workload.onoff_generator import demand_trace, ensemble_states

        vms = [VMSpec(0.02, 0.1, 10.0, 8.0)]
        states = ensemble_states(vms, 50_000, start_stationary=True, seed=1)
        traces = demand_trace(vms, states)
        path = tmp_path / "monitoring.csv"
        save_traces(path, traces)
        fits = fit_fleet(load_traces(path))
        assert fits[0].r_base == pytest.approx(10.0, abs=0.1)


class TestPlacementRoundtrip:
    def test_roundtrip(self, tmp_path):
        placement = Placement(4, 3, assignment=np.array([0, 2, -1, 1]))
        path = tmp_path / "placement.json"
        save_placement(path, placement)
        loaded = load_placement(path)
        assert loaded.n_vms == 4 and loaded.n_pms == 3
        np.testing.assert_array_equal(loaded.assignment, placement.assignment)

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 0}))
        with pytest.raises(ValueError):
            load_placement(path)

    def test_invalid_assignment_rejected_on_load(self, tmp_path):
        path = tmp_path / "bad2.json"
        path.write_text(json.dumps({
            "format_version": 1, "n_vms": 2, "n_pms": 1,
            "assignment": [0, 5],
        }))
        with pytest.raises(ValueError):
            load_placement(path)
