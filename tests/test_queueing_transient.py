"""Tests for repro.queueing.transient."""

import numpy as np
import pytest

from repro.markov.onoff import OnOffChain
from repro.queueing.geom_geom_k import FiniteSourceGeomGeomK
from repro.queueing.transient import (
    expected_time_to_violation,
    expected_violation_episode_length,
    occupancy_at,
    violation_probability_curve,
)

K_VMS, P_ON, P_OFF = 8, 0.05, 0.2


class TestOccupancyAt:
    def test_t_zero_is_point_mass(self):
        pi = occupancy_at(K_VMS, P_ON, P_OFF, 0)
        assert pi[0] == 1.0
        assert pi.sum() == pytest.approx(1.0)

    def test_t_one_matches_kernel_row(self):
        from repro.markov.binomial import busy_block_kernel

        pi = occupancy_at(K_VMS, P_ON, P_OFF, 1)
        P = busy_block_kernel(K_VMS, P_ON, P_OFF)
        np.testing.assert_allclose(pi, P[0], atol=1e-12)

    def test_converges_to_stationary(self):
        pi = occupancy_at(K_VMS, P_ON, P_OFF, 2000)
        model = FiniteSourceGeomGeomK(K_VMS, P_ON, P_OFF)
        np.testing.assert_allclose(pi, model.stationary_distribution(), atol=1e-8)

    def test_large_t_uses_matrix_power_consistently(self):
        # cross the t=64 implementation boundary
        a = occupancy_at(K_VMS, P_ON, P_OFF, 64)
        b = occupancy_at(K_VMS, P_ON, P_OFF, 65)
        from repro.markov.binomial import busy_block_kernel

        P = busy_block_kernel(K_VMS, P_ON, P_OFF)
        np.testing.assert_allclose(a @ P, b, atol=1e-12)

    def test_custom_initial_state(self):
        pi = occupancy_at(K_VMS, P_ON, P_OFF, 0, initial_state=3)
        assert pi[3] == 1.0

    def test_invalid_initial_state(self):
        with pytest.raises(ValueError):
            occupancy_at(K_VMS, P_ON, P_OFF, 1, initial_state=K_VMS + 1)


class TestViolationCurve:
    def test_starts_at_zero_from_all_off(self):
        curve = violation_probability_curve(K_VMS, P_ON, P_OFF, 3, 50)
        assert curve[0] == 0.0
        assert curve.shape == (51,)

    def test_monotone_ramp_to_stationary(self):
        model = FiniteSourceGeomGeomK(K_VMS, P_ON, P_OFF)
        K = 3
        curve = violation_probability_curve(K_VMS, P_ON, P_OFF, K, 3000)
        assert curve[-1] == pytest.approx(model.overflow_probability(K), abs=1e-6)
        # from all-OFF the curve rises toward the limit (allow tiny ripples)
        assert curve[10] < curve[-1] + 1e-9
        assert np.all(np.diff(curve[:50]) > -1e-6)

    def test_k_blocks_never_violates(self):
        curve = violation_probability_curve(K_VMS, P_ON, P_OFF, K_VMS, 20)
        np.testing.assert_array_equal(curve, 0.0)

    def test_matches_simulation(self):
        K = 2
        chain = OnOffChain(P_ON, P_OFF)
        n_runs, horizon = 4000, 30
        count = np.zeros(horizon + 1)
        for i in range(4):
            states = chain.simulate_ensemble(K_VMS * 1000, horizon, seed=i)
            # each group of K_VMS consecutive rows is one PM-population
            busy = states.reshape(1000, K_VMS, horizon + 1).sum(axis=1)
            count += (busy > K).mean(axis=0)
        empirical = count / 4
        curve = violation_probability_curve(K_VMS, P_ON, P_OFF, K, horizon)
        np.testing.assert_allclose(empirical, curve, atol=0.025)


class TestTimeToViolation:
    def test_infinite_when_impossible(self):
        assert expected_time_to_violation(K_VMS, P_ON, P_OFF, K_VMS) == float("inf")

    def test_zero_when_already_violating(self):
        assert expected_time_to_violation(K_VMS, P_ON, P_OFF, 2,
                                          initial_state=3) == 0.0

    def test_positive_and_decreasing_in_start(self):
        t0 = expected_time_to_violation(K_VMS, P_ON, P_OFF, 3, initial_state=0)
        t3 = expected_time_to_violation(K_VMS, P_ON, P_OFF, 3, initial_state=3)
        assert t0 > t3 > 0

    def test_increasing_in_blocks(self):
        times = [expected_time_to_violation(K_VMS, P_ON, P_OFF, K)
                 for K in range(1, K_VMS)]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_matches_simulation(self):
        K = 2
        chain = OnOffChain(P_ON, P_OFF)
        hits = []
        rng_seed = 0
        for i in range(300):
            states = chain.simulate_ensemble(K_VMS, 3000, seed=1000 + i)
            busy = states.sum(axis=0)
            over = np.flatnonzero(busy > K)
            hits.append(over[0] if over.size else 3001)
        expected = expected_time_to_violation(K_VMS, P_ON, P_OFF, K)
        assert np.mean(hits) == pytest.approx(expected, rel=0.15)


class TestEpisodeLength:
    def test_zero_when_impossible(self):
        assert expected_violation_episode_length(K_VMS, P_ON, P_OFF, K_VMS) == 0.0

    def test_positive_when_possible(self):
        length = expected_violation_episode_length(K_VMS, P_ON, P_OFF, 2)
        assert length >= 1.0  # an episode lasts at least one interval

    def test_longer_spikes_give_longer_episodes(self):
        short = expected_violation_episode_length(K_VMS, 0.05, 0.5, 2)
        long = expected_violation_episode_length(K_VMS, 0.05, 0.05, 2)
        assert long > short

    def test_renewal_reward_consistency(self):
        """CVR = episode length x entry rate (the formula's own identity),
        cross-checked against simulation."""
        K = 2
        chain = OnOffChain(P_ON, P_OFF)
        states = chain.simulate_ensemble(K_VMS, 400_000, start_stationary=True,
                                         seed=5)
        busy = states.sum(axis=0)
        violating = busy > K
        from repro.workload.stats import burst_lengths

        episodes = burst_lengths(violating.astype(int))
        expected = expected_violation_episode_length(K_VMS, P_ON, P_OFF, K)
        assert episodes.mean() == pytest.approx(expected, rel=0.1)
