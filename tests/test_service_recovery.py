"""Crash recovery: checkpoint + WAL replay reconstructs identical state.

The central drill kills the service (an exception from the chaos hook
stands in for ``kill -9``; the on-disk artifacts are identical) at
*every* journal-then-apply phase of *every* decision in a scripted
workload — admissions, sheds, departures, recalibrations, autoscale,
checkpoint compaction — then recovers from disk, finishes the workload,
and asserts the final state is byte-identical to an uninterrupted run.
"""

import json

import pytest

from repro.core.types import PMSpec, VMSpec
from repro.service.pool import ElasticPMPool
from repro.service.service import PlacementService
from repro.service.wal import WALError, WriteAheadLog
from repro.telemetry import RingBufferSink, Telemetry, WALReplayed

# Calm and bursty populations: departing the calm one and recalibrating
# forces a genuine (journaled) mapping change mid-workload.
CALM = VMSpec(p_on=0.1, p_off=0.5, r_base=2.0, r_extra=3.0)
BURSTY = VMSpec(p_on=0.45, p_off=0.05, r_base=2.0, r_extra=3.0)


class Killed(RuntimeError):
    """Stands in for kill -9 at an exact journal phase."""


def make_service(tmp_path, *, elastic=False, chaos_hook=None, telemetry=None):
    pool = None
    if elastic:
        pool = ElasticPMPool(4, initial_active=3, low_watermark=1,
                             high_watermark=1, patience=2, drain_ticks=1)
    return PlacementService(
        [PMSpec(20.0)] * 4,
        wal_path=tmp_path / "wal.jsonl",
        checkpoint_path=tmp_path / "ckpt.json",
        checkpoint_every=6, pool=pool, chaos_hook=chaos_hook,
        telemetry=telemetry)


def recover_service(tmp_path, *, elastic=False, telemetry=None):
    pool = None
    if elastic:
        pool = ElasticPMPool(4, initial_active=3, low_watermark=1,
                             high_watermark=1, patience=2, drain_ticks=1)
    return PlacementService.recover(
        [PMSpec(20.0)] * 4, wal_path=tmp_path / "wal.jsonl",
        checkpoint_path=tmp_path / "ckpt.json",
        checkpoint_every=6, pool=pool, telemetry=telemetry)


def drive(svc):
    """The scripted workload; idempotent keys make re-runs resume."""
    for j in range(3):
        svc.submit(f"a{j}", CALM)
        svc.drain()
    for j in range(3):
        svc.submit(f"b{j}", BURSTY, "critical")
        svc.drain()
    for key in ("a0", "a1", "a2"):
        out = svc.results[key]
        if out["op"] == "admit":
            svc.depart(f"d-{key}", out["vm_id"])
    svc.recalibrate("recal-1")  # population now all-bursty: real refit
    for j in range(3, 6):
        svc.submit(f"b{j}", BURSTY)
        svc.drain()
    svc.recalibrate("recal-2")  # same population: journaled no-op


def canonical(svc):
    return json.dumps(svc.capture_state(), sort_keys=True,
                      separators=(",", ":"))


def chaos_points(tmp_path, *, elastic):
    """Every (phase, seq) the uninterrupted workload passes through."""
    points = []
    svc = make_service(tmp_path, elastic=elastic,
                       chaos_hook=lambda ph, seq: points.append((ph, seq)))
    drive(svc)
    return points, canonical(svc)


@pytest.mark.parametrize("elastic", [False, True],
                         ids=["static-pool", "elastic-pool"])
def test_kill_at_every_phase_recovers_byte_identical(tmp_path, elastic):
    reference_dir = tmp_path / "ref"
    points, want = chaos_points(reference_dir, elastic=elastic)
    phases_hit = {ph for ph, _ in points}
    assert phases_hit == {"appended", "applied", "checkpointed"}

    for i, (phase, seq) in enumerate(points):
        workdir = tmp_path / f"kill-{i}"

        def bomb(ph, s, _target=(phase, seq)):
            if (ph, s) == _target:
                raise Killed(f"kill at {ph} seq {s}")

        svc = make_service(workdir, elastic=elastic, chaos_hook=bomb)
        with pytest.raises(Killed):
            drive(svc)
        del svc  # in-memory state is gone; disk is all that survives
        recovered = recover_service(workdir, elastic=elastic)
        drive(recovered)  # resume by idempotency key
        assert canonical(recovered) == want, \
            f"divergence after kill at {phase} seq {seq}"


def test_crash_between_refit_and_first_postrefit_admit(tmp_path):
    """The recalibration satellite: the refit is journaled (applied), the
    crash lands before any post-refit admission; replay must rebuild the
    *new* mapping and the next admission must be placed under it."""
    ref_dir = tmp_path / "ref"
    ref = make_service(ref_dir)
    drive(ref)
    want = canonical(ref)
    recal_seq = ref.results["recal-1"]["seq"]

    workdir = tmp_path / "crash"

    def bomb(ph, seq):
        if (ph, seq) == ("applied", recal_seq):
            raise Killed("crash after refit applied, before next admit")

    svc = make_service(workdir, chaos_hook=bomb)
    with pytest.raises(Killed):
        drive(svc)
    recovered = recover_service(workdir)
    # the refit survived the crash: mapping matches the reference service
    assert recovered.consolidator._mapping.p_on == \
        ref.consolidator._mapping.p_on
    drive(recovered)
    assert canonical(recovered) == want


def test_recovery_emits_wal_replayed(tmp_path):
    svc = make_service(tmp_path)
    drive(svc)
    sink = RingBufferSink()
    recovered = recover_service(tmp_path, telemetry=Telemetry(sink))
    replays = [e for e in sink.events if isinstance(e, WALReplayed)]
    assert len(replays) == 1
    ev = replays[0]
    assert ev.records == recovered.wal.last_seq - ev.checkpoint_seq
    assert ev.truncated_tail == 0
    assert ev.fingerprint == recovered.consolidator.state_fingerprint()


def test_checkpoint_compaction_shortens_replay(tmp_path):
    svc = make_service(tmp_path)
    drive(svc)
    svc.checkpoint()  # absorb everything; wal_lag drops to zero
    assert svc.wal_lag == 0
    want = canonical(svc)
    sink = RingBufferSink()
    recovered = recover_service(tmp_path, telemetry=Telemetry(sink))
    assert canonical(recovered) == want
    ev = next(e for e in sink.events if isinstance(e, WALReplayed))
    assert ev.records == 0  # the checkpoint carried all of it

    # ... and the service keeps working after a checkpoint-based recovery
    recovered.submit("post-ckpt", BURSTY)
    recovered.drain()
    assert recovered.results["post-ckpt"]["op"] in ("admit", "shed")


def test_torn_wal_tail_recovers_and_resumes(tmp_path):
    svc = make_service(tmp_path)
    drive(svc)
    want = canonical(svc)
    with open(tmp_path / "wal.jsonl", "ab") as fh:
        fh.write(b'{"seq": 999, "chain": "dead')  # torn final append
    sink = RingBufferSink()
    recovered = recover_service(tmp_path, telemetry=Telemetry(sink))
    ev = next(e for e in sink.events if isinstance(e, WALReplayed))
    assert ev.truncated_tail == 1
    assert canonical(recovered) == want


def test_checkpoint_ahead_of_wal_is_rejected(tmp_path):
    svc = make_service(tmp_path)
    drive(svc)
    svc.checkpoint()
    # swap in an older (shorter) journal than the checkpoint expects
    wal_path = tmp_path / "wal.jsonl"
    wal_path.unlink()
    WriteAheadLog(wal_path)  # fresh log at base_seq 0
    with pytest.raises(WALError, match="ahead of the WAL end"):
        recover_service(tmp_path)


def test_decided_keys_do_not_rejournal_on_resubmit(tmp_path):
    svc = make_service(tmp_path)
    drive(svc)
    recovered = recover_service(tmp_path)
    seq_before = recovered.wal.last_seq
    requests_before = recovered.counters["requests"]
    drive(recovered)  # every key already decided
    assert recovered.wal.last_seq == seq_before
    assert recovered.counters["requests"] == requests_before


def test_replay_rejects_divergent_vm_ids(tmp_path):
    # no checkpointing: recovery must replay the (tampered) log in full
    svc = PlacementService([PMSpec(20.0)] * 4,
                           wal_path=tmp_path / "wal.jsonl",
                           checkpoint_every=0)
    drive(svc)
    # tamper: rebuild the log with an admit record whose vm_id skips ahead,
    # re-chaining so only the semantic check can catch it
    old = WriteAheadLog(tmp_path / "wal.jsonl")
    records = old.records()
    (tmp_path / "wal.jsonl").unlink()
    fresh = WriteAheadLog(tmp_path / "wal.jsonl")
    for rec in records:
        body = dict(rec.body)
        if rec.op == "admit" and body["vm_id"] == 2:
            body["vm_id"] = 7
        fresh.append(rec.op, body, key=rec.key)
    with pytest.raises(ValueError, match="divergent"):
        PlacementService.recover([PMSpec(20.0)] * 4,
                                 wal_path=tmp_path / "wal.jsonl")
