"""Executable-documentation tests.

Documentation that drifts from the code is worse than none: these tests
parse the fenced Python blocks out of USAGE.md and README.md and execute
them in a namespace pre-seeded with the objects the prose assumes
(``vms``, ``pms``, ``vm_spec``, ``placement``, ``batch``).  A renamed
function or changed signature breaks the build, not the reader.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent

_PY_BLOCK = re.compile(r"```python\n(.*?)```", re.S)


def python_blocks(path: Path) -> list[str]:
    return _PY_BLOCK.findall(path.read_text())


def seeded_namespace() -> dict:
    """The ambient objects USAGE.md's snippets assume exist."""
    from repro.core.queuing_ffd import QueuingFFD
    from repro.workload.patterns import generate_pattern_instance

    vms, pms = generate_pattern_instance("equal", 30, seed=99)
    placement = QueuingFFD(rho=0.01, d=16).place(vms, pms)
    return {
        "vms": vms,
        "pms": pms,
        "vm_spec": vms[0],
        "placement": placement,
        "batch": vms[:5],
    }


def _shrink(code: str) -> str:
    """Scale down long-running literals so doc snippets stay fast."""
    code = code.replace("n_steps=40_000", "n_steps=4_000")
    code = code.replace("n_vms=200", "n_vms=40")
    code = code.replace("n_intervals=100", "n_intervals=30")
    code = code.replace("horizon=120", "horizon=30")
    return code


class TestUsageSnippets:
    @pytest.fixture(scope="class")
    def blocks(self):
        blocks = python_blocks(ROOT / "docs" / "USAGE.md")
        assert len(blocks) >= 7, "USAGE.md lost its code blocks"
        return blocks

    def test_every_usage_block_executes(self, blocks, tmp_path, monkeypatch):
        # Snippets that read files (recipe 3) assume monitoring.csv exists
        # in the working directory; provide it.
        from repro.workload.io import save_traces
        from repro.workload.onoff_generator import demand_trace, ensemble_states

        namespace = seeded_namespace()
        states = ensemble_states(namespace["vms"][:3], 5000,
                                 start_stationary=True, seed=1)
        save_traces(tmp_path / "monitoring.csv",
                    demand_trace(namespace["vms"][:3], states))
        monkeypatch.chdir(tmp_path)
        failures = []
        for i, block in enumerate(blocks):
            try:
                exec(compile(_shrink(block), f"USAGE.md[{i}]", "exec"),
                     namespace)
            except Exception as exc:  # noqa: BLE001 - reported below
                failures.append(f"block {i}: {type(exc).__name__}: {exc}\n"
                                f"---\n{block}")
        assert not failures, "\n\n".join(failures)

    def test_recipe_one_produces_the_documented_value(self):
        namespace = seeded_namespace()
        exec("from repro import mapcal\nK = mapcal(k=16, p_on=0.01, "
             "p_off=0.09, rho=0.01)", namespace)
        assert namespace["K"] == 5  # the '-> 5 blocks' comment in USAGE.md


class TestReadmeSnippets:
    def test_quickstart_block_executes_and_claims_hold(self):
        blocks = python_blocks(ROOT / "README.md")
        assert blocks, "README.md lost its quickstart block"
        namespace: dict = {}
        code = _shrink(blocks[0])
        exec(compile(code, "README.md[0]", "exec"), namespace)
        # the snippet's printed claim: queue < peak
        assert namespace["queue"].n_used_pms < namespace["peak"].n_used_pms

    def test_readme_mapcal_comment_is_accurate(self):
        from repro import mapcal

        assert mapcal(k=16, p_on=0.01, p_off=0.09, rho=0.01) == 5


class TestApiDocAccuracy:
    def test_every_module_named_in_api_md_imports(self):
        import importlib

        text = (ROOT / "docs" / "API.md").read_text()
        modules = set(re.findall(r"`(repro(?:\.\w+)+)`", text))
        assert modules, "API.md names no modules?"
        for mod in sorted(modules):
            # entries like `repro.core.heterogeneous` must import; entries
            # with attribute-looking tails are skipped (functions/classes).
            parts = mod.split(".")
            try:
                importlib.import_module(mod)
            except ModuleNotFoundError:
                importlib.import_module(".".join(parts[:-1]))

    def test_theory_md_references_real_tests(self):
        text = (ROOT / "docs" / "THEORY.md").read_text()
        for ref in re.findall(r"tests/(test_\w+\.py)", text):
            assert (ROOT / "tests" / ref).exists(), ref
