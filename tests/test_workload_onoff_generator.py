"""Tests for repro.workload.onoff_generator."""

import numpy as np
import pytest

from repro.core.types import Placement, VMSpec
from repro.workload.onoff_generator import demand_trace, ensemble_states, pm_load_trace

P_ON, P_OFF = 0.01, 0.09


def vm(base, extra, p_on=P_ON, p_off=P_OFF):
    return VMSpec(p_on, p_off, base, extra)


class TestEnsembleStates:
    def test_shape_and_dtype(self):
        states = ensemble_states([vm(1, 1)] * 5, 100, seed=0)
        assert states.shape == (5, 101)
        assert states.dtype == bool

    def test_all_off_start(self):
        states = ensemble_states([vm(1, 1)] * 5, 10, seed=0)
        assert not states[:, 0].any()

    def test_stationary_start(self):
        states = ensemble_states([vm(1, 1)] * 20_000, 0,
                                 start_stationary=True, seed=1)
        assert states[:, 0].mean() == pytest.approx(0.1, abs=0.01)

    def test_heterogeneous_probabilities_honoured(self):
        vms = [vm(1, 1, p_on=0.5, p_off=0.5), vm(1, 1, p_on=0.001, p_off=0.9)]
        states = ensemble_states(vms, 50_000, start_stationary=True, seed=2)
        assert states[0].mean() == pytest.approx(0.5, abs=0.02)
        assert states[1].mean() == pytest.approx(0.001 / 0.901, abs=0.005)

    def test_reproducible(self):
        vms = [vm(1, 1)] * 3
        np.testing.assert_array_equal(
            ensemble_states(vms, 100, seed=5), ensemble_states(vms, 100, seed=5)
        )

    def test_empty_fleet(self):
        states = ensemble_states([], 10, seed=0)
        assert states.shape == (0, 11)

    def test_negative_steps(self):
        with pytest.raises(ValueError):
            ensemble_states([vm(1, 1)], -1)


class TestDemandTrace:
    def test_levels(self):
        vms = [vm(10, 5), vm(20, 2)]
        states = np.array([[False, True], [True, False]])
        demands = demand_trace(vms, states)
        np.testing.assert_allclose(demands, [[10, 15], [22, 20]])

    def test_row_mismatch(self):
        with pytest.raises(ValueError, match="rows"):
            demand_trace([vm(1, 1)], np.zeros((2, 3), dtype=bool))


class TestPmLoadTrace:
    def test_aggregation(self):
        vms = [vm(10, 5), vm(20, 2), vm(1, 1)]
        placement = Placement(3, 2, assignment=np.array([0, 0, 1]))
        states = np.array([[False, True],
                           [False, False],
                           [True, True]])
        loads = pm_load_trace(placement, demand_trace(vms, states))
        np.testing.assert_allclose(loads, [[30, 35], [2, 2]])

    def test_unused_pm_rows_zero(self):
        vms = [vm(5, 1)]
        placement = Placement(1, 3, assignment=np.array([1]))
        loads = pm_load_trace(placement, demand_trace(vms, np.zeros((1, 4), bool)))
        assert loads[0].sum() == 0 and loads[2].sum() == 0
        np.testing.assert_allclose(loads[1], 5.0)

    def test_requires_complete_placement(self):
        placement = Placement(1, 1)
        with pytest.raises(ValueError, match="placed"):
            pm_load_trace(placement, np.zeros((1, 3)))

    def test_shape_mismatch(self):
        placement = Placement(2, 1, assignment=np.array([0, 0]))
        with pytest.raises(ValueError, match="rows"):
            pm_load_trace(placement, np.zeros((3, 3)))
