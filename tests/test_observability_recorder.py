"""Time-series recorder: event stream -> rolling aggregates."""

from __future__ import annotations

import pytest

from repro.observability.recorder import TimeSeriesRecorder
from repro.telemetry.events import (
    CapacityViolation,
    IntervalSnapshot,
    MigrationCompleted,
    PMCrashed,
    PMRepaired,
)


def snap(t: int, *, pm_ids=(0, 1), loads=(50.0, 60.0), caps=(100.0, 100.0),
         hosted=(4, 4), on_vms=(1, 2), expected_on=(0.4, 0.4),
         expected_var=(0.6, 0.6), migrations=0, overloaded=0):
    return IntervalSnapshot(
        time=t, pm_ids=pm_ids, loads=loads, capacities=caps, hosted=hosted,
        on_vms=on_vms, expected_on=expected_on, expected_var=expected_var,
        migrations=migrations, overloaded=overloaded)


class TestTickFinalization:
    def test_violations_fold_into_their_interval(self):
        rec = TimeSeriesRecorder(window=10)
        rec.on_event(CapacityViolation(time=3, pm_id=1, load=110, capacity=100))
        rec.on_event(snap(3))
        assert rec.ticks == 1
        assert rec.violated.last == 1.0
        assert rec.pms[1].violations.last == 1.0
        assert rec.pms[0].violations.last == 0.0

    def test_duplicate_violations_same_pm_count_once(self):
        rec = TimeSeriesRecorder(window=10)
        rec.on_event(CapacityViolation(time=0, pm_id=0, load=1, capacity=0))
        rec.on_event(CapacityViolation(time=0, pm_id=0, load=2, capacity=0))
        rec.on_event(snap(0))
        assert rec.violated.last == 1.0

    def test_migrations_counted_per_interval(self):
        rec = TimeSeriesRecorder(window=10)
        rec.on_event(MigrationCompleted(time=5, vm_id=1, source_pm=0,
                                        target_pm=1))
        rec.on_event(MigrationCompleted(time=5, vm_id=2, source_pm=0,
                                        target_pm=1))
        rec.on_event(snap(5))
        assert rec.migrations.last == 2.0

    def test_stale_buffers_dropped(self):
        rec = TimeSeriesRecorder(window=10)
        # violation in an interval that never gets a snapshot (cadence > 1)
        rec.on_event(CapacityViolation(time=0, pm_id=0, load=1, capacity=0))
        rec.on_event(snap(4))
        assert not rec._pending_violations
        assert rec.violated.last == 0.0

    def test_pm_liveness_tracked(self):
        rec = TimeSeriesRecorder(window=10)
        rec.on_event(snap(0))
        rec.on_event(PMCrashed(time=1, pm_id=0))
        assert rec.pms[0].alive is False
        rec.on_event(PMRepaired(time=4, pm_id=0))
        assert rec.pms[0].alive is True

    def test_charts_and_summary(self):
        rec = TimeSeriesRecorder(window=10)
        for t in range(5):
            rec.on_event(snap(t))
        s = rec.fleet_summary()
        assert s["ticks"] == 5
        assert s["utilization"] == pytest.approx(110.0 / 200.0)
        assert s["on_fraction"] == pytest.approx(3 / 8)
        times, values = rec.charts["utilization"].series()
        assert times == list(range(5))


class TestBurn:
    def test_cvr_burn_rate(self):
        rec = TimeSeriesRecorder(window=20)
        # 2 PMs, one violating every interval: CVR = 0.5
        for t in range(10):
            rec.on_event(CapacityViolation(time=t, pm_id=0, load=1,
                                           capacity=0))
            rec.on_event(snap(t))
        # budget 0.05 -> burn 10x
        assert rec.burn("cvr", 10, 0.05) == pytest.approx(10.0)
        assert rec.cvr(10) == pytest.approx(0.5)

    def test_migration_churn_burn(self):
        rec = TimeSeriesRecorder(window=20)
        for t in range(4):
            rec.on_event(MigrationCompleted(time=t, vm_id=0, source_pm=0,
                                            target_pm=1))
            rec.on_event(snap(t))
        # 1 migration / 2 PM-intervals = 0.5 rate; budget 0.1 -> 5x
        assert rec.burn("migration_churn", 4, 0.1) == pytest.approx(5.0)

    def test_empty_recorder_burns_zero(self):
        rec = TimeSeriesRecorder(window=10)
        assert rec.burn("cvr", 5, 0.01) == 0.0

    def test_unknown_metric_rejected(self):
        rec = TimeSeriesRecorder(window=10)
        with pytest.raises(ValueError, match="unknown burn metric"):
            rec.burn("latency", 5, 0.01)
        with pytest.raises(ValueError, match="budget"):
            rec.burn("cvr", 5, 0.0)


class TestWorstPMs:
    def test_ranked_by_violation_rate(self):
        rec = TimeSeriesRecorder(window=10)
        for t in range(4):
            if t % 2 == 0:
                rec.on_event(CapacityViolation(time=t, pm_id=1, load=1,
                                               capacity=0))
            rec.on_event(snap(t))
        worst = rec.worst_pms(2)
        assert worst[0].pm_id == 1
        assert worst[0].violation_rate == pytest.approx(0.5)

    def test_headroom(self):
        rec = TimeSeriesRecorder(window=10)
        rec.on_event(snap(0, loads=(90.0, 10.0)))
        assert rec.pms[0].headroom == pytest.approx(10.0)
        assert rec.pms[1].headroom == pytest.approx(90.0)
