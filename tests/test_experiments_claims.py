"""Tests for repro.experiments.claims — machine-checked paper claims."""

import pytest

from repro.analysis.report import ExperimentResult
from repro.experiments.claims import CLAIM_SUITES, verify_claims


class TestRegistry:
    def test_suites_cover_the_evaluation_figures(self):
        assert [s[0] for s in CLAIM_SUITES] == ["fig5", "fig6", "fig9"]

    def test_ten_claims_registered(self):
        total = sum(len(claims) for _, _, claims in CLAIM_SUITES)
        assert total == 10

    def test_claim_ids_unique(self):
        ids = [c.claim_id for _, _, claims in CLAIM_SUITES for c in claims]
        assert len(ids) == len(set(ids))

    def test_claims_carry_sources_and_statements(self):
        for _, _, claims in CLAIM_SUITES:
            for c in claims:
                assert c.statement and c.source
                assert callable(c.check)


class TestChecks:
    def test_fig5_checks_on_synthetic_evidence(self):
        """The predicates respond correctly to hand-built good/bad tables."""
        _, _, claims = CLAIM_SUITES[0]
        by_id = {c.claim_id: c for c in claims}
        good = ExperimentResult("fig5", "x", headers=[
            "pattern", "n_vms", "QUEUE", "RP", "RB", "QUEUE_vs_RP_%", "extra"])
        for pattern, red in (("Rb=Re", 26.0), ("Rb>Re", 13.0), ("Rb<Re", 42.0)):
            good.add_row(pattern, 100, 18.0, 24.0, 12.0, red, 6.0)
        assert by_id["pm-reduction-large"].check(good)
        assert by_id["pm-reduction-normal"].check(good)
        assert by_id["queue-between-rb-and-rp"].check(good)

        bad = ExperimentResult("fig5", "x", headers=good.headers)
        bad.add_row("Rb<Re", 100, 24.0, 24.0, 25.0, 0.0, -1.0)
        assert not by_id["pm-reduction-large"].check(bad)
        assert not by_id["queue-between-rb-and-rp"].check(bad)

    def test_fig6_checks_on_synthetic_evidence(self):
        _, _, claims = CLAIM_SUITES[1]
        by_id = {c.claim_id: c for c in claims}
        good = ExperimentResult("fig6", "x", headers=[
            "pattern", "strategy", "mean_CVR", "max_CVR", "frac"])
        for strat, cvr in (("QUEUE", 0.004), ("RP", 0.0), ("RB", 0.5)):
            good.add_row("Rb=Re", strat, cvr, cvr, 0.0)
        assert all(c.check(good) for c in claims)

        bad = ExperimentResult("fig6", "x", headers=good.headers)
        bad.add_row("Rb=Re", "QUEUE", 0.5, 0.5, 0.9)
        bad.add_row("Rb=Re", "RP", 0.1, 0.1, 0.5)
        bad.add_row("Rb=Re", "RB", 0.01, 0.01, 0.0)
        assert not any(c.check(bad) for c in claims)


class TestVerifyClaimsEndToEnd:
    @pytest.fixture(scope="class")
    def report(self):
        return verify_claims()

    def test_all_pass(self, report):
        verdicts = report.column("verdict")
        assert verdicts == ["PASS"] * 10

    def test_report_shape(self, report):
        assert report.experiment_id == "claims"
        assert len(report.rows) == 10
        assert any("10/10" in n for n in report.notes)
