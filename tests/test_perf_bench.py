"""The parallel experiment runner: filtering, seeding, parity, aggregation."""

from __future__ import annotations

import json

import pytest

from repro.perf.bench import (
    BenchJobResult,
    iter_job_names,
    job_seed,
    run_bench,
)
from repro.telemetry import RingBufferSink, Telemetry, tracing


class TestJobSelection:
    def test_star_matches_whole_registry(self):
        from repro.experiments.runner import EXPERIMENTS
        assert iter_job_names("*") == sorted(EXPERIMENTS)

    def test_glob_filters(self):
        figs = iter_job_names("fig*")
        assert figs == ["fig10", "fig5", "fig6", "fig7", "fig8", "fig9"]
        assert iter_job_names("ablation_r*") == [
            "ablation_reconsolidation", "ablation_reservation_shape",
            "ablation_resilience", "ablation_rho_sweep", "ablation_rounding",
        ]

    def test_no_match_raises(self):
        with pytest.raises(ValueError, match="no experiment matches"):
            run_bench("no_such_job_*")

    def test_bad_parallel_raises(self):
        with pytest.raises(ValueError, match="parallel"):
            run_bench("table1", parallel=0)


class TestSeeding:
    def test_job_seed_deterministic_and_name_sensitive(self):
        assert job_seed(2013, "fig9") == job_seed(2013, "fig9")
        assert job_seed(2013, "fig9") != job_seed(2013, "fig8")
        assert job_seed(2013, "fig9") != job_seed(2014, "fig9")

    def test_default_seed_matches_published_run(self):
        from repro.analysis.report import render_result
        from repro.experiments.runner import EXPERIMENTS
        (result,) = run_bench("table1")
        fn, _ = EXPERIMENTS["table1"]
        assert result.text == render_result(fn())
        assert result.ok and result.error == ""
        assert result.seed is None


class TestParity:
    def test_parallel_identical_to_serial(self, tmp_path):
        serial = run_bench("table1", output_dir=tmp_path / "serial")
        fanned = run_bench("table1", parallel=2,
                           output_dir=tmp_path / "parallel")
        assert [r.name for r in serial] == [r.name for r in fanned]
        for a, b in zip(serial, fanned):
            assert a.text == b.text
            assert a.rows_sha256 == b.rows_sha256
        assert ((tmp_path / "serial" / "table1.txt").read_text()
                == (tmp_path / "parallel" / "table1.txt").read_text())


class TestAggregation:
    def test_results_layout(self, tmp_path):
        run_bench("table1", output_dir=tmp_path)
        summary = json.loads((tmp_path / "BENCH_results.json").read_text())
        assert summary["pattern"] == "table1"
        job = summary["jobs"]["table1"]
        assert job["ok"] is True
        assert len(job["rows_sha256"]) == 64
        assert "text" not in job  # tables live in the .txt, not the summary
        # wall-clock noise lives in BENCH_timings.json, never the summary —
        # that is what makes BENCH_results.json byte-comparable across runs
        assert "seconds" not in job
        timings = json.loads((tmp_path / "BENCH_timings.json").read_text())
        assert timings["parallel"] == 1
        assert timings["jobs"]["table1"] > 0
        assert (tmp_path / "table1.txt").read_text().rstrip()

    def test_results_json_is_run_invariant(self, tmp_path):
        run_bench("table1", output_dir=tmp_path / "a")
        run_bench("table1", output_dir=tmp_path / "b", parallel=2)
        assert ((tmp_path / "a" / "BENCH_results.json").read_bytes()
                == (tmp_path / "b" / "BENCH_results.json").read_bytes())

    def test_summary_dict_drops_text(self):
        r = BenchJobResult(name="x", seed=None, seconds=1.0, ok=True,
                           error="", text="big table", rows_sha256="00")
        assert "text" not in r.summary_dict()
        assert r.summary_dict()["name"] == "x"


class TestProgressStream:
    def test_jsonl_and_bus_events(self, tmp_path):
        progress = tmp_path / "progress.jsonl"
        sink = RingBufferSink()
        seen = []
        with tracing(Telemetry(sink)):
            run_bench("table1", progress_path=progress,
                      on_event=seen.append)
        lines = [json.loads(line)
                 for line in progress.read_text().splitlines()]
        kinds = [d["kind"] for d in lines]
        assert kinds == ["bench_job_started", "bench_job_finished"]
        assert lines[0]["job"] == "table1"
        assert lines[1]["ok"] is True
        assert [e.kind for e in sink.events] == kinds
        assert [type(e).__name__ for e in seen] == [
            "BenchJobStarted", "BenchJobFinished"]

    def test_failing_job_reports_not_raises(self, monkeypatch, tmp_path):
        import repro.experiments.runner as runner_mod

        def boom():
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(runner_mod.EXPERIMENTS, "table1",
                            (boom, "broken on purpose"))
        (result,) = run_bench("table1", output_dir=tmp_path)
        assert not result.ok
        assert "RuntimeError: synthetic failure" in result.error
        assert result.rows_sha256 == ""
        assert not (tmp_path / "table1.txt").exists()  # no table to persist
        summary = json.loads((tmp_path / "BENCH_results.json").read_text())
        assert summary["jobs"]["table1"]["ok"] is False


class TestCLI:
    def test_bench_list(self, capsys):
        from repro.experiments.runner import main
        assert main(["bench", "--list", "--filter", "fig*"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "fig9" in out and "table1" not in out

    def test_bench_run_writes_results(self, tmp_path, capsys):
        from repro.experiments.runner import main
        code = main(["bench", "--filter", "table1", "-o", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "BENCH_results.json").exists()
        out = capsys.readouterr().out
        assert "table1" in out

    def test_bench_bad_filter_exit_code(self, capsys):
        from repro.experiments.runner import main
        assert main(["bench", "--filter", "zzz*"]) == 2
