"""Tests for repro.simulation.failures — PM crash injection."""

import numpy as np
import pytest

from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import Placement, PMSpec, VMSpec
from repro.simulation.datacenter import Datacenter
from repro.simulation.failures import FailureInjector
from repro.workload.patterns import generate_pattern_instance


def vm(base, extra=0.0):
    return VMSpec(0.01, 0.09, base, extra)


def simple_dc(n_vms=2, n_pms=3, cap=100.0, seed=0):
    vms = [vm(10.0, 5.0) for _ in range(n_vms)]
    pms = [PMSpec(cap)] * n_pms
    placement = Placement(n_vms, n_pms,
                          assignment=np.zeros(n_vms, dtype=int))
    return Datacenter(vms, pms, placement, seed=seed)


class TestFailureInjector:
    def test_no_failures_at_zero_probability(self):
        dc = simple_dc()
        inj = FailureInjector(dc, failure_probability=0.0, seed=0)
        for t in range(50):
            inj.step(t)
        assert inj.record.failures == 0
        assert not inj.failed.any()

    def test_certain_failure_evacuates(self):
        dc = simple_dc()
        inj = FailureInjector(dc, failure_probability=1.0,
                              repair_probability=0.0, seed=1)
        inj.step(0)
        assert inj.record.failures >= 1
        assert inj.failed[0]
        # PM 0's VMs moved off
        assert len(dc.pms[0].vm_ids) == 0
        assert inj.record.evacuations == 2

    def test_stranded_when_nowhere_to_go(self):
        # One PM only: its VMs cannot be evacuated.
        dc = simple_dc(n_pms=1)
        inj = FailureInjector(dc, failure_probability=1.0,
                              repair_probability=0.0, seed=2)
        inj.step(0)
        assert len(inj.stranded_vms) == 2
        assert inj.record.stranded_vm_intervals == 2

    def test_stranded_cleared_on_recovery(self):
        dc = simple_dc(n_pms=1)
        inj = FailureInjector(dc, failure_probability=1.0,
                              repair_probability=0.0, seed=3)
        inj.step(0)
        assert inj.stranded_vms
        inj.failure_probability = 0.0
        inj.repair_probability = 1.0
        inj.step(1)
        assert inj.record.recoveries == 1
        assert not inj.stranded_vms  # host healthy again

    def test_stranded_retry_succeeds_when_demand_shrinks(self):
        # Two PMs; the stranded VM is spiking during the crash and only
        # fits the healthy PM once its spike ends.  Degradation is off so
        # the plain stranded-retry path is exercised.
        vms = [VMSpec(0.01, 0.09, 30.0, 40.0), vm(60.0)]
        pms = [PMSpec(100.0), PMSpec(100.0)]
        placement = Placement(2, 2, assignment=np.array([0, 1]))
        dc = Datacenter(vms, pms, placement, seed=4)
        dc._on[0] = True
        dc.vms[0].on = True  # demand 70 > PM1's free 40
        inj = FailureInjector(dc, failure_probability=0.0,
                              repair_probability=0.0,
                              degrade_stranded=False, seed=5)
        inj.failed[0] = True
        inj.record.failures += 1
        inj._evacuate(0)
        assert dc.placement.pm_of(0) == 0  # stranded on the dead host
        assert 0 in inj.stranded_vms
        # Spike ends -> demand 30 fits PM1's free 40 -> retry succeeds.
        dc._on[0] = False
        dc.vms[0].on = False
        inj.step(0)
        assert dc.placement.pm_of(0) == 1
        assert not inj.stranded_vms

    def test_failed_pm_not_an_evacuation_target(self):
        dc = simple_dc(n_pms=3)
        inj = FailureInjector(dc, failure_probability=0.0, seed=6)
        inj.failed[1] = True
        inj.failed[0] = True
        inj._evacuate(0)
        for vm_id in (0, 1):
            assert dc.placement.pm_of(vm_id) == 2

    def test_failed_intervals_accumulate(self):
        dc = simple_dc()
        inj = FailureInjector(dc, failure_probability=1.0,
                              repair_probability=0.0, seed=7)
        inj.step(0)
        down_now = int(inj.failed.sum())
        inj.failure_probability = 0.0
        inj.step(1)
        assert inj.record.failed_intervals >= 2 * down_now - 1

    def test_probability_validation(self):
        dc = simple_dc()
        with pytest.raises(ValueError):
            FailureInjector(dc, failure_probability=1.5)
        with pytest.raises(ValueError):
            FailureInjector(dc, repair_probability=-0.1)

    def test_reproducible(self):
        a_dc = simple_dc(seed=8)
        b_dc = simple_dc(seed=8)
        a = FailureInjector(a_dc, failure_probability=0.3,
                            repair_probability=0.3, seed=9)
        b = FailureInjector(b_dc, failure_probability=0.3,
                            repair_probability=0.3, seed=9)
        for t in range(30):
            a.step(t)
            b.step(t)
        assert a.record == b.record


class TestResilienceComparison:
    def test_denser_packing_strands_more(self):
        """RB's denser packing leaves less evacuation headroom than QUEUE's
        reserved fleet when PMs crash."""
        from repro.placement.ffd import ffd_by_base

        totals = {}
        for name, placer in (("QUEUE", QueuingFFD(rho=0.01, d=16)),
                             ("RB", ffd_by_base(max_vms_per_pm=16))):
            stranded = 0
            for seed in range(5):
                vms, pms = generate_pattern_instance("equal", 80, seed=seed)
                placement = placer.place(vms, pms)
                dc = Datacenter(vms, pms, placement, seed=seed + 100)
                inj = FailureInjector(dc, failure_probability=0.01,
                                      repair_probability=0.1, seed=seed + 200)
                for t in range(100):
                    dc.step()
                    inj.step(t)
                stranded += inj.record.stranded_vm_intervals
            totals[name] = stranded
        # QUEUE's headroom absorbs evacuations at least as well as RB's
        # tight packing (usually strictly better).
        assert totals["QUEUE"] <= totals["RB"]
