"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import PMSpec, VMSpec
from repro.workload.patterns import generate_pattern_instance

#: the paper's default switch probabilities
P_ON, P_OFF = 0.01, 0.09


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator for test randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_vms() -> list[VMSpec]:
    """Six hand-written VMs with heterogeneous footprints."""
    return [
        VMSpec(P_ON, P_OFF, r_base=10.0, r_extra=10.0),
        VMSpec(P_ON, P_OFF, r_base=15.0, r_extra=5.0),
        VMSpec(P_ON, P_OFF, r_base=5.0, r_extra=15.0),
        VMSpec(P_ON, P_OFF, r_base=8.0, r_extra=12.0),
        VMSpec(P_ON, P_OFF, r_base=20.0, r_extra=2.0),
        VMSpec(P_ON, P_OFF, r_base=2.0, r_extra=18.0),
    ]


@pytest.fixture
def small_pms() -> list[PMSpec]:
    """Four identical 100-unit PMs."""
    return [PMSpec(capacity=100.0) for _ in range(4)]


@pytest.fixture
def medium_instance() -> tuple[list[VMSpec], list[PMSpec]]:
    """A reproducible 80-VM equal-pattern instance."""
    return generate_pattern_instance("equal", n_vms=80, seed=777)
