"""Decision provenance: index queries, explain rendering, determinism."""

import json

import pytest

from repro.observability.provenance import (
    REASON_TEXT,
    ProvenanceIndex,
    render_decision,
    render_explanation,
)
from repro.placement.base import PLACEMENT_REASONS
from repro.telemetry import (
    MigrationCompleted,
    MigrationDecided,
    PlacementDecided,
    ReconsolidationDecided,
    ReplanCommitted,
    ReplanDecided,
    ReplanRolledBack,
    ReplanStarted,
    replay_summary,
)


def placement(vm_id=3, chosen=1, decision_id=0):
    return PlacementDecided(
        time=-1, decision_id=decision_id, vm_id=vm_id, placer="QUEUE",
        chosen_pm=chosen, context="batch", p_on=0.2, p_off=0.4,
        table_fingerprint="7a74bbf2cfec", cache_hit=True,
        score_kind="reservation_headroom",
        cand_pms=(0, 1, 2), cand_scores=(-1.5, 3.0, 3.0),
        cand_verdicts=("cvr_threshold", "chosen", "feasible"),
        dropped_candidates=4, total_pms=7)


def migration(vm_id=5, decision_id=1):
    return MigrationDecided(
        time=16, decision_id=decision_id, vm_id=vm_id, source_pm=1,
        chosen_pm=2, policy="StandardPolicy", cause="overload",
        cand_pms=(0, 1, 2), cand_scores=(-56.7, 0.0, 12.4),
        cand_verdicts=("capacity", "source_pm", "chosen"),
        dropped_candidates=0, total_pms=3)


def reconsolidation(decision_id=2):
    return ReconsolidationDecided(
        time=50, decision_id=decision_id, cause="requested", placer="QUEUE",
        planned_moves=5, executed_moves=3, move_vms=(1, 4, 7),
        move_sources=(0, 2, 2), move_targets=(3, 3, 0), dropped_moves=2)


def replan(decision_id=3):
    return ReplanDecided(
        time=92, decision_id=decision_id, cause="slo_burn",
        fingerprint="ab12cd34ef56", drift_detections=3, drift_pms=(1, 4),
        alert_streak=5, active_alerts=("cvr_burn",), baseline_cvr=0.108,
        budget=24, deadline=117)


STREAM = [
    placement(),
    migration(),
    MigrationCompleted(time=16, vm_id=5, source_pm=1, target_pm=2),
    reconsolidation(),
    replan(),
    ReplanStarted(time=92, cause="slo_burn", fingerprint="ab12cd34ef56",
                  checkpoint="", baseline_cvr=0.108, deadline=117,
                  budget=24),
    ReplanCommitted(time=117, fingerprint="ab12cd34ef56",
                    baseline_cvr=0.108, post_cvr=0.08, migrations=24),
]


class TestProvenanceIndex:
    def test_decision_extraction_preserves_order(self):
        idx = ProvenanceIndex(STREAM)
        assert [e.kind for e in idx.decisions] == [
            "placement_decided", "migration_decided",
            "reconsolidation_decided", "replan_decided"]
        assert len(idx.events) == len(STREAM)

    def test_for_vm_spans_all_decision_kinds(self):
        idx = ProvenanceIndex(STREAM)
        assert [s for s, _ in idx.for_vm(3)] == [0]   # placed
        assert [s for s, _ in idx.for_vm(5)] == [1]   # migrated
        assert [s for s, _ in idx.for_vm(4)] == [2]   # reconsolidation move
        assert idx.for_vm(99) == []

    def test_for_pm_matches_every_role(self):
        idx = ProvenanceIndex(STREAM)
        seqs = [s for s, _ in idx.for_pm(1)]
        # candidate in placement, source in migration, drift PM in replan
        assert seqs == [0, 1, 3]
        assert [s for s, _ in idx.for_pm(3)] == [2]  # move target only

    def test_at_tick_and_by_id(self):
        idx = ProvenanceIndex(STREAM)
        assert [s for s, _ in idx.at_tick(16)] == [1]
        assert [s for s, _ in idx.by_id(3)] == [3]
        assert idx.by_seq(0)[0][1].kind == "placement_decided"
        assert idx.by_seq(99) == []

    def test_duplicate_ids_all_returned(self):
        # A rollback rewinds the scheduler's decision sequence, so ids can
        # legitimately repeat; queries must surface every occurrence.
        idx = ProvenanceIndex([migration(decision_id=7),
                               migration(vm_id=9, decision_id=7)])
        assert len(idx.by_id(7)) == 2

    def test_dropped_total_sums_candidates_and_moves(self):
        idx = ProvenanceIndex(STREAM)
        assert idx.decisions_dropped_total == 4 + 2

    def test_from_jsonl_tolerates_corrupt_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [json.dumps(e.to_dict()) for e in STREAM]
        path.write_text("\n".join(lines) + '\n{"kind": "placement_dec')
        idx = ProvenanceIndex.from_jsonl(path)
        assert len(idx.decisions) == 4
        assert idx.skipped_lines == 1
        assert "malformed" in render_explanation(idx, vm=3)


class TestOutcomeLinking:
    def test_migration_outcome_completed(self):
        idx = ProvenanceIndex(STREAM)
        assert idx.migration_outcome(idx.decisions[1]) == "completed"

    def test_migration_without_target(self):
        e = MigrationDecided(time=4, decision_id=0, vm_id=1, source_pm=0,
                             chosen_pm=-1, policy="StandardPolicy",
                             cand_pms=(0,), cand_scores=(0.0,),
                             cand_verdicts=("source_pm",), total_pms=1)
        idx = ProvenanceIndex([e])
        assert "no feasible target" in idx.migration_outcome(e)

    def test_replan_linked_to_commit_by_fingerprint(self):
        idx = ProvenanceIndex(STREAM)
        lines = idx.replan_outcome(idx.decisions[3])
        assert any("replan started" in s for s in lines)
        assert any("COMMITTED" in s and "0.0800" in s for s in lines)

    def test_replan_rollback_and_pending(self):
        rolled = [replan(), ReplanRolledBack(
            time=117, fingerprint="ab12cd34ef56", baseline_cvr=0.108,
            post_cvr=0.2, restored_time=92, parity=True)]
        idx = ProvenanceIndex(rolled)
        assert any("ROLLED BACK" in s
                   for s in idx.replan_outcome(idx.decisions[0]))
        pending = ProvenanceIndex([replan()])
        assert any("pending" in s
                   for s in pending.replan_outcome(pending.decisions[0]))


class TestRendering:
    def test_every_verdict_has_reason_text(self):
        assert set(REASON_TEXT) == PLACEMENT_REASONS

    def test_placement_block_has_counterfactuals(self):
        idx = ProvenanceIndex(STREAM)
        text = render_decision(0, idx.decisions[0], idx)
        assert "VM 3 -> PM 1" in text
        assert "predicted CVR above threshold" in text   # why not PM 0
        assert "feasible, but a preferred PM won" in text  # why not PM 2
        assert "table=7a74bbf2cfec" in text
        assert "4 more candidate PM(s) omitted (7 total)" in text

    def test_replan_block_carries_evidence(self):
        idx = ProvenanceIndex(STREAM)
        text = render_decision(3, idx.decisions[3], idx)
        assert "3 new drift detection(s) [PMs: 1, 4]" in text
        assert "alert streak 5 [active: cvr_burn]" in text
        assert "COMMITTED" in text

    def test_overview_lists_and_caps(self):
        many = [placement(vm_id=i, decision_id=i) for i in range(45)]
        idx = ProvenanceIndex(many)
        text = render_explanation(idx)
        assert "45 decision(s) in trace" in text
        assert "... 5 more" in text

    def test_render_is_deterministic(self):
        a = render_explanation(ProvenanceIndex(STREAM), vm=5)
        b = render_explanation(ProvenanceIndex(list(STREAM)), vm=5)
        assert a == b

    def test_no_matches_says_so(self):
        text = render_explanation(ProvenanceIndex(STREAM), vm=99)
        assert "0 match(es)" in text


class TestReplaySummaryDecisions:
    def test_decision_counters(self):
        counts = replay_summary(STREAM)
        assert counts["placement_decisions"] == 1
        assert counts["migration_decisions"] == 1
        assert counts["reconsolidation_decisions"] == 1
        assert counts["replan_decisions"] == 1
        assert counts["decisions_dropped_total"] == 6

    def test_decision_counters_zero_on_plain_stream(self):
        counts = replay_summary(
            [MigrationCompleted(time=0, vm_id=0, source_pm=0, target_pm=1)])
        assert counts["placement_decisions"] == 0
        assert counts["decisions_dropped_total"] == 0


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def trace(self, tmp_path_factory):
        from repro.core.queuing_ffd import QueuingFFD
        from repro.simulation.scenario import Scenario
        from repro.telemetry import JSONLSink, Telemetry
        from repro.workload.patterns import generate_pattern_instance

        path = tmp_path_factory.mktemp("prov") / "events.jsonl"
        vms, pms = generate_pattern_instance("equal", 24, seed=7)
        tel = Telemetry(JSONLSink(path))
        Scenario(vms, pms, placer=QueuingFFD(), telemetry=tel).run(
            40, seed=7)
        tel.close()
        return path

    def test_live_trace_explains_batch_placements(self, trace):
        idx = ProvenanceIndex.from_jsonl(trace)
        placements = [e for e in idx.decisions
                      if e.kind == "placement_decided"]
        assert len(placements) == 24
        for e in placements:
            assert e.table_fingerprint
            assert set(e.cand_verdicts) <= PLACEMENT_REASONS
        # every placed VM is explainable
        text = render_explanation(idx, vm=placements[0].vm_id)
        assert "decision #" in text

    def test_explain_output_byte_identical_across_reads(self, trace):
        for query in ({"vm": 0}, {"tick": -1}, {"decision": 0}, {}):
            a = render_explanation(ProvenanceIndex.from_jsonl(trace),
                                   **query)
            b = render_explanation(ProvenanceIndex.from_jsonl(trace),
                                   **query)
            assert a == b
