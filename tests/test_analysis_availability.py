"""Tests for repro.analysis.availability — nines, MTTR, blast radius."""

import math

import numpy as np
import pytest

from repro.analysis.availability import (
    MAX_NINES,
    availability_report,
    blast_radius_stats,
    mean_time_to_repair,
    nines,
)
from repro.simulation.failures import FailureRecord
from repro.simulation.monitor import RunRecord


def make_record(n_intervals=100, down=None, degraded=None):
    down = np.asarray(down if down is not None else [], dtype=np.int64)
    degraded = (np.asarray(degraded, dtype=np.int64) if degraded is not None
                else np.zeros_like(down))
    return RunRecord(
        n_intervals=n_intervals,
        migrations=[],
        pms_used_series=np.ones(n_intervals, dtype=np.int64),
        migrations_per_interval=np.zeros(n_intervals, dtype=np.int64),
        violation_counts=np.zeros(1, dtype=np.int64),
        presence_counts=np.ones(1, dtype=np.int64),
        vm_down_counts=down,
        vm_degraded_counts=degraded,
    )


class TestNines:
    def test_standard_values(self):
        assert nines(0.99) == pytest.approx(2.0)
        assert nines(0.999) == pytest.approx(3.0)

    def test_perfect_availability_capped(self):
        assert nines(1.0) == MAX_NINES

    def test_zero_availability(self):
        assert nines(0.0) == pytest.approx(0.0)

    def test_validates_range(self):
        with pytest.raises(ValueError):
            nines(1.5)
        with pytest.raises(ValueError):
            nines(-0.1)


class TestMTTR:
    def test_mean(self):
        assert mean_time_to_repair([2, 4, 6]) == pytest.approx(4.0)

    def test_empty_is_nan(self):
        assert math.isnan(mean_time_to_repair([]))


class TestBlastRadius:
    def test_empty(self):
        stats = blast_radius_stats([])
        assert stats["events"] == 0.0
        assert stats["max"] == 0.0

    def test_distribution(self):
        stats = blast_radius_stats([1, 3, 8])
        assert stats["events"] == 3.0
        assert stats["mean"] == pytest.approx(4.0)
        assert stats["max"] == 8.0
        assert stats["total_vms_hit"] == 12.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            blast_radius_stats([-1])


class TestAvailabilityReport:
    def test_without_vm_tracking(self):
        report = availability_report(make_record())
        assert report["mean_availability"] == 1.0
        assert report["mean_nines"] == MAX_NINES

    def test_per_vm_availability(self):
        # VM 0 down 10 of 100 intervals, VM 1 always up.
        report = availability_report(make_record(down=[10, 0]))
        assert report["mean_availability"] == pytest.approx(0.95)
        assert report["min_availability"] == pytest.approx(0.90)
        assert report["worst_nines"] == pytest.approx(1.0)

    def test_degraded_counts_as_available(self):
        report = availability_report(
            make_record(down=[0, 0], degraded=[50, 0]))
        assert report["mean_availability"] == 1.0
        assert report["degraded_fraction"] == pytest.approx(0.25)

    def test_failure_record_section(self):
        failures = FailureRecord(failures=3, domain_failures=1,
                                 blast_radii=[2, 5], repair_durations=[4, 8])
        report = availability_report(make_record(down=[1]), failures)
        assert report["failures"] == 3.0
        assert report["domain_failures"] == 1.0
        assert report["mttr_intervals"] == pytest.approx(6.0)
        assert report["blast_max"] == 5.0
        assert report["blast_total_vms_hit"] == 7.0
