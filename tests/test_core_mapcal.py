"""Tests for repro.core.mapcal — Algorithm 1."""

import numpy as np
import pytest

from repro.core.mapcal import BlockMapping, mapcal, mapcal_table
from repro.markov.onoff import OnOffChain
from repro.queueing.geom_geom_k import FiniteSourceGeomGeomK

P_ON, P_OFF, RHO = 0.01, 0.09, 0.01


class TestMapcal:
    def test_k_zero(self):
        assert mapcal(0, P_ON, P_OFF, RHO) == 0

    def test_k_one_low_on_probability(self):
        # One VM is ON 10% of the time > rho=1%, so it needs its own block.
        assert mapcal(1, P_ON, P_OFF, RHO) == 1

    def test_k_one_loose_rho(self):
        # If rho exceeds the ON fraction, no block is needed.
        assert mapcal(1, P_ON, P_OFF, 0.2) == 0

    def test_returned_k_satisfies_bound(self):
        for k in (2, 5, 9, 16):
            K = mapcal(k, P_ON, P_OFF, RHO)
            model = FiniteSourceGeomGeomK(k, P_ON, P_OFF)
            assert model.overflow_probability(K) <= RHO + 1e-12

    def test_returned_k_is_minimal(self):
        for k in (2, 5, 9, 16):
            K = mapcal(k, P_ON, P_OFF, RHO)
            if K > 0:
                model = FiniteSourceGeomGeomK(k, P_ON, P_OFF)
                assert model.overflow_probability(K - 1) > RHO - 1e-12

    def test_monotone_in_k(self):
        Ks = [mapcal(k, P_ON, P_OFF, RHO) for k in range(1, 25)]
        assert all(a <= b for a, b in zip(Ks, Ks[1:]))

    def test_sublinear_growth(self):
        # Statistical multiplexing: K(16) is far below 16.
        assert mapcal(16, P_ON, P_OFF, RHO) <= 6

    def test_monotone_in_rho(self):
        Ks = [mapcal(12, P_ON, P_OFF, rho) for rho in (0.5, 0.1, 0.01, 0.001)]
        assert Ks == sorted(Ks)

    def test_never_exceeds_k(self):
        for k in range(1, 20):
            assert 0 <= mapcal(k, P_ON, P_OFF, 1e-12) <= k

    def test_higher_on_fraction_needs_more_blocks(self):
        low = mapcal(16, 0.01, 0.09, RHO)   # 10% ON
        high = mapcal(16, 0.05, 0.05, RHO)  # 50% ON
        assert high > low

    @pytest.mark.parametrize("method", ["linear", "power", "eig"])
    def test_solver_methods_agree(self, method):
        assert mapcal(10, P_ON, P_OFF, RHO, method=method) == mapcal(
            10, P_ON, P_OFF, RHO, method="linear"
        )

    def test_agrees_with_simulation(self):
        """The reserved K truly bounds the simulated violation fraction."""
        k = 8
        K = mapcal(k, P_ON, P_OFF, RHO)
        chain = OnOffChain(P_ON, P_OFF)
        states = chain.simulate_ensemble(k, 300_000, start_stationary=True, seed=3)
        busy = states.sum(axis=0)
        violation_fraction = float((busy > K).mean())
        # Statistical tolerance: a couple of standard errors above rho.
        assert violation_fraction <= RHO * 1.5

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            mapcal(-1, P_ON, P_OFF, RHO)
        with pytest.raises(ValueError):
            mapcal(3, P_ON, P_OFF, 1.5)


class TestMapcalTable:
    def test_table_matches_pointwise(self):
        mapping = mapcal_table(10, P_ON, P_OFF, RHO)
        for k in range(11):
            assert mapping.blocks_for(k) == mapcal(k, P_ON, P_OFF, RHO)

    def test_zero_entry(self):
        assert mapcal_table(4, P_ON, P_OFF, RHO).blocks_for(0) == 0

    def test_getitem(self):
        mapping = mapcal_table(6, P_ON, P_OFF, RHO)
        assert mapping[4] == mapping.blocks_for(4)

    def test_d_property(self):
        assert mapcal_table(7, P_ON, P_OFF, RHO).d == 7

    def test_out_of_range_k(self):
        mapping = mapcal_table(5, P_ON, P_OFF, RHO)
        with pytest.raises(ValueError):
            mapping.blocks_for(6)
        with pytest.raises(ValueError):
            mapping.blocks_for(-1)

    def test_table_immutable(self):
        mapping = mapcal_table(4, P_ON, P_OFF, RHO)
        with pytest.raises(ValueError):
            mapping.table[2] = 99

    def test_blockmapping_from_array(self):
        m = BlockMapping(p_on=0.1, p_off=0.2, rho=0.05,
                         table=np.array([0, 1, 1, 2]))
        assert m.d == 3 and m[3] == 2

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            mapcal_table(0, P_ON, P_OFF, RHO)
