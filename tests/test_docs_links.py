"""Docs link checker: every relative link and anchor must resolve.

Scans README.md plus every markdown file under docs/ for markdown links.
External links (http/https/mailto) are ignored; everything else must point
at an existing file, and a ``#fragment`` must match a GitHub-style anchor
generated from the target document's headings.  The CI ``docs-links`` step
runs exactly this module, so a renamed heading or moved file fails the
build with the offending link.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOCS = sorted(
    [REPO / "README.md"]
    + list((REPO / "docs").glob("*.md"))
    + [p for p in (REPO / "EXPERIMENTS.md",) if p.exists()]
)

# [text](target) — excluding images' src handled identically via ![...]
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*)$")


def github_anchor(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->dashes."""
    text = heading.strip()
    # inline code/emphasis markers contribute their content only
    text = text.replace("`", "").replace("*", "")
    # markdown links in headings contribute their text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    """All heading anchors of a markdown file, with duplicate suffixes."""
    seen: dict[str, int] = {}
    anchors: set[str] = set()
    in_code = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        m = HEADING.match(line)
        if not m:
            continue
        base = github_anchor(m.group(2))
        n = seen.get(base, 0)
        anchors.add(base if n == 0 else f"{base}-{n}")
        seen[base] = n + 1
    return anchors


def iter_links(path: Path):
    """Yield (lineno, target) for every non-external link in the file."""
    in_code = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if in_code:
            continue
        for m in LINK.finditer(line):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            yield lineno, target


def collect_broken(path: Path) -> list[str]:
    problems = []
    for lineno, target in iter_links(path):
        file_part, _, fragment = target.partition("#")
        dest = path if not file_part else (path.parent / file_part).resolve()
        if not dest.exists():
            problems.append(
                f"{path.relative_to(REPO)}:{lineno}: broken link "
                f"target {target!r} (no such file)")
            continue
        if fragment and dest.suffix == ".md":
            if fragment not in anchors_of(dest):
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: broken anchor "
                    f"{target!r} (no heading with that slug in "
                    f"{dest.relative_to(REPO)})")
    return problems


def test_doc_set_is_substantial():
    """The checker must actually be looking at the documentation set."""
    names = {p.name for p in DOCS}
    assert "README.md" in names
    assert "THEORY.md" in names
    assert "SERVING.md" in names
    assert len(DOCS) >= 8


@pytest.mark.parametrize("path", DOCS, ids=lambda p: str(p.relative_to(REPO)))
def test_relative_links_and_anchors_resolve(path):
    problems = collect_broken(path)
    assert not problems, "\n".join(problems)


def test_checker_detects_broken_anchor(tmp_path):
    """Self-test: the slug generator must match GitHub's on real cases."""
    doc = tmp_path / "x.md"
    doc.write_text("# Hello, World!\n## `code` & symbols\n## Hello, World!\n")
    anchors = anchors_of(doc)
    assert "hello-world" in anchors
    assert "code--symbols" in anchors
    assert "hello-world-1" in anchors  # duplicate heading gets a suffix
