"""Tests for repro.placement.sbp — stochastic bin packing baseline."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.core.types import PMSpec, VMSpec
from repro.placement.base import InsufficientCapacityError
from repro.placement.ffd import ffd_by_base, ffd_by_peak
from repro.placement.sbp import StochasticBinPacker
from repro.placement.validation import check_placement_complete

P_ON, P_OFF = 0.01, 0.09  # q = 0.1


def vm(base, extra):
    return VMSpec(P_ON, P_OFF, base, extra)


class TestEffectiveSize:
    def test_mean_var_formulas(self):
        sbp = StochasticBinPacker(epsilon=0.01)
        mu, var = sbp.effective_mean_var(vm(10.0, 20.0))
        q = 0.1
        assert mu == pytest.approx(10.0 + q * 20.0)
        assert var == pytest.approx(q * (1 - q) * 400.0)

    def test_no_spike_no_variance(self):
        sbp = StochasticBinPacker()
        mu, var = sbp.effective_mean_var(vm(10.0, 0.0))
        assert (mu, var) == (10.0, 0.0)

    def test_z_score(self):
        sbp = StochasticBinPacker(epsilon=0.05)
        assert sbp.z_score == pytest.approx(float(norm.ppf(0.95)))


class TestPlacement:
    def test_between_rb_and_rp(self, medium_instance):
        """SBP packs tighter than peak provisioning, looser than base."""
        vms, pms = medium_instance
        sbp = StochasticBinPacker(epsilon=0.01, max_vms_per_pm=16).place(vms, pms)
        rp = ffd_by_peak(max_vms_per_pm=16).place(vms, pms)
        rb = ffd_by_base(max_vms_per_pm=16).place(vms, pms)
        assert rb.n_used_pms <= sbp.n_used_pms <= rp.n_used_pms

    def test_complete(self, medium_instance):
        vms, pms = medium_instance
        placement = StochasticBinPacker(max_vms_per_pm=16).place(vms, pms)
        check_placement_complete(placement)

    def test_tighter_epsilon_uses_more_pms(self, medium_instance):
        vms, pms = medium_instance
        loose = StochasticBinPacker(epsilon=0.2, max_vms_per_pm=16).place(vms, pms)
        tight = StochasticBinPacker(epsilon=0.001, max_vms_per_pm=16).place(vms, pms)
        assert tight.n_used_pms >= loose.n_used_pms

    def test_aggregate_gaussian_bound_respected(self, medium_instance):
        vms, pms = medium_instance
        sbp = StochasticBinPacker(epsilon=0.01, max_vms_per_pm=16)
        placement = sbp.place(vms, pms)
        stats = np.array([sbp.effective_mean_var(v) for v in vms])
        for pm_idx in placement.used_pms():
            hosted = placement.vms_on(int(pm_idx))
            mu = stats[hosted, 0].sum()
            sd = np.sqrt(stats[hosted, 1].sum())
            assert mu + sbp.z_score * sd <= pms[int(pm_idx)].capacity + 1e-6

    def test_lone_vm_peak_must_fit(self):
        # Even if the effective size fits, a VM whose peak exceeds every
        # capacity is rejected (physical impossibility).
        big = vm(1.0, 200.0)
        with pytest.raises(InsufficientCapacityError):
            StochasticBinPacker(epsilon=0.4).place([big], [PMSpec(100.0)])

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            StochasticBinPacker(epsilon=0.0)
        with pytest.raises(ValueError):
            StochasticBinPacker(epsilon=1.0)

    def test_empty(self):
        placement = StochasticBinPacker().place([], [PMSpec(10.0)])
        assert placement.n_vms == 0
