"""MapCalCache: LRU semantics, disk persistence, corruption tolerance."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.mapcal import mapcal, mapcal_table
from repro.perf.cache import (
    CACHE_VERSION,
    MapCalCache,
    cache_stats,
    configure_cache,
    fresh_cache,
    get_cache,
    key_digest,
)
from repro.telemetry import Telemetry, tracing


def key(i: int) -> tuple:
    return ("mapcal", i, 0.01, 0.09, 0.01, "linear")


class TestLRU:
    def test_miss_then_hit(self):
        cache = MapCalCache(maxsize=4)
        calls = []

        def compute():
            calls.append(1)
            return 7

        assert cache.get_or_compute(key(1), compute) == 7
        assert cache.get_or_compute(key(1), compute) == 7
        assert calls == [1]
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_eviction_is_least_recently_used(self):
        cache = MapCalCache(maxsize=2)
        cache.get_or_compute(key(1), lambda: 1)
        cache.get_or_compute(key(2), lambda: 2)
        cache.get_or_compute(key(1), lambda: 1)  # touch 1: 2 is now LRU
        cache.get_or_compute(key(3), lambda: 3)  # evicts 2
        assert key(1) in cache and key(3) in cache
        assert key(2) not in cache
        assert len(cache) == 2

    def test_maxsize_validated(self):
        with pytest.raises(ValueError, match="maxsize"):
            MapCalCache(maxsize=0)

    def test_clear_resets_counters(self):
        cache = MapCalCache()
        cache.get_or_compute(key(1), lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {
            "hits": 0, "misses": 0, "disk_hits": 0, "corrupt": 0,
            "hit_rate": 0.0, "entries": 0,
        }


class TestDiskStore:
    def test_round_trip_across_instances(self, tmp_path):
        first = MapCalCache(disk_dir=tmp_path)
        first.get_or_compute(key(5), lambda: 11)
        second = MapCalCache(disk_dir=tmp_path)
        value = second.get_or_compute(
            key(5), lambda: pytest.fail("should hit disk"))
        assert value == 11
        assert second.disk_hits == 1 and second.hits == 1

    def test_file_is_content_addressed_json(self, tmp_path):
        cache = MapCalCache(disk_dir=tmp_path)
        cache.get_or_compute(key(5), lambda: 11)
        path = tmp_path / f"mapcal-{key_digest(key(5))}.json"
        payload = json.loads(path.read_text())
        assert payload["version"] == CACHE_VERSION
        assert payload["value"] == 11

    def test_corrupt_file_recomputes_not_crashes(self, tmp_path):
        cache = MapCalCache(disk_dir=tmp_path)
        cache.get_or_compute(key(5), lambda: 11)
        path = tmp_path / f"mapcal-{key_digest(key(5))}.json"
        for garbage in ("", "{truncated", '{"version": 1}', "[1,2,3]"):
            path.write_text(garbage)
            cold = MapCalCache(disk_dir=tmp_path)
            assert cold.get_or_compute(key(5), lambda: 11) == 11
            assert cold.misses == 1 and cold.disk_hits == 0

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = MapCalCache(disk_dir=tmp_path)
        cache.get_or_compute(key(5), lambda: 11)
        path = tmp_path / f"mapcal-{key_digest(key(5))}.json"
        payload = json.loads(path.read_text())
        payload["key"][1] = 999  # simulated hash collision
        path.write_text(json.dumps(payload))
        cold = MapCalCache(disk_dir=tmp_path)
        assert cold.get_or_compute(key(5), lambda: 42) == 42

    def test_corrupt_file_is_quarantined(self, tmp_path, caplog):
        cache = MapCalCache(disk_dir=tmp_path)
        cache.get_or_compute(key(5), lambda: 11)
        path = tmp_path / f"mapcal-{key_digest(key(5))}.json"
        path.write_text("{truncated")
        cold = MapCalCache(disk_dir=tmp_path)
        with caplog.at_level("WARNING", logger="repro.perf.cache"):
            assert cold.get_or_compute(key(5), lambda: 11) == 11
        assert cold.corrupt == 1
        assert cold.stats()["corrupt"] == 1
        # the damaged bytes are preserved for post-mortem...
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.read_text() == "{truncated"
        # ...and the recompute rewrote a healthy entry in its place
        assert json.loads(path.read_text())["value"] == 11
        assert any("quarantined" in r.message for r in caplog.records)

    def test_corrupt_warnings_are_rate_limited(self, tmp_path, caplog):
        cache = MapCalCache(disk_dir=tmp_path)
        paths = []
        for i in range(5):
            cache.get_or_compute(key(i), lambda: i)
            paths.append(tmp_path / f"mapcal-{key_digest(key(i))}.json")
        for p in paths:
            p.write_text("garbage")
        cold = MapCalCache(disk_dir=tmp_path)
        with caplog.at_level("WARNING", logger="repro.perf.cache"):
            for i in range(5):
                cold.get_or_compute(key(i), lambda: i)
        assert cold.corrupt == 5
        warned = [r for r in caplog.records if "quarantined" in r.message]
        assert len(warned) == 1  # one line, not five

    def test_missing_file_is_silent_plain_miss(self, tmp_path, caplog):
        cache = MapCalCache(disk_dir=tmp_path)
        with caplog.at_level("WARNING", logger="repro.perf.cache"):
            assert cache.get_or_compute(key(5), lambda: 11) == 11
        assert cache.corrupt == 0
        assert not caplog.records

    def test_corrupt_counter_reaches_metrics(self, tmp_path):
        cache = MapCalCache(disk_dir=tmp_path)
        cache.get_or_compute(key(5), lambda: 11)
        path = tmp_path / f"mapcal-{key_digest(key(5))}.json"
        path.write_text("nope")
        tel = Telemetry()
        with tracing(tel):
            MapCalCache(disk_dir=tmp_path).get_or_compute(key(5), lambda: 11)
        metrics = json.loads(tel.metrics.to_json())
        assert metrics["mapcal_cache_corrupt_total"]["value"] == 1

    def test_clear_disk_removes_entries(self, tmp_path):
        cache = MapCalCache(disk_dir=tmp_path)
        cache.get_or_compute(key(5), lambda: 11)
        cache.clear(disk=True)
        assert not list(tmp_path.glob("mapcal-*.json"))

    def test_unwritable_dir_degrades_to_memory_only(self, tmp_path):
        blocked = tmp_path / "file-not-dir"
        blocked.write_text("")
        cache = MapCalCache(disk_dir=blocked / "sub")
        assert cache.get_or_compute(key(5), lambda: 11) == 11
        assert cache.get_or_compute(key(5), lambda: 11) == 11
        assert cache.hits == 1


class TestDefaultCache:
    def test_fresh_cache_isolates_and_restores(self):
        outer = get_cache()
        with fresh_cache() as inner:
            assert get_cache() is inner
            assert get_cache() is not outer
            mapcal(8, 0.01, 0.09, 0.01)
            assert inner.misses >= 1
        assert get_cache() is outer

    def test_configure_cache_replaces_default(self, tmp_path):
        with fresh_cache():  # shield the process-wide default
            replaced = configure_cache(maxsize=8, disk_dir=tmp_path)
            assert get_cache() is replaced
            assert cache_stats()["entries"] == 0

    def test_env_var_enables_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        import repro.perf.cache as mod
        monkeypatch.setattr(mod, "_default_cache", None)
        assert get_cache().disk_dir == tmp_path
        monkeypatch.setenv("REPRO_CACHE_DIR", "1")
        monkeypatch.setattr(mod, "_default_cache", None)
        assert get_cache().disk_dir == mod.Path(mod.DEFAULT_CACHE_DIRNAME)
        # restore: next get_cache() in this process must rebuild cleanly
        monkeypatch.delenv("REPRO_CACHE_DIR")
        monkeypatch.setattr(mod, "_default_cache", None)


class TestIntegration:
    def test_mapcal_table_is_one_solve_per_k(self):
        with fresh_cache() as cache:
            mapcal_table(50, 0.01, 0.09, 0.01)
            assert cache.misses == 50 and cache.hits == 0
            mapcal_table(50, 0.01, 0.09, 0.01)
            assert cache.misses == 50 and cache.hits == 50
            assert cache.hit_rate == pytest.approx(0.5)

    def test_mapcal_matches_uncached_value(self):
        with fresh_cache():
            cold = mapcal(12, 0.02, 0.08, 0.01)
            warm = mapcal(12, 0.02, 0.08, 0.01)
        assert cold == warm

    def test_counters_reach_metrics_registry(self):
        with fresh_cache(), tracing(Telemetry()) as tel:
            mapcal(8, 0.01, 0.09, 0.01)
            mapcal(8, 0.01, 0.09, 0.01)
        rendered = tel.metrics.to_json()
        assert "mapcal_cache_misses_total" in rendered
        assert "mapcal_cache_hits_total" in rendered

    def test_validation_still_precedes_cache(self):
        with fresh_cache() as cache:
            with pytest.raises(ValueError):
                mapcal(-1, 0.01, 0.09, 0.01)
            with pytest.raises(ValueError):
                mapcal(8, 0.01, 0.09, 1.5)
            assert cache.misses == 0


def test_key_digest_stable_and_distinct():
    assert key_digest(key(1)) == key_digest(key(1))
    assert key_digest(key(1)) != key_digest(key(2))
    assert len(key_digest(key(1))) == 64
    assert os.path.basename(f"mapcal-{key_digest(key(1))}.json")
