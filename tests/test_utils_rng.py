"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_children


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_generator(1).random(5), as_generator(2).random(5))

    def test_generator_passthrough_shares_state(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        a = as_generator(ss).random(3)
        b = as_generator(np.random.SeedSequence(7)).random(3)
        np.testing.assert_array_equal(a, b)


class TestSpawnChildren:
    def test_count(self):
        assert len(spawn_children(0, 7)) == 7

    def test_zero_children(self):
        assert spawn_children(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError, match=">= 0"):
            spawn_children(0, -1)

    def test_children_are_independent_streams(self):
        kids = spawn_children(9, 3)
        draws = [k.random(4) for k in kids]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_reproducible_from_int_seed(self):
        a = [g.random(3) for g in spawn_children(5, 2)]
        b = [g.random(3) for g in spawn_children(5, 2)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_spawn_from_generator(self):
        g = np.random.default_rng(1)
        kids = spawn_children(g, 2)
        assert len(kids) == 2
        assert all(isinstance(k, np.random.Generator) for k in kids)
