"""End-to-end telemetry: determinism, replay consistency, CLI, overhead."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.types import PMSpec, VMSpec
from repro.experiments.runner import main
from repro.placement.ffd import ffd_by_base
from repro.simulation.scenario import Scenario
from repro.telemetry import (
    JSONLSink,
    NullSink,
    RingBufferSink,
    Telemetry,
    count_by_kind,
    get_telemetry,
    read_events,
    replay_summary,
    tracing,
)


def _fleet(n_vms: int = 30, n_pms: int = 20, seed: int = 5):
    rng = np.random.default_rng(seed)
    vms = [VMSpec(0.3, 0.4, r_base=float(rng.uniform(5, 20)),
                  r_extra=float(rng.uniform(5, 20))) for _ in range(n_vms)]
    pms = [PMSpec(capacity=60.0) for _ in range(n_pms)]
    return vms, pms


def _run(telemetry: Telemetry | None, *, seed: int = 11):
    vms, pms = _fleet()
    return Scenario(
        vms, pms, placer=ffd_by_base(), failures=True,
        migration_failure_probability=0.3, telemetry=telemetry,
    ).run(n_intervals=50, seed=seed)


class TestDeterminism:
    def test_same_seed_same_event_stream(self):
        streams = []
        for _ in range(2):
            sink = RingBufferSink()
            _run(Telemetry(sink))
            streams.append([e.to_dict() for e in sink.events])
        assert streams[0] == streams[1]
        assert streams[0]  # non-trivial

    def test_different_seed_different_stream(self):
        sinks = [RingBufferSink(), RingBufferSink()]
        _run(Telemetry(sinks[0]), seed=11)
        _run(Telemetry(sinks[1]), seed=12)
        assert ([e.to_dict() for e in sinks[0].events]
                != [e.to_dict() for e in sinks[1].events])


class TestNullSinkOverhead:
    def test_null_sink_emits_nothing(self):
        tel = Telemetry(NullSink())
        report = _run(tel)
        assert tel.events.emitted == 0
        # metrics and spans still flow: that's the cheap always-on plane
        assert tel.metrics.counter("migration_attempts_total").value > 0
        assert not tel.profiler.empty
        assert report.total_migrations > 0

    def test_untraced_run_matches_traced_run(self):
        untraced = _run(None)
        traced = _run(Telemetry(RingBufferSink()))
        assert untraced.total_migrations == traced.total_migrations
        assert untraced.final_pms_used == traced.final_pms_used
        assert np.array_equal(untraced.record.violation_counts,
                              traced.record.violation_counts)


class TestReplayConsistency:
    def test_jsonl_round_trip_recomputes_the_report(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tel = Telemetry(JSONLSink(path))
        report = _run(tel)
        tel.close()

        events = read_events(path)
        assert len(events) == tel.events.emitted
        counts = replay_summary(events)
        assert counts["migrations"] == report.total_migrations
        assert (counts["failed_migrations"]
                == report.record.failed_migration_attempts)
        assert counts["crashes"] == report.failures.failures
        assert (counts["capacity_violations"]
                == int(report.record.violation_counts.sum()))
        assert counts["vms_placed"] == 30

    def test_count_by_kind(self):
        sink = RingBufferSink()
        _run(Telemetry(sink))
        kinds = count_by_kind(sink.events)
        assert kinds["vm_placed"] == 30
        assert sum(kinds.values()) == len(sink.events)


class TestScenarioSurface:
    def test_summary_includes_digest_when_traced(self):
        tel = Telemetry(RingBufferSink())
        report = _run(tel)
        assert report.telemetry is tel
        assert "telemetry:" in report.summary()
        assert "events emitted" in report.summary()

    def test_summary_silent_when_untraced(self):
        report = _run(None)
        assert report.telemetry is None
        assert "telemetry:" not in report.summary()

    def test_ambient_tracing_reaches_scenario(self):
        sink = RingBufferSink()
        with tracing(Telemetry(sink)) as tel:
            _run(None)  # never sees the handle explicitly
        assert tel.events.emitted == len(sink.events) > 0
        assert get_telemetry() is None  # context restored


class TestTraceCLI:
    def test_trace_fig10_writes_replayable_jsonl(self, tmp_path, capsys):
        jsonl = tmp_path / "fig10.jsonl"
        metrics = tmp_path / "metrics.json"
        rc = main(["trace", "fig10", "--quiet",
                   "--jsonl", str(jsonl), "--metrics-json", str(metrics)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert "span" in out
        events = read_events(jsonl)
        assert events, "simulated experiment should emit events"
        assert metrics.exists()
        # the stream is internally consistent: every completed migration
        # has a matching start
        kinds = count_by_kind(events)
        assert kinds["migration_completed"] <= kinds["migration_started"]

    def test_trace_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["trace", "nope"])
