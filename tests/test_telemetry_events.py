"""Event model: typing, registry, serialization, bus semantics."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    EVENT_TYPES,
    PRE_RUN,
    AdmissionRejected,
    AlertFired,
    AlertResolved,
    BenchJobFinished,
    BenchJobInterrupted,
    BenchJobQuarantined,
    BenchJobRetried,
    BenchJobStarted,
    BenchRunStarted,
    CapacityViolation,
    CheckpointWritten,
    DegradationApplied,
    DriftDetected,
    EventBus,
    IntervalSnapshot,
    MigrationCompleted,
    MigrationDecided,
    MigrationFailed,
    MigrationStarted,
    NullSink,
    PlacementDecided,
    PMCrashed,
    PMRepaired,
    PoolScaled,
    ReconsolidationDecided,
    ReconsolidationTriggered,
    RefitCompleted,
    RefitRejected,
    ReplanCommitted,
    ReplanDecided,
    ReplanRolledBack,
    ReplanStarted,
    PoisonQuarantined,
    RingBufferSink,
    RunResumed,
    ServiceRestored,
    ServiceSnapshot,
    ServingSnapshot,
    SolverDegraded,
    TargetBlacklisted,
    TelemetryEvent,
    VMPlaced,
    VMStranded,
    WALReplayed,
    event_from_dict,
)

SAMPLES = [
    VMPlaced(time=PRE_RUN, vm_id=3, pm_id=1, placer="QUEUE"),
    MigrationStarted(time=0, vm_id=1, source_pm=0, target_pm=2),
    MigrationCompleted(time=0, vm_id=1, source_pm=0, target_pm=2),
    MigrationFailed(time=1, vm_id=1, source_pm=0, target_pm=2,
                    consecutive_failures=2, backoff_intervals=4),
    TargetBlacklisted(time=2, pm_id=2, until_time=7),
    PMCrashed(time=3, pm_id=0, blast_radius=4, domain=1),
    PMRepaired(time=9, pm_id=0, downtime_intervals=6),
    VMStranded(time=3, vm_id=5, pm_id=0),
    DegradationApplied(time=3, vm_id=5, pm_id=1),
    ServingSnapshot(time=4, arrivals=310, completions=280, slow=12,
                    lost_queue=5, lost_tier=3, dlq=1, backlog=40,
                    tier_backlog=120, p50=2.0, p95=6.0, p99=9.0),
    PoisonQuarantined(time=5, vm_id=2, key="req-77", attempts=3,
                      poison=True),
    ServiceRestored(time=8, vm_id=5, pm_id=1, reason="headroom"),
    CapacityViolation(time=4, pm_id=1, load=120.0, capacity=100.0),
    ReconsolidationTriggered(time=10, planned_moves=3, executed_moves=2),
    IntervalSnapshot(time=5, pm_ids=(0, 1), loads=(50.0, 60.0),
                     capacities=(100.0, 100.0), hosted=(4, 4),
                     on_vms=(1, 2), expected_on=(0.4, 0.4),
                     expected_var=(7.6, 7.6), migrations=1, overloaded=0),
    AlertFired(time=6, rule="cvr_burn", metric="cvr", severity="page",
               burn_fast=15.0, burn_slow=2.5, budget=0.01),
    AlertResolved(time=12, rule="cvr_burn", active_intervals=6),
    DriftDetected(time=30, pm_id=2, statistic=12.5, threshold=10.83,
                  observed_on_fraction=0.2, expected_on_fraction=0.1,
                  windows=2),
    BenchRunStarted(time=0, pattern="fig*", base_seed=2013,
                    jobs=("fig6_cvr", "fig9"), parallel=2,
                    chaos="kill-worker:p=0.2"),
    BenchJobStarted(time=0, job="fig9", seed=2013, worker_count=4, attempt=2),
    BenchJobFinished(time=1, job="fig9", seconds=3.5, ok=True, error="",
                     rows_sha256="ab" * 32, seed=2013),
    BenchJobRetried(time=1, job="fig9", attempt=2, error="worker died",
                    backoff_seconds=0.5),
    BenchJobQuarantined(time=2, job="fig9", attempts=3, error="poison"),
    BenchJobInterrupted(time=2, job="fig9", attempt=1),
    RunResumed(time=0, run_dir="out/bench", completed=3, remaining=2,
               skipped_journal_lines=1),
    CheckpointWritten(time=50, path="ck.json", sha256="cd" * 32,
                      size_bytes=4096),
    RefitCompleted(time=90, n_vms=48, converged=40, fallback=8,
                   fingerprint="ab12cd34ef56", cause="drift"),
    RefitRejected(time=95, fingerprint="ab12cd34ef56",
                  reason="blacklisted"),
    ReplanStarted(time=92, cause="slo_burn", fingerprint="ab12cd34ef56",
                  checkpoint="ckpt-000000-t92.json", baseline_cvr=0.01,
                  deadline=112, budget=24),
    ReplanCommitted(time=112, fingerprint="ab12cd34ef56",
                    baseline_cvr=0.01, post_cvr=0.005, migrations=12),
    ReplanRolledBack(time=92, fingerprint="ab12cd34ef56",
                     baseline_cvr=0.01, post_cvr=0.2, restored_time=92,
                     parity=True),
    PlacementDecided(time=PRE_RUN, decision_id=0, vm_id=3, placer="QUEUE",
                     chosen_pm=1, context="batch", p_on=0.2, p_off=0.4,
                     table_fingerprint="7a74bbf2cfec", cache_hit=True,
                     score_kind="reservation_headroom",
                     cand_pms=(0, 1, 2), cand_scores=(-1.5, 3.0, 3.0),
                     cand_verdicts=("cvr_threshold", "chosen", "feasible"),
                     dropped_candidates=4, total_pms=7),
    MigrationDecided(time=16, decision_id=5, vm_id=3, source_pm=1,
                     chosen_pm=2, policy="StandardPolicy", cause="overload",
                     cand_pms=(0, 1, 2),
                     cand_scores=(-56.7, 0.0, 12.4),
                     cand_verdicts=("capacity", "source_pm", "chosen"),
                     dropped_candidates=0, total_pms=3),
    ReconsolidationDecided(time=50, decision_id=9, cause="requested",
                           placer="QUEUE", planned_moves=5, executed_moves=3,
                           move_vms=(1, 4, 7), move_sources=(0, 2, 2),
                           move_targets=(3, 3, 0), dropped_moves=0),
    ReplanDecided(time=92, decision_id=10, cause="drift",
                  fingerprint="ab12cd34ef56", drift_detections=3,
                  drift_pms=(1, 4), alert_streak=0,
                  active_alerts=("cvr_burn",), baseline_cvr=0.01,
                  budget=24, deadline=112),
    AdmissionRejected(time=40, request_key="a-5-2", vm_class="standard",
                      reason="fleet_full", inbox_depth=3, active_pms=8,
                      free_slots=0, max_headroom=0.0),
    WALReplayed(time=0, path="wal.jsonl", checkpoint_seq=128, records=37,
                truncated_tail=1, fingerprint="946937cf72a028df"),
    PoolScaled(time=41, action="down_prepare", pm_id=6, active_pms=7,
               draining_pms=1, cause="hysteresis"),
    SolverDegraded(time=42, state="open", failures=3, staleness=5,
                   error="injected solver stall"),
    ServiceSnapshot(time=43, requests=200, admitted=150, shed=50,
                    departed=118, active_pms=16, draining_pms=0,
                    retired_pms=0, hosted_vms=32, used_pms=16,
                    wal_lag=62, staleness=0),
]


class TestEventModel:
    def test_every_registered_kind_round_trips(self):
        assert {e.kind for e in SAMPLES} == set(EVENT_TYPES)
        for event in SAMPLES:
            restored = event_from_dict(event.to_dict())
            assert restored == event
            assert type(restored) is type(event)

    def test_to_dict_carries_kind(self):
        e = VMPlaced(time=PRE_RUN, vm_id=3, pm_id=1, placer="FFD")
        d = e.to_dict()
        assert d["kind"] == "vm_placed"
        assert d["vm_id"] == 3 and d["pm_id"] == 1 and d["time"] == PRE_RUN

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"kind": "no_such_event", "time": 0})

    def test_events_are_frozen(self):
        e = PMCrashed(time=4, pm_id=2)
        with pytest.raises(AttributeError):
            e.pm_id = 9

    def test_registry_covers_paper_lifecycle(self):
        # The kinds the replay layer depends on must stay registered.
        for kind in ("vm_placed", "migration_started", "migration_completed",
                     "migration_failed", "pm_crashed", "pm_repaired",
                     "capacity_violation", "degradation_applied",
                     "vm_stranded", "service_restored", "target_blacklisted",
                     "reconsolidation_triggered"):
            assert kind in EVENT_TYPES
            assert issubclass(EVENT_TYPES[kind], TelemetryEvent)


class TestEventBus:
    def test_disabled_without_sinks(self):
        bus = EventBus([])
        assert not bus.enabled
        bus.emit(PMCrashed(time=0, pm_id=0))
        assert bus.emitted == 0

    def test_null_sink_counts_as_absence(self):
        bus = EventBus([NullSink()])
        assert not bus.enabled
        bus.emit(PMCrashed(time=0, pm_id=0))
        assert bus.emitted == 0

    def test_fan_out_to_every_sink(self):
        a, b = RingBufferSink(), RingBufferSink()
        bus = EventBus([a, b])
        assert bus.enabled
        bus.emit(MigrationCompleted(time=1, vm_id=0, source_pm=0, target_pm=1))
        assert len(a) == len(b) == 1
        assert bus.emitted == 1

    def test_ring_buffer_capacity(self):
        sink = RingBufferSink(capacity=3)
        for t in range(10):
            sink.emit(PMCrashed(time=t, pm_id=0))
        assert len(sink) == 3
        assert [e.time for e in sink.events] == [7, 8, 9]

    def test_migration_failed_carries_backoff_facts(self):
        e = MigrationFailed(time=2, vm_id=1, source_pm=0, target_pm=3,
                            consecutive_failures=2, backoff_intervals=4)
        d = e.to_dict()
        assert d["consecutive_failures"] == 2
        assert d["backoff_intervals"] == 4


class TestRingOverflowAccounting:
    def test_eviction_counted_and_reported(self):
        drops = []
        sink = RingBufferSink(capacity=3, on_drop=drops.append)
        for t in range(10):
            sink.emit(PMCrashed(time=t, pm_id=0))
        assert sink.dropped == 7
        assert sum(drops) == 7

    def test_unbounded_sink_never_drops(self):
        sink = RingBufferSink()
        for t in range(100):
            sink.emit(PMCrashed(time=t, pm_id=0))
        assert sink.dropped == 0

    def test_telemetry_wires_spans_dropped_total(self):
        from repro.telemetry import Telemetry

        tel = Telemetry(RingBufferSink(capacity=2))
        for t in range(5):
            tel.emit(PMCrashed(time=t, pm_id=0))
        counter = tel.metrics.counter("spans_dropped_total")
        assert counter.value == 3
        assert "spans_dropped_total" in tel.digest()

    def test_explicit_on_drop_not_overridden(self):
        from repro.telemetry import Telemetry

        mine = []
        tel = Telemetry(RingBufferSink(capacity=1, on_drop=mine.append))
        for t in range(3):
            tel.emit(PMCrashed(time=t, pm_id=0))
        assert sum(mine) == 2
        assert tel.metrics.counter("spans_dropped_total").value == 0
