"""Tests for repro.simulation.scheduler and the end-to-end run loop."""

import numpy as np
import pytest

from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import Placement, PMSpec, VMSpec
from repro.placement.ffd import ffd_by_base, ffd_by_peak
from repro.simulation.datacenter import Datacenter
from repro.simulation.migration import StandardPolicy
from repro.simulation.scheduler import DynamicScheduler, run_simulation
from repro.workload.patterns import generate_pattern_instance

P_ON, P_OFF = 0.01, 0.09


def vm(base, extra):
    return VMSpec(P_ON, P_OFF, base, extra)


class TestResolveOverloads:
    def test_no_overload_no_migration(self):
        vms = [vm(10, 5), vm(10, 5)]
        pms = [PMSpec(100.0), PMSpec(100.0)]
        placement = Placement(2, 2, assignment=np.array([0, 0]))
        dc = Datacenter(vms, pms, placement, seed=0)
        scheduler = DynamicScheduler(dc)
        assert scheduler.resolve_overloads(0) == []

    def test_overload_triggers_migration(self):
        vms = [vm(40, 30), vm(40, 30)]
        pms = [PMSpec(90.0), PMSpec(90.0)]
        placement = Placement(2, 2, assignment=np.array([0, 0]))
        dc = Datacenter(vms, pms, placement, seed=0)
        dc._on[:] = True
        for v in dc.vms:
            v.on = True  # both spike: load 140 > 90
        events = DynamicScheduler(dc).resolve_overloads(time=5)
        assert len(events) == 1
        e = events[0]
        assert e.time == 5 and e.source_pm == 0 and e.target_pm == 1
        assert dc.overloaded_pms().size == 0

    def test_violation_tolerated_when_no_target(self):
        vms = [vm(40, 30), vm(40, 30)]
        pms = [PMSpec(90.0)]
        placement = Placement(2, 1, assignment=np.array([0, 0]))
        dc = Datacenter(vms, pms, placement, seed=0)
        dc._on[:] = True
        for v in dc.vms:
            v.on = True
        events = DynamicScheduler(dc).resolve_overloads(0)
        assert events == []
        assert dc.overloaded_pms().size == 1

    def test_lone_oversized_vm_not_bounced(self):
        vms = [vm(100, 50)]
        pms = [PMSpec(90.0), PMSpec(90.0)]
        placement = Placement(1, 2, assignment=np.array([0]))
        dc = Datacenter(vms, pms, placement, seed=0)
        events = DynamicScheduler(dc).resolve_overloads(0)
        assert events == []  # single VM over capacity: nowhere is better

    def test_migration_budget_respected(self):
        vms = [vm(30, 0) for _ in range(6)]
        pms = [PMSpec(60.0)] + [PMSpec(200.0)] * 3
        placement = Placement(6, 4, assignment=np.zeros(6, dtype=int))
        dc = Datacenter(vms, pms, placement, seed=0)
        scheduler = DynamicScheduler(dc, max_migrations_per_interval=2)
        events = scheduler.resolve_overloads(0)
        assert len(events) == 2

    def test_cascading_overloads_all_visited(self):
        vms = [vm(50, 0), vm(50, 0), vm(50, 0), vm(50, 0)]
        pms = [PMSpec(80.0), PMSpec(80.0), PMSpec(300.0)]
        placement = Placement(4, 3, assignment=np.array([0, 0, 1, 1]))
        dc = Datacenter(vms, pms, placement, seed=0)
        events = DynamicScheduler(dc).resolve_overloads(0)
        assert len(events) == 2
        assert dc.overloaded_pms().size == 0


class TestRunSimulation:
    def test_record_lengths(self):
        vms, pms = generate_pattern_instance("equal", 30, seed=0)
        placement = QueuingFFD().place(vms, pms)
        result = run_simulation(vms, pms, placement, n_intervals=50, seed=1)
        assert result.record.n_intervals == 50
        assert result.record.pms_used_series.shape == (50,)
        assert result.record.migrations_per_interval.shape == (50,)
        assert result.record.cumulative_migrations[-1] == result.total_migrations

    def test_initial_pms_used_matches_placement(self):
        vms, pms = generate_pattern_instance("equal", 30, seed=0)
        placement = QueuingFFD().place(vms, pms)
        result = run_simulation(vms, pms, placement, n_intervals=10, seed=1)
        assert result.initial_pms_used == placement.n_used_pms

    def test_reproducible(self):
        vms, pms = generate_pattern_instance("equal", 30, seed=2)
        placement = ffd_by_base(max_vms_per_pm=16).place(vms, pms)
        a = run_simulation(vms, pms, placement, n_intervals=60, seed=3)
        b = run_simulation(vms, pms, placement, n_intervals=60, seed=3)
        assert a.total_migrations == b.total_migrations
        np.testing.assert_array_equal(a.record.pms_used_series,
                                      b.record.pms_used_series)

    def test_rp_placement_never_migrates(self):
        """Peak provisioning can never overflow, hence zero migrations."""
        vms, pms = generate_pattern_instance("equal", 40, seed=4)
        placement = ffd_by_peak(max_vms_per_pm=16).place(vms, pms)
        result = run_simulation(vms, pms, placement, n_intervals=100, seed=5)
        assert result.total_migrations == 0
        assert result.record.violation_counts.sum() == 0

    def test_rb_migrates_more_than_queue(self):
        vms, pms = generate_pattern_instance("equal", 80, seed=6)
        rb = ffd_by_base(max_vms_per_pm=16).place(vms, pms)
        queue = QueuingFFD(rho=0.01, d=16).place(vms, pms)
        res_rb = run_simulation(vms, pms, rb, n_intervals=100, seed=7)
        res_q = run_simulation(vms, pms, queue, n_intervals=100, seed=7)
        assert res_rb.total_migrations > res_q.total_migrations

    def test_custom_policy_accepted(self):
        from repro.simulation.migration import (
            select_target_reservation_aware,
            select_vm_min_sufficient,
        )

        vms, pms = generate_pattern_instance("equal", 40, seed=8)
        placement = ffd_by_base(max_vms_per_pm=16).place(vms, pms)
        policy = StandardPolicy(
            pick_vm_fn=select_vm_min_sufficient,
            pick_target_fn=select_target_reservation_aware,
        )
        result = run_simulation(vms, pms, placement, n_intervals=50,
                                policy=policy, seed=9)
        assert result.record.n_intervals == 50

    def test_invalid_intervals(self):
        vms, pms = generate_pattern_instance("equal", 5, seed=0)
        placement = QueuingFFD().place(vms, pms)
        with pytest.raises(ValueError):
            run_simulation(vms, pms, placement, n_intervals=0)
