"""Integration tests for the extension placers under runtime simulation.

The paper-shape integration tests cover QUEUE/RP/RB; these verify the two
extension reservations (exact heterogeneous, blockless quantile) deliver
the same runtime behaviour class as QUEUE — near-zero migrations, bounded
CVR — while packing at least as tight.
"""

import numpy as np
import pytest

from repro.core.heterogeneous import HeterogeneousQueuingFFD
from repro.core.quantile import QuantileFFD
from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import VMSpec
from repro.simulation.scenario import compare_scenarios
from repro.workload.patterns import generate_pattern_instance, make_pms


@pytest.fixture(scope="module")
def uniform_instance():
    return generate_pattern_instance("equal", 100, seed=51)


@pytest.fixture(scope="module")
def hetero_instance():
    rng = np.random.default_rng(52)
    vms = [
        VMSpec(
            float(rng.uniform(0.005, 0.03)), float(rng.uniform(0.05, 0.15)),
            float(rng.uniform(2, 20)), float(rng.uniform(2, 20)),
        )
        for _ in range(100)
    ]
    return vms, make_pms(100, seed=52)


class TestUniformFleet:
    @pytest.fixture(scope="class")
    def reports(self, uniform_instance):
        vms, pms = uniform_instance
        return compare_scenarios(
            vms, pms,
            {"QUEUE": QueuingFFD(rho=0.01, d=16),
             "HET": HeterogeneousQueuingFFD(rho=0.01, d=16),
             "QUANTILE": QuantileFFD(rho=0.01, d=16)},
            n_intervals=150, seed=53,
        )

    def test_migrations_within_the_rho_budget(self, reports):
        """Block reservations over-reserve (few events); the quantile
        reservation runs right at its budget, so its overflow-triggered
        migrations approach rho x PMs x intervals but not beyond."""
        for name in ("QUEUE", "HET"):
            assert reports[name].total_migrations <= 5, name
        quant = reports["QUANTILE"]
        budget = 0.01 * quant.initial_pms_used * quant.record.n_intervals
        assert quant.total_migrations <= budget * 1.5

    def test_all_cvr_bounded(self, reports):
        for name, report in reports.items():
            assert report.mean_cvr <= 0.02, name

    def test_extensions_pack_at_least_as_tight(self, reports):
        assert (reports["HET"].initial_pms_used
                == reports["QUEUE"].initial_pms_used)
        assert (reports["QUANTILE"].initial_pms_used
                <= reports["QUEUE"].initial_pms_used)

    def test_pm_counts_stable(self, reports):
        for name, report in reports.items():
            series = report.record.pms_used_series
            assert series.max() - series.min() <= 2, name


class TestHeterogeneousFleet:
    @pytest.fixture(scope="class")
    def reports(self, hetero_instance):
        vms, pms = hetero_instance
        return compare_scenarios(
            vms, pms,
            {"QUEUE-mean": QueuingFFD(rho=0.01, d=16, rounding_rule="mean"),
             "QUEUE-cons": QueuingFFD(rho=0.01, d=16,
                                      rounding_rule="conservative"),
             "HET": HeterogeneousQueuingFFD(rho=0.01, d=16)},
            n_intervals=150, seed=54,
        )

    def test_exact_beats_conservative_footprint(self, reports):
        assert (reports["HET"].initial_pms_used
                <= reports["QUEUE-cons"].initial_pms_used)

    def test_exact_runtime_cvr_bounded(self, reports):
        assert reports["HET"].mean_cvr <= 0.02
        assert reports["HET"].total_migrations <= 5

    def test_footprint_ordering(self, reports):
        # mean rounding <= exact <= conservative (exact sits between by
        # construction: it reserves truly enough, conservative over-reserves)
        assert (reports["QUEUE-mean"].initial_pms_used
                <= reports["HET"].initial_pms_used + 1)
