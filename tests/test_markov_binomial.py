"""Tests for repro.markov.binomial — the Eq. 12 transition kernel."""

import numpy as np
import pytest
from scipy.stats import binom

from repro.markov.binomial import (
    binomial_pmf_table,
    busy_block_kernel,
    busy_block_kernel_bruteforce,
)


class TestBinomialPmfTable:
    def test_matches_scipy(self):
        table = binomial_pmf_table(12, 0.3)
        for n in range(13):
            np.testing.assert_allclose(
                table[n, : n + 1], binom.pmf(np.arange(n + 1), n, 0.3), atol=1e-12
            )

    def test_upper_triangle_zero(self):
        table = binomial_pmf_table(5, 0.4)
        for n in range(6):
            assert np.all(table[n, n + 1:] == 0.0)

    def test_rows_sum_to_one(self):
        table = binomial_pmf_table(30, 0.07)
        np.testing.assert_allclose(table.sum(axis=1), 1.0, atol=1e-12)

    def test_degenerate_p_zero(self):
        table = binomial_pmf_table(4, 0.0)
        np.testing.assert_array_equal(table[:, 0], 1.0)
        assert table[:, 1:].sum() == 0.0

    def test_degenerate_p_one(self):
        table = binomial_pmf_table(4, 1.0)
        for n in range(5):
            assert table[n, n] == 1.0

    def test_n_zero(self):
        table = binomial_pmf_table(0, 0.5)
        assert table.shape == (1, 1)
        assert table[0, 0] == 1.0

    def test_extreme_p_no_underflow(self):
        table = binomial_pmf_table(60, 0.999)
        np.testing.assert_allclose(table.sum(axis=1), 1.0, atol=1e-9)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            binomial_pmf_table(-1, 0.5)
        with pytest.raises(ValueError):
            binomial_pmf_table(3, 1.5)


class TestBusyBlockKernel:
    @pytest.mark.parametrize("k,p_on,p_off", [
        (1, 0.01, 0.09),
        (4, 0.01, 0.09),
        (6, 0.3, 0.5),
        (8, 0.99, 0.01),
        (5, 0.5, 0.5),
    ])
    def test_matches_bruteforce(self, k, p_on, p_off):
        fast = busy_block_kernel(k, p_on, p_off)
        slow = busy_block_kernel_bruteforce(k, p_on, p_off)
        np.testing.assert_allclose(fast, slow, atol=1e-12)

    def test_rows_stochastic(self):
        P = busy_block_kernel(16, 0.01, 0.09)
        assert np.all(P >= 0.0)
        np.testing.assert_allclose(P.sum(axis=1), 1.0, atol=1e-10)

    def test_shape(self):
        assert busy_block_kernel(7, 0.1, 0.2).shape == (8, 8)

    def test_k_zero_is_identity(self):
        P = busy_block_kernel(0, 0.1, 0.2)
        np.testing.assert_array_equal(P, [[1.0]])

    def test_k_one_is_onoff_chain(self):
        P = busy_block_kernel(1, 0.03, 0.07)
        expected = np.array([[0.97, 0.03], [0.07, 0.93]])
        np.testing.assert_allclose(P, expected, atol=1e-12)

    def test_all_positive_for_interior_probs(self):
        # Paper's Proposition 1 relies on p_ij > 0.
        P = busy_block_kernel(10, 0.01, 0.09)
        assert np.all(P > 0.0)

    def test_two_step_consistency_with_independent_vms(self):
        # Two independent ON-OFF VMs: P[theta=2 | theta=0] after one step is
        # p_on^2 exactly.
        P = busy_block_kernel(2, 0.2, 0.4)
        assert P[0, 2] == pytest.approx(0.2**2)
        assert P[2, 0] == pytest.approx(0.4**2)
        # From state 1: one VM ON. P(next 2) = stay ON * other switches ON.
        assert P[1, 2] == pytest.approx(0.6 * 0.2)
