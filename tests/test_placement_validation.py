"""Tests for repro.placement.validation."""

import numpy as np
import pytest

from repro.core.types import Placement, PMSpec, VMSpec
from repro.placement.validation import (
    check_capacity_at_base,
    check_capacity_at_peak,
    check_placement_complete,
    max_vms_on_any_pm,
)

P_ON, P_OFF = 0.01, 0.09


def vm(base, extra=0.0):
    return VMSpec(P_ON, P_OFF, base, extra)


class TestChecks:
    def test_complete_passes(self):
        p = Placement(2, 1, assignment=np.array([0, 0]))
        check_placement_complete(p)

    def test_incomplete_fails_with_indices(self):
        p = Placement(3, 1, assignment=np.array([0, -1, -1]))
        with pytest.raises(AssertionError, match=r"\[1, 2\]"):
            check_placement_complete(p)

    def test_base_capacity_ok(self):
        p = Placement(2, 1, assignment=np.array([0, 0]))
        check_capacity_at_base(p, [vm(5), vm(5)], [PMSpec(10.0)])

    def test_base_capacity_violation(self):
        p = Placement(2, 1, assignment=np.array([0, 0]))
        with pytest.raises(AssertionError, match="base demand"):
            check_capacity_at_base(p, [vm(6), vm(5)], [PMSpec(10.0)])

    def test_peak_capacity(self):
        p = Placement(2, 1, assignment=np.array([0, 0]))
        check_capacity_at_peak(p, [vm(3, 2), vm(3, 2)], [PMSpec(10.0)])
        with pytest.raises(AssertionError, match="peak demand"):
            check_capacity_at_peak(p, [vm(3, 3), vm(3, 2)], [PMSpec(10.0)])

    def test_unplaced_vms_ignored_in_aggregates(self):
        p = Placement(2, 1, assignment=np.array([0, -1]))
        check_capacity_at_base(p, [vm(10), vm(100)], [PMSpec(10.0)])

    def test_max_vms_on_any_pm(self):
        p = Placement(4, 3, assignment=np.array([0, 0, 0, 2]))
        assert max_vms_on_any_pm(p) == 3

    def test_max_vms_empty_placement(self):
        assert max_vms_on_any_pm(Placement(3, 2)) == 0
