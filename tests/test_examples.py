"""Smoke tests: every example script must run cleanly end to end.

Examples are the public face of the library — a broken one is a release
blocker.  Each runs in a subprocess (so ``__main__`` guards and prints work
exactly as a user would see them) with a generous timeout.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def run_example(path: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(path)],
        capture_output=True, text=True, timeout=300,
    )


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLES}
        assert "quickstart.py" in names
        assert len(EXAMPLES) >= 3  # the deliverable floor

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_runs_cleanly(self, path):
        result = run_example(path)
        assert result.returncode == 0, (
            f"{path.name} failed:\n{result.stderr[-2000:]}"
        )
        assert result.stdout.strip(), f"{path.name} produced no output"

    def test_quickstart_shows_the_headline(self):
        result = run_example(EXAMPLES_DIR / "quickstart.py")
        assert "MapCal" in result.stdout
        assert "fewer PMs" in result.stdout

    def test_webfarm_reports_all_strategies(self):
        result = run_example(EXAMPLES_DIR / "webfarm_consolidation.py")
        for name in ("QUEUE", "RB", "RB-EX"):
            assert name in result.stdout

    def test_estimation_example_verifies_guarantee(self):
        result = run_example(EXAMPLES_DIR / "parameter_estimation.py")
        assert "holds" in result.stdout
