"""Property-based stress tests of the simulation layer.

Conservation laws that must survive arbitrary workload randomness and
scheduler activity: every VM stays placed exactly once, PM membership sets
mirror the placement array, loads are non-negative and sum-preserving, and
monitors account for every event exactly once.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import Placement, PMSpec, VMSpec
from repro.simulation.datacenter import Datacenter
from repro.simulation.failures import FailureInjector
from repro.simulation.monitor import Monitor
from repro.simulation.scheduler import DynamicScheduler


@st.composite
def fleet_configs(draw):
    n_vms = draw(st.integers(2, 15))
    n_pms = draw(st.integers(2, 8))
    vms = [
        VMSpec(
            draw(st.floats(0.01, 0.5)), draw(st.floats(0.01, 0.5)),
            draw(st.floats(1.0, 30.0)), draw(st.floats(0.0, 30.0)),
        )
        for _ in range(n_vms)
    ]
    caps = [draw(st.floats(40.0, 120.0)) for _ in range(n_pms)]
    assignment = np.array([draw(st.integers(0, n_pms - 1))
                           for _ in range(n_vms)])
    seed = draw(st.integers(0, 2**31))
    return vms, [PMSpec(c) for c in caps], assignment, seed


def check_invariants(dc: Datacenter) -> None:
    # 1. every VM placed exactly once and membership mirrors the placement
    counted = 0
    for pm_id, pm in enumerate(dc.pms):
        for vm_id in pm.vm_ids:
            assert dc.placement.pm_of(vm_id) == pm_id
            counted += 1
    assert counted == dc.n_vms
    assert dc.placement.all_placed
    # 2. loads consistent and non-negative
    loads = dc.pm_loads()
    assert np.all(loads >= -1e-9)
    np.testing.assert_allclose(loads.sum(), dc.vm_demands().sum(), atol=1e-6)


class TestSchedulerConservation:
    @given(config=fleet_configs())
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_through_a_run(self, config):
        vms, pms, assignment, seed = config
        placement = Placement(len(vms), len(pms), assignment=assignment)
        dc = Datacenter(vms, pms, placement, seed=seed)
        scheduler = DynamicScheduler(dc)
        monitor = Monitor(dc.n_pms, n_vms=dc.n_vms)
        total_events = 0
        for t in range(30):
            dc.step()
            events = scheduler.resolve_overloads(t)
            total_events += len(events)
            monitor.record_interval(dc, events)
            check_invariants(dc)
        record = monitor.finalize()
        assert record.total_migrations == total_events
        assert record.n_intervals == 30
        # presence never exceeds interval count
        assert np.all(record.presence_counts <= 30)
        assert np.all(record.vm_suffering_counts <= 30)

    @given(config=fleet_configs())
    @settings(max_examples=25, deadline=None)
    def test_migration_events_are_real_moves(self, config):
        vms, pms, assignment, seed = config
        placement = Placement(len(vms), len(pms), assignment=assignment)
        dc = Datacenter(vms, pms, placement, seed=seed)
        scheduler = DynamicScheduler(dc)
        for t in range(20):
            before = dc.placement.assignment.copy()
            dc.step()
            events = scheduler.resolve_overloads(t)
            after = dc.placement.assignment
            moved = set(np.flatnonzero(before != after).tolist())
            event_vms = {e.vm_id for e in events}
            # every changed VM has an event; an event VM may have moved and
            # moved back only via two events, so sets match exactly here
            assert moved <= event_vms
            for e in events:
                assert e.source_pm != e.target_pm

    @given(config=fleet_configs())
    @settings(max_examples=25, deadline=None)
    def test_failures_preserve_conservation(self, config):
        vms, pms, assignment, seed = config
        placement = Placement(len(vms), len(pms), assignment=assignment)
        dc = Datacenter(vms, pms, placement, seed=seed)
        injector = FailureInjector(dc, failure_probability=0.1,
                                   repair_probability=0.3, seed=seed + 1)
        for t in range(25):
            dc.step()
            injector.step(t)
            check_invariants(dc)
        # stranded VMs are exactly those still assigned to failed PMs
        for vm_id in injector.stranded_vms:
            assert injector.failed[dc.placement.pm_of(vm_id)]
