"""Capture/restore parity for every MigrationTrigger implementation.

The scheduler snapshots its trigger inside ``capture_state()``; a restored
run must make byte-identical decisions, so each trigger's window/counter
state has to roundtrip exactly — including an AlertReactiveTrigger frozen
mid-alert with escalations on the books.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import Placement, PMSpec, VMSpec
from repro.simulation import Scenario, canonical_state_bytes
from repro.simulation.datacenter import Datacenter
from repro.simulation.triggers import (
    AlertReactiveTrigger,
    OverflowTrigger,
    SlidingWindowCVRTrigger,
)


def _dc(seed=0):
    vms = [VMSpec(0.01, 0.09, 40.0, 30.0), VMSpec(0.01, 0.09, 40.0, 30.0)]
    pms = [PMSpec(90.0), PMSpec(90.0)]
    placement = Placement(2, 2, assignment=np.array([0, 0]))
    return Datacenter(vms, pms, placement, seed=seed)


def _force_spike(dc, vm_ids):
    for v in vm_ids:
        dc._on[v] = True
        dc.vms[v].on = True


def _roundtrip(state: dict) -> dict:
    """A checkpoint state must survive JSON serialization unchanged."""
    return json.loads(json.dumps(state))


class TestOverflowTriggerParity:
    def test_capture_is_empty_and_restore_is_noop(self):
        trigger = OverflowTrigger()
        assert trigger.capture_state() == {}
        trigger.restore_state(_roundtrip(trigger.capture_state()))
        assert trigger.should_migrate(0)


class TestSlidingWindowParity:
    def test_restored_window_reproduces_decisions(self):
        dc = _dc()
        trigger = SlidingWindowCVRTrigger(2, rho=0.2, window=6)
        _force_spike(dc, [0, 1])
        for t in range(4):
            trigger.observe(dc, t)
        state = _roundtrip(trigger.capture_state())

        clone = SlidingWindowCVRTrigger(2, rho=0.2, window=6)
        clone.restore_state(state)
        for pm in range(2):
            assert clone.windowed_cvr(pm) == trigger.windowed_cvr(pm)
            assert clone.should_migrate(pm) == trigger.should_migrate(pm)
        # and the cursors stay aligned after further observations
        calm = _dc()
        trigger.observe(calm, 4)
        clone.observe(calm, 4)
        assert clone.capture_state() == trigger.capture_state()

    def test_restore_validates_window_shape(self):
        trigger = SlidingWindowCVRTrigger(2, rho=0.2, window=6)
        state = trigger.capture_state()
        wrong = SlidingWindowCVRTrigger(2, rho=0.2, window=5)
        with pytest.raises(ValueError, match="shape"):
            wrong.restore_state(state)

    def test_partial_window_filled_count_roundtrips(self):
        dc = _dc()
        trigger = SlidingWindowCVRTrigger(2, rho=0.5, window=10)
        trigger.observe(dc, 0)
        state = _roundtrip(trigger.capture_state())
        assert state["filled"] == 1
        clone = SlidingWindowCVRTrigger(2, rho=0.5, window=10)
        clone.restore_state(state)
        assert clone._filled == 1 and clone._cursor == 1


class TestAlertReactiveParity:
    def test_mid_alert_escalations_and_base_roundtrip(self):
        alert = {"on": True}
        dc = _dc()
        base = SlidingWindowCVRTrigger(2, rho=0.9, window=8)
        trigger = AlertReactiveTrigger(base, lambda: alert["on"])
        for t in range(3):
            trigger.observe(dc, t)
        _force_spike(dc, [0, 1])
        trigger.observe(dc, 3)
        # windowed CVR = 1/4 <= rho: the base tolerates, the alert escalates
        assert not base.should_migrate(0)
        assert trigger.should_migrate(0)
        assert trigger.escalations == 1
        state = _roundtrip(trigger.capture_state())
        assert state["escalations"] == 1
        assert state["base"] is not None

        clone_alert = {"on": True}
        clone = AlertReactiveTrigger(
            SlidingWindowCVRTrigger(2, rho=0.9, window=8),
            lambda: clone_alert["on"])
        clone.restore_state(state)
        assert clone.escalations == 1
        assert clone.base.capture_state() == base.capture_state()
        # after the alert clears, both defer to the (restored) base
        alert["on"] = clone_alert["on"] = False
        assert clone.should_migrate(0) == trigger.should_migrate(0)

    def test_stateless_base_is_recorded_as_none(self):
        class Bare:
            def observe(self, dc, time):
                pass

            def should_migrate(self, pm_id):
                return False

        trigger = AlertReactiveTrigger(Bare(), lambda: False)
        state = trigger.capture_state()
        assert state["base"] is None
        trigger.restore_state(_roundtrip(state))
        assert trigger.escalations == 0


class TestScenarioTriggerParity:
    """Split-run == straight-run with a windowed trigger in the loop."""

    def _scenario(self):
        vms = [VMSpec(0.2, 0.3, 10.0, 40.0) for _ in range(8)]
        pms = [PMSpec(60.0) for _ in range(4)]
        return Scenario(
            vms, pms, placer=QueuingFFD(rho=0.4, d=16),
            trigger=SlidingWindowCVRTrigger(4, rho=0.05, window=12),
            reconsolidation={"period": 25},
        )

    def test_split_run_matches_straight_run(self):
        straight = self._scenario().start(seed=11)
        straight.advance(60)
        expected = canonical_state_bytes(straight.capture_state())
        straight.close()

        split = self._scenario().start(seed=11)
        split.advance(30)
        state = json.loads(json.dumps(split.capture_state()))
        split.close()
        resumed = self._scenario().start(seed=0, _placement=None)
        resumed.restore_state(state)
        resumed.advance(30)
        assert canonical_state_bytes(resumed.capture_state()) == expected
        resumed.close()
