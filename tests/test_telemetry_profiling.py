"""Profiling spans: tree shape, activation scoping, near-zero off cost."""

from __future__ import annotations

import pytest

from repro.telemetry import Profiler, active_profiler, timed


class TestSpanTree:
    def test_nesting_builds_a_tree(self):
        prof = Profiler()
        with prof:
            with timed("outer"):
                with timed("inner"):
                    pass
                with timed("inner"):
                    pass
        outer = prof.root.children["outer"]
        assert outer.count == 1
        inner = outer.children["inner"]
        assert inner.count == 2
        assert inner.total_seconds <= outer.total_seconds
        assert outer.self_seconds == pytest.approx(
            outer.total_seconds - inner.total_seconds)

    def test_siblings_not_merged(self):
        prof = Profiler()
        with prof:
            with timed("a"):
                with timed("leaf"):
                    pass
            with timed("b"):
                with timed("leaf"):
                    pass
        assert "leaf" in prof.root.children["a"].children
        assert "leaf" in prof.root.children["b"].children

    def test_summary_lists_all_spans(self):
        prof = Profiler()
        with prof:
            with timed("solve"):
                pass
        text = prof.summary()
        assert "solve" in text
        assert "calls" in text

    def test_to_dict_is_json_shaped(self):
        prof = Profiler()
        with prof:
            with timed("x"):
                pass
        d = prof.root.to_dict()
        (child,) = d["children"]
        assert child["name"] == "x"
        assert child["count"] == 1


class TestActivation:
    def test_timed_is_noop_without_active_profiler(self):
        assert active_profiler() is None
        with timed("ignored"):
            pass
        assert active_profiler() is None

    def test_activation_scoped_to_with_block(self):
        prof = Profiler()
        with prof:
            assert active_profiler() is prof
        assert active_profiler() is None
        assert prof.empty  # nothing was timed inside

    def test_reentrant_activation_restores_outer(self):
        outer, inner = Profiler(), Profiler()
        with outer:
            with inner:
                with timed("deep"):
                    pass
            assert active_profiler() is outer
            with timed("shallow"):
                pass
        assert "deep" in inner.root.children
        assert "shallow" in outer.root.children
        assert "deep" not in outer.root.children

    def test_exception_inside_span_still_restores(self):
        prof = Profiler()
        with pytest.raises(RuntimeError):
            with prof:
                with timed("boom"):
                    raise RuntimeError("x")
        assert active_profiler() is None
        assert prof.root.children["boom"].count == 1
