"""Profiling spans: tree shape, activation scoping, near-zero off cost."""

from __future__ import annotations

import pytest

from repro.telemetry import Profiler, active_profiler, timed


class TestSpanTree:
    def test_nesting_builds_a_tree(self):
        prof = Profiler()
        with prof:
            with timed("outer"):
                with timed("inner"):
                    pass
                with timed("inner"):
                    pass
        outer = prof.root.children["outer"]
        assert outer.count == 1
        inner = outer.children["inner"]
        assert inner.count == 2
        assert inner.total_seconds <= outer.total_seconds
        assert outer.self_seconds == pytest.approx(
            outer.total_seconds - inner.total_seconds)

    def test_siblings_not_merged(self):
        prof = Profiler()
        with prof:
            with timed("a"):
                with timed("leaf"):
                    pass
            with timed("b"):
                with timed("leaf"):
                    pass
        assert "leaf" in prof.root.children["a"].children
        assert "leaf" in prof.root.children["b"].children

    def test_summary_lists_all_spans(self):
        prof = Profiler()
        with prof:
            with timed("solve"):
                pass
        text = prof.summary()
        assert "solve" in text
        assert "calls" in text

    def test_to_dict_is_json_shaped(self):
        prof = Profiler()
        with prof:
            with timed("x"):
                pass
        d = prof.root.to_dict()
        (child,) = d["children"]
        assert child["name"] == "x"
        assert child["count"] == 1


class TestActivation:
    def test_timed_is_noop_without_active_profiler(self):
        assert active_profiler() is None
        with timed("ignored"):
            pass
        assert active_profiler() is None

    def test_activation_scoped_to_with_block(self):
        prof = Profiler()
        with prof:
            assert active_profiler() is prof
        assert active_profiler() is None
        assert prof.empty  # nothing was timed inside

    def test_reentrant_activation_restores_outer(self):
        outer, inner = Profiler(), Profiler()
        with outer:
            with inner:
                with timed("deep"):
                    pass
            assert active_profiler() is outer
            with timed("shallow"):
                pass
        assert "deep" in inner.root.children
        assert "shallow" in outer.root.children
        assert "deep" not in outer.root.children

    def test_exception_inside_span_still_restores(self):
        prof = Profiler()
        with pytest.raises(RuntimeError):
            with prof:
                with timed("boom"):
                    raise RuntimeError("x")
        assert active_profiler() is None
        assert prof.root.children["boom"].count == 1


class TestErrorAccounting:
    def test_timed_records_span_on_the_exception_path(self):
        prof = Profiler()
        with prof:
            with pytest.raises(RuntimeError):
                with timed("flaky"):
                    raise RuntimeError("boom")
            with timed("flaky"):
                pass
        flaky = prof.root.children["flaky"]
        assert flaky.count == 2  # the failed call is not lost
        assert flaky.errors == 1
        assert flaky.total_seconds > 0.0

    def test_profiler_span_counts_errors(self):
        prof = Profiler()
        with prof:
            with pytest.raises(ValueError):
                with prof.span("solve"):
                    raise ValueError("bad rho")
        solve = prof.root.children["solve"]
        assert solve.count == 1 and solve.errors == 1

    def test_nested_failure_attributes_to_every_open_span(self):
        prof = Profiler()
        with prof:
            with pytest.raises(RuntimeError):
                with timed("outer"):
                    with timed("inner"):
                        raise RuntimeError("x")
        assert prof.root.children["outer"].errors == 1
        assert prof.root.children["outer"].children["inner"].errors == 1

    def test_timed_double_exit_is_harmless(self):
        prof = Profiler()
        with prof:
            cm = timed("once")
            cm.__enter__()
            cm.__exit__(None, None, None)
            cm.__exit__(None, None, None)  # stray second close: no-op
        once = prof.root.children["once"]
        assert once.count == 1
        assert len(prof._stack) == 1  # back at the root, not underflowed


class TestSerialization:
    def test_span_dict_round_trip_preserves_errors(self):
        prof = Profiler()
        with prof:
            with pytest.raises(RuntimeError):
                with timed("a"):
                    with timed("b"):
                        raise RuntimeError("x")
        from repro.telemetry.profiling import Span

        back = Span.from_dict(prof.root.to_dict())
        assert back.to_dict() == prof.root.to_dict()
        assert back.children["a"].children["b"].errors == 1

    def test_from_dict_defaults_errors_for_old_payloads(self):
        from repro.telemetry.profiling import Span

        span = Span.from_dict({"name": "legacy", "count": 3,
                               "total_seconds": 0.5})
        assert span.errors == 0 and span.count == 3
