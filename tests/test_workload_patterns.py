"""Tests for repro.workload.patterns — instance generators and Table I."""

import pytest

from repro.workload.patterns import (
    PATTERN_RANGES,
    PM_CAPACITY_RANGE,
    TABLE_I,
    USERS_PER_CLASS,
    generate_pattern_instance,
    make_pms,
    table_i_vms,
)


class TestGeneratePatternInstance:
    @pytest.mark.parametrize("pattern", ["equal", "small", "large"])
    def test_ranges_respected(self, pattern):
        vms, pms = generate_pattern_instance(pattern, 200, seed=0)
        (b_lo, b_hi), (e_lo, e_hi) = PATTERN_RANGES[pattern]
        for v in vms:
            assert b_lo <= v.r_base <= b_hi
            assert e_lo <= v.r_extra <= e_hi
        lo, hi = PM_CAPACITY_RANGE
        for p in pms:
            assert lo <= p.capacity <= hi

    def test_small_pattern_means_small_spikes(self):
        vms, _ = generate_pattern_instance("small", 100, seed=1)
        assert all(v.r_base > v.r_extra for v in vms)

    def test_large_pattern_means_large_spikes(self):
        vms, _ = generate_pattern_instance("large", 100, seed=1)
        assert all(v.r_base < v.r_extra for v in vms)

    def test_default_pm_count_equals_vm_count(self):
        vms, pms = generate_pattern_instance("equal", 37, seed=2)
        assert len(pms) == len(vms) == 37

    def test_custom_pm_count(self):
        _, pms = generate_pattern_instance("equal", 10, n_pms=3, seed=2)
        assert len(pms) == 3

    def test_switch_probabilities_default(self):
        vms, _ = generate_pattern_instance("equal", 5, seed=3)
        assert all(v.p_on == 0.01 and v.p_off == 0.09 for v in vms)

    def test_custom_probabilities(self):
        vms, _ = generate_pattern_instance("equal", 5, p_on=0.2, p_off=0.3, seed=3)
        assert all(v.p_on == 0.2 and v.p_off == 0.3 for v in vms)

    def test_reproducible(self):
        a, _ = generate_pattern_instance("equal", 10, seed=9)
        b, _ = generate_pattern_instance("equal", 10, seed=9)
        assert a == b

    def test_unknown_pattern(self):
        with pytest.raises(ValueError, match="unknown pattern"):
            generate_pattern_instance("huge", 10)

    def test_invalid_capacity_range(self):
        with pytest.raises(ValueError):
            generate_pattern_instance("equal", 5, capacity_range=(100.0, 80.0))


class TestMakePms:
    def test_count_and_range(self):
        pms = make_pms(10, seed=0)
        assert len(pms) == 10
        assert all(80 <= p.capacity <= 100 for p in pms)

    def test_invalid(self):
        with pytest.raises(ValueError):
            make_pms(0)


class TestTableI:
    def test_seven_rows(self):
        assert len(TABLE_I) == 7

    def test_paper_values(self):
        # Spot-check rows against the paper's table.
        rows = {(r.base_class, r.extra_class): r for r in TABLE_I}
        assert rows[("small", "small")].normal_users == 400
        assert rows[("small", "small")].peak_users == 800
        assert rows[("large", "large")].peak_users == 3200
        assert rows[("medium", "small")].peak_users == 1200
        assert rows[("small", "medium")].peak_users == 1200
        assert rows[("medium", "large")].peak_users == 2400

    def test_patterns_consistent_with_classes(self):
        order = {"small": 0, "medium": 1, "large": 2}
        for r in TABLE_I:
            if r.pattern == "equal":
                assert order[r.base_class] == order[r.extra_class]
            elif r.pattern == "small":
                assert order[r.base_class] > order[r.extra_class]
            else:
                assert order[r.base_class] < order[r.extra_class]

    def test_peak_is_base_plus_extra_users(self):
        for r in TABLE_I:
            assert r.peak_users == r.normal_users + USERS_PER_CLASS[r.extra_class]


class TestTableIVms:
    @pytest.mark.parametrize("pattern", ["equal", "small", "large"])
    def test_specs_come_from_table_rows(self, pattern):
        vms = table_i_vms(pattern, 100, seed=0)
        valid = {
            (r.normal_users / 100.0, (r.peak_users - r.normal_users) / 100.0)
            for r in TABLE_I if r.pattern == pattern
        }
        assert all((v.r_base, v.r_extra) in valid for v in vms)

    def test_scaling(self):
        vms = table_i_vms("equal", 50, users_per_resource_unit=200.0, seed=0)
        assert all(v.r_base in {2.0, 4.0, 8.0} for v in vms)

    def test_all_rows_eventually_sampled(self):
        vms = table_i_vms("equal", 500, seed=1)
        assert len({v.r_base for v in vms}) == 3  # three equal-pattern rows

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            table_i_vms("weird", 5)
