"""Tests for repro.viz.ascii_charts."""

import numpy as np
import pytest

from repro.viz.ascii_charts import (
    bar_chart,
    histogram,
    line_chart,
    sanitize_series,
    sparkline,
)


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_input_monotone_levels(self):
        s = sparkline(np.arange(8.0))
        assert list(s) == sorted(s)
        assert s[0] == "▁" and s[-1] == "█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            sparkline([1.0, float("nan")])


class TestBarChart:
    def test_contains_labels_and_values(self):
        out = bar_chart({"QUEUE": 19.0, "RP": 26.0})
        assert "QUEUE" in out and "RP" in out
        assert "19.0" in out and "26.0" in out

    def test_largest_value_gets_longest_bar(self):
        out = bar_chart({"a": 1.0, "b": 10.0}, width=20)
        lines = out.splitlines()
        assert lines[1].count("█") > lines[0].count("█")

    def test_title(self):
        out = bar_chart({"x": 1.0}, title="T")
        assert out.splitlines()[0] == "T"

    def test_zero_and_negative_values(self):
        out = bar_chart({"zero": 0.0, "neg": -3.0, "pos": 2.0})
        assert "█" in out  # only the positive value draws

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})


class TestLineChart:
    def test_dimensions(self):
        out = line_chart({"a": [0, 1, 2]}, height=5, width=30)
        # 5 grid rows + axis line + legend
        assert len(out.splitlines()) == 7

    def test_unique_markers_for_colliding_labels(self):
        out = line_chart({"RB": [0, 1], "RB-EX": [1, 0]}, height=4, width=10)
        legend = out.splitlines()[-1]
        assert "R = RB" in legend
        assert "B = RB-EX" in legend

    def test_extremes_annotated(self):
        out = line_chart({"a": [2.0, 8.0]}, height=4, width=10)
        assert "8.00" in out and "2.00" in out

    def test_constant_series_ok(self):
        out = line_chart({"a": [3.0, 3.0, 3.0]}, height=3, width=9)
        assert "a" in out.splitlines()[-1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})


class TestEdgeCases:
    """Degenerate inputs the dashboard feeds through sanitize_series."""

    def test_empty_series_rejected_everywhere(self):
        with pytest.raises(ValueError):
            sparkline([])
        with pytest.raises(ValueError):
            line_chart({"a": []})
        with pytest.raises(ValueError):
            histogram([])

    def test_single_point_sparkline(self):
        assert sparkline([3.0]) == "▁"

    def test_single_point_line_chart(self):
        out = line_chart({"a": [5.0]}, height=3, width=5)
        assert "a" in out.splitlines()[-1]

    def test_constant_series_all_charts(self):
        assert sparkline([2.0] * 4) == "▁▁▁▁"
        assert "a" in line_chart({"a": [2.0] * 4}, height=2, width=4)
        assert histogram([2.0, 2.0], n_bins=2)

    def test_nan_and_inf_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                sparkline([1.0, bad])
            with pytest.raises(ValueError):
                line_chart({"a": [1.0, bad]})

    def test_width_one_renders(self):
        out = bar_chart({"a": 3.0}, width=1)
        assert "█" in out
        out = histogram([1.0, 2.0], n_bins=1, width=1)
        assert "█" in out
        # line_chart needs at least 2 columns by contract
        with pytest.raises(ValueError):
            line_chart({"a": [1.0, 2.0]}, width=1)

    def test_sanitize_series_drops_nonfinite(self):
        clean = sanitize_series([1.0, float("nan"), 2.0, float("inf"), 3.0])
        assert clean == [1.0, 2.0, 3.0]
        assert sanitize_series([]) == []
        assert sanitize_series([float("nan")]) == []

    def test_sanitized_feed_renders(self):
        values = [1.0, float("nan"), 5.0, 2.0]
        assert len(sparkline(sanitize_series(values))) == 3


class TestHistogram:
    def test_counts_sum_matches(self):
        values = np.random.default_rng(0).normal(size=200)
        out = histogram(values, n_bins=5)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in out.splitlines()]
        assert sum(counts) == 200

    def test_bin_count(self):
        out = histogram([1.0, 2.0, 3.0], n_bins=4)
        assert len(out.splitlines()) == 4

    def test_title_line(self):
        out = histogram([1.0, 2.0], n_bins=2, title="CVR")
        assert out.splitlines()[0] == "CVR"
