"""Tests for the CLI fit/consolidate toolchain."""

import json

import pytest

from repro.core.types import VMSpec
from repro.experiments.runner import main
from repro.workload.io import load_instance, load_placement, save_traces
from repro.workload.onoff_generator import demand_trace, ensemble_states


@pytest.fixture
def trace_file(tmp_path):
    vms = [VMSpec(0.02, 0.1, 10.0, 8.0), VMSpec(0.01, 0.09, 5.0, 12.0)]
    states = ensemble_states(vms, 30_000, start_stationary=True, seed=0)
    path = tmp_path / "mon.csv"
    save_traces(path, demand_trace(vms, states))
    return path


class TestFitCommand:
    def test_fit_prints_table(self, trace_file, capsys):
        assert main(["fit", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "p_on" in out and "transitions" in out
        assert out.count("\n") >= 3  # header + two VMs

    def test_fit_writes_instance(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "inst.json"
        assert main(["fit", str(trace_file), "-o", str(out_path)]) == 0
        vms, pms = load_instance(out_path)
        assert len(vms) == 2
        assert vms[0].r_base == pytest.approx(10.0, abs=0.3)
        assert all(p.capacity == 100.0 for p in pms)

    def test_fit_hmm_variant(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "inst.json"
        assert main(["fit", str(trace_file), "--hmm", "-o", str(out_path)]) == 0
        vms, _ = load_instance(out_path)
        assert vms[1].r_extra == pytest.approx(12.0, abs=0.5)

    def test_fit_margin_is_conservative(self, trace_file, tmp_path, capsys):
        plain = tmp_path / "plain.json"
        margin = tmp_path / "margin.json"
        main(["fit", str(trace_file), "-o", str(plain)])
        main(["fit", str(trace_file), "--margin", "0.95", "-o", str(margin)])
        vms_plain, _ = load_instance(plain)
        vms_margin, _ = load_instance(margin)
        for a, b in zip(vms_margin, vms_plain):
            assert a.r_peak >= b.r_peak - 1e-9

    def test_pm_capacity_flag(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "inst.json"
        main(["fit", str(trace_file), "-o", str(out_path),
              "--pm-capacity", "55.5"])
        _, pms = load_instance(out_path)
        assert all(p.capacity == 55.5 for p in pms)


class TestConsolidateCommand:
    @pytest.fixture
    def instance_file(self, trace_file, tmp_path):
        path = tmp_path / "inst.json"
        main(["fit", str(trace_file), "-o", str(path)])
        return path

    def test_consolidate_reports_packing(self, instance_file, capsys):
        assert main(["consolidate", str(instance_file)]) == 0
        out = capsys.readouterr().out
        assert "QUEUE" in out and "PMs" in out

    def test_consolidate_writes_valid_placement(self, instance_file, tmp_path,
                                                capsys):
        out_path = tmp_path / "map.json"
        assert main(["consolidate", str(instance_file),
                     "-o", str(out_path)]) == 0
        placement = load_placement(out_path)
        assert placement.all_placed

    def test_exact_variant(self, instance_file, capsys):
        assert main(["consolidate", str(instance_file), "--exact"]) == 0
        assert "QUEUE-HET" in capsys.readouterr().out

    def test_rho_flag_respected(self, instance_file, capsys):
        assert main(["consolidate", str(instance_file), "--rho", "0.5"]) == 0
        assert "rho=0.5" in capsys.readouterr().out


class TestValidationSurface:
    """Bad inputs exit with code 2 and an actionable message, no traceback."""

    def test_fit_missing_trace_file_exits_2(self, tmp_path, capsys):
        assert main(["fit", str(tmp_path / "nope.csv")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_consolidate_missing_instance_exits_2(self, tmp_path, capsys):
        assert main(["consolidate", str(tmp_path / "nope.json")]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_consolidate_bad_vm_params_exit_2_with_location(
            self, tmp_path, capsys):
        path = tmp_path / "inst.json"
        path.write_text(json.dumps({
            "format_version": 1,
            "vms": [{"p_on": 0.1, "p_off": 0.2,
                     "r_base": 10.0, "r_extra": 20.0},
                    {"p_on": 1.5, "p_off": 0.2,
                     "r_base": 10.0, "r_extra": 20.0}],
            "pms": [{"capacity": 100.0}],
        }))
        assert main(["consolidate", str(path)]) == 2
        err = capsys.readouterr().err
        assert "vms[1]" in err          # which entry is broken
        assert "p_on" in err            # which field
        assert "(0, 1]" in err          # what would be accepted
        assert "Traceback" not in err

    def test_consolidate_bad_pm_capacity_exits_2(self, tmp_path, capsys):
        path = tmp_path / "inst.json"
        path.write_text(json.dumps({
            "format_version": 1,
            "vms": [{"p_on": 0.1, "p_off": 0.2,
                     "r_base": 10.0, "r_extra": 20.0}],
            "pms": [{"capacity": -5.0}],
        }))
        assert main(["consolidate", str(path)]) == 2
        err = capsys.readouterr().err
        assert "pms[0]" in err and "capacity" in err

    def test_vmspec_message_names_the_contract(self):
        with pytest.raises(ValueError) as exc_info:
            VMSpec(0.0, 0.5, 10.0, 5.0)
        msg = str(exc_info.value)
        assert "invalid VMSpec" in msg and "p_on" in msg and "(0, 1]" in msg

    def test_pmspec_message_names_the_contract(self):
        from repro.core.types import PMSpec
        with pytest.raises(ValueError) as exc_info:
            PMSpec(0.0)
        msg = str(exc_info.value)
        assert "invalid PMSpec" in msg and "capacity" in msg
