"""Tests for per-VM violation attribution in the monitor."""

import numpy as np
import pytest

from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import Placement, PMSpec, VMSpec
from repro.placement.ffd import ffd_by_base
from repro.simulation.datacenter import Datacenter
from repro.simulation.monitor import Monitor
from repro.simulation.scheduler import run_simulation
from repro.workload.patterns import generate_pattern_instance


def make_dc():
    vms = [VMSpec(0.01, 0.09, 60.0, 50.0), VMSpec(0.01, 0.09, 30.0, 5.0),
           VMSpec(0.01, 0.09, 10.0, 5.0)]
    pms = [PMSpec(100.0), PMSpec(100.0)]
    placement = Placement(3, 2, assignment=np.array([0, 0, 1]))
    return Datacenter(vms, pms, placement, seed=0)


class TestVmAttribution:
    def test_vms_on_violated_pm_suffer(self):
        dc = make_dc()
        monitor = Monitor(2, n_vms=3)
        monitor.record_interval(dc, [])  # loads 90 / 10: no violation
        dc._on[0] = True
        dc.vms[0].on = True  # PM0 load 140 > 100
        monitor.record_interval(dc, [])
        record = monitor.finalize()
        np.testing.assert_array_equal(record.vm_suffering_counts, [1, 1, 0])
        np.testing.assert_allclose(record.vm_suffering_fraction(),
                                   [0.5, 0.5, 0.0])

    def test_untracked_monitor_returns_empty(self):
        dc = make_dc()
        monitor = Monitor(2)
        monitor.record_interval(dc, [])
        record = monitor.finalize()
        assert record.vm_suffering_counts.size == 0
        assert record.vm_suffering_fraction().size == 0

    def test_vm_count_mismatch_rejected(self):
        dc = make_dc()
        monitor = Monitor(2, n_vms=5)
        with pytest.raises(ValueError, match="tracks"):
            monitor.record_interval(dc, [])

    def test_negative_vm_count_rejected(self):
        with pytest.raises(ValueError):
            Monitor(2, n_vms=-1)

    @staticmethod
    def _spare_free(placer, n, seed):
        """Place with `placer`, then truncate the fleet to exactly the used
        PMs so overflows cannot always be migrated away (and therefore get
        recorded as violations the monitor attributes to VMs)."""
        vms, pms = generate_pattern_instance("equal", n, seed=seed)
        placement = placer.place(vms, pms)
        m = int(placement.used_pms().max()) + 1
        return vms, pms[:m], Placement(len(vms), m,
                                       assignment=placement.assignment)

    def test_run_simulation_populates_suffering(self):
        vms, pms, placement = self._spare_free(
            ffd_by_base(max_vms_per_pm=16), 50, seed=1
        )
        result = run_simulation(vms, pms, placement, n_intervals=200, seed=2)
        assert result.record.vm_suffering_counts.shape == (50,)
        # The spare-free RB fleet cannot absorb every spike collision.
        assert result.record.vm_suffering_counts.sum() > 0

    def test_queue_spreads_less_pain_than_rb(self):
        rb_vms, rb_pms, rb_place = self._spare_free(
            ffd_by_base(max_vms_per_pm=16), 80, seed=3
        )
        q_vms, q_pms, q_place = self._spare_free(
            QueuingFFD(rho=0.01, d=16), 80, seed=3
        )
        res_rb = run_simulation(rb_vms, rb_pms, rb_place,
                                n_intervals=200, seed=4)
        res_q = run_simulation(q_vms, q_pms, q_place,
                               n_intervals=200, seed=4)
        assert (res_q.record.vm_suffering_fraction().mean()
                < res_rb.record.vm_suffering_fraction().mean())

    def test_suffering_consistent_with_pm_violations(self):
        """Each PM violation interval contributes exactly its hosted VM
        count to the suffering totals (when no migrations move VMs)."""
        dc = make_dc()
        monitor = Monitor(2, n_vms=3)
        dc._on[0] = True
        dc.vms[0].on = True
        for _ in range(5):
            monitor.record_interval(dc, [])
        record = monitor.finalize()
        assert record.violation_counts[0] == 5
        assert record.vm_suffering_counts.sum() == 5 * 2  # 2 VMs on PM0
