"""Tests for repro.simulation.costmodel."""

import numpy as np
import pytest

from repro.core.types import Placement, PMSpec, VMSpec
from repro.simulation.costmodel import (
    CostedScheduler,
    MigrationAccount,
    MigrationCostModel,
)
from repro.simulation.datacenter import Datacenter


class TestMigrationCostModel:
    def test_duration_ceil_division(self):
        model = MigrationCostModel(bandwidth_units_per_interval=50.0)
        assert model.duration_intervals(0.0) == 1
        assert model.duration_intervals(50.0) == 1
        assert model.duration_intervals(50.1) == 2
        assert model.duration_intervals(151.0) == 4

    def test_downtime_grows_with_footprint(self):
        model = MigrationCostModel(bandwidth_units_per_interval=10.0,
                                   downtime_floor_seconds=0.5,
                                   downtime_per_duration_seconds=0.25)
        small = model.downtime_seconds(5.0)    # 1 interval
        large = model.downtime_seconds(100.0)  # 10 intervals
        assert small == pytest.approx(0.75)
        assert large == pytest.approx(0.5 + 2.5)

    def test_overhead_load(self):
        model = MigrationCostModel(cpu_overhead_fraction=0.2)
        assert model.overhead_load(40.0) == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MigrationCostModel(bandwidth_units_per_interval=0.0)
        with pytest.raises(ValueError):
            MigrationCostModel(cpu_overhead_fraction=-0.1)
        model = MigrationCostModel()
        with pytest.raises(ValueError):
            model.duration_intervals(-1.0)


class TestMigrationAccount:
    def test_charge_accumulates(self):
        acc = MigrationAccount()
        acc.charge(vm_id=3, downtime=0.75, duration=2, overhead=4.0)
        acc.charge(vm_id=3, downtime=0.5, duration=1, overhead=2.0)
        acc.charge(vm_id=7, downtime=1.0, duration=3, overhead=1.0)
        assert acc.n_migrations == 3
        assert acc.total_downtime_seconds == pytest.approx(2.25)
        assert acc.total_duration_intervals == 6
        # overhead charged on both PMs for each duration interval
        assert acc.overhead_pm_intervals == pytest.approx(
            4.0 * 2 * 2 + 2.0 * 1 * 2 + 1.0 * 3 * 2
        )
        assert acc.per_vm_downtime == {3: pytest.approx(1.25), 7: 1.0}


class TestCostedScheduler:
    def _dc(self):
        vms = [VMSpec(0.01, 0.09, 40.0, 30.0), VMSpec(0.01, 0.09, 40.0, 30.0)]
        pms = [PMSpec(90.0), PMSpec(90.0)]
        placement = Placement(2, 2, assignment=np.array([0, 0]))
        dc = Datacenter(vms, pms, placement, seed=0)
        dc._on[:] = True
        for v in dc.vms:
            v.on = True
        return dc

    def test_migration_is_charged(self):
        dc = self._dc()
        scheduler = CostedScheduler(dc)
        events = scheduler.resolve_overloads(0)
        assert len(events) == 1
        assert scheduler.account.n_migrations == 1
        assert scheduler.account.total_downtime_seconds > 0

    def test_in_flight_overhead_applied_to_both_pms(self):
        dc = self._dc()
        model = MigrationCostModel(bandwidth_units_per_interval=10.0,
                                   cpu_overhead_fraction=0.25)
        scheduler = CostedScheduler(dc, cost_model=model)
        events = scheduler.resolve_overloads(0)
        e = events[0]
        overhead = 0.25 * 70.0  # migrated VM was spiking: demand 70
        assert scheduler.extra_load(e.source_pm) == pytest.approx(overhead)
        assert scheduler.extra_load(e.target_pm) == pytest.approx(overhead)
        assert scheduler.extra_load(99) == 0.0

    def test_transfer_completes_after_duration(self):
        dc = self._dc()
        model = MigrationCostModel(bandwidth_units_per_interval=20.0)
        scheduler = CostedScheduler(dc, cost_model=model)
        events = scheduler.resolve_overloads(0)
        duration = model.duration_intervals(40.0)  # footprint = r_base
        pm = events[0].target_pm
        for _ in range(duration):
            assert scheduler.extra_load(pm) > 0
            scheduler.tick_transfers()
        assert scheduler.extra_load(pm) == 0.0

    def test_no_overload_no_charges(self):
        vms = [VMSpec(0.01, 0.09, 10.0, 5.0)]
        pms = [PMSpec(100.0)]
        placement = Placement(1, 1, assignment=np.array([0]))
        dc = Datacenter(vms, pms, placement, seed=0)
        scheduler = CostedScheduler(dc)
        assert scheduler.resolve_overloads(0) == []
        assert scheduler.account.n_migrations == 0

    def test_full_run_accounting_consistent(self):
        from repro.placement.ffd import ffd_by_base
        from repro.simulation.engine import SimulationEngine
        from repro.simulation.monitor import Monitor
        from repro.workload.patterns import generate_pattern_instance

        vms, pms = generate_pattern_instance("equal", 60, seed=3)
        placement = ffd_by_base(max_vms_per_pm=16).place(vms, pms)
        dc = Datacenter(vms, pms, placement, seed=4)
        scheduler = CostedScheduler(dc)
        monitor = Monitor(dc.n_pms)
        engine = SimulationEngine()

        def tick(t):
            dc.step()
            monitor.record_interval(dc, scheduler.resolve_overloads(t))

        engine.add_hook("tick", tick)
        engine.run(100)
        record = monitor.finalize()
        assert scheduler.account.n_migrations == record.total_migrations
        if record.total_migrations:
            assert scheduler.account.total_downtime_seconds > 0
            assert scheduler.account.total_duration_intervals >= record.total_migrations
