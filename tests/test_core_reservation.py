"""Tests for repro.core.reservation — Eq. (17) and PM state bookkeeping."""

import pytest

from repro.core.mapcal import mapcal_table
from repro.core.reservation import (
    PMReservationState,
    fits_with_reservation,
    reserved_size,
)
from repro.core.types import PMSpec, VMSpec

P_ON, P_OFF, RHO = 0.01, 0.09, 0.01


@pytest.fixture(scope="module")
def mapping():
    return mapcal_table(16, P_ON, P_OFF, RHO)


def vm(base, extra):
    return VMSpec(P_ON, P_OFF, base, extra)


class TestReservedSize:
    def test_empty_pm(self, mapping):
        assert reserved_size(10.0, 0, mapping) == 0.0

    def test_block_size_times_count(self, mapping):
        k = 5
        expected = 10.0 * mapping.blocks_for(k)
        assert reserved_size(10.0, k, mapping) == expected


class TestFitsWithReservation:
    def test_empty_pm_accepts_when_room(self, mapping):
        assert fits_with_reservation(
            vm(10, 10), 100.0, current_count=0, current_base_sum=0.0,
            current_max_extra=0.0, mapping=mapping,
        )

    def test_eq17_exact_boundary(self, mapping):
        # One VM: needs R_b + mapping(1) * R_e <= C.
        K1 = mapping.blocks_for(1)
        need = 10.0 + K1 * 10.0
        assert fits_with_reservation(
            vm(10, 10), need, current_count=0, current_base_sum=0.0,
            current_max_extra=0.0, mapping=mapping,
        )
        assert not fits_with_reservation(
            vm(10, 10), need - 0.001, current_count=0, current_base_sum=0.0,
            current_max_extra=0.0, mapping=mapping,
        )

    def test_block_size_takes_max_of_new_and_existing(self, mapping):
        # Existing max R_e is 20; adding a small-spike VM still reserves 20/block.
        k_new = 3
        blocks = mapping.blocks_for(k_new)
        need = 20.0 * blocks + 30.0 + 5.0  # base sums
        assert fits_with_reservation(
            vm(5, 2), need, current_count=2, current_base_sum=30.0,
            current_max_extra=20.0, mapping=mapping,
        )
        assert not fits_with_reservation(
            vm(5, 2), need - 0.01, current_count=2, current_base_sum=30.0,
            current_max_extra=20.0, mapping=mapping,
        )

    def test_rejects_beyond_d(self, mapping):
        assert not fits_with_reservation(
            vm(0.001, 0.001), 1e9, current_count=16, current_base_sum=0.0,
            current_max_extra=0.0, mapping=mapping,
        )


class TestPMReservationState:
    def test_add_updates_aggregates(self, mapping):
        state = PMReservationState(spec=PMSpec(100.0), mapping=mapping)
        state.add(0, vm(10, 5))
        state.add(1, vm(20, 15))
        assert state.count == 2
        assert state.base_sum == pytest.approx(30.0)
        assert state.max_extra == 15.0
        assert state.n_blocks == mapping.blocks_for(2)
        assert state.reserved == pytest.approx(15.0 * mapping.blocks_for(2))
        assert state.committed == pytest.approx(30.0 + state.reserved)
        assert state.headroom == pytest.approx(100.0 - state.committed)

    def test_fits_matches_free_function(self, mapping):
        state = PMReservationState(spec=PMSpec(60.0), mapping=mapping)
        state.add(0, vm(20, 10))
        candidate = vm(25, 5)
        expected = fits_with_reservation(
            candidate, 60.0, current_count=1, current_base_sum=20.0,
            current_max_extra=10.0, mapping=mapping,
        )
        assert state.fits(candidate) == expected

    def test_duplicate_id_rejected(self, mapping):
        state = PMReservationState(spec=PMSpec(100.0), mapping=mapping)
        state.add(0, vm(1, 1))
        with pytest.raises(ValueError, match="already"):
            state.add(0, vm(1, 1))

    def test_add_beyond_d_rejected(self, mapping):
        state = PMReservationState(spec=PMSpec(1e9), mapping=mapping)
        for i in range(16):
            state.add(i, vm(0.1, 0.1))
        with pytest.raises(ValueError, match="d=16"):
            state.add(99, vm(0.1, 0.1))

    def test_remove_recomputes_max_extra(self, mapping):
        state = PMReservationState(spec=PMSpec(100.0), mapping=mapping)
        state.add(0, vm(10, 20))
        state.add(1, vm(10, 5))
        removed = state.remove(0)
        assert removed.r_extra == 20.0
        assert state.max_extra == 5.0
        assert state.count == 1

    def test_remove_to_empty_resets(self, mapping):
        state = PMReservationState(spec=PMSpec(100.0), mapping=mapping)
        state.add(0, vm(10, 20))
        state.remove(0)
        assert state.is_empty
        assert state.base_sum == 0.0
        assert state.max_extra == 0.0
        assert state.n_blocks == 0
        assert state.reserved == 0.0

    def test_remove_unknown_raises(self, mapping):
        state = PMReservationState(spec=PMSpec(100.0), mapping=mapping)
        with pytest.raises(KeyError):
            state.remove(7)

    def test_remove_keeps_max_when_other_vm_holds_it(self, mapping):
        state = PMReservationState(spec=PMSpec(100.0), mapping=mapping)
        state.add(0, vm(10, 20))
        state.add(1, vm(10, 20))
        state.remove(0)
        assert state.max_extra == 20.0
