"""Tests for repro.markov.multilevel."""

import numpy as np
import pytest

from repro.markov.multilevel import MultiLevelChain, birth_death_levels, spiky_levels
from repro.markov.onoff import OnOffChain


class TestMultiLevelChain:
    def test_demand_length_checked(self):
        P = np.array([[0.5, 0.5], [0.5, 0.5]])
        with pytest.raises(ValueError, match="length"):
            MultiLevelChain(P, [1.0])

    def test_negative_demand_rejected(self):
        P = np.array([[0.5, 0.5], [0.5, 0.5]])
        with pytest.raises(ValueError):
            MultiLevelChain(P, [1.0, -2.0])

    def test_stationary_demand_distribution_aggregates_equal_values(self):
        P = np.full((3, 3), 1 / 3)
        chain = MultiLevelChain(P, [5.0, 5.0, 10.0])
        values, probs = chain.stationary_demand_distribution()
        np.testing.assert_array_equal(values, [5.0, 10.0])
        np.testing.assert_allclose(probs, [2 / 3, 1 / 3])

    def test_mean_demand(self):
        P = np.array([[0.5, 0.5], [0.5, 0.5]])
        chain = MultiLevelChain(P, [0.0, 10.0])
        assert chain.mean_demand() == pytest.approx(5.0)

    def test_simulate_demand_values_from_levels(self):
        P = np.array([[0.5, 0.5], [0.5, 0.5]])
        chain = MultiLevelChain(P, [3.0, 7.0])
        trace = chain.simulate_demand(1000, seed=0)
        assert set(np.unique(trace)) <= {3.0, 7.0}
        assert trace.shape == (1001,)

    def test_ensemble_shape(self):
        P = np.array([[0.9, 0.1], [0.2, 0.8]])
        chain = MultiLevelChain(P, [1.0, 2.0])
        traces = chain.simulate_ensemble_demand(4, 100, seed=1)
        assert traces.shape == (4, 101)

    def test_empty_ensemble(self):
        P = np.array([[1.0]])
        chain = MultiLevelChain(P, [1.0])
        assert chain.simulate_ensemble_demand(0, 10).shape == (0, 11)


class TestBirthDeath:
    def test_two_levels_is_onoff(self):
        chain = birth_death_levels([10.0, 20.0], p_up=0.01, p_down=0.09)
        onoff = OnOffChain(0.01, 0.09)
        np.testing.assert_allclose(chain.chain.transition_matrix,
                                   onoff.transition_matrix())

    def test_ramp_structure(self):
        chain = birth_death_levels([0.0, 1.0, 2.0, 3.0], p_up=0.2, p_down=0.3)
        P = chain.chain.transition_matrix
        assert P[1, 2] == pytest.approx(0.2)
        assert P[1, 0] == pytest.approx(0.3)
        assert P[1, 1] == pytest.approx(0.5)
        assert P[1, 3] == 0.0  # no level skipping
        # reflecting boundaries
        assert P[0, 0] == pytest.approx(0.8)
        assert P[3, 3] == pytest.approx(0.7)

    def test_stationary_is_geometric_in_ratio(self):
        # Birth-death detailed balance: pi_{i+1} / pi_i = p_up / p_down.
        chain = birth_death_levels([0, 1, 2], p_up=0.1, p_down=0.2)
        pi = chain.chain.stationary_distribution()
        assert pi[1] / pi[0] == pytest.approx(0.5)
        assert pi[2] / pi[1] == pytest.approx(0.5)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            birth_death_levels([0, 1], p_up=0.7, p_down=0.7)
        with pytest.raises(ValueError):
            birth_death_levels([0.0], p_up=0.1, p_down=0.1)


class TestSpikyLevels:
    def test_single_spike_is_onoff(self):
        chain = spiky_levels(10.0, [30.0], p_spike=0.01, p_recover=0.09)
        onoff = OnOffChain(0.01, 0.09)
        np.testing.assert_allclose(chain.chain.transition_matrix,
                                   onoff.transition_matrix())
        np.testing.assert_array_equal(chain.demands, [10.0, 30.0])

    def test_weights_normalized(self):
        chain = spiky_levels(0.0, [1.0, 2.0], p_spike=0.1, p_recover=0.5,
                             spike_weights=[3.0, 1.0])
        P = chain.chain.transition_matrix
        assert P[0, 1] == pytest.approx(0.075)
        assert P[0, 2] == pytest.approx(0.025)

    def test_recovery_goes_straight_to_base(self):
        chain = spiky_levels(0.0, [1.0, 2.0, 3.0], p_spike=0.2, p_recover=0.4)
        P = chain.chain.transition_matrix
        for j in (1, 2, 3):
            assert P[j, 0] == pytest.approx(0.4)
            assert P[j, j] == pytest.approx(0.6)
            # no spike-to-spike hops
            others = [x for x in (1, 2, 3) if x != j]
            assert all(P[j, o] == 0.0 for o in others)

    def test_stationary_on_fraction_matches_onoff_formula(self):
        chain = spiky_levels(0.0, [5.0, 9.0], p_spike=0.02, p_recover=0.1)
        pi = chain.chain.stationary_distribution()
        assert pi[1:].sum() == pytest.approx(0.02 / 0.12, abs=1e-10)

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            spiky_levels(0.0, [1.0, 2.0], 0.1, 0.5, spike_weights=[1.0])
        with pytest.raises(ValueError):
            spiky_levels(0.0, [1.0], 0.1, 0.5, spike_weights=[-1.0])


class TestModelMismatch:
    def test_onoff_fit_of_multilevel_workload(self):
        """Fitting the paper's two-level model to a three-magnitude spiky
        workload yields a usable approximation — with a characteristic bias:
        the two-means threshold absorbs the smallest spike magnitude into
        the OFF regime, slightly inflating R_b and undercounting p_on."""
        from repro.workload.estimation import fit_onoff

        chain = spiky_levels(10.0, [20.0, 26.0, 34.0],
                             p_spike=0.02, p_recover=0.1)
        trace = chain.simulate_demand(200_000, seed=2)
        fit = fit_onoff(trace)
        # base slightly inflated but in the right regime
        assert 10.0 <= fit.r_base <= 13.0
        # fitted peak lands between the spike magnitudes
        assert 20.0 <= fit.r_base + fit.r_extra <= 34.0
        # spike frequency undercounted (small spikes misclassified) but
        # within the right order of magnitude
        assert 0.005 <= fit.p_on <= 0.03
        # recovery rate is magnitude-independent, so p_off stays accurate
        assert fit.p_off == pytest.approx(0.1, rel=0.15)
