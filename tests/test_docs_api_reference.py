"""Docs-drift guard: every name docs/API.md promises must actually import.

The API reference is a set of per-package tables whose first column holds
backticked identifiers.  This test parses each ``## `repro.xxx` `` section,
extracts those identifiers, and resolves every one against the section's
module(s) — so renaming or removing a public symbol without updating the
docs (or documenting a symbol that does not exist) fails CI with the exact
table line that drifted.

Skipped on purpose: wildcard rows (``select_vm_*``), CLI invocations
(anything with spaces after stripping a signature), and non-identifier
fragments.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

API_MD = Path(__file__).resolve().parent.parent / "docs" / "API.md"

IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*$")


def parse_api_names() -> list[tuple[tuple[str, ...], str, int]]:
    """Yield ``(section_modules, dotted_name, line_number)`` triples."""
    entries = []
    modules: tuple[str, ...] = ()
    for lineno, line in enumerate(API_MD.read_text().splitlines(), start=1):
        if line.startswith("## "):
            modules = tuple(re.findall(r"`(repro[\w.]*)`", line))
            continue
        if not modules or not line.startswith("|"):
            continue
        first_cell = line.split("|")[1].strip()
        if not first_cell or set(first_cell) <= set("-: ") \
                or first_cell.lower() == "name":
            continue  # separator or header row
        for token in re.findall(r"`([^`]+)`", first_cell):
            token = token.split("(")[0]
            for piece in re.split(r"[/·+]", token):
                piece = piece.strip()
                if IDENTIFIER.fullmatch(piece):
                    entries.append((modules, piece, lineno))
    return entries


def resolve_name(module_names: tuple[str, ...], dotted: str):
    """Resolve ``dotted`` against any of the section's modules."""
    for module_name in module_names:
        target: object = importlib.import_module(module_name)
        try:
            for part in dotted.split("."):
                try:
                    target = getattr(target, part)
                except AttributeError:
                    # a submodule documented as `pkg.attr` (e.g.
                    # `ablations.ABLATIONS`) before anything imported it
                    target = importlib.import_module(
                        f"{module_name}.{part}")
            return target
        except (AttributeError, ImportError):
            continue
    return None


ENTRIES = parse_api_names()


def test_reference_is_parseable_and_substantial():
    """A parser regression must not silently skip the whole document."""
    assert len(ENTRIES) > 120, (
        f"only {len(ENTRIES)} names parsed from docs/API.md — "
        "did the table format change?"
    )
    sections = {mods for mods, _, _ in ENTRIES}
    flat = {m for mods in sections for m in mods}
    for expected in ("repro.core", "repro.perf", "repro.telemetry",
                     "repro.observability", "repro.simulation",
                     "repro.serving"):
        assert expected in flat, f"section for {expected} missing"


@pytest.mark.parametrize(
    "modules,name",
    sorted({(mods, name) for mods, name, _ in ENTRIES}),
    ids=lambda v: v if isinstance(v, str) else "/".join(v),
)
def test_documented_name_imports(modules, name):
    resolved = resolve_name(modules, name)
    lines = [ln for mods, n, ln in ENTRIES
             if n == name and mods == modules]
    assert resolved is not None, (
        f"docs/API.md line {lines[0]}: `{name}` is not importable from "
        f"any of {', '.join(modules)} — update the table or the package"
    )
