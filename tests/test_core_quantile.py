"""Tests for repro.core.quantile — blockless quantile reservations."""

import numpy as np
import pytest

from repro.core.quantile import (
    QuantileFFD,
    quantile_cvr,
    quantile_reservation,
    spike_sum_distribution,
)
from repro.core.types import PMSpec, VMSpec
from repro.placement.base import InsufficientCapacityError
from repro.placement.validation import check_capacity_at_base, check_placement_complete


def vm(p_on, p_off, base=10.0, extra=10.0):
    return VMSpec(p_on, p_off, base, extra)


class TestSpikeSumDistribution:
    def test_single_vm_two_point(self):
        v = vm(0.01, 0.09, extra=5.0)
        pmf, res = spike_sum_distribution([v], resolution=0.5)
        q = 0.1
        assert pmf[0] == pytest.approx(1 - q)
        assert pmf[-1] == pytest.approx(q)
        assert (pmf.size - 1) * res == pytest.approx(5.0)

    def test_two_vms_bruteforce(self):
        a = vm(0.01, 0.09, extra=2.0)   # q = 0.1
        b = vm(0.05, 0.05, extra=4.0)   # q = 0.5
        pmf, res = spike_sum_distribution([a, b], resolution=1.0)
        # atoms at 0, 2, 4, 6
        assert pmf[0] == pytest.approx(0.9 * 0.5)
        assert pmf[2] == pytest.approx(0.1 * 0.5)
        assert pmf[4] == pytest.approx(0.9 * 0.5)
        assert pmf[6] == pytest.approx(0.1 * 0.5)
        assert pmf.sum() == pytest.approx(1.0)

    def test_empty_set(self):
        pmf, _ = spike_sum_distribution([])
        np.testing.assert_array_equal(pmf, [1.0])

    def test_sizes_rounded_up(self):
        v = vm(0.5, 0.5, extra=1.01)
        pmf, res = spike_sum_distribution([v], resolution=1.0)
        assert pmf.size == 3  # 1.01 rounds up to 2 grid steps
        assert pmf[2] == pytest.approx(0.5)

    def test_zero_spike_vm_ignored(self):
        v = vm(0.5, 0.5, extra=0.0)
        pmf, _ = spike_sum_distribution([v, v])
        np.testing.assert_array_equal(pmf, [1.0])

    def test_sums_to_one_many_vms(self):
        rng = np.random.default_rng(0)
        vms = [vm(float(rng.uniform(0.01, 0.2)), float(rng.uniform(0.05, 0.3)),
                  extra=float(rng.uniform(1, 20))) for _ in range(16)]
        pmf, _ = spike_sum_distribution(vms, resolution=0.25)
        assert pmf.sum() == pytest.approx(1.0)


class TestQuantileReservation:
    def test_rho_one_reserves_nothing(self):
        assert quantile_reservation([vm(0.01, 0.09)], 1.0) == 0.0

    def test_rho_zero_reserves_everything(self):
        vms = [vm(0.01, 0.09, extra=4.0), vm(0.01, 0.09, extra=6.0)]
        assert quantile_reservation(vms, 0.0, resolution=1.0) == pytest.approx(10.0)

    def test_cvr_bound_met(self):
        rng = np.random.default_rng(1)
        vms = [vm(float(rng.uniform(0.01, 0.05)), float(rng.uniform(0.05, 0.2)),
                  extra=float(rng.uniform(1, 20))) for _ in range(10)]
        for rho in (0.3, 0.05, 0.01):
            r = quantile_reservation(vms, rho)
            assert quantile_cvr(vms, r) <= rho + 1e-12

    def test_monotone_in_rho(self):
        vms = [vm(0.02, 0.08, extra=float(e)) for e in (3, 7, 11)]
        rs = [quantile_reservation(vms, rho) for rho in (0.5, 0.1, 0.01, 0.001)]
        assert rs == sorted(rs)

    def test_never_exceeds_block_reservation(self):
        """The quantile reservation is bounded by the paper's block
        reservation for the same set (blocks over-reserve by design)."""
        from repro.core.heterogeneous import heterogeneous_blocks

        rng = np.random.default_rng(2)
        for _ in range(10):
            k = int(rng.integers(2, 12))
            vms = [vm(float(rng.uniform(0.005, 0.05)),
                      float(rng.uniform(0.05, 0.2)),
                      extra=float(rng.uniform(1, 20))) for _ in range(k)]
            K = heterogeneous_blocks(vms, 0.01)
            block_reserve = K * max(v.r_extra for v in vms)
            quant_reserve = quantile_reservation(vms, 0.01, resolution=0.1)
            assert quant_reserve <= block_reserve + 0.1 * k + 1e-9

    def test_matches_simulation(self):
        from repro.workload.onoff_generator import demand_trace, ensemble_states

        vms = [vm(0.02, 0.08, base=0.0, extra=5.0),
               vm(0.05, 0.15, base=0.0, extra=9.0),
               vm(0.01, 0.19, base=0.0, extra=13.0)]
        r = quantile_reservation(vms, 0.05, resolution=0.05)
        states = ensemble_states(vms, 200_000, start_stationary=True, seed=3)
        spike_mass = demand_trace(vms, states).sum(axis=0)
        violation = float((spike_mass > r + 1e-9).mean())
        assert violation <= 0.05 * 1.3

    def test_finer_resolution_not_looser(self):
        vms = [vm(0.02, 0.08, extra=3.3), vm(0.02, 0.08, extra=7.7)]
        coarse = quantile_reservation(vms, 0.01, resolution=1.0)
        fine = quantile_reservation(vms, 0.01, resolution=0.01)
        assert fine <= coarse + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            quantile_reservation([vm(0.1, 0.1)], 1.5)
        with pytest.raises(ValueError):
            spike_sum_distribution([vm(0.1, 0.1)], resolution=0.0)
        with pytest.raises(ValueError):
            quantile_cvr([vm(0.1, 0.1)], -1.0)


class TestQuantileFFD:
    def _instance(self, n=60, seed=0):
        from repro.workload.patterns import generate_pattern_instance

        return generate_pattern_instance("equal", n, seed=seed)

    def test_valid_complete_placement(self):
        vms, pms = self._instance()
        placement = QuantileFFD(rho=0.01, d=16).place(vms, pms)
        check_placement_complete(placement)
        check_capacity_at_base(placement, vms, pms)

    def test_packs_at_least_as_tight_as_blocks(self):
        from repro.core.queuing_ffd import QueuingFFD

        for seed in (1, 2, 3):
            vms, pms = self._instance(seed=seed)
            quant = QuantileFFD(rho=0.01, d=16).place(vms, pms)
            blocks = QueuingFFD(rho=0.01, d=16).place(vms, pms)
            assert quant.n_used_pms <= blocks.n_used_pms

    def test_simulated_cvr_bounded(self):
        from repro.analysis.cvr import evaluate_placement_cvr

        vms, pms = self._instance(n=100, seed=4)
        placement = QuantileFFD(rho=0.01, d=16).place(vms, pms)
        stats = evaluate_placement_cvr(placement, vms, pms,
                                       n_steps=40_000, seed=5)
        assert stats["mean"] <= 0.015

    def test_eq_constraint_holds_per_pm(self):
        from repro.core.quantile import quantile_reservation

        vms, pms = self._instance(n=40, seed=6)
        placer = QuantileFFD(rho=0.01, d=16)
        placement = placer.place(vms, pms)
        for pm_idx in placement.used_pms():
            members = [vms[i] for i in placement.vms_on(int(pm_idx))]
            reserve = quantile_reservation(members, 0.01, resolution=0.25)
            base = sum(v.r_base for v in members)
            assert reserve + base <= pms[int(pm_idx)].capacity + 1e-6
            assert len(members) <= 16

    def test_insufficient_capacity(self):
        with pytest.raises(InsufficientCapacityError):
            QuantileFFD(rho=0.0).place(
                [vm(0.5, 0.5, base=60.0, extra=60.0)], [PMSpec(100.0)]
            )

    def test_empty(self):
        assert QuantileFFD().place([], [PMSpec(10.0)]).n_vms == 0
