"""Overload protection: bounded inbox, typed sheds, priorities, breaker."""

import pytest

from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import PMSpec, VMSpec
from repro.placement.base import (
    REASON_FLEET_FULL,
    REASON_SHED_INBOX,
    REASON_SHED_PRIORITY,
    REASON_SHED_SOLVER,
    SHED_REASONS,
)
from repro.service.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    SolverCircuitBreaker,
)
from repro.service.service import PlacementService
from repro.service.shed import AdmissionInbox, Request
from repro.telemetry import AdmissionRejected, RingBufferSink, Telemetry

VM = VMSpec(p_on=0.1, p_off=0.5, r_base=2.0, r_extra=3.0)


def req(key, vm_class="standard"):
    return Request(key=key, vm=VM, vm_class=vm_class)


class TestInbox:
    def test_depth_never_exceeds_capacity(self):
        inbox = AdmissionInbox(4)
        sheds = [inbox.offer(req(f"k{i}")) for i in range(10)]
        assert inbox.depth == 4
        assert all(s is None for s in sheds[:4])
        assert all(s is not None for s in sheds[4:])
        assert {s.reason for s in sheds[4:]} == {REASON_SHED_INBOX}

    def test_critical_arrival_evicts_newest_batch_request(self):
        inbox = AdmissionInbox(3)
        for i in range(3):
            inbox.offer(req(f"batch{i}", "batch"))
        shed = inbox.offer(req("crit", "critical"))
        assert shed.reason == REASON_SHED_PRIORITY
        assert shed.request.key == "batch2"  # newest victim — waited least
        assert inbox.depth == 3
        assert inbox.pop().key == "crit"

    def test_equal_class_arrival_is_backpressured_not_evicting(self):
        inbox = AdmissionInbox(2)
        inbox.offer(req("s0"))
        inbox.offer(req("s1"))
        shed = inbox.offer(req("s2"))
        assert shed.reason == REASON_SHED_INBOX
        assert shed.request.key == "s2"

    def test_service_order_is_class_then_fifo(self):
        inbox = AdmissionInbox(8)
        for key, cls in [("b0", "batch"), ("s0", "standard"),
                         ("c0", "critical"), ("s1", "standard"),
                         ("c1", "critical")]:
            inbox.offer(req(key, cls))
        assert [r.key for r in inbox.drain()] == ["c0", "c1", "s0", "s1", "b0"]

    def test_unknown_class_is_rejected_at_the_type(self):
        with pytest.raises(ValueError, match="vm_class"):
            req("x", "turbo")


class TestServiceSheds:
    def test_fleet_full_sheds_are_typed_and_journaled(self, tmp_path):
        sink = RingBufferSink()
        svc = PlacementService([PMSpec(8.0)],  # one tiny PM
                               wal_path=tmp_path / "wal.jsonl",
                               telemetry=Telemetry(sink))
        for i in range(6):
            svc.submit(f"k{i}", VM)
        svc.drain()
        sheds = [o for o in svc.results.values() if o["op"] == "shed"]
        assert sheds and all(o["reason"] == REASON_FLEET_FULL for o in sheds)
        assert svc.counters["admitted"] + svc.counters["shed"] == 6
        rejects = [e for e in sink.events if isinstance(e, AdmissionRejected)]
        assert len(rejects) == len(sheds)
        assert all(e.reason in SHED_REASONS for e in rejects)
        assert all(e.active_pms == 1 for e in rejects)
        # shed decisions are in the WAL, so a recovered service remembers
        recovered = PlacementService.recover(
            [PMSpec(8.0)], wal_path=tmp_path / "wal.jsonl")
        assert recovered.counters["shed"] == svc.counters["shed"]

    def test_inbox_overflow_sheds_before_placement(self, tmp_path):
        svc = PlacementService([PMSpec(100.0)] * 4,
                               wal_path=tmp_path / "wal.jsonl",
                               inbox_capacity=2)
        outcomes = [svc.submit(f"k{i}", VM) for i in range(5)]
        # the three overflow arrivals were decided (shed) synchronously
        assert [o["reason"] for o in outcomes[2:]] \
            == [REASON_SHED_INBOX] * 3
        assert svc.inbox.depth == 2
        svc.drain()
        assert svc.counters["admitted"] == 2
        assert svc.counters["shed"] == 3


class FailingPlacer(QueuingFFD):
    """A placer whose MapCal solve can be switched off."""

    def __init__(self):
        super().__init__(rho=0.01, d=8)
        self.broken = True

    def mapping_for(self, vms):
        if self.broken:
            raise RuntimeError("solver down")
        return super().mapping_for(vms)


class TestBreaker:
    def test_opens_after_threshold_and_reprobes_after_cooldown(self):
        breaker = SolverCircuitBreaker(failure_threshold=2, cooldown=5)
        boom = RuntimeError("nope")

        def solve():
            raise boom

        for seq in (1, 2):
            result, degraded = breaker.call(seq, solve, fallback="stale")
            assert (result, degraded) == ("stale", True)
        assert breaker.state == STATE_OPEN
        # open: solves skipped outright, staleness climbs
        _, degraded = breaker.call(3, lambda: "fresh", fallback="stale")
        assert degraded and breaker.staleness == 3
        # past the cooldown the probe runs; success closes and resets
        result, degraded = breaker.call(2 + 5, lambda: "fresh")
        assert (result, degraded) == ("fresh", False)
        assert breaker.state == STATE_CLOSED
        assert breaker.staleness == 0

    def test_half_open_failure_reopens(self):
        breaker = SolverCircuitBreaker(failure_threshold=1, cooldown=4)

        def solve():
            raise RuntimeError("still down")

        breaker.call(1, solve)
        assert breaker.state == STATE_OPEN
        assert breaker.allow(5)  # transitions to half-open for the probe
        assert breaker.state == STATE_HALF_OPEN
        breaker.call(5, solve)
        assert breaker.state == STATE_OPEN
        assert breaker.opened_at == 5

    def test_first_arrival_with_dead_solver_sheds_typed(self, tmp_path):
        svc = PlacementService([PMSpec(100.0)] * 2, FailingPlacer(),
                               wal_path=tmp_path / "wal.jsonl")
        svc.submit("k0", VM)
        svc.drain()
        assert svc.results["k0"] == {"op": "shed",
                                     "reason": REASON_SHED_SOLVER, "seq": 1}

    def test_degrades_to_last_known_good_mapping(self, tmp_path):
        placer = FailingPlacer()
        placer.broken = False
        svc = PlacementService([PMSpec(100.0)] * 2, placer,
                               wal_path=tmp_path / "wal.jsonl")
        svc.submit("k0", VM)
        svc.drain()  # healthy solve built the mapping
        placer.broken = True
        assert svc.recalibrate("recal-bad") is False  # degraded, not raised
        assert svc.breaker.staleness >= 1
        # admissions still succeed on the stale mapping
        svc.submit("k1", VM)
        svc.drain()
        assert svc.results["k1"]["op"] == "admit"
        assert svc.metrics()["staleness"] >= 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SolverCircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            SolverCircuitBreaker(cooldown=0)
