"""Tests for engine, monitor and energy model."""

import numpy as np
import pytest

from repro.core.types import Placement, PMSpec, VMSpec
from repro.simulation.datacenter import Datacenter
from repro.simulation.energy import EnergyModel
from repro.simulation.engine import SimulationEngine
from repro.simulation.migration import MigrationEvent
from repro.simulation.monitor import Monitor


class TestEngine:
    def test_hooks_run_in_order_with_time(self):
        engine = SimulationEngine()
        calls = []
        engine.add_hook("a", lambda t: calls.append(("a", t)))
        engine.add_hook("b", lambda t: calls.append(("b", t)))
        engine.run(2)
        assert calls == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]
        assert engine.time == 2

    def test_duplicate_hook_name_rejected(self):
        engine = SimulationEngine()
        engine.add_hook("x", lambda t: None)
        with pytest.raises(ValueError, match="already registered"):
            engine.add_hook("x", lambda t: None)

    def test_remove_hook(self):
        engine = SimulationEngine()
        calls = []
        engine.add_hook("x", lambda t: calls.append(t))
        engine.remove_hook("x")
        engine.run(3)
        assert calls == []
        with pytest.raises(KeyError):
            engine.remove_hook("x")

    def test_time_accumulates_across_runs(self):
        engine = SimulationEngine()
        seen = []
        engine.add_hook("x", lambda t: seen.append(t))
        engine.run(2)
        engine.run(2)
        assert seen == [0, 1, 2, 3]

    def test_exceptions_propagate(self):
        engine = SimulationEngine()

        def boom(t):
            raise RuntimeError("invariant failed")

        engine.add_hook("boom", boom)
        with pytest.raises(RuntimeError, match="invariant"):
            engine.run(1)

    def test_zero_intervals(self):
        engine = SimulationEngine()
        engine.run(0)
        assert engine.time == 0


class TestMonitor:
    def _dc(self):
        vms = [VMSpec(0.01, 0.09, 60.0, 50.0), VMSpec(0.01, 0.09, 10.0, 5.0)]
        pms = [PMSpec(100.0), PMSpec(100.0), PMSpec(100.0)]
        placement = Placement(2, 3, assignment=np.array([0, 1]))
        return Datacenter(vms, pms, placement, seed=0)

    def test_presence_and_violations(self):
        dc = self._dc()
        monitor = Monitor(3)
        monitor.record_interval(dc, [])
        dc._on[0] = True
        dc.vms[0].on = True  # PM0 load 110 > 100
        monitor.record_interval(dc, [])
        record = monitor.finalize()
        np.testing.assert_array_equal(record.violation_counts, [1, 0, 0])
        np.testing.assert_array_equal(record.presence_counts, [2, 2, 0])
        np.testing.assert_allclose(record.cvr_per_pm(), [0.5, 0.0, 0.0])

    def test_migration_accounting(self):
        dc = self._dc()
        monitor = Monitor(3)
        ev = MigrationEvent(time=0, vm_id=0, source_pm=0, target_pm=2)
        monitor.record_interval(dc, [ev, ev])
        monitor.record_interval(dc, [])
        record = monitor.finalize()
        assert record.total_migrations == 2
        np.testing.assert_array_equal(record.migrations_per_interval, [2, 0])
        np.testing.assert_array_equal(record.cumulative_migrations, [2, 2])

    def test_pms_used_series(self):
        dc = self._dc()
        monitor = Monitor(3)
        monitor.record_interval(dc, [])
        record = monitor.finalize()
        np.testing.assert_array_equal(record.pms_used_series, [2])
        assert record.final_pms_used == 2

    def test_mismatched_fleet_rejected(self):
        monitor = Monitor(2)
        with pytest.raises(ValueError, match="built for 2"):
            monitor.record_interval(self._dc(), [])

    def test_empty_record(self):
        record = Monitor(1).finalize()
        assert record.final_pms_used == 0
        assert record.total_migrations == 0

    def test_invalid_n_pms(self):
        with pytest.raises(ValueError):
            Monitor(0)


class TestEnergyModel:
    def test_idle_and_peak_endpoints(self):
        m = EnergyModel(idle_power=100.0, peak_power=200.0)
        assert m.pm_power(0.0, 50.0) == 100.0
        assert m.pm_power(50.0, 50.0) == 200.0
        assert m.pm_power(25.0, 50.0) == 150.0

    def test_powered_off_draws_nothing(self):
        m = EnergyModel()
        assert m.pm_power(10.0, 50.0, powered_on=False) == 0.0

    def test_load_clipped_to_capacity(self):
        m = EnergyModel(100.0, 200.0)
        assert m.pm_power(80.0, 50.0) == 200.0

    def test_fleet_power(self):
        m = EnergyModel(100.0, 200.0)
        loads = np.array([0.0, 25.0, 50.0])
        caps = np.array([50.0, 50.0, 50.0])
        on = np.array([True, True, False])
        assert m.fleet_power(loads, caps, on) == pytest.approx(100.0 + 150.0)

    def test_fleet_shape_mismatch(self):
        m = EnergyModel()
        with pytest.raises(ValueError):
            m.fleet_power(np.zeros(2), np.ones(3), np.ones(3, dtype=bool))

    def test_run_energy(self):
        m = EnergyModel(100.0, 200.0)
        series = np.array([2, 2, 1])
        # mean_utilization 0.5 -> 150 W per PM
        assert m.run_energy(series, interval_seconds=10.0) == pytest.approx(
            5 * 150.0 * 10.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(idle_power=300.0, peak_power=200.0)
        m = EnergyModel()
        with pytest.raises(ValueError):
            m.pm_power(1.0, 0.0)
        with pytest.raises(ValueError):
            m.run_energy(np.array([1]), interval_seconds=10.0, mean_utilization=1.5)
