"""Tests for repro.utils.validation."""

import math

import pytest

from repro.utils.validation import (
    check_in_range,
    check_integer,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckProbability:
    @pytest.mark.parametrize("v", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, v):
        assert check_probability(v, "p") == v

    @pytest.mark.parametrize("v", [-0.1, 1.1, math.nan])
    def test_rejects_invalid(self, v):
        with pytest.raises(ValueError):
            check_probability(v, "p")

    def test_open_lower_endpoint(self):
        with pytest.raises(ValueError, match=r"\(0"):
            check_probability(0.0, "p", allow_zero=False)
        assert check_probability(1e-9, "p", allow_zero=False) == 1e-9

    def test_open_upper_endpoint(self):
        with pytest.raises(ValueError, match=r"1\)"):
            check_probability(1.0, "p", allow_one=False)

    def test_rejects_bool_and_str(self):
        with pytest.raises(TypeError):
            check_probability(True, "p")
        with pytest.raises(TypeError):
            check_probability("0.5", "p")

    def test_error_names_the_argument(self):
        with pytest.raises(ValueError, match="my_prob"):
            check_probability(2.0, "my_prob")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(3.5, "x") == 3.5

    @pytest.mark.parametrize("v", [0.0, -1.0, math.inf, math.nan])
    def test_rejects(self, v):
        with pytest.raises(ValueError):
            check_positive(v, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-1e-9, "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_non_negative(math.inf, "x")


class TestCheckInRange:
    def test_inclusive_endpoints(self):
        assert check_in_range(2.0, "x", 2.0, 3.0) == 2.0
        assert check_in_range(3.0, "x", 2.0, 3.0) == 3.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(1.9, "x", 2.0, 3.0)
        with pytest.raises(ValueError):
            check_in_range(3.1, "x", 2.0, 3.0)


class TestCheckInteger:
    def test_accepts_int(self):
        assert check_integer(5, "n") == 5

    def test_rejects_float_and_bool(self):
        with pytest.raises(TypeError):
            check_integer(5.0, "n")
        with pytest.raises(TypeError):
            check_integer(True, "n")

    def test_bounds(self):
        assert check_integer(5, "n", minimum=5, maximum=5) == 5
        with pytest.raises(ValueError, match=">= 6"):
            check_integer(5, "n", minimum=6)
        with pytest.raises(ValueError, match="<= 4"):
            check_integer(5, "n", maximum=4)

    def test_numpy_integer_accepted(self):
        import numpy as np

        assert check_integer(np.int64(7), "n") == 7


class TestTables:
    def test_format_table_alignment(self):
        from repro.utils.tables import format_table

        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "2.500" in out and "0.125" in out
        assert len(lines) == 4

    def test_format_table_title_and_floatfmt(self):
        from repro.utils.tables import format_table

        out = format_table(["x"], [[1.23456]], floatfmt=".1f", title="T")
        assert out.splitlines()[0] == "T"
        assert "1.2" in out and "1.23" not in out

    def test_format_table_rejects_ragged_rows(self):
        from repro.utils.tables import format_table

        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])
