"""GRAND greedy-random placement: determinism, feasibility, spreading."""

import pytest

from repro.core.online import OnlineConsolidator
from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import PMSpec, VMSpec
from repro.placement.grand import GreedyRandomPlacer, hash_pick
from repro.service.service import PlacementService

VM = VMSpec(p_on=0.1, p_off=0.5, r_base=2.0, r_extra=3.0)


class TestHashPick:
    def test_deterministic_and_in_range(self):
        for seed in (0, 1, 42):
            for seq in range(50):
                pick = hash_pick(seed, seq, 7)
                assert 0 <= pick < 7
                assert pick == hash_pick(seed, seq, 7)

    def test_varies_with_seq_and_seed(self):
        picks_by_seq = {hash_pick(0, seq, 10) for seq in range(40)}
        assert len(picks_by_seq) > 1
        picks_by_seed = {hash_pick(seed, 5, 10) for seed in range(40)}
        assert len(picks_by_seed) > 1

    def test_single_choice_is_forced(self):
        assert hash_pick(3, 9, 1) == 0


class TestChooseFor:
    def test_choice_is_a_feasible_member(self):
        placer = GreedyRandomPlacer(rho=0.01, d=8, seed=5)
        feasible = [2, 4, 7, 9]
        for seq in range(20):
            assert placer.choose_for(seq)(feasible) in feasible

    def test_same_seed_same_sequence(self):
        a = GreedyRandomPlacer(rho=0.01, d=8, seed=5)
        b = GreedyRandomPlacer(rho=0.01, d=8, seed=5)
        feasible = list(range(6))
        assert [a.choose_for(s)(feasible) for s in range(30)] \
            == [b.choose_for(s)(feasible) for s in range(30)]

    def test_different_seed_diverges(self):
        a = GreedyRandomPlacer(rho=0.01, d=8, seed=1)
        b = GreedyRandomPlacer(rho=0.01, d=8, seed=2)
        feasible = list(range(6))
        assert [a.choose_for(s)(feasible) for s in range(30)] \
            != [b.choose_for(s)(feasible) for s in range(30)]


class TestPlacement:
    def test_every_placement_respects_eq17(self):
        placer = GreedyRandomPlacer(rho=0.01, d=8, seed=3)
        consolidator = OnlineConsolidator([PMSpec(20.0)] * 6, placer)
        for i in range(15):
            consolidator.admit(VM, choose=placer.choose_for(i))
        for j in range(consolidator.n_pms):
            state = consolidator.state_of(j)
            assert state.committed <= state.spec.capacity + 1e-9

    def test_spreads_at_least_as_wide_as_first_fit(self, tmp_path):
        def used_pms(placer, workdir):
            svc = PlacementService([PMSpec(20.0)] * 8, placer,
                                   wal_path=workdir / "wal.jsonl")
            for i in range(10):
                svc.submit(f"k{i}", VM)
            svc.drain()
            return svc.consolidator.n_used_pms

        ff = used_pms(QueuingFFD(rho=0.01, d=8), tmp_path / "ff")
        grand = used_pms(GreedyRandomPlacer(rho=0.01, d=8, seed=3),
                         tmp_path / "gr")
        assert grand >= ff  # uniform choice never packs tighter than FF

    def test_service_runs_are_deterministic(self, tmp_path):
        def run(workdir):
            svc = PlacementService(
                [PMSpec(20.0)] * 8,
                GreedyRandomPlacer(rho=0.01, d=8, seed=11),
                wal_path=workdir / "wal.jsonl")
            for i in range(12):
                svc.submit(f"k{i}", VM)
            svc.drain()
            return svc.consolidator.state_fingerprint()

        assert run(tmp_path / "a") == run(tmp_path / "b")

    def test_name_and_defaults(self):
        placer = GreedyRandomPlacer()
        assert placer.name == "GRAND"
        assert placer.seed == 0

    def test_batch_placement_matches_online_invariants(self):
        placer = GreedyRandomPlacer(rho=0.01, d=8, seed=7)
        vms = [VM] * 10
        mapping = placer.place(vms, [PMSpec(20.0)] * 8)
        loads = {}
        for v, pm in enumerate(mapping.assignment):
            assert pm >= 0
            loads[pm] = loads.get(pm, 0) + 1
        assert sum(loads.values()) == 10

    def test_infeasible_batch_raises(self):
        placer = GreedyRandomPlacer(rho=0.01, d=8, seed=7)
        with pytest.raises(Exception):
            placer.place([VM] * 100, [PMSpec(6.0)])
