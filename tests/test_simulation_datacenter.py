"""Tests for repro.simulation.datacenter."""

import numpy as np
import pytest

from repro.core.types import Placement, PMSpec, VMSpec
from repro.simulation.datacenter import Datacenter

P_ON, P_OFF = 0.01, 0.09


def vm(base, extra, p_on=P_ON, p_off=P_OFF):
    return VMSpec(p_on, p_off, base, extra)


def build_dc(seed=0):
    vms = [vm(10, 5), vm(20, 10), vm(5, 5)]
    pms = [PMSpec(50.0), PMSpec(50.0), PMSpec(50.0)]
    placement = Placement(3, 3, assignment=np.array([0, 0, 1]))
    return Datacenter(vms, pms, placement, seed=seed), vms, pms


class TestConstruction:
    def test_vm_ids_registered_on_pms(self):
        dc, _, _ = build_dc()
        assert dc.pms[0].vm_ids == {0, 1}
        assert dc.pms[1].vm_ids == {2}
        assert dc.pms[2].vm_ids == set()

    def test_rejects_incomplete_placement(self):
        vms = [vm(1, 1)]
        pms = [PMSpec(10.0)]
        with pytest.raises(ValueError, match="place every VM"):
            Datacenter(vms, pms, Placement(1, 1))

    def test_rejects_dimension_mismatch(self):
        vms = [vm(1, 1)]
        pms = [PMSpec(10.0)]
        placement = Placement(2, 1, assignment=np.array([0, 0]))
        with pytest.raises(ValueError, match="instance has"):
            Datacenter(vms, pms, placement)

    def test_all_off_initially(self):
        dc, _, _ = build_dc()
        assert not any(v.on for v in dc.vms)

    def test_stationary_start(self):
        vms = [vm(1, 1)] * 5000
        pms = [PMSpec(1e9)]
        placement = Placement(5000, 1, assignment=np.zeros(5000, dtype=int))
        dc = Datacenter(vms, pms, placement, seed=0, start_stationary=True)
        on_frac = np.mean([v.on for v in dc.vms])
        assert on_frac == pytest.approx(0.1, abs=0.02)

    def test_placement_copied(self):
        dc, _, _ = build_dc()
        original = Placement(3, 3, assignment=np.array([0, 0, 1]))
        dc2 = Datacenter([vm(1, 1)] * 3, [PMSpec(50.0)] * 3, original, seed=0)
        dc2.migrate(0, 2)
        assert original.pm_of(0) == 0


class TestLoads:
    def test_pm_load_all_off(self):
        dc, _, _ = build_dc()
        assert dc.pm_load(0) == pytest.approx(30.0)
        assert dc.pm_load(1) == pytest.approx(5.0)
        assert dc.pm_load(2) == 0.0

    def test_pm_loads_vector_matches_scalar(self):
        dc, _, _ = build_dc()
        dc.step()
        loads = dc.pm_loads()
        for j in range(3):
            assert loads[j] == pytest.approx(dc.pm_load(j))

    def test_demand_reflects_state(self):
        dc, _, _ = build_dc()
        dc.vms[0].on = True
        dc._on[0] = True
        assert dc.pm_load(0) == pytest.approx(35.0)

    def test_base_loads_state_independent(self):
        dc, _, _ = build_dc()
        base_before = dc.pm_base_loads().copy()
        for _ in range(20):
            dc.step()
        np.testing.assert_allclose(dc.pm_base_loads(), base_before)

    def test_overloaded_pms(self):
        vms = [vm(30, 30), vm(30, 30)]
        pms = [PMSpec(70.0)]
        placement = Placement(2, 1, assignment=np.array([0, 0]))
        dc = Datacenter(vms, pms, placement, seed=0)
        assert dc.overloaded_pms().size == 0
        dc._on[:] = True
        for v in dc.vms:
            v.on = True
        np.testing.assert_array_equal(dc.overloaded_pms(), [0])

    def test_used_pm_count(self):
        dc, _, _ = build_dc()
        assert dc.used_pm_count() == 2


class TestDynamics:
    def test_step_updates_runtime_objects(self):
        dc, _, _ = build_dc(seed=42)
        for _ in range(200):
            dc.step()
        flags = np.array([v.on for v in dc.vms])
        np.testing.assert_array_equal(flags, dc._on)

    def test_long_run_on_fraction(self):
        vms = [vm(1, 1)] * 50
        pms = [PMSpec(1e9)]
        placement = Placement(50, 1, assignment=np.zeros(50, dtype=int))
        dc = Datacenter(vms, pms, placement, seed=1)
        on_counts = []
        for _ in range(20_000):
            dc.step()
            on_counts.append(dc._on.sum())
        assert np.mean(on_counts) / 50 == pytest.approx(0.1, abs=0.01)

    def test_reproducible(self):
        a, _, _ = build_dc(seed=7)
        b, _, _ = build_dc(seed=7)
        for _ in range(100):
            a.step()
            b.step()
        np.testing.assert_array_equal(a._on, b._on)


class TestMigrate:
    def test_migrate_moves_vm(self):
        dc, _, _ = build_dc()
        src = dc.migrate(0, 2)
        assert src == 0
        assert dc.placement.pm_of(0) == 2
        assert 0 not in dc.pms[0].vm_ids
        assert 0 in dc.pms[2].vm_ids

    def test_migrate_preserves_load_total(self):
        dc, _, _ = build_dc()
        total_before = dc.pm_loads().sum()
        dc.migrate(1, 2)
        assert dc.pm_loads().sum() == pytest.approx(total_before)
