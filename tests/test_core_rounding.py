"""Tests for repro.core.rounding."""

import pytest

from repro.core.rounding import round_switch_probabilities
from repro.core.types import VMSpec


def vms_hetero():
    return [
        VMSpec(0.01, 0.10, 1.0, 1.0),
        VMSpec(0.03, 0.06, 1.0, 1.0),
        VMSpec(0.02, 0.08, 1.0, 1.0),
    ]


class TestRounding:
    def test_mean(self):
        p_on, p_off = round_switch_probabilities(vms_hetero(), "mean")
        assert p_on == pytest.approx(0.02)
        assert p_off == pytest.approx(0.08)

    def test_conservative(self):
        p_on, p_off = round_switch_probabilities(vms_hetero(), "conservative")
        assert p_on == 0.03   # max spike frequency
        assert p_off == 0.06  # min end-probability = longest spikes

    def test_median(self):
        p_on, p_off = round_switch_probabilities(vms_hetero(), "median")
        assert p_on == 0.02
        assert p_off == 0.08

    def test_uniform_input_is_identity(self):
        vms = [VMSpec(0.01, 0.09, 1.0, 1.0)] * 3
        for rule in ("mean", "conservative", "median"):
            p_on, p_off = round_switch_probabilities(vms, rule)
            assert p_on == pytest.approx(0.01)
            assert p_off == pytest.approx(0.09)

    def test_conservative_dominates_on_fraction(self):
        # Conservative rounding can only overstate the stationary ON prob.
        vms = vms_hetero()
        c_on, c_off = round_switch_probabilities(vms, "conservative")
        q_cons = c_on / (c_on + c_off)
        for v in vms:
            assert q_cons >= v.p_on / (v.p_on + v.p_off) - 1e-12

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            round_switch_probabilities([], "mean")

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            round_switch_probabilities(vms_hetero(), "mode")
