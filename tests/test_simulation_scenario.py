"""Tests for repro.simulation.scenario — the high-level facade."""

import numpy as np
import pytest

from repro.core.queuing_ffd import QueuingFFD
from repro.placement.ffd import ffd_by_base, ffd_by_peak
from repro.simulation.costmodel import MigrationCostModel
from repro.simulation.energy import EnergyModel
from repro.simulation.scenario import Scenario, ScenarioReport, compare_scenarios
from repro.simulation.triggers import SlidingWindowCVRTrigger
from repro.workload.patterns import generate_pattern_instance


@pytest.fixture(scope="module")
def instance():
    return generate_pattern_instance("equal", 60, seed=11)


class TestScenario:
    def test_basic_run_produces_full_report(self, instance):
        vms, pms = instance
        report = Scenario(vms, pms, placer=QueuingFFD(rho=0.01, d=16)).run(
            50, seed=1
        )
        assert isinstance(report, ScenarioReport)
        assert report.initial_pms_used > 0
        assert report.record.n_intervals == 50
        assert 0.0 <= report.mean_cvr <= report.max_cvr <= 1.0
        assert set(report.fairness) == {"n", "total", "jain", "gini",
                                        "max_share"}
        assert report.energy_joules is None
        assert report.migration_downtime_seconds is None
        assert report.failures is None

    def test_reproducible(self, instance):
        vms, pms = instance
        a = Scenario(vms, pms, placer=ffd_by_base(max_vms_per_pm=16)).run(
            60, seed=3)
        b = Scenario(vms, pms, placer=ffd_by_base(max_vms_per_pm=16)).run(
            60, seed=3)
        assert a.total_migrations == b.total_migrations
        np.testing.assert_array_equal(a.record.pms_used_series,
                                      b.record.pms_used_series)

    def test_cost_model_prices_migrations(self, instance):
        vms, pms = instance
        report = Scenario(
            vms, pms, placer=ffd_by_base(max_vms_per_pm=16),
            cost_model=MigrationCostModel(),
        ).run(100, seed=4)
        assert report.migration_downtime_seconds is not None
        if report.total_migrations:
            assert report.migration_downtime_seconds > 0

    def test_energy_accounting(self, instance):
        vms, pms = instance
        report = Scenario(
            vms, pms, placer=QueuingFFD(rho=0.01, d=16),
            energy_model=EnergyModel(150.0, 300.0), interval_seconds=30.0,
        ).run(20, seed=5)
        # >= initial PMs x idle power x 20 intervals x 30 s
        floor = report.initial_pms_used * 150.0 * 20 * 30.0
        assert report.energy_joules >= floor * 0.9

    def test_failure_injection(self, instance):
        vms, pms = instance
        report = Scenario(
            vms, pms, placer=QueuingFFD(rho=0.01, d=16),
            failures={"failure_probability": 0.05, "repair_probability": 0.2},
        ).run(80, seed=6)
        assert report.failures is not None
        assert report.failures.failures > 0

    def test_trigger_forwarded(self, instance):
        vms, pms = instance
        report = Scenario(
            vms, pms, placer=ffd_by_base(max_vms_per_pm=16),
            trigger=SlidingWindowCVRTrigger(len(pms), rho=0.95, window=20),
        ).run(100, seed=7)
        baseline = Scenario(
            vms, pms, placer=ffd_by_base(max_vms_per_pm=16),
        ).run(100, seed=7)
        assert report.total_migrations <= baseline.total_migrations

    def test_summary_is_readable(self, instance):
        vms, pms = instance
        report = Scenario(
            vms, pms, placer=QueuingFFD(rho=0.01, d=16),
            energy_model=EnergyModel(), failures=True,
            cost_model=MigrationCostModel(),
        ).run(30, seed=8)
        text = report.summary()
        for token in ("PMs:", "migrations:", "CVR:", "fairness", "energy",
                      "failures:"):
            assert token in text

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario([], [], placer=QueuingFFD())


class TestCompareScenarios:
    def test_shared_randomness_comparison(self, instance):
        vms, pms = instance
        reports = compare_scenarios(
            vms, pms,
            {"QUEUE": QueuingFFD(rho=0.01, d=16),
             "RB": ffd_by_base(max_vms_per_pm=16),
             "RP": ffd_by_peak(max_vms_per_pm=16)},
            n_intervals=100, seed=9,
        )
        assert set(reports) == {"QUEUE", "RB", "RP"}
        assert reports["RP"].total_migrations == 0
        assert reports["RB"].total_migrations >= reports["QUEUE"].total_migrations
        assert reports["RB"].initial_pms_used <= reports["QUEUE"].initial_pms_used
