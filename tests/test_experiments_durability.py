"""The durable bench runner: retries, quarantine, journal, chaos, resume."""

from __future__ import annotations

import json

import pytest

from repro.experiments.durability import (
    BenchRetryPolicy,
    ChaosConfig,
    JobJournal,
    run_durable_bench,
)
from repro.perf.bench import run_bench
from repro.telemetry import BenchJobFinished, Telemetry, tracing

#: retry policy with test-speed backoffs (shape identical to the default)
FAST_RETRY = BenchRetryPolicy(base_backoff_seconds=0.02,
                              max_backoff_seconds=0.08, max_attempts=3)


def _durable(output_dir, **kwargs):
    kwargs.setdefault("parallel", 1)
    kwargs.setdefault("retry", FAST_RETRY)
    kwargs.setdefault("job_timeout", 120.0)
    kwargs.setdefault("heartbeat_timeout", 60.0)
    return run_durable_bench(
        kwargs.pop("pattern", "table1"), output_dir=output_dir, **kwargs)


def _journal_kinds(run_dir):
    events, skipped = JobJournal.read(run_dir / "journal.jsonl")
    return [e.kind for e in events], skipped


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        p = BenchRetryPolicy(base_backoff_seconds=1.0,
                             max_backoff_seconds=8.0, max_attempts=5)
        assert [p.backoff(n) for n in (1, 2, 3, 4, 5)] == [1, 2, 4, 8, 8]

    def test_mirrors_migration_retry_policy_shape(self):
        # Same capped-doubling law as the simulator's RetryPolicy — a
        # deliberate symmetry between sim-time and wall-clock recovery.
        from repro.simulation.migration import RetryPolicy
        sim = RetryPolicy(base_backoff_intervals=1, max_backoff_intervals=8)
        wall = BenchRetryPolicy(base_backoff_seconds=1.0,
                                max_backoff_seconds=8.0)
        for n in range(1, 6):
            assert wall.backoff(n) == sim.backoff(n)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            BenchRetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="base_backoff_seconds"):
            BenchRetryPolicy(base_backoff_seconds=-1.0)
        with pytest.raises(ValueError, match="max_backoff_seconds"):
            BenchRetryPolicy(base_backoff_seconds=2.0,
                             max_backoff_seconds=1.0)


class TestChaosConfig:
    def test_parse_round_trips(self):
        c = ChaosConfig.parse("kill-worker:p=0.2,stall:p=0.1", seed=7)
        assert c.kill_worker_p == 0.2 and c.stall_p == 0.1 and c.seed == 7
        assert ChaosConfig.parse(c.spec(), seed=7) == c

    def test_timeout_aliases_stall(self):
        assert ChaosConfig.parse("timeout:p=0.3").stall_p == 0.3

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown chaos mode"):
            ChaosConfig.parse("explode:p=0.5")
        with pytest.raises(ValueError, match="needs a probability"):
            ChaosConfig.parse("kill-worker")
        with pytest.raises(ValueError, match="invalid chaos probability"):
            ChaosConfig.parse("kill-worker:p=lots")
        with pytest.raises(ValueError, match=r"in \[0, 1\]"):
            ChaosConfig.parse("kill-worker:p=1.5")

    def test_draws_are_deterministic_and_attempt_sensitive(self):
        c = ChaosConfig(kill_worker_p=0.5, seed=1)
        assert (c.draw("fig9", 1, "kill-worker")
                == c.draw("fig9", 1, "kill-worker"))
        draws = {c.draw("fig9", a, "kill-worker") for a in range(1, 30)}
        assert draws == {True, False}  # both outcomes occur across attempts

    def test_zero_probability_never_fires(self):
        c = ChaosConfig()
        assert not any(c.draw("x", a, m)
                       for a in range(1, 10)
                       for m in ("kill-worker", "stall"))


class TestJournal:
    def test_append_and_tolerant_read(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        j = JobJournal(path)
        j.append(BenchJobFinished(time=0, job="a", seconds=1.0, ok=True,
                                  error="", rows_sha256="ff" * 32, seed=7))
        j.close()
        events, skipped = JobJournal.read(path)
        assert skipped == 0
        assert events[0].job == "a" and events[0].seed == 7

    def test_torn_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        j = JobJournal(path)
        j.append(BenchJobFinished(time=0, job="a", seconds=1.0, ok=True,
                                  error="", rows_sha256="ff" * 32))
        j.close()
        with open(path, "a") as fh:
            fh.write('{"kind": "bench_job_fini')  # crash mid-append
        events, skipped = JobJournal.read(path)
        assert len(events) == 1 and skipped == 1


class TestDurableRun:
    def test_clean_run_matches_serial_byte_for_byte(self, tmp_path):
        run_bench("table1", output_dir=tmp_path / "serial")
        report = _durable(tmp_path / "durable", parallel=2)
        assert [r.ok for r in report.results] == [True]
        assert not report.retried and not report.quarantined
        assert ((tmp_path / "serial" / "BENCH_results.json").read_bytes()
                == (tmp_path / "durable" / "BENCH_results.json").read_bytes())
        assert ((tmp_path / "serial" / "table1.txt").read_bytes()
                == (tmp_path / "durable" / "table1.txt").read_bytes())

    def test_killed_worker_is_retried_to_success(self, tmp_path):
        # pick p between the attempt-1 and attempt-2 draws so exactly the
        # first attempt dies — the deterministic-chaos way to script a fault
        probe = ChaosConfig(kill_worker_p=1.0, seed=0)
        u = {a: __import__("zlib").crc32(
                f"0:table1:{a}:kill-worker".encode()) / 2**32
             for a in (1, 2)}
        assert probe.draw("table1", 1, "kill-worker")
        p = (u[1] + u[2]) / 2 if u[1] < u[2] else u[1] * 0.999
        chaos = ChaosConfig(kill_worker_p=p, seed=0)
        if not (chaos.draw("table1", 1, "kill-worker")
                and not chaos.draw("table1", 2, "kill-worker")):
            pytest.skip("draw layout does not isolate attempt 1")
        report = _durable(tmp_path, chaos=chaos)
        assert report.retried == 1 and not report.quarantined
        assert report.results[0].ok
        kinds, _ = _journal_kinds(tmp_path)
        assert kinds == ["bench_run_started", "bench_job_started",
                         "job_retried", "bench_job_started",
                         "bench_job_finished"]

    def test_poison_job_quarantined(self, tmp_path):
        report = _durable(tmp_path, chaos=ChaosConfig(kill_worker_p=1.0),
                          retry=BenchRetryPolicy(base_backoff_seconds=0.02,
                                                 max_backoff_seconds=0.04,
                                                 max_attempts=2))
        assert report.quarantined == ["table1"]
        (result,) = report.results
        assert not result.ok and "quarantined after 2 attempts" in result.error
        kinds, _ = _journal_kinds(tmp_path)
        assert kinds.count("bench_job_started") == 2
        assert kinds[-1] == "job_quarantined"
        summary = json.loads((tmp_path / "BENCH_results.json").read_text())
        assert summary["jobs"]["table1"]["ok"] is False

    def test_recovery_counts_reach_telemetry_metrics(self, tmp_path):
        tel = Telemetry()
        with tracing(tel):
            _durable(tmp_path, chaos=ChaosConfig(kill_worker_p=1.0),
                     retry=BenchRetryPolicy(base_backoff_seconds=0.02,
                                            max_backoff_seconds=0.04,
                                            max_attempts=2))
        metrics = json.loads(tel.metrics.to_json())
        assert metrics["bench_jobs_retried_total"]["value"] == 1
        assert metrics["bench_jobs_quarantined_total"]["value"] == 1

    def test_rejects_bad_arguments(self, tmp_path):
        with pytest.raises(ValueError, match="parallel"):
            _durable(tmp_path, parallel=0)
        with pytest.raises(ValueError, match="no experiment matches"):
            _durable(tmp_path, pattern="zzz*")
        with pytest.raises(FileNotFoundError, match="nothing to resume"):
            run_durable_bench(output_dir=tmp_path / "missing", resume=True)


class TestResume:
    def test_resume_after_quarantine_is_byte_identical_to_clean(
            self, tmp_path):
        run_bench("table1", output_dir=tmp_path / "clean")
        run_dir = tmp_path / "run"
        crashed = _durable(run_dir, chaos=ChaosConfig(kill_worker_p=1.0),
                           retry=BenchRetryPolicy(base_backoff_seconds=0.02,
                                                  max_backoff_seconds=0.04,
                                                  max_attempts=1))
        assert crashed.quarantined == ["table1"]
        resumed = run_durable_bench(output_dir=run_dir, resume=True,
                                    parallel=1, retry=FAST_RETRY)
        assert resumed.resumed and resumed.results[0].ok
        assert ((run_dir / "BENCH_results.json").read_bytes()
                == (tmp_path / "clean" / "BENCH_results.json").read_bytes())
        kinds, _ = _journal_kinds(run_dir)
        assert "run_resumed" in kinds

    def test_resume_restores_verified_jobs_without_rerunning(self, tmp_path):
        _durable(tmp_path)
        report = run_durable_bench(output_dir=tmp_path, resume=True)
        assert report.restored == ["table1"]
        assert report.results[0].ok
        events, _ = JobJournal.read(tmp_path / "journal.jsonl")
        resumed_ev = [e for e in events if e.kind == "run_resumed"][-1]
        assert resumed_ev.completed == 1 and resumed_ev.remaining == 0

    def test_resume_rechecks_table_hashes(self, tmp_path):
        _durable(tmp_path)
        (tmp_path / "table1.txt").write_text("tampered\n")
        report = run_durable_bench(output_dir=tmp_path, resume=True,
                                   retry=FAST_RETRY)
        # hash mismatch demotes the job to pending; it re-runs and heals
        assert report.restored == []
        assert report.results[0].ok
        assert (tmp_path / "table1.txt").read_text() != "tampered\n"

    def test_resume_survives_torn_journal_line(self, tmp_path):
        _durable(tmp_path)
        with open(tmp_path / "journal.jsonl", "a") as fh:
            fh.write('{"kind": "bench_job')  # crash mid-append
        report = run_durable_bench(output_dir=tmp_path, resume=True)
        assert report.restored == ["table1"]
        events, _ = JobJournal.read(tmp_path / "journal.jsonl")
        resumed_ev = [e for e in events if e.kind == "run_resumed"][-1]
        assert resumed_ev.skipped_journal_lines == 1

    def test_resume_reuses_recorded_base_seed(self, tmp_path):
        _durable(tmp_path, base_seed=2013)
        (tmp_path / "table1.txt").unlink()  # force a re-run
        report = run_durable_bench(output_dir=tmp_path, resume=True,
                                   retry=FAST_RETRY)
        from repro.perf.bench import job_seed
        assert report.results[0].seed == job_seed(2013, "table1")


class TestCLI:
    def test_bad_chaos_spec_exits_2(self, capsys):
        from repro.experiments.runner import main
        assert main(["bench", "--filter", "table1",
                     "--chaos", "explode:p=0.5"]) == 2
        assert "unknown chaos mode" in capsys.readouterr().err

    def test_resume_missing_run_dir_exits_2(self, tmp_path, capsys):
        from repro.experiments.runner import main
        assert main(["bench", "--resume", str(tmp_path / "nope")]) == 2
        assert "nothing to resume" in capsys.readouterr().err

    def test_chaos_run_and_resume_via_cli(self, tmp_path, capsys):
        from repro.experiments.runner import main
        run_dir = tmp_path / "run"
        code = main(["bench", "--filter", "table1", "-o", str(run_dir),
                     "--chaos", "kill-worker:p=1.0", "--max-attempts", "1"])
        assert code == 1  # quarantined -> failed
        out = capsys.readouterr()
        assert "quarantined" in out.out
        assert main(["bench", "--resume", str(run_dir)]) == 0
        assert json.loads(
            (run_dir / "BENCH_results.json").read_text()
        )["jobs"]["table1"]["ok"] is True
