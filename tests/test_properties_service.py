"""Property test: random admit/depart interleavings keep every invariant.

Satellite contract: drive randomized interleavings of ``admit``/``depart``
through :class:`OnlineConsolidator` (directly and through the durable
service), asserting at every step that reservation state stays coherent,
and at the end that the online packing is within the expected
online-vs-batch gap of a fresh ``admit_batch`` re-pack of the surviving
population (first-fit without departures-driven fragmentation).
"""

import json

import numpy as np
import pytest

from repro.core.online import OnlineConsolidator
from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import PMSpec, VMSpec
from repro.service.service import PlacementService

# same r_extra everywhere so per-PM committed load is exactly
# sum(r_base) + K_count * r_extra — recomputable from first principles
SPECS = [
    VMSpec(p_on=0.10, p_off=0.50, r_base=2.0, r_extra=3.0),
    VMSpec(p_on=0.30, p_off=0.30, r_base=4.0, r_extra=3.0),
    VMSpec(p_on=0.05, p_off=0.60, r_base=1.0, r_extra=3.0),
]
N_PMS = 10
CAPACITY = 24.0
D = 8


def assert_invariants(consolidator):
    """Reservation-state coherence, checked after every operation."""
    mapping = consolidator._mapping
    if mapping is None:  # nothing admitted yet; no state exists to check
        return
    total_hosted = 0
    for j in range(consolidator.n_pms):
        state = consolidator.state_of(j)
        total_hosted += state.count
        assert 0 <= state.count <= D
        assert state.committed <= state.spec.capacity + 1e-9
        if state.count == 0:
            assert state.is_empty
    assert total_hosted == consolidator.n_vms
    hosted = consolidator.hosted_vms()
    assert len(hosted) == consolidator.n_vms
    # per-PM recomputation: base load + Eq. (17) block reservation
    if mapping is not None:
        by_pm = {}
        for vm_id, spec in hosted.items():
            by_pm.setdefault(consolidator.pm_of(vm_id), []).append(spec)
        for j, specs in by_pm.items():
            k = len(specs)
            expect = sum(s.r_base for s in specs) \
                + int(mapping.table[k]) * 3.0
            assert consolidator.state_of(j).committed \
                == pytest.approx(expect)


def random_walk(seed, *, n_ops=120):
    """One randomized interleaving; returns the consolidator afterwards."""
    rng = np.random.RandomState(seed)
    consolidator = OnlineConsolidator([PMSpec(CAPACITY)] * N_PMS,
                                      QueuingFFD(rho=0.01, d=D))
    live = []
    for _ in range(n_ops):
        departing = live and rng.rand() < 0.4
        if departing:
            vm_id = live.pop(rng.randint(len(live)))
            consolidator.depart(vm_id)
        else:
            spec = SPECS[rng.randint(len(SPECS))]
            try:
                vm_id, _ = consolidator.admit(spec)
                live.append(vm_id)
            except Exception:
                pass  # fleet full: a typed rejection, state untouched
        assert_invariants(consolidator)
    return consolidator


@pytest.mark.parametrize("seed", [0, 1, 7, 23, 91])
def test_interleavings_hold_invariants_and_batch_gap(seed):
    online = random_walk(seed)
    hosted = list(online.hosted_vms().values())
    if not hosted:
        return
    batch = OnlineConsolidator([PMSpec(CAPACITY)] * N_PMS,
                               QueuingFFD(rho=0.01, d=D))
    batch.admit_batch(hosted)
    assert_invariants(batch)
    # The two packings need not coincide — the re-pack refits its mapping
    # to the surviving population (different rounded (p_on, p_off) means a
    # different block table), so neither strictly dominates.  What must
    # hold is the first-fit competitiveness gap, in both directions.
    assert online.n_used_pms <= 2 * batch.n_used_pms + 1
    assert batch.n_used_pms <= 2 * online.n_used_pms + 1


@pytest.mark.parametrize("seed", [3, 17])
def test_interleaving_through_the_service_matches_bare_consolidator(
        seed, tmp_path):
    """The durable service is a transparent wrapper: same ops, same state."""
    rng = np.random.RandomState(seed)
    ops = []
    for i in range(60):
        ops.append(("depart", None) if rng.rand() < 0.35
                   else ("admit", SPECS[rng.randint(len(SPECS))]))

    svc = PlacementService([PMSpec(CAPACITY)] * N_PMS,
                           QueuingFFD(rho=0.01, d=D),
                           wal_path=tmp_path / "wal.jsonl")
    bare = OnlineConsolidator([PMSpec(CAPACITY)] * N_PMS,
                              QueuingFFD(rho=0.01, d=D))
    svc_live, bare_live = [], []
    for i, (op, spec) in enumerate(ops):
        if op == "admit":
            svc.submit(f"k{i}", spec)
            svc.drain()
            out = svc.results[f"k{i}"]
            if out["op"] == "admit":
                svc_live.append(out["vm_id"])
            try:
                vm_id, _ = bare.admit(spec)
                bare_live.append(vm_id)
            except Exception:
                pass
        elif svc_live:
            svc.depart(f"d{i}", svc_live.pop(0))
            bare.depart(bare_live.pop(0))
        assert_invariants(svc.consolidator)
    assert svc.consolidator.state_fingerprint() == bare.state_fingerprint()
    # ... and recovery preserves the randomized end state byte-for-byte
    recovered = PlacementService.recover(
        [PMSpec(CAPACITY)] * N_PMS, QueuingFFD(rho=0.01, d=D),
        wal_path=tmp_path / "wal.jsonl")
    assert json.dumps(recovered.capture_state(), sort_keys=True) \
        == json.dumps(svc.capture_state(), sort_keys=True)
