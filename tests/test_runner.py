"""Tests for the experiment runner CLI (python -m repro)."""

import pytest

from repro.experiments.runner import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.experiment == "table1"
        assert not args.plot

    def test_run_all_with_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "all", "--plot", "-o", str(tmp_path)]
        )
        assert args.experiment == "all"
        assert args.plot

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_registry_covers_every_paper_artifact(self):
        paper = {"table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"}
        assert paper <= set(EXPERIMENTS)

    def test_registry_covers_every_ablation(self):
        from repro.experiments.ablations import ABLATIONS

        assert set(ABLATIONS) <= set(EXPERIMENTS)
        assert len(ABLATIONS) >= 14
        for exp_id, (fn, desc) in ABLATIONS.items():
            assert exp_id.startswith("ablation_")
            assert callable(fn) and desc


class TestMain:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "1600" in out

    def test_run_with_output_dir(self, tmp_path, capsys):
        assert main(["run", "table1", "-o", str(tmp_path)]) == 0
        written = tmp_path / "table1.txt"
        assert written.exists()
        assert "peak_users" in written.read_text()

    def test_run_fig8_with_plot(self, capsys):
        assert main(["run", "fig8", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "requests/interval:" in out  # the sparkline line
