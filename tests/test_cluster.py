"""Tests for repro.cluster — binning and 1-D k-means."""

import numpy as np
import pytest

from repro.cluster.binning import equal_width_bins
from repro.cluster.kmeans import kmeans_1d


class TestEqualWidthBins:
    def test_labels_in_range(self):
        v = np.array([1.0, 5.0, 9.0, 3.0])
        labels = equal_width_bins(v, 4)
        assert labels.min() >= 0 and labels.max() <= 3

    def test_ordering_follows_values(self):
        v = np.array([1.0, 10.0, 20.0])
        labels = equal_width_bins(v, 2)
        assert labels[0] <= labels[1] <= labels[2]
        assert labels[0] < labels[2]

    def test_max_value_lands_in_last_bin(self):
        labels = equal_width_bins(np.array([0.0, 10.0]), 5)
        assert labels[1] == 4

    def test_all_equal_values(self):
        labels = equal_width_bins(np.full(5, 3.0), 4)
        np.testing.assert_array_equal(labels, 0)

    def test_single_bin(self):
        labels = equal_width_bins(np.array([1.0, 100.0]), 1)
        np.testing.assert_array_equal(labels, 0)

    def test_empty_input(self):
        assert equal_width_bins(np.empty(0), 3).size == 0

    def test_similar_values_share_bins(self):
        v = np.array([1.0, 1.1, 10.0, 10.1])
        labels = equal_width_bins(v, 3)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            equal_width_bins(np.array([1.0, np.nan]), 2)
        with pytest.raises(ValueError):
            equal_width_bins(np.ones((2, 2)), 2)
        with pytest.raises(ValueError):
            equal_width_bins(np.array([1.0]), 0)

    def test_linear_time_single_pass_semantics(self):
        # label = floor((v - lo) / width) for interior points
        v = np.array([0.0, 2.5, 5.0, 7.5, 10.0])
        labels = equal_width_bins(v, 4)
        np.testing.assert_array_equal(labels, [0, 1, 2, 3, 3])


class TestKMeans1D:
    def test_well_separated_clusters(self):
        v = np.concatenate([np.full(10, 1.0), np.full(10, 100.0)])
        labels = kmeans_1d(v, 2, seed=0)
        assert len(set(labels[:10])) == 1
        assert len(set(labels[10:])) == 1
        assert labels[0] != labels[10]

    def test_labels_ordered_by_centroid(self):
        v = np.array([100.0, 1.0, 50.0])
        labels = kmeans_1d(v, 3, seed=0)
        # smallest value gets label 0, largest the highest label
        assert labels[1] == 0
        assert labels[0] == labels.max()

    def test_fewer_unique_values_than_clusters(self):
        v = np.array([1.0, 1.0, 2.0])
        labels = kmeans_1d(v, 5, seed=0)
        assert set(labels.tolist()) <= {0, 1}

    def test_deterministic_with_seed(self):
        v = np.random.default_rng(1).uniform(0, 100, 50)
        np.testing.assert_array_equal(kmeans_1d(v, 4, seed=7),
                                      kmeans_1d(v, 4, seed=7))

    def test_empty(self):
        assert kmeans_1d(np.empty(0), 3).size == 0

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            kmeans_1d(np.array([1.0, np.inf]), 2)

    def test_labels_contiguous_from_zero(self):
        v = np.random.default_rng(2).uniform(0, 10, 30)
        labels = kmeans_1d(v, 4, seed=3)
        uniq = np.unique(labels)
        np.testing.assert_array_equal(uniq, np.arange(uniq.size))

    def test_within_cluster_variance_not_worse_than_binning(self):
        """k-means should achieve within-cluster SSE <= equal-width binning
        on a clumpy distribution (this is the ablation's premise)."""
        rng = np.random.default_rng(4)
        v = np.concatenate([rng.normal(5, 0.2, 40), rng.normal(50, 0.2, 40)])

        def sse(labels):
            return sum(
                ((v[labels == c] - v[labels == c].mean()) ** 2).sum()
                for c in np.unique(labels)
            )

        assert sse(kmeans_1d(v, 2, seed=0)) <= sse(equal_width_bins(v, 2)) + 1e-9
