"""Tests for repro.queueing.delay — deferred-spike metrics."""

import numpy as np
import pytest

from repro.markov.onoff import OnOffChain
from repro.queueing.delay import (
    degradation_profile,
    expected_backlog,
    mean_wait_littles_law,
    spike_arrival_rate,
    waiting_probability,
)
from repro.queueing.geom_geom_k import FiniteSourceGeomGeomK


@pytest.fixture
def model():
    return FiniteSourceGeomGeomK(k=10, p_on=0.05, p_off=0.2)


class TestBacklog:
    def test_zero_with_full_blocks(self, model):
        assert expected_backlog(model, 10) == 0.0

    def test_equals_mean_demand_with_no_blocks(self, model):
        assert expected_backlog(model, 0) == pytest.approx(
            model.expected_demand()
        )

    def test_decreasing_in_blocks(self, model):
        values = [expected_backlog(model, K) for K in range(11)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_matches_simulation(self, model):
        chain = OnOffChain(0.05, 0.2)
        states = chain.simulate_ensemble(10, 200_000, start_stationary=True,
                                         seed=0)
        busy = states.sum(axis=0)
        K = 3
        empirical = float(np.maximum(busy - K, 0).mean())
        assert empirical == pytest.approx(expected_backlog(model, K), abs=0.01)


class TestWaitingProbability:
    def test_equals_cvr(self, model):
        for K in (0, 2, 5, 10):
            assert waiting_probability(model, K) == model.overflow_probability(K)


class TestLittlesLaw:
    def test_arrival_rate_formula(self, model):
        # E[k - theta] * p_on = k * (1 - q) * p_on
        q = 0.05 / 0.25
        expected = 10 * (1 - q) * 0.05
        assert spike_arrival_rate(model) == pytest.approx(expected)

    def test_mean_wait_zero_with_full_blocks(self, model):
        assert mean_wait_littles_law(model, 10) == 0.0

    def test_mean_wait_decreasing_in_blocks(self, model):
        waits = [mean_wait_littles_law(model, K) for K in range(11)]
        assert all(a >= b for a, b in zip(waits, waits[1:]))

    def test_littles_law_against_simulation(self, model):
        """W = E[B]/lambda must match the simulated average wait computed
        as total backlog-intervals over spike starts."""
        chain = OnOffChain(0.05, 0.2)
        states = chain.simulate_ensemble(10, 300_000, start_stationary=True,
                                         seed=1)
        busy = states.sum(axis=0)
        K = 3
        backlog_time = float(np.maximum(busy - K, 0).sum())
        starts = int(
            np.maximum(np.diff(states.astype(np.int8), axis=1), 0).sum()
        )
        empirical_wait = backlog_time / starts
        analytic = mean_wait_littles_law(model, K)
        assert empirical_wait == pytest.approx(analytic, rel=0.1)


class TestDegradationProfile:
    def test_covers_all_block_counts(self, model):
        rows = degradation_profile(model)
        assert len(rows) == 11
        assert rows[0]["n_blocks"] == 0.0
        assert rows[-1]["p_wait"] == 0.0

    def test_max_blocks_honoured(self, model):
        rows = degradation_profile(model, max_blocks=4)
        assert len(rows) == 5

    def test_rows_internally_consistent(self, model):
        for row in degradation_profile(model):
            K = int(row["n_blocks"])
            assert row["p_wait"] == pytest.approx(
                waiting_probability(model, K))
            assert row["mean_backlog"] == pytest.approx(
                expected_backlog(model, K))
