"""Telemetry hardening: rate-limited logs, tolerant replay, label escaping,
bus subscriptions and the observability event kinds."""

from __future__ import annotations

import json
import logging

from repro.telemetry import (
    AlertFired,
    DriftDetected,
    IntervalSnapshot,
    LogRateLimiter,
    MetricsRegistry,
    Telemetry,
    escape_label_value,
    event_from_dict,
    read_events_tolerant,
    replay_summary,
    series_key,
)
from repro.telemetry.events import CapacityViolation, MigrationCompleted


class TestLogRateLimiter:
    def test_one_line_per_window(self):
        lim = LogRateLimiter(window=10)
        assert lim.allow("monitor", "violation", 0)
        for t in range(1, 10):
            assert not lim.allow("monitor", "violation", t)
        assert lim.allow("monitor", "violation", 10)
        assert lim.suppressed == 9

    def test_keys_are_independent(self):
        lim = LogRateLimiter(window=10)
        assert lim.allow("a", "x", 0)
        assert lim.allow("b", "x", 0)
        assert lim.allow("a", "y", 0)

    def test_time_moving_backwards_reopens(self):
        lim = LogRateLimiter(window=10)
        assert lim.allow("a", "x", 100)
        assert lim.allow("a", "x", 0)  # fresh run reusing the limiter

    def test_warning_appends_suppressed_count(self, caplog):
        lim = LogRateLimiter(window=5)
        log = logging.getLogger("test.ratelimit")
        with caplog.at_level(logging.WARNING, logger="test.ratelimit"):
            assert lim.warning(log, "m", "k", 0, "overload on PM %d", 3)
            for t in range(1, 5):
                assert not lim.warning(log, "m", "k", t, "overload on PM %d", t)
            assert lim.warning(log, "m", "k", 5, "overload on PM %d", 9)
        assert len(caplog.records) == 2
        assert "(+4 similar suppressed)" in caplog.records[1].getMessage()

    def test_counter_integration(self):
        reg = MetricsRegistry()
        counter = reg.counter("log_suppressed_total")
        lim = LogRateLimiter(window=10, counter=counter)
        lim.allow("a", "x", 0)
        lim.allow("a", "x", 1)
        lim.allow("a", "x", 2)
        assert counter.value == 2

    def test_monitor_rate_limits_violation_warns(self, caplog):
        # 30 violating intervals must not produce 30 WARN lines
        import numpy as np

        from repro.core.types import Placement, PMSpec, VMSpec
        from repro.simulation.datacenter import Datacenter
        from repro.simulation.monitor import Monitor

        vms = [VMSpec(0.5, 0.01, 60.0, 30.0), VMSpec(0.5, 0.01, 60.0, 30.0)]
        pms = [PMSpec(100.0)]
        dc = Datacenter(vms, pms, Placement(2, 1, np.array([0, 0])), seed=1)
        monitor = Monitor(1, n_vms=2, log_window=50)
        with caplog.at_level(logging.WARNING,
                             logger="repro.simulation.monitor"):
            for _ in range(30):
                dc.step()
                monitor.record_interval(dc, [])
        warns = [r for r in caplog.records if "capacity" in r.getMessage()]
        assert 0 < len(warns) <= 2


class TestTolerantReplay:
    def write_trace(self, path, n=3):
        events = [MigrationCompleted(time=t, vm_id=t, source_pm=0,
                                     target_pm=1) for t in range(n)]
        path.write_text(
            "\n".join(json.dumps(e.to_dict()) for e in events) + "\n")
        return events

    def test_clean_file_no_skips(self, tmp_path):
        path = tmp_path / "t.jsonl"
        originals = self.write_trace(path)
        events, skipped = read_events_tolerant(path)
        assert skipped == 0
        assert events == originals

    def test_truncated_and_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self.write_trace(path)
        with path.open("a") as fh:
            fh.write('{"kind": "migration_comp')  # crashed writer
            fh.write("\n\n")  # blank lines are fine
            fh.write('{"kind": "unknown_kind", "time": 0}\n')
            fh.write('{"kind": "migration_completed", "nope": 1}\n')
        events, skipped = read_events_tolerant(path)
        assert len(events) == 3
        assert skipped == 3

    def test_replay_summary_accepts_path_and_counts_skips(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self.write_trace(path, n=4)
        with path.open("a") as fh:
            fh.write("garbage\n")
        summary = replay_summary(path)
        assert summary["migrations"] == 4
        assert summary["skipped_lines"] == 1

    def test_replay_summary_iterable_unchanged(self):
        events = [CapacityViolation(time=0, pm_id=0, load=1.0, capacity=0.5)]
        summary = replay_summary(events)
        assert summary["capacity_violations"] == 1
        assert summary["skipped_lines"] == 0


class TestPrometheusEscaping:
    def test_escape_label_value(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_labeled_series_are_distinct(self):
        reg = MetricsRegistry()
        a = reg.counter("req_total", labels={"strategy": "QUEUE"})
        b = reg.counter("req_total", labels={"strategy": "RB"})
        a.inc(2)
        b.inc(5)
        assert a is not b
        assert reg.counter("req_total", labels={"strategy": "QUEUE"}) is a

    def test_exposition_escapes_and_dedupes_help(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "requests", labels={"p": 'he said "hi"\n'})
        reg.counter("req_total", "requests", labels={"p": "plain"}).inc()
        text = reg.to_prometheus()
        assert text.count("# HELP req_total") == 1
        assert text.count("# TYPE req_total") == 1
        assert r'p="he said \"hi\"\n"' in text

    def test_histogram_emits_cumulative_inf_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=[0.1, 1.0],
                          labels={"op": "place"})
        h.observe(0.05)
        h.observe(5.0)
        text = reg.to_prometheus()
        assert 'lat_bucket{op="place",le="+Inf"} 2' in text
        assert 'lat_bucket{op="place",le="0.1"} 1' in text

    def test_series_key_stable(self):
        assert (series_key("m", {"b": "2", "a": "1"})
                == series_key("m", {"a": "1", "b": "2"}))


class TestObservabilityEventKinds:
    def test_interval_snapshot_round_trip(self):
        snap = IntervalSnapshot(
            time=7, pm_ids=(0, 2), loads=(10.0, 20.0),
            capacities=(100.0, 100.0), hosted=(3, 4), on_vms=(1, 0),
            expected_on=(0.3, 0.4), expected_var=(0.5, 0.7),
            migrations=2, overloaded=1)
        replayed = event_from_dict(json.loads(json.dumps(snap.to_dict())))
        assert replayed == snap
        assert isinstance(replayed.pm_ids, tuple)

    def test_alert_and_drift_round_trip(self):
        for event in (
            AlertFired(time=3, rule="cvr_burn", metric="cvr",
                       severity="page", burn_fast=14.5, burn_slow=2.2,
                       budget=0.01),
            DriftDetected(time=9, pm_id=4, statistic=15.2, threshold=10.83,
                          observed_on_fraction=0.3,
                          expected_on_fraction=0.1, windows=2),
        ):
            replayed = event_from_dict(json.loads(json.dumps(event.to_dict())))
            assert replayed == event


class TestBusSubscribe:
    def test_subscriber_sees_events_and_unsubscribes(self):
        tel = Telemetry()
        seen = []
        unsubscribe = tel.events.subscribe(seen.append)
        event = CapacityViolation(time=0, pm_id=0, load=1.0, capacity=0.5)
        tel.events.emit(event)
        assert seen == [event]
        unsubscribe()
        tel.events.emit(event)
        assert len(seen) == 1

    def test_bus_disabled_without_consumers(self):
        tel = Telemetry()
        unsubscribe = tel.events.subscribe(lambda e: None)
        assert tel.events.enabled
        unsubscribe()
        assert not tel.events.enabled

    def test_nested_emit_from_subscriber_is_delivered(self):
        # a subscriber that emits (the SLO engine pattern) must not recurse
        # forever and the nested event must reach sinks
        tel = Telemetry()
        seen = []

        def reactor(event):
            seen.append(event.kind)
            if event.kind == "capacity_violation":
                tel.events.emit(AlertFired(time=event.time, rule="r"))

        tel.events.subscribe(reactor)
        tel.events.emit(CapacityViolation(time=0, pm_id=0, load=1.0,
                                          capacity=0.5))
        assert seen == ["capacity_violation", "alert_fired"]
