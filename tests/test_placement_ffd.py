"""Tests for repro.placement.ffd — classic bin-packing placers."""

import pytest

from repro.core.types import PMSpec, VMSpec
from repro.placement.base import InsufficientCapacityError
from repro.placement.ffd import (
    BestFitDecreasing,
    FirstFitDecreasing,
    NextFit,
    WorstFitDecreasing,
    ffd_by_base,
    ffd_by_peak,
    size_by_base,
    size_by_peak,
)
from repro.placement.validation import (
    check_capacity_at_base,
    check_capacity_at_peak,
    check_placement_complete,
    max_vms_on_any_pm,
)

P_ON, P_OFF = 0.01, 0.09


def vm(base, extra=0.0):
    return VMSpec(P_ON, P_OFF, base, extra)


def pms(*caps):
    return [PMSpec(c) for c in caps]


class TestFirstFitDecreasing:
    def test_textbook_instance(self):
        # sizes 7,5,4,3,2 into bins of 10: FFD gives [7,3], [5,4], [2] -> 3 bins
        vms = [vm(s) for s in (5, 7, 3, 4, 2)]
        placement = FirstFitDecreasing(size_by_base).place(vms, pms(*[10] * 5))
        assert placement.n_used_pms == 3
        check_capacity_at_base(placement, vms, pms(*[10] * 5))

    def test_decreasing_order_used(self):
        # First Fit without sorting would open a new bin for the 7.
        vms = [vm(2), vm(5), vm(7)]
        placement = FirstFitDecreasing(size_by_base).place(vms, pms(10, 10))
        assert placement.pm_of(2) == 0  # the 7 goes first into PM 0

    def test_peak_sizing(self):
        vms = [vm(5, 5), vm(5, 5)]  # peak 10 each
        placement = ffd_by_peak().place(vms, pms(10, 10))
        assert placement.n_used_pms == 2
        check_capacity_at_peak(placement, vms, pms(10, 10))

    def test_base_sizing_packs_tighter(self):
        vms = [vm(5, 5), vm(5, 5)]
        placement = ffd_by_base().place(vms, pms(10, 10))
        assert placement.n_used_pms == 1

    def test_max_vms_per_pm(self):
        vms = [vm(1) for _ in range(10)]
        placement = FirstFitDecreasing(size_by_base, max_vms_per_pm=3).place(
            vms, pms(*[100] * 4)
        )
        assert max_vms_on_any_pm(placement) <= 3
        assert placement.n_used_pms == 4

    def test_insufficient_capacity(self):
        with pytest.raises(InsufficientCapacityError) as exc:
            FirstFitDecreasing(size_by_base).place([vm(20)], pms(10))
        assert exc.value.vm_index == 0

    def test_complete(self, medium_instance):
        vms, pm_list = medium_instance
        placement = ffd_by_peak(max_vms_per_pm=16).place(vms, pm_list)
        check_placement_complete(placement)
        check_capacity_at_peak(placement, vms, pm_list)

    def test_names(self):
        assert ffd_by_peak().name == "RP"
        assert ffd_by_base().name == "RB"
        assert FirstFitDecreasing().name == "FFD"

    def test_rb_never_uses_more_pms_than_rp(self, medium_instance):
        vms, pm_list = medium_instance
        rb = ffd_by_base(max_vms_per_pm=16).place(vms, pm_list)
        rp = ffd_by_peak(max_vms_per_pm=16).place(vms, pm_list)
        assert rb.n_used_pms <= rp.n_used_pms


class TestBestFit:
    def test_prefers_tightest_bin(self):
        # After 8 and 6 are placed in separate bins, size-2 best-fits the 8-bin.
        vms = [vm(8), vm(6), vm(2)]
        placement = BestFitDecreasing(size_by_base).place(vms, pms(10, 10))
        assert placement.pm_of(2) == placement.pm_of(0)

    def test_valid(self, medium_instance):
        vms, pm_list = medium_instance
        placement = BestFitDecreasing(size_by_peak, max_vms_per_pm=16).place(
            vms, pm_list
        )
        check_placement_complete(placement)
        check_capacity_at_peak(placement, vms, pm_list)


class TestWorstFit:
    def test_prefers_emptiest_bin(self):
        vms = [vm(8), vm(6), vm(2)]
        placement = WorstFitDecreasing(size_by_base).place(vms, pms(10, 10))
        assert placement.pm_of(2) == placement.pm_of(1)  # joins the 6

    def test_valid(self, medium_instance):
        vms, pm_list = medium_instance
        placement = WorstFitDecreasing(size_by_peak, max_vms_per_pm=16).place(
            vms, pm_list
        )
        check_capacity_at_peak(placement, vms, pm_list)


class TestNextFit:
    def test_never_looks_back(self):
        # 6, 6, 3: next-fit closes PM0 after first 6; the 3 lands in PM1
        # even though PM0 still has room.
        vms = [vm(6), vm(6), vm(3)]
        placement = NextFit(size_by_base).place(vms, pms(10, 10, 10))
        assert placement.pm_of(0) == 0
        assert placement.pm_of(1) == 1
        assert placement.pm_of(2) == 1

    def test_uses_at_least_as_many_pms_as_ffd(self, medium_instance):
        vms, pm_list = medium_instance
        nf = NextFit(size_by_peak, max_vms_per_pm=16).place(vms, pm_list)
        ffd = ffd_by_peak(max_vms_per_pm=16).place(vms, pm_list)
        assert nf.n_used_pms >= ffd.n_used_pms

    def test_open_pointer_resets_between_calls(self):
        placer = NextFit(size_by_base)
        vms = [vm(6), vm(6)]
        placer.place(vms, pms(10, 10))
        placement = placer.place(vms, pms(10, 10))
        assert placement.pm_of(0) == 0  # fresh run starts at PM 0


class TestEdgeCases:
    def test_zero_vms(self):
        placement = FirstFitDecreasing().place([], pms(10))
        assert placement.n_vms == 0

    def test_zero_pms(self):
        with pytest.raises(InsufficientCapacityError):
            FirstFitDecreasing().place([vm(1)], [])

    def test_exact_fill(self):
        vms = [vm(5), vm(5)]
        placement = FirstFitDecreasing(size_by_base).place(vms, pms(10))
        assert placement.n_used_pms == 1

    def test_stable_tie_break(self):
        # Equal sizes keep input order (stable sort).
        vms = [vm(5), vm(5), vm(5)]
        placement = FirstFitDecreasing(size_by_base).place(vms, pms(15, 15))
        assert placement.pm_of(0) == 0
        assert placement.pm_of(1) == 0
        assert placement.pm_of(2) == 0
