"""Tests for the runner's ASCII figure rendering (--plot paths)."""


from repro.analysis.report import ExperimentResult
from repro.experiments.runner import _plot, main


def _result(exp_id, headers, rows):
    r = ExperimentResult(exp_id, "test", headers=headers)
    for row in rows:
        r.add_row(*row)
    return r


class TestPlotDispatch:
    def test_fig5_bar_chart(self):
        r = _result("fig5",
                    ["pattern", "n_vms", "QUEUE", "RP", "RB", "x", "y"],
                    [["Rb=Re", 100, 18.0, 24.0, 12.0, 0.0, 0.0]])
        art = _plot(r)
        assert art is not None
        assert "PMs used" in art and "QUEUE" in art

    def test_fig6_bar_chart(self):
        r = _result("fig6",
                    ["pattern", "strategy", "mean_CVR", "max", "frac"],
                    [["Rb=Re", "QUEUE", 0.004, 0.01, 0.05],
                     ["Rb=Re", "RB", 0.4, 0.7, 0.9]])
        art = _plot(r)
        assert "mean CVR" in art
        assert "0.0040" in art  # the value_fmt=.4f path

    def test_fig8_sparkline(self):
        r = _result("fig8", ["interval", "state", "requests"],
                    [[0, "OFF", 100], [10, "ON", 300], [20, "OFF", 110]])
        art = _plot(r)
        assert art.startswith("requests/interval:")

    def test_fig9_bar_chart(self):
        r = _result("fig9",
                    ["pattern", "strategy", "migrations_avg", "a", "b",
                     "c", "d", "e", "f"],
                    [["Rb=Re", "QUEUE", 1.0, 0, 0, 0, 0, 0, 0],
                     ["Rb=Re", "RB", 25.0, 0, 0, 0, 0, 0, 0]])
        art = _plot(r)
        assert "total migrations" in art

    def test_fig10_line_chart(self):
        headers = (["interval"]
                   + [f"{n}_cum_migrations" for n in ("QUEUE", "RB", "RB-EX")]
                   + [f"{n}_pms_used" for n in ("QUEUE", "RB", "RB-EX")])
        r = _result("fig10", headers,
                    [[0, 0, 2, 0, 10, 8, 9],
                     [50, 0, 15, 2, 10, 9, 9],
                     [99, 1, 23, 7, 10, 9, 9]])
        art = _plot(r)
        assert "cumulative migrations" in art
        assert "QUEUE" in art

    def test_unplottable_result_returns_none(self):
        r = _result("table1", ["a"], [[1]])
        assert _plot(r) is None


class TestMainWithPlots:
    def test_run_table1_with_plot_flag_is_harmless(self, capsys):
        assert main(["run", "table1", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out  # no crash despite no plot available
