"""Tests for repro.simulation.triggers."""

import numpy as np
import pytest

from repro.core.types import Placement, PMSpec, VMSpec
from repro.simulation.datacenter import Datacenter
from repro.simulation.scheduler import DynamicScheduler
from repro.simulation.triggers import OverflowTrigger, SlidingWindowCVRTrigger


def overloadable_dc(seed=0):
    vms = [VMSpec(0.01, 0.09, 40.0, 30.0), VMSpec(0.01, 0.09, 40.0, 30.0)]
    pms = [PMSpec(90.0), PMSpec(90.0)]
    placement = Placement(2, 2, assignment=np.array([0, 0]))
    return Datacenter(vms, pms, placement, seed=seed)


def force_spike(dc, vm_ids):
    for v in vm_ids:
        dc._on[v] = True
        dc.vms[v].on = True


class TestOverflowTrigger:
    def test_always_fires(self):
        trigger = OverflowTrigger()
        trigger.observe(overloadable_dc(), 0)
        assert trigger.should_migrate(0)
        assert trigger.should_migrate(99)


class TestSlidingWindowCVRTrigger:
    def test_single_violation_in_long_window_tolerated_once_history_builds(self):
        dc = overloadable_dc()
        trigger = SlidingWindowCVRTrigger(2, rho=0.2, window=10)
        # 9 clean intervals
        for t in range(9):
            trigger.observe(dc, t)
        # one violating interval: windowed CVR = 1/10 = 0.1 <= 0.2
        force_spike(dc, [0, 1])
        trigger.observe(dc, 9)
        assert trigger.windowed_cvr(0) == pytest.approx(0.1)
        assert not trigger.should_migrate(0)

    def test_persistent_violation_fires(self):
        dc = overloadable_dc()
        trigger = SlidingWindowCVRTrigger(2, rho=0.2, window=10)
        force_spike(dc, [0, 1])
        for t in range(5):
            trigger.observe(dc, t)
        assert trigger.windowed_cvr(0) == 1.0
        assert trigger.should_migrate(0)

    def test_window_rolls_off_old_violations(self):
        dc = overloadable_dc()
        trigger = SlidingWindowCVRTrigger(2, rho=0.3, window=4)
        force_spike(dc, [0, 1])
        trigger.observe(dc, 0)  # violation
        # now calm down
        dc._on[:] = False
        for v in dc.vms:
            v.on = False
        for t in range(1, 5):
            trigger.observe(dc, t)
        assert trigger.windowed_cvr(0) == 0.0

    def test_early_violation_exceeds_any_small_rho(self):
        dc = overloadable_dc()
        trigger = SlidingWindowCVRTrigger(2, rho=0.01, window=50)
        force_spike(dc, [0, 1])
        trigger.observe(dc, 0)
        assert trigger.windowed_cvr(0) == 1.0  # measured over 1 interval
        assert trigger.should_migrate(0)

    def test_non_violating_pm_never_fires(self):
        dc = overloadable_dc()
        trigger = SlidingWindowCVRTrigger(2, rho=0.01, window=5)
        force_spike(dc, [0, 1])
        for t in range(5):
            trigger.observe(dc, t)
        assert trigger.windowed_cvr(1) == 0.0  # PM 1 is empty
        assert not trigger.should_migrate(1)

    def test_fleet_size_checked(self):
        trigger = SlidingWindowCVRTrigger(3)
        with pytest.raises(ValueError, match="built for"):
            trigger.observe(overloadable_dc(), 0)

    def test_pm_id_validated(self):
        trigger = SlidingWindowCVRTrigger(2)
        with pytest.raises(ValueError):
            trigger.windowed_cvr(5)

    def test_empty_history_cvr_zero(self):
        assert SlidingWindowCVRTrigger(2).windowed_cvr(0) == 0.0


class TestSchedulerIntegration:
    def test_very_tolerant_trigger_absorbs_overflows(self):
        """A near-1 rho absorbs transient overflows instead of migrating:
        far fewer migrations, at the price of recorded violations.  (For
        intermediate rho the count is NOT monotone — tolerating an overflow
        can merely postpone the migration — so only the extremes are
        asserted.)"""
        from repro.placement.ffd import ffd_by_base
        from repro.simulation.scheduler import run_simulation
        from repro.workload.patterns import generate_pattern_instance

        vms, pms = generate_pattern_instance("equal", 80, seed=99)
        placement = ffd_by_base(max_vms_per_pm=16).place(vms, pms)
        reactive = run_simulation(vms, pms, placement, n_intervals=100, seed=7)
        tolerant = run_simulation(
            vms, pms, placement, n_intervals=100, seed=7,
            trigger=SlidingWindowCVRTrigger(len(pms), rho=0.95, window=20),
        )
        assert reactive.total_migrations > 0
        assert tolerant.total_migrations < reactive.total_migrations / 2
        assert (tolerant.record.violation_counts.sum()
                >= reactive.record.violation_counts.sum())

    def test_scheduler_respects_trigger_veto(self):
        dc = overloadable_dc()
        force_spike(dc, [0, 1])

        class Veto:
            def observe(self, dc, time):
                pass

            def should_migrate(self, pm_id):
                return False

        scheduler = DynamicScheduler(dc, trigger=Veto())
        assert scheduler.resolve_overloads(0) == []
        assert dc.overloaded_pms().size == 1  # violation tolerated


class TestAlertReactiveTrigger:
    def test_defers_to_base_when_no_alert(self):
        from repro.simulation.triggers import AlertReactiveTrigger

        class Veto:
            observed = 0

            def observe(self, dc, time):
                self.observed += 1

            def should_migrate(self, pm_id):
                return False

        base = Veto()
        trigger = AlertReactiveTrigger(base, alert_active=lambda: False)
        trigger.observe(overloadable_dc(), 0)
        assert base.observed == 1
        assert not trigger.should_migrate(0)
        assert trigger.escalations == 0

    def test_escalates_while_alert_fires(self):
        from repro.simulation.triggers import AlertReactiveTrigger

        firing = {"on": True}
        base = SlidingWindowCVRTrigger(2, rho=0.99, window=50)  # near-veto
        trigger = AlertReactiveTrigger(base, alert_active=lambda: firing["on"])
        # no violation observed, so the tolerant base would veto migration
        trigger.observe(overloadable_dc(), 0)
        assert trigger.should_migrate(0)  # base would have said no
        assert trigger.escalations == 1
        firing["on"] = False
        assert not trigger.should_migrate(0)

    def test_bound_to_observatory(self):
        from repro.observability import Observatory
        from repro.simulation.triggers import AlertReactiveTrigger

        obs = Observatory()
        trigger = AlertReactiveTrigger(OverflowTrigger(),
                                       alert_active=obs.alert_active)
        assert trigger.should_migrate(0)  # base fires regardless
        assert not obs.has_active_alerts
