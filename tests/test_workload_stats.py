"""Tests for repro.workload.stats — burstiness statistics."""

import numpy as np
import pytest

from repro.markov.onoff import OnOffChain
from repro.workload.stats import (
    burst_lengths,
    empirical_autocorrelation,
    index_of_dispersion,
    mean_burst_length,
    peak_to_mean_ratio,
)


class TestIndexOfDispersion:
    def test_constant_trace_is_zero(self):
        assert index_of_dispersion(np.full(100, 5.0)) == 0.0

    def test_all_zero(self):
        assert index_of_dispersion(np.zeros(10)) == 0.0

    def test_poisson_is_near_one(self):
        counts = np.random.default_rng(0).poisson(20.0, 100_000)
        assert index_of_dispersion(counts) == pytest.approx(1.0, abs=0.05)

    def test_bursty_exceeds_one(self):
        trace = np.concatenate([np.full(900, 1.0), np.full(100, 100.0)])
        assert index_of_dispersion(trace) > 1.0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            index_of_dispersion(np.ones((2, 2)))


class TestPeakToMean:
    def test_constant(self):
        assert peak_to_mean_ratio(np.full(5, 3.0)) == 1.0

    def test_spiky(self):
        assert peak_to_mean_ratio(np.array([1.0, 1.0, 10.0])) == pytest.approx(10 / 4)

    def test_all_zero(self):
        assert peak_to_mean_ratio(np.zeros(4)) == 0.0


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        trace = np.random.default_rng(1).random(100)
        acf = empirical_autocorrelation(trace, 5)
        assert acf[0] == 1.0

    def test_constant_trace_returns_zero_beyond_lag0(self):
        acf = empirical_autocorrelation(np.full(50, 2.0), 3)
        np.testing.assert_array_equal(acf[1:], 0.0)

    def test_matches_theory_for_onoff(self):
        chain = OnOffChain(0.05, 0.15)
        traj = chain.simulate(500_000, seed=0)
        acf = empirical_autocorrelation(traj.astype(float), 5)
        lam = 1 - 0.05 - 0.15
        for lag in range(1, 6):
            assert acf[lag] == pytest.approx(lam**lag, abs=0.02)

    def test_white_noise_decorrelated(self):
        trace = np.random.default_rng(2).normal(size=100_000)
        acf = empirical_autocorrelation(trace, 3)
        assert abs(acf[1]) < 0.02

    def test_max_lag_validation(self):
        with pytest.raises(ValueError):
            empirical_autocorrelation(np.ones(5), 5)
        with pytest.raises(ValueError):
            empirical_autocorrelation(np.ones(5), -1)


class TestBurstLengths:
    def test_simple_runs(self):
        s = np.array([0, 1, 1, 0, 1, 0, 1, 1, 1])
        np.testing.assert_array_equal(burst_lengths(s), [2, 1, 3])

    def test_no_bursts(self):
        assert burst_lengths(np.zeros(5, dtype=int)).size == 0

    def test_all_on(self):
        np.testing.assert_array_equal(burst_lengths(np.ones(7, dtype=int)), [7])

    def test_boundary_runs_counted(self):
        np.testing.assert_array_equal(
            burst_lengths(np.array([1, 1, 0, 0, 1])), [2, 1]
        )

    def test_empty(self):
        assert burst_lengths(np.empty(0)).size == 0

    def test_mean_burst_length_geometric(self):
        chain = OnOffChain(0.02, 0.1)
        traj = chain.simulate(500_000, seed=3)
        assert mean_burst_length(traj) == pytest.approx(10.0, rel=0.05)

    def test_mean_burst_length_no_bursts(self):
        assert mean_burst_length(np.zeros(10)) == 0.0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            burst_lengths(np.ones((2, 2)))
