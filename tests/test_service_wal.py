"""Write-ahead log + service checkpoint: format, chaining, torn writes."""

import json

import pytest

from repro.service.wal import (
    GENESIS_CHAIN,
    WALCorruptError,
    WALError,
    WriteAheadLog,
    chain_hash,
    load_service_checkpoint,
    save_service_checkpoint,
)


@pytest.fixture
def wal_path(tmp_path):
    return tmp_path / "wal.jsonl"


class TestAppendAndScan:
    def test_fresh_log_has_header_and_no_records(self, wal_path):
        wal = WriteAheadLog(wal_path)
        assert wal.last_seq == 0
        assert wal.base_chain == GENESIS_CHAIN
        header = json.loads(wal_path.read_text().splitlines()[0])
        assert header["format"] == "repro-wal"
        assert header["base_seq"] == 0

    def test_append_returns_consecutive_seqs(self, wal_path):
        wal = WriteAheadLog(wal_path)
        seqs = [wal.append("admit", {"pm": i}, key=f"k{i}") for i in range(5)]
        assert seqs == [1, 2, 3, 4, 5]
        assert wal.last_seq == 5

    def test_reopen_round_trips_records(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append("admit", {"pm": 0, "vm_id": 0}, key="a")
        wal.append("depart", {"vm_id": 0}, key="b")
        reopened = WriteAheadLog(wal_path)
        recs = reopened.records()
        assert [(r.seq, r.key, r.op) for r in recs] == [
            (1, "a", "admit"), (2, "b", "depart")]
        assert recs[0].body == {"pm": 0, "vm_id": 0}
        assert reopened.last_chain == wal.last_chain

    def test_chain_links_every_record_to_its_predecessor(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append("admit", {"pm": 0}, key="a")
        wal.append("admit", {"pm": 1}, key="b")
        r1, r2 = wal.records()
        assert r1.chain == chain_hash(GENESIS_CHAIN, 1, "a", "admit",
                                      {"pm": 0})
        assert r2.chain == chain_hash(r1.chain, 2, "b", "admit", {"pm": 1})

    def test_records_after_seq_filters(self, wal_path):
        wal = WriteAheadLog(wal_path)
        for i in range(4):
            wal.append("admit", {}, key=f"k{i}")
        assert [r.seq for r in wal.records(after_seq=2)] == [3, 4]


class TestTornTailAndCorruption:
    def _populate(self, wal_path, n=3):
        wal = WriteAheadLog(wal_path)
        for i in range(n):
            wal.append("admit", {"pm": i}, key=f"k{i}")
        return wal

    def test_torn_tail_is_truncated_and_reported(self, wal_path):
        self._populate(wal_path)
        with open(wal_path, "ab") as fh:
            fh.write(b'{"seq": 4, "chain": "dead')  # kill -9 mid-append
        wal = WriteAheadLog(wal_path)
        assert wal.truncated_tail == 1
        assert wal.last_seq == 3
        # the tail is gone from disk, so appends resume cleanly
        assert wal.append("admit", {"pm": 9}, key="k9") == 4
        assert WriteAheadLog(wal_path).last_seq == 4

    def test_multi_line_garbage_tail_is_still_a_tail(self, wal_path):
        self._populate(wal_path)
        with open(wal_path, "ab") as fh:
            fh.write(b"not json\n{\"half\": tru")
        wal = WriteAheadLog(wal_path)
        assert wal.truncated_tail == 2
        assert wal.last_seq == 3

    def test_midfile_corruption_refuses_to_open(self, wal_path):
        self._populate(wal_path)
        lines = wal_path.read_bytes().splitlines(keepends=True)
        lines[2] = b"garbage\n"  # malformed record *followed by* valid ones
        wal_path.write_bytes(b"".join(lines))
        with pytest.raises(WALCorruptError, match="mid-file"):
            WriteAheadLog(wal_path)

    def test_tampered_record_breaks_the_chain(self, wal_path):
        self._populate(wal_path)
        lines = wal_path.read_text().splitlines()
        rec = json.loads(lines[2])
        rec["body"]["pm"] = 7  # bit-flip the journaled outcome
        lines[2] = json.dumps(rec, sort_keys=True, separators=(",", ":"))
        wal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(WALCorruptError, match="chain mismatch"):
            WriteAheadLog(wal_path)

    def test_seq_gap_refuses_to_open(self, wal_path):
        self._populate(wal_path)
        lines = wal_path.read_text().splitlines()
        del lines[2]  # drop a middle record entirely
        wal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(WALCorruptError):
            WriteAheadLog(wal_path)

    def test_wrong_format_or_version_refuses(self, tmp_path):
        other = tmp_path / "other.jsonl"
        other.write_text('{"format": "not-a-wal", "version": 1}\n')
        with pytest.raises(WALCorruptError):
            WriteAheadLog(other)


class TestCompaction:
    def test_compact_drops_prefix_and_rebases(self, wal_path):
        wal = WriteAheadLog(wal_path)
        for i in range(6):
            wal.append("admit", {"pm": i}, key=f"k{i}")
        mid_chain = wal.records()[3].chain
        dropped = wal.compact(base_seq=4, base_chain=mid_chain)
        assert dropped == 4
        assert wal.base_seq == 4
        assert [r.seq for r in wal.records()] == [5, 6]
        # the compacted file reopens and still chains correctly
        reopened = WriteAheadLog(wal_path)
        assert reopened.base_seq == 4
        assert [r.seq for r in reopened.records()] == [5, 6]
        assert reopened.append("admit", {}, key="k7") == 7

    def test_compact_past_the_end_raises(self, wal_path):
        wal = WriteAheadLog(wal_path)
        wal.append("admit", {}, key="a")
        with pytest.raises(WALError, match="cannot compact"):
            wal.compact(base_seq=9, base_chain="x")


class TestServiceCheckpoint:
    STATE = {"consolidator": {"next_id": 3}, "counters": {"admitted": 3}}

    def test_round_trip(self, tmp_path):
        path = tmp_path / "ckpt.json"
        save_service_checkpoint(path, state=self.STATE, wal_seq=12,
                                wal_chain="ab" * 32)
        payload = load_service_checkpoint(path)
        assert payload["wal_seq"] == 12
        assert payload["wal_chain"] == "ab" * 32
        assert payload["state"] == self.STATE

    def test_bit_rot_fails_the_checksum(self, tmp_path):
        path = tmp_path / "ckpt.json"
        save_service_checkpoint(path, state=self.STATE, wal_seq=1,
                                wal_chain="cd" * 32)
        envelope = json.loads(path.read_text())
        envelope["payload"]["wal_seq"] = 999
        path.write_text(json.dumps(envelope))
        with pytest.raises(WALCorruptError, match="checksum"):
            load_service_checkpoint(path)

    def test_wrong_format_refuses(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(WALCorruptError):
            load_service_checkpoint(path)
