"""Tests for repro.experiments.ablations — the packaged ablation studies.

The benchmarks exercise each study at full scale; these tests verify the
package-level contract (registry integrity, determinism, result shape) at
reduced scale so the unit suite stays fast.
"""


from repro.analysis.report import ExperimentResult, render_result
from repro.experiments.ablations import (
    ABLATIONS,
    run_clustering_ablation,
    run_optimality_gap,
    run_rho_sweep,
    run_switch_sweep,
)


class TestRegistry:
    def test_ids_unique_and_prefixed(self):
        assert len(ABLATIONS) == len(set(ABLATIONS))
        assert all(k.startswith("ablation_") for k in ABLATIONS)

    def test_functions_return_experiment_results(self):
        # Run the two cheapest studies end-to-end through the registry.
        for exp_id in ("ablation_switch_sweep",):
            fn, _ = ABLATIONS[exp_id]
            result = fn()
            assert isinstance(result, ExperimentResult)
            assert result.rows
            assert render_result(result)


class TestDeterminism:
    def test_switch_sweep_deterministic(self):
        a = run_switch_sweep()
        b = run_switch_sweep()
        assert a.rows == b.rows

    def test_rho_sweep_deterministic(self):
        a = run_rho_sweep(n_vms=60, seed=1)
        b = run_rho_sweep(n_vms=60, seed=1)
        assert a.rows == b.rows

    def test_clustering_deterministic(self):
        a = run_clustering_ablation(n_vms=60, seeds=(1, 2))
        b = run_clustering_ablation(n_vms=60, seeds=(1, 2))
        assert a.rows == b.rows


class TestReducedScaleShapes:
    def test_rho_sweep_monotone_at_small_scale(self):
        result = run_rho_sweep(n_vms=80, seed=3)
        pms = result.column("PMs_used")
        assert pms == sorted(pms, reverse=True)

    def test_optimality_gap_small(self):
        result = run_optimality_gap(n_vms=10, n_instances=3)
        for row in result.rows:
            _, ffd_avg, opt_avg, l2_avg, _ = row
            assert l2_avg <= opt_avg <= ffd_avg

    def test_switch_sweep_headers(self):
        result = run_switch_sweep()
        assert "blocks_K" in result.headers
        assert len(result.rows) == 8
