"""Tests for repro.experiments — each paper artifact regenerates with the
paper's qualitative shape (scaled-down parameters for test speed)."""

import numpy as np
import pytest

from repro.analysis.report import render_result
from repro.experiments import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_table1,
    strategies_for_packing,
    strategies_for_runtime,
)

FAST = ExperimentSettings(n_intervals=60)


class TestConfig:
    def test_defaults_match_paper(self):
        s = DEFAULT_SETTINGS
        assert (s.rho, s.d, s.p_on, s.p_off, s.delta) == (0.01, 16, 0.01, 0.09, 0.3)
        assert s.n_intervals == 100

    def test_strategy_sets(self):
        assert set(strategies_for_packing()) == {"QUEUE", "RP", "RB"}
        assert set(strategies_for_runtime()) == {"QUEUE", "RB", "RB-EX"}


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(n_vms_list=(80, 160), n_repetitions=2, seed=1)

    def test_row_count(self, result):
        assert len(result.rows) == 3 * 2  # patterns x n values

    def test_queue_between_rb_and_rp(self, result):
        for row in result.rows:
            _, _, queue, rp, rb, _, _ = row
            assert rb <= queue <= rp

    def test_pm_counts_grow_with_n(self, result):
        for pattern in ("Rb=Re", "Rb>Re", "Rb<Re"):
            rows = [r for r in result.rows if r[0] == pattern]
            assert rows[0][2] < rows[1][2]  # QUEUE PMs increase with n

    def test_large_spikes_give_best_reduction(self, result):
        """Paper abstract: up to 45% with large spikes, ~30% normal."""
        def mean_reduction(pattern):
            return np.mean([r[5] for r in result.rows if r[0] == pattern])

        assert mean_reduction("Rb<Re") > mean_reduction("Rb=Re")
        assert mean_reduction("Rb=Re") > mean_reduction("Rb>Re")

    def test_renderable(self, result):
        assert "fig5" in render_result(result)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(n_vms=80, n_steps=8000, n_repetitions=2, seed=2)

    def test_rp_never_violates(self, result):
        for row in result.rows:
            if row[1] == "RP":
                assert row[2] == 0.0 and row[3] == 0.0

    def test_queue_bounded_by_rho(self, result):
        for row in result.rows:
            if row[1] == "QUEUE":
                assert row[2] <= 0.01 + 0.01  # mean CVR near rho

    def test_rb_disastrous(self, result):
        for pattern in ("Rb=Re", "Rb>Re", "Rb<Re"):
            rb = next(r for r in result.rows if r[0] == pattern and r[1] == "RB")
            queue = next(r for r in result.rows if r[0] == pattern and r[1] == "QUEUE")
            assert rb[2] > 10 * max(queue[2], 1e-6)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(d_values=(4, 8, 16), n_values=(50, 100), seed=3)

    def test_row_count(self, result):
        assert len(result.rows) == 6

    def test_cost_grows_with_d(self, result):
        for n in (50, 100):
            costs = [r[2] for r in result.rows if r[1] == n]  # mapcal_ms by d
            assert costs[0] < costs[-1]

    def test_total_is_sum(self, result):
        for row in result.rows:
            assert row[4] == pytest.approx(row[2] + row[3], rel=0.01)

    def test_millisecond_scale(self, result):
        # Paper: "very few overheads with moderate n and d values".
        assert all(r[4] < 2000.0 for r in result.rows)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8(n_intervals=300, seed=4)

    def test_two_levels_present(self, result):
        states = result.column("state")
        assert "OFF" in states  # ON may be rare but OFF is the norm
        requests = result.column("requests")
        assert max(requests) > 0

    def test_burstiness_noted(self, result):
        assert any("index of dispersion" in n for n in result.notes)


class TestTable1:
    def test_matches_paper(self):
        result = run_table1()
        assert len(result.rows) == 7
        assert result.rows[0] == ["Rb=Re", "small", "small", 400, 800]
        assert result.rows[2] == ["Rb=Re", "large", "large", 1600, 3200]
        assert result.rows[-1] == ["Rb<Re", "medium", "large", 800, 2400]


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig9(n_vms=50, n_repetitions=2, settings=FAST, seed=5)

    def test_rows_cover_grid(self, result):
        assert len(result.rows) == 9  # 3 patterns x 3 strategies

    def test_rb_migrates_most(self, result):
        for pattern in ("Rb=Re", "Rb>Re", "Rb<Re"):
            rows = {r[1]: r for r in result.rows if r[0] == pattern}
            assert rows["RB"][2] > rows["QUEUE"][2]

    def test_min_le_avg_le_max(self, result):
        for r in result.rows:
            assert r[3] <= r[2] <= r[4]
            assert r[6] <= r[5] <= r[7]


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig10(n_vms=50, settings=FAST, seed=6)

    def test_cumulative_curves_monotone(self, result):
        for col in ("QUEUE_cum_migrations", "RB_cum_migrations",
                    "RB-EX_cum_migrations"):
            series = result.column(col)
            assert series == sorted(series)

    def test_rb_ends_highest(self, result):
        assert result.column("RB_cum_migrations")[-1] >= (
            result.column("QUEUE_cum_migrations")[-1]
        )

    def test_queue_nearly_flat(self, result):
        q = result.column("QUEUE_cum_migrations")
        rb = result.column("RB_cum_migrations")
        assert q[-1] <= max(rb[-1] // 2, 2)
