"""Tests for repro.core.heterogeneous — exact Poisson-binomial reservations."""

import numpy as np
import pytest
from scipy.stats import binom

from repro.core.heterogeneous import (
    HeterogeneousQueuingFFD,
    heterogeneous_blocks,
    heterogeneous_cvr,
    poisson_binomial_pmf,
)
from repro.core.mapcal import mapcal
from repro.core.types import PMSpec, VMSpec
from repro.placement.base import InsufficientCapacityError
from repro.placement.validation import check_capacity_at_base, check_placement_complete


def vm(p_on, p_off, base=10.0, extra=10.0):
    return VMSpec(p_on, p_off, base, extra)


class TestPoissonBinomial:
    def test_equal_probs_reduce_to_binomial(self):
        pmf = poisson_binomial_pmf(np.full(10, 0.3))
        np.testing.assert_allclose(pmf, binom.pmf(np.arange(11), 10, 0.3),
                                   atol=1e-12)

    def test_bruteforce_small(self):
        q = np.array([0.2, 0.5, 0.9])
        pmf = poisson_binomial_pmf(q)
        brute = np.zeros(4)
        for mask in range(8):
            p = 1.0
            ones = 0
            for i in range(3):
                if mask >> i & 1:
                    p *= q[i]
                    ones += 1
                else:
                    p *= 1 - q[i]
            brute[ones] += p
        np.testing.assert_allclose(pmf, brute, atol=1e-15)

    def test_empty(self):
        np.testing.assert_array_equal(poisson_binomial_pmf(np.empty(0)), [1.0])

    def test_sums_to_one(self):
        rng = np.random.default_rng(0)
        pmf = poisson_binomial_pmf(rng.random(50))
        assert pmf.sum() == pytest.approx(1.0)
        assert np.all(pmf >= 0)

    def test_degenerate_probs(self):
        pmf = poisson_binomial_pmf(np.array([0.0, 1.0, 1.0]))
        np.testing.assert_allclose(pmf, [0, 0, 1, 0], atol=1e-15)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            poisson_binomial_pmf(np.array([1.5]))
        with pytest.raises(ValueError):
            poisson_binomial_pmf(np.ones((2, 2)))


class TestHeterogeneousBlocks:
    def test_uniform_matches_mapcal(self):
        """For uniform (p_on, p_off) the exact method equals Algorithm 1 —
        the paper's chain has the binomial as stationary marginal."""
        for k in (4, 8, 16):
            vms = [vm(0.01, 0.09)] * k
            assert heterogeneous_blocks(vms, 0.01) == mapcal(k, 0.01, 0.09, 0.01)

    def test_empty_set(self):
        assert heterogeneous_blocks([], 0.01) == 0

    def test_cvr_bound_met_exactly(self):
        vms = [vm(0.01, 0.09), vm(0.05, 0.05), vm(0.02, 0.18)]
        for rho in (0.3, 0.1, 0.01):
            K = heterogeneous_blocks(vms, rho)
            assert heterogeneous_cvr(vms, K) <= rho + 1e-12
            if K > 0:
                assert heterogeneous_cvr(vms, K - 1) > rho - 1e-12

    def test_burstier_vms_need_more_blocks(self):
        calm = [vm(0.01, 0.2)] * 10   # q ~ 0.048
        busy = [vm(0.05, 0.05)] * 10  # q = 0.5
        assert heterogeneous_blocks(busy, 0.01) > heterogeneous_blocks(calm, 0.01)

    def test_cvr_zero_when_blocks_cover_all(self):
        vms = [vm(0.5, 0.5)] * 5
        assert heterogeneous_cvr(vms, 5) == 0.0

    def test_matches_simulation(self):
        """The exact stationary tail matches long-run simulation of a
        genuinely heterogeneous ensemble."""
        from repro.workload.onoff_generator import ensemble_states

        vms = [vm(0.01, 0.09), vm(0.03, 0.07), vm(0.02, 0.18),
               vm(0.05, 0.05), vm(0.01, 0.19)]
        K = 2
        states = ensemble_states(vms, 300_000, start_stationary=True, seed=1)
        busy = states.sum(axis=0)
        empirical = float((busy > K).mean())
        assert empirical == pytest.approx(heterogeneous_cvr(vms, K), abs=0.005)


class TestHeterogeneousPlacer:
    def _fleet(self, n, seed):
        rng = np.random.default_rng(seed)
        return [
            vm(float(rng.uniform(0.005, 0.03)), float(rng.uniform(0.05, 0.15)),
               base=float(rng.uniform(2, 20)), extra=float(rng.uniform(2, 20)))
            for _ in range(n)
        ]

    def test_places_everything_validly(self):
        vms = self._fleet(80, seed=0)
        pms = [PMSpec(float(c)) for c in
               np.random.default_rng(1).uniform(80, 100, 80)]
        placer = HeterogeneousQueuingFFD(rho=0.01, d=16)
        placement, states = placer.place_with_states(vms, pms)
        check_placement_complete(placement)
        check_capacity_at_base(placement, vms, pms)
        for pm_idx, state in enumerate(states):
            if state.count:
                assert state.committed <= pms[pm_idx].capacity + 1e-6
                assert state.count <= 16

    def test_exact_cvr_bound_holds_per_pm(self):
        vms = self._fleet(60, seed=2)
        pms = [PMSpec(100.0)] * 60
        placer = HeterogeneousQueuingFFD(rho=0.01, d=16)
        placement, states = placer.place_with_states(vms, pms)
        for pm_idx, state in enumerate(states):
            if state.count:
                hosted = [vms[i] for i in state.vm_ids]
                assert heterogeneous_cvr(hosted, state.n_blocks) <= 0.01 + 1e-9

    def test_no_worse_than_conservative_rounding(self):
        """Exact reservations pack at least as tight as the conservative
        rounding rule (which over-reserves by construction)."""
        from repro.core.queuing_ffd import QueuingFFD

        vms = self._fleet(100, seed=3)
        pms = [PMSpec(100.0)] * 100
        exact = HeterogeneousQueuingFFD(rho=0.01, d=16).place(vms, pms)
        conservative = QueuingFFD(rho=0.01, d=16,
                                  rounding_rule="conservative").place(vms, pms)
        assert exact.n_used_pms <= conservative.n_used_pms

    def test_uniform_fleet_matches_standard_queue(self):
        from repro.core.queuing_ffd import QueuingFFD
        from repro.workload.patterns import generate_pattern_instance

        vms, pms = generate_pattern_instance("equal", 60, seed=4)
        het = HeterogeneousQueuingFFD(rho=0.01, d=16).place(vms, pms)
        std = QueuingFFD(rho=0.01, d=16).place(vms, pms)
        assert het.n_used_pms == std.n_used_pms

    def test_insufficient_capacity(self):
        vms = [vm(0.01, 0.09, base=90.0, extra=20.0)]
        with pytest.raises(InsufficientCapacityError):
            HeterogeneousQueuingFFD(rho=0.01).place(vms, [PMSpec(95.0)])

    def test_empty(self):
        placement = HeterogeneousQueuingFFD().place([], [PMSpec(10.0)])
        assert placement.n_vms == 0

    def test_simulated_cvr_bounded(self):
        """End to end: heterogeneous fleet placed exactly, simulated CVR
        respects rho (the thing mean-rounding fails at)."""
        from repro.analysis.cvr import evaluate_placement_cvr

        vms = self._fleet(80, seed=5)
        pms = [PMSpec(100.0)] * 80
        placement = HeterogeneousQueuingFFD(rho=0.01, d=16).place(vms, pms)
        stats = evaluate_placement_cvr(placement, vms, pms,
                                       n_steps=40_000, seed=6)
        assert stats["mean"] <= 0.013
