"""Tests for the fault-domain spread constraint across placers."""

import numpy as np
import pytest

from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import PMSpec, VMSpec
from repro.placement.base import InsufficientCapacityError
from repro.placement.ffd import NextFit, ffd_by_base, ffd_by_peak
from repro.placement.spread import DomainSpreadConstraint
from repro.simulation.topology import Topology
from repro.workload.patterns import generate_pattern_instance


def small_vms(n, base=10.0):
    return [VMSpec(0.01, 0.09, base, 0.0) for _ in range(n)]


class TestConstraint:
    def test_cap_validation(self):
        topo = Topology.racks(4, 2)
        with pytest.raises(ValueError):
            DomainSpreadConstraint(topo, 0)

    def test_allowed_and_admit(self):
        topo = Topology.racks(4, 2)
        spread = DomainSpreadConstraint(topo, 1)
        counts = spread.new_counts()
        assert spread.allowed_pms(counts).all()
        spread.admit(0, counts)
        np.testing.assert_array_equal(
            spread.allowed_pms(counts), [False, False, True, True]
        )

    def test_check_n_pms(self):
        spread = DomainSpreadConstraint(Topology.racks(4, 2), 2)
        with pytest.raises(ValueError, match="4 PMs"):
            spread.check_n_pms(6)


class TestWithPlacers:
    def _assert_cap_respected(self, placement, topo, cap):
        counts = topo.vm_domain_counts(placement.assignment)
        assert counts.max() <= cap

    @pytest.mark.parametrize("make", [
        lambda s: ffd_by_peak(max_vms_per_pm=16, spread=s),
        lambda s: ffd_by_base(max_vms_per_pm=16, spread=s),
        lambda s: NextFit(max_vms_per_pm=16, spread=s),
        lambda s: QueuingFFD(rho=0.01, d=16, spread=s),
    ])
    def test_cap_respected(self, make):
        vms, pms = generate_pattern_instance("equal", 40, seed=3)
        topo = Topology.racks(len(pms), 2)
        cap = 4
        placer = make(DomainSpreadConstraint(topo, cap))
        placement = placer.place(vms, pms)
        self._assert_cap_respected(placement, topo, cap)

    def test_spread_uses_more_pms(self):
        vms, pms = generate_pattern_instance("equal", 60, seed=7)
        topo = Topology.racks(len(pms), 2)
        dense = QueuingFFD(rho=0.01, d=16).place(vms, pms).n_used_pms
        spread = QueuingFFD(
            rho=0.01, d=16, spread=DomainSpreadConstraint(topo, 4)
        ).place(vms, pms).n_used_pms
        assert spread >= dense

    def test_infeasible_cap_raises(self):
        # 10 VMs, one domain, cap 4: impossible regardless of capacity.
        vms = small_vms(10)
        pms = [PMSpec(1000.0)] * 3
        spread = DomainSpreadConstraint(Topology.single_domain(3), 4)
        with pytest.raises(InsufficientCapacityError):
            ffd_by_base(spread=spread).place(vms, pms)

    def test_queuing_ffd_reference_agrees_with_spread(self):
        vms, pms = generate_pattern_instance("equal", 30, seed=11)
        topo = Topology.racks(len(pms), 2)
        placer = QueuingFFD(rho=0.01, d=16,
                            spread=DomainSpreadConstraint(topo, 4))
        fast, _ = placer.place_with_states(vms, pms)
        slow, _ = placer._place_reference(vms, pms)
        np.testing.assert_array_equal(fast.assignment, slow.assignment)

    def test_topology_size_mismatch_raises(self):
        vms = small_vms(4)
        pms = [PMSpec(100.0)] * 6
        spread = DomainSpreadConstraint(Topology.racks(4, 2), 2)
        with pytest.raises(ValueError):
            ffd_by_base(spread=spread).place(vms, pms)
