"""Tests for repro.core.multidim — the Section IV-E extension."""

import numpy as np
import pytest

from repro.core.mapcal import mapcal_table
from repro.core.multidim import (
    MultiDimFirstFit,
    MultiDimPMSpec,
    MultiDimVMSpec,
    map_correlated_to_scalar,
)
from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import PMSpec, VMSpec
from repro.placement.base import InsufficientCapacityError

P_ON, P_OFF = 0.01, 0.09


def mdvm(bases, extras):
    return MultiDimVMSpec(P_ON, P_OFF, tuple(bases), tuple(extras))


class TestSpecs:
    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dims"):
            MultiDimVMSpec(P_ON, P_OFF, (1.0, 2.0), (1.0,))

    def test_empty_dims_rejected(self):
        with pytest.raises(ValueError):
            MultiDimVMSpec(P_ON, P_OFF, (), ())
        with pytest.raises(ValueError):
            MultiDimPMSpec(())

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            MultiDimVMSpec(P_ON, P_OFF, (-1.0,), (1.0,))

    def test_projection(self):
        vm = mdvm([1.0, 2.0], [3.0, 4.0])
        p = vm.projected(1)
        assert isinstance(p, VMSpec)
        assert p.r_base == 2.0 and p.r_extra == 4.0

    def test_pm_capacity_validation(self):
        with pytest.raises(ValueError):
            MultiDimPMSpec((10.0, 0.0))


class TestPlacement:
    def test_reduces_to_1d_first_fit(self):
        """On one dimension, MultiDimFirstFit == QueuingFFD without
        clustering/sorting, so Eq. 17 must hold identically."""
        vms = [mdvm([10.0], [10.0]) for _ in range(8)]
        pms = [MultiDimPMSpec((100.0,)) for _ in range(8)]
        placement = MultiDimFirstFit(rho=0.01, d=16).place(vms, pms)
        mapping = mapcal_table(16, P_ON, P_OFF, 0.01)
        for pm_idx in placement.used_pms():
            hosted = placement.vms_on(int(pm_idx))
            k = len(hosted)
            committed = 10.0 * k + 10.0 * mapping.blocks_for(k)
            assert committed <= 100.0 + 1e-9

    def test_every_dimension_constrained(self):
        # Dimension 1 is the bottleneck: base 50 each, capacity 80.
        vms = [mdvm([1.0, 50.0], [1.0, 10.0]) for _ in range(4)]
        pms = [MultiDimPMSpec((1000.0, 80.0)) for _ in range(4)]
        placement = MultiDimFirstFit(rho=0.01, d=16).place(vms, pms)
        assert placement.n_used_pms == 4  # one VM per PM due to dim 1

    def test_all_placed(self):
        rng = np.random.default_rng(0)
        vms = [
            mdvm(rng.uniform(2, 10, 2), rng.uniform(2, 10, 2)) for _ in range(40)
        ]
        pms = [MultiDimPMSpec((100.0, 100.0)) for _ in range(40)]
        placement = MultiDimFirstFit().place(vms, pms)
        assert placement.all_placed

    def test_dimensionality_mismatch_raises(self):
        vms = [mdvm([1.0], [1.0]), mdvm([1.0, 2.0], [1.0, 2.0])]
        pms = [MultiDimPMSpec((10.0,))]
        with pytest.raises(ValueError, match="dimensionality"):
            MultiDimFirstFit().place(vms, pms)
        with pytest.raises(ValueError, match="dimensionality"):
            MultiDimFirstFit().place([mdvm([1.0, 1.0], [1.0, 1.0])], pms)

    def test_insufficient_capacity(self):
        vms = [mdvm([90.0], [20.0])]
        pms = [MultiDimPMSpec((100.0,))]
        with pytest.raises(InsufficientCapacityError):
            MultiDimFirstFit(rho=0.01).place(vms, pms)

    def test_empty_instance(self):
        placement = MultiDimFirstFit().place([], [])
        assert placement.n_vms == 0

    def test_map_correlated_default_weights(self):
        vms = [mdvm([10.0, 20.0], [5.0, 10.0])]
        pms = [MultiDimPMSpec((100.0, 200.0))]
        scalar_vms, scalar_caps = map_correlated_to_scalar(vms, pms)
        # weights 1/100, 1/200: base = 0.1 + 0.1 = 0.2; extra = 0.05 + 0.05
        assert scalar_vms[0].r_base == pytest.approx(0.2)
        assert scalar_vms[0].r_extra == pytest.approx(0.1)
        assert scalar_caps[0] == pytest.approx(2.0)
        # switch probabilities carried through
        assert scalar_vms[0].p_on == P_ON

    def test_map_correlated_custom_weights(self):
        vms = [mdvm([10.0, 20.0], [0.0, 0.0])]
        pms = [MultiDimPMSpec((100.0, 200.0))]
        scalar_vms, _ = map_correlated_to_scalar(vms, pms, weights=[1.0, 0.0])
        assert scalar_vms[0].r_base == 10.0

    def test_map_correlated_feasibility_preserved(self):
        """Under perfect correlation, the scalar encoding's Eq. (17)
        admission decisions match the multi-dim test exactly — verified by
        running the same input-order first fit on both encodings."""
        from repro.core.reservation import fits_with_reservation
        from repro.core.mapcal import mapcal_table

        rng = np.random.default_rng(7)
        bases = rng.uniform(5, 15, 30)
        extras = rng.uniform(5, 15, 30)
        vms_md = [mdvm([b, 2 * b], [e, 2 * e]) for b, e in zip(bases, extras)]
        pms_md = [MultiDimPMSpec((100.0, 200.0))] * 30
        scalar_vms, scalar_caps = map_correlated_to_scalar(vms_md, pms_md)
        md = MultiDimFirstFit(rho=0.01, d=16).place(vms_md, pms_md)

        # input-order scalar first fit with the identical admission rule
        mapping = mapcal_table(16, P_ON, P_OFF, 0.01)
        counts = [0] * 30
        base_sums = [0.0] * 30
        max_extras = [0.0] * 30
        assignment = []
        for vm in scalar_vms:
            for pm_idx in range(30):
                if fits_with_reservation(
                    vm, scalar_caps[pm_idx], current_count=counts[pm_idx],
                    current_base_sum=base_sums[pm_idx],
                    current_max_extra=max_extras[pm_idx], mapping=mapping,
                ):
                    counts[pm_idx] += 1
                    base_sums[pm_idx] += vm.r_base
                    max_extras[pm_idx] = max(max_extras[pm_idx], vm.r_extra)
                    assignment.append(pm_idx)
                    break
        # Same order + same admission semantics -> identical assignment.
        np.testing.assert_array_equal(assignment, md.assignment)

    def test_map_correlated_validation(self):
        with pytest.raises(ValueError):
            map_correlated_to_scalar([], [])
        vms = [mdvm([1.0], [1.0])]
        pms = [MultiDimPMSpec((10.0, 10.0))]
        with pytest.raises(ValueError, match="dimensionality"):
            map_correlated_to_scalar(vms, pms)
        with pytest.raises(ValueError, match="weights"):
            map_correlated_to_scalar(
                [mdvm([1.0, 1.0], [1.0, 1.0])], pms, weights=[0.0, 0.0]
            )

    def test_correlated_dims_equiv_to_scalar_mapping(self):
        """The paper's correlated-dimension advice: mapping both dimensions
        to one scalar and running QueuingFFD gives the same feasibility as
        running multidim on perfectly correlated inputs."""
        rng = np.random.default_rng(1)
        bases = rng.uniform(5, 15, 20)
        extras = rng.uniform(5, 15, 20)
        vms_md = [mdvm([b, 2 * b], [e, 2 * e]) for b, e in zip(bases, extras)]
        pms_md = [MultiDimPMSpec((100.0, 200.0)) for _ in range(20)]
        md = MultiDimFirstFit(rho=0.01, d=16).place(vms_md, pms_md)

        vms_1d = [VMSpec(P_ON, P_OFF, float(b), float(e))
                  for b, e in zip(bases, extras)]
        ffd = QueuingFFD(rho=0.01, d=16, cluster_method="none")
        # Same admission rule, same order (input order vs sorted): compare
        # only the used-PM count of first-fit in input order by disabling
        # sorting via a manual first-fit over the same mapping.
        placement_1d = ffd.place(vms_1d, [PMSpec(100.0) for _ in range(20)])
        # Perfect correlation means dimension 2 is never the binding one.
        assert md.n_used_pms <= placement_1d.n_used_pms + 2
