"""Tests for repro.simulation.migration — policies and idle deception."""

import numpy as np
import pytest

from repro.core.types import Placement, PMSpec, VMSpec
from repro.simulation.datacenter import Datacenter
from repro.simulation.migration import (
    StandardPolicy,
    select_target_least_loaded,
    select_target_most_free,
    select_target_reservation_aware,
    select_vm_largest_demand,
    select_vm_min_sufficient,
)

P_ON, P_OFF = 0.01, 0.09


def vm(base, extra):
    return VMSpec(P_ON, P_OFF, base, extra)


def make_dc(vms, pms, assignment, on_flags=None, seed=0):
    placement = Placement(len(vms), len(pms),
                          assignment=np.asarray(assignment))
    dc = Datacenter(vms, pms, placement, seed=seed)
    if on_flags is not None:
        flags = np.asarray(on_flags, dtype=bool)
        dc._on = flags
        for i, runtime in enumerate(dc.vms):
            runtime.on = bool(flags[i])
    return dc


class TestVmSelection:
    def test_largest_demand(self):
        dc = make_dc(
            [vm(10, 0), vm(30, 0), vm(20, 0)],
            [PMSpec(100.0)], [0, 0, 0],
        )
        assert select_vm_largest_demand(dc, 0) == 1

    def test_largest_demand_considers_spikes(self):
        dc = make_dc(
            [vm(10, 50), vm(30, 0)],
            [PMSpec(100.0)], [0, 0],
            on_flags=[True, False],
        )
        assert select_vm_largest_demand(dc, 0) == 0

    def test_min_sufficient_picks_smallest_clearing_vm(self):
        # load 60 on capacity 50: excess 10; VM demands 5, 15, 40.
        dc = make_dc(
            [vm(5, 0), vm(15, 0), vm(40, 0)],
            [PMSpec(50.0)], [0, 0, 0],
        )
        assert select_vm_min_sufficient(dc, 0) == 1

    def test_min_sufficient_falls_back_to_largest(self):
        # No single VM clears the excess -> move the largest.
        dc = make_dc(
            [vm(30, 0), vm(30, 0), vm(30, 0)],
            [PMSpec(25.0)], [0, 0, 0],
        )
        assert select_vm_min_sufficient(dc, 0) == 0  # all equal; ties -> lowest id

    def test_empty_pm_raises(self):
        dc = make_dc([vm(1, 0)], [PMSpec(10.0), PMSpec(10.0)], [0])
        with pytest.raises(ValueError, match="hosts no VMs"):
            select_vm_largest_demand(dc, 1)
        with pytest.raises(ValueError, match="hosts no VMs"):
            select_vm_min_sufficient(dc, 1)


class TestTargetSelection:
    def test_least_loaded_prefers_used_pm(self):
        # PM0 overloaded source; PM1 used and light; PM2 idle.
        dc = make_dc(
            [vm(40, 0), vm(40, 0), vm(5, 0)],
            [PMSpec(60.0), PMSpec(60.0), PMSpec(60.0)],
            [0, 0, 1],
        )
        assert select_target_least_loaded(dc, 0, 0) == 1

    def test_least_loaded_powers_on_idle_as_last_resort(self):
        dc = make_dc(
            [vm(40, 0), vm(40, 0), vm(50, 0)],
            [PMSpec(60.0), PMSpec(60.0), PMSpec(60.0)],
            [0, 0, 1],
        )
        # VM 0 (40) does not fit on PM1 (50 + 40 > 60) -> idle PM2.
        assert select_target_least_loaded(dc, 0, 0) == 2

    def test_returns_none_when_nothing_fits(self):
        dc = make_dc(
            [vm(40, 0), vm(40, 0), vm(50, 0)],
            [PMSpec(60.0), PMSpec(60.0)],
            [0, 0, 1],
        )
        assert select_target_least_loaded(dc, 0, 0) is None

    def test_source_never_selected(self):
        dc = make_dc(
            [vm(10, 0)],
            [PMSpec(100.0), PMSpec(100.0)],
            [0],
        )
        assert select_target_least_loaded(dc, 0, 0) == 1

    def test_idle_deception_demonstrated(self):
        """The least-loaded policy picks a PM that merely *looks* idle: its
        VMs are OFF now but their bases fill the PM, so the move will
        overload it at the next spike — the paper's idle deception."""
        vms = [vm(30, 30),              # the migrating VM
               vm(25, 25), vm(25, 25),  # PM1: heavy bases, currently OFF
               vm(10, 10)]              # PM2: light but currently ON
        dc = make_dc(
            vms,
            [PMSpec(100.0), PMSpec(100.0), PMSpec(100.0)],
            [0, 1, 1, 2],
            on_flags=[False, False, False, True],
        )
        # observed loads: PM1 = 50 (deceptively idle), PM2 = 20
        target = select_target_least_loaded(dc, 0, 0)
        assert target == 2  # 20 < 50: picks PM2 here...
        # ...but make PM2's VM heavier-looking and PM1 still OFF:
        dc2 = make_dc(
            vms,
            [PMSpec(100.0), PMSpec(100.0), PMSpec(100.0)],
            [0, 1, 1, 2],
            on_flags=[False, False, False, False],
        )
        # observed: PM1 = 50, PM2 = 10 -> PM2; flip PM2's base up:
        vms3 = [vm(30, 30), vm(25, 25), vm(25, 25), vm(60, 30)]
        dc3 = make_dc(
            vms3,
            [PMSpec(100.0), PMSpec(100.0), PMSpec(100.0)],
            [0, 1, 1, 2],
            on_flags=[False, False, False, False],
        )
        target3 = select_target_least_loaded(dc3, 0, 0)
        assert target3 == 1
        # the deception: if both PM1 VMs spike, 50 + 50 + 30 > 100
        peak_after_move = sum(v.r_peak for v in (vms3[0], vms3[1], vms3[2]))
        assert peak_after_move > 100.0

    def test_reservation_aware_avoids_deceptively_idle_pm(self):
        vms = [vm(30, 30), vm(25, 25), vm(25, 25), vm(60, 30)]
        dc = make_dc(
            vms,
            [PMSpec(100.0), PMSpec(100.0), PMSpec(100.0), PMSpec(100.0)],
            [0, 1, 1, 2],
            on_flags=[False, False, False, False],
        )
        # base-aware with 30% headroom: PM1 bases 50 + 30 = 80 > 70 -> reject;
        # PM2 bases 60 + 30 = 90 > 70 -> reject; opens idle PM3 instead.
        target = select_target_reservation_aware(dc, 0, 0, headroom_fraction=0.3)
        assert target == 3

    def test_most_free_ranks_by_absolute_room(self):
        dc = make_dc(
            [vm(10, 0), vm(30, 0), vm(20, 0)],
            [PMSpec(100.0), PMSpec(50.0), PMSpec(100.0)],
            [0, 1, 2],
        )
        # free: PM1 = 20, PM2 = 80 -> PM2 wins for VM 0
        assert select_target_most_free(dc, 0, 0) == 2


class TestStandardPolicy:
    def test_default_bundle(self):
        policy = StandardPolicy()
        dc = make_dc(
            [vm(40, 0), vm(10, 0), vm(5, 0)],
            [PMSpec(45.0), PMSpec(45.0)],
            [0, 0, 1],
        )
        assert policy.pick_vm(dc, 0) == 0
        assert policy.pick_target(dc, 1, 0) == 1

    def test_custom_functions(self):
        policy = StandardPolicy(pick_vm_fn=select_vm_min_sufficient,
                                pick_target_fn=select_target_most_free)
        dc = make_dc(
            [vm(5, 0), vm(15, 0), vm(40, 0)],
            [PMSpec(50.0), PMSpec(100.0)],
            [0, 0, 0],
        )
        assert policy.pick_vm(dc, 0) == 1
