"""Acceptance gate for the autopilot ablation (ISSUE 6).

Under a regime shift, the closed-loop autopilot must beat the never-adapt
baseline on post-shift CVR *and* SLO burn while staying within its
migration budget — and the oracle arm bounds it from below.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import ABLATIONS
from repro.experiments.autopilot_ablation import run_autopilot_ablation


@pytest.fixture(scope="module")
def result():
    return run_autopilot_ablation(n_vms=48, n_intervals=420, seed=230)


def _arm(result, name):
    return result.arms[name]


def test_registered_in_ablation_registry():
    assert "ablation_autopilot" in ABLATIONS
    assert ABLATIONS["ablation_autopilot"][0] is run_autopilot_ablation


def test_autopilot_beats_never_adapt_on_cvr(result):
    assert (_arm(result, "autopilot")["cvr_post"]
            < _arm(result, "never-adapt")["cvr_post"])


def test_autopilot_beats_never_adapt_on_slo_burn(result):
    assert (_arm(result, "autopilot")["burn_intervals"]
            < _arm(result, "never-adapt")["burn_intervals"])


def test_autopilot_stays_within_migration_budget(result):
    ap = _arm(result, "autopilot")
    budget = result.params["migration_budget"]
    assert ap["replans"] >= 1
    assert ap["planned"] <= budget * ap["replans"]


def test_autopilot_commits_without_rollback_on_true_drift(result):
    stats = _arm(result, "autopilot")["autopilot"]
    assert stats.replans_committed >= 1
    assert stats.rollback_parity is True


def test_oracle_bounds_the_autopilot(result):
    # perfect knowledge can't do worse than the estimated refit (small
    # slack: both are near-zero post-repack and stochastically close)
    oracle = _arm(result, "oracle")["cvr_post"]
    autopilot = _arm(result, "autopilot")["cvr_post"]
    assert oracle <= autopilot + 0.01


def test_table_shape(result):
    assert [row[0] for row in result.rows] == ["never-adapt", "autopilot",
                                               "oracle"]
    assert len(result.headers) == 7
