"""Metrics registry: counters, gauges, histogram percentiles, exporters."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.telemetry import Counter, Histogram, MetricsRegistry


class TestCounterGauge:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("migrations_total", "help text")
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("pms_used")
        g.set(12)
        g.inc(-2)
        assert g.value == 10

    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_type_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_bad_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("", "1abc", "has space", "has-dash"):
            with pytest.raises(ValueError):
                reg.counter(bad)


class TestHistogram:
    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[1.0, 1.0, 2.0])

    def test_percentile_matches_numpy_within_bucket_width(self):
        # Fixed-bucket estimation: error is bounded by the width of the
        # bucket containing the true percentile.
        rng = np.random.default_rng(42)
        values = rng.gamma(shape=2.0, scale=0.02, size=5000)
        bounds = [0.001 * 2**i for i in range(14)]  # 1ms .. ~8s
        h = Histogram("latency", buckets=bounds)
        for v in values:
            h.observe(float(v))
        edges = np.array([0.0, *bounds, np.inf])
        for q in (0.5, 0.9, 0.99):
            true = float(np.quantile(values, q))
            est = h.percentile(q)
            width = float(np.diff(edges)[np.searchsorted(edges, true) - 1])
            assert abs(est - true) <= width, (q, est, true, width)

    def test_percentile_clamped_by_observed_extremes(self):
        h = Histogram("h", buckets=[10.0, 100.0])
        h.observe(42.0)
        assert h.percentile(0.0) == 42.0
        assert h.percentile(1.0) == 42.0

    def test_mean_and_sum_exact(self):
        h = Histogram("h", buckets=[1.0, 2.0])
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        assert h.sum == pytest.approx(5.0)
        assert h.mean == pytest.approx(5.0 / 3)

    def test_empty_percentile_is_nan(self):
        h = Histogram("h", buckets=[1.0, 2.0])
        for q in (0.0, 0.5, 0.99, 1.0):
            assert math.isnan(h.percentile(q))

    def test_nan_only_observations_yield_nan_not_inf(self):
        # NaN comparisons are all False, so observations never establish a
        # finite min/max; the percentile must admit it knows nothing
        # instead of reporting the +/-inf sentinels.
        h = Histogram("h", buckets=[1.0, 2.0])
        h.observe(float("nan"))
        assert h.count == 1
        assert math.isnan(h.percentile(0.5))

    def test_to_dict_is_json_safe_with_nan_observations(self):
        h = Histogram("h", buckets=[1.0, 2.0])
        h.observe(float("nan"))
        d = h.to_dict()
        # json.dumps would emit bare NaN (invalid JSON) for these
        assert d["sum"] is None
        assert d["min"] is None and d["max"] is None
        assert d["mean"] is None
        assert d["p50"] is None and d["p90"] is None and d["p99"] is None
        json.loads(json.dumps(d))  # round-trips as strict JSON

    def test_to_dict_unchanged_for_finite_observations(self):
        h = Histogram("h", buckets=[1.0, 2.0])
        h.observe(0.5)
        d = h.to_dict()
        assert d["sum"] == pytest.approx(0.5)
        assert d["p50"] == pytest.approx(0.5)


class TestExporters:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("migrations_total", "completed migrations").inc(7)
        reg.gauge("pms_used", "powered-on PMs").set(12)
        h = reg.histogram("span_seconds", "span durations",
                          buckets=[0.1, 1.0])
        h.observe(0.05)
        h.observe(0.5)
        return reg

    def test_prometheus_text_format(self):
        text = self._populated().to_prometheus()
        assert "# HELP migrations_total completed migrations" in text
        assert "# TYPE migrations_total counter" in text
        assert "migrations_total 7" in text
        assert "# TYPE pms_used gauge" in text
        # histogram buckets are cumulative and end at +Inf
        assert 'span_seconds_bucket{le="0.1"} 1' in text
        assert 'span_seconds_bucket{le="1"} 2' in text
        assert 'span_seconds_bucket{le="+Inf"} 2' in text
        assert "span_seconds_count 2" in text

    def test_json_round_trips(self):
        snapshot = json.loads(self._populated().to_json())
        assert snapshot["migrations_total"] == {"type": "counter", "value": 7}
        assert snapshot["pms_used"] == {"type": "gauge", "value": 12}
        hist = snapshot["span_seconds"]
        assert hist["type"] == "histogram"
        assert hist["count"] == 2
        assert hist["p50"] is not None
