"""ablation_service: registration, determinism, and the fluid-limit bound."""

import pytest

from repro.core.types import VMSpec
from repro.experiments.ablations import ABLATIONS
from repro.experiments.service_ablation import (
    fluid_limit_pms,
    run_service_ablation,
)

VM = VMSpec(p_on=0.1, p_off=0.5, r_base=2.0, r_extra=3.0)

TINY = dict(n_pms=6, capacity=10.0, n_ticks=12, mean_life=4.0,
            rates=(0.5, 3.0), seed=5)


class TestFluidLimit:
    def test_bound_is_monotone_in_rate(self):
        bounds = [fluid_limit_pms(r, 8.0, VM, 10.0, rho=0.01, d=8)
                  for r in (0.5, 2.0, 5.0)]
        assert bounds == sorted(bounds)
        assert bounds[0] >= 1

    def test_infeasible_vm_class_raises(self):
        fat = VMSpec(p_on=0.1, p_off=0.5, r_base=50.0, r_extra=10.0)
        with pytest.raises(ValueError, match="fits on no PM"):
            fluid_limit_pms(1.0, 8.0, fat, 10.0, rho=0.01, d=8)


class TestAblation:
    def test_registered(self):
        assert "ablation_service" in ABLATIONS
        fn, desc = ABLATIONS["ablation_service"]
        assert fn is run_service_ablation
        assert "GRAND" in desc

    def test_deterministic_across_reruns(self):
        first = run_service_ablation(**TINY)
        second = run_service_ablation(**TINY)
        assert first.rows == second.rows

    def test_covers_both_strategies_and_pools(self):
        result = run_service_ablation(**TINY)
        strategies = {(r[0], r[1]) for r in result.rows}
        assert strategies == {("QUEUE", "static"), ("QUEUE", "elastic"),
                              ("GRAND", "static"), ("GRAND", "elastic")}
        for row in result.rows:
            mean_used, peak_used = row[4], row[5]
            assert 0 <= mean_used <= peak_used <= TINY["n_pms"]
            assert 0.0 <= row[6] <= 1.0      # shed rate is a fraction
            assert 0 <= row[7] <= TINY["n_pms"]  # retired PM count

    def test_static_pool_never_retires(self):
        result = run_service_ablation(**TINY)
        for row in result.rows:
            if row[1] == "static":
                assert row[7] == 0
