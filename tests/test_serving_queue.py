"""Per-VM queues, the latency histogram, and the capacity rule."""

from __future__ import annotations

import pytest

from repro.serving import LatencyHistogram, VMQueue, service_capacity


class TestLatencyHistogram:
    def test_empty_histogram(self):
        h = LatencyHistogram(16)
        assert h.total == 0
        assert h.percentile(0.5) != h.percentile(0.5)  # NaN
        assert h.mean != h.mean  # NaN
        assert h.tail_probability(3) == 0.0

    def test_percentiles_are_exact_order_statistics(self):
        h = LatencyHistogram(16)
        for latency, n in ((1, 50), (2, 30), (5, 15), (9, 5)):
            h.record(latency, n)
        assert h.total == 100
        assert h.percentile(0.50) == 1.0
        assert h.percentile(0.80) == 2.0
        assert h.percentile(0.95) == 5.0
        assert h.percentile(0.99) == 9.0
        assert h.percentile(1.00) == 9.0

    def test_tail_probability(self):
        h = LatencyHistogram(16)
        h.record(2, 90)
        h.record(10, 10)
        assert h.tail_probability(2) == pytest.approx(0.10)
        assert h.tail_probability(9) == pytest.approx(0.10)
        assert h.tail_probability(10) == 0.0
        assert h.tail_probability(0) == 1.0

    def test_mean_uses_unclamped_sum(self):
        h = LatencyHistogram(4)
        h.record(2, 1)
        h.record(100, 1)  # clamped into top bucket
        assert h.overflow == 1
        assert h.counts[4] == 1
        assert h.mean == pytest.approx(51.0)

    def test_record_validation(self):
        h = LatencyHistogram(4)
        with pytest.raises(ValueError, match="latency"):
            h.record(0)
        h.record(1, n=0)  # no-op
        assert h.total == 0

    def test_merge(self):
        a, b = LatencyHistogram(8), LatencyHistogram(8)
        a.record(1, 3)
        b.record(5, 2)
        a.merge(b)
        assert a.total == 5
        assert a.counts[5] == 2
        with pytest.raises(ValueError, match="max_latency"):
            a.merge(LatencyHistogram(16))

    def test_capture_restore_round_trip(self):
        h = LatencyHistogram(8)
        h.record(3, 7)
        h.record(20, 2)
        state = h.capture_state()
        h2 = LatencyHistogram(8)
        h2.restore_state(state)
        assert h2.capture_state() == state
        assert h2.mean == h.mean
        with pytest.raises(ValueError, match="max_latency"):
            LatencyHistogram(4).restore_state(state)


class TestVMQueue:
    def test_admit_blocks_at_capacity(self):
        q = VMQueue(10)
        assert q.admit(0, 7) == 7
        assert q.admit(0, 7) == 3  # only 3 slots left
        assert q.depth == 10
        assert q.free == 0
        assert q.admit(1, 5) == 0

    def test_fifo_service_and_sojourn(self):
        q = VMQueue(100)
        h = LatencyHistogram(16)
        q.admit(0, 5)
        q.admit(1, 5)
        served, slow = q.serve(2, 7, h, sla_t=2)
        assert served == 7
        # the 5 requests from t=0 have sojourn 3, the 2 from t=1 sojourn 2
        assert h.counts[3] == 5
        assert h.counts[2] == 2
        assert slow == 5  # sojourn 3 > sla_t 2
        assert q.depth == 3

    def test_same_interval_service_is_one_interval(self):
        q = VMQueue(10)
        h = LatencyHistogram(16)
        q.admit(4, 3)
        q.serve(4, 10, h, sla_t=8)
        assert h.counts[1] == 3

    def test_batches_merge_per_interval(self):
        q = VMQueue(100)
        q.admit(3, 2)
        q.admit(3, 2)
        assert len(q.batches) == 1
        q.admit(4, 1)
        assert len(q.batches) == 2

    def test_capture_restore(self):
        q = VMQueue(50)
        q.admit(0, 10)
        q.admit(2, 5)
        state = q.capture_state()
        q2 = VMQueue(50)
        q2.restore_state(state)
        assert q2.capture_state() == state
        assert q2.depth == 15
        with pytest.raises(ValueError, match="max_depth"):
            VMQueue(10).restore_state(state)
        bad = {"max_depth": 50, "batches": [[0, 60]]}
        with pytest.raises(ValueError, match="exceeds"):
            VMQueue(50).restore_state(bad)


class TestServiceCapacity:
    def test_nominal(self):
        assert service_capacity(120.0, violated=False, thrashing=False,
                                degraded_factor=0.7, thrash_factor=0.6) == 120

    def test_degradations_compose_multiplicatively(self):
        assert service_capacity(120.0, violated=True, thrashing=False,
                                degraded_factor=0.7, thrash_factor=0.6) == 84
        assert service_capacity(120.0, violated=False, thrashing=True,
                                degraded_factor=0.7, thrash_factor=0.6) == 72
        assert service_capacity(120.0, violated=True, thrashing=True,
                                degraded_factor=0.7, thrash_factor=0.6) == 50

    def test_floor_not_round(self):
        assert service_capacity(99.9, violated=False, thrashing=False,
                                degraded_factor=0.5, thrash_factor=0.5) == 99
