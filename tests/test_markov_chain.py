"""Tests for repro.markov.chain — the generic DTMC machinery."""

import numpy as np
import pytest

from repro.markov.binomial import busy_block_kernel
from repro.markov.chain import DiscreteMarkovChain


def two_state(p=0.3, q=0.6):
    return DiscreteMarkovChain(np.array([[1 - p, p], [q, 1 - q]]))


class TestConstruction:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            DiscreteMarkovChain(np.ones((2, 3)) / 3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            DiscreteMarkovChain(np.empty((0, 0)))

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError, match="negative"):
            DiscreteMarkovChain(np.array([[1.5, -0.5], [0.5, 0.5]]))

    def test_rejects_bad_row_sums(self):
        with pytest.raises(ValueError, match="sum to 1"):
            DiscreteMarkovChain(np.array([[0.5, 0.4], [0.5, 0.5]]))

    def test_matrix_is_readonly_copy(self):
        M = np.array([[0.5, 0.5], [0.5, 0.5]])
        chain = DiscreteMarkovChain(M)
        M[0, 0] = 99.0  # caller mutation must not leak in
        assert chain.transition_matrix[0, 0] == 0.5
        with pytest.raises(ValueError):
            chain.transition_matrix[0, 0] = 0.1

    def test_validate_false_skips_checks(self):
        # Deliberately sub-stochastic; constructor must accept it.
        chain = DiscreteMarkovChain(np.array([[0.5, 0.1], [0.2, 0.2]]),
                                    validate=False)
        assert chain.n_states == 2


class TestStructure:
    def test_irreducible_positive_chain(self):
        assert two_state().is_irreducible()

    def test_reducible_chain_detected(self):
        P = np.array([[1.0, 0.0], [0.5, 0.5]])
        assert not DiscreteMarkovChain(P).is_irreducible()

    def test_aperiodic_with_self_loop(self):
        assert two_state().is_aperiodic()

    def test_periodic_two_cycle(self):
        P = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert not DiscreteMarkovChain(P).is_aperiodic()

    def test_busy_block_chain_is_ergodic(self):
        chain = DiscreteMarkovChain(busy_block_kernel(8, 0.01, 0.09))
        assert chain.is_irreducible()
        assert chain.is_aperiodic()


class TestStationary:
    def test_two_state_closed_form(self):
        p, q = 0.3, 0.6
        pi = two_state(p, q).stationary_distribution()
        np.testing.assert_allclose(pi, [q / (p + q), p / (p + q)], atol=1e-12)

    @pytest.mark.parametrize("method", ["linear", "power", "eig"])
    def test_methods_agree(self, method):
        chain = DiscreteMarkovChain(busy_block_kernel(10, 0.05, 0.15))
        ref = chain.stationary_distribution("linear")
        out = chain.stationary_distribution(method)
        np.testing.assert_allclose(out, ref, atol=1e-8)

    def test_stationary_is_fixed_point(self):
        chain = DiscreteMarkovChain(busy_block_kernel(12, 0.01, 0.09))
        pi = chain.stationary_distribution()
        np.testing.assert_allclose(pi @ chain.transition_matrix, pi, atol=1e-12)

    def test_sums_to_one_nonnegative(self):
        chain = DiscreteMarkovChain(busy_block_kernel(15, 0.02, 0.2))
        pi = chain.stationary_distribution()
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi >= 0.0)

    def test_power_iteration_convergence_failure_raises(self):
        # A period-2 chain has no limiting distribution from a point mass.
        chain = DiscreteMarkovChain(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(RuntimeError, match="converge"):
            chain.stationary_distribution("power", max_iterations=50)


class TestDynamics:
    def test_step_distribution_one_step(self):
        chain = two_state()
        out = chain.step_distribution(np.array([1.0, 0.0]))
        np.testing.assert_allclose(out, chain.transition_matrix[0], atol=1e-15)

    def test_step_distribution_converges_to_stationary(self):
        chain = two_state()
        pi = chain.step_distribution(np.array([1.0, 0.0]), steps=500)
        np.testing.assert_allclose(pi, chain.stationary_distribution(), atol=1e-10)

    def test_step_distribution_shape_check(self):
        with pytest.raises(ValueError, match="shape"):
            two_state().step_distribution(np.array([1.0, 0.0, 0.0]))

    def test_simulate_length_and_range(self):
        chain = two_state()
        traj = chain.simulate(100, seed=0)
        assert traj.shape == (101,)
        assert set(np.unique(traj)) <= {0, 1}
        assert traj[0] == 0

    def test_simulate_reproducible(self):
        chain = two_state()
        np.testing.assert_array_equal(chain.simulate(50, seed=3),
                                      chain.simulate(50, seed=3))

    def test_simulate_initial_state_validated(self):
        with pytest.raises(ValueError, match="initial_state"):
            two_state().simulate(10, initial_state=5)

    def test_occupancy_matches_stationary_on_long_run(self):
        chain = two_state(0.2, 0.3)
        traj = chain.simulate(200_000, seed=1)
        occ = chain.occupancy_from_trajectory(traj)
        np.testing.assert_allclose(occ, chain.stationary_distribution(), atol=0.01)

    def test_occupancy_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            two_state().occupancy_from_trajectory(np.array([], dtype=int))

    def test_mixing_time_fast_chain(self):
        # A chain that jumps straight to stationarity mixes in one step.
        pi = np.array([0.25, 0.75])
        P = np.tile(pi, (2, 1))
        assert DiscreteMarkovChain(P).mixing_time(1e-9) == 1

    def test_mixing_time_positive(self):
        assert two_state().mixing_time(1e-6) >= 1
