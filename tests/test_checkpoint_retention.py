"""CheckpointRetention: bounded, crash-safe rollback-point storage."""

from __future__ import annotations

import json

import pytest

from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import PMSpec, VMSpec
from repro.simulation import CheckpointRetention, Scenario, load_checkpoint


def _run():
    vms = [VMSpec(0.05, 0.15, 5.0, 15.0) for _ in range(6)]
    pms = [PMSpec(60.0) for _ in range(3)]
    sc = Scenario(vms, pms, placer=QueuingFFD(rho=0.1, d=16))
    run = sc.start(seed=3)
    run.advance(5)
    return run


class TestRetention:
    def test_save_writes_checkpoint_and_index(self, tmp_path):
        run = _run()
        ret = CheckpointRetention(tmp_path, keep=3)
        path = ret.save(run, label="t5-drift")
        assert path.exists()
        assert "t5-drift" in path.name
        # the saved file is a loadable checkpoint envelope
        payload = load_checkpoint(path)
        assert payload["state"]["time"] == 5
        index = json.loads((tmp_path / "index.json").read_text())
        assert [e["file"] for e in index["checkpoints"]] == [path.name]
        assert ret.latest() == path
        run.close()

    def test_prunes_oldest_beyond_keep(self, tmp_path):
        run = _run()
        ret = CheckpointRetention(tmp_path, keep=2)
        paths = [ret.save(run, label=f"n{i}") for i in range(4)]
        kept = sorted(p.name for p in tmp_path.glob("ckpt-*.json"))
        assert kept == sorted(p.name for p in paths[-2:])
        assert [p.name for p in ret.paths] == [p.name for p in paths[-2:]]
        run.close()

    def test_label_is_sanitized(self, tmp_path):
        run = _run()
        ret = CheckpointRetention(tmp_path, keep=2)
        path = ret.save(run, label="t5/../../etc passwd!")
        assert path.parent == tmp_path
        assert "/" not in path.name.replace(".json", "").split("-", 2)[-1]
        run.close()

    def test_sequence_continues_across_instances(self, tmp_path):
        run = _run()
        first = CheckpointRetention(tmp_path, keep=3)
        p0 = first.save(run, label="a")
        second = CheckpointRetention(tmp_path, keep=3)
        p1 = second.save(run, label="b")
        # the new instance resumed the counter instead of clobbering
        assert p0.name.split("-")[1] == "000000"
        assert p1.name.split("-")[1] == "000001"
        assert [p.name for p in second.paths] == [p0.name, p1.name]
        run.close()

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointRetention(tmp_path, keep=0)
