"""Tests for repro.markov.hmm — Baum-Welch ON-OFF fitting."""

import numpy as np
import pytest

from repro.core.types import VMSpec
from repro.markov.hmm import fit_hmm_onoff
from repro.workload.estimation import fit_onoff
from repro.workload.onoff_generator import demand_trace, ensemble_states


def noisy_trace(vm, n_steps, seed, noise):
    states = ensemble_states([vm], n_steps, start_stationary=True, seed=seed)
    trace = demand_trace([vm], states)[0]
    rng = np.random.default_rng(seed + 1)
    return trace + rng.normal(0.0, noise, trace.size), states[0]


class TestFitHmm:
    def test_recovers_clean_parameters(self):
        vm = VMSpec(0.02, 0.1, 10.0, 8.0)
        trace, _ = noisy_trace(vm, 60_000, seed=0, noise=0.3)
        fit = fit_hmm_onoff(trace)
        assert fit.r_base == pytest.approx(10.0, abs=0.3)
        assert fit.r_extra == pytest.approx(8.0, abs=0.6)
        assert fit.p_on == pytest.approx(0.02, rel=0.2)
        assert fit.p_off == pytest.approx(0.1, rel=0.2)
        assert fit.on_fraction == pytest.approx(0.02 / 0.12, abs=0.02)

    def test_convergence_diagnostics(self):
        vm = VMSpec(0.05, 0.2, 5.0, 5.0)
        trace, _ = noisy_trace(vm, 10_000, seed=1, noise=0.2)
        fit, diag = fit_hmm_onoff(trace, return_diagnostics=True)
        assert diag.n_iterations >= 2
        # EM log-likelihood is non-decreasing.
        path = np.array(diag.log_likelihood_path)
        assert np.all(np.diff(path) >= -1e-6 * np.abs(path[:-1]))
        assert diag.final_log_likelihood == path[-1]

    def test_beats_threshold_under_heavy_noise(self):
        """With noise comparable to the level gap, EM recovers the switch
        probabilities better than the threshold estimator."""
        vm = VMSpec(0.02, 0.1, 10.0, 6.0)
        trace, _ = noisy_trace(vm, 80_000, seed=2, noise=2.0)
        hmm_fit = fit_hmm_onoff(trace)
        thr_fit = fit_onoff(trace)

        def err(fit):
            return (abs(fit.p_on - 0.02) / 0.02
                    + abs(fit.p_off - 0.1) / 0.1)

        assert err(hmm_fit) < err(thr_fit)

    def test_to_vmspec_usable(self):
        vm = VMSpec(0.02, 0.1, 10.0, 8.0)
        trace, _ = noisy_trace(vm, 20_000, seed=3, noise=0.5)
        spec = fit_hmm_onoff(trace).to_vmspec()
        assert isinstance(spec, VMSpec)
        assert spec.r_peak > spec.r_base

    def test_constant_trace_degenerates_gracefully(self):
        fit = fit_hmm_onoff(np.full(200, 5.0))
        assert fit.r_base == pytest.approx(5.0, abs=0.1)
        assert fit.r_extra == pytest.approx(0.0, abs=0.1)
        fit.to_vmspec()

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_hmm_onoff(np.array([1.0]))
        with pytest.raises(ValueError):
            fit_hmm_onoff(np.array([1.0, np.nan]))
        with pytest.raises(ValueError):
            fit_hmm_onoff(np.arange(10.0), tol=0.0)

    def test_deterministic(self):
        vm = VMSpec(0.05, 0.15, 4.0, 6.0)
        trace, _ = noisy_trace(vm, 5_000, seed=4, noise=0.4)
        a = fit_hmm_onoff(trace)
        b = fit_hmm_onoff(trace)
        assert a == b

    def test_posterior_onfraction_matches_truth(self):
        vm = VMSpec(0.02, 0.08, 10.0, 10.0)
        trace, states = noisy_trace(vm, 40_000, seed=5, noise=1.0)
        fit = fit_hmm_onoff(trace)
        assert fit.on_fraction == pytest.approx(float(states.mean()), abs=0.02)


class TestDegenerateWindowGuard:
    def test_near_constant_trace_falls_back_without_nan(self):
        trace = np.full(200, 5.0)
        trace[0] = 5.0 + 1e-9  # non-zero but vanishing variance
        fit, diag = fit_hmm_onoff(trace, return_diagnostics=True)
        assert not diag.converged
        assert diag.n_iterations == 0
        assert np.isfinite(fit.p_on) and np.isfinite(fit.p_off)
        assert fit.r_base == pytest.approx(5.0, abs=0.1)
        fit.to_vmspec()

    def test_constant_trace_diagnostics_mark_fallback(self):
        fit, diag = fit_hmm_onoff(np.full(300, 2.0), return_diagnostics=True)
        assert not diag.converged
        assert len(diag.log_likelihood_path) == 1
        assert fit.r_extra == pytest.approx(0.0, abs=0.1)

    def test_degenerate_counter_increments(self):
        from repro.telemetry import Telemetry, RingBufferSink, tracing

        tel = Telemetry(RingBufferSink())
        with tracing(tel):
            fit_hmm_onoff(np.full(120, 1.0))
            fit_hmm_onoff(np.full(120, 3.0))
        counter = tel.metrics.get("hmm_degenerate_window_total")
        assert counter is not None and counter.value >= 2

    def test_scale_invariance_of_guard(self):
        # a large-magnitude constant trace is just as degenerate
        fit = fit_hmm_onoff(np.full(150, 1e8))
        assert np.isfinite(fit.p_on)
        assert fit.r_base == pytest.approx(1e8, rel=1e-3)
