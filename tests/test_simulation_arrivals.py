"""Tests for repro.simulation.arrivals — the dynamic-fleet simulator."""

import pytest

from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import PMSpec, VMSpec
from repro.simulation.arrivals import DynamicFleetSimulator


def fleet(n=20, cap=100.0):
    return [PMSpec(cap)] * n


class TestConstruction:
    def test_requires_pms(self):
        with pytest.raises(ValueError):
            DynamicFleetSimulator([])

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            DynamicFleetSimulator(fleet(), arrival_probability=1.5)
        with pytest.raises(ValueError):
            DynamicFleetSimulator(fleet(), departure_probability=-0.1)


class TestRun:
    def test_population_grows_with_arrivals_only(self):
        sim = DynamicFleetSimulator(fleet(), arrival_probability=1.0,
                                    departure_probability=0.0, seed=0)
        record = sim.run(50)
        assert record.admitted + record.rejected == 50
        assert sim.population == record.admitted
        assert record.departed == 0
        assert record.population_series[-1] >= record.population_series[0]

    def test_no_arrivals_population_stays_zero(self):
        sim = DynamicFleetSimulator(fleet(), arrival_probability=0.0, seed=0)
        record = sim.run(20)
        assert sim.population == 0
        assert record.admitted == record.rejected == 0
        assert record.admission_rate == 1.0

    def test_departures_drain_population(self):
        sim = DynamicFleetSimulator(fleet(), arrival_probability=1.0,
                                    departure_probability=0.0, seed=1)
        sim.run(30)
        grown = sim.population
        sim.departure_probability = 0.5
        sim.arrival_probability = 0.0
        record2 = sim.run(40)
        assert sim.population < grown
        assert record2.departed > 0

    def test_rejections_when_fleet_saturates(self):
        # Tiny fleet: arrivals must eventually be rejected.
        sim = DynamicFleetSimulator(fleet(n=2), arrival_probability=1.0,
                                    departure_probability=0.0, seed=2)
        record = sim.run(100)
        assert record.rejected > 0
        assert 0.0 < record.admission_rate < 1.0

    def test_reservation_invariant_holds_throughout(self):
        sim = DynamicFleetSimulator(fleet(), arrival_probability=0.8,
                                    departure_probability=0.02, seed=3)
        sim.run(200)
        for state in sim._states:
            if not state.is_empty:
                assert state.committed <= state.spec.capacity + 1e-6
                assert state.count <= sim.placer.d

    def test_loads_consistent_with_population(self):
        sim = DynamicFleetSimulator(fleet(), arrival_probability=1.0,
                                    departure_probability=0.0, seed=4)
        sim.run(30)
        loads = sim.pm_loads()
        total_base = sum(vm.spec.demand(vm.on) for vm in sim._live.values())
        assert loads.sum() == pytest.approx(total_base)

    def test_reproducible(self):
        a = DynamicFleetSimulator(fleet(), seed=7).run(100)
        b = DynamicFleetSimulator(fleet(), seed=7).run(100)
        assert a.admitted == b.admitted
        assert a.migrations == b.migrations
        assert a.pms_used_series == b.pms_used_series

    def test_custom_factory_used(self):
        def tiny(rng):
            return VMSpec(0.01, 0.09, 1.0, 1.0)

        sim = DynamicFleetSimulator(fleet(), arrival_probability=1.0,
                                    departure_probability=0.0,
                                    vm_factory=tiny, seed=5)
        record = sim.run(10)
        assert record.rejected == 0
        assert all(vm.spec.r_base == 1.0 for vm in sim._live.values())

    def test_violations_and_migrations_counted(self):
        # Dense base-heavy fleet on small PMs to provoke overflow.
        def chunky(rng):
            return VMSpec(0.2, 0.2, 10.0, 30.0)

        sim = DynamicFleetSimulator(
            fleet(n=4, cap=60.0),
            QueuingFFD(rho=0.5, d=16),  # loose rho admits aggressively
            arrival_probability=1.0, departure_probability=0.0,
            vm_factory=chunky, seed=6,
        )
        record = sim.run(200)
        assert record.migrations + record.violations > 0

    def test_invalid_intervals(self):
        with pytest.raises(ValueError):
            DynamicFleetSimulator(fleet()).run(0)


class TestReservationEffect:
    def test_tight_rho_rejects_more_but_violates_less(self):
        """The admission/performance trade-off: stricter rho admits fewer
        VMs but keeps the violation count down."""
        def spec(rng):
            return VMSpec(0.05, 0.15, float(rng.uniform(5, 15)),
                          float(rng.uniform(10, 30)))

        results = {}
        for rho in (0.9, 0.01):
            sim = DynamicFleetSimulator(
                fleet(n=6, cap=80.0), QueuingFFD(rho=rho, d=16),
                arrival_probability=1.0, departure_probability=0.0,
                vm_factory=spec, seed=8,
            )
            results[rho] = sim.run(300)
        assert results[0.01].admitted <= results[0.9].admitted
        loose_bad = results[0.9].violations + results[0.9].migrations
        tight_bad = results[0.01].violations + results[0.01].migrations
        assert tight_bad < loose_bad
