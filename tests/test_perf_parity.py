"""Bit-identical parity: vectorized tick vs the scalar reference path.

The fast path's contract is not "statistically equivalent" but *identical*:
both datacenters consume the same RNG stream (one uniform draw per VM per
interval) and accumulate PM loads in the same order, so every derived
quantity — migrations, CVR, fairness, failure accounting — must match to
the last bit.  These tests sweep random fleet shapes and scenario features
(failures, migration flakiness, costing, energy) and compare the complete
:class:`~repro.simulation.monitor.RunRecord`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.queuing_ffd import QueuingFFD
from repro.perf.reference import ScalarReferenceDatacenter
from repro.simulation.costmodel import MigrationCostModel
from repro.simulation.datacenter import Datacenter
from repro.simulation.energy import EnergyModel
from repro.simulation.scenario import Scenario
from repro.workload.patterns import generate_pattern_instance


def assert_reports_identical(a, b):
    ra, rb = a.record, b.record
    assert ra.n_intervals == rb.n_intervals
    np.testing.assert_array_equal(ra.pms_used_series, rb.pms_used_series)
    np.testing.assert_array_equal(ra.migrations_per_interval,
                                  rb.migrations_per_interval)
    np.testing.assert_array_equal(ra.violation_counts, rb.violation_counts)
    np.testing.assert_array_equal(ra.presence_counts, rb.presence_counts)
    np.testing.assert_array_equal(ra.vm_suffering_counts,
                                  rb.vm_suffering_counts)
    np.testing.assert_array_equal(ra.vm_down_counts, rb.vm_down_counts)
    np.testing.assert_array_equal(ra.vm_degraded_counts,
                                  rb.vm_degraded_counts)
    assert ra.failed_migration_attempts == rb.failed_migration_attempts
    assert ra.migrations == rb.migrations
    assert a.initial_pms_used == b.initial_pms_used
    assert a.final_pms_used == b.final_pms_used
    assert a.mean_cvr == b.mean_cvr and a.max_cvr == b.max_cvr
    assert a.fairness == b.fairness
    assert a.energy_joules == b.energy_joules
    assert a.migration_downtime_seconds == b.migration_downtime_seconds
    if a.failures is None:
        assert b.failures is None
    else:
        assert a.failures == b.failures


def run_both(vms, pms, *, n_intervals, seed, **kwargs):
    reports = []
    for mode in ("vectorized", "scalar"):
        scenario = Scenario(vms, pms, placer=QueuingFFD(rho=0.01, d=16),
                            tick_mode=mode, **kwargs)
        reports.append(scenario.run(n_intervals, seed=seed))
    return reports


PATTERNS = ("equal", "small", "large")


class TestTickParity:
    def test_raw_step_stream_identical(self):
        vms, pms = generate_pattern_instance("small", 60, seed=3)
        placement = QueuingFFD(rho=0.01, d=16).place(vms, pms)
        fast = Datacenter(vms, pms, placement, seed=11, start_stationary=True)
        slow = ScalarReferenceDatacenter(vms, pms, placement, seed=11,
                                         start_stationary=True)
        for _ in range(50):
            fast.step()
            slow.step()
            np.testing.assert_array_equal(fast._on, slow._on)
            np.testing.assert_array_equal(fast.vm_demands(),
                                          slow.vm_demands())
            np.testing.assert_array_equal(fast.pm_loads(), slow.pm_loads())
            np.testing.assert_array_equal(fast.pm_used_mask(),
                                          slow.pm_used_mask())
            np.testing.assert_array_equal(fast.overloaded_pms(),
                                          slow.overloaded_pms())

    @pytest.mark.parametrize("case", range(20))
    def test_random_scenarios_bit_identical(self, case):
        shape_rng = np.random.default_rng(900 + case)
        n_vms = int(shape_rng.integers(10, 80))
        pattern = PATTERNS[case % len(PATTERNS)]
        vms, pms = generate_pattern_instance(pattern, n_vms,
                                             seed=1000 + case)
        kwargs = {}
        if case % 2 == 0:
            kwargs["failures"] = True
        if case % 3 == 0:
            kwargs["migration_failure_probability"] = 0.1
        if case % 4 == 0:
            kwargs["start_stationary"] = True
        if case % 5 == 0:
            kwargs["energy_model"] = EnergyModel()
        a, b = run_both(vms, pms, n_intervals=30, seed=7000 + case, **kwargs)
        assert_reports_identical(a, b)

    def test_fig9_shape_scenario_identical(self):
        vms, pms = generate_pattern_instance("large", 200, seed=2013)
        a, b = run_both(
            vms, pms, n_intervals=60, seed=2013,
            failures=True, migration_failure_probability=0.05,
            cost_model=MigrationCostModel(), energy_model=EnergyModel(),
            start_stationary=True,
        )
        assert_reports_identical(a, b)

    def test_bad_tick_mode_rejected(self):
        vms, pms = generate_pattern_instance("equal", 10, seed=1)
        with pytest.raises(ValueError, match="tick_mode"):
            Scenario(vms, pms, placer=QueuingFFD(), tick_mode="turbo")


class TestRuntimeViews:
    """The array-backed VMRuntime views stay coherent with the arrays."""

    def test_property_writes_hit_the_arrays(self):
        vms, pms = generate_pattern_instance("equal", 8, seed=5)
        placement = QueuingFFD(rho=0.01, d=16).place(vms, pms)
        dc = Datacenter(vms, pms, placement, seed=0)
        dc.vms[3].on = True
        assert bool(dc._on[3])
        dc._on[3] = False
        assert dc.vms[3].on is False
        dc.vms[2].throttled = True
        assert bool(dc._throttled[2])

    def test_unbound_runtime_keeps_local_flags(self):
        from repro.simulation.datacenter import VMRuntime
        from repro.core.types import VMSpec
        rt = VMRuntime(spec=VMSpec(0.1, 0.4, 1.0, 2.0))
        rt.on = True
        assert rt.on is True and rt.throttled is False
        assert "VMRuntime" in repr(rt)
