"""Load-leveling tier failure paths: back pressure, poison, dedupe, resume."""

from __future__ import annotations

import pytest

from repro.serving import LoadLevelingTier, Request
from repro.telemetry import RingBufferSink, Telemetry


def drain_all(tier: LoadLevelingTier, t: int, headroom: int = 10**6):
    return tier.drain(t, [headroom] * tier.n_vms)


class TestBackPressure:
    def test_full_buffer_rejects_anonymous_batches(self):
        tier = LoadLevelingTier(2, buffer_size=10)
        assert tier.accept(0, 0, 7) == 7
        assert tier.accept(1, 0, 7) == 3  # only 3 slots left
        assert tier.depth == 10
        assert tier.rejected == 4
        assert tier.accept(0, 1, 1) == 0

    def test_full_buffer_rejects_keyed_offer(self):
        tier = LoadLevelingTier(1, buffer_size=1)
        assert tier.offer(Request(key="a", vm_id=0, time=0))
        assert not tier.offer(Request(key="b", vm_id=0, time=0))
        assert tier.rejected == 1
        # "b" was never accepted, so it is NOT remembered as seen
        drain_all(tier, 1)
        assert tier.offer(Request(key="b", vm_id=0, time=1))

    def test_no_headroom_burns_attempts_then_dlq(self):
        tier = LoadLevelingTier(1, buffer_size=10, max_attempts=3)
        tier.accept(0, 0, 4)
        for t in range(1, 3):
            assert tier.drain(t, [0]) == [[]]
            assert tier.dlq == []
        # third failed delivery attempt dead-letters the batch
        tier.drain(3, [0])
        assert tier.dlq_requests == 4
        assert tier.depth == 0


class TestPoison:
    def test_poison_message_rotates_then_dead_letters(self):
        sink = RingBufferSink(64)
        tel = Telemetry(sink)
        tier = LoadLevelingTier(1, max_attempts=3, telemetry=tel)
        tier.offer(Request(key="p", vm_id=0, time=0, poison=True))
        tier.offer(Request(key="ok", vm_id=0, time=0))
        out = drain_all(tier, 1)
        # the healthy message behind the poison one is still delivered
        assert out == [[(0, 1)]]
        assert tier.dlq == []
        drain_all(tier, 2)
        out = drain_all(tier, 3)
        assert out == [[]]
        assert tier.dlq == [[0, 1, 3, "p", True]]
        assert tier.dlq_requests == 1
        events = [e for e in sink.events if e.kind == "poison_quarantined"]
        assert len(events) == 1
        assert events[0].key == "p"
        assert events[0].attempts == 3
        assert events[0].poison is True

    def test_poison_never_counts_as_delivered(self):
        tier = LoadLevelingTier(1, max_attempts=2)
        tier.offer(Request(key="p", vm_id=0, time=0, poison=True))
        drain_all(tier, 1)
        drain_all(tier, 2)
        assert tier.delivered == 0
        assert tier.depth == 0


class TestIdempotency:
    def test_duplicate_key_suppressed(self):
        tier = LoadLevelingTier(2)
        assert tier.offer(Request(key="r1", vm_id=0, time=0))
        assert not tier.offer(Request(key="r1", vm_id=0, time=0))
        assert not tier.offer(Request(key="r1", vm_id=1, time=3))
        assert tier.duplicates == 2
        assert tier.depth == 1
        # delivery does not forget the key: at-least-once upstream retries
        # after delivery are still suppressed
        drain_all(tier, 1)
        assert not tier.offer(Request(key="r1", vm_id=0, time=2))
        assert tier.duplicates == 3


class TestPartialDelivery:
    def test_partial_delivery_is_not_a_failed_attempt(self):
        tier = LoadLevelingTier(1, drain_rate=3, max_attempts=2)
        tier.accept(0, 0, 10)
        for t in range(1, 4):
            out = tier.drain(t, [100])
            assert out == [[(0, 3)]]
            # the partially-delivered head batch must not burn attempts
            assert tier.dlq == []
        out = tier.drain(4, [100])
        assert out == [[(0, 1)]]
        assert tier.depth == 0
        assert tier.delivered == 10


class TestCheckpoint:
    def test_mid_queue_resume_is_bit_identical(self):
        def build():
            tier = LoadLevelingTier(3, buffer_size=50, drain_rate=4,
                                    max_attempts=3)
            tier.accept(0, 0, 9)
            tier.accept(1, 0, 2)
            tier.offer(Request(key="a", vm_id=2, time=0))
            tier.offer(Request(key="p", vm_id=2, time=0, poison=True))
            tier.drain(1, [2, 5, 5])
            tier.accept(0, 1, 3)
            return tier

        reference = build()
        snap = reference.capture_state()

        resumed = LoadLevelingTier(3, buffer_size=50, drain_rate=4,
                                   max_attempts=3)
        resumed.restore_state(snap)
        assert resumed.capture_state() == snap
        assert resumed.depth == reference.depth

        # advance both identically: states stay bit-identical
        for t in range(2, 6):
            a = reference.drain(t, [3, 3, 3])
            b = resumed.drain(t, [3, 3, 3])
            assert a == b
        assert resumed.capture_state() == reference.capture_state()

    def test_restore_rejects_vm_count_mismatch(self):
        tier = LoadLevelingTier(2)
        snap = tier.capture_state()
        with pytest.raises(ValueError, match="routes"):
            LoadLevelingTier(3).restore_state(snap)


class TestValidation:
    def test_bad_vm_id(self):
        tier = LoadLevelingTier(2)
        with pytest.raises(ValueError, match="vm_id"):
            tier.accept(2, 0, 1)
        with pytest.raises(ValueError, match="vm_id"):
            tier.offer(Request(key="x", vm_id=-1, time=0))

    def test_bad_free_vector(self):
        tier = LoadLevelingTier(2)
        with pytest.raises(ValueError, match="routes"):
            tier.drain(0, [1])

    def test_negative_count(self):
        tier = LoadLevelingTier(1)
        with pytest.raises(ValueError, match="count"):
            tier.accept(0, 0, -1)
