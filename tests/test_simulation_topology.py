"""Tests for repro.simulation.topology — fault-domain maps."""

import numpy as np
import pytest

from repro.simulation.topology import Topology


class TestConstruction:
    def test_racks_contiguous(self):
        topo = Topology.racks(6, 2)
        assert topo.n_pms == 6
        assert topo.n_domains == 3
        np.testing.assert_array_equal(topo.domain_of, [0, 0, 1, 1, 2, 2])

    def test_racks_ragged_tail(self):
        topo = Topology.racks(5, 2)
        assert topo.n_domains == 3
        np.testing.assert_array_equal(topo.domain_of, [0, 0, 1, 1, 2])

    def test_striped_round_robin(self):
        topo = Topology.striped(6, 2)
        np.testing.assert_array_equal(topo.domain_of, [0, 1, 0, 1, 0, 1])

    def test_striped_rejects_empty_domains(self):
        with pytest.raises(ValueError, match="empty domains"):
            Topology.striped(3, 5)

    def test_single_domain(self):
        topo = Topology.single_domain(4)
        assert topo.n_domains == 1
        assert list(topo.pms_in(0)) == [0, 1, 2, 3]

    def test_rejects_non_contiguous_ids(self):
        with pytest.raises(ValueError, match="contiguous"):
            Topology([0, 2, 2])

    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError, match="non-negative"):
            Topology([0, -1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Topology([])

    def test_domain_of_is_immutable(self):
        topo = Topology.racks(4, 2)
        with pytest.raises(ValueError):
            topo.domain_of[0] = 1


class TestQueries:
    def test_pms_in(self):
        topo = Topology.racks(6, 3)
        np.testing.assert_array_equal(topo.pms_in(1), [3, 4, 5])

    def test_pms_in_validates_domain(self):
        topo = Topology.racks(4, 2)
        with pytest.raises(ValueError):
            topo.pms_in(2)

    def test_domain_sizes(self):
        topo = Topology.racks(5, 2)
        np.testing.assert_array_equal(topo.domain_sizes(), [2, 2, 1])

    def test_domain_mask(self):
        topo = Topology.striped(4, 2)
        np.testing.assert_array_equal(topo.domain_mask(0), [True, False, True, False])

    def test_vm_domain_counts(self):
        topo = Topology.racks(4, 2)
        assignment = np.array([0, 1, 3, 3, -1])  # one unplaced VM
        np.testing.assert_array_equal(topo.vm_domain_counts(assignment), [2, 2])

    def test_vm_domain_counts_rejects_unknown_pm(self):
        topo = Topology.racks(4, 2)
        with pytest.raises(ValueError, match="outside the topology"):
            topo.vm_domain_counts(np.array([0, 4]))
