"""Tests for repro.autopilot — the closed-loop controller.

Covers the config surface, the telemetry buffer, the refit fingerprint,
the happy path (drift -> refit -> committed replan with the refitted law
installed as the new null), and the forced-rollback drill (adversarial
refit -> guard trip -> bit-identical restore + blacklist).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autopilot import (
    Autopilot,
    AutopilotConfig,
    TelemetryWindow,
    adversarial_refit,
    refit_fingerprint,
)
from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import PMSpec, VMSpec
from repro.experiments.autopilot_ablation import (
    build_autopilot_scenario,
    regime_shift_hook,
)
from repro.observability import Observatory
from repro.simulation import Scenario
from repro.telemetry import (
    ReplanCommitted,
    ReplanRolledBack,
    RingBufferSink,
    Telemetry,
)
from repro.workload.estimation import fit_onoff


def _drill_fleet():
    """Generous capacity: healthy unless a bad refit over-consolidates."""
    vms = [VMSpec(0.05, 0.15, 2.0, 8.0) for _ in range(40)]
    pms = [PMSpec(100.0) for _ in range(10)]
    return vms, pms


def _mild_fleet():
    vms = [VMSpec(0.01, 0.09, 2.0, 8.0) for _ in range(40)]
    pms = [PMSpec(100.0) for _ in range(10)]
    return vms, pms


class TestAutopilotConfig:
    def test_defaults_valid(self):
        AutopilotConfig()

    @pytest.mark.parametrize("kwargs", [
        {"telemetry_window": 1},
        {"min_refit_samples": 1},
        {"min_refit_samples": 200, "telemetry_window": 100},
        {"migration_budget": 0},
        {"alert_sustain": 0},
        {"drift_min_detections": 0},
        {"drift_cooldown": 0},
        {"alert_cooldown": 0},
        {"rollback_cooldown": 0},
        {"max_replans": 0},
        {"guard_window": 0},
        {"guard_factor": 0.5},
        {"guard_slack": -0.1},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            AutopilotConfig(**kwargs)

    def test_keep_checkpoints_env_default(self, monkeypatch):
        from repro.autopilot import _default_keep

        monkeypatch.delenv("REPRO_KEEP_CHECKPOINTS", raising=False)
        assert _default_keep() == 3
        monkeypatch.setenv("REPRO_KEEP_CHECKPOINTS", "7")
        assert _default_keep() == 7


class TestTelemetryWindow:
    def test_partial_fill_returns_seen_samples(self):
        w = TelemetryWindow(2, window=4)
        w.push(np.array([1.0, 10.0]))
        w.push(np.array([2.0, 20.0]))
        assert w.count == 2
        np.testing.assert_allclose(w.traces(),
                                   [[1.0, 2.0], [10.0, 20.0]])

    def test_wraparound_is_chronological(self):
        w = TelemetryWindow(1, window=3)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            w.push(np.array([v]))
        assert w.count == 3
        np.testing.assert_allclose(w.traces(), [[3.0, 4.0, 5.0]])


class TestRefitFingerprint:
    def test_stable_under_sub_rounding_noise(self):
        base = [fit_onoff(np.array([0.0, 10.0, 0.0, 10.0, 0.0, 0.0]))]
        assert refit_fingerprint(base) == refit_fingerprint(list(base))

    def test_sensitive_to_parameters(self):
        trace = np.array([0.0, 10.0, 0.0, 10.0, 0.0, 0.0])
        a = [fit_onoff(trace)]
        b = [fit_onoff(trace * 2.0)]
        assert refit_fingerprint(a) != refit_fingerprint(b)

    def test_adversarial_refit_fingerprint_is_reproducible(self):
        traces = np.tile(np.array([0.0, 10.0, 0.0, 0.0, 10.0, 0.0]), (3, 1))
        assert (refit_fingerprint(adversarial_refit(traces))
                == refit_fingerprint(adversarial_refit(traces)))


class TestAutopilotWiring:
    def test_requires_reconsolidation(self):
        vms, pms = _mild_fleet()
        sc = Scenario(vms, pms, placer=QueuingFFD(rho=0.01, d=16),
                      observatory=Observatory(rho=0.01),
                      telemetry=Telemetry(RingBufferSink()))
        with pytest.raises(ValueError, match="reconsolidation"):
            Autopilot(sc)

    def test_requires_observatory(self):
        vms, pms = _mild_fleet()
        sc = Scenario(vms, pms, placer=QueuingFFD(rho=0.01, d=16),
                      telemetry=Telemetry(RingBufferSink()),
                      reconsolidation=True)
        with pytest.raises(ValueError, match="observatory"):
            Autopilot(sc)


class TestCommitPath:
    def test_drift_triggers_committed_replan(self):
        vms, pms = _mild_fleet()
        obs = Observatory(rho=0.01)
        sc = build_autopilot_scenario(vms, pms, observatory=obs)
        hook = regime_shift_hook(sc, shift_at=40, p_on=0.08)
        cfg = AutopilotConfig(min_refit_samples=40, guard_window=20)
        pilot = Autopilot(sc, config=cfg)
        stats = pilot.run(400, seed=7, on_tick=hook)

        assert stats.replans_started >= 1
        assert stats.replans_committed >= 1
        assert stats.replans_rolled_back == 0
        assert stats.rollback_parity is True
        assert stats.refits == stats.replans_started
        assert stats.replans_started <= cfg.max_replans
        # budget respected per replan
        assert (stats.planned_migrations
                <= cfg.migration_budget * stats.replans_started)
        # the commit reached the observatory's control-loop view
        committed = [e for e in obs.autopilot_events
                     if isinstance(e, ReplanCommitted)]
        assert len(committed) == stats.replans_committed
        assert obs.summary()["replans_committed"] == stats.replans_committed

    def test_commit_installs_refitted_null(self):
        vms, pms = _mild_fleet()
        obs = Observatory(rho=0.01)
        sc = build_autopilot_scenario(vms, pms, observatory=obs)
        hook = regime_shift_hook(sc, shift_at=40, p_on=0.08)
        pilot = Autopilot(sc, config=AutopilotConfig(min_refit_samples=40,
                                                     guard_window=20))
        stats = pilot.run(400, seed=7, on_tick=hook)
        assert stats.replans_committed >= 1
        # the assumed law moved off the construction-time specs toward the
        # shifted truth, so drift evidence stops accumulating
        dc = sc.datacenter
        assert not np.allclose(dc._assumed_p_on,
                               [v.p_on for v in vms])
        assert float(np.mean(dc._assumed_p_on)) > 0.02

    def test_max_replans_rate_limit(self):
        vms, pms = _mild_fleet()
        obs = Observatory(rho=0.01)
        sc = build_autopilot_scenario(vms, pms, observatory=obs)
        hook = regime_shift_hook(sc, shift_at=40, p_on=0.08)
        cfg = AutopilotConfig(min_refit_samples=40, guard_window=10,
                              max_replans=1, drift_cooldown=1,
                              alert_cooldown=1)
        pilot = Autopilot(sc, config=cfg)
        stats = pilot.run(400, seed=7, on_tick=hook)
        assert stats.replans_started == 1


class TestRollbackDrill:
    def _run_drill(self, checkpoint_dir=None, keep=None):
        vms, pms = _drill_fleet()
        obs = Observatory(rho=0.01)
        sc = build_autopilot_scenario(vms, pms, observatory=obs)
        hook = regime_shift_hook(sc, shift_at=30, p_on=0.12)
        cfg = AutopilotConfig(min_refit_samples=40, guard_window=20,
                              migration_budget=40, keep_checkpoints=keep)
        pilot = Autopilot(sc, config=cfg, refit_override=adversarial_refit,
                          checkpoint_dir=checkpoint_dir)
        return pilot.run(300, seed=7, on_tick=hook), obs, pilot

    def test_bad_refit_rolls_back_with_parity(self, tmp_path):
        stats, obs, pilot = self._run_drill(checkpoint_dir=tmp_path)
        assert stats.replans_rolled_back >= 1
        assert stats.rollback_parity is True
        assert stats.replans_committed == 0
        # the guilty fingerprint is blacklisted and later refits rejected
        assert stats.blacklist
        assert stats.refits_rejected >= 1
        rolled = [e for e in obs.autopilot_events
                  if isinstance(e, ReplanRolledBack)]
        assert rolled and all(e.parity for e in rolled)
        assert obs.summary()["replans_rolled_back"] >= 1

    def test_drill_persists_bounded_checkpoints(self, tmp_path):
        stats, _, pilot = self._run_drill(checkpoint_dir=tmp_path, keep=1)
        assert stats.checkpoints  # every replan wrote a rollback point
        kept = sorted(p.name for p in tmp_path.glob("ckpt-*.json"))
        assert len(kept) == 1
        assert (tmp_path / "index.json").exists()

    def test_rollback_without_checkpoint_dir_still_works(self):
        stats, _, _ = self._run_drill(checkpoint_dir=None)
        assert stats.replans_rolled_back >= 1
        assert stats.rollback_parity is True
        assert stats.checkpoints == []

    def test_rollback_resets_drift_evidence(self, tmp_path):
        _, obs, _ = self._run_drill(checkpoint_dir=tmp_path)
        # evidence against the superseded null was dropped: no PM stays
        # flagged with a live streak inherited from the aborted branch
        for state in obs.drift.pms.values():
            assert state.streak == 0 or state.flagged
