"""Tests for repro.queueing.metrics."""

import numpy as np
import pytest

from repro.queueing.geom_geom_k import FiniteSourceGeomGeomK
from repro.queueing.metrics import summarize_occupancy


class TestSummarizeOccupancy:
    def test_point_mass_at_zero(self):
        m = summarize_occupancy(np.array([1.0, 0.0, 0.0]))
        assert m.mean_occupancy == 0.0
        assert m.variance == 0.0
        assert m.utilization == 0.0
        assert m.idle_probability == 1.0
        assert m.full_probability == 0.0

    def test_point_mass_at_full(self):
        m = summarize_occupancy(np.array([0.0, 0.0, 1.0]))
        assert m.mean_occupancy == 2.0
        assert m.utilization == 1.0
        assert m.full_probability == 1.0

    def test_uniform_distribution(self):
        m = summarize_occupancy(np.full(5, 0.2))
        assert m.mean_occupancy == pytest.approx(2.0)
        assert m.variance == pytest.approx(2.0)
        assert m.utilization == pytest.approx(0.5)

    def test_single_state_degenerate(self):
        m = summarize_occupancy(np.array([1.0]))
        assert m.utilization == 0.0  # K == 0: no windows to utilize

    def test_matches_model_moments(self):
        model = FiniteSourceGeomGeomK(12, 0.01, 0.09)
        m = summarize_occupancy(model.stationary_distribution())
        assert m.mean_occupancy == pytest.approx(model.expected_demand())
        # Binomial variance: k q (1-q)
        q = 0.1
        assert m.variance == pytest.approx(12 * q * (1 - q), abs=1e-9)

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            summarize_occupancy(np.array([0.5, 0.6]))
        with pytest.raises(ValueError):
            summarize_occupancy(np.array([-0.1, 1.1]))
        with pytest.raises(ValueError):
            summarize_occupancy(np.empty(0))
        with pytest.raises(ValueError):
            summarize_occupancy(np.ones((2, 2)) / 4)
