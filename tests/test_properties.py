"""Property-based tests (hypothesis) on core invariants.

These fuzz the probabilistic machinery and the placement algorithms over
their whole parameter space, checking the invariants DESIGN.md calls out:
stochasticity of kernels, stationarity, MapCal monotonicity and bounds,
Eq. (17) monotonicity, and placement validity for every placer.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mapcal import mapcal, mapcal_table
from repro.core.queuing_ffd import QueuingFFD
from repro.core.reservation import fits_with_reservation
from repro.core.types import PMSpec, VMSpec
from repro.markov.binomial import busy_block_kernel
from repro.markov.chain import DiscreteMarkovChain
from repro.markov.onoff import OnOffChain
from repro.placement.base import InsufficientCapacityError
from repro.placement.ffd import BestFitDecreasing, FirstFitDecreasing, ffd_by_base
from repro.placement.rbex import RBExPlacer
from repro.placement.validation import (
    check_capacity_at_base,
    check_placement_complete,
    max_vms_on_any_pm,
)
from repro.queueing.geom_geom_k import FiniteSourceGeomGeomK

probs = st.floats(min_value=0.001, max_value=0.999)
small_k = st.integers(min_value=1, max_value=20)
rhos = st.floats(min_value=0.0, max_value=1.0)


class TestKernelProperties:
    @given(k=small_k, p_on=probs, p_off=probs)
    @settings(max_examples=60, deadline=None)
    def test_kernel_is_row_stochastic(self, k, p_on, p_off):
        P = busy_block_kernel(k, p_on, p_off)
        assert P.shape == (k + 1, k + 1)
        assert np.all(P >= -1e-12)
        np.testing.assert_allclose(P.sum(axis=1), 1.0, atol=1e-9)

    @given(k=small_k, p_on=probs, p_off=probs)
    @settings(max_examples=40, deadline=None)
    def test_stationary_solves_balance_equations(self, k, p_on, p_off):
        chain = DiscreteMarkovChain(busy_block_kernel(k, p_on, p_off))
        pi = chain.stationary_distribution()
        np.testing.assert_allclose(pi @ chain.transition_matrix, pi, atol=1e-9)
        np.testing.assert_allclose(pi.sum(), 1.0, atol=1e-9)
        assert np.all(pi >= 0.0)

    @given(k=small_k, p_on=probs, p_off=probs)
    @settings(max_examples=40, deadline=None)
    def test_stationary_matches_binomial_marginal(self, k, p_on, p_off):
        m = FiniteSourceGeomGeomK(k, p_on, p_off)
        np.testing.assert_allclose(
            m.stationary_distribution(),
            m.stationary_distribution_closed_form(),
            atol=1e-8,
        )

    @given(p_on=probs, p_off=probs, lag=st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_onoff_autocorrelation_in_unit_interval(self, p_on, p_off, lag):
        acf = OnOffChain(p_on, p_off).autocorrelation(lag)
        assert -1.0 <= acf <= 1.0


class TestMapcalProperties:
    @given(k=small_k, p_on=probs, p_off=probs, rho=rhos)
    @settings(max_examples=60, deadline=None)
    def test_result_in_range_and_feasible(self, k, p_on, p_off, rho):
        K = mapcal(k, p_on, p_off, rho)
        assert 0 <= K <= k
        m = FiniteSourceGeomGeomK(k, p_on, p_off)
        assert m.overflow_probability(K) <= rho + 1e-9

    @given(k=st.integers(2, 20), p_on=probs, p_off=probs, rho=rhos)
    @settings(max_examples=60, deadline=None)
    def test_minimality(self, k, p_on, p_off, rho):
        K = mapcal(k, p_on, p_off, rho)
        if K > 0:
            m = FiniteSourceGeomGeomK(k, p_on, p_off)
            assert m.overflow_probability(K - 1) > rho - 1e-9

    @given(p_on=probs, p_off=probs, rho=rhos)
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_k(self, p_on, p_off, rho):
        table = mapcal_table(12, p_on, p_off, rho).table
        assert np.all(np.diff(table) >= 0)

    @given(k=small_k, p_on=probs, p_off=probs,
           rho1=st.floats(0.0, 1.0), rho2=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_antitone_in_rho(self, k, p_on, p_off, rho1, rho2):
        lo, hi = min(rho1, rho2), max(rho1, rho2)
        assert mapcal(k, p_on, p_off, lo) >= mapcal(k, p_on, p_off, hi)


class TestReservationProperties:
    @given(
        capacity=st.floats(10.0, 1000.0),
        extra_cap=st.floats(0.0, 500.0),
        base=st.floats(0.0, 100.0),
        extra=st.floats(0.0, 100.0),
        count=st.integers(0, 15),
        base_sum=st.floats(0.0, 500.0),
        max_extra=st.floats(0.0, 100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_admission_monotone_in_capacity(self, capacity, extra_cap, base,
                                            extra, count, base_sum, max_extra):
        mapping = mapcal_table(16, 0.01, 0.09, 0.01)
        vm = VMSpec(0.01, 0.09, base, extra)
        fits_small = fits_with_reservation(
            vm, capacity, current_count=count, current_base_sum=base_sum,
            current_max_extra=max_extra, mapping=mapping)
        fits_big = fits_with_reservation(
            vm, capacity + extra_cap, current_count=count,
            current_base_sum=base_sum, current_max_extra=max_extra,
            mapping=mapping)
        if fits_small:
            assert fits_big


@st.composite
def instances(draw):
    n = draw(st.integers(1, 40))
    vms = []
    for _ in range(n):
        base = draw(st.floats(1.0, 20.0))
        extra = draw(st.floats(0.0, 20.0))
        vms.append(VMSpec(0.01, 0.09, base, extra))
    caps = [draw(st.floats(60.0, 120.0)) for _ in range(n)]
    return vms, [PMSpec(c) for c in caps]


class TestPlacerProperties:
    @given(inst=instances())
    @settings(max_examples=30, deadline=None)
    def test_queuing_ffd_valid(self, inst):
        vms, pms = inst
        placer = QueuingFFD(rho=0.01, d=16)
        placement, states = placer.place_with_states(vms, pms)
        check_placement_complete(placement)
        check_capacity_at_base(placement, vms, pms)
        assert max_vms_on_any_pm(placement) <= 16
        for pm_idx, state in enumerate(states):
            if not state.is_empty:
                assert state.committed <= pms[pm_idx].capacity + 1e-6

    @given(inst=instances())
    @settings(max_examples=30, deadline=None)
    def test_greedy_placers_valid(self, inst):
        vms, pms = inst
        for placer in (FirstFitDecreasing(max_vms_per_pm=16),
                       BestFitDecreasing(max_vms_per_pm=16),
                       ffd_by_base(max_vms_per_pm=16)):
            placement = placer.place(vms, pms)
            check_placement_complete(placement)
            check_capacity_at_base(placement, vms, pms)

    @given(inst=instances(), delta=st.floats(0.0, 0.5))
    @settings(max_examples=30, deadline=None)
    def test_rbex_valid_or_explicit_failure(self, inst, delta):
        vms, pms = inst
        placer = RBExPlacer(delta=delta, max_vms_per_pm=16)
        try:
            placement = placer.place(vms, pms)
        except InsufficientCapacityError:
            return  # explicit failure is acceptable for large delta
        check_placement_complete(placement)
        check_capacity_at_base(placement, vms, pms)

    @given(inst=instances())
    @settings(max_examples=20, deadline=None)
    def test_pm_counts_within_trivial_bounds(self, inst):
        """Every strategy uses between 1 and n PMs.  (Stronger orderings like
        QUEUE <= RP hold on the paper's instance distributions — asserted in
        the integration tests — but are not universal: FFD anomalies and a
        single huge-R_e VM can invert them on adversarial inputs.)"""
        vms, pms = inst
        from repro.placement.ffd import ffd_by_peak

        queue = QueuingFFD(rho=0.01, d=16).place(vms, pms)
        rp = ffd_by_peak(max_vms_per_pm=16).place(vms, pms)
        rb = ffd_by_base(max_vms_per_pm=16).place(vms, pms)
        for placement in (queue, rp, rb):
            assert 1 <= placement.n_used_pms <= len(vms)


class TestOrderingProperties:
    @given(inst=instances())
    @settings(max_examples=30, deadline=None)
    def test_order_is_permutation(self, inst):
        vms, _ = inst
        order = QueuingFFD().order_vms(vms)
        assert sorted(order.tolist()) == list(range(len(vms)))
