"""Tests for repro.analysis.fairness."""

import numpy as np
import pytest

from repro.analysis.fairness import (
    fairness_report,
    gini_coefficient,
    jains_index,
    max_share,
)


class TestJain:
    def test_even_allocation_is_one(self):
        assert jains_index(np.full(10, 3.0)) == pytest.approx(1.0)

    def test_single_holder_is_one_over_n(self):
        x = np.zeros(8)
        x[3] = 5.0
        assert jains_index(x) == pytest.approx(1 / 8)

    def test_all_zero_is_fair(self):
        assert jains_index(np.zeros(5)) == 1.0

    def test_scale_invariant(self):
        x = np.array([1.0, 2.0, 3.0])
        assert jains_index(x) == pytest.approx(jains_index(10 * x))

    def test_known_value(self):
        assert jains_index(np.array([1.0, 1.0, 2.0])) == pytest.approx(
            16 / (3 * 6)
        )


class TestGini:
    def test_even_is_zero(self):
        assert gini_coefficient(np.full(6, 2.0)) == pytest.approx(0.0, abs=1e-12)

    def test_single_holder_approaches_one(self):
        x = np.zeros(100)
        x[0] = 1.0
        assert gini_coefficient(x) == pytest.approx(0.99)

    def test_all_zero_is_zero(self):
        assert gini_coefficient(np.zeros(4)) == 0.0

    def test_order_invariant(self):
        x = np.array([5.0, 1.0, 3.0])
        assert gini_coefficient(x) == pytest.approx(
            gini_coefficient(np.sort(x))
        )

    def test_known_value(self):
        # [0, 1]: Gini = 1/2
        assert gini_coefficient(np.array([0.0, 1.0])) == pytest.approx(0.5)


class TestMaxShare:
    def test_values(self):
        assert max_share(np.array([1.0, 3.0])) == pytest.approx(0.75)
        assert max_share(np.zeros(3)) == 0.0


class TestReport:
    def test_keys_and_consistency(self):
        x = np.array([0.0, 2.0, 2.0])
        report = fairness_report(x)
        assert report["n"] == 3
        assert report["total"] == 4.0
        assert report["jain"] == pytest.approx(jains_index(x))
        assert report["gini"] == pytest.approx(gini_coefficient(x))
        assert report["max_share"] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            jains_index(np.array([-1.0]))
        with pytest.raises(ValueError):
            gini_coefficient(np.empty(0))
        with pytest.raises(ValueError):
            max_share(np.ones((2, 2)))


class TestOnSimulation:
    def test_fairness_of_suffering_is_measurable(self):
        """End-to-end: per-VM suffering from a spare-free RB run yields a
        meaningful fairness report (concentrated on some VMs)."""
        from repro.core.types import Placement
        from repro.placement.ffd import ffd_by_base
        from repro.simulation.scheduler import run_simulation
        from repro.workload.patterns import generate_pattern_instance

        vms, pms = generate_pattern_instance("equal", 60, seed=1)
        placement = ffd_by_base(max_vms_per_pm=16).place(vms, pms)
        m = int(placement.used_pms().max()) + 1
        placement = Placement(len(vms), m, assignment=placement.assignment)
        result = run_simulation(vms, pms[:m], placement,
                                n_intervals=300, seed=2)
        suffering = result.record.vm_suffering_fraction()
        report = fairness_report(suffering)
        assert report["total"] > 0
        # violations cluster on the overcommitted PMs' tenants
        assert report["jain"] < 1.0
        assert 0.0 < report["max_share"] <= 1.0