"""Bounded-memory series primitives (repro.observability.series)."""

from __future__ import annotations

import pytest

from repro.observability.series import RollingWindow, TieredSeries


class TestRollingWindow:
    def test_running_sum_matches_brute_force(self):
        w = RollingWindow(5)
        for i in range(20):
            w.push(i)
            assert w.sum == pytest.approx(sum(w.values()))
        assert w.values() == [15.0, 16.0, 17.0, 18.0, 19.0]

    def test_bounded_length(self):
        w = RollingWindow(3)
        for i in range(10):
            w.push(i)
        assert len(w) == 3

    def test_sum_last_partial(self):
        w = RollingWindow(10)
        for i in range(1, 5):
            w.push(i)  # 1..4
        assert w.sum_last(2) == pytest.approx(7.0)
        assert w.sum_last(100) == pytest.approx(10.0)
        assert w.count_last(100) == 4

    def test_mean_and_last_empty_safe(self):
        w = RollingWindow(4)
        assert w.mean == 0.0 and w.last == 0.0
        w.push(2.0)
        assert w.mean == 2.0 and w.last == 2.0

    def test_size_validated(self):
        with pytest.raises(ValueError):
            RollingWindow(0)


class TestTieredSeries:
    def test_short_series_kept_raw(self):
        ts = TieredSeries(raw=10)
        for i in range(10):
            ts.push(i, float(i))
        times, values = ts.series()
        assert times == list(range(10))
        assert values == [float(i) for i in range(10)]

    def test_memory_bounded_for_long_runs(self):
        ts = TieredSeries(raw=16, factor=4, tiers=2)
        for i in range(100_000):
            ts.push(i, float(i % 7))
        assert len(ts) <= 3 * 16 + 4  # (tiers+1) * raw, small slack
        assert ts.n_pushed == 100_000

    def test_downsampled_values_are_chunk_means(self):
        ts = TieredSeries(raw=4, factor=2, tiers=1)
        for i in range(6):
            ts.push(i, float(i))  # overflow by 2 -> one averaged point
        times, values = ts.series()
        # oldest two (0,1) collapsed into their mean at the chunk's start
        assert times[0] == 0
        assert values[0] == pytest.approx(0.5)
        assert values[-4:] == [2.0, 3.0, 4.0, 5.0]

    def test_monotone_series_stays_monotone_through_tiers(self):
        ts = TieredSeries(raw=8, factor=2, tiers=2)
        for i in range(500):
            ts.push(i, float(i))
        times, values = ts.series()
        assert values == sorted(values)
        assert times == sorted(times)

    def test_last_and_tail(self):
        ts = TieredSeries(raw=4, factor=2, tiers=1)
        for i in range(9):
            ts.push(i, float(i))
        assert ts.last == 8.0
        assert ts.tail(2) == [7.0, 8.0]

    def test_empty(self):
        ts = TieredSeries()
        assert len(ts) == 0
        assert ts.last == 0.0
        assert ts.series() == ([], [])

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            TieredSeries(raw=0)
        with pytest.raises(ValueError):
            TieredSeries(factor=1)
        with pytest.raises(ValueError):
            TieredSeries(tiers=-1)
