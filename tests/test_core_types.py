"""Tests for repro.core.types — VMSpec, PMSpec, Placement."""

import numpy as np
import pytest

from repro.core.types import UNPLACED, Placement, PMSpec, VMSpec, vm_arrays


class TestVMSpec:
    def test_peak_is_base_plus_extra(self):
        vm = VMSpec(0.01, 0.09, r_base=10.0, r_extra=5.0)
        assert vm.r_peak == 15.0

    def test_demand_by_state(self):
        vm = VMSpec(0.01, 0.09, 10.0, 5.0)
        assert vm.demand(False) == 10.0
        assert vm.demand(True) == 15.0

    def test_expected_demand(self):
        vm = VMSpec(0.01, 0.09, 10.0, 5.0)
        assert vm.expected_demand == pytest.approx(10.0 + 5.0 * 0.1)

    def test_chain_parameters(self):
        vm = VMSpec(0.02, 0.08, 1.0, 1.0)
        chain = vm.chain()
        assert chain.p_on == 0.02 and chain.p_off == 0.08

    def test_frozen(self):
        vm = VMSpec(0.01, 0.09, 1.0, 1.0)
        with pytest.raises(AttributeError):
            vm.r_base = 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            VMSpec(0.0, 0.09, 1.0, 1.0)
        with pytest.raises(ValueError):
            VMSpec(0.01, 0.09, -1.0, 1.0)
        with pytest.raises(ValueError):
            VMSpec(0.01, 0.09, 1.0, -1.0)

    def test_zero_spike_allowed(self):
        assert VMSpec(0.01, 0.09, 5.0, 0.0).r_peak == 5.0


class TestPMSpec:
    def test_capacity(self):
        assert PMSpec(100.0).capacity == 100.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PMSpec(0.0)
        with pytest.raises(ValueError):
            PMSpec(-5.0)


class TestPlacement:
    def test_starts_unplaced(self):
        p = Placement(3, 2)
        assert not p.all_placed
        assert p.n_used_pms == 0
        np.testing.assert_array_equal(p.assignment, [UNPLACED] * 3)

    def test_place_and_query(self):
        p = Placement(3, 2)
        p.place(0, 1)
        p.place(1, 1)
        assert p.pm_of(0) == 1
        np.testing.assert_array_equal(p.vms_on(1), [0, 1])
        assert p.vms_on(0).size == 0
        assert p.n_used_pms == 1

    def test_double_place_rejected(self):
        p = Placement(2, 2)
        p.place(0, 0)
        with pytest.raises(ValueError, match="already placed"):
            p.place(0, 1)

    def test_bounds_checked(self):
        p = Placement(2, 2)
        with pytest.raises(ValueError):
            p.place(5, 0)
        with pytest.raises(ValueError):
            p.place(0, 5)
        with pytest.raises(ValueError):
            p.pm_of(-1)

    def test_remove(self):
        p = Placement(2, 2)
        p.place(0, 1)
        assert p.remove(0) == 1
        assert p.pm_of(0) == UNPLACED
        with pytest.raises(ValueError, match="not placed"):
            p.remove(0)

    def test_migrate(self):
        p = Placement(1, 3)
        p.place(0, 0)
        assert p.migrate(0, 2) == 0
        assert p.pm_of(0) == 2

    def test_used_pms_sorted_unique(self):
        p = Placement(4, 5)
        for vm, pm in [(0, 3), (1, 1), (2, 3), (3, 1)]:
            p.place(vm, pm)
        np.testing.assert_array_equal(p.used_pms(), [1, 3])

    def test_groups(self):
        p = Placement(3, 2, assignment=np.array([0, 1, 0]))
        groups = p.groups()
        np.testing.assert_array_equal(groups[0], [0, 2])
        np.testing.assert_array_equal(groups[1], [1])

    def test_as_matrix_row_sums(self):
        p = Placement(3, 2, assignment=np.array([0, 1, UNPLACED]))
        X = p.as_matrix()
        assert X.shape == (3, 2)
        np.testing.assert_array_equal(X.sum(axis=1), [1, 1, 0])
        assert X[0, 0] == 1 and X[1, 1] == 1

    def test_copy_is_independent(self):
        p = Placement(2, 2)
        p.place(0, 0)
        q = p.copy()
        q.place(1, 1)
        assert p.pm_of(1) == UNPLACED

    def test_iteration(self):
        p = Placement(3, 2, assignment=np.array([1, UNPLACED, 0]))
        assert sorted(p) == [(0, 1), (2, 0)]

    def test_constructor_validates_assignment(self):
        with pytest.raises(ValueError, match="shape"):
            Placement(3, 2, assignment=np.array([0, 1]))
        with pytest.raises(ValueError, match="entries"):
            Placement(2, 2, assignment=np.array([0, 5]))

    def test_constructor_copies_assignment(self):
        a = np.array([0, 1])
        p = Placement(2, 2, assignment=a)
        a[0] = 1
        assert p.pm_of(0) == 0


class TestVmArrays:
    def test_columns(self):
        vms = [VMSpec(0.01, 0.09, 1.0, 2.0), VMSpec(0.02, 0.08, 3.0, 4.0)]
        cols = vm_arrays(vms)
        np.testing.assert_array_equal(cols["r_base"], [1.0, 3.0])
        np.testing.assert_array_equal(cols["r_extra"], [2.0, 4.0])
        np.testing.assert_array_equal(cols["r_peak"], [3.0, 7.0])
        np.testing.assert_array_equal(cols["p_on"], [0.01, 0.02])

    def test_empty(self):
        cols = vm_arrays([])
        assert all(v.size == 0 for v in cols.values())
