"""The performance observatory: phase attribution, scaling probes, budgets.

The simulator has been permanently instrumented with ``timed`` spans since
PR 2, but the tree was only ever printed.  This module turns those spans
into actionable perf data, in four pieces:

- :class:`PhaseAttributor` partitions the per-run span tree into the tick
  *phases* (demand generation, failure injection, scheduling, migration,
  reconsolidation, monitoring, energy accounting — and the telemetry
  pipeline itself), attributing every span's *self* time to exactly one
  phase so the phase columns always sum to total tick time.
- :func:`run_perf_sweep` is the scaling-probe harness behind ``python -m
  repro perf``: it sweeps fleet sizes, runs each point through the bench
  runner, and writes a deterministic ``BENCH_PERF.json`` (run-invariant
  facts only) next to a wall-clock sidecar ``BENCH_PERF_timings.json`` and
  a Chrome-trace export loadable in ``chrome://tracing`` / Perfetto.
- :class:`PerfBudget` checks a flat timings dict against committed budget
  rules (max/min with relative tolerance) — the ``repro compare --budget``
  CI gate.
- :func:`spans_to_chrome_trace` / :func:`chrome_trace_to_spans` export the
  aggregated span forest as Chrome trace events and read it back
  losslessly (exact totals ride in ``args``; the B/E nesting is synthetic
  layout for the viewer).

Determinism contract (same as ``BENCH_results.json``): everything in
``BENCH_PERF.json`` is a run-invariant fact at a fixed seed — structure
counts, event counts, span call counts — so two runs of the same sweep
produce byte-identical files.  Wall-clock, allocation peaks and phase
timings live in the sidecar.
"""

from __future__ import annotations

import fnmatch
import json
import time
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.telemetry.profiling import Profiler, Span
from repro.utils.tables import format_table

__all__ = [
    "PHASE_MAP",
    "PHASE_ORDER",
    "PhaseReport",
    "PhaseAttributor",
    "MemoryProbe",
    "PerfSnapshot",
    "BudgetRule",
    "BudgetViolation",
    "PerfBudget",
    "flatten_metrics",
    "spans_to_chrome_trace",
    "chrome_trace_to_spans",
    "run_perf_sweep",
    "PerfPoint",
    "PerfSweepResult",
]

#: span name -> tick phase; spans not listed inherit their parent's phase
PHASE_MAP: dict[str, str] = {
    "phase.demand": "demand",
    "datacenter.step": "demand",
    "phase.failures": "failures",
    "failures.step": "failures",
    "phase.scheduler": "scheduler",
    "scheduler.resolve_overloads": "scheduler",
    "reconsolidation.replan": "reconsolidation",
    "migration.attempt": "migration",
    "phase.monitor": "monitor",
    "phase.energy": "energy",
    "telemetry.emit": "telemetry",
}

#: canonical phase ordering for tables and panels
PHASE_ORDER: tuple[str, ...] = (
    "demand", "failures", "scheduler", "migration", "reconsolidation",
    "monitor", "energy", "telemetry", "other",
)


# --------------------------------------------------------------------- #
# phase attribution
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class PhaseReport:
    """Wall-time attribution of one span tree across the tick phases.

    ``phase_seconds`` is an exact partition of ``tick_seconds``: every
    span's *self* time (total minus children) lands in exactly one phase,
    so ``sum(phase_seconds.values()) == tick_seconds`` up to float
    rounding.  ``span_calls`` / ``span_errors`` are flat per-span-name
    aggregates (run-invariant at a fixed seed).
    """

    tick_seconds: float
    tick_count: int
    phase_seconds: dict[str, float]
    span_calls: dict[str, int]
    span_errors: dict[str, int]

    @property
    def phase_fraction(self) -> dict[str, float]:
        """Each phase's share of total tick time (zeros when no ticks)."""
        total = self.tick_seconds
        return {p: (s / total if total > 0 else 0.0)
                for p, s in self.phase_seconds.items()}

    def table(self, *, vm_intervals: int | None = None) -> str:
        """Aligned per-phase breakdown table."""
        rows = []
        for phase in PHASE_ORDER:
            seconds = self.phase_seconds.get(phase, 0.0)
            row = [phase, seconds * 1e3,
                   self.phase_fraction.get(phase, 0.0) * 100.0]
            if vm_intervals is not None:
                row.append(seconds * 1e9 / vm_intervals
                           if vm_intervals else 0.0)
            rows.append(row)
        total_row = ["total (tick)", self.tick_seconds * 1e3, 100.0]
        headers = ["phase", "ms", "%"]
        if vm_intervals is not None:
            total_row.append(self.tick_seconds * 1e9 / vm_intervals
                             if vm_intervals else 0.0)
            headers.append("ns/vm-interval")
        rows.append(total_row)
        return format_table(headers, rows, floatfmt=".2f",
                            title="phase attribution")


class PhaseAttributor:
    """Aggregates a profiler span tree into per-phase wall time.

    Every ``tick`` subtree is walked depth-first; a node belongs to
    ``phase_map[name]`` when its name is mapped, otherwise it inherits the
    phase of its nearest mapped ancestor (unmapped spans directly under
    ``tick`` — and ``tick``'s own bookkeeping — count as ``"other"``).
    Because only *self* seconds are accumulated, the phases exactly
    partition total tick time no matter how deep the tree nests.
    """

    def __init__(self, phase_map: Mapping[str, str] | None = None):
        self.phase_map = dict(PHASE_MAP if phase_map is None else phase_map)

    def attribute(self, profiler_or_root: Profiler | Span) -> PhaseReport:
        """Attribute one span tree (a profiler or its root span)."""
        root = (profiler_or_root.root
                if isinstance(profiler_or_root, Profiler)
                else profiler_or_root)
        phase_seconds: dict[str, float] = {p: 0.0 for p in PHASE_ORDER}
        span_calls: dict[str, int] = {}
        span_errors: dict[str, int] = {}
        tick_seconds = 0.0
        tick_count = 0

        def count(span: Span) -> None:
            span_calls[span.name] = span_calls.get(span.name, 0) + span.count
            if span.errors:
                span_errors[span.name] = (span_errors.get(span.name, 0)
                                          + span.errors)
            for child in span.children.values():
                count(child)

        def walk(span: Span, phase: str) -> None:
            phase = self.phase_map.get(span.name, phase)
            phase_seconds[phase] = (phase_seconds.get(phase, 0.0)
                                    + span.self_seconds)
            for child in span.children.values():
                walk(child, phase)

        def find_ticks(span: Span) -> None:
            nonlocal tick_seconds, tick_count
            if span.name == "tick":
                tick_seconds += span.total_seconds
                tick_count += span.count
                phase_seconds["other"] += span.self_seconds
                for child in span.children.values():
                    walk(child, "other")
                return
            for child in span.children.values():
                find_ticks(child)

        count(root)
        span_calls.pop("<root>", None)
        find_ticks(root)
        return PhaseReport(
            tick_seconds=tick_seconds,
            tick_count=tick_count,
            phase_seconds=phase_seconds,
            span_calls=dict(sorted(span_calls.items())),
            span_errors=dict(sorted(span_errors.items())),
        )


@dataclass(frozen=True)
class PerfSnapshot:
    """Live perf headline for the dashboard PERF panel."""

    report: PhaseReport
    vm_intervals_per_second: float

    @classmethod
    def capture(cls, profiler: Profiler, *, n_vms: int,
                elapsed_seconds: float) -> "PerfSnapshot":
        report = PhaseAttributor().attribute(profiler)
        done = report.tick_count * n_vms
        rate = done / elapsed_seconds if elapsed_seconds > 0 else 0.0
        return cls(report=report, vm_intervals_per_second=rate)


# --------------------------------------------------------------------- #
# allocation sampling
# --------------------------------------------------------------------- #
class MemoryProbe:
    """Samples peak traced allocation with :mod:`tracemalloc`.

    Use as a context manager around one run::

        with MemoryProbe() as probe:
            scenario.run(...)
        print(probe.peak_bytes)

    tracemalloc slows execution noticeably, so the perf sweep runs the
    probe on a *dedicated* pass whose wall time is never reported.  When
    tracemalloc was already started by the caller (e.g. ``-X tracemalloc``)
    the probe piggybacks and leaves it running.
    """

    def __init__(self) -> None:
        self.peak_bytes = 0
        self.current_bytes = 0
        self._owns_trace = False

    def __enter__(self) -> "MemoryProbe":
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_trace = True
        tracemalloc.reset_peak()
        return self

    def __exit__(self, *exc) -> None:
        self.current_bytes, self.peak_bytes = tracemalloc.get_traced_memory()
        if self._owns_trace:
            tracemalloc.stop()
            self._owns_trace = False


# --------------------------------------------------------------------- #
# Chrome trace export / import
# --------------------------------------------------------------------- #
def spans_to_chrome_trace(forests: Mapping[str, dict]) -> dict:
    """Export span forests as a Chrome-trace-format (JSON object) dict.

    ``forests`` maps a label (one per process row in the viewer — e.g.
    ``"n200"`` or ``"worker:fig5"``) to a ``Profiler.to_dict()`` payload.
    Each aggregated span becomes a B/E duration pair on a synthetic
    timeline whose widths reflect the aggregated totals; the *exact*
    ``count`` / ``total_seconds`` / ``errors`` ride in ``args`` so
    :func:`chrome_trace_to_spans` round-trips losslessly.
    """
    events: list[dict] = []
    for pid, label in enumerate(sorted(forests), start=1):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 1,
            "args": {"name": label},
        })

        def emit(node: dict, cursor_us: float) -> float:
            total_us = float(node["total_seconds"]) * 1e6
            events.append({
                "name": node["name"], "ph": "B", "ts": cursor_us,
                "pid": pid, "tid": 1,
                "args": {
                    "count": node["count"],
                    "total_seconds": node["total_seconds"],
                    "errors": node.get("errors", 0),
                },
            })
            child_cursor = cursor_us
            for child in node.get("children", ()):
                child_cursor = emit(child, child_cursor)
            end = max(cursor_us + total_us, child_cursor)
            events.append({"name": node["name"], "ph": "E", "ts": end,
                           "pid": pid, "tid": 1})
            return end

        cursor = 0.0
        for top in forests[label].get("spans", ()):
            cursor = emit(top, cursor)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_to_spans(trace: dict) -> dict[str, dict]:
    """Inverse of :func:`spans_to_chrome_trace` (exact values from args)."""
    labels: dict[int, str] = {}
    by_pid: dict[int, list[dict]] = {}
    for event in trace.get("traceEvents", ()):
        pid = event["pid"]
        if event.get("ph") == "M" and event.get("name") == "process_name":
            labels[pid] = event["args"]["name"]
            by_pid.setdefault(pid, [])  # keep span-less processes
            continue
        by_pid.setdefault(pid, []).append(event)
    forests: dict[str, dict] = {}
    for pid, events in by_pid.items():
        label = labels.get(pid, f"pid{pid}")
        tops: list[dict] = []
        stack: list[dict] = []
        for event in events:
            if event["ph"] == "B":
                node = {
                    "name": event["name"],
                    "count": event["args"]["count"],
                    "total_seconds": event["args"]["total_seconds"],
                    "errors": event["args"].get("errors", 0),
                    "children": [],
                }
                (stack[-1]["children"] if stack else tops).append(node)
                stack.append(node)
            elif event["ph"] == "E":
                if not stack or stack[-1]["name"] != event["name"]:
                    raise ValueError(
                        f"unbalanced trace events for pid {pid}: "
                        f"E {event['name']!r} does not close the open span")
                stack.pop()
        if stack:
            raise ValueError(
                f"unbalanced trace events for pid {pid}: "
                f"{len(stack)} span(s) never closed")
        forests[label] = {"spans": tops}
    return forests


# --------------------------------------------------------------------- #
# budgets
# --------------------------------------------------------------------- #
def flatten_metrics(data: Any, prefix: str = "") -> dict[str, float]:
    """Flatten nested JSON (dicts of numbers) into dotted-key floats."""
    flat: dict[str, float] = {}
    if isinstance(data, Mapping):
        for key, value in data.items():
            dotted = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_metrics(value, dotted))
    elif isinstance(data, bool):
        flat[prefix] = float(data)
    elif isinstance(data, (int, float)):
        flat[prefix] = float(data)
    return flat


@dataclass(frozen=True)
class BudgetRule:
    """One budget: a key pattern with a max and/or min plus relative slack."""

    pattern: str
    max: float | None = None
    min: float | None = None
    tolerance: float = 0.0

    @property
    def effective_max(self) -> float | None:
        if self.max is None:
            return None
        return self.max * (1.0 + self.tolerance)

    @property
    def effective_min(self) -> float | None:
        if self.min is None:
            return None
        return self.min * (1.0 - self.tolerance)


@dataclass(frozen=True)
class BudgetViolation:
    """One metric that broke its budget."""

    metric: str
    value: float
    rule: BudgetRule
    reason: str


class PerfBudget:
    """Committed per-metric perf budgets with tolerances.

    The on-disk format (``benchmarks/perf_budgets.json``)::

        {"format": "repro-perf-budget-v1",
         "budgets": {"sweep.*.telemetry_fraction":
                         {"max": 0.2, "tolerance": 0.5}, ...}}

    Patterns are :mod:`fnmatch` globs over the dotted keys of the
    flattened timings sidecar; a metric matched by several rules must pass
    all of them.  Rules that match nothing are reported (a renamed metric
    must not silently disarm its gate).
    """

    def __init__(self, rules: Iterable[BudgetRule]):
        self.rules = list(rules)

    @classmethod
    def from_file(cls, path: str | Path) -> "PerfBudget":
        data = json.loads(Path(path).read_text())
        budgets = data.get("budgets", data)
        rules = []
        for pattern, spec in sorted(budgets.items()):
            if pattern == "format" or not isinstance(spec, Mapping):
                continue
            rules.append(BudgetRule(
                pattern=pattern,
                max=spec.get("max"),
                min=spec.get("min"),
                tolerance=float(spec.get("tolerance", 0.0)),
            ))
        if not rules:
            raise ValueError(f"no budget rules found in {path}")
        return cls(rules)

    def check(self, metrics: Mapping[str, float]
              ) -> tuple[list[BudgetViolation], list[BudgetRule]]:
        """Evaluate; returns ``(violations, rules_that_matched_nothing)``."""
        violations: list[BudgetViolation] = []
        unmatched: list[BudgetRule] = []
        for rule in self.rules:
            hits = [k for k in sorted(metrics)
                    if fnmatch.fnmatch(k, rule.pattern)]
            if not hits:
                unmatched.append(rule)
                continue
            for key in hits:
                value = float(metrics[key])
                limit = rule.effective_max
                floor = rule.effective_min
                if limit is not None and value > limit:
                    violations.append(BudgetViolation(
                        key, value, rule,
                        f"{value:g} > max {rule.max:g} "
                        f"(+{rule.tolerance:.0%} tolerance = {limit:g})"))
                if floor is not None and value < floor:
                    violations.append(BudgetViolation(
                        key, value, rule,
                        f"{value:g} < min {rule.min:g} "
                        f"(-{rule.tolerance:.0%} tolerance = {floor:g})"))
        return violations, unmatched


# --------------------------------------------------------------------- #
# the scaling probe harness
# --------------------------------------------------------------------- #
#: patchable component method per phase (the --slow-phase test hook)
_SLOW_PHASE_TARGETS = {
    "demand": ("datacenter", "step"),
    "failures": ("injector", "step"),
    "scheduler": ("scheduler", "resolve_overloads"),
    "monitor": ("monitor", "record_interval"),
}


@dataclass(frozen=True)
class PerfPoint:
    """Everything measured at one sweep size."""

    n_vms: int
    n_pms: int
    vm_intervals: int
    events_emitted: int
    migrations: int
    span_calls: dict[str, int]
    span_errors: dict[str, int]
    plain_seconds: float
    median_seconds: float
    repeat_seconds: list[float]
    peak_alloc_bytes: int
    report: PhaseReport
    spans: dict

    @property
    def vm_intervals_per_second(self) -> float:
        return (self.vm_intervals / self.median_seconds
                if self.median_seconds > 0 else 0.0)

    @property
    def seconds_per_vm_interval(self) -> float:
        return (self.median_seconds / self.vm_intervals
                if self.vm_intervals else 0.0)

    @property
    def instrumentation_overhead(self) -> float:
        """Full observer effect: (instrumented - plain) / plain."""
        if self.plain_seconds <= 0:
            return 0.0
        return (self.median_seconds - self.plain_seconds) / self.plain_seconds

    @property
    def telemetry_fraction(self) -> float:
        """Share of tick time spent inside the telemetry pipeline."""
        return self.report.phase_fraction.get("telemetry", 0.0)


@dataclass
class PerfSweepResult:
    """The full sweep: points by size plus the sweep parameters."""

    mode: str
    intervals: int
    repeats: int
    seed: int
    points: dict[int, PerfPoint] = field(default_factory=dict)

    # -- deterministic facts (BENCH_PERF.json) ------------------------- #
    def facts_dict(self) -> dict:
        return {
            "format": "repro-perf-v1",
            "mode": self.mode,
            "intervals": self.intervals,
            "repeats": self.repeats,
            "seed": self.seed,
            "sweep": {
                str(n): {
                    "n_vms": p.n_vms,
                    "n_pms": p.n_pms,
                    "vm_intervals": p.vm_intervals,
                    "events_emitted": p.events_emitted,
                    "migrations": p.migrations,
                    "span_calls": p.span_calls,
                    "span_errors": p.span_errors,
                }
                for n, p in sorted(self.points.items())
            },
        }

    # -- wall-clock sidecar (BENCH_PERF_timings.json) ------------------ #
    def timings_dict(self) -> dict:
        return {
            "format": "repro-perf-timings-v1",
            "sweep": {
                str(n): {
                    "plain_seconds": p.plain_seconds,
                    "median_seconds": p.median_seconds,
                    "repeat_seconds": p.repeat_seconds,
                    "vm_intervals_per_second": p.vm_intervals_per_second,
                    "seconds_per_vm_interval": p.seconds_per_vm_interval,
                    "instrumentation_overhead": p.instrumentation_overhead,
                    "telemetry_fraction": p.telemetry_fraction,
                    "peak_alloc_bytes": p.peak_alloc_bytes,
                    "tick_seconds": p.report.tick_seconds,
                    "phase_seconds": {
                        ph: p.report.phase_seconds.get(ph, 0.0)
                        for ph in PHASE_ORDER},
                    "phase_fraction": {
                        ph: p.report.phase_fraction.get(ph, 0.0)
                        for ph in PHASE_ORDER},
                }
                for n, p in sorted(self.points.items())
            },
        }

    def chrome_trace(self) -> dict:
        return spans_to_chrome_trace(
            {f"n{n}": p.spans for n, p in sorted(self.points.items())})

    def table(self) -> str:
        """The scaling summary table (wall clock — not for diffing)."""
        rows = []
        for n, p in sorted(self.points.items()):
            rows.append([
                n, p.n_pms, p.vm_intervals,
                p.median_seconds * 1e3,
                p.vm_intervals_per_second,
                p.instrumentation_overhead * 100.0,
                p.telemetry_fraction * 100.0,
                p.peak_alloc_bytes / 2**20,
            ])
        return format_table(
            ["n_vms", "n_pms", "vm-intervals", "ms (median)",
             "vm-int/s", "observer %", "telemetry %", "peak MiB"],
            rows, floatfmt=".2f",
            title=(f"scaling sweep (mode={self.mode}, "
                   f"intervals={self.intervals}, repeats={self.repeats}, "
                   f"seed={self.seed})"))

    def write(self, output_dir: str | Path) -> dict[str, Path]:
        """Write BENCH_PERF.json + timings sidecar + Chrome trace."""
        out = Path(output_dir)
        out.mkdir(parents=True, exist_ok=True)
        paths = {
            "facts": out / "BENCH_PERF.json",
            "timings": out / "BENCH_PERF_timings.json",
            "trace": out / "BENCH_PERF_trace.json",
        }
        paths["facts"].write_text(
            json.dumps(self.facts_dict(), indent=2, sort_keys=True) + "\n")
        paths["timings"].write_text(
            json.dumps(self.timings_dict(), indent=2, sort_keys=True) + "\n")
        paths["trace"].write_text(
            json.dumps(self.chrome_trace(), indent=2, sort_keys=True) + "\n")
        return paths


def _build_scenario(n_vms: int, *, seed: int, mode: str, telemetry,
                    intervals: int):
    from repro.core.queuing_ffd import QueuingFFD
    from repro.simulation.energy import EnergyModel
    from repro.simulation.scenario import Scenario
    from repro.workload.patterns import generate_pattern_instance

    vms, pms = generate_pattern_instance("large", n_vms, seed=seed)
    tick_mode = "vectorized" if mode == "vector" else "scalar"
    return Scenario(
        vms, pms,
        placer=QueuingFFD(rho=0.01, d=16),
        failures=True,
        migration_failure_probability=0.05,
        energy_model=EnergyModel(),
        start_stationary=True,
        tick_mode=tick_mode,
        # exercise the replan path at least once per run
        reconsolidation={"period": max(2, intervals // 2)},
        telemetry=telemetry,
    ), len(pms)


def _install_slow_phase(run, phase: str, seconds: float) -> None:
    """Test hook: make one phase spend ``seconds`` extra per tick.

    The sleep is injected *inside* the component call so it lands within
    the matching ``phase.*`` span; only wall-clock changes, so the
    deterministic facts file is unaffected.
    """
    try:
        attr_name, method_name = _SLOW_PHASE_TARGETS[phase]
    except KeyError:
        raise ValueError(
            f"unknown --slow-phase {phase!r}; "
            f"known: {sorted(_SLOW_PHASE_TARGETS)}") from None
    component = getattr(run, attr_name)
    if component is None:
        raise ValueError(f"phase {phase!r} is not active in this scenario")
    original = getattr(component, method_name)

    def slowed(*a, **kw):
        time.sleep(seconds)
        return original(*a, **kw)

    setattr(component, method_name, slowed)


def _one_instrumented_run(n_vms: int, *, seed: int, mode: str,
                          intervals: int,
                          slow_phase: tuple[str, float] | None):
    """One fully traced run; returns (wall, telemetry, report_obj)."""
    from repro.telemetry import Telemetry
    from repro.telemetry.sinks import RingBufferSink

    tel = Telemetry(RingBufferSink(capacity=4096))
    scenario, _ = _build_scenario(n_vms, seed=seed, mode=mode,
                                  telemetry=tel, intervals=intervals)
    run = scenario.start(seed=seed)
    if slow_phase is not None:
        _install_slow_phase(run, slow_phase[0], slow_phase[1])
    t0 = time.perf_counter()
    try:
        run.advance(intervals)
    finally:
        run.close()
    wall = time.perf_counter() - t0
    report = run.finish()
    return wall, tel, report


def run_perf_sweep(
    *,
    sweep: Iterable[int],
    intervals: int = 50,
    repeats: int = 3,
    seed: int = 2013,
    mode: str = "vector",
    slow_phase: tuple[str, float] | None = None,
    trace_memory: bool = True,
    on_point: Callable[[int, "PerfPoint"], None] | None = None,
) -> PerfSweepResult:
    """Sweep fleet sizes; measure wall, phases, allocation, throughput.

    Per sweep size: one *plain* run (telemetry off) for the observer-effect
    baseline, ``repeats`` instrumented runs (median wall; attribution from
    the median run), and one dedicated tracemalloc pass (never timed).
    Deterministic facts (span call counts, event counts, migrations) are
    taken from the *first* instrumented run — "which repeat was fastest"
    is wall-clock noise and must not leak into ``BENCH_PERF.json``.
    """
    if mode not in ("scalar", "vector"):
        raise ValueError(f"mode must be 'scalar' or 'vector', got {mode!r}")
    sizes = sorted(set(int(n) for n in sweep))
    if not sizes or any(n < 1 for n in sizes):
        raise ValueError(f"sweep sizes must be positive, got {sizes}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    result = PerfSweepResult(mode=mode, intervals=intervals,
                             repeats=repeats, seed=seed)
    attributor = PhaseAttributor()
    from repro.perf.cache import fresh_cache

    # A cold, isolated MapCal cache makes solve/hit span counts a pure
    # function of (sweep, seed) — independent of whatever warmed the
    # process-wide cache before us — which is what lets BENCH_PERF.json
    # promise byte-identical reruns.
    with fresh_cache():
        _run_sweep_points(sizes, result, attributor, intervals=intervals,
                          repeats=repeats, seed=seed, mode=mode,
                          slow_phase=slow_phase, trace_memory=trace_memory,
                          on_point=on_point)
    return result


def _run_sweep_points(sizes, result, attributor, *, intervals, repeats,
                      seed, mode, slow_phase, trace_memory, on_point):
    for n_vms in sizes:
        # -- plain baseline (no telemetry at all) ---------------------- #
        scenario, n_pms = _build_scenario(n_vms, seed=seed, mode=mode,
                                          telemetry=None,
                                          intervals=intervals)
        run = scenario.start(seed=seed)
        if slow_phase is not None:
            _install_slow_phase(run, slow_phase[0], slow_phase[1])
        t0 = time.perf_counter()
        try:
            run.advance(intervals)
        finally:
            run.close()
        plain_seconds = time.perf_counter() - t0
        run.finish()

        # -- instrumented repeats -------------------------------------- #
        walls: list[float] = []
        telemetries = []
        for _ in range(repeats):
            wall, tel, report = _one_instrumented_run(
                n_vms, seed=seed, mode=mode, intervals=intervals,
                slow_phase=slow_phase)
            walls.append(wall)
            telemetries.append((tel, report))
        order = sorted(range(repeats), key=lambda i: walls[i])
        median_idx = order[len(order) // 2]
        median_tel, _ = telemetries[median_idx]
        first_tel, first_report = telemetries[0]
        phase_report = attributor.attribute(median_tel.profiler)
        facts_report = attributor.attribute(first_tel.profiler)

        # -- throughput gauge (live-queryable, also in the sidecar) ---- #
        vm_intervals = n_vms * intervals
        throughput = (vm_intervals / walls[median_idx]
                      if walls[median_idx] > 0 else 0.0)
        median_tel.metrics.gauge(
            "perf_vm_intervals_per_second",
            "simulation throughput measured by the perf sweep",
        ).set(throughput)

        # -- allocation pass (tracemalloc; wall never reported) -------- #
        peak = 0
        if trace_memory:
            scenario, _ = _build_scenario(n_vms, seed=seed, mode=mode,
                                          telemetry=None,
                                          intervals=intervals)
            with MemoryProbe() as probe:
                scenario.run(intervals, seed=seed)
            peak = probe.peak_bytes

        point = PerfPoint(
            n_vms=n_vms,
            n_pms=n_pms,
            vm_intervals=vm_intervals,
            events_emitted=first_tel.events.emitted,
            migrations=int(first_report.total_migrations),
            span_calls=facts_report.span_calls,
            span_errors=facts_report.span_errors,
            plain_seconds=plain_seconds,
            median_seconds=walls[median_idx],
            repeat_seconds=sorted(walls),
            peak_alloc_bytes=peak,
            report=phase_report,
            spans=median_tel.profiler.to_dict(),
        )
        result.points[n_vms] = point
        if on_point is not None:
            on_point(n_vms, point)
