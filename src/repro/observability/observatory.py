"""The run observatory: recorder + SLO engine + drift detector, one socket.

:class:`Observatory` is the single object a scenario (or a replay loop)
talks to.  It bundles:

- a :class:`~repro.observability.recorder.TimeSeriesRecorder` holding the
  rolling aggregates and chart series,
- an :class:`~repro.observability.slo.SLOEngine` evaluating burn-rate
  rules after every finalized interval,
- a :class:`~repro.observability.drift.DriftDetector` chi-square-testing
  each PM's ON counts against the assumed Geom/Geom/K law,

and routes every telemetry event to all three.  Two operating modes:

**Live** — :meth:`attach` subscribes the observatory to a
:class:`~repro.telemetry.bus.EventBus`; alert and drift events it emits
travel back through the same bus (landing in any JSONL sink right after
the snapshot that caused them) and are recognised and skipped on re-entry.

**Replay** — :meth:`from_jsonl` rebuilds observatory state from a recorded
trace with *no simulator re-execution*: the engines re-derive the alert
timeline deterministically from the snapshots (emission off), while the
Alert/Drift events recorded in the stream are collected into
:attr:`recorded_alerts` so a dashboard can show what the live run actually
fired — and a test can assert the two agree.
"""

from __future__ import annotations

from pathlib import Path

from repro.observability.drift import DriftDetector
from repro.observability.recorder import TimeSeriesRecorder
from repro.observability.slo import SLOEngine, SLORule, default_rules
from repro.telemetry.events import (
    AlertFired,
    AlertResolved,
    DriftDetected,
    IntervalSnapshot,
    MigrationDecided,
    PlacementDecided,
    ReconsolidationDecided,
    RefitCompleted,
    RefitRejected,
    ReplanCommitted,
    ReplanDecided,
    ReplanRolledBack,
    ReplanStarted,
    TelemetryEvent,
)

#: the autopilot control-loop vocabulary (collected, live and in replay)
AUTOPILOT_EVENTS = (RefitCompleted, RefitRejected, ReplanStarted,
                    ReplanCommitted, ReplanRolledBack)

#: the decision-provenance vocabulary (collected, live and in replay)
DECISION_EVENTS = (PlacementDecided, MigrationDecided,
                   ReconsolidationDecided, ReplanDecided)
from repro.telemetry.sinks import read_events_tolerant

__all__ = ["Observatory"]


class Observatory:
    """Recorder, SLO engine and drift detector behind one event socket.

    Parameters
    ----------
    window:
        Recorder rolling-window length (intervals); must cover the slowest
        SLO window.
    rules:
        SLO rules; defaults to :func:`~repro.observability.slo.default_rules`
        parameterized by ``rho``.
    rho:
        Error budget for the default CVR rule (ignored when ``rules`` is
        given).
    drift_window / drift_threshold / drift_consecutive / drift_min_samples:
        Passed through to :class:`DriftDetector`.
    emit:
        Whether the engines emit Alert/Drift events through telemetry.
        ``from_jsonl`` forces this off.
    """

    def __init__(self, *, window: int = 240,
                 rules: list[SLORule] | None = None, rho: float = 0.01,
                 drift_window: int = 30, drift_threshold: float = 10.83,
                 drift_consecutive: int = 2, drift_min_samples: int = 10,
                 emit: bool = True):
        self.recorder = TimeSeriesRecorder(window=window)
        self.slo = SLOEngine(
            self.recorder,
            rules if rules is not None else default_rules(rho),
            emit=emit,
        )
        self.drift = DriftDetector(
            window=drift_window, threshold=drift_threshold,
            consecutive=drift_consecutive, min_samples=drift_min_samples,
            emit=emit,
        )
        #: Alert/Drift events found in a replayed stream (empty when live)
        self.recorded_alerts: list[TelemetryEvent] = []
        #: autopilot refit/replan events, chronological (live and replay)
        self.autopilot_events: list[TelemetryEvent] = []
        #: decision-provenance events, chronological (live and replay)
        self.decision_events: list[TelemetryEvent] = []
        #: malformed JSONL lines skipped by :meth:`from_jsonl`
        self.skipped_lines = 0
        self._live = False
        self._unsubscribe = None

    # ----------------------------------------------------------------- #
    # wiring
    # ----------------------------------------------------------------- #
    def attach(self, telemetry) -> None:
        """Go live: subscribe to the bus and emit alerts through it."""
        if self._unsubscribe is not None:
            raise RuntimeError("observatory is already attached")
        self.slo._telemetry = telemetry
        self.drift._telemetry = telemetry
        self._live = True
        self._unsubscribe = telemetry.events.subscribe(self.observe)

    def detach(self) -> None:
        """Unsubscribe from the bus (idempotent)."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        self._live = False

    # ----------------------------------------------------------------- #
    # ingestion
    # ----------------------------------------------------------------- #
    def observe(self, event: TelemetryEvent) -> None:
        """Route one event; evaluate engines on interval snapshots."""
        if isinstance(event, (AlertFired, AlertResolved, DriftDetected)):
            if self._live:
                # our own emission echoing back through the bus
                return
            self.recorded_alerts.append(event)
            return
        if isinstance(event, AUTOPILOT_EVENTS):
            self.autopilot_events.append(event)
            return
        if isinstance(event, DECISION_EVENTS):
            self.decision_events.append(event)
            return
        self.recorder.on_event(event)
        if isinstance(event, IntervalSnapshot):
            self.drift.observe(event)
            self.slo.evaluate(event.time)

    # ----------------------------------------------------------------- #
    # queries
    # ----------------------------------------------------------------- #
    @property
    def has_active_alerts(self) -> bool:
        """Whether any SLO rule is currently firing."""
        return self.slo.has_active_alerts()

    def alert_active(self) -> bool:
        """Bound-method form for trigger wiring (AlertReactiveTrigger)."""
        return self.slo.has_active_alerts()

    def summary(self) -> dict:
        """One flat dict of headline state (dashboard / tests / compare)."""
        out = dict(self.recorder.fleet_summary())
        out["alerts_active"] = float(len(self.slo.active))
        out["alerts_fired"] = float(self.slo.fired_total)
        out["alerts_resolved"] = float(self.slo.resolved_total)
        out["drifted_pms"] = float(len(self.drift.flagged_pms))
        out["skipped_lines"] = float(self.skipped_lines)
        out["replans_committed"] = float(sum(
            1 for e in self.autopilot_events
            if isinstance(e, ReplanCommitted)))
        out["replans_rolled_back"] = float(sum(
            1 for e in self.autopilot_events
            if isinstance(e, ReplanRolledBack)))
        out["decisions_recorded"] = float(len(self.decision_events))
        out["decisions_dropped_total"] = float(sum(
            getattr(e, "dropped_candidates", 0)
            + getattr(e, "dropped_moves", 0)
            for e in self.decision_events))
        return out

    # ----------------------------------------------------------------- #
    # replay
    # ----------------------------------------------------------------- #
    @classmethod
    def from_jsonl(cls, path: str | Path, **kwargs) -> Observatory:
        """Rebuild observatory state from a recorded JSONL trace.

        Malformed lines are skipped (counted in :attr:`skipped_lines`);
        no simulator runs.  Keyword arguments are forwarded to the
        constructor; ``emit`` is forced off.
        """
        kwargs["emit"] = False
        obs = cls(**kwargs)
        events, skipped = read_events_tolerant(path)
        for event in events:
            obs.observe(event)
        obs.skipped_lines = skipped
        return obs
