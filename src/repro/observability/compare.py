"""``python -m repro compare A.jsonl B.jsonl`` — regression diff renderer.

Replays two recorded traces through the observatory (no simulator
execution), reduces each to the flat summary of
:func:`repro.analysis.regression.run_summary`, and renders the
:func:`~repro.analysis.regression.regression_diff` as an aligned table
plus the two alert timelines side by side.  Exit code 1 when any metric
regressed — so CI can gate on it.

Two perf extensions share the same exit-code contract:

- both inputs being perf JSON files (``"format": "repro-perf-..."``)
  switches to a flat-metric diff over the dotted keys — how two
  ``BENCH_PERF_timings.json`` sidecars are trended, with ``--tolerance
  METRIC=PCT`` giving the noisy wall-clock metrics slack;
- ``--budget budgets.json timings.json`` checks one timings file against
  committed :class:`repro.observability.perf.PerfBudget` rules instead of
  a baseline run.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Mapping

from repro.analysis.regression import regression_diff, summarize_observatory
from repro.observability.observatory import Observatory
from repro.utils.tables import format_table

__all__ = ["render_comparison", "render_budget_check", "run_compare",
           "is_perf_metrics_file"]

_MARK = {"regression": "!!", "improvement": "ok", "changed": "~", "unchanged": ""}


def _alert_lines(label: str, obs: Observatory) -> list[str]:
    lines = [f"{label}:"]
    if not obs.slo.timeline:
        lines.append("  (no alerts)")
        return lines
    for span in obs.slo.timeline:
        end = span.resolved_at if span.resolved_at is not None else "…"
        lines.append(
            f"  {span.rule} [{span.severity}] {span.fired_at}..{end} "
            f"peak burn {span.peak_burn_fast:.1f}x")
    return lines


def is_perf_metrics_file(path: str | Path) -> bool:
    """True when ``path`` is a perf JSON artifact (flat-metric diffable)."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return False  # JSONL traces land here (multiple objects)
    return (isinstance(data, dict)
            and str(data.get("format", "")).startswith("repro-perf"))


def _load_perf_metrics(path: str | Path) -> dict[str, float]:
    from repro.observability.perf import flatten_metrics

    data = json.loads(Path(path).read_text())
    flat = flatten_metrics(data)
    flat.pop("format", None)
    return flat


def render_comparison(baseline: str | Path, candidate: str | Path, *,
                      rtol: float = 0.05, show_unchanged: bool = False,
                      ignore: tuple[str, ...] = (),
                      tolerances: Mapping[str, float] | None = None
                      ) -> tuple[str, bool]:
    """Render the diff; returns ``(text, any_regression)``.

    ``ignore`` names metrics excluded from the verdict (still rendered,
    marked ``ig``) — e.g. ``migrations_window`` when diffing an
    adaptation policy that deliberately spends migrations.  ``tolerances``
    maps metric-name patterns to per-metric rtol overrides (the
    ``--tolerance METRIC=PCT`` flag).
    """
    perf_mode = (is_perf_metrics_file(baseline)
                 and is_perf_metrics_file(candidate))
    if perf_mode:
        a = _load_perf_metrics(baseline)
        b = _load_perf_metrics(candidate)
        obs_a = obs_b = None
    else:
        obs_a = Observatory.from_jsonl(baseline)
        obs_b = Observatory.from_jsonl(candidate)
        a = summarize_observatory(obs_a)
        b = summarize_observatory(obs_b)
    deltas = regression_diff(a, b, rtol=rtol, tolerances=tolerances)
    ignored = set(ignore)
    shown = [d for d in deltas
             if show_unchanged or d.verdict != "unchanged"]
    lines = [f"baseline : {baseline}", f"candidate: {candidate}", ""]
    if shown:
        rows = [
            [d.metric, d.baseline, d.candidate, d.delta,
             f"{d.relative:+.1%}" if d.relative not in (float("inf"),)
             else "new",
             "ig" if d.metric in ignored else _MARK[d.verdict]]
            for d in shown
        ]
        lines.append(format_table(
            ["metric", "baseline", "candidate", "delta", "rel", ""],
            rows, floatfmt=".4f",
            title=f"metric deltas (rtol={rtol:g}; !! = regression)"))
    else:
        lines.append(f"no metric moved beyond rtol={rtol:g}")
    if not perf_mode:
        lines.append("")
        lines.extend(_alert_lines("baseline alerts", obs_a))
        lines.extend(_alert_lines("candidate alerts", obs_b))
    regressed = any(d.verdict == "regression" and d.metric not in ignored
                    for d in deltas)
    lines.append("")
    lines.append("verdict: "
                 + ("REGRESSION" if regressed else "no regressions"))
    return "\n".join(lines), regressed


def render_budget_check(budget_path: str | Path,
                        metrics_path: str | Path) -> tuple[str, bool]:
    """Check one perf metrics file against committed budgets.

    Returns ``(text, violated)``; rules that matched no metric are listed
    too (a renamed metric must not silently disarm its gate) but only
    budget violations fail the check.
    """
    from repro.observability.perf import PerfBudget

    budget = PerfBudget.from_file(budget_path)
    metrics = _load_perf_metrics(metrics_path)
    violations, unmatched = budget.check(metrics)
    lines = [f"budget   : {budget_path}", f"candidate: {metrics_path}", ""]
    if violations:
        rows = [[v.metric, v.value, v.rule.pattern, v.reason]
                for v in violations]
        lines.append(format_table(
            ["metric", "value", "budget", "violation"], rows,
            floatfmt=".4g", title="budget violations"))
    else:
        lines.append(f"all {len(budget.rules)} budget rule(s) satisfied")
    for rule in unmatched:
        lines.append(f"warning: budget pattern {rule.pattern!r} matched "
                     "no metric")
    lines.append("")
    lines.append("verdict: "
                 + ("BUDGET VIOLATION" if violations else "within budget"))
    return "\n".join(lines), bool(violations)


def run_compare(baseline: str | Path, candidate: str | Path | None = None, *,
                rtol: float = 0.05, show_unchanged: bool = False,
                ignore: tuple[str, ...] = (),
                tolerances: Mapping[str, float] | None = None,
                budget: str | Path | None = None, stream=None) -> int:
    """CLI driver; exit code 1 on regression or budget violation.

    With ``budget`` set, ``baseline`` is the (single) perf metrics file to
    gate and ``candidate`` must be omitted.
    """
    stream = stream if stream is not None else sys.stdout
    if budget is not None:
        if candidate is not None:
            print("error: --budget takes one metrics file, not a "
                  "baseline/candidate pair", file=stream)
            return 2
        for path in (budget, baseline):
            if not Path(path).exists():
                print(f"error: no such file: {path}", file=stream)
                return 2
        try:
            text, violated = render_budget_check(budget, baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=stream)
            return 2
        print(text, file=stream)
        return 1 if violated else 0
    if candidate is None:
        print("error: compare needs a baseline and a candidate "
              "(or --budget)", file=stream)
        return 2
    for path in (baseline, candidate):
        if not Path(path).exists():
            print(f"error: no such trace file: {path}", file=stream)
            return 2
    text, regressed = render_comparison(
        baseline, candidate, rtol=rtol, show_unchanged=show_unchanged,
        ignore=ignore, tolerances=tolerances)
    print(text, file=stream)
    return 1 if regressed else 0
