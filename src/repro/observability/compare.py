"""``python -m repro compare A.jsonl B.jsonl`` — regression diff renderer.

Replays two recorded traces through the observatory (no simulator
execution), reduces each to the flat summary of
:func:`repro.analysis.regression.run_summary`, and renders the
:func:`~repro.analysis.regression.regression_diff` as an aligned table
plus the two alert timelines side by side.  Exit code 1 when any metric
regressed — so CI can gate on it.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis.regression import regression_diff, summarize_observatory
from repro.observability.observatory import Observatory
from repro.utils.tables import format_table

__all__ = ["render_comparison", "run_compare"]

_MARK = {"regression": "!!", "improvement": "ok", "changed": "~", "unchanged": ""}


def _alert_lines(label: str, obs: Observatory) -> list[str]:
    lines = [f"{label}:"]
    if not obs.slo.timeline:
        lines.append("  (no alerts)")
        return lines
    for span in obs.slo.timeline:
        end = span.resolved_at if span.resolved_at is not None else "…"
        lines.append(
            f"  {span.rule} [{span.severity}] {span.fired_at}..{end} "
            f"peak burn {span.peak_burn_fast:.1f}x")
    return lines


def render_comparison(baseline: str | Path, candidate: str | Path, *,
                      rtol: float = 0.05, show_unchanged: bool = False,
                      ignore: tuple[str, ...] = ()
                      ) -> tuple[str, bool]:
    """Render the diff; returns ``(text, any_regression)``.

    ``ignore`` names metrics excluded from the verdict (still rendered,
    marked ``ig``) — e.g. ``migrations_window`` when diffing an
    adaptation policy that deliberately spends migrations.
    """
    obs_a = Observatory.from_jsonl(baseline)
    obs_b = Observatory.from_jsonl(candidate)
    a = summarize_observatory(obs_a)
    b = summarize_observatory(obs_b)
    deltas = regression_diff(a, b, rtol=rtol)
    ignored = set(ignore)
    shown = [d for d in deltas
             if show_unchanged or d.verdict != "unchanged"]
    lines = [f"baseline : {baseline}", f"candidate: {candidate}", ""]
    if shown:
        rows = [
            [d.metric, d.baseline, d.candidate, d.delta,
             f"{d.relative:+.1%}" if d.relative not in (float("inf"),)
             else "new",
             "ig" if d.metric in ignored else _MARK[d.verdict]]
            for d in shown
        ]
        lines.append(format_table(
            ["metric", "baseline", "candidate", "delta", "rel", ""],
            rows, floatfmt=".4f",
            title=f"metric deltas (rtol={rtol:g}; !! = regression)"))
    else:
        lines.append(f"no metric moved beyond rtol={rtol:g}")
    lines.append("")
    lines.extend(_alert_lines("baseline alerts", obs_a))
    lines.extend(_alert_lines("candidate alerts", obs_b))
    regressed = any(d.verdict == "regression" and d.metric not in ignored
                    for d in deltas)
    lines.append("")
    lines.append("verdict: "
                 + ("REGRESSION" if regressed else "no regressions"))
    return "\n".join(lines), regressed


def run_compare(baseline: str | Path, candidate: str | Path, *,
                rtol: float = 0.05, show_unchanged: bool = False,
                ignore: tuple[str, ...] = (), stream=None) -> int:
    """CLI driver; exit code 1 on regression."""
    stream = stream if stream is not None else sys.stdout
    for path in (baseline, candidate):
        if not Path(path).exists():
            print(f"error: no such trace file: {path}", file=stream)
            return 2
    text, regressed = render_comparison(
        baseline, candidate, rtol=rtol, show_unchanged=show_unchanged,
        ignore=ignore)
    print(text, file=stream)
    return 1 if regressed else 0
