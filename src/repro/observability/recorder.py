"""Time-series recorder: event stream -> bounded rolling aggregates.

The :class:`TimeSeriesRecorder` is the observatory's memory.  It consumes
the telemetry event stream (live off the bus, or replayed from JSONL) and
maintains, in bounded space:

- fleet-wide :class:`~repro.observability.series.RollingWindow` rings of
  the burn-relevant per-interval counts (capacity violations, migrations,
  powered-on PMs, overloaded PMs) — what the SLO engine's multi-window
  burn rates are computed over;
- :class:`~repro.observability.series.TieredSeries` chart series
  (mean utilization, observed vs expected ON-fraction, fleet size,
  migration and overload counts) — what the dashboard plots;
- per-PM state: recent violation windows, presence, last utilization and
  headroom — what the "worst offenders" panel ranks.

Per-interval :class:`~repro.telemetry.events.IntervalSnapshot` events are
the clock: point events (violations, migrations) arriving for interval
``t`` are buffered until the snapshot for ``t`` lands, then folded into
the windows as one finalized tick.  This makes live and replayed ingestion
produce identical recorder state — events within an interval always
precede its snapshot in the stream, in both modes.
"""

from __future__ import annotations

from collections import defaultdict

from repro.observability.series import RollingWindow, TieredSeries
from repro.telemetry.events import (
    CapacityViolation,
    IntervalSnapshot,
    MigrationCompleted,
    PMCrashed,
    PMRepaired,
    ServiceSnapshot,
    ServingSnapshot,
    TelemetryEvent,
)

__all__ = ["PMState", "TimeSeriesRecorder"]

#: burn metrics :meth:`TimeSeriesRecorder.burn` understands
BURN_METRICS = ("cvr", "migration_churn", "latency_sla", "request_loss",
                "shed_rate", "wal_lag")


class PMState:
    """Recent history of one PM, bounded by the recorder's window size."""

    __slots__ = ("pm_id", "violations", "utilization", "load", "capacity",
                 "on_vms", "hosted", "alive", "last_seen")

    def __init__(self, pm_id: int, window: int):
        self.pm_id = pm_id
        #: 1.0 for each recent interval the PM violated capacity
        self.violations = RollingWindow(window)
        self.utilization = 0.0
        self.load = 0.0
        self.capacity = 0.0
        self.on_vms = 0
        self.hosted = 0
        self.alive = True
        self.last_seen = -1

    @property
    def headroom(self) -> float:
        """Spare capacity this interval (negative when overloaded)."""
        return self.capacity - self.load

    @property
    def violation_rate(self) -> float:
        """Fraction of recent observed intervals in violation."""
        return self.violations.mean


class TimeSeriesRecorder:
    """Rolling-window aggregates over the telemetry event stream.

    Parameters
    ----------
    window:
        Size of the fleet/per-PM rolling windows, in intervals.  Must be at
        least as long as the slowest SLO burn window evaluated against this
        recorder.
    chart_points:
        Raw head size of each chart :class:`TieredSeries`.
    """

    def __init__(self, window: int = 240, *, chart_points: int = 240):
        self.window = window
        # --- fleet rolling windows (one sample per finalized interval) ---
        #: count of PMs in capacity violation each interval
        self.violated = RollingWindow(window)
        #: count of powered-on PMs each interval
        self.on_pms = RollingWindow(window)
        #: migrations completed each interval
        self.migrations = RollingWindow(window)
        #: PMs whose load exceeded capacity per the snapshot
        self.overloaded = RollingWindow(window)
        # --- request-level serving windows (all-zero until a
        #     ServingSnapshot ever arrives; see serving_seen) ---
        #: requests arriving each interval
        self.req_arrivals = RollingWindow(window)
        #: requests completed each interval
        self.req_completions = RollingWindow(window)
        #: completions slower than the SLA threshold each interval
        self.req_slow = RollingWindow(window)
        #: requests lost each interval (queue-full + tier-reject + DLQ)
        self.req_lost = RollingWindow(window)
        #: whether any serving telemetry has been ingested
        self.serving_seen = False
        # --- placement-service windows (standalone mode: ServiceSnapshot
        #     events are their own interval clock, since a long-running
        #     service has no simulator driving IntervalSnapshots; do not
        #     mix the two planes into one recorder) ---
        #: admission requests decided each service interval
        self.svc_requests = RollingWindow(window)
        #: requests shed each service interval
        self.svc_shed = RollingWindow(window)
        #: WAL records past the last compaction, per interval (a gauge)
        self.svc_wal_lag = RollingWindow(window)
        #: whether any placement-service telemetry has been ingested
        self.service_seen = False
        self.last_service: ServiceSnapshot | None = None
        # --- chart series ---
        self.charts: dict[str, TieredSeries] = {
            name: TieredSeries(raw=chart_points)
            for name in ("utilization", "on_fraction", "on_fraction_expected",
                         "pms_on", "migrations", "overloaded", "violations",
                         "latency_p50", "latency_p99", "loss_rate", "backlog",
                         "shed_rate", "active_pms", "wal_lag")
        }
        # --- per-PM state ---
        self.pms: dict[int, PMState] = {}
        # --- event accounting ---
        self.totals: dict[str, int] = defaultdict(int)
        self.ticks = 0
        self.last_time = -1
        self.last_snapshot: IntervalSnapshot | None = None
        # point events buffered until their interval's snapshot arrives
        self._pending_violations: dict[int, list[CapacityViolation]] = \
            defaultdict(list)
        self._pending_migrations: dict[int, int] = defaultdict(int)
        self._pending_serving: dict[int, ServingSnapshot] = {}

    # ----------------------------------------------------------------- #
    # ingestion
    # ----------------------------------------------------------------- #
    def on_event(self, event: TelemetryEvent) -> None:
        """Ingest one telemetry event (bus callback / replay loop body)."""
        self.totals[event.kind] += 1
        if isinstance(event, IntervalSnapshot):
            self._finalize(event)
        elif isinstance(event, CapacityViolation):
            self._pending_violations[event.time].append(event)
        elif isinstance(event, MigrationCompleted):
            self._pending_migrations[event.time] += 1
        elif isinstance(event, ServingSnapshot):
            self._pending_serving[event.time] = event
        elif isinstance(event, ServiceSnapshot):
            self._finalize_service(event)
        elif isinstance(event, PMCrashed):
            state = self._pm(event.pm_id)
            state.alive = False
        elif isinstance(event, PMRepaired):
            state = self._pm(event.pm_id)
            state.alive = True

    def _pm(self, pm_id: int) -> PMState:
        state = self.pms.get(pm_id)
        if state is None:
            state = self.pms[pm_id] = PMState(pm_id, self.window)
        return state

    def _finalize(self, snap: IntervalSnapshot) -> None:
        """Fold one interval's buffered events + snapshot into the windows."""
        t = snap.time
        violations = self._pending_violations.pop(t, [])
        migrations = self._pending_migrations.pop(t, 0)
        # drop buffers for intervals that never got a snapshot (snapshot
        # cadence > 1): they are already counted in totals, and keeping
        # them would grow without bound
        stale = [k for k in self._pending_violations if k < t]
        for k in stale:
            del self._pending_violations[k]
        stale = [k for k in self._pending_migrations if k < t]
        for k in stale:
            del self._pending_migrations[k]
        serving = self._pending_serving.pop(t, None)
        stale = [k for k in self._pending_serving if k < t]
        for k in stale:
            del self._pending_serving[k]

        violated_pms = {v.pm_id for v in violations}
        n_on = len(snap.pm_ids)

        # fleet windows
        self.violated.push(len(violated_pms))
        self.on_pms.push(n_on)
        self.migrations.push(max(migrations, snap.migrations))
        self.overloaded.push(snap.overloaded)

        # per-PM state
        seen = set()
        total_load = 0.0
        total_cap = 0.0
        total_on = 0
        total_hosted = 0
        expected_on = 0.0
        for i, pm_id in enumerate(snap.pm_ids):
            state = self._pm(pm_id)
            state.load = snap.loads[i]
            state.capacity = snap.capacities[i]
            state.utilization = (
                snap.loads[i] / snap.capacities[i] if snap.capacities[i] else 0.0
            )
            state.on_vms = snap.on_vms[i]
            state.hosted = snap.hosted[i]
            state.last_seen = t
            state.violations.push(1.0 if pm_id in violated_pms else 0.0)
            seen.add(pm_id)
            total_load += snap.loads[i]
            total_cap += snap.capacities[i]
            total_on += snap.on_vms[i]
            total_hosted += snap.hosted[i]
            expected_on += snap.expected_on[i]

        # charts
        self.charts["utilization"].push(
            t, total_load / total_cap if total_cap else 0.0)
        self.charts["on_fraction"].push(
            t, total_on / total_hosted if total_hosted else 0.0)
        self.charts["on_fraction_expected"].push(
            t, expected_on / total_hosted if total_hosted else 0.0)
        self.charts["pms_on"].push(t, n_on)
        self.charts["migrations"].push(t, self.migrations.last)
        self.charts["overloaded"].push(t, snap.overloaded)
        self.charts["violations"].push(t, len(violated_pms))

        # serving plane: the rolling windows stay in lockstep with ticks
        # (zero-filled when the plane is disabled) so burn-window lookbacks
        # always span the same intervals as the fleet windows
        if serving is not None:
            self.serving_seen = True
            lost = serving.lost_queue + serving.lost_tier + serving.dlq
            self.req_arrivals.push(serving.arrivals)
            self.req_completions.push(serving.completions)
            self.req_slow.push(serving.slow)
            self.req_lost.push(lost)
            self.charts["latency_p50"].push(t, serving.p50)
            self.charts["latency_p99"].push(t, serving.p99)
            self.charts["loss_rate"].push(
                t, lost / serving.arrivals if serving.arrivals else 0.0)
            self.charts["backlog"].push(
                t, serving.backlog + serving.tier_backlog)
        else:
            self.req_arrivals.push(0)
            self.req_completions.push(0)
            self.req_slow.push(0)
            self.req_lost.push(0)

        self.ticks += 1
        self.last_time = t
        self.last_snapshot = snap

    def _finalize_service(self, snap: ServiceSnapshot) -> None:
        """Fold one placement-service snapshot into the windows.

        ``ServiceSnapshot`` counters are cumulative (requests/shed since
        service start), so each tick pushes the *delta* from the previous
        snapshot; ``wal_lag`` is a gauge and is pushed as-is.  Each
        snapshot advances :attr:`ticks` — in standalone service mode it is
        the only interval clock the SLO engine's gating sees.
        """
        prev = self.last_service
        d_requests = snap.requests - (prev.requests if prev else 0)
        d_shed = snap.shed - (prev.shed if prev else 0)
        self.svc_requests.push(max(d_requests, 0))
        self.svc_shed.push(max(d_shed, 0))
        self.svc_wal_lag.push(snap.wal_lag)
        t = snap.time
        self.charts["shed_rate"].push(
            t, d_shed / d_requests if d_requests > 0 else 0.0)
        self.charts["active_pms"].push(t, snap.active_pms)
        self.charts["wal_lag"].push(t, snap.wal_lag)
        self.service_seen = True
        self.last_service = snap
        self.ticks += 1
        self.last_time = t

    # ----------------------------------------------------------------- #
    # queries
    # ----------------------------------------------------------------- #
    def burn(self, metric: str, window: int, budget: float) -> float:
        """Burn rate of ``metric`` over the last ``window`` intervals.

        A burn rate of 1.0 means the metric is consuming its ``budget``
        exactly as fast as allowed; 14.0 means fourteen times too fast
        (the classic fast-window page threshold).  Returns 0.0 until any
        interval has been recorded.

        Metrics
        -------
        ``"cvr"``
            Capacity-violation ratio: violated PM-intervals over powered-on
            PM-intervals, relative to the tolerated rho (``budget``).
        ``"migration_churn"``
            Completed migrations per powered-on PM-interval, relative to
            the tolerated migration rate (``budget``).
        ``"latency_sla"``
            Fraction of completions slower than the serving SLA threshold
            — the empirical ``P(T_S > t)`` — relative to the tolerated
            tail fraction (``budget``).
        ``"request_loss"``
            Requests lost (queue-full blocking, tier back-pressure, DLQ)
            per arriving request, relative to the tolerated loss rate
            (``budget``).
        ``"shed_rate"``
            Placement-service admissions shed per decided request,
            relative to the tolerated shed fraction (``budget``).
        ``"wal_lag"``
            Mean WAL records outstanding past the last compaction,
            relative to the tolerated journal depth (``budget``) — a lag
            burning past 1.0 means checkpointing has stalled.
        """
        if metric not in BURN_METRICS:
            raise ValueError(
                f"unknown burn metric {metric!r}; known: {BURN_METRICS}")
        if budget <= 0:
            raise ValueError(f"budget must be > 0, got {budget}")
        if metric == "shed_rate":
            requests = self.svc_requests.sum_last(window)
            if requests <= 0:
                return 0.0
            return (self.svc_shed.sum_last(window) / requests) / budget
        if metric == "wal_lag":
            n = self.svc_wal_lag.count_last(window)
            if n <= 0:
                return 0.0
            return (self.svc_wal_lag.sum_last(window) / n) / budget
        if metric == "latency_sla":
            completions = self.req_completions.sum_last(window)
            if completions <= 0:
                return 0.0
            return (self.req_slow.sum_last(window) / completions) / budget
        if metric == "request_loss":
            arrivals = self.req_arrivals.sum_last(window)
            if arrivals <= 0:
                return 0.0
            return (self.req_lost.sum_last(window) / arrivals) / budget
        pm_intervals = self.on_pms.sum_last(window)
        if pm_intervals <= 0:
            return 0.0
        if metric == "cvr":
            consumed = self.violated.sum_last(window)
        else:
            consumed = self.migrations.sum_last(window)
        return (consumed / pm_intervals) / budget

    def cvr(self, window: int | None = None) -> float:
        """Observed capacity-violation ratio over the (last ``window``)."""
        window = self.window if window is None else window
        pm_intervals = self.on_pms.sum_last(window)
        if pm_intervals <= 0:
            return 0.0
        return self.violated.sum_last(window) / pm_intervals

    def worst_pms(self, n: int = 5) -> list[PMState]:
        """PMs ranked by recent violation rate, then by utilization."""
        ranked = sorted(
            self.pms.values(),
            key=lambda s: (s.violation_rate, s.utilization),
            reverse=True,
        )
        return ranked[:n]

    def loss_rate(self, window: int | None = None) -> float:
        """Observed request-loss rate over the (last ``window``)."""
        window = self.window if window is None else window
        arrivals = self.req_arrivals.sum_last(window)
        if arrivals <= 0:
            return 0.0
        return self.req_lost.sum_last(window) / arrivals

    def sla_violation_fraction(self, window: int | None = None) -> float:
        """Observed ``P(T_S > t)`` over the (last ``window``)."""
        window = self.window if window is None else window
        completions = self.req_completions.sum_last(window)
        if completions <= 0:
            return 0.0
        return self.req_slow.sum_last(window) / completions

    def fleet_summary(self) -> dict[str, float]:
        """Headline numbers for the dashboard's summary panel."""
        summary = {
            "ticks": float(self.ticks),
            "time": float(self.last_time),
            "pms_on": self.on_pms.last,
            "utilization": self.charts["utilization"].last,
            "on_fraction": self.charts["on_fraction"].last,
            "on_fraction_expected": self.charts["on_fraction_expected"].last,
            "cvr_window": self.cvr(),
            "migrations_window": self.migrations.sum,
            "violations_window": self.violated.sum,
        }
        if self.serving_seen:
            summary["latency_p50"] = self.charts["latency_p50"].last
            summary["latency_p99"] = self.charts["latency_p99"].last
            summary["loss_rate_window"] = self.loss_rate()
            summary["sla_violation_window"] = self.sla_violation_fraction()
            summary["backlog"] = self.charts["backlog"].last
        if self.service_seen and self.last_service is not None:
            snap = self.last_service
            summary["svc_requests"] = float(snap.requests)
            summary["svc_admitted"] = float(snap.admitted)
            summary["svc_shed"] = float(snap.shed)
            summary["shed_rate_window"] = self.shed_rate()
            summary["svc_active_pms"] = float(snap.active_pms)
            summary["svc_draining_pms"] = float(snap.draining_pms)
            summary["svc_retired_pms"] = float(snap.retired_pms)
            summary["svc_used_pms"] = float(snap.used_pms)
            summary["svc_hosted_vms"] = float(snap.hosted_vms)
            summary["svc_wal_lag"] = float(snap.wal_lag)
            summary["svc_staleness"] = float(snap.staleness)
        return summary

    def shed_rate(self, window: int | None = None) -> float:
        """Observed placement-service shed rate over the (last ``window``)."""
        window = self.window if window is None else window
        requests = self.svc_requests.sum_last(window)
        if requests <= 0:
            return 0.0
        return self.svc_shed.sum_last(window) / requests
