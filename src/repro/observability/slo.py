"""Declarative SLO rules and multi-window burn-rate alerting.

A rule binds a recorder burn metric (see
:meth:`repro.observability.recorder.TimeSeriesRecorder.burn`) to an error
budget and two evaluation windows, in the style of Google-SRE multi-window
multi-burn-rate alerting:

- the **fast** window catches acute budget burn quickly (e.g. "CVR budget
  rho consumed 14x faster than allowed over the last 5 intervals");
- the **slow** window guards against paging on a single noisy blip (e.g.
  "...AND 2x faster over the last 60 intervals").

An alert *fires* when both windows exceed their factors, and *resolves*
when the fast window drops back below its factor.  The engine emits typed
:class:`~repro.telemetry.events.AlertFired` /
:class:`~repro.telemetry.events.AlertResolved` events through the
telemetry bus, so alerts land in JSONL traces next to the intervals that
caused them and can drive scheduler escalation via
:class:`~repro.simulation.triggers.AlertReactiveTrigger`.

Rules are plain data: build them in code, from dicts, or load a YAML/JSON
rule file with :func:`load_rules`::

    rules:
      - name: cvr_burn
        metric: cvr
        budget: 0.01          # the paper's rho
        fast: {window: 5, factor: 14.0}
        slow: {window: 60, factor: 2.0}
        severity: page
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.observability.recorder import BURN_METRICS, TimeSeriesRecorder
from repro.telemetry.context import resolve
from repro.telemetry.events import AlertFired, AlertResolved

__all__ = [
    "BurnWindow",
    "SLORule",
    "SLOEngine",
    "ActiveAlert",
    "AlertSpan",
    "default_rules",
    "default_serving_rules",
    "default_service_rules",
    "load_rules",
]


@dataclass(frozen=True)
class BurnWindow:
    """One evaluation window: a lookback length and a burn-rate factor."""

    window: int
    factor: float

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.factor <= 0:
            raise ValueError(f"factor must be > 0, got {self.factor}")


@dataclass(frozen=True)
class SLORule:
    """A multi-window burn-rate alerting rule over one recorder metric."""

    name: str
    metric: str
    budget: float
    fast: BurnWindow
    slow: BurnWindow
    severity: str = "page"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("rule name must be non-empty")
        if self.metric not in BURN_METRICS:
            raise ValueError(
                f"rule {self.name!r}: unknown metric {self.metric!r}; "
                f"known: {BURN_METRICS}")
        if self.budget <= 0:
            raise ValueError(
                f"rule {self.name!r}: budget must be > 0, got {self.budget}")
        if self.fast.window > self.slow.window:
            raise ValueError(
                f"rule {self.name!r}: fast window ({self.fast.window}) must "
                f"not exceed slow window ({self.slow.window})")

    @classmethod
    def from_dict(cls, data: dict) -> SLORule:
        """Build a rule from its YAML/JSON dict form."""
        payload = dict(data)
        try:
            fast = payload.pop("fast")
            slow = payload.pop("slow")
        except KeyError as exc:
            raise ValueError(
                f"rule dict missing required key {exc.args[0]!r}: {data!r}"
            ) from None
        return cls(
            fast=BurnWindow(int(fast["window"]), float(fast["factor"])),
            slow=BurnWindow(int(slow["window"]), float(slow["factor"])),
            **payload,
        )

    def to_dict(self) -> dict:
        """Inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "metric": self.metric,
            "budget": self.budget,
            "fast": {"window": self.fast.window, "factor": self.fast.factor},
            "slow": {"window": self.slow.window, "factor": self.slow.factor},
            "severity": self.severity,
        }


def default_rules(rho: float = 0.01) -> list[SLORule]:
    """The stock rule set: CVR budget burn plus a migration-storm guard."""
    return [
        SLORule(
            name="cvr_burn",
            metric="cvr",
            budget=rho,
            fast=BurnWindow(5, 14.0),
            slow=BurnWindow(60, 2.0),
            severity="page",
        ),
        SLORule(
            name="migration_storm",
            metric="migration_churn",
            budget=0.05,  # tolerated migrations per PM-interval
            fast=BurnWindow(10, 10.0),
            slow=BurnWindow(60, 2.0),
            severity="ticket",
        ),
    ]


def default_serving_rules(tail_budget: float = 0.01,
                          loss_budget: float = 0.01) -> list[SLORule]:
    """Request-level rules for scenarios with the serving plane enabled.

    ``p99_latency`` alerts on the empirical tail ``P(T_S > t)`` exceeding
    ``tail_budget`` — with the default 1% budget this *is* the p99 rule:
    "p99 latency stays at or below the SLA threshold t" is exactly
    "at most 1% of completions are slower than t".  ``request_loss``
    guards the loss budget (queue blocking + tier back-pressure + DLQ).
    """
    return [
        SLORule(
            name="p99_latency",
            metric="latency_sla",
            budget=tail_budget,
            fast=BurnWindow(5, 10.0),
            slow=BurnWindow(60, 2.0),
            severity="page",
        ),
        SLORule(
            name="request_loss",
            metric="request_loss",
            budget=loss_budget,
            fast=BurnWindow(5, 10.0),
            slow=BurnWindow(60, 2.0),
            severity="page",
        ),
    ]


def default_service_rules(shed_budget: float = 0.05,
                          wal_lag_budget: float = 256.0) -> list[SLORule]:
    """Burn rules for the placement service (standalone ``repro serve``).

    ``admission_shed`` pages when requests are being shed faster than the
    tolerated ``shed_budget`` fraction — sustained overload, a stuck
    solver, or an under-provisioned pool.  ``wal_lag`` tickets when the
    journal outgrows ``wal_lag_budget`` records past the last compaction,
    meaning checkpointing has stalled and recovery time is growing.
    """
    return [
        SLORule(
            name="admission_shed",
            metric="shed_rate",
            budget=shed_budget,
            fast=BurnWindow(5, 10.0),
            slow=BurnWindow(60, 2.0),
            severity="page",
        ),
        SLORule(
            name="wal_lag",
            metric="wal_lag",
            budget=wal_lag_budget,
            fast=BurnWindow(5, 2.0),
            slow=BurnWindow(60, 1.0),
            severity="ticket",
        ),
    ]


def load_rules(path: str | Path) -> list[SLORule]:
    """Load rules from a YAML or JSON file.

    The file holds either a top-level list of rule dicts or a mapping with
    a ``rules:`` key.  YAML needs the interpreter to ship ``pyyaml``; JSON
    always works (YAML is a superset, so ``.yaml`` files containing JSON
    parse either way).
    """
    path = Path(path)
    text = path.read_text()
    data = None
    if path.suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:  # pragma: no cover - yaml ships in the image
            yaml = None
        if yaml is not None:
            data = yaml.safe_load(text)
    if data is None:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"could not parse SLO rules from {path}: {exc}") from exc
    if isinstance(data, dict):
        data = data.get("rules", [])
    if not isinstance(data, list):
        raise ValueError(
            f"SLO rule file {path} must hold a list of rules or a mapping "
            f"with a 'rules' key, got {type(data).__name__}")
    return [SLORule.from_dict(d) for d in data]


@dataclass
class ActiveAlert:
    """Book-keeping for one currently-firing rule."""

    rule: SLORule
    fired_at: int
    burn_fast: float
    burn_slow: float


@dataclass
class AlertSpan:
    """A closed or open alert interval, for the dashboard timeline."""

    rule: str
    severity: str
    fired_at: int
    resolved_at: int | None = None
    peak_burn_fast: float = 0.0

    @property
    def open(self) -> bool:
        return self.resolved_at is None


class SLOEngine:
    """Evaluates burn-rate rules against a recorder, once per interval.

    Parameters
    ----------
    recorder:
        The :class:`TimeSeriesRecorder` whose windows supply burn rates.
        Its ``window`` must cover the slowest rule window.
    rules:
        Rules to evaluate; defaults to :func:`default_rules`.
    telemetry:
        Telemetry facade to emit alert events through; resolved from the
        ambient context when omitted.  Pass ``telemetry=False``-y only via
        ``emit=False``.
    emit:
        When False the engine never touches the bus (replay mode, where
        recorded alert events already exist in the stream).
    """

    def __init__(self, recorder: TimeSeriesRecorder,
                 rules: list[SLORule] | None = None, *,
                 telemetry=None, emit: bool = True):
        self.recorder = recorder
        self.rules = list(rules) if rules is not None else default_rules()
        for rule in self.rules:
            if rule.slow.window > recorder.window:
                raise ValueError(
                    f"rule {rule.name!r} slow window ({rule.slow.window}) "
                    f"exceeds recorder window ({recorder.window})")
        names = [r.name for r in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {sorted(names)}")
        self._telemetry = telemetry
        self._emit = emit
        #: rule name -> ActiveAlert for currently-firing rules
        self.active: dict[str, ActiveAlert] = {}
        #: chronological fired/resolved spans (open spans have resolved_at
        #: None until resolution)
        self.timeline: list[AlertSpan] = []
        self.fired_total = 0
        self.resolved_total = 0

    def _open_span(self, rule_name: str) -> AlertSpan | None:
        """The still-open timeline span for a rule, newest first."""
        for span in reversed(self.timeline):
            if span.rule == rule_name and span.open:
                return span
        return None

    def has_active_alerts(self, severity: str | None = None) -> bool:
        """Whether any rule (of the given severity) is currently firing."""
        if severity is None:
            return bool(self.active)
        return any(a.rule.severity == severity for a in self.active.values())

    def evaluate(self, time: int) -> list[AlertFired | AlertResolved]:
        """Evaluate every rule at interval ``time``; emit state changes."""
        transitions: list[AlertFired | AlertResolved] = []
        for rule in self.rules:
            # no verdicts until the fast window has real data: burn rates
            # over near-empty windows are wild
            if self.recorder.ticks < rule.fast.window:
                continue
            burn_fast = self.recorder.burn(
                rule.metric, rule.fast.window, rule.budget)
            burn_slow = self.recorder.burn(
                rule.metric, rule.slow.window, rule.budget)
            current = self.active.get(rule.name)
            if current is None:
                if (burn_fast >= rule.fast.factor
                        and burn_slow >= rule.slow.factor):
                    self.active[rule.name] = ActiveAlert(
                        rule=rule, fired_at=time,
                        burn_fast=burn_fast, burn_slow=burn_slow)
                    self.timeline.append(AlertSpan(
                        rule=rule.name, severity=rule.severity,
                        fired_at=time, peak_burn_fast=burn_fast))
                    self.fired_total += 1
                    transitions.append(AlertFired(
                        time=time, rule=rule.name, metric=rule.metric,
                        severity=rule.severity, burn_fast=burn_fast,
                        burn_slow=burn_slow, budget=rule.budget))
            else:
                current.burn_fast = burn_fast
                current.burn_slow = burn_slow
                span = self._open_span(rule.name)
                if span is not None and burn_fast > span.peak_burn_fast:
                    span.peak_burn_fast = burn_fast
                if burn_fast < rule.fast.factor:
                    del self.active[rule.name]
                    if span is not None:
                        span.resolved_at = time
                    self.resolved_total += 1
                    transitions.append(AlertResolved(
                        time=time, rule=rule.name,
                        active_intervals=time - current.fired_at))
        if self._emit and transitions:
            tel = self._telemetry if self._telemetry is not None else resolve()
            for event in transitions:
                tel.events.emit(event)
        return transitions
