"""The run observatory front-end: live terminal panels and HTML export.

Three entry points, all reachable via ``python -m repro dashboard``:

- **live** (default / ``--follow``): run a scenario with an attached
  :class:`~repro.observability.observatory.Observatory` and repaint the
  terminal panels as the simulation advances;
- ``--once``: run to completion silently, print the final frame;
- ``--from-jsonl F``: no simulator at all — rebuild the observatory from a
  recorded trace and render it.

``--html F`` additionally writes a self-contained HTML page (inline CSS,
``<pre>`` panels, zero external assets) so a CI job can archive the run's
observability state as an artifact.

The experiment argument selects a *recipe* — a small scenario shaped like
the named experiment (same pattern family, placer and rho), sized to
render in seconds.  ``--overcommit`` shrinks PM capacity to force budget
burn (SLO demo); ``--inject-drift`` perturbs ``p_on`` mid-run (drift demo).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from pathlib import Path

from repro.observability.observatory import Observatory
from repro.observability.perf import PHASE_ORDER, PerfSnapshot
from repro.utils.tables import format_table
from repro.viz.ascii_charts import sanitize_series, sparkline

__all__ = [
    "EXPERIMENT_ALIASES",
    "RECIPES",
    "build_scenario",
    "render_frame",
    "render_html",
    "run_dashboard",
]

_PANEL_WIDTH = 64


@dataclass(frozen=True)
class Recipe:
    """A dashboard-sized scenario shaped like one of the experiments."""

    pattern: str
    n_vms: int
    rho: float = 0.01
    d: int = 16
    failures: bool = False
    migration_failure_probability: float = 0.0
    description: str = ""


#: canonical experiment id -> scenario recipe
RECIPES: dict[str, Recipe] = {
    "fig5": Recipe("equal", 64, description="packing fleet, calm runtime"),
    "fig6": Recipe("equal", 64, description="CVR-focused runtime"),
    "fig7": Recipe("large", 96, description="larger fleet (cost study shape)"),
    "fig8": Recipe("small", 48, description="web-server-like bursts"),
    "fig9": Recipe("equal", 64, failures=True,
                   migration_failure_probability=0.05,
                   description="migration runtime with faults"),
    "fig10": Recipe("equal", 64, description="migration timeline shape"),
    "table1": Recipe("equal", 48, description="pattern specification fleet"),
}

#: convenience aliases (the experiment modules' long names)
EXPERIMENT_ALIASES: dict[str, str] = {
    "fig5_packing": "fig5",
    "fig6_cvr": "fig6",
    "fig7_cost": "fig7",
    "fig8_trace": "fig8",
    "fig9_migration": "fig9",
    "fig10_timeline": "fig10",
}


def resolve_experiment(name: str) -> str:
    """Map an experiment name or alias to its recipe key."""
    key = EXPERIMENT_ALIASES.get(name, name)
    if key not in RECIPES:
        known = sorted({*RECIPES, *EXPERIMENT_ALIASES})
        raise ValueError(f"unknown experiment {name!r}; known: {known}")
    return key


class _OvercommitPlacer:
    """Placer shim that consolidates against inflated PM capacity.

    The inner placer packs as if every PM were ``factor`` times larger
    than it really is; the runtime then squeezes that placement onto the
    true capacities.  This is exactly the failure mode the SLO engine
    exists for — the fleet consolidated against a model more generous
    than reality — so it is the dashboard's ``--overcommit`` demo knob:
    :func:`build_scenario` hands the runtime capacities divided by the
    factor and this shim restores the placer's (nominal) view, so the
    packing is identical to the nominal run while reality is tighter.
    """

    def __init__(self, inner, factor: float):
        self.inner = inner
        self.factor = factor
        self.name = f"{inner.name}/oc{factor:g}"

    def place(self, vms, pms):
        from repro.core.types import PMSpec

        inflated = [PMSpec(pm.capacity * self.factor) for pm in pms]
        return self.inner.place(vms, inflated)

    def place_and_report(self, vms, pms, *, telemetry=None):
        from repro.core.types import PMSpec

        inflated = [PMSpec(pm.capacity * self.factor) for pm in pms]
        return self.inner.place_and_report(vms, inflated,
                                           telemetry=telemetry)


def build_scenario(experiment: str, *, observatory: Observatory,
                   telemetry=None, overcommit: float = 1.0,
                   seed=2013):
    """Build the observed scenario for an experiment recipe.

    Returns the configured :class:`~repro.simulation.scenario.Scenario`.
    ``overcommit > 1`` makes the placer consolidate against PMs that
    factor larger than the runtime provides (see :class:`_OvercommitPlacer`)
    — how a demo run is pushed over its CVR budget.
    """
    from repro.core.queuing_ffd import QueuingFFD
    from repro.core.types import PMSpec
    from repro.simulation.scenario import Scenario
    from repro.simulation.triggers import SlidingWindowCVRTrigger
    from repro.workload.patterns import generate_pattern_instance

    key = resolve_experiment(experiment)
    recipe = RECIPES[key]
    if overcommit < 1.0:
        raise ValueError(f"overcommit must be >= 1, got {overcommit}")
    vms, pms = generate_pattern_instance(recipe.pattern, recipe.n_vms,
                                         seed=seed)
    placer = QueuingFFD(rho=recipe.rho, d=recipe.d)
    if overcommit > 1.0:
        # Runtime reality shrinks while the placer still packs the nominal
        # view — and the PMs the nominal packing freed are decommissioned
        # (plus one spare), so the scheduler cannot simply spread the
        # overload back out.  This is the consolidated-then-squeezed fleet
        # whose budget burn the SLO engine exists to catch.
        n_keep = min(len(pms), placer.place(vms, pms).n_used_pms + 1)
        pms = [PMSpec(pm.capacity / overcommit) for pm in pms[:n_keep]]
        placer = _OvercommitPlacer(placer, overcommit)
    trigger = SlidingWindowCVRTrigger(len(pms), rho=recipe.rho)
    return Scenario(
        vms, pms,
        placer=placer,
        trigger=trigger,
        failures=recipe.failures,
        migration_failure_probability=recipe.migration_failure_probability,
        telemetry=telemetry,
        observatory=observatory,
        start_stationary=True,
    )


# --------------------------------------------------------------------- #
# frame rendering
# --------------------------------------------------------------------- #
def _rule(char: str = "─") -> str:
    return char * _PANEL_WIDTH


def _spark_row(label: str, values, fmt: str = ".3f", width: int = 40) -> str:
    clean = sanitize_series(values)[-width:]
    if not clean:
        return f"{label:<14s} (no data)"
    return f"{label:<14s} {sparkline(clean)} {format(clean[-1], fmt)}"


def _perf_lines(perf) -> list[str]:
    """The PERF panel: phase breakdown bars plus the throughput gauge."""
    report = perf.report
    lines = [
        f"PERF: {perf.vm_intervals_per_second:,.0f} vm-intervals/s   "
        f"tick mean "
        f"{report.tick_seconds * 1e3 / max(report.tick_count, 1):.2f} ms "
        f"({report.tick_count} ticks)"
    ]
    fractions = report.phase_fraction
    for phase in PHASE_ORDER:
        frac = fractions.get(phase, 0.0)
        seconds = report.phase_seconds.get(phase, 0.0)
        if seconds <= 0.0 and frac <= 0.0:
            continue
        bar = "█" * max(1, round(frac * 24)) if frac > 0 else ""
        lines.append(f"  {phase:<16s} {bar:<24s} {frac:6.1%} "
                     f"{seconds * 1e3:9.1f} ms")
    return lines


def render_frame(obs: Observatory, *, title: str = "run observatory",
                 perf=None) -> str:
    """Render the observatory's current state as terminal panels.

    ``perf`` (an optional :class:`~repro.observability.perf.PerfSnapshot`)
    adds the PERF panel: per-phase share of tick time plus the
    vm-intervals/s throughput gauge.
    """
    rec = obs.recorder
    summary = obs.summary()
    lines: list[str] = []
    lines.append(_rule("═"))
    lines.append(f"{title}  ·  interval {rec.last_time}  ·  "
                 f"{rec.ticks} recorded")
    lines.append(_rule("═"))

    # headline numbers
    lines.append(
        f"PMs on {summary['pms_on']:.0f}   "
        f"util {summary['utilization']:.3f}   "
        f"CVR(win) {summary['cvr_window']:.4f}   "
        f"migrations(win) {summary['migrations_window']:.0f}")
    lines.append(
        f"ON-fraction {summary['on_fraction']:.3f} observed / "
        f"{summary['on_fraction_expected']:.3f} assumed   "
        f"drifted PMs {summary['drifted_pms']:.0f}")
    lines.append(_rule())

    # chart panels
    for label, chart, fmt in (
        ("utilization", "utilization", ".3f"),
        ("ON observed", "on_fraction", ".3f"),
        ("ON assumed", "on_fraction_expected", ".3f"),
        ("PMs on", "pms_on", ".0f"),
        ("violations", "violations", ".0f"),
        ("migrations", "migrations", ".0f"),
    ):
        lines.append(_spark_row(label, rec.charts[chart].series()[1], fmt))
    lines.append(_rule())

    # request-level serving (only when the serving plane emitted data)
    if rec.serving_seen:
        lines.append(
            f"SERVING: p50 {summary['latency_p50']:.0f} / "
            f"p99 {summary['latency_p99']:.0f} intervals   "
            f"loss(win) {summary['loss_rate_window']:.4f}   "
            f"P(T>t)(win) {summary['sla_violation_window']:.4f}   "
            f"backlog {summary['backlog']:.0f}")
        for label, chart, fmt in (
            ("latency p50", "latency_p50", ".0f"),
            ("latency p99", "latency_p99", ".0f"),
            ("loss rate", "loss_rate", ".4f"),
            ("backlog", "backlog", ".0f"),
        ):
            lines.append(_spark_row(label, rec.charts[chart].series()[1], fmt))
        lines.append(_rule())

    # placement service (only when `repro serve` emitted snapshots)
    if rec.service_seen:
        lines.append(
            f"SERVICE: requests {summary['svc_requests']:.0f}   "
            f"shed(win) {summary['shed_rate_window']:.4f}   "
            f"pool {summary['svc_active_pms']:.0f}A/"
            f"{summary['svc_draining_pms']:.0f}D/"
            f"{summary['svc_retired_pms']:.0f}R   "
            f"wal lag {summary['svc_wal_lag']:.0f}   "
            f"staleness {summary['svc_staleness']:.0f}")
        for label, chart, fmt in (
            ("shed rate", "shed_rate", ".4f"),
            ("active PMs", "active_pms", ".0f"),
            ("WAL lag", "wal_lag", ".0f"),
        ):
            lines.append(_spark_row(label, rec.charts[chart].series()[1], fmt))
        lines.append(_rule())

    # alerts
    if obs.slo.active:
        lines.append("ALERTS FIRING:")
        for name, alert in sorted(obs.slo.active.items()):
            lines.append(
                f"  [{alert.rule.severity.upper():6s}] {name}: "
                f"burn {alert.burn_fast:.1f}x fast / "
                f"{alert.burn_slow:.1f}x slow "
                f"(since interval {alert.fired_at})")
    else:
        lines.append("alerts: none firing")
    closed = [s for s in obs.slo.timeline if not s.open]
    if closed:
        lines.append(f"alert history: {len(closed)} resolved "
                     f"({obs.slo.fired_total} fired total)")
        for span in closed[-3:]:
            lines.append(
                f"  {span.rule} [{span.severity}] "
                f"{span.fired_at}..{span.resolved_at} "
                f"peak burn {span.peak_burn_fast:.1f}x")
    if obs.recorded_alerts:
        lines.append(
            f"recorded in trace: "
            f"{sum(1 for e in obs.recorded_alerts if e.kind == 'alert_fired')}"
            f" fired / "
            f"{sum(1 for e in obs.recorded_alerts if e.kind == 'alert_resolved')}"
            f" resolved / "
            f"{sum(1 for e in obs.recorded_alerts if e.kind == 'drift_detected')}"
            f" drift")
    lines.append(_rule())

    # drift
    flagged = obs.drift.flagged_pms
    if flagged:
        lines.append(f"MODEL DRIFT on PMs {flagged}:")
        for det in obs.drift.detections[-4:]:
            lines.append(
                f"  PM {det.pm_id}: chi2 {det.statistic:.1f} > "
                f"{det.threshold:.1f}, ON {det.observed_on_fraction:.3f} "
                f"vs assumed {det.expected_on_fraction:.3f} "
                f"@ interval {det.time}")
    else:
        lines.append("model drift: none detected")
    lines.append(_rule())

    # perf (phase attribution + throughput)
    if perf is not None and perf.report.tick_count:
        lines.extend(_perf_lines(perf))
        lines.append(_rule())

    # autopilot control loop
    pilot = obs.autopilot_events
    if pilot:
        committed = int(summary.get("replans_committed", 0))
        rolled = int(summary.get("replans_rolled_back", 0))
        refits = sum(1 for e in pilot if e.kind == "refit_completed")
        rejected = sum(1 for e in pilot if e.kind == "refit_rejected")
        lines.append(
            f"AUTOPILOT: {refits} refits ({rejected} rejected), "
            f"{committed} replans committed, {rolled} rolled back")
        for e in pilot[-4:]:
            if e.kind == "refit_completed":
                lines.append(
                    f"  t={e.time}: refit [{e.cause}] {e.fingerprint} "
                    f"({e.converged} HMM / {e.fallback} fallback)")
            elif e.kind == "refit_rejected":
                lines.append(
                    f"  t={e.time}: refit {e.fingerprint} rejected "
                    f"({e.reason})")
            elif e.kind == "replan_started":
                lines.append(
                    f"  t={e.time}: replan [{e.cause}] budget {e.budget}, "
                    f"baseline CVR {e.baseline_cvr:.4f}, verdict at "
                    f"t={e.deadline}")
            elif e.kind == "replan_committed":
                lines.append(
                    f"  t={e.time}: COMMIT {e.fingerprint} "
                    f"CVR {e.baseline_cvr:.4f} -> {e.post_cvr:.4f}")
            elif e.kind == "replan_rolled_back":
                lines.append(
                    f"  t={e.time}: ROLLBACK {e.fingerprint} "
                    f"CVR {e.baseline_cvr:.4f} -> {e.post_cvr:.4f}, "
                    f"parity {'ok' if e.parity else 'BROKEN'}")
        lines.append(_rule())

    # decision provenance
    decisions = obs.decision_events
    if decisions:
        by_kind = {"placement_decided": 0, "migration_decided": 0,
                   "reconsolidation_decided": 0, "replan_decided": 0}
        for e in decisions:
            by_kind[e.kind] = by_kind.get(e.kind, 0) + 1
        dropped = int(summary.get("decisions_dropped_total", 0))
        lines.append(
            f"DECISIONS: {len(decisions)} recorded "
            f"({by_kind['placement_decided']} placement, "
            f"{by_kind['migration_decided']} migration, "
            f"{by_kind['reconsolidation_decided']} reconsolidation, "
            f"{by_kind['replan_decided']} replan; "
            f"{dropped} candidate rows truncated)")
        for e in decisions[-4:]:
            if e.kind == "placement_decided":
                lines.append(
                    f"  t={e.time}: place vm {e.vm_id} -> pm {e.chosen_pm} "
                    f"[{e.placer}] {len(e.cand_pms)} candidates")
            elif e.kind == "migration_decided":
                where = (f"pm {e.chosen_pm}" if e.chosen_pm >= 0
                         else "NO TARGET")
                lines.append(
                    f"  t={e.time}: migrate vm {e.vm_id} off pm "
                    f"{e.source_pm} -> {where} [{e.cause}]")
            elif e.kind == "reconsolidation_decided":
                lines.append(
                    f"  t={e.time}: reconsolidation [{e.cause}] "
                    f"{e.executed_moves}/{e.planned_moves} moves")
            elif e.kind == "replan_decided":
                lines.append(
                    f"  t={e.time}: replan [{e.cause}] "
                    f"{e.drift_detections} drift, streak {e.alert_streak}")
        lines.append("  (full audit trail: python -m repro explain <jsonl>)")
        lines.append(_rule())

    # worst offenders
    worst = rec.worst_pms(5)
    if worst:
        rows = [
            [s.pm_id, s.violation_rate, s.utilization, s.headroom,
             s.on_vms, s.hosted]
            for s in worst
        ]
        lines.append(format_table(
            ["PM", "viol_rate", "util", "headroom", "on", "hosted"],
            rows, floatfmt=".3f", title="worst offenders"))
    if obs.skipped_lines:
        lines.append(f"[{obs.skipped_lines} malformed trace lines skipped]")
    return "\n".join(lines)


_HTML_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
  body {{ background: #10141a; color: #d8dee9; font-family: ui-monospace,
         'SF Mono', Menlo, Consolas, monospace; margin: 2rem; }}
  h1 {{ font-size: 1.1rem; color: #88c0d0; }}
  pre {{ background: #161b22; border: 1px solid #30363d; border-radius: 6px;
        padding: 1rem; overflow-x: auto; line-height: 1.35; }}
  .meta {{ color: #7b8494; font-size: 0.85rem; }}
</style>
</head>
<body>
<h1>{title}</h1>
<p class="meta">interval {time} · {ticks} intervals recorded ·
{fired} alerts fired · {drifted} PMs drifted</p>
<pre>{frame}</pre>
</body>
</html>
"""


def _escape_html(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def render_html(obs: Observatory, *, title: str = "run observatory") -> str:
    """Self-contained HTML page around the terminal frame (CI artifact)."""
    escaped = _escape_html(render_frame(obs, title=title))
    return _HTML_TEMPLATE.format(
        title=_escape_html(title),
        time=obs.recorder.last_time,
        ticks=obs.recorder.ticks,
        fired=obs.slo.fired_total,
        drifted=len(obs.drift.flagged_pms),
        frame=escaped,
    )


# --------------------------------------------------------------------- #
# drivers
# --------------------------------------------------------------------- #
def run_dashboard(experiment: str, *, n_intervals: int = 240,
                  seed=2013, refresh: int = 10, once: bool = False,
                  follow: bool = False, from_jsonl: str | Path | None = None,
                  html: str | Path | None = None,
                  jsonl_out: str | Path | None = None,
                  overcommit: float = 1.0,
                  inject_drift: float | None = None, drift_at: int = 0,
                  rules_path: str | Path | None = None,
                  rho: float = 0.01,
                  stream=None) -> int:
    """Drive the dashboard in one of its three modes; returns exit code."""
    stream = stream if stream is not None else sys.stdout
    rules = None
    if rules_path is not None:
        from repro.observability.slo import load_rules
        rules = load_rules(rules_path)

    if from_jsonl is not None:
        obs = Observatory.from_jsonl(from_jsonl, rules=rules, rho=rho)
        title = f"replay: {from_jsonl}"
        print(render_frame(obs, title=title), file=stream)
        if html is not None:
            Path(html).write_text(render_html(obs, title=title) + "\n")
            print(f"[HTML written to {html}]", file=stream)
        return 0

    from repro.telemetry import JSONLSink, Telemetry

    obs = Observatory(rules=rules, rho=rho)
    sinks = [JSONLSink(jsonl_out)] if jsonl_out is not None else []
    tel = Telemetry(*sinks)
    scenario = build_scenario(experiment, observatory=obs, telemetry=tel,
                              overcommit=overcommit, seed=seed)
    title = f"live: {resolve_experiment(experiment)}"
    live = follow or not once
    is_tty = bool(getattr(stream, "isatty", lambda: False)())
    n_vms = len(scenario.vms)
    t0 = time.perf_counter()

    def perf_snapshot() -> PerfSnapshot | None:
        if tel.profiler.empty:
            return None
        return PerfSnapshot.capture(
            tel.profiler, n_vms=n_vms,
            elapsed_seconds=time.perf_counter() - t0)

    def on_tick(t: int) -> None:
        if inject_drift is not None and t == drift_at:
            dc = scenario.datacenter
            dc.set_switch_probabilities(list(range(dc.n_vms)),
                                        p_on=inject_drift)
        if live and t % refresh == 0:
            if is_tty:
                stream.write("\x1b[2J\x1b[H")
            print(render_frame(obs, title=f"{title} · t={t}",
                               perf=perf_snapshot()), file=stream)
            stream.flush()

    try:
        scenario.run(n_intervals, seed=seed, on_tick=on_tick)
    finally:
        tel.close()
    print(render_frame(obs, title=f"{title} (final)",
                       perf=perf_snapshot()), file=stream)
    if html is not None:
        Path(html).write_text(render_html(obs, title=title) + "\n")
        print(f"[HTML written to {html}]", file=stream)
    if jsonl_out is not None:
        print(f"[{tel.events.emitted} events written to {jsonl_out}]",
              file=stream)
    return 0
