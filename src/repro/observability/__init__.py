"""Run observatory: rolling telemetry, SLO burn-rate alerts, model drift.

The simulator's telemetry bus (:mod:`repro.telemetry`) records what
happened; this package watches it *while it happens* — and answers the
operator questions the paper's consolidation story raises in production:

- :mod:`repro.observability.series` — bounded-memory rolling windows and
  downsampled retention tiers;
- :mod:`repro.observability.recorder` — per-PM and fleet-wide aggregates
  maintained from the event stream (live or replayed);
- :mod:`repro.observability.slo` — declarative multi-window burn-rate
  rules over the CVR budget rho and migration churn, emitting typed
  AlertFired / AlertResolved events;
- :mod:`repro.observability.drift` — sequential chi-square detection of
  PMs whose ON-fractions depart from the Geom/Geom/K law MapCal assumed;
- :mod:`repro.observability.observatory` — the bundle, attachable to a
  live run or rebuilt from a JSONL trace;
- :mod:`repro.observability.dashboard` — terminal panels + HTML export
  (``python -m repro dashboard``);
- :mod:`repro.observability.compare` — run-to-run regression diff
  (``python -m repro compare``);
- :mod:`repro.observability.provenance` — decision provenance: the query
  layer over the ``*Decided`` event vocabulary and the byte-deterministic
  "why here, why not there" renderer (``python -m repro explain``);
- :mod:`repro.observability.perf` — the performance observatory: phase
  attribution of the span tree, scaling probes (``python -m repro perf``),
  Chrome-trace export and committed perf budgets for CI gating.
"""

from repro.observability.dashboard import (
    build_scenario,
    render_frame,
    render_html,
    run_dashboard,
)
from repro.observability.drift import DriftDetector, PMDriftState
from repro.observability.observatory import Observatory
from repro.observability.perf import (
    MemoryProbe,
    PerfBudget,
    PerfSnapshot,
    PhaseAttributor,
    PhaseReport,
    chrome_trace_to_spans,
    run_perf_sweep,
    spans_to_chrome_trace,
)
from repro.observability.provenance import (
    REASON_TEXT,
    ProvenanceIndex,
    render_explanation,
)
from repro.observability.recorder import PMState, TimeSeriesRecorder
from repro.observability.series import RollingWindow, TieredSeries
from repro.observability.slo import (
    ActiveAlert,
    AlertSpan,
    BurnWindow,
    SLOEngine,
    SLORule,
    default_rules,
    default_service_rules,
    default_serving_rules,
    load_rules,
)

__all__ = [
    "RollingWindow",
    "TieredSeries",
    "PMState",
    "TimeSeriesRecorder",
    "BurnWindow",
    "SLORule",
    "SLOEngine",
    "ActiveAlert",
    "AlertSpan",
    "default_rules",
    "default_service_rules",
    "default_serving_rules",
    "load_rules",
    "DriftDetector",
    "PMDriftState",
    "Observatory",
    "ProvenanceIndex",
    "REASON_TEXT",
    "render_explanation",
    "PhaseAttributor",
    "PhaseReport",
    "PerfBudget",
    "PerfSnapshot",
    "MemoryProbe",
    "run_perf_sweep",
    "spans_to_chrome_trace",
    "chrome_trace_to_spans",
    "build_scenario",
    "render_frame",
    "render_html",
    "run_dashboard",
]
