"""Model-drift detection: is the fleet still the one MapCal consolidated?

MapCal sizes every consolidation against the Geom/Geom/K stationary
distribution Pi implied by each VM's declared ``(p_on, p_off)``.  If
workloads change underneath — VMs turn ON more often than their spec says
— the CVR bound the packing guarantees silently stops holding long before
violations pile up.  The :class:`DriftDetector` is the early warning.

Per PM it accumulates, from :class:`~repro.telemetry.events.IntervalSnapshot`
events, the observed ON-count sum ``O``, the assumed expectation ``E`` and
the assumed variance ``V``, and at the end of each evaluation window forms
the sequential chi-square-style statistic::

    X = (O - E)^2 / V

Under the assumed law ``X`` is approximately chi-square(1) (the windowed
ON-count sum is close to normal for tens of VMs x tens of intervals), so
``X > threshold`` with ``threshold ~= 10-12`` is a ~1e-3 per-window
false-positive rate per PM.  Requiring ``consecutive`` over-threshold
windows before flagging squares that away (~1e-6) while still flagging a
genuinely drifted PM within 2-3 windows.

The crucial subtlety is ``V``: ON states of a two-state Markov chain are
*autocorrelated* across intervals (lag-1 correlation ``r = 1 - p_on -
p_off``), which inflates the variance of the windowed occupation time by
``(1 + r) / (1 - r)`` versus an i.i.d. Bernoulli sum — a factor ~19 for
the paper's defaults (p_on=0.01, p_off=0.09).  The snapshot's
``expected_var`` field carries that correctly inflated per-interval
variance rate (frozen at Datacenter construction, so runtime drift of the
dynamics cannot contaminate the null); a naive binomial variance here
would page on every stationary run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.context import resolve
from repro.telemetry.events import DriftDetected, IntervalSnapshot

__all__ = ["DriftDetector", "PMDriftState"]


@dataclass
class PMDriftState:
    """Accumulators and verdicts for one PM."""

    pm_id: int
    observed: float = 0.0
    expected: float = 0.0
    variance: float = 0.0
    hosted: float = 0.0
    samples: int = 0
    #: consecutive evaluation windows with statistic > threshold
    streak: int = 0
    windows: int = 0
    flagged: bool = False
    last_statistic: float = 0.0
    history: list[float] = field(default_factory=list)

    def reset_window(self) -> None:
        self.observed = 0.0
        self.expected = 0.0
        self.variance = 0.0
        self.hosted = 0.0
        self.samples = 0


class DriftDetector:
    """Sequential per-PM chi-square test of observed vs assumed ON counts.

    Parameters
    ----------
    window:
        Evaluation window length in recorded intervals.
    threshold:
        Chi-square(1) critical value per window; 10.83 is the classic
        p ~= 0.001 point.
    consecutive:
        Over-threshold windows required before a PM is flagged (flags
        latch: a PM is reported once).
    min_samples:
        Minimum accumulated samples before a window may be judged; windows
        with fewer (PM powered off / just provisioned) roll their
        accumulators into the next window instead of voting.
    telemetry:
        Facade to emit :class:`DriftDetected` through; ambient default
        when omitted.
    emit:
        When False (replay mode) detections are recorded but not re-emitted.
    """

    def __init__(self, *, window: int = 30, threshold: float = 10.83,
                 consecutive: int = 2, min_samples: int = 10,
                 telemetry=None, emit: bool = True):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        if consecutive < 1:
            raise ValueError(f"consecutive must be >= 1, got {consecutive}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.window = window
        self.threshold = threshold
        self.consecutive = consecutive
        self.min_samples = min_samples
        self._telemetry = telemetry
        self._emit = emit
        self.pms: dict[int, PMDriftState] = {}
        #: DriftDetected events produced so far, chronological
        self.detections: list[DriftDetected] = []
        self._ticks = 0

    @property
    def flagged_pms(self) -> list[int]:
        """PMs currently flagged as drifted, ascending."""
        return sorted(p.pm_id for p in self.pms.values() if p.flagged)

    def reset_evidence(self) -> None:
        """Drop accumulated evidence after the assumed law changed.

        Called by the autopilot when a replan commits: the per-PM
        accumulators, streaks, and latched flags all measured the *old*
        assumed law, so carrying them forward would immediately re-flag
        drift against the refitted one.  Past ``detections`` and per-PM
        ``history`` are kept — they are an audit trail, not evidence.
        """
        for state in self.pms.values():
            state.reset_window()
            state.streak = 0
            state.flagged = False
        self._ticks = 0

    def observe(self, snap: IntervalSnapshot) -> list[DriftDetected]:
        """Accumulate one interval; evaluate at window boundaries."""
        for i, pm_id in enumerate(snap.pm_ids):
            state = self.pms.get(pm_id)
            if state is None:
                state = self.pms[pm_id] = PMDriftState(pm_id)
            state.observed += snap.on_vms[i]
            state.expected += snap.expected_on[i]
            state.variance += snap.expected_var[i]
            state.hosted += snap.hosted[i]
            state.samples += 1
        self._ticks += 1
        if self._ticks % self.window == 0:
            return self._evaluate(snap.time)
        return []

    def _evaluate(self, time: int) -> list[DriftDetected]:
        fired: list[DriftDetected] = []
        for state in self.pms.values():
            if state.samples < self.min_samples or state.variance <= 0:
                # not enough evidence this window — keep accumulating into
                # the next one rather than voting on noise
                continue
            statistic = (state.observed - state.expected) ** 2 / state.variance
            state.last_statistic = statistic
            state.history.append(statistic)
            state.windows += 1
            if statistic > self.threshold:
                state.streak += 1
            else:
                state.streak = 0
            if state.streak >= self.consecutive and not state.flagged:
                state.flagged = True
                event = DriftDetected(
                    time=time,
                    pm_id=state.pm_id,
                    statistic=statistic,
                    threshold=self.threshold,
                    observed_on_fraction=(
                        state.observed / state.hosted if state.hosted else 0.0
                    ),
                    expected_on_fraction=(
                        state.expected / state.hosted if state.hosted else 0.0
                    ),
                    windows=state.streak,
                )
                self.detections.append(event)
                fired.append(event)
            state.reset_window()
        if self._emit and fired:
            tel = (self._telemetry if self._telemetry is not None
                   else resolve(None))
            if tel is not None:
                for event in fired:
                    tel.events.emit(event)
        return fired
