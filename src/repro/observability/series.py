"""Bounded-memory time-series primitives for the run observatory.

Two containers cover what the recorder needs:

- :class:`RollingWindow` — a fixed-size ring with an O(1) running sum, for
  burn-rate math over the last N intervals;
- :class:`TieredSeries` — a chart-resolution series with downsampled
  retention tiers: the newest points are kept raw, older points are
  averaged into coarser and coarser buckets, so a million-interval run
  still fits in a few KB while the dashboard keeps full recent detail and
  a faithful long-range shape.

Both are plain Python (no numpy in the push path): one push is a couple of
attribute writes, cheap enough to run every simulated interval.
"""

from __future__ import annotations

from collections import deque

__all__ = ["RollingWindow", "TieredSeries"]


class RollingWindow:
    """Fixed-size ring of float samples with an O(1) running sum."""

    __slots__ = ("size", "_buf", "_sum")

    def __init__(self, size: int):
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = size
        self._buf: deque[float] = deque(maxlen=size)
        self._sum = 0.0

    def push(self, value: float) -> None:
        """Add one sample, evicting the oldest when full."""
        value = float(value)
        if len(self._buf) == self.size:
            self._sum -= self._buf[0]
        self._buf.append(value)
        self._sum += value

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def sum(self) -> float:
        """Sum of the samples currently in the window."""
        return self._sum

    def sum_last(self, n: int) -> float:
        """Sum of the most recent ``min(n, len)`` samples."""
        if n >= len(self._buf):
            return self._sum
        return sum(list(self._buf)[-n:])

    def count_last(self, n: int) -> int:
        """How many samples a ``sum_last(n)`` actually covered."""
        return min(n, len(self._buf))

    @property
    def mean(self) -> float:
        """Mean of the buffered samples (0.0 when empty)."""
        return self._sum / len(self._buf) if self._buf else 0.0

    @property
    def last(self) -> float:
        """Most recent sample (0.0 when empty)."""
        return self._buf[-1] if self._buf else 0.0

    def values(self) -> list[float]:
        """Snapshot, oldest first."""
        return list(self._buf)


class TieredSeries:
    """Append-only series with a raw head and downsampled retention tiers.

    Parameters
    ----------
    raw:
        Points kept at full resolution (the newest), and the capacity of
        each downsampled tier.
    factor:
        Downsampling factor between consecutive tiers: when a tier
        overflows, its ``factor`` oldest points collapse into one averaged
        point of the next tier.
    tiers:
        Number of downsampled tiers behind the raw ring.  When the last
        tier overflows its oldest points age out, bounding total memory at
        ``(tiers + 1) * raw`` points regardless of run length.
    """

    __slots__ = ("raw_capacity", "factor", "_levels", "n_pushed")

    def __init__(self, raw: int = 240, factor: int = 8, tiers: int = 2):
        if raw < 1:
            raise ValueError(f"raw must be >= 1, got {raw}")
        if factor < 2:
            raise ValueError(f"factor must be >= 2, got {factor}")
        if tiers < 0:
            raise ValueError(f"tiers must be >= 0, got {tiers}")
        self.raw_capacity = raw
        self.factor = factor
        # _levels[0] is the raw ring; _levels[i > 0] holds points averaged
        # over factor**i raw intervals.  All hold (time, value) pairs.
        self._levels: list[deque[tuple[int, float]]] = [
            deque() for _ in range(tiers + 1)
        ]
        self.n_pushed = 0

    def push(self, time: int, value: float) -> None:
        """Append one (time, value) sample."""
        self._levels[0].append((int(time), float(value)))
        self.n_pushed += 1
        self._spill(0)

    def _spill(self, level: int) -> None:
        """Collapse the oldest ``factor`` points of an overflowing level."""
        buf = self._levels[level]
        while len(buf) > self.raw_capacity:
            chunk = [buf.popleft() for _ in range(self.factor)]
            if level + 1 >= len(self._levels):
                continue  # past the last tier: history ages out
            mean = sum(v for _, v in chunk) / len(chunk)
            self._levels[level + 1].append((chunk[0][0], mean))
            self._spill(level + 1)

    def series(self) -> tuple[list[int], list[float]]:
        """The retained series, oldest first: (times, values)."""
        times: list[int] = []
        values: list[float] = []
        for buf in reversed(self._levels):
            for t, v in buf:
                times.append(t)
                values.append(v)
        return times, values

    def tail(self, n: int) -> list[float]:
        """The last ``n`` retained values (raw resolution where possible)."""
        return self.series()[1][-n:]

    @property
    def last(self) -> float:
        """Most recent value (0.0 when empty)."""
        for buf in self._levels:
            if buf:
                return buf[-1][1]
        return 0.0

    def __len__(self) -> int:
        return sum(len(buf) for buf in self._levels)
