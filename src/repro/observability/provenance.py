"""Decision provenance: reconstruct *why* from a recorded event stream.

The placers, the migration scheduler, the reconsolidation layer and the
autopilot all emit ``*Decided`` events (:mod:`repro.telemetry.events`)
carrying the candidate set they evaluated, per-candidate scores, and a
typed rejection verdict for every loser.  This module is the query side:
:class:`ProvenanceIndex` ingests a recorded stream (tolerantly, so a
corrupt tail costs only the lines after the corruption) and answers
"why is VM 12 on PM 3?", "who was ever rejected from PM 7?", "what did
the autopilot see before replanning at t=92?" — purely from the JSONL,
no simulator re-execution, byte-deterministic output.

Decision ids are allocated by the producers (monotonic per id-space:
the scheduler's checkpointed sequence for in-run decisions, the telemetry
context for pre-run/online placements), so the same seed yields the same
ids.  Because an autopilot rollback rewinds the scheduler sequence along
with everything else, an id can legitimately reappear after a rollback;
queries therefore return *all* matches and the renderer shows each.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.placement.base import (
    REASON_BLACKLISTED,
    REASON_CAPACITY,
    REASON_CHOSEN,
    REASON_CRASHED,
    REASON_CVR_THRESHOLD,
    REASON_DRAINING,
    REASON_FEASIBLE,
    REASON_FLEET_FULL,
    REASON_SHED_INBOX,
    REASON_SHED_PRIORITY,
    REASON_SHED_SOLVER,
    REASON_SOURCE,
    REASON_SPREAD,
    REASON_VM_CAP,
)
from repro.telemetry.events import (
    MigrationCompleted,
    MigrationDecided,
    MigrationFailed,
    PlacementDecided,
    ReconsolidationDecided,
    ReplanCommitted,
    ReplanDecided,
    ReplanRolledBack,
    ReplanStarted,
    TelemetryEvent,
)
from repro.telemetry.sinks import read_events_tolerant
from repro.utils.tables import format_table

__all__ = ["ProvenanceIndex", "REASON_TEXT", "render_explanation"]

#: human-readable counterfactual per verdict string (stable: rendered
#: output is asserted byte-identical across replays in CI)
REASON_TEXT = {
    REASON_CHOSEN: "selected",
    REASON_FEASIBLE: "feasible, but a preferred PM won",
    REASON_CAPACITY: "insufficient residual capacity",
    REASON_CVR_THRESHOLD: "predicted CVR above threshold",
    REASON_VM_CAP: "per-PM VM limit reached",
    REASON_SPREAD: "DomainSpreadConstraint",
    REASON_CRASHED: "PM crashed / excluded",
    REASON_BLACKLISTED: "target blacklisted (flapping)",
    REASON_SOURCE: "is the source PM",
    REASON_DRAINING: "draining for retirement",
    REASON_FLEET_FULL: "no eligible PM passes the reservation test",
    REASON_SHED_INBOX: "shed: admission inbox full",
    REASON_SHED_PRIORITY: "shed: evicted for a higher-class arrival",
    REASON_SHED_SOLVER: "shed: solver degraded, no usable mapping",
}

_DECISION_KINDS = (PlacementDecided, MigrationDecided,
                   ReconsolidationDecided, ReplanDecided)


class ProvenanceIndex:
    """Queryable view over the decision events of one recorded run.

    Attributes
    ----------
    decisions:
        The ``*Decided`` events in stream order; each is also addressable
        by its stream ordinal (``seq``), which is what ``repro explain
        --decision`` uses alongside the producer-assigned ``decision_id``.
    events:
        The full event stream (decisions need their outcome events —
        ``MigrationCompleted``/``Failed``, ``ReplanStarted``/
        ``Committed``/``RolledBack`` — for linking).
    skipped_lines:
        Malformed JSONL lines dropped by the tolerant reader.
    """

    def __init__(self, events: Iterable[TelemetryEvent], *,
                 skipped_lines: int = 0):
        self.events: list[TelemetryEvent] = list(events)
        self.decisions: list[TelemetryEvent] = [
            e for e in self.events if isinstance(e, _DECISION_KINDS)]
        self.skipped_lines = skipped_lines

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "ProvenanceIndex":
        """Build the index from a JSONL trace (corrupt tail tolerated)."""
        events, skipped = read_events_tolerant(path)
        return cls(events, skipped_lines=skipped)

    # ----------------------------------------------------------------- #
    # counters
    # ----------------------------------------------------------------- #
    @property
    def decisions_dropped_total(self) -> int:
        """Candidate/move rows truncated out of decision events (never
        silent: every event records how many rows it dropped)."""
        return sum(getattr(e, "dropped_candidates", 0)
                   + getattr(e, "dropped_moves", 0)
                   for e in self.decisions)

    # ----------------------------------------------------------------- #
    # filters (all return (seq, event) pairs in stream order)
    # ----------------------------------------------------------------- #
    def _enumerated(self) -> list[tuple[int, TelemetryEvent]]:
        return list(enumerate(self.decisions))

    def for_vm(self, vm_id: int) -> list[tuple[int, TelemetryEvent]]:
        """Every decision that concerned VM ``vm_id``."""
        out = []
        for seq, e in self._enumerated():
            if getattr(e, "vm_id", None) == vm_id:
                out.append((seq, e))
            elif (isinstance(e, ReconsolidationDecided)
                  and vm_id in e.move_vms):
                out.append((seq, e))
        return out

    def for_pm(self, pm_id: int) -> list[tuple[int, TelemetryEvent]]:
        """Every decision in which PM ``pm_id`` appeared (as winner,
        candidate, source, or move endpoint)."""
        out = []
        for seq, e in self._enumerated():
            if getattr(e, "chosen_pm", None) == pm_id:
                out.append((seq, e))
            elif pm_id in getattr(e, "cand_pms", ()):
                out.append((seq, e))
            elif getattr(e, "source_pm", None) == pm_id:
                out.append((seq, e))
            elif isinstance(e, ReconsolidationDecided) and (
                    pm_id in e.move_sources or pm_id in e.move_targets):
                out.append((seq, e))
            elif isinstance(e, ReplanDecided) and pm_id in e.drift_pms:
                out.append((seq, e))
        return out

    def at_tick(self, time: int) -> list[tuple[int, TelemetryEvent]]:
        """Every decision taken at interval ``time``."""
        return [(seq, e) for seq, e in self._enumerated()
                if e.time == time]

    def by_id(self, decision_id: int) -> list[tuple[int, TelemetryEvent]]:
        """Decisions whose producer-assigned id matches (may be several:
        id spaces are per producer, and a rollback rewinds the
        scheduler's sequence)."""
        return [(seq, e) for seq, e in self._enumerated()
                if getattr(e, "decision_id", None) == decision_id]

    def by_seq(self, seq: int) -> list[tuple[int, TelemetryEvent]]:
        """The decision at stream ordinal ``seq`` (empty when out of
        range)."""
        if 0 <= seq < len(self.decisions):
            return [(seq, self.decisions[seq])]
        return []

    # ----------------------------------------------------------------- #
    # outcome linking
    # ----------------------------------------------------------------- #
    def migration_outcome(self, decision: MigrationDecided) -> str:
        """What happened to a migration decision: completed, failed, or
        (for ``chosen_pm = -1``) nothing to execute."""
        if decision.chosen_pm < 0:
            return "unresolved (no feasible target; violation tolerated)"
        for e in self.events:
            if e.time != decision.time:
                continue
            if (isinstance(e, MigrationCompleted)
                    and e.vm_id == decision.vm_id
                    and e.target_pm == decision.chosen_pm):
                return "completed"
            if (isinstance(e, MigrationFailed)
                    and e.vm_id == decision.vm_id
                    and e.target_pm == decision.chosen_pm):
                return (f"failed mid-flight (backoff "
                        f"{e.backoff_intervals} intervals)")
        return "outcome not in trace"

    def replan_outcome(self, decision: ReplanDecided) -> list[str]:
        """The audit trail of one replan decision: the matching start and
        the eventual commit/rollback, linked by fingerprint."""
        lines = []
        for e in self.events:
            if getattr(e, "fingerprint", None) != decision.fingerprint:
                continue
            if isinstance(e, ReplanStarted) and e.time == decision.time:
                ckpt = e.checkpoint or "<in-memory only>"
                lines.append(f"t={e.time} replan started "
                             f"(checkpoint {ckpt})")
            elif isinstance(e, ReplanCommitted) and e.time >= decision.time:
                lines.append(
                    f"t={e.time} COMMITTED: CVR "
                    f"{decision.baseline_cvr:.4f} -> {e.post_cvr:.4f} "
                    f"({e.migrations} planned migrations)")
                break
            elif isinstance(e, ReplanRolledBack) and e.time >= decision.time:
                lines.append(
                    f"t={e.time} ROLLED BACK: CVR "
                    f"{decision.baseline_cvr:.4f} -> {e.post_cvr:.4f}, "
                    f"restored to t={e.restored_time} "
                    f"(parity={e.parity})")
                break
        if not lines:
            lines.append("verdict pending (guard window open at end of "
                         "trace)")
        return lines


# --------------------------------------------------------------------- #
# rendering
# --------------------------------------------------------------------- #
def _candidate_table(e: TelemetryEvent) -> str:
    rows = []
    for pm, score, verdict in zip(e.cand_pms, e.cand_scores,
                                  e.cand_verdicts):
        rows.append([pm, float(score), verdict,
                     REASON_TEXT.get(verdict, verdict)])
    table = format_table(["PM", "score", "verdict", "why"], rows,
                         floatfmt=".6f")
    if e.dropped_candidates:
        table += (f"\n... {e.dropped_candidates} more candidate PM(s) "
                  f"omitted ({e.total_pms} total)")
    return table


def _render_placement(seq: int, e: PlacementDecided,
                      index: ProvenanceIndex) -> str:
    where = (f"-> PM {e.chosen_pm}" if e.chosen_pm >= 0
             else "-> NOWHERE (placement infeasible)")
    lines = [
        f"decision #{seq} [placement] t={e.time} id={e.decision_id}",
        f"  VM {e.vm_id} {where}  (placer={e.placer}, context={e.context})",
        f"  inputs: p_on={e.p_on:.6f} p_off={e.p_off:.6f}"
        + (f" table={e.table_fingerprint}" if e.table_fingerprint else "")
        + f" cache_hit={e.cache_hit} score_kind={e.score_kind}",
        _candidate_table(e),
    ]
    return "\n".join(lines)


def _render_migration(seq: int, e: MigrationDecided,
                      index: ProvenanceIndex) -> str:
    where = (f"-> PM {e.chosen_pm}" if e.chosen_pm >= 0
             else "-> NO TARGET")
    lines = [
        f"decision #{seq} [migration] t={e.time} id={e.decision_id}",
        f"  VM {e.vm_id} off PM {e.source_pm} {where}  "
        f"(policy={e.policy}, cause={e.cause})",
        _candidate_table(e),
        f"  outcome: {index.migration_outcome(e)}",
    ]
    return "\n".join(lines)


def _render_reconsolidation(seq: int, e: ReconsolidationDecided,
                            index: ProvenanceIndex) -> str:
    lines = [
        f"decision #{seq} [reconsolidation] t={e.time} id={e.decision_id}",
        f"  cause={e.cause} placer={e.placer}: planned {e.planned_moves} "
        f"move(s), executed {e.executed_moves}",
    ]
    if e.move_vms:
        rows = [[vm, src, dst] for vm, src, dst
                in zip(e.move_vms, e.move_sources, e.move_targets)]
        table = format_table(["VM", "from PM", "to PM"], rows)
        if e.dropped_moves:
            table += (f"\n... {e.dropped_moves} more executed move(s) "
                      f"omitted (see migration_completed events)")
        lines.append(table)
    return "\n".join(lines)


def _render_replan(seq: int, e: ReplanDecided,
                   index: ProvenanceIndex) -> str:
    alerts = ", ".join(e.active_alerts) if e.active_alerts else "none"
    drift_pms = (", ".join(str(p) for p in e.drift_pms)
                 if e.drift_pms else "none")
    lines = [
        f"decision #{seq} [autopilot replan] t={e.time} id={e.decision_id}",
        f"  cause={e.cause} refit={e.fingerprint}",
        f"  evidence: {e.drift_detections} new drift detection(s) "
        f"[PMs: {drift_pms}], alert streak {e.alert_streak} "
        f"[active: {alerts}]",
        f"  baseline CVR {e.baseline_cvr:.4f}, migration budget "
        f"{e.budget}, guard verdict due t={e.deadline}",
    ]
    lines.extend("  " + s for s in index.replan_outcome(e))
    return "\n".join(lines)


_RENDERERS = {
    PlacementDecided: _render_placement,
    MigrationDecided: _render_migration,
    ReconsolidationDecided: _render_reconsolidation,
    ReplanDecided: _render_replan,
}


def render_decision(seq: int, event: TelemetryEvent,
                    index: ProvenanceIndex) -> str:
    """Render one decision as the "why here, why not there" block."""
    return _RENDERERS[type(event)](seq, event, index)


def _overview(index: ProvenanceIndex, limit: int = 40) -> str:
    rows = []
    shown = index._enumerated()[:limit]
    for seq, e in shown:
        kind = e.kind.replace("_decided", "")
        subject = (f"vm {e.vm_id}" if hasattr(e, "vm_id")
                   else f"{getattr(e, 'cause', '')}")
        chosen = getattr(e, "chosen_pm", "")
        rows.append([seq, kind, int(e.time),
                     int(e.decision_id), subject, chosen])
    table = format_table(
        ["seq", "kind", "t", "id", "subject", "chosen"], rows,
        title=f"{len(index.decisions)} decision(s) in trace")
    if len(index.decisions) > limit:
        table += (f"\n... {len(index.decisions) - limit} more; filter "
                  f"with --vm/--pm/--tick/--decision")
    return table


def render_explanation(index: ProvenanceIndex, *,
                       vm: int | None = None, pm: int | None = None,
                       tick: int | None = None,
                       decision: int | None = None) -> str:
    """Answer one explain-query as deterministic plain text.

    Exactly the output of ``python -m repro explain``; with no filter an
    overview listing is rendered instead.  The text depends only on the
    event stream, so two replays of the same trace are byte-identical.
    """
    if vm is not None:
        matches = index.for_vm(vm)
        header = f"decisions concerning VM {vm}"
    elif pm is not None:
        matches = index.for_pm(pm)
        header = f"decisions involving PM {pm}"
    elif tick is not None:
        matches = index.at_tick(tick)
        header = f"decisions at t={tick}"
    elif decision is not None:
        matches = index.by_seq(decision) or index.by_id(decision)
        header = f"decision {decision}"
    else:
        return _overview(index)
    out = [f"{header}: {len(matches)} match(es)"]
    if index.skipped_lines:
        out.append(f"(note: {index.skipped_lines} malformed trace "
                   f"line(s) skipped)")
    for seq, e in matches:
        out.append("")
        out.append(render_decision(seq, e, index))
    return "\n".join(out)
