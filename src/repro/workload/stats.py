"""Burstiness statistics over workload traces.

Used to characterize generated traces (Fig. 8) and to verify that the ON-OFF
generators actually produce the burstiness the paper's model promises
(spike frequency ``p_on``, duration ``1/p_off``, lag-h autocorrelation
``(1 - p_on - p_off)^h``).
"""

from __future__ import annotations

import numpy as np


def _as_1d(trace: np.ndarray, name: str = "trace") -> np.ndarray:
    t = np.asarray(trace, dtype=float)
    if t.ndim != 1 or t.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-D array, got shape {t.shape}")
    return t


def index_of_dispersion(trace: np.ndarray) -> float:
    """Variance-to-mean ratio of a (count) trace; > 1 indicates burstiness."""
    t = _as_1d(trace)
    mean = t.mean()
    if mean == 0:
        return 0.0
    return float(t.var() / mean)


def peak_to_mean_ratio(trace: np.ndarray) -> float:
    """Max over mean of the trace (infinite-mean-safe: returns 0 for all-zero)."""
    t = _as_1d(trace)
    mean = t.mean()
    if mean == 0:
        return 0.0
    return float(t.max() / mean)


def empirical_autocorrelation(trace: np.ndarray, max_lag: int) -> np.ndarray:
    """Sample autocorrelation at lags ``0..max_lag``.

    Returns an array of length ``max_lag + 1`` with entry 0 equal to 1.  A
    constant trace has undefined autocorrelation; zeros are returned beyond
    lag 0 in that case.
    """
    t = _as_1d(trace)
    if max_lag < 0:
        raise ValueError(f"max_lag must be >= 0, got {max_lag}")
    if max_lag >= t.size:
        raise ValueError(
            f"max_lag ({max_lag}) must be smaller than the trace length ({t.size})"
        )
    t = t - t.mean()
    denom = float(t @ t)
    out = np.zeros(max_lag + 1)
    out[0] = 1.0
    if denom == 0.0:
        return out
    for lag in range(1, max_lag + 1):
        out[lag] = float(t[:-lag] @ t[lag:]) / denom
    return out


def burst_lengths(states: np.ndarray) -> np.ndarray:
    """Lengths of maximal runs of ON (truthy) intervals in a 0/1 trace.

    Returns an empty array if the trace never turns ON.  Runs touching the
    trace boundary are counted as-is (right-censoring is negligible for the
    long traces used in the experiments).
    """
    s = np.asarray(states).astype(bool)
    if s.ndim != 1:
        raise ValueError(f"states must be 1-D, got shape {s.shape}")
    if s.size == 0:
        return np.empty(0, dtype=np.int64)
    padded = np.concatenate(([False], s, [False])).astype(np.int8)
    diff = np.diff(padded)
    starts = np.flatnonzero(diff == 1)
    ends = np.flatnonzero(diff == -1)
    return (ends - starts).astype(np.int64)


def mean_burst_length(states: np.ndarray) -> float:
    """Average ON-run length; 0.0 if the trace never turns ON."""
    lengths = burst_lengths(states)
    return float(lengths.mean()) if lengths.size else 0.0
