"""Synthetic workload substrate.

- :mod:`repro.workload.onoff_generator` — vectorized ON-OFF demand traces
  for heterogeneous VM fleets (drives the Fig. 6 CVR evaluation).
- :mod:`repro.workload.patterns` — random instance generators for the
  paper's three workload patterns (R_b = R_e, R_b > R_e, R_b < R_e) and the
  Table I web-server specifications.
- :mod:`repro.workload.webserver` — request-level user/think-time workload
  (Fig. 8 / Section V-D), the paper's XCP web-server programs in simulation.
- :mod:`repro.workload.stats` — burstiness statistics (index of dispersion,
  autocorrelation, burst-length histograms).
"""

from repro.workload.onoff_generator import (
    demand_trace,
    ensemble_states,
    pm_load_trace,
)
from repro.workload.patterns import (
    PatternName,
    TABLE_I,
    TableIRow,
    generate_pattern_instance,
    make_pms,
    table_i_vms,
)
from repro.workload.webserver import WebServerWorkload, UserPool
from repro.workload.stats import (
    burst_lengths,
    empirical_autocorrelation,
    index_of_dispersion,
    peak_to_mean_ratio,
)
from repro.workload.estimation import (
    Z99,
    LatencyPercentileFit,
    OnOffFit,
    classify_states,
    estimate_switch_probabilities,
    fit_cs2_from_percentiles,
    fit_fleet,
    fit_onoff,
    two_means_split,
)
from repro.workload.diurnal import (
    STANDARD_DAY,
    DiurnalSchedule,
    effective_q,
    ensemble_states_diurnal,
    phase_cvr,
)
from repro.workload.io import (
    load_instance,
    load_placement,
    load_traces,
    save_instance,
    save_placement,
    save_traces,
)

__all__ = [
    "demand_trace",
    "ensemble_states",
    "pm_load_trace",
    "PatternName",
    "TABLE_I",
    "TableIRow",
    "generate_pattern_instance",
    "make_pms",
    "table_i_vms",
    "WebServerWorkload",
    "UserPool",
    "burst_lengths",
    "empirical_autocorrelation",
    "index_of_dispersion",
    "peak_to_mean_ratio",
    "Z99",
    "LatencyPercentileFit",
    "OnOffFit",
    "fit_cs2_from_percentiles",
    "classify_states",
    "estimate_switch_probabilities",
    "fit_fleet",
    "fit_onoff",
    "two_means_split",
    "STANDARD_DAY",
    "DiurnalSchedule",
    "effective_q",
    "ensemble_states_diurnal",
    "phase_cvr",
    "load_instance",
    "load_placement",
    "load_traces",
    "save_instance",
    "save_placement",
    "save_traces",
]
