"""Vectorized ON-OFF demand traces for heterogeneous VM fleets.

Unlike :meth:`repro.markov.onoff.OnOffChain.simulate_ensemble` (one common
chain), these functions accept per-VM parameter arrays so a whole problem
instance evolves in one pass: the time loop is the only Python-level loop and
each step is O(n) vectorized work.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.types import Placement, VMSpec, vm_arrays
from repro.utils.rng import SeedLike, as_generator


def ensemble_states(vms: Sequence[VMSpec], n_steps: int, *,
                    start_stationary: bool = False,
                    seed: SeedLike = None) -> np.ndarray:
    """Simulate the ON/OFF state of every VM over ``n_steps`` intervals.

    Parameters
    ----------
    vms:
        VM specifications (per-VM ``p_on``/``p_off`` honoured).
    n_steps:
        Number of transitions; output has ``n_steps + 1`` columns.
    start_stationary:
        Draw initial states from each VM's stationary law instead of all-OFF.
        The paper starts all-OFF (``Pi_0``); stationary starts remove warm-up
        bias when measuring long-run CVR.

    Returns
    -------
    numpy.ndarray
        Boolean array of shape ``(n_vms, n_steps + 1)``; True = ON.
    """
    if n_steps < 0:
        raise ValueError(f"n_steps must be >= 0, got {n_steps}")
    arrays = vm_arrays(vms)
    p_on, p_off = arrays["p_on"], arrays["p_off"]
    n = len(vms)
    rng = as_generator(seed)
    states = np.empty((n, n_steps + 1), dtype=bool)
    if start_stationary and n:
        q = p_on / (p_on + p_off)
        states[:, 0] = rng.random(n) < q
    else:
        states[:, 0] = False
    current = states[:, 0].copy()
    for t in range(n_steps):
        u = rng.random(n)
        current = np.where(current, u >= p_off, u < p_on)
        states[:, t + 1] = current
    return states


def demand_trace(vms: Sequence[VMSpec], states: np.ndarray) -> np.ndarray:
    """Instantaneous demand of each VM given its state trajectory.

    ``demand[i, t] = R_b[i] + R_e[i] * states[i, t]``.
    """
    arrays = vm_arrays(vms)
    states = np.asarray(states, dtype=bool)
    if states.shape[0] != len(vms):
        raise ValueError(
            f"states has {states.shape[0]} rows but there are {len(vms)} VMs"
        )
    return arrays["r_base"][:, None] + arrays["r_extra"][:, None] * states


def pm_load_trace(placement: Placement, demands: np.ndarray) -> np.ndarray:
    """Aggregate per-PM load over time.

    Parameters
    ----------
    placement:
        VM -> PM assignment (every VM must be placed).
    demands:
        ``(n_vms, T)`` instantaneous demand array.

    Returns
    -------
    numpy.ndarray
        ``(n_pms, T)`` aggregate load; rows of unused PMs are zero.
    """
    demands = np.asarray(demands, dtype=float)
    if demands.shape[0] != placement.n_vms:
        raise ValueError(
            f"demands has {demands.shape[0]} rows but the placement covers "
            f"{placement.n_vms} VMs"
        )
    if not placement.all_placed:
        raise ValueError("every VM must be placed to aggregate PM loads")
    loads = np.zeros((placement.n_pms, demands.shape[1]))
    np.add.at(loads, placement.assignment, demands)
    return loads
