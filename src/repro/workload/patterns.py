"""Problem-instance generators matching the paper's experiment settings.

Two families:

1. **Random-range patterns** (Fig. 5/6): ``R_b`` and ``R_e`` drawn uniformly
   from pattern-specific ranges, PM capacity uniform in [80, 100]:

   - ``"equal"``  (R_b = R_e pattern):   R_b, R_e ~ U[2, 20]
   - ``"small"``  (R_b > R_e pattern):   R_b ~ U[12, 20], R_e ~ U[2, 10]
   - ``"large"``  (R_b < R_e pattern):   R_b ~ U[2, 10],  R_e ~ U[12, 20]

   (names refer to the *spike size*, as the paper phrases the patterns).

2. **Table I web-server specs** (Fig. 9): ``R_b``/``R_e`` classified as
   small/medium/large, accommodating 400/800/1600 users respectively; the
   table's seven rows combine them per workload pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal


from repro.core.types import PMSpec, VMSpec
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer

PatternName = Literal["equal", "small", "large"]

#: default switch probabilities used throughout the paper's evaluation
DEFAULT_P_ON = 0.01
DEFAULT_P_OFF = 0.09

#: R_b / R_e uniform ranges per pattern (paper Fig. 5 caption)
PATTERN_RANGES: dict[str, tuple[tuple[float, float], tuple[float, float]]] = {
    "equal": ((2.0, 20.0), (2.0, 20.0)),   # R_b = R_e (normal spikes)
    "small": ((12.0, 20.0), (2.0, 10.0)),  # R_b > R_e (small spikes)
    "large": ((2.0, 10.0), (12.0, 20.0)),  # R_b < R_e (large spikes)
}

#: PM capacity range (paper Fig. 5 caption)
PM_CAPACITY_RANGE = (80.0, 100.0)

#: users accommodated per size class (paper Section V-D)
USERS_PER_CLASS = {"small": 400, "medium": 800, "large": 1600}


def generate_pattern_instance(
    pattern: PatternName,
    n_vms: int,
    *,
    p_on: float = DEFAULT_P_ON,
    p_off: float = DEFAULT_P_OFF,
    capacity_range: tuple[float, float] = PM_CAPACITY_RANGE,
    n_pms: int | None = None,
    seed: SeedLike = None,
) -> tuple[list[VMSpec], list[PMSpec]]:
    """Random problem instance for one of the paper's three patterns.

    Parameters
    ----------
    pattern:
        ``"equal"`` / ``"small"`` / ``"large"`` spike-size pattern.
    n_vms:
        Number of VMs.
    p_on, p_off:
        Switch probabilities (paper default 0.01 / 0.09).
    capacity_range:
        Uniform range for PM capacities.
    n_pms:
        Fleet size; defaults to ``n_vms`` (enough for any strategy, since
        every VM fits alone on any PM in the paper's ranges).
    seed:
        RNG seed material.

    Returns
    -------
    tuple
        ``(vms, pms)`` lists.
    """
    if pattern not in PATTERN_RANGES:
        raise ValueError(
            f"unknown pattern {pattern!r}; expected one of {sorted(PATTERN_RANGES)}"
        )
    n_vms = check_integer(n_vms, "n_vms", minimum=1)
    rng = as_generator(seed)
    (b_lo, b_hi), (e_lo, e_hi) = PATTERN_RANGES[pattern]
    r_base = rng.uniform(b_lo, b_hi, size=n_vms)
    r_extra = rng.uniform(e_lo, e_hi, size=n_vms)
    vms = [
        VMSpec(p_on=p_on, p_off=p_off, r_base=float(b), r_extra=float(e))
        for b, e in zip(r_base, r_extra)
    ]
    m = n_vms if n_pms is None else check_integer(n_pms, "n_pms", minimum=1)
    lo, hi = capacity_range
    if not 0 < lo <= hi:
        raise ValueError(f"invalid capacity range {capacity_range!r}")
    pms = [PMSpec(capacity=float(c)) for c in rng.uniform(lo, hi, size=m)]
    return vms, pms


def make_pms(n_pms: int, *, capacity_range: tuple[float, float] = PM_CAPACITY_RANGE,
             seed: SeedLike = None) -> list[PMSpec]:
    """A fleet of ``n_pms`` PMs with uniform-random capacities."""
    n_pms = check_integer(n_pms, "n_pms", minimum=1)
    lo, hi = capacity_range
    if not 0 < lo <= hi:
        raise ValueError(f"invalid capacity range {capacity_range!r}")
    rng = as_generator(seed)
    return [PMSpec(capacity=float(c)) for c in rng.uniform(lo, hi, size=n_pms)]


@dataclass(frozen=True)
class TableIRow:
    """One row of the paper's Table I.

    Attributes
    ----------
    pattern:
        Which spike-size pattern the row belongs to.
    base_class, extra_class:
        Size class (``"small"``/``"medium"``/``"large"``) of ``R_b``/``R_e``.
    normal_users, peak_users:
        Users accommodated at normal/peak capability (paper's last columns).
    """

    pattern: PatternName
    base_class: str
    extra_class: str
    normal_users: int
    peak_users: int


def _row(pattern: PatternName, base: str, extra: str) -> TableIRow:
    normal = USERS_PER_CLASS[base]
    peak = normal + USERS_PER_CLASS[extra]
    return TableIRow(pattern, base, extra, normal, peak)


#: the paper's Table I, row for row
TABLE_I: tuple[TableIRow, ...] = (
    _row("equal", "small", "small"),
    _row("equal", "medium", "medium"),
    _row("equal", "large", "large"),
    _row("small", "medium", "small"),
    _row("small", "large", "medium"),
    _row("large", "small", "medium"),
    _row("large", "medium", "large"),
)


def table_i_vms(
    pattern: PatternName,
    n_vms: int,
    *,
    p_on: float = DEFAULT_P_ON,
    p_off: float = DEFAULT_P_OFF,
    users_per_resource_unit: float = 100.0,
    seed: SeedLike = None,
) -> list[VMSpec]:
    """VM fleet drawn from the Table I rows of one pattern.

    Each VM picks one of the pattern's rows uniformly at random; demand is
    the row's user count divided by ``users_per_resource_unit`` (the paper
    quantifies workload by users served; scaling keeps magnitudes comparable
    with the Fig. 5 ranges: 400 users -> 4.0 units, 1600 -> 16.0).
    """
    rows = [r for r in TABLE_I if r.pattern == pattern]
    if not rows:
        raise ValueError(f"unknown pattern {pattern!r}")
    n_vms = check_integer(n_vms, "n_vms", minimum=1)
    rng = as_generator(seed)
    picks = rng.integers(0, len(rows), size=n_vms)
    vms = []
    for p in picks:
        row = rows[int(p)]
        r_base = row.normal_users / users_per_resource_unit
        r_extra = (row.peak_users - row.normal_users) / users_per_resource_unit
        vms.append(VMSpec(p_on=p_on, p_off=p_off, r_base=r_base, r_extra=r_extra))
    return vms
