"""Fitting the paper's four-tuple ``(p_on, p_off, R_b, R_e)`` from traces.

The paper assumes each VM's ON-OFF parameters are known.  In practice they
must be estimated from monitoring data; this module closes that gap so the
consolidation pipeline can run end-to-end from raw demand traces:

1. **Level detection** — classify each sample as ON or OFF.  Two detectors:
   a threshold at the midpoint of a 2-means split of the demand values
   (:func:`two_means_split`), or a user-supplied threshold.
2. **Demand levels** — ``R_b`` = mean of OFF samples, ``R_p`` = mean of ON
   samples, ``R_e = R_p - R_b``.  A ``percentile_margin`` variant sizes the
   levels conservatively (e.g. 90th percentile of each regime) for
   provisioning use.
3. **Switch probabilities** — maximum-likelihood estimates from the state
   sequence: ``p_on = (#OFF->ON transitions) / (#time in OFF)`` and
   symmetrically for ``p_off`` (the MLE of a two-state chain's transition
   probabilities is the empirical transition frequency).

:func:`fit_onoff` bundles the three steps; :func:`fit_fleet` maps it across
a fleet of traces and returns ready-to-place :class:`~repro.core.types.VMSpec`
objects.

The request-level serving plane adds a fourth estimator:
:func:`fit_cs2_from_percentiles` recovers a service-time squared
coefficient of variation ``Cs²`` from two observed latency percentiles
under a lognormal assumption, feeding Kingman's waiting-time formula
(:func:`repro.queueing.sojourn.kingman_waiting_time`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import VMSpec
from repro.utils.validation import check_in_range


@dataclass(frozen=True)
class OnOffFit:
    """Result of fitting an ON-OFF model to one trace.

    Attributes
    ----------
    p_on, p_off:
        MLE switch probabilities (clipped away from {0, 1} so the result is
        always a valid :class:`VMSpec`).
    r_base, r_extra:
        Demand levels (``R_e = R_p - R_b``; >= 0).
    threshold:
        The ON/OFF classification threshold used.
    on_fraction:
        Empirical fraction of samples classified ON.
    n_transitions:
        Total observed state switches — a confidence signal; fits with very
        few transitions are unreliable.
    log_likelihood:
        Log-likelihood of the fitted chain on the state sequence.
    """

    p_on: float
    p_off: float
    r_base: float
    r_extra: float
    threshold: float
    on_fraction: float
    n_transitions: int
    log_likelihood: float

    def to_vmspec(self) -> VMSpec:
        """The fitted four-tuple as a placeable :class:`VMSpec`."""
        return VMSpec(self.p_on, self.p_off, self.r_base, self.r_extra)


def two_means_split(trace: np.ndarray, *, max_iterations: int = 100) -> float:
    """Threshold separating a bimodal trace: midpoint of a 2-means split.

    Lloyd's algorithm on the scalar values with centroids initialized at the
    min and max.  For a genuinely two-level trace this converges to the two
    level means; the returned threshold is their midpoint.  A constant trace
    returns its single value (everything classifies OFF).
    """
    v = np.asarray(trace, dtype=float)
    if v.ndim != 1 or v.size == 0:
        raise ValueError(f"trace must be a non-empty 1-D array, got shape {v.shape}")
    if not np.all(np.isfinite(v)):
        raise ValueError("trace must be finite")
    lo, hi = float(v.min()), float(v.max())
    if lo == hi:
        return lo
    c0, c1 = lo, hi
    for _ in range(max_iterations):
        mid = (c0 + c1) / 2.0
        low_mask = v <= mid
        n0 = float(low_mask.sum())
        if n0 == 0 or n0 == v.size:  # pragma: no cover - mid always splits
            break
        new_c0 = float(v[low_mask].mean())
        new_c1 = float(v[~low_mask].mean())
        if new_c0 == c0 and new_c1 == c1:
            break
        c0, c1 = new_c0, new_c1
    return (c0 + c1) / 2.0


def classify_states(trace: np.ndarray, threshold: float) -> np.ndarray:
    """0/1 state sequence: ON where the demand exceeds ``threshold``."""
    v = np.asarray(trace, dtype=float)
    if v.ndim != 1:
        raise ValueError(f"trace must be 1-D, got shape {v.shape}")
    return (v > threshold).astype(np.int8)


def estimate_switch_probabilities(
    states: np.ndarray, *, clip: float = 1e-4
) -> tuple[float, float, int, float]:
    """MLE of ``(p_on, p_off)`` from a 0/1 state sequence.

    Returns ``(p_on, p_off, n_transitions, log_likelihood)``.  Estimates are
    clipped to ``[clip, 1 - clip]`` so downstream models remain well-posed
    when a regime never switches in the observation window.
    """
    s = np.asarray(states).astype(bool)
    if s.ndim != 1 or s.size < 2:
        raise ValueError("need a 1-D state sequence of length >= 2")
    check_in_range(clip, "clip", 0.0, 0.5)
    prev, curr = s[:-1], s[1:]
    off_time = int((~prev).sum())
    on_time = int(prev.sum())
    off_to_on = int((~prev & curr).sum())
    on_to_off = int((prev & ~curr).sum())
    p_on = off_to_on / off_time if off_time else clip
    p_off = on_to_off / on_time if on_time else clip
    p_on = float(np.clip(p_on, clip, 1.0 - clip))
    p_off = float(np.clip(p_off, clip, 1.0 - clip))
    # Log-likelihood of the transition sequence under the fitted chain.
    ll = (
        off_to_on * np.log(p_on)
        + (off_time - off_to_on) * np.log(1.0 - p_on)
        + on_to_off * np.log(p_off)
        + (on_time - on_to_off) * np.log(1.0 - p_off)
    )
    return p_on, p_off, off_to_on + on_to_off, float(ll)


def fit_onoff(
    trace: np.ndarray,
    *,
    threshold: float | None = None,
    percentile_margin: float | None = None,
    clip: float = 1e-4,
) -> OnOffFit:
    """Fit the full four-tuple to one demand trace.

    Parameters
    ----------
    trace:
        1-D demand samples, one per information-update interval.
    threshold:
        ON/OFF classification threshold; default: :func:`two_means_split`.
    percentile_margin:
        If given (e.g. 0.9), size ``R_b``/``R_p`` at this percentile of the
        respective regime's samples instead of the mean — a conservative
        choice for provisioning.  Must be in (0, 1).
    clip:
        Probability clipping for degenerate regimes.

    Returns
    -------
    OnOffFit
    """
    v = np.asarray(trace, dtype=float)
    if v.ndim != 1 or v.size < 2:
        raise ValueError("need a 1-D trace of length >= 2")
    if not np.all(np.isfinite(v)):
        raise ValueError("trace must be finite")
    thr = two_means_split(v) if threshold is None else float(threshold)
    states = classify_states(v, thr)
    p_on, p_off, n_trans, ll = estimate_switch_probabilities(states, clip=clip)

    off_samples = v[states == 0]
    on_samples = v[states == 1]
    if percentile_margin is not None:
        check_in_range(percentile_margin, "percentile_margin", 0.0, 1.0)
        q = percentile_margin * 100.0
        level = lambda x: float(np.percentile(x, q))  # noqa: E731
    else:
        level = lambda x: float(x.mean())  # noqa: E731

    r_base = level(off_samples) if off_samples.size else float(v.min())
    r_peak = level(on_samples) if on_samples.size else r_base
    r_extra = max(r_peak - r_base, 0.0)
    return OnOffFit(
        p_on=p_on,
        p_off=p_off,
        r_base=max(r_base, 0.0),
        r_extra=r_extra,
        threshold=thr,
        on_fraction=float(states.mean()),
        n_transitions=n_trans,
        log_likelihood=ll,
    )


def fit_fleet(traces: np.ndarray, **kwargs) -> list[OnOffFit]:
    """Fit every row of a ``(n_vms, T)`` trace matrix; kwargs as in
    :func:`fit_onoff`."""
    m = np.asarray(traces, dtype=float)
    if m.ndim != 2:
        raise ValueError(f"traces must be 2-D (n_vms, T), got shape {m.shape}")
    return [fit_onoff(m[i], **kwargs) for i in range(m.shape[0])]


#: standard normal quantile at 0.99 (``z`` such that ``Phi(z) = 0.99``)
Z99 = 2.3263478740408408


@dataclass(frozen=True)
class LatencyPercentileFit:
    """A lognormal latency fit recovered from two observed percentiles.

    Attributes
    ----------
    mu, sigma:
        Parameters of the fitted lognormal (``ln T ~ N(mu, sigma^2)``).
    mean:
        Implied mean latency ``exp(mu + sigma^2 / 2)``.
    cs2:
        Implied squared coefficient of variation
        ``exp(sigma^2) - 1`` — the ``Cs²`` Kingman's formula needs.
    """

    mu: float
    sigma: float
    mean: float
    cs2: float


def fit_cs2_from_percentiles(p50: float, p99: float, *,
                             z99: float = Z99) -> LatencyPercentileFit:
    """Estimate latency variability from observed p50/p99 percentiles.

    Under a lognormal latency model the median pins ``mu = ln p50`` and
    the 99th percentile pins ``sigma = (ln p99 - ln p50) / z99``; the
    squared coefficient of variation is then ``Cs² = exp(sigma²) - 1``.
    This turns the serving plane's observed percentiles
    (:class:`repro.serving.layer.ServingReport`) into the ``cs2`` input of
    :func:`repro.queueing.sojourn.kingman_waiting_time`.
    """
    if not p50 > 0:
        raise ValueError(f"p50 must be > 0, got {p50}")
    if p99 < p50:
        raise ValueError(f"p99 ({p99}) must be >= p50 ({p50})")
    if z99 <= 0:
        raise ValueError(f"z99 must be > 0, got {z99}")
    mu = float(np.log(p50))
    sigma = float((np.log(p99) - np.log(p50)) / z99)
    return LatencyPercentileFit(
        mu=mu,
        sigma=sigma,
        mean=float(np.exp(mu + sigma * sigma / 2.0)),
        cs2=float(np.expm1(sigma * sigma)),
    )
