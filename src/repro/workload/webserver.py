"""Request-level web-server workload (paper Section V-D, Fig. 8).

The paper's testbed ran programs inside VMs that emulate web servers serving
computation-intensive requests: each user sends a request, waits for a think
time drawn from an exponential distribution with mean 1 (floored at 0.1
"since in reality the user think time cannot be infinitely small"), and
repeats.  The instantaneous workload is quantified by the number of requests
arriving per interval, and the *user population* follows the VM's ON-OFF
state: ``N_b`` users normally, ``N_p`` users during a spike.

:class:`UserPool` models one population of users; :class:`WebServerWorkload`
couples a pool to an ON-OFF chain to produce Fig. 8-style traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.markov.onoff import OnOffChain
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_positive

#: paper's think-time law: Exp(mean=1), floored at 0.1 seconds
THINK_TIME_MEAN = 1.0
THINK_TIME_FLOOR = 0.1


@dataclass(frozen=True)
class UserPool:
    """A homogeneous population of users with exponential think times.

    Attributes
    ----------
    n_users:
        Population size.
    think_time_mean:
        Mean of the exponential think time.
    think_time_floor:
        Lower truncation of the think time.
    """

    n_users: int
    think_time_mean: float = THINK_TIME_MEAN
    think_time_floor: float = THINK_TIME_FLOOR

    def __post_init__(self) -> None:
        check_integer(self.n_users, "n_users", minimum=0)
        check_positive(self.think_time_mean, "think_time_mean")
        if not 0 <= self.think_time_floor < float("inf"):
            raise ValueError("think_time_floor must be finite and >= 0")

    @property
    def effective_mean_think_time(self) -> float:
        """Mean of the floored exponential: ``floor + E[(X - floor)^+]``.

        For X ~ Exp(mean m) truncated below at f (values below f are raised
        to f), E[max(X, f)] = f + m * exp(-f/m).
        """
        m, f = self.think_time_mean, self.think_time_floor
        return f + m * float(np.exp(-f / m))

    @property
    def request_rate(self) -> float:
        """Long-run requests per unit time from the whole pool.

        Each user cycles think -> request, so rate = n / E[think].  (Request
        processing time is absorbed into the think time, as in the paper's
        closed-loop generator.)
        """
        if self.n_users == 0:
            return 0.0
        return self.n_users / self.effective_mean_think_time

    def sample_think_times(self, size: int, *, seed: SeedLike = None) -> np.ndarray:
        """Draw floored-exponential think times."""
        rng = as_generator(seed)
        raw = rng.exponential(self.think_time_mean, size=size)
        return np.maximum(raw, self.think_time_floor)

    def requests_in_interval(self, interval: float, n_intervals: int, *,
                             seed: SeedLike = None) -> np.ndarray:
        """Requests arriving per interval, simulated per user.

        Event-driven per user: advance each user's clock by successive think
        times, bin the request epochs into intervals.  Cost is proportional
        to the expected request count.
        """
        check_positive(interval, "interval")
        n_intervals = check_integer(n_intervals, "n_intervals", minimum=1)
        rng = as_generator(seed)
        horizon = interval * n_intervals
        counts = np.zeros(n_intervals, dtype=np.int64)
        expected_per_user = horizon / self.effective_mean_think_time
        batch = max(8, int(expected_per_user * 1.5) + 4)
        for _ in range(self.n_users):
            t = 0.0
            epochs: list[float] = []
            while t < horizon:
                draws = np.maximum(
                    rng.exponential(self.think_time_mean, size=batch),
                    self.think_time_floor,
                )
                cum = t + np.cumsum(draws)
                inside = cum[cum < horizon]
                epochs.extend(inside.tolist())
                t = float(cum[-1])
            if epochs:
                idx = (np.asarray(epochs) / interval).astype(np.int64)
                np.add.at(counts, idx, 1)
        return counts


class WebServerWorkload:
    """A VM's request workload driven by an ON-OFF user population.

    Parameters
    ----------
    chain:
        The VM's ON-OFF chain (one step per information-update interval
        ``sigma``).
    normal_users:
        Users during OFF periods (determines ``R_b``).
    peak_users:
        Users during ON periods (determines ``R_p``); must be >= normal.
    interval:
        Length of one ON-OFF interval in seconds (the paper's sigma = 30 s).
    """

    def __init__(self, chain: OnOffChain, normal_users: int, peak_users: int,
                 *, interval: float = 30.0):
        if peak_users < normal_users:
            raise ValueError(
                f"peak_users ({peak_users}) must be >= normal_users ({normal_users})"
            )
        check_integer(normal_users, "normal_users", minimum=0)
        check_positive(interval, "interval")
        self.chain = chain
        self.normal_users = normal_users
        self.peak_users = peak_users
        self.interval = interval

    def generate(self, n_intervals: int, *, seed: SeedLike = None,
                 exact: bool = False) -> tuple[np.ndarray, np.ndarray]:
        """Generate ``(states, request_counts)`` over ``n_intervals``.

        ``states`` is the 0/1 ON-OFF trajectory (length ``n_intervals``);
        ``request_counts[t]`` is the number of requests in interval ``t``.

        With ``exact=False`` (default) request counts are drawn Poisson with
        the pool's rate — accurate for many users and orders of magnitude
        faster; ``exact=True`` simulates each user's think-time renewals
        (used by tests to validate the Poisson approximation).
        """
        n_intervals = check_integer(n_intervals, "n_intervals", minimum=1)
        rng = as_generator(seed)
        states = self.chain.simulate(n_intervals - 1, seed=rng)
        pools = {
            0: UserPool(self.normal_users),
            1: UserPool(self.peak_users),
        }
        counts = np.zeros(n_intervals, dtype=np.int64)
        if exact:
            for t, s in enumerate(states):
                counts[t] = pools[int(s)].requests_in_interval(
                    self.interval, 1, seed=rng
                )[0]
        else:
            rates = np.where(
                states == 1,
                pools[1].request_rate,
                pools[0].request_rate,
            ) * self.interval
            counts = rng.poisson(rates)
        return np.asarray(states), counts
