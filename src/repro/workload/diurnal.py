"""Diurnal (time-varying) ON-OFF workloads.

Production spike rates are not stationary: flash crowds cluster in busy
hours.  This module makes the ON-OFF chain *nonhomogeneous* — ``p_on``
follows a periodic schedule while ``p_off`` stays constant (spike duration
is a property of the workload, not the clock) — so the paper's
stationarity assumption can be stress-tested:

- :class:`DiurnalSchedule` — a periodic piecewise-constant multiplier on
  the base ``p_on`` (e.g. quiet nights at 0.2x, busy afternoons at 3x);
- :func:`ensemble_states_diurnal` — vectorized fleet simulation under a
  schedule;
- :func:`effective_q` — the time-averaged and worst-hour stationary ON
  fractions, the two candidate sizing points for MapCal under diurnality.

Sizing guidance, verified by the diurnal ablation: sizing at the *average*
``q`` violates rho during busy hours; sizing at the *peak-hour* ``q``
restores the bound everywhere at the price of the off-peak headroom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.types import VMSpec, vm_arrays
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DiurnalSchedule:
    """Periodic piecewise-constant multipliers on the base spike rate.

    Attributes
    ----------
    multipliers:
        One multiplier per phase; applied cyclically.
    phase_length:
        Intervals per phase.  The full period is
        ``len(multipliers) * phase_length`` intervals.
    """

    multipliers: tuple[float, ...]
    phase_length: int = 1

    def __post_init__(self) -> None:
        if not self.multipliers:
            raise ValueError("need at least one multiplier")
        if any(m < 0 or not np.isfinite(m) for m in self.multipliers):
            raise ValueError("multipliers must be finite and >= 0")
        if self.phase_length < 1:
            raise ValueError(f"phase_length must be >= 1, got {self.phase_length}")

    @property
    def period(self) -> int:
        """Intervals in one full cycle."""
        return len(self.multipliers) * self.phase_length

    def multiplier_at(self, t: int) -> float:
        """The spike-rate multiplier in effect at interval ``t``."""
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        return self.multipliers[(t // self.phase_length) % len(self.multipliers)]

    def multiplier_series(self, n_intervals: int) -> np.ndarray:
        """Vector of multipliers for intervals ``0..n_intervals-1``."""
        idx = (np.arange(n_intervals) // self.phase_length) % len(self.multipliers)
        return np.asarray(self.multipliers, dtype=float)[idx]

    @property
    def mean_multiplier(self) -> float:
        """Time-averaged multiplier over one period."""
        return float(np.mean(self.multipliers))

    @property
    def peak_multiplier(self) -> float:
        """Largest multiplier (the busy hour)."""
        return float(np.max(self.multipliers))


#: a plausible day at 30 s intervals compressed to 24 phases (one per "hour"):
#: quiet night, morning ramp, busy afternoon, evening taper
STANDARD_DAY = DiurnalSchedule(
    multipliers=(0.2, 0.2, 0.2, 0.2, 0.2, 0.4, 0.7, 1.0,
                 1.5, 2.0, 2.5, 3.0, 3.0, 2.5, 2.5, 2.0,
                 2.0, 1.5, 1.5, 1.0, 0.7, 0.4, 0.2, 0.2),
    phase_length=120,  # 120 x 30 s = one "hour"
)


def effective_q(vm: VMSpec, schedule: DiurnalSchedule) -> dict[str, float]:
    """Average and worst-hour stationary ON fractions under a schedule.

    ``q(t) = p_on(t) / (p_on(t) + p_off)`` treating each phase as locally
    stationary (valid when phases are much longer than the mixing time).
    Multipliers are clipped so ``p_on(t) <= 1``.
    """
    out: dict[str, float] = {}
    for key, mult in (("mean", schedule.mean_multiplier),
                      ("peak", schedule.peak_multiplier)):
        p_on_t = min(vm.p_on * mult, 1.0)
        out[key] = p_on_t / (p_on_t + vm.p_off) if p_on_t > 0 else 0.0
    return out


def ensemble_states_diurnal(
    vms: Sequence[VMSpec],
    schedule: DiurnalSchedule,
    n_steps: int,
    *,
    seed: SeedLike = None,
) -> np.ndarray:
    """Simulate a fleet's ON/OFF states under a diurnal spike-rate schedule.

    Identical contract to
    :func:`repro.workload.onoff_generator.ensemble_states` (all-OFF start,
    boolean output of shape ``(n_vms, n_steps + 1)``), except each step
    scales every VM's ``p_on`` by the schedule's multiplier at that step.
    """
    if n_steps < 0:
        raise ValueError(f"n_steps must be >= 0, got {n_steps}")
    arrays = vm_arrays(vms)
    p_on, p_off = arrays["p_on"], arrays["p_off"]
    n = len(vms)
    rng = as_generator(seed)
    mults = schedule.multiplier_series(n_steps)
    states = np.empty((n, n_steps + 1), dtype=bool)
    states[:, 0] = False
    current = states[:, 0].copy()
    for t in range(n_steps):
        u = rng.random(n)
        p_on_t = np.minimum(p_on * mults[t], 1.0)
        current = np.where(current, u >= p_off, u < p_on_t)
        states[:, t + 1] = current
    return states


def phase_cvr(loads: np.ndarray, capacities: np.ndarray,
              schedule: DiurnalSchedule) -> dict[float, float]:
    """Mean PM CVR per schedule phase multiplier.

    Groups the ``(n_pms, T)`` load trace's columns by the multiplier in
    effect and reports the violation fraction within each group — the
    "CVR by hour of day" view.
    """
    loads = np.asarray(loads, dtype=float)
    capacities = np.asarray(capacities, dtype=float)
    check_positive(float(capacities.min()), "capacities")
    T = loads.shape[1]
    mults = schedule.multiplier_series(T)
    violated = loads > capacities[:, None] + 1e-9
    out: dict[float, float] = {}
    for m in sorted(set(schedule.multipliers)):
        cols = mults == m
        if cols.any():
            out[float(m)] = float(violated[:, cols].mean())
    return out
