"""Persistence for problem instances and traces.

Experiments become shareable when their inputs are files:

- **instances** (VM + PM specs) round-trip through JSON
  (:func:`save_instance` / :func:`load_instance`);
- **demand traces** round-trip through CSV with a one-line header
  (:func:`save_traces` / :func:`load_traces`), one row per VM — the format
  monitoring exporters typically emit, and what
  :func:`repro.workload.estimation.fit_fleet` consumes;
- **placements** round-trip through JSON including the instance dimensions
  so a loaded placement can be validated against its instance.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.types import Placement, PMSpec, VMSpec

_FORMAT_VERSION = 1


def save_instance(path: str | Path, vms: Sequence[VMSpec],
                  pms: Sequence[PMSpec]) -> None:
    """Write an instance as JSON (schema versioned for forward-compat)."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "vms": [
            {"p_on": v.p_on, "p_off": v.p_off,
             "r_base": v.r_base, "r_extra": v.r_extra}
            for v in vms
        ],
        "pms": [{"capacity": p.capacity} for p in pms],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_instance(path: str | Path) -> tuple[list[VMSpec], list[PMSpec]]:
    """Read an instance written by :func:`save_instance`.

    Raises
    ------
    ValueError
        On a missing/unsupported format version or malformed entries (the
        :class:`VMSpec`/:class:`PMSpec` constructors validate the values).
    """
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported instance format version {version!r}; "
            f"expected {_FORMAT_VERSION}"
        )
    vms: list[VMSpec] = []
    pms: list[PMSpec] = []
    for section, cls, out in (("vms", VMSpec, vms), ("pms", PMSpec, pms)):
        if section not in payload:
            raise ValueError(
                f"malformed instance file {path}: missing {section!r} list")
        for i, entry in enumerate(payload[section]):
            try:
                out.append(cls(**entry))
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"malformed instance file {path}: "
                    f"{section}[{i}]: {exc}") from exc
    return vms, pms


def save_traces(path: str | Path, traces: np.ndarray) -> None:
    """Write an ``(n_vms, T)`` demand matrix as CSV (one row per VM)."""
    m = np.asarray(traces, dtype=float)
    if m.ndim != 2:
        raise ValueError(f"traces must be 2-D (n_vms, T), got shape {m.shape}")
    header = f"repro-traces v{_FORMAT_VERSION} n_vms={m.shape[0]} T={m.shape[1]}"
    np.savetxt(Path(path), m, delimiter=",", header=header, fmt="%.10g")


def load_traces(path: str | Path) -> np.ndarray:
    """Read a trace matrix written by :func:`save_traces`.

    A single-VM file loads back as shape ``(1, T)``.
    """
    first = Path(path).read_text().splitlines()[:1]
    if not first or not first[0].lstrip("# ").startswith("repro-traces"):
        raise ValueError(f"{path} is not a repro trace file")
    m = np.loadtxt(Path(path), delimiter=",", ndmin=2)
    return m


def save_placement(path: str | Path, placement: Placement) -> None:
    """Write a placement (assignment + dimensions) as JSON."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "n_vms": placement.n_vms,
        "n_pms": placement.n_pms,
        "assignment": placement.assignment.tolist(),
    }
    Path(path).write_text(json.dumps(payload))


def load_placement(path: str | Path) -> Placement:
    """Read a placement written by :func:`save_placement` (validated)."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported placement format in {path}")
    return Placement(
        n_vms=payload["n_vms"],
        n_pms=payload["n_pms"],
        assignment=np.array(payload["assignment"], dtype=np.int64),
    )
