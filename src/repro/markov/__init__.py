"""Stochastic-process substrate: finite discrete-time Markov chains.

This package provides the probabilistic machinery underlying the paper's
MapCal algorithm:

- :mod:`repro.markov.binomial` — vectorized construction of the busy-block
  transition kernel (Eq. 12 of the paper) from binomial ON->OFF / OFF->ON
  switch counts.
- :mod:`repro.markov.chain` — a general finite DTMC with several stationary
  distribution solvers, simulation, and structural diagnostics.
- :mod:`repro.markov.onoff` — the two-state ON-OFF chain used as the per-VM
  workload model (Fig. 2 of the paper), with closed-form burst statistics.
"""

from repro.markov.binomial import (
    binomial_pmf_table,
    busy_block_kernel,
    busy_block_kernel_bruteforce,
)
from repro.markov.chain import DiscreteMarkovChain
from repro.markov.hmm import HMMFitDiagnostics, fit_hmm_onoff
from repro.markov.multilevel import (
    MultiLevelChain,
    birth_death_levels,
    spiky_levels,
)
from repro.markov.onoff import OnOffChain
from repro.markov.spectral import (
    cvr_estimation_plan,
    effective_sample_size,
    integrated_autocorrelation_time,
    relaxation_time,
    slem,
)

__all__ = [
    "cvr_estimation_plan",
    "effective_sample_size",
    "integrated_autocorrelation_time",
    "relaxation_time",
    "slem",
    "binomial_pmf_table",
    "busy_block_kernel",
    "busy_block_kernel_bruteforce",
    "DiscreteMarkovChain",
    "HMMFitDiagnostics",
    "fit_hmm_onoff",
    "MultiLevelChain",
    "birth_death_levels",
    "spiky_levels",
    "OnOffChain",
]
