"""Multi-level demand chains — beyond the two-state ON-OFF model.

Real workloads are not strictly two-level; the ON-OFF chain is the paper's
modelling choice, not a law of nature.  This module provides an N-level
generalization used for the *model-mismatch* robustness study: generate
workloads from a richer chain, fit the paper's two-level model to them, and
measure how much of the CVR guarantee survives.

A :class:`MultiLevelChain` pairs a finite DTMC over abstract levels with a
demand value per level.  Helper constructors:

- :func:`birth_death_levels` — demands ramp up/down one level at a time
  (typical load ramps);
- :func:`spiky_levels` — an OFF level plus several spike magnitudes reached
  directly from OFF (multi-magnitude flash crowds).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.markov.chain import DiscreteMarkovChain
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_integer, check_probability


class MultiLevelChain:
    """A demand process: finite DTMC over levels with per-level demand.

    Parameters
    ----------
    transition_matrix:
        Row-stochastic matrix over the levels.
    demands:
        Demand value of each level (same length as the matrix dimension;
        need not be monotone).
    """

    def __init__(self, transition_matrix: np.ndarray, demands: Sequence[float]):
        self.chain = DiscreteMarkovChain(transition_matrix)
        d = np.asarray(demands, dtype=float)
        if d.shape != (self.chain.n_states,):
            raise ValueError(
                f"demands must have length {self.chain.n_states}, got {d.shape}"
            )
        if np.any(d < 0) or not np.all(np.isfinite(d)):
            raise ValueError("demands must be finite and non-negative")
        d.setflags(write=False)
        self.demands = d

    @property
    def n_levels(self) -> int:
        """Number of demand levels."""
        return self.chain.n_states

    def stationary_demand_distribution(self) -> tuple[np.ndarray, np.ndarray]:
        """``(values, probabilities)`` of the stationary demand (aggregated
        over levels sharing a demand value)."""
        pi = self.chain.stationary_distribution()
        values, inverse = np.unique(self.demands, return_inverse=True)
        probs = np.zeros(values.size)
        np.add.at(probs, inverse, pi)
        return values, probs

    def mean_demand(self) -> float:
        """Stationary mean demand."""
        pi = self.chain.stationary_distribution()
        return float(pi @ self.demands)

    def simulate_demand(self, n_steps: int, *, initial_level: int = 0,
                        seed: SeedLike = None) -> np.ndarray:
        """Demand trace of length ``n_steps + 1``."""
        levels = self.chain.simulate(n_steps, initial_state=initial_level,
                                     seed=seed)
        return self.demands[levels]

    def simulate_ensemble_demand(self, n_vms: int, n_steps: int, *,
                                 seed: SeedLike = None) -> np.ndarray:
        """``(n_vms, n_steps + 1)`` independent demand traces."""
        check_integer(n_vms, "n_vms", minimum=0)
        rng = as_generator(seed)
        return np.stack([
            self.simulate_demand(n_steps, seed=rng) for _ in range(n_vms)
        ]) if n_vms else np.empty((0, n_steps + 1))


def birth_death_levels(demands: Sequence[float], p_up: float,
                       p_down: float) -> MultiLevelChain:
    """Ramping chain: from level i, go up/down one level or stay.

    Boundary levels reflect (the blocked move's probability folds into
    staying).  With two levels this reduces to ON-OFF with
    ``p_on = p_up``, ``p_off = p_down``.
    """
    p_up = check_probability(p_up, "p_up")
    p_down = check_probability(p_down, "p_down")
    if p_up + p_down > 1.0:
        raise ValueError(
            f"p_up + p_down must be <= 1, got {p_up} + {p_down}"
        )
    n = len(demands)
    check_integer(n, "len(demands)", minimum=2)
    P = np.zeros((n, n))
    for i in range(n):
        up = p_up if i < n - 1 else 0.0
        down = p_down if i > 0 else 0.0
        if i < n - 1:
            P[i, i + 1] = up
        if i > 0:
            P[i, i - 1] = down
        P[i, i] = 1.0 - up - down
    return MultiLevelChain(P, demands)


def spiky_levels(base_demand: float, spike_demands: Sequence[float],
                 p_spike: float, p_recover: float,
                 spike_weights: Sequence[float] | None = None) -> MultiLevelChain:
    """OFF level plus direct-jump spike levels of several magnitudes.

    From OFF, a spike of magnitude ``j`` starts with probability
    ``p_spike * w_j`` (weights normalized); every spike level recovers to
    OFF with probability ``p_recover``.  With one spike level this is
    exactly the paper's ON-OFF chain.
    """
    p_spike = check_probability(p_spike, "p_spike")
    p_recover = check_probability(p_recover, "p_recover")
    m = len(spike_demands)
    check_integer(m, "len(spike_demands)", minimum=1)
    if spike_weights is None:
        w = np.full(m, 1.0 / m)
    else:
        w = np.asarray(spike_weights, dtype=float)
        if w.shape != (m,) or np.any(w < 0) or w.sum() <= 0:
            raise ValueError("spike_weights must be non-negative and sum > 0")
        w = w / w.sum()
    n = m + 1
    P = np.zeros((n, n))
    P[0, 0] = 1.0 - p_spike
    P[0, 1:] = p_spike * w
    for j in range(1, n):
        P[j, 0] = p_recover
        P[j, j] = 1.0 - p_recover
    return MultiLevelChain(P, [base_demand, *spike_demands])
