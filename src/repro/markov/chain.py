"""General finite discrete-time Markov chain.

Provides the stationary-distribution machinery the paper invokes in MapCal
(Algorithm 1, steps 2-3).  The paper solves the homogeneous linear system
``Pi P = Pi`` by Gaussian elimination; we expose that solver plus two
alternatives (power iteration matching the paper's Eq. 13 limit definition,
and a dense eigenvector solve) so tests can cross-validate them and the
ablation benchmark can compare their cost.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.utils.rng import SeedLike, as_generator

StationaryMethod = Literal["linear", "power", "eig"]

_ROW_SUM_ATOL = 1e-8


class DiscreteMarkovChain:
    """A finite DTMC defined by a row-stochastic transition matrix.

    Parameters
    ----------
    transition_matrix:
        Square array ``P`` with non-negative entries and rows summing to 1.
    validate:
        If true (default), check stochasticity on construction.

    Notes
    -----
    The matrix is copied and marked read-only so downstream consumers can
    safely share one instance.
    """

    def __init__(self, transition_matrix: np.ndarray, *, validate: bool = True):
        P = np.array(transition_matrix, dtype=float, copy=True)
        if P.ndim != 2 or P.shape[0] != P.shape[1]:
            raise ValueError(f"transition matrix must be square, got shape {P.shape}")
        if P.shape[0] == 0:
            raise ValueError("transition matrix must have at least one state")
        if validate:
            if np.any(P < -1e-12):
                raise ValueError("transition matrix has negative entries")
            np.clip(P, 0.0, None, out=P)
            row_sums = P.sum(axis=1)
            if not np.allclose(row_sums, 1.0, atol=_ROW_SUM_ATOL):
                worst = int(np.argmax(np.abs(row_sums - 1.0)))
                raise ValueError(
                    f"rows of the transition matrix must sum to 1; row {worst} "
                    f"sums to {row_sums[worst]!r}"
                )
            # Renormalize away float dust so repeated powers stay stochastic.
            P /= row_sums[:, None]
        P.setflags(write=False)
        self._P = P

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def transition_matrix(self) -> np.ndarray:
        """The (read-only) row-stochastic matrix ``P``."""
        return self._P

    @property
    def n_states(self) -> int:
        """Number of states."""
        return self._P.shape[0]

    def is_irreducible(self) -> bool:
        """Whether every state communicates with every other state.

        Checked via reachability on the support graph (O(n^2) BFS per
        direction using boolean matrix powers by repeated squaring).
        """
        n = self.n_states
        reach = (self._P > 0.0) | np.eye(n, dtype=bool)
        # Transitive closure by repeated boolean squaring: O(log n) matmuls.
        prev = np.zeros_like(reach)
        while not np.array_equal(prev, reach):
            prev = reach
            reach = reach | (reach @ reach)
        return bool(reach.all())

    def is_aperiodic(self) -> bool:
        """True if the chain's period is 1.

        For an irreducible chain a single self-loop suffices; in general we
        compute the gcd of cycle lengths through state 0's communicating
        class via BFS levels.
        """
        if np.any(np.diag(self._P) > 0.0):
            return True
        # gcd of (level difference + 1) over edges closing within BFS tree.
        n = self.n_states
        adj = self._P > 0.0
        level = np.full(n, -1)
        level[0] = 0
        frontier = [0]
        g = 0
        order = [0]
        while frontier:
            nxt = []
            for u in frontier:
                for v in np.flatnonzero(adj[u]):
                    if level[v] == -1:
                        level[v] = level[u] + 1
                        nxt.append(int(v))
                        order.append(int(v))
            frontier = nxt
        for u in order:
            for v in np.flatnonzero(adj[u]):
                if level[v] != -1:
                    g = int(np.gcd(g, level[u] + 1 - level[v]))
        return g == 1

    # ------------------------------------------------------------------ #
    # stationary distribution
    # ------------------------------------------------------------------ #
    def stationary_distribution(
        self,
        method: StationaryMethod = "linear",
        *,
        tol: float = 1e-12,
        max_iterations: int = 1_000_000,
    ) -> np.ndarray:
        """Solve ``pi P = pi`` with ``sum(pi) = 1``.

        Parameters
        ----------
        method:
            ``"linear"`` — replace one balance equation with the
            normalization constraint and solve the dense system (the paper's
            Gaussian-elimination approach, Eq. 14).
            ``"power"`` — iterate ``pi <- pi P`` from the paper's
            ``Pi_0 = (1, 0, ..., 0)`` start until the update falls below
            ``tol`` (the limit definition, Eq. 13).
            ``"eig"`` — left eigenvector of eigenvalue 1.

        Returns
        -------
        numpy.ndarray
            Stationary probability vector of length ``n_states``.

        Raises
        ------
        RuntimeError
            If power iteration fails to converge within ``max_iterations``
            or the linear/eig solves return an invalid distribution.
        """
        if method == "linear":
            pi = self._stationary_linear()
        elif method == "power":
            pi = self._stationary_power(tol=tol, max_iterations=max_iterations)
        elif method == "eig":
            pi = self._stationary_eig()
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown method {method!r}")
        if np.any(pi < -1e-9) or not np.isclose(pi.sum(), 1.0, atol=1e-8):
            raise RuntimeError(
                f"stationary solve ({method}) produced an invalid distribution "
                f"(sum={pi.sum()!r}, min={pi.min()!r}); the chain may not have a "
                "unique stationary distribution"
            )
        pi = np.clip(pi, 0.0, None)
        return pi / pi.sum()

    def _stationary_linear(self) -> np.ndarray:
        # (P^T - I) pi = 0 with one row swapped for normalization.
        n = self.n_states
        A = self._P.T - np.eye(n)
        A[-1, :] = 1.0
        b = np.zeros(n)
        b[-1] = 1.0
        return np.linalg.solve(A, b)

    def _stationary_power(self, *, tol: float, max_iterations: int) -> np.ndarray:
        pi = np.zeros(self.n_states)
        pi[0] = 1.0
        for _ in range(max_iterations):
            nxt = pi @ self._P
            if np.max(np.abs(nxt - pi)) < tol:
                return nxt
            pi = nxt
        raise RuntimeError(
            f"power iteration did not converge within {max_iterations} iterations"
        )

    def _stationary_eig(self) -> np.ndarray:
        vals, vecs = np.linalg.eig(self._P.T)
        idx = int(np.argmin(np.abs(vals - 1.0)))
        v = np.real(vecs[:, idx])
        s = v.sum()
        if abs(s) < 1e-14:  # pragma: no cover - pathological
            raise RuntimeError("eigenvector for eigenvalue 1 sums to ~0")
        return v / s

    # ------------------------------------------------------------------ #
    # dynamics
    # ------------------------------------------------------------------ #
    def step_distribution(self, pi: np.ndarray, steps: int = 1) -> np.ndarray:
        """Push a distribution ``pi`` forward ``steps`` transitions."""
        pi = np.asarray(pi, dtype=float)
        if pi.shape != (self.n_states,):
            raise ValueError(
                f"distribution must have shape ({self.n_states},), got {pi.shape}"
            )
        for _ in range(steps):
            pi = pi @ self._P
        return pi

    def simulate(self, n_steps: int, *, initial_state: int = 0,
                 seed: SeedLike = None) -> np.ndarray:
        """Sample a state trajectory of length ``n_steps + 1``.

        Uses inverse-CDF sampling against precomputed row CDFs, so the loop
        body is a single ``searchsorted`` per step.
        """
        if not 0 <= initial_state < self.n_states:
            raise ValueError(
                f"initial_state must be in [0, {self.n_states}), got {initial_state}"
            )
        if n_steps < 0:
            raise ValueError(f"n_steps must be >= 0, got {n_steps}")
        rng = as_generator(seed)
        cdf = np.cumsum(self._P, axis=1)
        cdf[:, -1] = 1.0
        states = np.empty(n_steps + 1, dtype=np.int64)
        states[0] = initial_state
        u = rng.random(n_steps)
        s = initial_state
        for t in range(n_steps):
            s = int(np.searchsorted(cdf[s], u[t], side="right"))
            states[t + 1] = s
        return states

    def occupancy_from_trajectory(self, states: np.ndarray) -> np.ndarray:
        """Empirical state-occupancy frequencies of a simulated trajectory."""
        states = np.asarray(states)
        if states.size == 0:
            raise ValueError("trajectory is empty")
        counts = np.bincount(states, minlength=self.n_states)
        return counts / counts.sum()

    def mixing_time(self, epsilon: float = 1e-3, *, max_steps: int = 100_000) -> int:
        """Steps until total-variation distance from stationarity <= epsilon.

        Measured from the worst single-state start.  Diagnostic only (used by
        the ablation benchmarks to justify solver choices), so a plain
        doubling search over matrix powers is fine.
        """
        if epsilon <= 0:
            raise ValueError(f"epsilon must be > 0, got {epsilon}")
        pi = self.stationary_distribution()
        Pt = self._P.copy()
        steps = 1
        while steps <= max_steps:
            tv = 0.5 * np.max(np.abs(Pt - pi[None, :]).sum(axis=1))
            if tv <= epsilon:
                return steps
            Pt = Pt @ Pt
            steps *= 2
        raise RuntimeError(f"chain did not mix within {max_steps} steps")
