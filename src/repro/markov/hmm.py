"""Two-state Gaussian hidden Markov model (Baum-Welch).

The threshold estimator in :mod:`repro.workload.estimation` assumes the two
demand levels are separable by a scalar cut.  Under heavy measurement noise
(overlapping level distributions) thresholding misclassifies samples and
biases the switch probabilities; the classical fix is to treat the ON/OFF
state as *hidden* and fit by expectation-maximization (Baum-Welch):

- E-step: forward-backward smoothing in log-space gives per-sample state
  posteriors and pairwise transition posteriors;
- M-step: re-estimate the transition matrix from expected transition
  counts and the two Gaussian emission laws from posterior-weighted
  moments.

:func:`fit_hmm_onoff` wraps the EM loop and returns the same
:class:`~repro.workload.estimation.OnOffFit` the threshold path produces,
so both estimators are drop-in interchangeable; the state with the larger
emission mean is defined as ON.
"""

from __future__ import annotations

import logging

from dataclasses import dataclass

from typing import TYPE_CHECKING

import numpy as np

from repro.telemetry.context import resolve
from repro.telemetry.logfilter import LogRateLimiter
from repro.utils.validation import check_integer, check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.workload.estimation import OnOffFit

_LOG_EPS = 1e-300

logger = logging.getLogger(__name__)

#: relative spread below which a window is treated as degenerate (no
#: separable ON/OFF structure for the M-step to lock onto)
_DEGENERATE_REL_STD = 1e-6

#: one WARN per 50 degenerate windows; the rest are counted, not printed
_degenerate_limiter = LogRateLimiter(window=50)
_degenerate_seen = 0


def _degenerate_fallback(x: np.ndarray, clip: float, reason: str,
                         return_diagnostics: bool):
    """Threshold-estimator fallback for windows Baum-Welch cannot fit.

    Emits a rate-limited WARN and bumps ``hmm_degenerate_window_total`` on
    the ambient telemetry, then delegates to
    :func:`repro.workload.estimation.fit_onoff` (which handles constant and
    near-constant traces without NaN risk).
    """
    from repro.workload.estimation import fit_onoff  # deferred: import cycle

    global _degenerate_seen
    _degenerate_seen += 1
    _degenerate_limiter.warning(
        logger, "fit_hmm_onoff", reason, _degenerate_seen,
        "degenerate observation window (%s): falling back to threshold "
        "estimator", reason,
    )
    tel = resolve(None)
    if tel is not None:
        tel.metrics.counter(
            "hmm_degenerate_window_total",
            "observation windows where Baum-Welch fell back to the "
            "threshold estimator",
        ).inc()
    fit = fit_onoff(x, clip=clip)
    if return_diagnostics:
        return fit, HMMFitDiagnostics(
            n_iterations=0, converged=False,
            log_likelihood_path=(fit.log_likelihood,),
        )
    return fit


@dataclass(frozen=True)
class HMMFitDiagnostics:
    """Convergence record of one Baum-Welch run."""

    n_iterations: int
    converged: bool
    log_likelihood_path: tuple[float, ...]

    @property
    def final_log_likelihood(self) -> float:
        """Log-likelihood at the last EM iteration."""
        return self.log_likelihood_path[-1]


def _log_gaussian(x: np.ndarray, mean: float, var: float) -> np.ndarray:
    return -0.5 * (np.log(2 * np.pi * var) + (x - mean) ** 2 / var)


def _forward_backward(log_emit: np.ndarray, A: np.ndarray, pi0: np.ndarray):
    """Scaled forward-backward for a 2-state chain.

    Uses the classic per-step normalization (Rabiner scaling): emissions are
    exponentiated after subtracting their row max, alphas are renormalized
    each step, and the log-likelihood is recovered from the accumulated
    scale factors.  The time loop is hand-unrolled over the two states with
    scalar float arithmetic — ~50x faster than a log-space loop with
    ``logsumexp`` per step.

    Returns ``(gamma, xi_sum, log_likelihood)`` where ``gamma[t, s]`` is the
    posterior of state ``s`` at ``t`` and ``xi_sum[i, j]`` the expected
    number of ``i -> j`` transitions.
    """
    T = log_emit.shape[0]
    shift = log_emit.max(axis=1)
    emit = np.exp(log_emit - shift[:, None])
    e0 = emit[:, 0]
    e1 = emit[:, 1]
    a00, a01 = float(A[0, 0]), float(A[0, 1])
    a10, a11 = float(A[1, 0]), float(A[1, 1])

    alpha = np.empty((T, 2))
    log_scale = 0.0
    f0 = pi0[0] * e0[0]
    f1 = pi0[1] * e1[0]
    c = f0 + f1
    log_scale += np.log(max(c, _LOG_EPS))
    alpha[0, 0], alpha[0, 1] = f0 / c, f1 / c
    scales = np.empty(T)
    scales[0] = c
    for t in range(1, T):
        p0, p1 = alpha[t - 1, 0], alpha[t - 1, 1]
        f0 = (p0 * a00 + p1 * a10) * e0[t]
        f1 = (p0 * a01 + p1 * a11) * e1[t]
        c = f0 + f1
        if c < _LOG_EPS:  # pragma: no cover - scaling prevents underflow
            c = _LOG_EPS
        scales[t] = c
        alpha[t, 0], alpha[t, 1] = f0 / c, f1 / c
    ll = float(np.log(scales).sum() + shift.sum())

    beta = np.empty((T, 2))
    beta[-1, 0] = beta[-1, 1] = 1.0
    xi00 = xi01 = xi10 = xi11 = 0.0
    for t in range(T - 2, -1, -1):
        b0n = beta[t + 1, 0] * e0[t + 1]
        b1n = beta[t + 1, 1] * e1[t + 1]
        # xi contributions (unnormalized within the scaled scheme): the
        # per-t normalizer is scales[t + 1], making each xi matrix sum to 1.
        a0 = alpha[t, 0]
        a1 = alpha[t, 1]
        inv_c = 1.0 / scales[t + 1]
        xi00 += a0 * a00 * b0n * inv_c
        xi01 += a0 * a01 * b1n * inv_c
        xi10 += a1 * a10 * b0n * inv_c
        xi11 += a1 * a11 * b1n * inv_c
        beta[t, 0] = (a00 * b0n + a01 * b1n) * inv_c
        beta[t, 1] = (a10 * b0n + a11 * b1n) * inv_c

    gamma = alpha * beta
    gamma /= gamma.sum(axis=1, keepdims=True)
    xi_sum = np.array([[xi00, xi01], [xi10, xi11]])
    return gamma, xi_sum, ll


def fit_hmm_onoff(trace: np.ndarray, *, max_iterations: int = 100,
                  tol: float = 1e-6, min_var: float = 1e-8,
                  return_diagnostics: bool = False,
                  clip: float = 1e-4):
    """Fit a 2-state Gaussian HMM to a demand trace by Baum-Welch.

    Parameters
    ----------
    trace:
        1-D demand samples.
    max_iterations:
        EM iteration cap.
    tol:
        Relative log-likelihood improvement below which EM stops.
    min_var:
        Variance floor for the emission Gaussians (prevents collapse onto a
        single sample).
    return_diagnostics:
        Also return an :class:`HMMFitDiagnostics`.
    clip:
        Clipping for the estimated switch probabilities (as in the
        threshold estimator).

    Returns
    -------
    OnOffFit or (OnOffFit, HMMFitDiagnostics)
        Demand levels come from the emission means (``R_b`` = smaller mean,
        ``R_p`` = larger); switch probabilities from the fitted transition
        matrix; ``threshold`` is the posterior decision boundary midpoint.
    """
    from repro.workload.estimation import OnOffFit  # deferred: import cycle

    x = np.asarray(trace, dtype=float)
    if x.ndim != 1 or x.size < 2:
        raise ValueError("need a 1-D trace of length >= 2")
    if not np.all(np.isfinite(x)):
        raise ValueError("trace must be finite")
    check_integer(max_iterations, "max_iterations", minimum=1)
    check_positive(tol, "tol")

    # Degenerate input: a constant trace has one level and no spikes, and a
    # near-zero-variance window gives the M-step nothing to separate (the
    # posterior-weighted variances collapse onto the floor and the quartile
    # initialization is meaningless).  Both are served by the threshold
    # estimator, which handles single-regime traces exactly.
    span = float(x.max() - x.min())
    scale = max(abs(float(x.max())), abs(float(x.min())), 1.0)
    if span < 1e-12:
        return _degenerate_fallback(x, clip, "constant", return_diagnostics)
    if float(x.std()) < _DEGENERATE_REL_STD * scale:
        return _degenerate_fallback(
            x, clip, "near-zero variance", return_diagnostics)

    # Initialization from the quartiles (robust, deterministic).
    lo, hi = np.percentile(x, [25.0, 75.0])
    if hi == lo:
        hi = lo + max(abs(lo), 1.0) * 1e-3
    means = np.array([lo, hi])
    overall_var = max(float(x.var()), min_var)
    variances = np.array([overall_var, overall_var])
    A = np.array([[0.95, 0.05], [0.15, 0.85]])
    pi0 = np.array([0.5, 0.5])

    ll_path: list[float] = []
    converged = False
    gamma = None
    for _ in range(max_iterations):
        log_emit = np.stack(
            [_log_gaussian(x, means[s], variances[s]) for s in (0, 1)], axis=1
        )
        gamma, xi_sum, ll = _forward_backward(log_emit, A, pi0)
        if not np.isfinite(ll):  # pragma: no cover - defense in depth
            return _degenerate_fallback(
                x, clip, "non-finite likelihood", return_diagnostics)
        if ll_path and abs(ll - ll_path[-1]) <= tol * (abs(ll_path[-1]) + 1.0):
            ll_path.append(ll)
            converged = True
            break
        ll_path.append(ll)
        # M-step
        occupancy = gamma[:-1].sum(axis=0)
        new_A = xi_sum / np.maximum(occupancy[:, None], _LOG_EPS)
        row_sums = new_A.sum(axis=1, keepdims=True)
        # A state with ~zero occupancy contributes no evidence: keep its row.
        valid = row_sums[:, 0] > 1e-12
        A = np.where(valid[:, None], new_A / np.maximum(row_sums, 1e-12), A)
        pi0 = gamma[0] / gamma[0].sum()
        weights = gamma.sum(axis=0)
        means = (gamma * x[:, None]).sum(axis=0) / np.maximum(weights, _LOG_EPS)
        variances = np.maximum(
            (gamma * (x[:, None] - means[None, :]) ** 2).sum(axis=0)
            / np.maximum(weights, _LOG_EPS),
            min_var,
        )

    # Identify ON as the larger-mean state.
    on = int(np.argmax(means))
    off = 1 - on
    p_on = float(np.clip(A[off, on], clip, 1.0 - clip))
    p_off = float(np.clip(A[on, off], clip, 1.0 - clip))
    r_base = max(float(means[off]), 0.0)
    r_peak = max(float(means[on]), r_base)
    posterior_on = gamma[:, on]
    fit = OnOffFit(
        p_on=p_on,
        p_off=p_off,
        r_base=r_base,
        r_extra=r_peak - r_base,
        threshold=float((means[0] + means[1]) / 2.0),
        on_fraction=float(posterior_on.mean()),
        n_transitions=int(np.abs(np.diff(posterior_on > 0.5)).sum()),
        log_likelihood=ll_path[-1],
    )
    if return_diagnostics:
        return fit, HMMFitDiagnostics(
            n_iterations=len(ll_path),
            converged=converged,
            log_likelihood_path=tuple(ll_path),
        )
    return fit
