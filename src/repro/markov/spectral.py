"""Spectral diagnostics of finite chains.

The second-largest eigenvalue modulus (SLEM) of a chain controls how fast
simulations decorrelate: the relaxation time ``1 / (1 - SLEM)`` sets the
scale of the integrated autocorrelation time (IACT), which in turn tells
you how many *effective* samples a CVR trajectory contains and how long
batch-means batches must be.  These helpers make those quantities explicit
so the statistics in :mod:`repro.analysis.stats` can be sized instead of
guessed.

For the two-state ON-OFF chain everything is closed-form
(``SLEM = |1 - p_on - p_off|``); for the busy-block chain the spectrum
comes from a dense eigendecomposition (fine for k <= a few hundred).
"""

from __future__ import annotations

import numpy as np

from repro.markov.chain import DiscreteMarkovChain
from repro.utils.validation import check_positive


def eigenvalue_moduli(chain: DiscreteMarkovChain) -> np.ndarray:
    """Moduli of the chain's eigenvalues, sorted descending (first is 1)."""
    vals = np.linalg.eigvals(chain.transition_matrix)
    moduli = np.sort(np.abs(vals))[::-1]
    return moduli


def slem(chain: DiscreteMarkovChain) -> float:
    """Second-largest eigenvalue modulus.

    0 for a chain that hits stationarity in one step; approaching 1 for a
    slowly mixing chain.
    """
    moduli = eigenvalue_moduli(chain)
    if moduli.size < 2:
        return 0.0
    return float(min(moduli[1], 1.0))


def relaxation_time(chain: DiscreteMarkovChain) -> float:
    """``1 / (1 - SLEM)`` — the exponential decorrelation scale in steps.

    Infinite for a periodic/reducible chain (SLEM = 1).
    """
    gap = 1.0 - slem(chain)
    if gap <= 0.0:
        return float("inf")
    return 1.0 / gap


def integrated_autocorrelation_time(rho1: float) -> float:
    """IACT of an AR(1)-like indicator with lag-1 autocorrelation ``rho1``.

    ``tau = (1 + rho1) / (1 - rho1)`` — exact for geometrically decaying
    autocorrelations, which is what two-state indicators have.  A series of
    length ``T`` then carries ``T / tau`` effective samples.
    """
    if not -1.0 < rho1 < 1.0:
        raise ValueError(f"rho1 must be in (-1, 1), got {rho1}")
    return (1.0 + rho1) / (1.0 - rho1)


def effective_sample_size(n_samples: int, rho1: float) -> float:
    """Effective number of independent samples in a correlated series."""
    if n_samples < 0:
        raise ValueError(f"n_samples must be >= 0, got {n_samples}")
    return n_samples / integrated_autocorrelation_time(rho1)


def recommended_batch_size(rho1: float, *, multiple: float = 10.0) -> int:
    """Batch length for batch means: a multiple of the IACT (>= 1).

    With batches ~10 IACTs long, adjacent batch means are effectively
    independent and the t-interval in
    :func:`repro.analysis.stats.batch_means` is trustworthy.
    """
    check_positive(multiple, "multiple")
    target = multiple * integrated_autocorrelation_time(rho1)
    return max(1, int(np.ceil(target - 1e-9)))  # tolerance absorbs float dust


def cvr_estimation_plan(p_on: float, p_off: float, *, n_samples: int,
                        n_batches: int = 20) -> dict[str, float]:
    """Sizing summary for estimating CVR from one ON-OFF-driven trajectory.

    Uses the ON-indicator's exact lag-1 autocorrelation
    ``1 - p_on - p_off`` as the correlation scale of the violation
    indicator (violations are driven by the same switching dynamics).

    Returns ``slem``, ``relaxation_time``, ``iact``,
    ``effective_samples``, ``recommended_batch``, and
    ``batches_supported`` (how many batches of the recommended size fit).
    """
    from repro.markov.onoff import OnOffChain

    chain = OnOffChain(p_on, p_off)
    rho1 = chain.autocorrelation(1)
    iact = integrated_autocorrelation_time(rho1)
    batch = recommended_batch_size(rho1)
    return {
        "slem": abs(rho1),
        "relaxation_time": relaxation_time(chain.as_chain()),
        "iact": iact,
        "effective_samples": effective_sample_size(n_samples, rho1),
        "recommended_batch": float(batch),
        "batches_supported": float(n_samples // batch),
    }
