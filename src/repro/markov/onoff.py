"""The per-VM ON-OFF workload chain (paper Fig. 2).

A VM alternates between OFF (normal demand ``R_b``) and ON (peak demand
``R_p = R_b + R_e``).  Each time interval it flips OFF->ON with probability
``p_on`` and ON->OFF with probability ``p_off``.  As the paper notes, ``p_on``
controls spike *frequency* and ``p_off`` controls spike *duration*: sojourn
times are geometric, so a spike lasts ``1/p_off`` intervals on average and the
gap between spikes averages ``1/p_on`` intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.markov.chain import DiscreteMarkovChain
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_probability

OFF = 0
ON = 1


@dataclass(frozen=True)
class OnOffChain:
    """Two-state ON-OFF Markov chain with switch probabilities.

    Attributes
    ----------
    p_on:
        Probability of switching OFF -> ON in one interval (spike frequency).
    p_off:
        Probability of switching ON -> OFF in one interval (inverse spike
        duration).
    """

    p_on: float
    p_off: float

    def __post_init__(self) -> None:
        check_probability(self.p_on, "p_on", allow_zero=False)
        check_probability(self.p_off, "p_off", allow_zero=False)

    # ------------------------------------------------------------------ #
    # closed-form analytics
    # ------------------------------------------------------------------ #
    @property
    def stationary_on_probability(self) -> float:
        """Long-run fraction of time spent ON: ``p_on / (p_on + p_off)``."""
        return self.p_on / (self.p_on + self.p_off)

    @property
    def stationary_off_probability(self) -> float:
        """Long-run fraction of time spent OFF."""
        return self.p_off / (self.p_on + self.p_off)

    @property
    def mean_burst_length(self) -> float:
        """Expected consecutive ON intervals (geometric mean ``1 / p_off``)."""
        return 1.0 / self.p_off

    @property
    def mean_gap_length(self) -> float:
        """Expected consecutive OFF intervals (``1 / p_on``)."""
        return 1.0 / self.p_on

    @property
    def cycle_length(self) -> float:
        """Expected ON+OFF cycle length in intervals."""
        return self.mean_burst_length + self.mean_gap_length

    def burst_length_pmf(self, lengths: np.ndarray) -> np.ndarray:
        """PMF of burst durations: geometric with success prob ``p_off``.

        ``P[L = l] = (1 - p_off)^(l-1) p_off`` for integer ``l >= 1``.
        """
        lengths = np.asarray(lengths)
        pmf = np.where(
            lengths >= 1,
            (1.0 - self.p_off) ** (np.maximum(lengths, 1) - 1) * self.p_off,
            0.0,
        )
        return pmf

    def autocorrelation(self, lag: int) -> float:
        """Autocorrelation of the ON indicator at integer ``lag``.

        For a two-state chain the indicator's autocorrelation decays
        geometrically with the second eigenvalue
        ``lambda_2 = 1 - p_on - p_off``.
        """
        if lag < 0:
            raise ValueError(f"lag must be >= 0, got {lag}")
        return (1.0 - self.p_on - self.p_off) ** lag

    # ------------------------------------------------------------------ #
    # matrix / simulation views
    # ------------------------------------------------------------------ #
    def transition_matrix(self) -> np.ndarray:
        """2x2 row-stochastic matrix with state order (OFF, ON)."""
        return np.array(
            [
                [1.0 - self.p_on, self.p_on],
                [self.p_off, 1.0 - self.p_off],
            ]
        )

    def as_chain(self) -> DiscreteMarkovChain:
        """View this ON-OFF process as a generic :class:`DiscreteMarkovChain`."""
        return DiscreteMarkovChain(self.transition_matrix())

    def simulate(self, n_steps: int, *, initial_state: int = OFF,
                 seed: SeedLike = None) -> np.ndarray:
        """Sample a single 0/1 state trajectory of length ``n_steps + 1``."""
        if initial_state not in (OFF, ON):
            raise ValueError(f"initial_state must be 0 (OFF) or 1 (ON), got {initial_state}")
        if n_steps < 0:
            raise ValueError(f"n_steps must be >= 0, got {n_steps}")
        rng = as_generator(seed)
        u = rng.random(n_steps)
        out = np.empty(n_steps + 1, dtype=np.int8)
        out[0] = initial_state
        s = initial_state
        for t in range(n_steps):
            if s == OFF:
                s = ON if u[t] < self.p_on else OFF
            else:
                s = OFF if u[t] < self.p_off else ON
            out[t + 1] = s
        return out

    def simulate_ensemble(self, n_vms: int, n_steps: int, *,
                          start_stationary: bool = False,
                          seed: SeedLike = None) -> np.ndarray:
        """Sample ``n_vms`` independent trajectories simultaneously.

        Vectorized across VMs: each step draws one uniform per VM and flips
        states with the appropriate probability, so the cost is
        ``O(n_vms * n_steps)`` with NumPy inner loops only over time.

        Parameters
        ----------
        start_stationary:
            If true, initial states are drawn from the stationary law instead
            of all starting OFF (the paper starts at OFF: ``Pi_0 = (1,0,...)``).

        Returns
        -------
        numpy.ndarray
            ``int8`` array of shape ``(n_vms, n_steps + 1)``.
        """
        if n_vms < 0:
            raise ValueError(f"n_vms must be >= 0, got {n_vms}")
        if n_steps < 0:
            raise ValueError(f"n_steps must be >= 0, got {n_steps}")
        rng = as_generator(seed)
        states = np.empty((n_vms, n_steps + 1), dtype=np.int8)
        if start_stationary:
            states[:, 0] = rng.random(n_vms) < self.stationary_on_probability
        else:
            states[:, 0] = OFF
        current = states[:, 0].astype(bool)
        for t in range(n_steps):
            u = rng.random(n_vms)
            switch_on = ~current & (u < self.p_on)
            switch_off = current & (u < self.p_off)
            current = (current | switch_on) & ~switch_off
            states[:, t + 1] = current
        return states
