"""Binomial transition kernels for the busy-block process.

The paper (Section IV-B) models the number of busy reservation blocks on a PM
hosting ``k`` ON-OFF VMs as the stochastic process

    theta(t+1) = theta(t) - O(t) + I(t)

where, conditional on ``theta(t) = i``,

    O(t) ~ Binomial(i, p_off)        (VMs leaving ON)
    I(t) ~ Binomial(k - i, p_on)     (VMs entering ON)

are independent.  The one-step transition probability (the paper's Eq. 12) is
the discrete convolution

    p_ij = sum_r  P[O = r | i] * P[I = j - i + r | i]

This module builds the full ``(k+1) x (k+1)`` kernel.  :func:`busy_block_kernel`
is the production implementation: it computes the two binomial PMF families as
dense tables and contracts them with a vectorized diagonal-sum, costing
``O(k^3)`` flops (matching the paper's stated complexity) but with NumPy
constant factors.  :func:`busy_block_kernel_bruteforce` is a slow, obviously
correct reference used by the test suite.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import binom

from repro.utils.validation import check_integer, check_probability


def binomial_pmf_table(n_max: int, p: float) -> np.ndarray:
    """Table ``T[n, x] = P[Binomial(n, p) = x]`` for ``0 <= x <= n <= n_max``.

    Entries with ``x > n`` are zero.  Shape is ``(n_max + 1, n_max + 1)``.
    Built row-by-row with the stable multiplicative recurrence

        P[X = x+1] = P[X = x] * (n - x) / (x + 1) * p / (1 - p)

    seeded from ``P[X = 0] = (1 - p)^n``, falling back to scipy for the
    degenerate ``p in {0, 1}`` cases.
    """
    n_max = check_integer(n_max, "n_max", minimum=0)
    p = check_probability(p, "p")
    table = np.zeros((n_max + 1, n_max + 1))
    if p == 0.0:
        table[:, 0] = 1.0
        return table
    if p == 1.0:
        table[np.arange(n_max + 1), np.arange(n_max + 1)] = 1.0
        return table
    ratio = p / (1.0 - p)
    for n in range(n_max + 1):
        row = table[n]
        row[0] = (1.0 - p) ** n
        for x in range(n):
            row[x + 1] = row[x] * ((n - x) / (x + 1)) * ratio
    # Guard against underflow of the seed term for large n / extreme p: if the
    # row degenerated, recompute it with scipy's log-space implementation.
    bad = np.flatnonzero(~np.isclose(table.sum(axis=1), 1.0, atol=1e-9))
    for n in bad:
        table[n, : n + 1] = binom.pmf(np.arange(n + 1), n, p)
    return table


def busy_block_kernel(k: int, p_on: float, p_off: float) -> np.ndarray:
    """One-step transition matrix of the busy-block count (paper Eq. 12).

    Parameters
    ----------
    k:
        Number of collocated VMs (states are ``0..k`` busy blocks).
    p_on:
        Per-interval probability an OFF VM switches ON.
    p_off:
        Per-interval probability an ON VM switches OFF.

    Returns
    -------
    numpy.ndarray
        Row-stochastic matrix ``P`` of shape ``(k+1, k+1)`` with
        ``P[i, j] = Pr[theta(t+1) = j | theta(t) = i]``.
    """
    k = check_integer(k, "k", minimum=0)
    p_on = check_probability(p_on, "p_on")
    p_off = check_probability(p_off, "p_off")

    # off_tab[i, r] = P[O = r | theta = i];  on_tab[m, s] = P[I = s | k - theta = m]
    off_tab = binomial_pmf_table(k, p_off)
    on_tab = binomial_pmf_table(k, p_on)

    P = np.zeros((k + 1, k + 1))
    for i in range(k + 1):
        # P[i, j] = sum_r off_tab[i, r] * on_tab[k - i, j - i + r]
        # For each r, the contribution lands on columns j = i - r .. i - r + (k - i).
        o = off_tab[i, : i + 1]
        a = on_tab[k - i, : k - i + 1]
        # full correlation: conv of o (reversed index) with a
        # row[j] = sum_r o[r] * a[j - i + r]  -> cross-correlation of a with o
        row = np.convolve(o[::-1], a)
        P[i, :] = row  # length (i+1) + (k-i+1) - 1 == k + 1; columns 0..k
    return P


def busy_block_kernel_bruteforce(k: int, p_on: float, p_off: float) -> np.ndarray:
    """Reference implementation of :func:`busy_block_kernel` by direct summation.

    Evaluates the paper's Eq. 12 term-by-term with scipy binomial PMFs.  Used
    only for cross-validation in tests; ``O(k^3)`` scalar operations.
    """
    k = check_integer(k, "k", minimum=0)
    p_on = check_probability(p_on, "p_on")
    p_off = check_probability(p_off, "p_off")
    P = np.zeros((k + 1, k + 1))
    for i in range(k + 1):
        for j in range(k + 1):
            total = 0.0
            for r in range(i + 1):
                s = j - i + r
                if 0 <= s <= k - i:
                    total += binom.pmf(r, i, p_off) * binom.pmf(s, k - i, p_on)
            P[i, j] = total
    return P
