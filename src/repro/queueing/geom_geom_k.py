"""Discrete-time finite-source Geom/Geom/K/K queue.

``k`` sources (VMs) independently toggle between *thinking* (OFF) and
*in service* (ON).  ON sojourns are geometric with parameter ``p_off``
(service), OFF sojourns geometric with parameter ``p_on`` (think time).
``K <= k`` serving windows (reservation blocks) are available.

Two occupancy processes matter:

- the **unrestricted demand process** ``theta(t)`` — how many sources *want*
  service, regardless of K.  Its stationary tail beyond K is exactly the
  paper's capacity violation ratio (Eq. 16); the marginal is Binomial(k, q)
  with ``q = p_on / (p_on + p_off)`` because sources are independent.
- the **clipped loss process** — a genuine loss system where a source that
  finds all K windows busy is turned away and resumes thinking.  This is the
  classical discrete Engset analogue, provided for completeness and used to
  cross-check against :mod:`repro.queueing.engset` in tests.
"""

from __future__ import annotations

import numpy as np

from repro.markov.binomial import binomial_pmf_table, busy_block_kernel
from repro.markov.chain import DiscreteMarkovChain, StationaryMethod
from repro.utils.validation import check_integer, check_probability


class FiniteSourceGeomGeomK:
    """Analytic model of ``k`` ON-OFF sources sharing ``K`` serving windows.

    Parameters
    ----------
    k:
        Number of sources (hosted VMs); must be >= 1.
    p_on:
        OFF -> ON switch probability per interval.
    p_off:
        ON -> OFF switch probability per interval.

    Notes
    -----
    The number of windows ``K`` is a *query* parameter, not a constructor
    parameter: MapCal evaluates many candidate ``K`` against one demand
    process, so the expensive stationary solve is cached on the instance.
    """

    def __init__(self, k: int, p_on: float, p_off: float):
        self.k = check_integer(k, "k", minimum=1)
        self.p_on = check_probability(p_on, "p_on", allow_zero=False)
        self.p_off = check_probability(p_off, "p_off", allow_zero=False)
        self._stationary_cache: dict[StationaryMethod, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # unrestricted demand process
    # ------------------------------------------------------------------ #
    def demand_chain(self) -> DiscreteMarkovChain:
        """The ``(k+1)``-state chain of the unrestricted demand ``theta(t)``."""
        return DiscreteMarkovChain(
            busy_block_kernel(self.k, self.p_on, self.p_off), validate=True
        )

    def stationary_distribution(
        self, method: StationaryMethod = "linear"
    ) -> np.ndarray:
        """Stationary law of ``theta(t)`` (cached per solver method)."""
        if method not in self._stationary_cache:
            self._stationary_cache[method] = self.demand_chain().stationary_distribution(
                method
            )
        return self._stationary_cache[method]

    def stationary_distribution_closed_form(self) -> np.ndarray:
        """Closed-form stationary law: ``Binomial(k, p_on / (p_on + p_off))``.

        Because the k sources evolve independently and each source's
        stationary ON-probability is ``q = p_on/(p_on+p_off)``, the number of
        ON sources at stationarity is binomial.  This provides an O(k)
        analytic cross-check of the O(k^3) matrix solve.
        """
        q = self.p_on / (self.p_on + self.p_off)
        return binomial_pmf_table(self.k, q)[self.k]

    def overflow_probability(self, n_windows: int,
                             method: StationaryMethod = "linear") -> float:
        """Long-run fraction of time demand exceeds ``n_windows`` (paper Eq. 16).

        This is exactly the CVR a PM experiences if it reserves ``n_windows``
        blocks: ``sum_{m > K} pi_m``.
        """
        K = check_integer(n_windows, "n_windows", minimum=0)
        pi = self.stationary_distribution(method)
        if K >= self.k:
            return 0.0
        return float(pi[K + 1:].sum())

    def min_windows_for_overflow(self, rho: float,
                                 method: StationaryMethod = "linear") -> int:
        """Smallest ``K`` with overflow probability <= ``rho`` (paper Eq. 15).

        Scans the cumulative stationary distribution; always returns a value
        in ``[0, k]`` (K = k gives zero overflow by construction).
        """
        rho = check_probability(rho, "rho")
        pi = self.stationary_distribution(method)
        cumulative = np.cumsum(pi)
        meets = np.flatnonzero(cumulative >= 1.0 - rho - 1e-15)
        if meets.size == 0:  # pragma: no cover - cumulative reaches 1 at k
            return self.k
        return int(meets[0])

    def expected_demand(self) -> float:
        """Stationary mean of ``theta(t)``: ``k * p_on / (p_on + p_off)``."""
        return self.k * self.p_on / (self.p_on + self.p_off)

    # ------------------------------------------------------------------ #
    # clipped loss process (true loss system)
    # ------------------------------------------------------------------ #
    def loss_system_kernel(self, n_windows: int) -> np.ndarray:
        """Transition matrix of the clipped process with ``K`` windows.

        State = number of busy windows in ``0..K``.  A source that switches
        ON when no window is free is *blocked*: it immediately resumes
        thinking (geometric OFF sojourn restarts).  Transitions therefore
        follow the unrestricted kernel restricted to ``j <= K`` with all
        excess mass collapsed onto ``j = K``.
        """
        K = check_integer(n_windows, "n_windows", minimum=1, maximum=self.k)
        full = busy_block_kernel(self.k, self.p_on, self.p_off)
        clipped = full[: K + 1, : K + 1].copy()
        clipped[:, K] += full[: K + 1, K + 1:].sum(axis=1)
        return clipped

    def loss_system_distribution(self, n_windows: int) -> np.ndarray:
        """Stationary occupancy law of the clipped loss system."""
        return DiscreteMarkovChain(self.loss_system_kernel(n_windows)).stationary_distribution()

    def time_blocking_probability(self, n_windows: int) -> float:
        """Fraction of time all ``K`` windows of the loss system are busy."""
        return float(self.loss_system_distribution(n_windows)[-1])
