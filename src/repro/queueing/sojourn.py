"""Sojourn-time distributions for batch-FIFO discrete-time queues.

The serving plane (:mod:`repro.serving`) measures end-to-end sojourns
empirically; this module supplies the matching *analytic* side (the
formulary in ``docs/THEORY.md`` §11–12):

- the distribution of the sojourn time ``T_S`` of a request that arrives
  to find ``j`` requests already queued in a FIFO served ``c`` per
  interval — it completes in interval ``ceil((j + 1) / c)`` after arrival
  — folded over an arrival-time queue-length pmf;
- the SLA tail ``P(T_S > t)`` and mean sojourn implied by that pmf;
- Kingman's heavy-traffic approximation of mean waiting time from the
  arrival/service variability coefficients, which
  :func:`repro.workload.estimation.fit_cs2_from_percentiles` estimates
  from observed latency percentiles.

All times are in intervals, matching the simulator's clock and the
``latency = t - arrival + 1`` convention of
:meth:`repro.serving.queue.VMQueue.serve`.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_integer

__all__ = [
    "sojourn_distribution",
    "sojourn_tail",
    "mean_sojourn",
    "kingman_waiting_time",
]


def _queue_pmf(queue_pmf) -> np.ndarray:
    pmf = np.asarray(queue_pmf, dtype=float)
    if pmf.ndim != 1 or pmf.size == 0:
        raise ValueError("queue_pmf must be a non-empty 1-D probability "
                         "vector over queue lengths 0..K")
    if np.any(pmf < 0) or not np.isclose(pmf.sum(), 1.0):
        raise ValueError("queue_pmf must be non-negative and sum to 1")
    return pmf


def sojourn_distribution(queue_pmf, capacity: int) -> np.ndarray:
    """Sojourn-time pmf of an admitted request under batch-FIFO service.

    ``queue_pmf[j]`` is the probability an arriving (and admitted) request
    finds ``j`` requests already waiting; the server completes ``capacity``
    requests per interval in FIFO order, so that request's sojourn is
    ``ceil((j + 1) / capacity)`` intervals (position ``j + 1`` in the
    queue).  Returns ``pmf`` with ``pmf[s]`` = P(T_S = s) for
    ``s = 0 .. ceil(K + 1 / capacity)``; ``pmf[0]`` is always 0 (service
    takes at least the arrival interval itself — the simulator's
    ``latency >= 1`` convention).
    """
    pmf = _queue_pmf(queue_pmf)
    capacity = check_integer(capacity, "capacity", minimum=1)
    max_s = -(-pmf.size // capacity)  # ceil(K + 1 / c), K = size - 1
    out = np.zeros(max_s + 1)
    for j, p in enumerate(pmf):
        s = -(-(j + 1) // capacity)
        out[s] += p
    return out


def sojourn_tail(queue_pmf, capacity: int, t: int) -> float:
    """Analytic SLA tail ``P(T_S > t)`` for an admitted request.

    The theory-side counterpart of
    :meth:`repro.serving.queue.LatencyHistogram.tail_probability`.
    """
    t = check_integer(t, "t", minimum=0)
    pmf = sojourn_distribution(queue_pmf, capacity)
    if t >= pmf.size - 1:
        return 0.0
    return float(pmf[t + 1:].sum())


def mean_sojourn(queue_pmf, capacity: int) -> float:
    """Mean sojourn ``E[T_S]`` implied by the arrival-time queue pmf."""
    pmf = sojourn_distribution(queue_pmf, capacity)
    return float(np.arange(pmf.size) @ pmf)


def kingman_waiting_time(rho: float, ca2: float, cs2: float,
                         mean_service: float) -> float:
    """Kingman's G/G/1 heavy-traffic mean waiting-time approximation.

    ``E[W] ≈ rho / (1 - rho) * (Ca² + Cs²) / 2 * E[S]`` where ``rho`` is
    the utilization, ``Ca²``/``Cs²`` the squared coefficients of variation
    of inter-arrival and service times, and ``E[S]`` the mean service
    time.  ``Cs²`` can be estimated from observed latency percentiles via
    :func:`repro.workload.estimation.fit_cs2_from_percentiles`.
    """
    if not 0.0 <= rho < 1.0:
        raise ValueError(f"rho must be in [0, 1), got {rho}")
    if ca2 < 0 or cs2 < 0:
        raise ValueError(
            f"squared variation coefficients must be >= 0, got "
            f"ca2={ca2}, cs2={cs2}")
    if mean_service <= 0:
        raise ValueError(f"mean_service must be > 0, got {mean_service}")
    return rho / (1.0 - rho) * (ca2 + cs2) / 2.0 * mean_service
