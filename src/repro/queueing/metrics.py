"""Summary metrics over queue occupancy distributions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QueueMetrics:
    """Moments and tail summaries of an occupancy distribution.

    Attributes
    ----------
    mean_occupancy:
        Expected number of busy windows.
    variance:
        Variance of the busy-window count.
    utilization:
        ``mean_occupancy / n_windows`` — average fraction of reserved
        capacity in use (low utilization motivates cutting blocks).
    full_probability:
        Probability all windows are busy.
    idle_probability:
        Probability no window is busy.
    """

    mean_occupancy: float
    variance: float
    utilization: float
    full_probability: float
    idle_probability: float


def summarize_occupancy(distribution: np.ndarray) -> QueueMetrics:
    """Compute :class:`QueueMetrics` from an occupancy pmf over ``0..K``.

    Parameters
    ----------
    distribution:
        Probability vector of length ``K + 1``; must sum to ~1.
    """
    pi = np.asarray(distribution, dtype=float)
    if pi.ndim != 1 or pi.size == 0:
        raise ValueError(f"distribution must be a non-empty 1-D array, got shape {pi.shape}")
    if np.any(pi < -1e-12) or not np.isclose(pi.sum(), 1.0, atol=1e-6):
        raise ValueError("distribution must be non-negative and sum to 1")
    K = pi.size - 1
    states = np.arange(K + 1)
    mean = float(states @ pi)
    var = float((states - mean) ** 2 @ pi)
    utilization = mean / K if K > 0 else 0.0
    return QueueMetrics(
        mean_occupancy=mean,
        variance=var,
        utilization=utilization,
        full_probability=float(pi[-1]),
        idle_probability=float(pi[0]),
    )
