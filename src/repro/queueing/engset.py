"""Continuous-time Engset loss system (M/M/K/K with finite sources).

The discrete Geom/Geom/K/K model converges to the Engset system when the
per-interval switch probabilities shrink with their ratio fixed (geometric
sojourns -> exponential sojourns).  We use the classical closed forms as an
independent analytic check of the matrix machinery:

    pi_j  proportional to  C(k, j) * alpha^j,     alpha = lambda / mu

where ``k`` sources think for Exp(lambda) and hold a server for Exp(mu).
For the discrete chain, ``alpha = p_on / p_off``.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln

from repro.utils.validation import check_integer, check_positive


def engset_distribution(k: int, n_servers: int, alpha: float) -> np.ndarray:
    """Stationary occupancy law of the Engset loss system.

    Parameters
    ----------
    k:
        Number of sources.
    n_servers:
        Number of servers ``K`` (occupancy states are ``0..K``).
    alpha:
        Offered load per free source, ``lambda / mu``.

    Returns
    -------
    numpy.ndarray
        Probabilities ``pi_0 .. pi_K``.  Computed in log-space so large ``k``
        does not overflow the binomial coefficients.
    """
    k = check_integer(k, "k", minimum=1)
    K = check_integer(n_servers, "n_servers", minimum=0, maximum=k)
    alpha = check_positive(alpha, "alpha")
    j = np.arange(K + 1)
    log_terms = (
        gammaln(k + 1) - gammaln(j + 1) - gammaln(k - j + 1) + j * np.log(alpha)
    )
    log_terms -= log_terms.max()
    terms = np.exp(log_terms)
    return terms / terms.sum()


def engset_blocking_probability(k: int, n_servers: int, alpha: float) -> float:
    """Time-blocking probability of the Engset system (all servers busy).

    Note this is *time* blocking (the fraction of time the system is full),
    matching :meth:`FiniteSourceGeomGeomK.time_blocking_probability`; call
    blocking seen by arrivals would use ``k - 1`` sources (the Engset
    arrival theorem).
    """
    return float(engset_distribution(k, n_servers, alpha)[-1])
