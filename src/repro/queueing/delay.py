"""Deferred-spike (waiting) metrics over the busy-block chain.

The paper's queue has *no waiting room*: a spike that finds every block busy
violates capacity.  An alternative service model defers the excess instead —
the VM runs degraded at its base allocation until a block frees (think CPU
caps rather than memory).  The demand process is unchanged (waiting does not
alter who is ON), so the same stationary law ``pi`` prices the degradation:

- backlog          ``B = (theta - K)^+``          (spikes waiting)
- P[wait]          ``P[theta > K]``               (= the paper's CVR)
- mean backlog     ``E[B] = sum_{m > K} (m - K) pi_m``
- mean wait        by Little's law over spike arrivals.

These metrics let an operator compare the two failure semantics — violate
vs degrade — on the same reservation.
"""

from __future__ import annotations

import numpy as np

from repro.queueing.geom_geom_k import FiniteSourceGeomGeomK
from repro.utils.validation import check_integer


def expected_backlog(model: FiniteSourceGeomGeomK, n_blocks: int) -> float:
    """Stationary mean number of spikes waiting for a block, ``E[(theta-K)^+]``."""
    K = check_integer(n_blocks, "n_blocks", minimum=0)
    pi = model.stationary_distribution()
    states = np.arange(pi.size)
    excess = np.maximum(states - K, 0)
    return float(excess @ pi)


def waiting_probability(model: FiniteSourceGeomGeomK, n_blocks: int) -> float:
    """Probability an interval has at least one spike waiting (= CVR)."""
    return model.overflow_probability(n_blocks)


def spike_arrival_rate(model: FiniteSourceGeomGeomK) -> float:
    """Long-run spikes starting per interval: ``E[k - theta] * p_on``."""
    return (model.k - model.expected_demand()) * model.p_on


def mean_wait_littles_law(model: FiniteSourceGeomGeomK, n_blocks: int) -> float:
    """Average intervals a spike spends waiting, by Little's law.

    ``W = E[backlog] / lambda`` with lambda the spike arrival rate.  Averaged
    over *all* spikes (most wait zero); condition on waiting by dividing by
    the waiting probability if needed.
    """
    lam = spike_arrival_rate(model)
    if lam <= 0.0:  # pragma: no cover - p_on > 0 guarantees lam > 0
        return 0.0
    return expected_backlog(model, n_blocks) / lam


def degradation_profile(model: FiniteSourceGeomGeomK,
                        max_blocks: int | None = None) -> list[dict[str, float]]:
    """Waiting metrics for every candidate block count.

    Returns one row per ``K`` in ``0..max_blocks`` (default ``k``) with keys
    ``n_blocks``, ``p_wait``, ``mean_backlog``, ``mean_wait`` — the table an
    operator scans to pick a reservation under a degradation SLA.
    """
    top = model.k if max_blocks is None else check_integer(
        max_blocks, "max_blocks", minimum=0
    )
    rows = []
    for K in range(top + 1):
        rows.append({
            "n_blocks": float(K),
            "p_wait": waiting_probability(model, K),
            "mean_backlog": expected_backlog(model, K),
            "mean_wait": mean_wait_littles_law(model, K),
        })
    return rows
