"""Queueing-theory substrate.

The paper formalizes the reserved blocks on a PM as a *discrete-time,
finite-source, K-window queue with geometric service times and no waiting
room* (finite-source Geom/Geom/K/K).  This package implements:

- :mod:`repro.queueing.geom_geom_k` — the discrete model: occupancy
  distribution, the overflow/CVR tail used by MapCal, and a true
  loss-system variant where excess spikes are clipped at K.
- :mod:`repro.queueing.engset` — the continuous-time Engset loss system,
  the classical limit of the discrete model as switch probabilities shrink;
  used as an analytic cross-check in the test suite.
- :mod:`repro.queueing.metrics` — occupancy/utilization/loss summary metrics.
- :mod:`repro.queueing.sojourn` — sojourn-time distributions, the analytic
  ``P(T_S > t)`` SLA tail, and Kingman's waiting-time approximation
  backing the request-level serving plane (:mod:`repro.serving`).
"""

from repro.queueing.delay import (
    degradation_profile,
    expected_backlog,
    mean_wait_littles_law,
    spike_arrival_rate,
    waiting_probability,
)
from repro.queueing.engset import engset_blocking_probability, engset_distribution
from repro.queueing.geom_geom_k import FiniteSourceGeomGeomK
from repro.queueing.metrics import QueueMetrics, summarize_occupancy
from repro.queueing.sojourn import (
    kingman_waiting_time,
    mean_sojourn,
    sojourn_distribution,
    sojourn_tail,
)
from repro.queueing.transient import (
    expected_time_to_violation,
    expected_violation_episode_length,
    occupancy_at,
    violation_probability_curve,
)

__all__ = [
    "degradation_profile",
    "expected_backlog",
    "mean_wait_littles_law",
    "spike_arrival_rate",
    "waiting_probability",
    "FiniteSourceGeomGeomK",
    "engset_blocking_probability",
    "engset_distribution",
    "QueueMetrics",
    "summarize_occupancy",
    "sojourn_distribution",
    "sojourn_tail",
    "mean_sojourn",
    "kingman_waiting_time",
    "expected_time_to_violation",
    "expected_violation_episode_length",
    "occupancy_at",
    "violation_probability_curve",
]
