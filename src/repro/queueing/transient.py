"""Transient analysis of the busy-block process.

The paper's guarantee is a *long-run* time fraction (CVR).  Operators also
ask transient questions: starting from all-OFF after consolidation, how does
the violation probability ramp up?  How long until the first violation?
How long does a violation episode last once it starts?  These quantities
come from the same (k+1)-state chain:

- :func:`occupancy_at` — the distribution of ``theta(t)`` after ``t`` steps
  (the paper's ``Pi_0 P^t``, Eq. 13, before the limit).
- :func:`violation_probability_curve` — ``P[theta(t) > K]`` over time; shows
  the warm-up the paper sidesteps by quoting the stationary value.
- :func:`expected_time_to_violation` — mean hitting time of the violation
  set ``{K+1..k}`` from a given start, via the fundamental-matrix linear
  system on the violation-states-absorbing chain.
- :func:`expected_violation_episode_length` — mean sojourn above K once a
  violation begins (conditional on the entry distribution), the flip side:
  with long spikes (small p_off) episodes are long even when rare.
"""

from __future__ import annotations

import numpy as np

from repro.markov.binomial import busy_block_kernel
from repro.utils.validation import check_integer, check_probability


def _kernel(k: int, p_on: float, p_off: float) -> np.ndarray:
    k = check_integer(k, "k", minimum=1)
    check_probability(p_on, "p_on", allow_zero=False)
    check_probability(p_off, "p_off", allow_zero=False)
    return busy_block_kernel(k, p_on, p_off)


def occupancy_at(k: int, p_on: float, p_off: float, t: int,
                 *, initial_state: int = 0) -> np.ndarray:
    """Distribution of the busy-block count after ``t`` steps.

    Starts from a point mass at ``initial_state`` (the paper's ``Pi_0`` is
    state 0 — all VMs OFF right after consolidation).
    """
    t = check_integer(t, "t", minimum=0)
    P = _kernel(k, p_on, p_off)
    check_integer(initial_state, "initial_state", minimum=0, maximum=k)
    pi = np.zeros(k + 1)
    pi[initial_state] = 1.0
    # Repeated squaring for large t, plain multiplication for small t.
    if t > 64:
        Pt = np.linalg.matrix_power(P, t)
        return pi @ Pt
    for _ in range(t):
        pi = pi @ P
    return pi


def violation_probability_curve(k: int, p_on: float, p_off: float,
                                n_blocks: int, horizon: int,
                                *, initial_state: int = 0) -> np.ndarray:
    """``P[theta(t) > K]`` for ``t = 0..horizon`` from a point-mass start.

    Converges to the stationary overflow probability (the CVR bound input);
    the curve shows how quickly — with the paper's defaults the warm-up from
    all-OFF lasts tens of intervals.
    """
    K = check_integer(n_blocks, "n_blocks", minimum=0)
    horizon = check_integer(horizon, "horizon", minimum=0)
    P = _kernel(k, p_on, p_off)
    check_integer(initial_state, "initial_state", minimum=0, maximum=k)
    pi = np.zeros(k + 1)
    pi[initial_state] = 1.0
    out = np.empty(horizon + 1)
    for t in range(horizon + 1):
        out[t] = pi[K + 1:].sum() if K < k else 0.0
        pi = pi @ P
    return out


def expected_time_to_violation(k: int, p_on: float, p_off: float,
                               n_blocks: int, *, initial_state: int = 0) -> float:
    """Mean steps until ``theta(t) > K`` first holds, from ``initial_state``.

    Solves ``(I - Q) h = 1`` where ``Q`` is the kernel restricted to the
    non-violating states ``{0..K}`` (violating states absorbing).  Returns
    ``inf`` when ``K >= k`` (violation impossible) and 0 when the start is
    already violating.
    """
    K = check_integer(n_blocks, "n_blocks", minimum=0)
    check_integer(initial_state, "initial_state", minimum=0, maximum=k)
    if K >= k:
        return float("inf")
    if initial_state > K:
        return 0.0
    P = _kernel(k, p_on, p_off)
    Q = P[: K + 1, : K + 1]
    h = np.linalg.solve(np.eye(K + 1) - Q, np.ones(K + 1))
    if np.any(h <= 0.0):
        # Rare-event regime: (I - Q) is nearly singular (escape mass ~1e-16)
        # and float64 loses every significant digit.  Retry in extended
        # precision via Gaussian elimination on longdouble.
        A = (np.eye(K + 1) - Q).astype(np.longdouble)
        b = np.ones(K + 1, dtype=np.longdouble)
        n = K + 1
        for col in range(n):
            pivot = col + int(np.argmax(np.abs(A[col:, col])))
            if pivot != col:
                A[[col, pivot]] = A[[pivot, col]]
                b[[col, pivot]] = b[[pivot, col]]
            factor = A[col + 1:, col] / A[col, col]
            A[col + 1:] -= factor[:, None] * A[col]
            b[col + 1:] -= factor * b[col]
        h_ld = np.empty(n, dtype=np.longdouble)
        for row in range(n - 1, -1, -1):
            h_ld[row] = (b[row] - A[row, row + 1:] @ h_ld[row + 1:]) / A[row, row]
        h = h_ld
        if np.any(h <= 0.0):  # pragma: no cover - beyond longdouble too
            return float("inf")
    return float(h[initial_state])


def expected_violation_episode_length(k: int, p_on: float, p_off: float,
                                      n_blocks: int) -> float:
    """Mean consecutive violating intervals per violation episode.

    Computed exactly from stationary flow balance: the long-run rate of
    *entering* the violating set from outside is
    ``r = sum_{i<=K} pi_i * P[i -> >K]``, each episode contributes one entry,
    and the long-run fraction of time spent violating is ``CVR``; hence the
    mean episode length is ``CVR / r`` (renewal-reward).  Returns 0 when
    violation is impossible.
    """
    K = check_integer(n_blocks, "n_blocks", minimum=0)
    if K >= k:
        return 0.0
    P = _kernel(k, p_on, p_off)
    from repro.markov.chain import DiscreteMarkovChain

    pi = DiscreteMarkovChain(P).stationary_distribution()
    enter_rate = float(pi[: K + 1] @ P[: K + 1, K + 1:].sum(axis=1))
    cvr = float(pi[K + 1:].sum())
    if enter_rate <= 0.0:  # pragma: no cover - positive kernel prevents this
        return 0.0
    return cvr / enter_rate
