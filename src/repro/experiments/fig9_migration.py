"""Figure 9: runtime performance with live migration.

QUEUE / RB / RB-EX placements of Table I web-server fleets run for
100 intervals under the dynamic scheduler; per strategy and pattern we
report average (min/max over repetitions) of the two paper metrics:

- total number of migrations (performance proxy), and
- PMs used at the end of the evaluation period (energy proxy).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentResult
from repro.experiments.config import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    strategies_for_runtime,
)
from repro.simulation.scheduler import run_simulation
from repro.utils.rng import SeedLike, spawn_children
from repro.workload.patterns import PatternName, make_pms, table_i_vms

PATTERNS: tuple[PatternName, ...] = ("equal", "small", "large")
PATTERN_LABELS = {"equal": "Rb=Re", "small": "Rb>Re", "large": "Rb<Re"}


def run_fig9(
    *,
    n_vms: int = 120,
    n_repetitions: int = 10,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    seed: SeedLike = 2013,
) -> ExperimentResult:
    """Regenerate Fig. 9(a,b): migrations and final PMs used.

    The paper runs each setting 10 times and shows avg with min/max
    whiskers; rows carry all three for both metrics.
    """
    result = ExperimentResult(
        experiment_id="fig9",
        description="Runtime with live migration: total migrations / final PMs used",
        params={
            "rho": settings.rho, "n_vms": n_vms,
            "n_intervals": settings.n_intervals, "delta": settings.delta,
            "repetitions": n_repetitions,
        },
        headers=["pattern", "strategy",
                 "migrations_avg", "migrations_min", "migrations_max",
                 "final_pms_avg", "final_pms_min", "final_pms_max",
                 "initial_pms_avg"],
    )
    strategies = strategies_for_runtime(settings)
    rngs = iter(spawn_children(seed, len(PATTERNS) * n_repetitions))
    for pattern in PATTERNS:
        metrics = {
            name: {"mig": [], "pms": [], "init": []} for name in strategies
        }
        for _ in range(n_repetitions):
            rng = next(rngs)
            vms = table_i_vms(pattern, n_vms, p_on=settings.p_on,
                              p_off=settings.p_off, seed=rng)
            pms = make_pms(n_vms, seed=rng)
            sim_seed = int(rng.integers(0, 2**62))
            for name, placer in strategies.items():
                placement = placer.place(vms, pms)
                sim = run_simulation(
                    vms, pms, placement,
                    n_intervals=settings.n_intervals, seed=sim_seed,
                )
                metrics[name]["mig"].append(sim.total_migrations)
                metrics[name]["pms"].append(sim.final_pms_used)
                metrics[name]["init"].append(sim.initial_pms_used)
        for name in strategies:
            mig = np.array(metrics[name]["mig"])
            pms_used = np.array(metrics[name]["pms"])
            result.add_row(
                PATTERN_LABELS[pattern], name,
                float(mig.mean()), int(mig.min()), int(mig.max()),
                float(pms_used.mean()), int(pms_used.min()), int(pms_used.max()),
                float(np.mean(metrics[name]["init"])),
            )
    result.notes.append(
        "expected shape: RB migrates far more than QUEUE; RB-EX in between; "
        "RB ends with fewer PMs than QUEUE (cycle migration keeps it low); "
        "QUEUE incurs very few migrations"
    )
    return result
