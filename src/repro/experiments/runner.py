"""Command-line runner: experiments plus the consolidation toolchain.

Regenerate the paper's artifacts:

    python -m repro list                 # what can be run
    python -m repro run fig5             # one artifact
    python -m repro run all              # everything
    python -m repro run fig10 --plot     # with an ASCII figure
    python -m repro run fig5 -o out/     # persist tables to a directory

Operate on files (the production-shaped workflow):

    python -m repro fit traces.csv -o instance.json      # traces -> specs
    python -m repro consolidate instance.json -o map.json  # specs -> placement

``fit`` consumes a CSV trace matrix (see ``repro.workload.io``) and writes
an instance whose PM fleet defaults to one 100-unit PM per VM;
``consolidate`` places it with QueuingFFD and reports the packing.

Watch and diff runs (the observability plane):

    python -m repro dashboard fig6 --follow            # live panels
    python -m repro dashboard fig6_cvr --once --html obs.html
    python -m repro dashboard x --from-jsonl run.jsonl # replay a trace
    python -m repro compare base.jsonl new.jsonl       # regression diff

Profile and gate performance (the perf observatory):

    python -m repro perf --sweep 50,200,800            # scaling probe
    python -m repro perf --budget benchmarks/perf_budgets.json
    python -m repro compare --budget benchmarks/perf_budgets.json \
        benchmarks/results/BENCH_PERF_timings.json     # CI perf gate
    python -m repro compare old_timings.json new_timings.json \
        --tolerance 'sweep.*.median_seconds=25'        # perf trend diff

Explain decisions (provenance, see docs/OBSERVABILITY.md):

    python -m repro explain run.jsonl                  # decision overview
    python -m repro explain run.jsonl --vm 19          # why here, why not there
    python -m repro explain run.jsonl --tick 92        # a replan + evidence
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable

from repro.analysis.report import ExperimentResult, render_result
from repro.experiments.fig5_packing import run_fig5
from repro.experiments.fig6_cvr import run_fig6
from repro.experiments.fig7_cost import run_fig7
from repro.experiments.fig8_trace import run_fig8
from repro.experiments.fig9_migration import run_fig9
from repro.experiments.fig10_timeline import run_fig10
from repro.experiments.table1 import run_table1

EXPERIMENTS: dict[str, tuple[Callable[[], ExperimentResult], str]] = {
    "table1": (run_table1, "Table I: workload pattern specifications"),
    "fig5": (lambda: run_fig5(), "Fig. 5: packing result (QUEUE/RP/RB)"),
    "fig6": (lambda: run_fig6(), "Fig. 6: runtime CVR per placement"),
    "fig7": (lambda: run_fig7(), "Fig. 7: computation cost of Algorithm 2"),
    "fig8": (lambda: run_fig8(), "Fig. 8: sample web-server workload"),
    "fig9": (lambda: run_fig9(), "Fig. 9: live-migration runtime metrics"),
    "fig10": (lambda: run_fig10(), "Fig. 10: migration-event timeline"),
}


def _register_ablations() -> None:
    """Expose every ablation study under its experiment id."""
    from repro.experiments.ablations import ABLATIONS

    for exp_id, (fn, desc) in ABLATIONS.items():
        EXPERIMENTS[exp_id] = (fn, f"Ablation: {desc}")


def _register_perf_probe() -> None:
    """Expose the perf-observatory probe to the (durable) bench runner."""
    from repro.experiments.perf_probe import run_perf_scaling

    EXPERIMENTS["perf_scaling"] = (
        run_perf_scaling,
        "Perf probe: deterministic scaling facts from the observatory")


_register_ablations()
_register_perf_probe()


def _plot(result: ExperimentResult) -> str | None:
    """Best-effort ASCII rendering of the figure behind a result table."""
    from repro.viz.ascii_charts import bar_chart, line_chart, sparkline

    if result.experiment_id == "fig5":
        data = {}
        for row in result.rows:
            data[f"{row[0]} n={row[1]} QUEUE"] = row[2]
            data[f"{row[0]} n={row[1]} RP"] = row[3]
            data[f"{row[0]} n={row[1]} RB"] = row[4]
        return bar_chart(data, title="PMs used")
    if result.experiment_id == "fig8":
        return "requests/interval: " + sparkline(
            [float(r) for r in result.column("requests")]
        )
    if result.experiment_id == "fig9":
        data = {f"{r[0]} {r[1]}": r[2] for r in result.rows}
        return bar_chart(data, title="total migrations (avg of 10 runs)")
    if result.experiment_id == "fig10":
        series = {
            name: [float(v) for v in result.column(f"{name}_cum_migrations")]
            for name in ("QUEUE", "RB", "RB-EX")
        }
        return line_chart(series, title="cumulative migrations over time")
    if result.experiment_id == "fig6":
        data = {f"{r[0]} {r[1]}": r[2] for r in result.rows}
        return bar_chart(data, value_fmt=".4f", title="mean CVR")
    return None


def build_parser() -> argparse.ArgumentParser:
    """The runner's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment or 'all'")
    run.add_argument("experiment", choices=[*EXPERIMENTS, "all"])
    run.add_argument("--plot", action="store_true",
                     help="also draw an ASCII rendering of the figure")
    run.add_argument("-o", "--output-dir", type=Path, default=None,
                     help="write each table to <dir>/<id>.txt")

    fit = sub.add_parser("fit", help="fit ON-OFF specs to a CSV trace matrix")
    fit.add_argument("traces", type=Path, help="CSV written by save_traces")
    fit.add_argument("-o", "--output", type=Path, default=None,
                     help="write the fitted instance JSON here")
    fit.add_argument("--hmm", action="store_true",
                     help="use the Baum-Welch estimator (robust to noise)")
    fit.add_argument("--margin", type=float, default=None,
                     help="size demand levels at this percentile (e.g. 0.95)")
    fit.add_argument("--pm-capacity", type=float, default=100.0,
                     help="capacity of each PM in the emitted instance")

    cons = sub.add_parser("consolidate",
                          help="place an instance JSON with QueuingFFD")
    cons.add_argument("instance", type=Path,
                      help="instance JSON written by save_instance / fit")
    cons.add_argument("-o", "--output", type=Path, default=None,
                      help="write the placement JSON here")
    cons.add_argument("--rho", type=float, default=0.01)
    cons.add_argument("--d", type=int, default=16)
    cons.add_argument("--exact", action="store_true",
                      help="use the exact heterogeneous (Poisson-binomial) "
                           "variant instead of rounding")

    bench = sub.add_parser(
        "bench",
        help="run the figure/ablation suite, optionally in parallel")
    bench.add_argument("--parallel", "-j", type=int, default=1, metavar="N",
                       help="worker processes (1 = serial, identical "
                            "results)")
    bench.add_argument("--filter", default="*", metavar="GLOB",
                       help="fnmatch glob over experiment ids "
                            "(e.g. 'fig*', 'ablation_*')")
    bench.add_argument("-o", "--output-dir", type=Path,
                       default=Path("benchmarks") / "results",
                       help="aggregate tables + BENCH_results.json here")
    bench.add_argument("--seed", type=int, default=None,
                       help="base seed: derive per-job seeds for the "
                            "figure experiments (default: each "
                            "experiment's published seed)")
    bench.add_argument("--progress-jsonl", type=Path, default=None,
                       help="stream per-job progress events to this JSONL "
                            "file")
    bench.add_argument("--list", action="store_true", dest="list_jobs",
                       help="list matching jobs and exit")
    bench.add_argument("--resume", type=Path, default=None, metavar="RUN_DIR",
                       help="resume an interrupted run: re-execute only "
                            "jobs without a verified result in RUN_DIR's "
                            "journal, then re-aggregate")
    bench.add_argument("--chaos", default=None, metavar="SPEC",
                       help="deterministic fault injection, e.g. "
                            "'kill-worker:p=0.2,stall:p=0.1' (implies the "
                            "durable runner)")
    bench.add_argument("--max-attempts", type=int, default=3, metavar="N",
                       help="attempts per job before quarantine "
                            "(durable runner)")
    bench.add_argument("--job-timeout", type=float, default=900.0,
                       metavar="SECONDS",
                       help="per-attempt wall-clock ceiling "
                            "(durable runner)")
    bench.add_argument("--heartbeat-timeout", type=float, default=15.0,
                       metavar="SECONDS",
                       help="kill a worker whose heartbeat is older than "
                            "this (durable runner)")
    bench.add_argument("--keep-checkpoints", type=int, default=None,
                       metavar="K",
                       help="rollback-checkpoint retention depth for "
                            "autopilot jobs (durable runner; exported as "
                            "REPRO_KEEP_CHECKPOINTS)")

    auto = sub.add_parser(
        "autopilot",
        help="closed-loop run: drift-detect -> refit -> guarded replan "
             "with checkpoint rollback")
    auto.add_argument("recipe", choices=["regime-shift"],
                      help="scenario recipe (regime-shift: fleet-wide "
                           "p_on drift mid-run)")
    auto.add_argument("-n", "--intervals", type=int, default=420)
    auto.add_argument("--seed", type=int, default=230)
    auto.add_argument("--n-vms", type=int, default=48)
    auto.add_argument("--drift-at", type=int, default=60,
                      help="interval at which the true p_on shifts")
    auto.add_argument("--drift-p-on", type=float, default=0.05,
                      help="post-shift true p_on for every VM")
    auto.add_argument("--budget", type=int, default=24,
                      help="migration budget per replan")
    auto.add_argument("--rho", type=float, default=0.01)
    auto.add_argument("--never-adapt", action="store_true",
                      help="run the identical stack with the controller "
                           "off (the compare baseline)")
    auto.add_argument("--force-bad-refit", action="store_true",
                      help="rollback drill: replace the refit with an "
                           "adversarially wrong one; exit 1 unless the "
                           "guard rolls back with byte-for-byte parity")
    auto.add_argument("--checkpoint-dir", type=Path, default=None,
                      help="persist rollback checkpoints (+ fsync'd "
                           "index) in this directory")
    auto.add_argument("--keep-checkpoints", type=int, default=None,
                      metavar="K",
                      help="retention depth for --checkpoint-dir "
                           "(default: REPRO_KEEP_CHECKPOINTS or 3)")
    auto.add_argument("--jsonl", type=Path, default=None,
                      help="record the run's event stream here "
                           "(feed to `repro compare`)")

    trace = sub.add_parser(
        "trace",
        help="run an experiment under full telemetry (events/metrics/spans)")
    trace.add_argument("experiment", choices=list(EXPERIMENTS))
    trace.add_argument("--jsonl", type=Path, default=None,
                       help="write the structured event stream to this "
                            "JSONL file (replayable)")
    trace.add_argument("--metrics-json", type=Path, default=None,
                       help="write the metrics registry snapshot to this "
                            "JSON file")
    trace.add_argument("--quiet", action="store_true",
                       help="suppress the experiment table, print only "
                            "the telemetry digest")

    dash = sub.add_parser(
        "dashboard",
        help="run observatory: live panels, SLO alerts, drift detection")
    dash.add_argument("experiment",
                      help="experiment recipe (e.g. fig6, fig6_cvr) — "
                           "ignored with --from-jsonl")
    mode = dash.add_mutually_exclusive_group()
    mode.add_argument("--follow", action="store_true",
                      help="repaint panels while the run executes (default)")
    mode.add_argument("--from-jsonl", type=Path, default=None,
                      help="render from a recorded trace; no simulator runs")
    dash.add_argument("--once", action="store_true",
                      help="run silently, print only the final frame")
    dash.add_argument("--html", type=Path, default=None,
                      help="also write a self-contained HTML page here")
    dash.add_argument("--jsonl", type=Path, default=None,
                      help="record the observed run's event stream here")
    dash.add_argument("-n", "--intervals", type=int, default=240,
                      help="intervals to simulate (live modes)")
    dash.add_argument("--seed", type=int, default=2013)
    dash.add_argument("--refresh", type=int, default=10,
                      help="repaint every this many intervals (--follow)")
    dash.add_argument("--rho", type=float, default=0.01,
                      help="CVR error budget for the default SLO rules")
    dash.add_argument("--rules", type=Path, default=None,
                      help="YAML/JSON SLO rule file (see EXPERIMENTS.md)")
    dash.add_argument("--overcommit", type=float, default=1.0,
                      help="divide PM capacity by this factor "
                           "(>1 forces CVR budget burn)")
    dash.add_argument("--inject-drift", type=float, default=None,
                      metavar="P_ON",
                      help="shift every VM's p_on to this value mid-run")
    dash.add_argument("--drift-at", type=int, default=0,
                      help="interval at which --inject-drift applies")

    comp = sub.add_parser(
        "compare",
        help="regression-diff two recorded JSONL traces or perf metrics "
             "files (exit 1 on regression / budget violation)")
    comp.add_argument("baseline", type=Path,
                      help="baseline trace/metrics file (with --budget: "
                           "the single metrics file to gate)")
    comp.add_argument("candidate", type=Path, nargs="?", default=None)
    comp.add_argument("--rtol", type=float, default=0.05,
                      help="relative tolerance below which a metric is "
                           "'unchanged'")
    comp.add_argument("--all", action="store_true", dest="show_unchanged",
                      help="also list unchanged metrics")
    comp.add_argument("--ignore", action="append", default=[],
                      metavar="METRIC",
                      help="exclude this metric from the verdict (repeat "
                           "for several; still rendered, marked 'ig')")
    comp.add_argument("--tolerance", action="append", default=[],
                      metavar="METRIC=PCT",
                      help="per-metric rtol override in percent, e.g. "
                           "'sweep.*.median_seconds=25' gives that metric "
                           "25%% slack while everything else stays at "
                           "--rtol (repeatable; fnmatch patterns)")
    comp.add_argument("--budget", type=Path, default=None,
                      metavar="BUDGETS_JSON",
                      help="check the (single) metrics file against "
                           "committed perf budgets instead of diffing "
                           "two runs")

    perf = sub.add_parser(
        "perf",
        help="scaling probe: sweep fleet sizes, attribute tick phases, "
             "emit BENCH_PERF.json + Chrome trace")
    perf.add_argument("--sweep", default="50,200,800", metavar="N1,N2,...",
                      help="comma-separated fleet sizes (default "
                           "50,200,800)")
    perf.add_argument("--mode", choices=["scalar", "vector"],
                      default="vector",
                      help="tick implementation to probe")
    perf.add_argument("-n", "--intervals", type=int, default=50,
                      help="simulated intervals per run")
    perf.add_argument("--repeats", type=int, default=3,
                      help="instrumented repeats per size (median wall)")
    perf.add_argument("--seed", type=int, default=2013)
    perf.add_argument("-o", "--output-dir", type=Path,
                      default=Path("benchmarks") / "results",
                      help="write BENCH_PERF.json, the timings sidecar "
                           "and the Chrome trace here")
    perf.add_argument("--budget", type=Path, default=None,
                      metavar="BUDGETS_JSON",
                      help="gate the fresh timings against these budgets "
                           "(exit 1 on violation)")
    perf.add_argument("--max-telemetry-fraction", type=float, default=0.25,
                      metavar="FRACTION",
                      help="observer-effect self-check: fail when the "
                           "telemetry pipeline exceeds this share of "
                           "tick time at any size")
    perf.add_argument("--slow-phase", default=None, metavar="PHASE=SECONDS",
                      help="test hook: sleep this long inside the given "
                           "phase every tick (demand, failures, "
                           "scheduler, monitor)")
    perf.add_argument("--no-memory", action="store_true",
                      help="skip the tracemalloc allocation pass")

    explain = sub.add_parser(
        "explain",
        help="decision provenance: reconstruct why a VM landed where it "
             "did (and why not elsewhere) from a recorded JSONL trace")
    explain.add_argument("trace", type=Path,
                         help="recorded JSONL event stream (e.g. from "
                              "`repro trace --jsonl` or "
                              "`repro autopilot --jsonl`)")
    what = explain.add_mutually_exclusive_group()
    what.add_argument("--vm", type=int, default=None,
                      help="every decision that concerned this VM")
    what.add_argument("--pm", type=int, default=None,
                      help="every decision in which this PM appeared "
                           "(winner, candidate, source, or move endpoint)")
    what.add_argument("--tick", type=int, default=None,
                      help="every decision taken at this interval")
    what.add_argument("--decision", type=int, default=None,
                      help="one decision by stream ordinal (the 'seq' "
                           "column of the overview) or producer id")
    explain.add_argument("-o", "--output", type=Path, default=None,
                         help="also write the rendered explanation here")

    from repro.service.cli import add_serve_parser

    add_serve_parser(sub)

    sub.add_parser("claims",
                   help="machine-check the paper's headline claims")
    return parser


def _cmd_fit(args) -> int:
    try:
        return _run_fit(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _run_fit(args) -> int:
    from repro.core.types import PMSpec
    from repro.markov.hmm import fit_hmm_onoff
    from repro.workload.estimation import fit_onoff
    from repro.workload.io import load_traces, save_instance

    traces = load_traces(args.traces)
    specs = []
    print(f"{'vm':>4s} {'p_on':>8s} {'p_off':>8s} {'R_b':>8s} {'R_e':>8s} "
          f"{'transitions':>11s}")
    for i in range(traces.shape[0]):
        if args.hmm:
            fit = fit_hmm_onoff(traces[i])
        else:
            fit = fit_onoff(traces[i], percentile_margin=args.margin)
        specs.append(fit.to_vmspec())
        print(f"{i:4d} {fit.p_on:8.4f} {fit.p_off:8.4f} {fit.r_base:8.2f} "
              f"{fit.r_extra:8.2f} {fit.n_transitions:11d}")
    if args.output is not None:
        pms = [PMSpec(args.pm_capacity)] * len(specs)
        save_instance(args.output, specs, pms)
        print(f"[instance with {len(specs)} VMs written to {args.output}]")
    return 0


def _cmd_consolidate(args) -> int:
    try:
        return _run_consolidate(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _run_consolidate(args) -> int:
    from repro.core.heterogeneous import HeterogeneousQueuingFFD
    from repro.core.queuing_ffd import QueuingFFD
    from repro.workload.io import load_instance, save_placement

    vms, pms = load_instance(args.instance)
    if args.exact:
        placer = HeterogeneousQueuingFFD(rho=args.rho, d=args.d)
    else:
        placer = QueuingFFD(rho=args.rho, d=args.d)
    placement = placer.place(vms, pms)
    print(f"{placer.name}: {len(vms)} VMs -> {placement.n_used_pms} PMs "
          f"(rho={args.rho}, d={args.d})")
    for pm_idx in placement.used_pms():
        hosted = placement.vms_on(int(pm_idx))
        base = sum(vms[i].r_base for i in hosted)
        print(f"  PM {int(pm_idx):3d}: {len(hosted):2d} VMs, "
              f"base load {base:7.1f} / {pms[int(pm_idx)].capacity:.1f}")
    if args.output is not None:
        save_placement(args.output, placement)
        print(f"[placement written to {args.output}]")
    return 0


def _cmd_bench(args) -> int:
    """Fan the figure/ablation suite across workers; aggregate results.

    Routing: plain serial runs (no chaos, no resume) execute in-process via
    :func:`repro.perf.bench.run_bench`; anything needing supervision —
    ``--parallel > 1``, ``--chaos``, ``--resume`` — goes through the
    durable worker pool (:mod:`repro.experiments.durability`), which adds
    heartbeats, timeouts, retries, quarantine, and the crash-safe journal.
    """
    from repro.perf.bench import iter_job_names, run_bench
    from repro.perf.cache import cache_stats

    if args.list_jobs:
        for name in iter_job_names(args.filter):
            print(name)
        return 0

    def printer(event) -> None:
        if event.kind == "bench_job_finished":
            status = "ok" if event.ok else f"FAILED ({event.error})"
            print(f"  [{event.job}] {status} in {event.seconds:.1f}s",
                  flush=True)
        elif event.kind == "job_retried":
            print(f"  [{event.job}] attempt {event.attempt} failed "
                  f"({event.error}); retrying in {event.backoff_seconds:.1f}s",
                  flush=True)
        elif event.kind == "job_quarantined":
            print(f"  [{event.job}] quarantined after {event.attempts} "
                  f"attempts ({event.error})", flush=True)
        elif event.kind == "run_resumed":
            print(f"  [resume] {event.completed} job(s) restored, "
                  f"{event.remaining} to run", flush=True)

    durable = (args.resume is not None or args.chaos is not None
               or args.parallel > 1)
    interrupted = False
    report = None
    t0 = time.perf_counter()
    try:
        if durable:
            from repro.experiments.durability import (
                BenchRetryPolicy,
                ChaosConfig,
                run_durable_bench,
            )

            chaos = None
            if args.chaos is not None:
                chaos = ChaosConfig.parse(
                    args.chaos, seed=args.seed if args.seed is not None else 0)
            output_dir = (args.resume if args.resume is not None
                          else args.output_dir)
            report = run_durable_bench(
                args.filter,
                parallel=args.parallel,
                output_dir=output_dir,
                base_seed=args.seed,
                retry=BenchRetryPolicy(max_attempts=args.max_attempts),
                job_timeout=args.job_timeout,
                heartbeat_timeout=args.heartbeat_timeout,
                chaos=chaos,
                resume=args.resume is not None,
                progress_path=args.progress_jsonl,
                on_event=printer,
                install_signal_handlers=True,
                keep_checkpoints=args.keep_checkpoints,
            )
            results = report.results
            interrupted = report.interrupted
        else:
            if args.keep_checkpoints is not None:
                print("note: --keep-checkpoints applies to the durable "
                      "runner (-j > 1, --chaos or --resume); ignored",
                      file=sys.stderr)
            output_dir = args.output_dir
            results = run_bench(
                args.filter,
                parallel=args.parallel,
                output_dir=output_dir,
                progress_path=args.progress_jsonl,
                base_seed=args.seed,
                on_event=printer,
            )
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - t0
    failed = [r for r in results if not r.ok]
    mode = (f"{args.parallel} workers" if args.parallel > 1 else "serial")
    if durable:
        mode += ", durable"
    print(f"[{len(results)} jobs in {elapsed:.1f}s ({mode}); "
          f"results in {output_dir}]")
    if report is not None and (report.retried or report.quarantined):
        print(f"[recovery: {report.retried} retr"
              f"{'y' if report.retried == 1 else 'ies'}, "
              f"{len(report.quarantined)} quarantined]")
    stats = cache_stats()
    if stats["hits"] + stats["misses"]:
        print(f"[mapcal cache: {stats['hits']:.0f} hits / "
              f"{stats['misses']:.0f} misses "
              f"(hit rate {stats['hit_rate']:.1%})]")
    for r in failed:
        print(f"FAILED {r.name}: {r.error}", file=sys.stderr)
    if interrupted:
        print(f"interrupted; resume with: python -m repro bench "
              f"--resume {output_dir}", file=sys.stderr)
        return 130
    return 1 if failed else 0


def _cmd_autopilot(args) -> int:
    """Run the closed-loop controller (or its baseline/drill variants).

    Three modes share one stack (``build_autopilot_scenario``):

    - default: :class:`repro.autopilot.Autopilot` reacting to the regime
      shift — refit, guarded replan, rollback on regression;
    - ``--never-adapt``: the identical scenario with the controller off,
      recorded as the comparison baseline;
    - ``--force-bad-refit``: the rollback drill — the refit is replaced
      with an adversarially wrong one on a fleet whose real drift is
      harmless, so the only way CVR regresses is the bad replan.  Exits
      1 unless the guard rolled back with byte-for-byte state parity.
    """
    from repro.autopilot import Autopilot, AutopilotConfig, adversarial_refit
    from repro.core.types import PMSpec, VMSpec
    from repro.experiments.autopilot_ablation import (
        build_autopilot_scenario,
        regime_shift_hook,
    )
    from repro.observability import Observatory
    from repro.telemetry import JSONLSink, RingBufferSink, Telemetry
    from repro.workload.patterns import generate_pattern_instance

    if args.force_bad_refit and args.never_adapt:
        print("error: --force-bad-refit needs the controller; drop "
              "--never-adapt", file=sys.stderr)
        return 2

    if args.force_bad_refit:
        # generous capacity + a mild true drift: the fleet is healthy
        # unless the (injected, wrong) refit repacks it badly
        vms = [VMSpec(0.05, 0.15, 2.0, 8.0) for _ in range(40)]
        pms = [PMSpec(100.0) for _ in range(10)]
        drift_at, drift_p_on = 30, 0.12
        config = AutopilotConfig(min_refit_samples=40, guard_window=20,
                                 migration_budget=40,
                                 keep_checkpoints=args.keep_checkpoints)
        refit_override = adversarial_refit
    else:
        vms, pms = generate_pattern_instance("equal", args.n_vms,
                                             seed=args.seed)
        drift_at, drift_p_on = args.drift_at, args.drift_p_on
        config = AutopilotConfig(migration_budget=args.budget,
                                 keep_checkpoints=args.keep_checkpoints)
        refit_override = None

    sinks = ([JSONLSink(args.jsonl)] if args.jsonl is not None
             else [RingBufferSink()])
    tel = Telemetry(*sinks)
    obs = Observatory(rho=args.rho)
    sc = build_autopilot_scenario(vms, pms, rho=args.rho, telemetry=tel,
                                  observatory=obs)
    hook = regime_shift_hook(sc, shift_at=drift_at, p_on=drift_p_on)
    stats = None
    t0 = time.perf_counter()
    try:
        if args.never_adapt:
            report = sc.run(args.intervals, seed=args.seed, on_tick=hook)
        else:
            pilot = Autopilot(sc, config=config,
                              checkpoint_dir=args.checkpoint_dir,
                              refit_override=refit_override)
            stats = pilot.run(args.intervals, seed=args.seed, on_tick=hook)
            report = stats.report
    finally:
        tel.close()
    elapsed = time.perf_counter() - t0

    mode = ("never-adapt" if args.never_adapt
            else "rollback drill" if args.force_bad_refit else "autopilot")
    print(f"[{args.recipe} ({mode}): {len(vms)} VMs / {len(pms)} PMs, "
          f"{args.intervals} intervals, drift p_on->{drift_p_on} at "
          f"t={drift_at}, {elapsed:.1f}s]")
    if stats is not None:
        print(stats.summary())
        if stats.checkpoints:
            print(f"checkpoints retained: "
                  f"{', '.join(Path(p).name for p in stats.checkpoints)}")
    print(f"post-shift CVR (windowed): {obs.recorder.cvr():.4f}")
    print(f"SLO alerts fired: {obs.slo.fired_total}, "
          f"active at end: {len(obs.slo.active)}")
    print(f"migrations: {report.total_migrations}")
    if args.jsonl is not None:
        print(f"[{tel.events.emitted} events written to {args.jsonl}]")
    if args.force_bad_refit:
        ok = stats.replans_rolled_back >= 1 and stats.rollback_parity
        print(f"drill: rollbacks={stats.replans_rolled_back}, "
              f"parity={'ok' if stats.rollback_parity else 'BROKEN'} -> "
              f"{'PASS' if ok else 'FAIL'}")
        return 0 if ok else 1
    return 0


def _cmd_trace(args) -> int:
    """Run one experiment inside a :func:`repro.telemetry.tracing` block.

    The ambient-default mechanism does the instrumentation: every scenario,
    scheduler, injector and placer constructed while the block is active
    resolves the installed context, so experiment code needs no changes.
    """
    from repro.telemetry import JSONLSink, Telemetry, tracing

    fn, _ = EXPERIMENTS[args.experiment]
    sinks = [JSONLSink(args.jsonl)] if args.jsonl is not None else []
    tel = Telemetry(*sinks)
    t0 = time.perf_counter()
    try:
        with tracing(tel):
            result = fn()
    finally:
        tel.close()
    elapsed = time.perf_counter() - t0
    if not args.quiet:
        print(render_result(result))
    print(f"[{args.experiment} traced in {elapsed:.1f}s]")
    print(tel.digest())
    if args.jsonl is not None:
        print(f"[{tel.events.emitted} events written to {args.jsonl}]")
    if args.metrics_json is not None:
        args.metrics_json.parent.mkdir(parents=True, exist_ok=True)
        args.metrics_json.write_text(tel.metrics.to_json(indent=2) + "\n")
        print(f"[metrics snapshot written to {args.metrics_json}]")
    return 0


def _cmd_dashboard(args) -> int:
    from repro.observability.dashboard import run_dashboard

    return run_dashboard(
        args.experiment,
        n_intervals=args.intervals,
        seed=args.seed,
        refresh=args.refresh,
        once=args.once,
        follow=args.follow,
        from_jsonl=args.from_jsonl,
        html=args.html,
        jsonl_out=args.jsonl,
        overcommit=args.overcommit,
        inject_drift=args.inject_drift,
        drift_at=args.drift_at,
        rules_path=args.rules,
        rho=args.rho,
    )


def _parse_tolerances(specs: list[str]) -> dict[str, float]:
    """``["sweep.*.median_seconds=25"]`` -> ``{"sweep.*...": 0.25}``."""
    tolerances: dict[str, float] = {}
    for spec in specs:
        metric, sep, pct = spec.partition("=")
        if not sep or not metric:
            raise ValueError(
                f"--tolerance expects METRIC=PCT, got {spec!r}")
        try:
            value = float(pct)
        except ValueError:
            raise ValueError(
                f"--tolerance {spec!r}: {pct!r} is not a number") from None
        if value < 0:
            raise ValueError(f"--tolerance {spec!r}: PCT must be >= 0")
        tolerances[metric] = value / 100.0
    return tolerances


def _cmd_compare(args) -> int:
    from repro.observability.compare import run_compare

    try:
        tolerances = _parse_tolerances(args.tolerance)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return run_compare(args.baseline, args.candidate, rtol=args.rtol,
                       show_unchanged=args.show_unchanged,
                       ignore=tuple(args.ignore),
                       tolerances=tolerances, budget=args.budget)


def _cmd_perf(args) -> int:
    """Run the scaling probe sweep; write perf artifacts; gate budgets."""
    from repro.observability.compare import render_budget_check
    from repro.observability.perf import run_perf_sweep

    try:
        sizes = [int(tok) for tok in str(args.sweep).split(",") if tok]
        slow_phase = None
        if args.slow_phase is not None:
            phase, sep, seconds = args.slow_phase.partition("=")
            if not sep:
                raise ValueError(
                    f"--slow-phase expects PHASE=SECONDS, "
                    f"got {args.slow_phase!r}")
            slow_phase = (phase, float(seconds))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def progress(n_vms, point) -> None:
        print(f"  [n={n_vms}] {point.median_seconds * 1e3:.1f} ms median, "
              f"{point.vm_intervals_per_second:,.0f} vm-int/s, "
              f"telemetry {point.telemetry_fraction:.1%}", flush=True)

    t0 = time.perf_counter()
    try:
        sweep = run_perf_sweep(
            sweep=sizes, intervals=args.intervals, repeats=args.repeats,
            seed=args.seed, mode=args.mode, slow_phase=slow_phase,
            trace_memory=not args.no_memory, on_point=progress)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - t0
    paths = sweep.write(args.output_dir)
    print()
    print(sweep.table())
    print()
    largest = sweep.points[max(sweep.points)]
    print(largest.report.table(vm_intervals=largest.vm_intervals))
    print(f"\n[swept {len(sizes)} size(s) in {elapsed:.1f}s; facts in "
          f"{paths['facts']}, wall-clock in {paths['timings']}, "
          f"Chrome trace in {paths['trace']}]")

    exit_code = 0
    worst = max(p.telemetry_fraction for p in sweep.points.values())
    if worst > args.max_telemetry_fraction:
        print(f"observer-effect check: telemetry pipeline takes "
              f"{worst:.1%} of tick time, over the "
              f"--max-telemetry-fraction {args.max_telemetry_fraction:.1%} "
              "ceiling", file=sys.stderr)
        exit_code = 1
    else:
        print(f"observer-effect check: telemetry {worst:.2%} of tick time "
              f"(ceiling {args.max_telemetry_fraction:.0%}) — ok")
    if args.budget is not None:
        if not args.budget.exists():
            print(f"error: no such budget file: {args.budget}",
                  file=sys.stderr)
            return 2
        text, violated = render_budget_check(args.budget, paths["timings"])
        print()
        print(text)
        if violated:
            exit_code = 1
    return exit_code


def _cmd_explain(args) -> int:
    """Render one explain-query from a recorded trace (no simulator)."""
    from repro.observability.provenance import (
        ProvenanceIndex,
        render_explanation,
    )

    try:
        index = ProvenanceIndex.from_jsonl(args.trace)
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 2
    text = render_explanation(index, vm=args.vm, pm=args.pm,
                              tick=args.tick, decision=args.decision)
    print(text)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(text + "\n")
        print(f"[explanation written to {args.output}]")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, (_, desc) in EXPERIMENTS.items():
            print(f"{name:8s} {desc}")
        return 0
    if args.command == "fit":
        return _cmd_fit(args)
    if args.command == "consolidate":
        return _cmd_consolidate(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "autopilot":
        return _cmd_autopilot(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "dashboard":
        return _cmd_dashboard(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "perf":
        return _cmd_perf(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "serve":
        from repro.service.cli import run_serve

        return run_serve(args)
    if args.command == "claims":
        from repro.experiments.claims import verify_claims

        report = verify_claims()
        print(render_result(report))
        return 0 if all(r[2] == "PASS" for r in report.rows) else 1

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        fn, _ = EXPERIMENTS[name]
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        text = render_result(result)
        print(text)
        print(f"[{name} regenerated in {elapsed:.1f}s]\n")
        if args.plot:
            art = _plot(result)
            if art:
                print(art + "\n")
        if args.output_dir is not None:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            (args.output_dir / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
