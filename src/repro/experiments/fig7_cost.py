"""Figure 7: computation cost of Algorithm 2.

Wall-clock time to produce the placement matrix, swept over the per-PM VM
cap ``d`` (which drives the ``O(d^4)`` MapCal precomputation) and the VM
count ``n`` (which drives the ``O(n log n + m n)`` packing).  The paper
observes millisecond-scale costs with the n-dependence barely visible.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.analysis.report import ExperimentResult
from repro.core.queuing_ffd import QueuingFFD
from repro.experiments.config import DEFAULT_SETTINGS, ExperimentSettings
from repro.perf.cache import fresh_cache
from repro.utils.rng import SeedLike, spawn_children
from repro.workload.patterns import generate_pattern_instance


def run_fig7(
    *,
    d_values: Sequence[int] = (8, 16, 24, 32),
    n_values: Sequence[int] = (100, 200, 400, 800),
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    seed: SeedLike = 2013,
) -> ExperimentResult:
    """Regenerate Fig. 7: Algorithm 2 runtime for each (d, n) pair.

    The mapping-table construction is timed separately from the packing pass
    so the two complexity terms are visible (``mapcal_ms`` vs ``pack_ms``).
    """
    result = ExperimentResult(
        experiment_id="fig7",
        description="Computation cost of Algorithm 2 (placement matrix only)",
        params={"rho": settings.rho, "p_on": settings.p_on, "p_off": settings.p_off},
        headers=["d", "n_vms", "mapcal_ms", "pack_ms", "total_ms"],
    )
    rngs = iter(spawn_children(seed, len(d_values) * len(n_values)))
    for d in d_values:
        for n in n_values:
            rng = next(rngs)
            vms, pms = generate_pattern_instance(
                "equal", n, p_on=settings.p_on, p_off=settings.p_off, seed=rng
            )
            placer = QueuingFFD(rho=settings.rho, d=d)
            with fresh_cache():  # cold solves: measure the algorithm, not the cache
                t0 = time.perf_counter()
                placer.mapping_for(vms)  # fills the cache: the O(d^4) term
                t1 = time.perf_counter()
                placer.place(vms, pms)   # mapping cached: the packing term
                t2 = time.perf_counter()
            result.add_row(
                d, n,
                (t1 - t0) * 1e3,
                (t2 - t1) * 1e3,
                (t2 - t0) * 1e3,
            )
    result.notes.append(
        "expected shape: mapcal_ms grows ~d^3..d^4 and is n-independent; "
        "pack_ms grows with n (O(mn) vectorized first-fit) and is "
        "d-independent. Both terms sit at the paper's ms scale for the "
        "paper's n and d."
    )
    return result
