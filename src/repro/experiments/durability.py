"""Crash-safe, self-healing parallel experiment runner.

``python -m repro bench --parallel N`` routes through this module: instead
of a fire-and-forget ``multiprocessing.Pool``, jobs run under a *supervised
worker pool* in the shape of a preemption-tolerant training-job harness:

- **heartbeats** — each worker touches a per-job heartbeat file on a
  background thread; a worker that stops beating (OOM-frozen, stalled I/O)
  is killed and its job retried;
- **wall-clock timeouts** — a job exceeding ``job_timeout`` seconds is
  killed and retried;
- **retries with exponential backoff** — :class:`BenchRetryPolicy` mirrors
  the shape of :class:`repro.simulation.migration.RetryPolicy`: capped
  doubling backoff per consecutive failure;
- **poison-job quarantine** — a job failing ``max_attempts`` times is
  quarantined (reported failed, never blocks the rest of the suite);
- **crash-safe journal** — every lifecycle transition is appended to
  ``journal.jsonl`` as a typed telemetry event and fsync'd, so a SIGKILL of
  the *supervisor* loses at most the in-flight jobs' progress.  Reads go
  through :func:`repro.telemetry.read_events_tolerant`, so a torn final
  line (crash mid-append) is skipped, not fatal;
- **resume** — ``python -m repro bench --resume <run-dir>`` re-executes
  only jobs without a verified result (journal says finished *and* the
  on-disk table matches the recorded content hash) and re-aggregates a
  byte-identical ``BENCH_results.json``;
- **chaos mode** — ``--chaos kill-worker:p=0.2,stall:p=0.1`` makes workers
  kill themselves or stop heartbeating with *deterministic* per-(job,
  attempt) draws, so CI exercises the recovery path reproducibly.

Recovery actions are emitted as typed telemetry events
(:class:`~repro.telemetry.BenchJobRetried`,
:class:`~repro.telemetry.BenchJobQuarantined`,
:class:`~repro.telemetry.BenchJobInterrupted`,
:class:`~repro.telemetry.RunResumed`) and counted in the ambient metrics
registry (``bench_jobs_retried_total``, ``bench_jobs_quarantined_total``).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import signal
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import multiprocessing

from repro.perf.bench import (
    BenchJobResult,
    _execute_job,
    _ProgressStream,
    aggregate_results,
    iter_job_names,
    job_seed,
)
from repro.telemetry import (
    BenchJobFinished,
    BenchJobInterrupted,
    BenchJobQuarantined,
    BenchJobRetried,
    BenchJobStarted,
    BenchRunStarted,
    RunResumed,
    TelemetryEvent,
    read_events_tolerant,
    resolve,
)
from repro.utils.validation import check_integer

logger = logging.getLogger(__name__)

__all__ = [
    "BenchRetryPolicy",
    "ChaosConfig",
    "DurableRunReport",
    "JobJournal",
    "run_durable_bench",
]

JOURNAL_NAME = "journal.jsonl"
WORK_DIR_NAME = ".work"


# --------------------------------------------------------------------- #
# policies
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class BenchRetryPolicy:
    """Backoff/quarantine knobs for failure-prone bench jobs.

    The wall-clock twin of
    :class:`repro.simulation.migration.RetryPolicy`: capped exponential
    backoff per consecutive failure, with a hard attempt ceiling after
    which the job is quarantined as poison.
    """

    base_backoff_seconds: float = 0.5
    max_backoff_seconds: float = 8.0
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.base_backoff_seconds < 0:
            raise ValueError(
                f"base_backoff_seconds must be >= 0, "
                f"got {self.base_backoff_seconds}")
        if self.max_backoff_seconds < self.base_backoff_seconds:
            raise ValueError(
                "max_backoff_seconds must be >= base_backoff_seconds")
        check_integer(self.max_attempts, "max_attempts", minimum=1)

    def backoff(self, consecutive_failures: int) -> float:
        """Backoff (seconds) after the n-th consecutive failure (capped)."""
        return min(self.max_backoff_seconds,
                   self.base_backoff_seconds
                   * 2 ** (consecutive_failures - 1))


@dataclass(frozen=True)
class ChaosConfig:
    """Deterministic fault injection for the worker pool.

    Parsed from specs like ``kill-worker:p=0.2,stall:p=0.1``.  Draws are a
    pure function of ``(seed, job, attempt, mode)`` (CRC-32 hashed into
    [0, 1)), so a chaos run is bit-reproducible: the same jobs die on the
    same attempts every time — which is what lets CI assert recovery.
    """

    kill_worker_p: float = 0.0
    stall_p: float = 0.0
    seed: int = 0

    MODES = ("kill-worker", "stall", "timeout")

    @classmethod
    def parse(cls, spec: str, *, seed: int = 0) -> "ChaosConfig":
        """Parse ``mode:p=0.2,mode:p=0.1`` (``timeout`` aliases ``stall``)."""
        kill_p = stall_p = 0.0
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            mode, _, prob = part.partition(":")
            mode = mode.strip()
            if mode not in cls.MODES:
                raise ValueError(
                    f"unknown chaos mode {mode!r} "
                    f"(expected one of {', '.join(cls.MODES)})")
            if not prob.startswith("p="):
                raise ValueError(
                    f"chaos mode {mode!r} needs a probability, e.g. "
                    f"'{mode}:p=0.2', got {part!r}")
            try:
                p = float(prob[2:])
            except ValueError:
                raise ValueError(
                    f"invalid chaos probability in {part!r}") from None
            if not 0.0 <= p <= 1.0:
                raise ValueError(
                    f"chaos probability must be in [0, 1], got {p}")
            if mode == "kill-worker":
                kill_p = p
            else:
                stall_p = p
        return cls(kill_worker_p=kill_p, stall_p=stall_p, seed=seed)

    def spec(self) -> str:
        """Round-trippable textual form (empty when chaos is off)."""
        parts = []
        if self.kill_worker_p:
            parts.append(f"kill-worker:p={self.kill_worker_p:g}")
        if self.stall_p:
            parts.append(f"stall:p={self.stall_p:g}")
        return ",".join(parts)

    def draw(self, job: str, attempt: int, mode: str) -> bool:
        """Deterministic chaos draw for one (job, attempt, mode)."""
        p = self.kill_worker_p if mode == "kill-worker" else self.stall_p
        if p <= 0.0:
            return False
        u = zlib.crc32(f"{self.seed}:{job}:{attempt}:{mode}".encode()) / 2**32
        return u < p


# --------------------------------------------------------------------- #
# the journal
# --------------------------------------------------------------------- #
class JobJournal:
    """Append-only, fsync'd JSONL journal of typed telemetry events.

    Every append is flushed and fsync'd before returning: after a crash at
    any instant, the journal contains every acknowledged event plus at most
    one torn trailing line, which :meth:`read` (via
    :func:`~repro.telemetry.read_events_tolerant`) skips.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Seal a torn trailing line (crash mid-append) with a newline so new
        # events land on their own lines instead of merging into the wreck.
        try:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                torn = fh.read(1) != b"\n"
        except OSError:  # absent or empty file
            torn = False
        self._fh = open(self.path, "a", encoding="utf-8")
        if torn:
            self._fh.write("\n")
            self._fh.flush()

    def append(self, event: TelemetryEvent) -> None:
        """Durably append one event (flush + fsync)."""
        self._fh.write(json.dumps(event.to_dict()) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        self._fh.close()

    @staticmethod
    def read(path: str | os.PathLike) -> tuple[list[TelemetryEvent], int]:
        """Tolerantly read a journal: ``(events, skipped_line_count)``."""
        return read_events_tolerant(path)


# --------------------------------------------------------------------- #
# the worker side
# --------------------------------------------------------------------- #
def _worker_entry(name: str, seed: int | None, attempt: int,
                  chaos: ChaosConfig | None, workdir: str,
                  heartbeat_interval: float) -> None:
    """Worker process body: beat, maybe inject chaos, run, write result.

    The result file is written atomically (temp + rename) so the
    supervisor never reads a torn payload; a worker that dies before the
    rename simply leaves no result, which the supervisor treats as a
    crash.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # supervisor drains us
    hb_path = Path(workdir) / f"hb_{name}_{attempt}"
    stop = threading.Event()

    def beat() -> None:
        while not stop.is_set():
            hb_path.touch()
            stop.wait(heartbeat_interval)

    beater = threading.Thread(target=beat, daemon=True)
    beater.start()
    if chaos is not None and chaos.draw(name, attempt, "kill-worker"):
        os._exit(137)  # simulated OOM-kill / preemption
    if chaos is not None and chaos.draw(name, attempt, "stall"):
        stop.set()  # stop beating: the supervisor must notice and kill us
        time.sleep(3600)
    payload = _execute_job((name, seed))
    res_path = Path(workdir) / f"res_{name}_{attempt}.json"
    tmp = res_path.with_name(res_path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, res_path)
    stop.set()


# --------------------------------------------------------------------- #
# the supervisor
# --------------------------------------------------------------------- #
@dataclass
class _Active:
    """One in-flight job."""

    proc: multiprocessing.process.BaseProcess
    name: str
    seed: int | None
    attempt: int
    started: float
    deadline: float
    hb_path: Path
    res_path: Path


@dataclass
class DurableRunReport:
    """What a durable bench run accomplished."""

    results: list[BenchJobResult]
    run_dir: Path
    interrupted: bool = False
    resumed: bool = False
    retried: int = 0
    quarantined: list[str] = field(default_factory=list)
    #: jobs restored from the journal instead of re-executed
    restored: list[str] = field(default_factory=list)

    @property
    def failed(self) -> list[BenchJobResult]:
        """Jobs whose final outcome is a failure."""
        return [r for r in self.results if not r.ok]


def _load_completed(run_dir: Path) -> tuple[dict[str, BenchJobResult],
                                            str, int | None, int]:
    """Recover verified results + run config from a run directory.

    A job counts as completed only when the journal says it finished OK
    *and* its on-disk table hashes to the recorded ``rows_sha256`` — a
    crash between the journal append and the table write (or a truncated
    table) demotes the job back to pending.

    Returns ``(completed, pattern, base_seed, skipped_journal_lines)``.
    """
    journal_path = run_dir / JOURNAL_NAME
    if not journal_path.exists():
        raise FileNotFoundError(
            f"{run_dir} has no {JOURNAL_NAME}; nothing to resume")
    events, skipped = JobJournal.read(journal_path)
    pattern, base_seed = "*", None
    for ev in events:
        if ev.kind == "bench_run_started":
            pattern = ev.pattern
            base_seed = None if ev.base_seed < 0 else ev.base_seed
            break
    completed: dict[str, BenchJobResult] = {}
    for ev in events:
        if ev.kind != "bench_job_finished" or not ev.ok:
            continue
        table = run_dir / f"{ev.job}.txt"
        if not table.exists():
            continue
        text = table.read_text()
        if text.endswith("\n"):
            text = text[:-1]
        if hashlib.sha256(text.encode()).hexdigest() != ev.rows_sha256:
            logger.warning(
                "resume: table %s does not match its journalled hash; "
                "re-running %s", table, ev.job)
            continue
        completed[ev.job] = BenchJobResult(
            name=ev.job, seed=None if ev.seed < 0 else ev.seed,
            seconds=ev.seconds, ok=True, error="", text=text,
            rows_sha256=ev.rows_sha256,
        )
    return completed, pattern, base_seed, skipped


def run_durable_bench(
    pattern: str = "*",
    *,
    parallel: int = 2,
    output_dir: Path | str,
    base_seed: int | None = None,
    retry: BenchRetryPolicy | None = None,
    job_timeout: float = 900.0,
    heartbeat_timeout: float = 15.0,
    heartbeat_interval: float = 0.25,
    poll_interval: float = 0.05,
    chaos: ChaosConfig | None = None,
    resume: bool = False,
    progress_path: Path | str | None = None,
    on_event: Callable[[TelemetryEvent], None] | None = None,
    install_signal_handlers: bool = False,
    keep_checkpoints: int | None = None,
) -> DurableRunReport:
    """Run the bench suite under the supervised, journaled worker pool.

    Parameters
    ----------
    pattern, base_seed:
        As in :func:`repro.perf.bench.run_bench`; ignored when resuming
        (the journal's recorded run config wins).
    parallel:
        Worker processes (>= 1; every job runs in a worker even at 1, so
        the supervision/chaos path is identical).
    output_dir:
        The run directory: per-job tables, ``BENCH_results.json`` /
        ``BENCH_timings.json``, the journal, and worker scratch space.
    retry:
        :class:`BenchRetryPolicy`; default retries a job 3 times with
        0.5 s → 1 s capped-doubling backoff before quarantining it.
    job_timeout, heartbeat_timeout:
        Per-attempt wall-clock ceiling, and how long a worker may go
        without touching its heartbeat file before being declared hung.
    chaos:
        Optional :class:`ChaosConfig` fault injection (CI's recovery
        drill).
    resume:
        Treat ``output_dir`` as an interrupted run: verified-complete jobs
        are restored from the journal, everything else re-executes.
    install_signal_handlers:
        CLI mode: first SIGINT/SIGTERM drains gracefully (workers
        terminated, in-flight jobs journalled ``interrupted``, journal
        flushed), a second force-exits with code 130.
    keep_checkpoints:
        Rollback-checkpoint retention depth for any autopilot run inside
        the suite: exported as ``REPRO_KEEP_CHECKPOINTS`` for the duration
        of the run (fork workers inherit it), restored afterwards.
    """
    if parallel < 1:
        raise ValueError(f"parallel must be >= 1, got {parallel}")
    if keep_checkpoints is not None and keep_checkpoints < 1:
        raise ValueError(
            f"keep_checkpoints must be >= 1, got {keep_checkpoints}")
    retry = retry if retry is not None else BenchRetryPolicy()
    prev_keep = os.environ.get("REPRO_KEEP_CHECKPOINTS")
    if keep_checkpoints is not None:
        os.environ["REPRO_KEEP_CHECKPOINTS"] = str(keep_checkpoints)
    run_dir = Path(output_dir)
    report = DurableRunReport(results=[], run_dir=run_dir, resumed=resume)

    completed: dict[str, BenchJobResult] = {}
    skipped_lines = 0
    if resume:
        completed, pattern, base_seed, skipped_lines = _load_completed(run_dir)
        report.restored = sorted(completed)

    names = iter_job_names(pattern)
    if not names:
        raise ValueError(f"no experiment matches filter {pattern!r}")
    run_dir.mkdir(parents=True, exist_ok=True)
    workdir = run_dir / WORK_DIR_NAME
    workdir.mkdir(exist_ok=True)

    journal = JobJournal(run_dir / JOURNAL_NAME)
    progress = _ProgressStream(
        Path(progress_path) if progress_path is not None else None, on_event)
    seq = 0

    def publish(event: TelemetryEvent) -> None:
        journal.append(event)
        progress.emit(event)

    tel = resolve(None)
    m_retried = m_quarantined = None
    if tel is not None:
        m_retried = tel.metrics.counter(
            "bench_jobs_retried_total", "bench jobs retried after a failure")
        m_quarantined = tel.metrics.counter(
            "bench_jobs_quarantined_total",
            "bench jobs quarantined as poison")

    remaining = [n for n in names if n not in completed]
    pending: list[tuple[float, str, int | None, int]] = [
        (0.0, name,
         job_seed(base_seed, name) if base_seed is not None else None, 1)
        for name in remaining
    ]
    active: dict[str, _Active] = {}
    results: dict[str, BenchJobResult] = dict(completed)
    failures: dict[str, str] = {}  # job -> last error (for quarantine msg)

    signals_seen = 0
    previous_handlers = {}

    def _on_signal(signum, frame):  # pragma: no cover - signal timing
        nonlocal signals_seen
        signals_seen += 1
        if signals_seen >= 2:
            os._exit(130)

    if install_signal_handlers:
        for sig in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[sig] = signal.signal(sig, _on_signal)

    ctx = multiprocessing.get_context("fork")

    if resume:
        publish(RunResumed(
            time=seq, run_dir=str(run_dir), completed=len(completed),
            remaining=len(remaining), skipped_journal_lines=skipped_lines))
        seq += 1
    publish(BenchRunStarted(
        time=seq, pattern=pattern,
        base_seed=base_seed if base_seed is not None else -1,
        jobs=tuple(remaining), parallel=parallel,
        chaos=chaos.spec() if chaos is not None else ""))
    seq += 1

    def record_success(payload: dict) -> None:
        nonlocal seq
        result = BenchJobResult(**payload)
        results[result.name] = result
        if result.ok:
            table = run_dir / f"{result.name}.txt"
            tmp = table.with_name(table.name + ".tmp")
            tmp.write_text(result.text + "\n")
            os.replace(tmp, table)
        publish(BenchJobFinished(
            time=seq, job=result.name, seconds=result.seconds,
            ok=result.ok, error=result.error,
            rows_sha256=result.rows_sha256,
            seed=result.seed if result.seed is not None else -1))
        seq += 1

    def handle_failure(name: str, seed: int | None, attempt: int,
                       error: str) -> None:
        nonlocal seq
        failures[name] = error
        if attempt >= retry.max_attempts:
            report.quarantined.append(name)
            results[name] = BenchJobResult(
                name=name, seed=seed, seconds=0.0, ok=False,
                error=f"quarantined after {attempt} attempts: {error}",
                text="", rows_sha256="")
            publish(BenchJobQuarantined(time=seq, job=name,
                                        attempts=attempt, error=error))
            seq += 1
            if m_quarantined is not None:
                m_quarantined.inc()
            logger.warning("bench job %s quarantined after %d attempts: %s",
                           name, attempt, error)
            return
        backoff = retry.backoff(attempt)
        report.retried += 1
        pending.append((time.monotonic() + backoff, name, seed, attempt + 1))
        publish(BenchJobRetried(time=seq, job=name, attempt=attempt,
                                error=error, backoff_seconds=backoff))
        seq += 1
        if m_retried is not None:
            m_retried.inc()
        logger.warning("bench job %s failed on attempt %d (%s); "
                       "retrying in %.1fs", name, attempt, error, backoff)

    def kill_worker(entry: _Active) -> None:
        if entry.proc.is_alive():
            entry.proc.terminate()
            entry.proc.join(timeout=5.0)
            if entry.proc.is_alive():  # pragma: no cover - stuck in kernel
                entry.proc.kill()
                entry.proc.join(timeout=5.0)

    try:
        while pending or active:
            if signals_seen:
                break
            now = time.monotonic()
            # launch ready jobs into free slots
            pending.sort(key=lambda item: item[0])
            while len(active) < parallel and pending \
                    and pending[0][0] <= now:
                _, name, seed, attempt = pending.pop(0)
                hb_path = workdir / f"hb_{name}_{attempt}"
                res_path = workdir / f"res_{name}_{attempt}.json"
                hb_path.touch()
                proc = ctx.Process(
                    target=_worker_entry,
                    args=(name, seed, attempt, chaos, str(workdir),
                          heartbeat_interval),
                    daemon=True,
                )
                proc.start()
                active[name] = _Active(
                    proc=proc, name=name, seed=seed, attempt=attempt,
                    started=now, deadline=now + job_timeout,
                    hb_path=hb_path, res_path=res_path)
                publish(BenchJobStarted(
                    time=seq, job=name,
                    seed=seed if seed is not None else 0,
                    worker_count=parallel, attempt=attempt))
                seq += 1

            # poll in-flight jobs
            for name in list(active):
                entry = active[name]
                if entry.res_path.exists():
                    entry.proc.join(timeout=5.0)
                    kill_worker(entry)
                    try:
                        payload = json.loads(entry.res_path.read_text())
                    except ValueError:  # pragma: no cover - rename is atomic
                        handle_failure(name, entry.seed, entry.attempt,
                                       "unreadable result payload")
                        del active[name]
                        continue
                    del active[name]
                    if payload["ok"]:
                        record_success(payload)
                    else:
                        handle_failure(name, entry.seed, entry.attempt,
                                       payload["error"])
                    continue
                if not entry.proc.is_alive():
                    code = entry.proc.exitcode
                    del active[name]
                    handle_failure(name, entry.seed, entry.attempt,
                                   f"worker exited with code {code} "
                                   "before reporting a result")
                    continue
                now = time.monotonic()
                try:
                    beat_age = time.time() - entry.hb_path.stat().st_mtime
                except OSError:
                    beat_age = float("inf")
                if now > entry.deadline:
                    kill_worker(entry)
                    del active[name]
                    handle_failure(
                        name, entry.seed, entry.attempt,
                        f"timeout after {job_timeout:.0f}s")
                    continue
                if beat_age > heartbeat_timeout:
                    kill_worker(entry)
                    del active[name]
                    handle_failure(
                        name, entry.seed, entry.attempt,
                        f"heartbeat lost for {beat_age:.1f}s")
                    continue
            if pending or active:
                time.sleep(poll_interval)

        if signals_seen:
            report.interrupted = True
            logger.warning("interrupted: draining %d worker(s), journal "
                           "flushed; resume with --resume %s",
                           len(active), run_dir)
            for name in sorted(active):
                entry = active.pop(name)
                kill_worker(entry)
                publish(BenchJobInterrupted(time=seq, job=name,
                                            attempt=entry.attempt))
                seq += 1
    finally:
        if keep_checkpoints is not None:
            if prev_keep is None:
                os.environ.pop("REPRO_KEEP_CHECKPOINTS", None)
            else:  # pragma: no cover - nested override
                os.environ["REPRO_KEEP_CHECKPOINTS"] = prev_keep
        if install_signal_handlers:
            for sig, handler in previous_handlers.items():
                signal.signal(sig, handler)
        progress.close()
        journal.close()

    report.results = [results[n] for n in names if n in results]
    if not report.interrupted:
        aggregate_results(run_dir, report.results, pattern=pattern,
                          parallel=parallel, base_seed=base_seed)
    return report
