"""Ablation experiments: the design-choice studies DESIGN.md calls out.

Each ``run_*`` function regenerates one ablation table deterministically
(same contract as the fig/table experiments).  The benchmarks in
``benchmarks/bench_ablation_*.py`` are thin timed wrappers around these, and
``python -m repro run <ablation_id>`` exposes them from the CLI.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cvr import evaluate_placement_cvr
from repro.analysis.report import ExperimentResult
from repro.core.heterogeneous import HeterogeneousQueuingFFD
from repro.core.mapcal import mapcal
from repro.core.quantile import QuantileFFD
from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import PMSpec, VMSpec
from repro.markov.hmm import fit_hmm_onoff
from repro.markov.multilevel import spiky_levels
from repro.placement.ffd import (
    FirstFitDecreasing,
    ffd_by_base,
    ffd_by_peak,
    size_by_peak,
)
from repro.placement.optimal import BranchAndBoundPacker, lower_bound_l2
from repro.placement.sbp import StochasticBinPacker
from repro.queueing.transient import expected_violation_episode_length
from repro.simulation.arrivals import DynamicFleetSimulator
from repro.simulation.costmodel import CostedScheduler, MigrationCostModel
from repro.simulation.datacenter import Datacenter
from repro.simulation.engine import SimulationEngine
from repro.simulation.failures import FailureInjector
from repro.simulation.migration import (
    StandardPolicy,
    select_target_least_loaded,
    select_target_reservation_aware,
)
from repro.simulation.monitor import Monitor
from repro.simulation.reconsolidation import ReconsolidationScheduler
from repro.simulation.scheduler import DynamicScheduler, run_simulation
from repro.utils.rng import spawn_children
from repro.workload.estimation import fit_onoff
from repro.workload.onoff_generator import demand_trace, ensemble_states
from repro.workload.patterns import (
    PATTERN_RANGES,
    generate_pattern_instance,
    make_pms,
    table_i_vms,
)


# --------------------------------------------------------------------- #
# from bench_ablation_clustering.py
# --------------------------------------------------------------------- #
CLUSTER_METHODS = ("binning", "kmeans", "none")


def run_clustering_ablation(n_vms=300, seeds=(50, 51, 52, 53, 54)):
    result = ExperimentResult(
        experiment_id="ablation_clustering",
        description="PMs used by QUEUE with different R_e clustering schemes",
        params={"n_vms": n_vms, "repetitions": len(seeds)},
        headers=["pattern"] + [f"PMs_{m}" for m in CLUSTER_METHODS],
    )
    for pattern in ("equal", "small", "large"):
        used = {m: [] for m in CLUSTER_METHODS}
        for seed in seeds:
            vms, pms = generate_pattern_instance(pattern, n_vms, seed=seed)
            for m in CLUSTER_METHODS:
                placer = QueuingFFD(rho=0.01, d=16, cluster_method=m)
                used[m].append(placer.place(vms, pms).n_used_pms)
        result.add_row(
            {"equal": "Rb=Re", "small": "Rb>Re", "large": "Rb<Re"}[pattern],
            *[float(np.mean(used[m])) for m in CLUSTER_METHODS],
        )
    return result


# --------------------------------------------------------------------- #
# from bench_ablation_elasticity.py
# --------------------------------------------------------------------- #
ELASTICITY_RHOS = (0.001, 0.01, 0.1, 0.9)


def spiky_vm(rng):
    return VMSpec(0.05, 0.15, float(rng.uniform(5, 15)),
                  float(rng.uniform(10, 30)))


def run_elasticity_ablation(n_pms=10, n_intervals=400, seeds=(120, 121, 122)):
    result = ExperimentResult(
        experiment_id="ablation_elasticity",
        description="Admission vs performance under VM arrivals (rho sweep)",
        params={"n_pms": n_pms, "n_intervals": n_intervals,
                "arrival_p": 1.0, "departure_p": 0.01},
        headers=["rho", "admitted_avg", "rejected_avg", "violations_avg",
                 "migrations_avg", "final_pop_avg"],
    )
    for rho in ELASTICITY_RHOS:
        admitted, rejected, violations, migrations, pop = [], [], [], [], []
        for seed in seeds:
            sim = DynamicFleetSimulator(
                [PMSpec(100.0)] * n_pms,
                QueuingFFD(rho=rho, d=16),
                arrival_probability=1.0,
                departure_probability=0.01,
                vm_factory=spiky_vm,
                seed=seed,
            )
            record = sim.run(n_intervals)
            admitted.append(record.admitted)
            rejected.append(record.rejected)
            violations.append(record.violations)
            migrations.append(record.migrations)
            pop.append(record.population_series[-1])
        result.add_row(rho, float(np.mean(admitted)), float(np.mean(rejected)),
                       float(np.mean(violations)), float(np.mean(migrations)),
                       float(np.mean(pop)))
    return result


# --------------------------------------------------------------------- #
# from bench_ablation_estimators.py
# --------------------------------------------------------------------- #
ESTIMATOR_TRUTH = VMSpec(0.02, 0.1, 10.0, 6.0)
NOISE_LEVELS = (0.2, 1.0, 2.0, 3.0)


def _param_error(fit) -> float:
    """Aggregate relative parameter error of a fit vs the ground truth."""
    return (
        abs(fit.p_on - ESTIMATOR_TRUTH.p_on) / ESTIMATOR_TRUTH.p_on
        + abs(fit.p_off - ESTIMATOR_TRUTH.p_off) / ESTIMATOR_TRUTH.p_off
        + abs(fit.r_base - ESTIMATOR_TRUTH.r_base) / ESTIMATOR_TRUTH.r_base
        + abs(fit.r_extra - ESTIMATOR_TRUTH.r_extra) / ESTIMATOR_TRUTH.r_extra
    ) / 4.0


def run_estimator_ablation(n_steps=60_000, seeds=(170, 171, 172)):
    result = ExperimentResult(
        experiment_id="ablation_estimators",
        description="Threshold vs Baum-Welch fit error vs measurement noise",
        params={"true": "(0.02, 0.1, 10, 6)", "n_steps": n_steps,
                "repetitions": len(seeds)},
        headers=["noise_sigma", "threshold_err", "hmm_err"],
    )
    for noise in NOISE_LEVELS:
        thr_errs, hmm_errs = [], []
        for seed in seeds:
            rngs = spawn_children(seed, 2)
            states = ensemble_states([ESTIMATOR_TRUTH], n_steps, start_stationary=True,
                                     seed=rngs[0])
            trace = demand_trace([ESTIMATOR_TRUTH], states)[0]
            trace = trace + rngs[1].normal(0.0, noise, trace.size)
            thr_errs.append(_param_error(fit_onoff(trace)))
            hmm_errs.append(_param_error(fit_hmm_onoff(trace)))
        result.add_row(noise, float(np.mean(thr_errs)), float(np.mean(hmm_errs)))
    return result


# --------------------------------------------------------------------- #
# from bench_ablation_migration_cost.py
# --------------------------------------------------------------------- #
def _run_costed(vms, pms, placement, seed):
    dc = Datacenter(vms, pms, placement, seed=seed)
    scheduler = CostedScheduler(
        dc, cost_model=MigrationCostModel(bandwidth_units_per_interval=8.0,
                                          cpu_overhead_fraction=0.1),
    )
    monitor = Monitor(dc.n_pms)
    engine = SimulationEngine()

    def tick(t):
        dc.step()
        monitor.record_interval(dc, scheduler.resolve_overloads(t))

    engine.add_hook("tick", tick)
    engine.run(100)
    return monitor.finalize(), scheduler.account


def run_migration_cost(n_vms=120, seeds=(160, 161, 162, 163, 164)):
    result = ExperimentResult(
        experiment_id="ablation_migration_cost",
        description="Migration events priced as downtime + overhead",
        params={"n_vms": n_vms, "n_intervals": 100,
                "bandwidth": 8.0, "cpu_overhead": 0.1,
                "repetitions": len(seeds)},
        headers=["strategy", "migrations_avg", "downtime_s_avg",
                 "overhead_pm_intervals_avg"],
    )
    strategies = {
        "QUEUE": QueuingFFD(rho=0.01, d=16),
        "RB": ffd_by_base(max_vms_per_pm=16),
    }
    for name, placer in strategies.items():
        migs, downtime, overhead = [], [], []
        for seed in seeds:
            vms = table_i_vms("equal", n_vms, seed=seed)
            pms = make_pms(n_vms, seed=seed)
            placement = placer.place(vms, pms)
            record, account = _run_costed(vms, pms, placement, seed + 600)
            migs.append(record.total_migrations)
            downtime.append(account.total_downtime_seconds)
            overhead.append(account.overhead_pm_intervals)
        result.add_row(name, float(np.mean(migs)), float(np.mean(downtime)),
                       float(np.mean(overhead)))
    return result


# --------------------------------------------------------------------- #
# from bench_ablation_model_mismatch.py
# --------------------------------------------------------------------- #
MISMATCH_RHO = 0.01
MISMATCH_N_VMS = 80


def _true_chain(rng):
    base = float(rng.uniform(4, 12))
    magnitudes = sorted(float(base + rng.uniform(4, 16)) for _ in range(3))
    return spiky_levels(base, magnitudes, p_spike=0.01, p_recover=0.09)


def run_model_mismatch(seed=140, n_obs=30_000, n_eval=30_000):
    rngs = spawn_children(seed, MISMATCH_N_VMS + 1)
    chains = [_true_chain(rngs[i]) for i in range(MISMATCH_N_VMS)]
    observe = np.stack([
        c.simulate_demand(n_obs, seed=rngs[i]) for i, c in enumerate(chains)
    ])
    evaluate = np.stack([
        c.simulate_demand(n_eval, seed=rngs[-1]) for c in chains
    ])

    result = ExperimentResult(
        experiment_id="ablation_model_mismatch",
        description="Two-level fit of three-magnitude workloads: CVR impact",
        params={"rho": MISMATCH_RHO, "n_vms": MISMATCH_N_VMS, "true_model": "3-magnitude spiky"},
        headers=["fit", "PMs_used", "mean_CVR", "max_CVR"],
    )
    pms = [PMSpec(100.0)] * MISMATCH_N_VMS
    for label, kwargs in (("mean-level fit", {}),
                          ("p95-margin fit", {"percentile_margin": 0.95})):
        specs = [fit_onoff(observe[i], **kwargs).to_vmspec()
                 for i in range(MISMATCH_N_VMS)]
        placement = QuantileFFD(rho=MISMATCH_RHO, d=16).place(specs, pms)
        loads = np.zeros((len(pms), evaluate.shape[1]))
        np.add.at(loads, placement.assignment, evaluate)
        caps = np.array([p.capacity for p in pms])
        cvr = (loads > caps[:, None] + 1e-9).mean(axis=1)
        used = placement.used_pms()
        result.add_row(label, placement.n_used_pms,
                       float(cvr[used].mean()), float(cvr[used].max()))
    return result


# --------------------------------------------------------------------- #
# from bench_ablation_optimality.py
# --------------------------------------------------------------------- #
def run_optimality_gap(n_vms=14, n_instances=10):
    result = ExperimentResult(
        experiment_id="ablation_optimality",
        description="FFD vs exact optimum on the peak-provisioning packing",
        params={"n_vms": n_vms, "instances": n_instances,
                "capacity": 100.0},
        headers=["pattern", "FFD_avg", "OPT_avg", "L2_avg",
                 "instances_where_FFD_suboptimal"],
    )
    for pattern in ("equal", "large"):
        ffd_used, opt_used, l2s, subopt = [], [], [], 0
        for seed in range(n_instances):
            vms, _ = generate_pattern_instance(pattern, n_vms, seed=seed)
            pms = [PMSpec(100.0)] * n_vms
            ffd = FirstFitDecreasing(size_by_peak).place(vms, pms)
            packer = BranchAndBoundPacker(size_by_peak, max_nodes=500_000)
            opt = packer.place(vms, pms)
            sizes = np.array([v.r_peak for v in vms])
            ffd_used.append(ffd.n_used_pms)
            opt_used.append(opt.n_used_pms)
            l2s.append(lower_bound_l2(sizes, 100.0))
            subopt += opt.n_used_pms < ffd.n_used_pms
        label = {"equal": "Rb=Re", "large": "Rb<Re"}[pattern]
        result.add_row(label, float(np.mean(ffd_used)), float(np.mean(opt_used)),
                       float(np.mean(l2s)), subopt)
    return result


# --------------------------------------------------------------------- #
# from bench_ablation_policies.py
# --------------------------------------------------------------------- #
POLICIES = {
    "least-loaded (unaware)": select_target_least_loaded,
    "reservation-aware": select_target_reservation_aware,
}


def run_policy_ablation(n_vms=120, seeds=(80, 81, 82, 83, 84)):
    result = ExperimentResult(
        experiment_id="ablation_policies",
        description="RB placement under unaware vs burstiness-aware targets",
        params={"n_vms": n_vms, "n_intervals": 100, "repetitions": len(seeds)},
        headers=["target_policy", "migrations_avg", "final_pms_avg"],
    )
    for name, target_fn in POLICIES.items():
        migs, pms_used = [], []
        for seed in seeds:
            vms = table_i_vms("equal", n_vms, seed=seed)
            pms = make_pms(n_vms, seed=seed)
            placement = ffd_by_base(max_vms_per_pm=16).place(vms, pms)
            sim = run_simulation(
                vms, pms, placement, n_intervals=100,
                policy=StandardPolicy(pick_target_fn=target_fn),
                seed=seed + 1000,
            )
            migs.append(sim.total_migrations)
            pms_used.append(sim.final_pms_used)
        result.add_row(name, float(np.mean(migs)), float(np.mean(pms_used)))
    return result


# --------------------------------------------------------------------- #
# from bench_ablation_reconsolidation.py
# --------------------------------------------------------------------- #
PERIODS = (10, 25, 50, None)  # None = purely reactive


def _run_replanned(vms, pms, placement, period, seed):
    dc = Datacenter(vms, pms, placement, seed=seed)
    if period is None:
        scheduler = DynamicScheduler(dc)
    else:
        scheduler = ReconsolidationScheduler(
            dc, placer=QueuingFFD(rho=0.01, d=16), period=period,
            max_planned_moves=20,
        )
    monitor = Monitor(dc.n_pms)
    engine = SimulationEngine()

    def tick(t):
        dc.step()
        monitor.record_interval(dc, scheduler.resolve_overloads(t))

    engine.add_hook("tick", tick)
    engine.run(100)
    record = monitor.finalize()
    planned = getattr(scheduler, "planned_migrations", 0)
    return record, planned


def run_reconsolidation_ablation(n_vms=100, seeds=(110, 111, 112)):
    result = ExperimentResult(
        experiment_id="ablation_reconsolidation",
        description="Periodic QueuingFFD re-plan over an RB initial packing",
        params={"n_vms": n_vms, "n_intervals": 100, "repetitions": len(seeds)},
        headers=["period", "planned_avg", "reactive_avg", "final_pms_avg",
                 "violations_avg"],
    )
    for period in PERIODS:
        planned_l, reactive_l, pms_l, viol_l = [], [], [], []
        for seed in seeds:
            vms, pms = generate_pattern_instance("equal", n_vms, seed=seed)
            placement = ffd_by_base(max_vms_per_pm=16).place(vms, pms)
            record, planned = _run_replanned(vms, pms, placement, period, seed + 500)
            planned_l.append(planned)
            reactive_l.append(record.total_migrations - planned)
            pms_l.append(record.final_pms_used)
            viol_l.append(int(record.violation_counts.sum()))
        result.add_row(
            "reactive-only" if period is None else period,
            float(np.mean(planned_l)), float(np.mean(reactive_l)),
            float(np.mean(pms_l)), float(np.mean(viol_l)),
        )
    return result


# --------------------------------------------------------------------- #
# from bench_ablation_reservation_shape.py
# --------------------------------------------------------------------- #
SHAPE_STRATEGIES = {
    "QUEUE (paper blocks)": lambda: QueuingFFD(rho=0.01, d=16),
    "QUEUE-HET (exact blocks)": lambda: HeterogeneousQueuingFFD(rho=0.01, d=16),
    "QUANTILE (blockless)": lambda: QuantileFFD(rho=0.01, d=16),
}


def run_reservation_shape(n_vms=200, seeds=(130, 131, 132)):
    result = ExperimentResult(
        experiment_id="ablation_reservation_shape",
        description="Reservation sizing rules at the same CVR target",
        params={"rho": 0.01, "n_vms": n_vms, "repetitions": len(seeds)},
        headers=["pattern", "strategy", "PMs_avg", "mean_CVR", "max_CVR"],
    )
    for pattern in ("equal", "large"):
        label = {"equal": "Rb=Re", "large": "Rb<Re"}[pattern]
        agg = {name: {"pms": [], "mean": [], "max": []} for name in SHAPE_STRATEGIES}
        for seed in seeds:
            vms, pms = generate_pattern_instance(pattern, n_vms, seed=seed)
            for name, factory in SHAPE_STRATEGIES.items():
                placement = factory().place(vms, pms)
                stats = evaluate_placement_cvr(placement, vms, pms,
                                               n_steps=15_000, seed=seed + 7)
                agg[name]["pms"].append(placement.n_used_pms)
                agg[name]["mean"].append(stats["mean"])
                agg[name]["max"].append(stats["max"])
        for name in SHAPE_STRATEGIES:
            result.add_row(label, name,
                           float(np.mean(agg[name]["pms"])),
                           float(np.mean(agg[name]["mean"])),
                           float(np.mean(agg[name]["max"])))
    return result


# --------------------------------------------------------------------- #
# from bench_ablation_resilience.py
# --------------------------------------------------------------------- #
RESILIENCE_STRATEGIES = {
    "QUEUE": lambda: QueuingFFD(rho=0.01, d=16),
    "RB": lambda: ffd_by_base(max_vms_per_pm=16),
    "RP": lambda: ffd_by_peak(max_vms_per_pm=16),
}


def run_resilience(n_vms=100, n_intervals=150, seeds=(150, 151, 152, 153)):
    result = ExperimentResult(
        experiment_id="ablation_resilience",
        description="PM crash injection: evacuation success per strategy",
        params={"n_vms": n_vms, "n_intervals": n_intervals,
                "p_fail": 0.01, "p_repair": 0.1, "repetitions": len(seeds)},
        headers=["strategy", "initial_pms", "failures_avg", "evacuations_avg",
                 "stranded_vm_intervals_avg"],
    )
    from repro.core.types import Placement

    for name, factory in RESILIENCE_STRATEGIES.items():
        pms_used, failures, evac, stranded = [], [], [], []
        for seed in seeds:
            vms, pms = generate_pattern_instance("equal", n_vms, seed=seed)
            placement = factory().place(vms, pms)
            # Truncate the fleet to the used prefix plus ONE spare so
            # evacuations compete for realistic headroom (with 100 idle
            # spares nothing would ever strand).
            m = int(placement.used_pms().max()) + 2
            pms = pms[:m]
            placement = Placement(len(vms), m, assignment=placement.assignment)
            dc = Datacenter(vms, pms, placement, seed=seed + 300)
            inj = FailureInjector(dc, failure_probability=0.01,
                                  repair_probability=0.1, seed=seed + 400)
            for t in range(n_intervals):
                dc.step()
                inj.step(t)
            pms_used.append(placement.n_used_pms)
            failures.append(inj.record.failures)
            evac.append(inj.record.evacuations)
            stranded.append(inj.record.stranded_vm_intervals)
        result.add_row(name, float(np.mean(pms_used)), float(np.mean(failures)),
                       float(np.mean(evac)), float(np.mean(stranded)))
    return result


# --------------------------------------------------------------------- #
# from bench_ablation_rho_sweep.py
# --------------------------------------------------------------------- #
SWEEP_RHOS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.3)


def run_rho_sweep(n_vms=200, seed=60):
    vms, pms = generate_pattern_instance("equal", n_vms, seed=seed)
    result = ExperimentResult(
        experiment_id="ablation_rho_sweep",
        description="QUEUE packing density and CVR vs the threshold rho",
        params={"n_vms": n_vms, "pattern": "Rb=Re"},
        headers=["rho", "PMs_used", "mean_CVR", "max_CVR"],
    )
    for rho in SWEEP_RHOS:
        placement = QueuingFFD(rho=rho, d=16).place(vms, pms)
        stats = evaluate_placement_cvr(placement, vms, pms,
                                       n_steps=20_000, seed=61)
        result.add_row(rho, placement.n_used_pms, stats["mean"], stats["max"])
    return result


# --------------------------------------------------------------------- #
# from bench_ablation_rounding.py
# --------------------------------------------------------------------- #
def heterogeneous_fleet(n_vms, seed):
    rng = np.random.default_rng(seed)
    (b_lo, b_hi), (e_lo, e_hi) = PATTERN_RANGES["equal"]
    return [
        VMSpec(
            p_on=float(rng.uniform(0.005, 0.015)),
            p_off=float(rng.uniform(0.045, 0.135)),
            r_base=float(rng.uniform(b_lo, b_hi)),
            r_extra=float(rng.uniform(e_lo, e_hi)),
        )
        for _ in range(n_vms)
    ]


def run_rounding_ablation(n_vms=200, seed=90):
    vms = heterogeneous_fleet(n_vms, seed)
    pms = make_pms(n_vms, seed=seed)
    result = ExperimentResult(
        experiment_id="ablation_rounding",
        description="Heterogeneous (p_on, p_off): mean vs conservative rounding",
        params={"n_vms": n_vms, "p_on": "U[0.005,0.015]", "p_off": "U[0.045,0.135]"},
        headers=["rounding", "PMs_used", "mean_CVR", "max_CVR"],
    )
    for rule in ("mean", "median", "conservative"):
        placer = QueuingFFD(rho=0.01, d=16, rounding_rule=rule)
        placement = placer.place(vms, pms)
        stats = evaluate_placement_cvr(placement, vms, pms,
                                       n_steps=20_000, seed=seed + 1)
        result.add_row(rule, placement.n_used_pms, stats["mean"], stats["max"])
    # Our exact extension: Poisson-binomial reservation, no rounding at all.
    from repro.core.heterogeneous import HeterogeneousQueuingFFD

    placement = HeterogeneousQueuingFFD(rho=0.01, d=16).place(vms, pms)
    stats = evaluate_placement_cvr(placement, vms, pms,
                                   n_steps=20_000, seed=seed + 1)
    result.add_row("exact (ours)", placement.n_used_pms, stats["mean"],
                   stats["max"])
    return result


# --------------------------------------------------------------------- #
# from bench_ablation_sbp.py
# --------------------------------------------------------------------- #
def run_sbp_comparison(n_vms=200, seeds=(70, 71, 72)):
    result = ExperimentResult(
        experiment_id="ablation_sbp",
        description="QUEUE vs normal-approximation stochastic bin packing",
        params={"n_vms": n_vms, "risk": 0.01, "repetitions": len(seeds)},
        headers=["pattern", "strategy", "PMs_used", "mean_CVR", "max_CVR"],
    )
    for pattern in ("equal", "large"):
        agg = {name: {"pms": [], "mean": [], "max": []}
               for name in ("QUEUE", "SBP")}
        for seed in seeds:
            vms, pms = generate_pattern_instance(pattern, n_vms, seed=seed)
            strategies = {
                "QUEUE": QueuingFFD(rho=0.01, d=16),
                "SBP": StochasticBinPacker(epsilon=0.01, max_vms_per_pm=16),
            }
            for name, placer in strategies.items():
                placement = placer.place(vms, pms)
                stats = evaluate_placement_cvr(placement, vms, pms,
                                               n_steps=15_000, seed=seed + 100)
                agg[name]["pms"].append(placement.n_used_pms)
                agg[name]["mean"].append(stats["mean"])
                agg[name]["max"].append(stats["max"])
        label = {"equal": "Rb=Re", "large": "Rb<Re"}[pattern]
        for name in ("QUEUE", "SBP"):
            result.add_row(label, name,
                           float(np.mean(agg[name]["pms"])),
                           float(np.mean(agg[name]["mean"])),
                           float(np.mean(agg[name]["max"])))
    return result


# --------------------------------------------------------------------- #
# from bench_ablation_switch_sweep.py
# --------------------------------------------------------------------- #
SWEEP_K, SWEEP_RHO = 16, 0.01


def run_switch_sweep():
    result = ExperimentResult(
        experiment_id="ablation_switch_sweep",
        description="Blocks and episode length vs spike frequency/duration",
        params={"k": SWEEP_K, "rho": SWEEP_RHO},
        headers=["p_on", "p_off", "on_fraction", "blocks_K",
                 "mean_violation_episode"],
    )
    for p_on, p_off in [
        (0.005, 0.045), (0.01, 0.09), (0.02, 0.18), (0.05, 0.45),   # q = 0.1
        (0.01, 0.04), (0.01, 0.19),                                  # vary q
        (0.05, 0.05), (0.002, 0.198),                                # q = .5 / .01
    ]:
        q = p_on / (p_on + p_off)
        blocks = mapcal(SWEEP_K, p_on, p_off, SWEEP_RHO)
        episode = expected_violation_episode_length(SWEEP_K, p_on, p_off, blocks)
        result.add_row(p_on, p_off, q, blocks, episode)
    return result


#: registry of every ablation study: id -> (runner, one-line description)
ABLATIONS = {
    "ablation_clustering": (
        run_clustering_ablation,
        "R_e clustering: binning vs k-means vs none",
    ),
    "ablation_rho_sweep": (
        run_rho_sweep,
        "QUEUE packing density and CVR vs the threshold rho",
    ),
    "ablation_sbp": (
        run_sbp_comparison,
        "QUEUE vs normal-approximation stochastic bin packing",
    ),
    "ablation_policies": (
        run_policy_ablation,
        "Scheduler target selection: unaware vs reservation-aware",
    ),
    "ablation_rounding": (
        run_rounding_ablation,
        "Heterogeneous (p_on, p_off): rounding rules vs the exact variant",
    ),
    "ablation_optimality": (
        run_optimality_gap,
        "FFD vs exact branch-and-bound optimum",
    ),
    "ablation_reconsolidation": (
        run_reconsolidation_ablation,
        "Periodic global re-plan vs purely reactive scheduling",
    ),
    "ablation_elasticity": (
        run_elasticity_ablation,
        "Admission vs performance under VM arrivals (rho sweep)",
    ),
    "ablation_reservation_shape": (
        run_reservation_shape,
        "Paper blocks vs exact blocks vs blockless quantile",
    ),
    "ablation_model_mismatch": (
        run_model_mismatch,
        "Two-level fit of multi-magnitude workloads: CVR impact",
    ),
    "ablation_switch_sweep": (
        run_switch_sweep,
        "Spike frequency/duration sensitivity of blocks and episodes",
    ),
    "ablation_estimators": (
        run_estimator_ablation,
        "Threshold vs Baum-Welch estimation under measurement noise",
    ),
    "ablation_resilience": (
        run_resilience,
        "PM crash injection: evacuation success per strategy",
    ),
    "ablation_migration_cost": (
        run_migration_cost,
        "Migration events priced as downtime and CPU overhead",
    ),
}


# --------------------------------------------------------------------- #
# diurnal (time-varying spike rate) sizing study
# --------------------------------------------------------------------- #
def run_diurnal_ablation(n_vms=150, n_steps=40_000, seed=180):
    """QUEUE sized at the mean vs the peak-hour spike rate under a diurnal
    schedule: per-phase CVR shows where average sizing breaks."""
    from repro.workload.diurnal import (
        STANDARD_DAY,
        effective_q,
        ensemble_states_diurnal,
        phase_cvr,
    )
    from repro.workload.onoff_generator import demand_trace, pm_load_trace

    result = ExperimentResult(
        experiment_id="ablation_diurnal",
        description="Sizing point under a diurnal spike-rate schedule",
        params={"n_vms": n_vms, "n_steps": n_steps, "rho": 0.01,
                "schedule": "STANDARD_DAY (0.2x..3x)"},
        headers=["sizing", "PMs_used", "overall_CVR",
                 "quiet_CVR(0.2x)", "busy_CVR(3x)"],
    )
    vms, pms = generate_pattern_instance("equal", n_vms, seed=seed)
    states = ensemble_states_diurnal(vms, STANDARD_DAY, n_steps,
                                     seed=seed + 1)
    demands = demand_trace(vms, states[:, 1:])
    caps = np.array([p.capacity for p in pms])

    q_ref = effective_q(vms[0], STANDARD_DAY)
    for label in ("mean", "peak"):
        # Re-express the sizing point as an equivalent homogeneous p_on so
        # the unmodified QueuingFFD machinery can be used.
        q = q_ref[label]
        p_on_equiv = q * vms[0].p_off / (1.0 - q)
        sized_vms = [
            VMSpec(min(p_on_equiv, 0.99), v.p_off, v.r_base, v.r_extra)
            for v in vms
        ]
        placement = QueuingFFD(rho=0.01, d=16).place(sized_vms, pms)
        loads = pm_load_trace(placement, demands)
        used = placement.used_pms()
        by_phase = phase_cvr(loads[used], caps[used], STANDARD_DAY)
        overall = float((loads[used] > caps[used][:, None] + 1e-9).mean())
        result.add_row(f"{label}-hour q", placement.n_used_pms, overall,
                       by_phase.get(0.2, 0.0), by_phase.get(3.0, 0.0))
    return result


ABLATIONS["ablation_diurnal"] = (
    run_diurnal_ablation,
    "Diurnal schedules: sizing at the mean vs the peak hour",
)


# --------------------------------------------------------------------- #
# fairness of violation suffering
# --------------------------------------------------------------------- #
def run_fairness_ablation(n_vms=100, n_intervals=300, seeds=(190, 191, 192)):
    """Who absorbs the violations?  Per-VM suffering fairness on spare-free
    fleets.  Measured shape: RB's suffering is *ubiquitous* — so many PMs
    violate that nearly every VM shares it (high Jain index), at ~10,000x
    QUEUE's total; QUEUE's negligible total concentrates on the tenants of
    the one-in-twenty PM whose CVR sits slightly above rho (lower Jain,
    tiny total).  Fairness indices must be read alongside magnitude."""
    from repro.analysis.fairness import fairness_report
    from repro.core.types import Placement

    result = ExperimentResult(
        experiment_id="ablation_fairness",
        description="Per-VM violation suffering: totals and fairness indices",
        params={"n_vms": n_vms, "n_intervals": n_intervals,
                "repetitions": len(seeds), "fleet": "spare-free"},
        headers=["strategy", "total_suffering_avg", "jain_avg", "gini_avg",
                 "max_share_avg"],
    )
    strategies = {
        "QUEUE": lambda: QueuingFFD(rho=0.01, d=16),
        "RB": lambda: ffd_by_base(max_vms_per_pm=16),
    }
    for name, factory in strategies.items():
        totals, jains, ginis, shares = [], [], [], []
        for seed in seeds:
            vms, pms = generate_pattern_instance("equal", n_vms, seed=seed)
            placement = factory().place(vms, pms)
            m = int(placement.used_pms().max()) + 1
            placement = Placement(len(vms), m,
                                  assignment=placement.assignment)
            sim = run_simulation(vms, pms[:m], placement,
                                 n_intervals=n_intervals, seed=seed + 900)
            report = fairness_report(sim.record.vm_suffering_fraction())
            totals.append(report["total"])
            jains.append(report["jain"])
            ginis.append(report["gini"])
            shares.append(report["max_share"])
        result.add_row(name, float(np.mean(totals)), float(np.mean(jains)),
                       float(np.mean(ginis)), float(np.mean(shares)))
    return result


ABLATIONS["ablation_fairness"] = (
    run_fairness_ablation,
    "Per-VM violation-suffering fairness (Jain/Gini) per strategy",
)


# --------------------------------------------------------------------- #
# fault domains: correlated rack outages vs packing density
# --------------------------------------------------------------------- #
def run_faultdomain_ablation(n_vms=100, n_intervals=200, rack_size=2,
                             spread_cap=8, seeds=(210, 211, 212)):
    """Correlated rack outages: availability and blast radius per strategy.

    Each strategy gets a fleet sized to its own packing plus one spare
    rack (rounded up to whole racks), wired into racks of ``rack_size``
    PMs that fail together — so spare headroom is equally scarce for
    dense and loose packers alike.  QUEUE is run twice — unconstrained
    and with a :class:`DomainSpreadConstraint` of ``spread_cap`` VMs per
    rack — to price the density/blast-radius trade: the spread variant
    uses more PMs but caps how many VMs one rack outage can take down at
    once."""
    from repro.placement.base import InsufficientCapacityError
    from repro.placement.spread import DomainSpreadConstraint
    from repro.simulation.scenario import Scenario
    from repro.simulation.topology import Topology

    result = ExperimentResult(
        experiment_id="ablation_faultdomains",
        description="Rack-correlated failures: availability vs packing density",
        params={"n_vms": n_vms, "n_intervals": n_intervals,
                "rack_size": rack_size, "spread_cap": spread_cap,
                "p_fail": 0.002, "p_domain_fail": 0.01,
                "repetitions": len(seeds)},
        headers=["strategy", "initial_pms_avg", "mean_avail", "min_avail",
                 "mttr_avg", "blast_max_avg", "degraded_vmi_avg",
                 "stranded_vmi_avg"],
    )
    failure_kwargs = {"failure_probability": 0.002,
                      "repair_probability": 0.2,
                      "domain_failure_probability": 0.01,
                      "domain_repair_probability": 0.2}

    factories = {
        "QUEUE": lambda topo: QueuingFFD(rho=0.01, d=16),
        "QUEUE+spread": lambda topo: QueuingFFD(
            rho=0.01, d=16,
            spread=DomainSpreadConstraint(topo, spread_cap)),
        "RP": lambda topo: ffd_by_peak(max_vms_per_pm=16),
        "RB": lambda topo: ffd_by_base(max_vms_per_pm=16),
    }

    def racks_for(n):
        """Smallest whole-rack fleet size covering ``n`` PMs + 1 spare rack."""
        return (-(-n // rack_size) + 1) * rack_size

    rows: dict[str, list[list[float]]] = {}
    for seed in seeds:
        vms, pms = generate_pattern_instance("equal", n_vms, seed=seed)
        for name, make in factories.items():
            # Size each strategy's fleet to its own packing plus one spare
            # rack so headroom is equally scarce across strategies.  The
            # spread cap can force extra PMs beyond the unconstrained
            # packing; grow rack by rack until the placement fits.
            probe_topo = Topology.racks(len(pms), rack_size)
            m = racks_for(make(probe_topo).place(vms, pms).n_used_pms)
            while True:
                topology = Topology.racks(m, rack_size)
                try:
                    report = Scenario(
                        vms, pms[:m], placer=make(topology),
                        topology=topology, failures=failure_kwargs,
                    ).run(n_intervals, seed=seed + 500)
                    break
                except InsufficientCapacityError:
                    m += rack_size
            avail = report.availability
            rows.setdefault(name, []).append([
                float(report.initial_pms_used),
                avail["mean_availability"],
                avail["min_availability"],
                avail["mttr_intervals"],
                avail["blast_max"],
                float(report.failures.degraded_vm_intervals),
                float(report.failures.stranded_vm_intervals),
            ])
    for name, samples in rows.items():
        result.add_row(name, *[float(np.mean(col))
                               for col in zip(*samples)])
    return result


ABLATIONS["ablation_faultdomains"] = (
    run_faultdomain_ablation,
    "Correlated rack outages: availability vs packing density",
)


# imported late: autopilot_ablation pulls in the full simulation stack
from repro.experiments.autopilot_ablation import run_autopilot_ablation  # noqa: E402

ABLATIONS["ablation_autopilot"] = (
    run_autopilot_ablation,
    "Regime shift: autopilot vs oracle refit vs never adapting",
)


# --------------------------------------------------------------------- #
# request-level serving: consolidation strategy x load-leveling tier
# --------------------------------------------------------------------- #
def run_serving_ablation(n_vms=40, n_intervals=150, seed=7):
    """Consolidation strategies scored on what the user feels.

    Runs the same fleet under QUEUE (the paper's QueuingFFD), FFD-by-base
    and FFD-by-peak placements, each with and without the queue-based
    load-leveling tier, and reports the request-level outcomes alongside
    the paper's CVR: latency percentiles, loss rate, and the empirical
    ``P(T_S > t)`` SLA tail (see ``docs/SERVING.md``).

    Migration uses the paper's tolerant sliding-window CVR trigger (not
    instant overflow repair) so placements that rely on repair carry
    their residual violations into the serving plane — that is the
    consolidation-to-latency coupling the ablation measures.
    """
    from repro.simulation.scenario import Scenario
    from repro.simulation.triggers import SlidingWindowCVRTrigger

    sla_t = Scenario.SERVING_DEFAULTS["sla_t"]
    result = ExperimentResult(
        experiment_id="ablation_serving",
        description="Request-level serving: placement x load-leveling tier",
        params={"n_vms": n_vms, "n_intervals": n_intervals, "seed": seed,
                "sla_t": sla_t},
        headers=["strategy", "PMs_used", "mean_CVR", "p50", "p95", "p99",
                 "loss_rate", "P(T>t)"],
    )
    vms, pms = generate_pattern_instance("equal", n_vms, seed=seed)
    strategies = {
        "QUEUE": QueuingFFD(rho=0.01, d=16),
        "FFD-base": ffd_by_base(max_vms_per_pm=16),
        "FFD-peak": ffd_by_peak(max_vms_per_pm=16),
    }
    for name, placer in strategies.items():
        for tier in (False, True):
            report = Scenario(
                vms, pms, placer=placer, serving={"tier": tier},
                trigger=SlidingWindowCVRTrigger(len(pms), rho=0.05),
            ).run(n_intervals, seed=seed)
            serving = report.serving
            result.add_row(
                name + ("+tier" if tier else ""),
                report.final_pms_used,
                report.mean_cvr,
                serving.p50,
                serving.p95,
                serving.p99,
                serving.loss_rate,
                serving.sla_violation_fraction,
            )
    return result


ABLATIONS["ablation_serving"] = (
    run_serving_ablation,
    "Request-level serving: latency/loss per placement, with/without tier",
)


# imported late: the service tier pulls in WAL/pool/breaker machinery
from repro.experiments.service_ablation import run_service_ablation  # noqa: E402

ABLATIONS["ablation_service"] = (
    run_service_ablation,
    "Placement service: GRAND vs QueuingFFD under sustained load, "
    "elastic pool, fluid-limit bound",
)
