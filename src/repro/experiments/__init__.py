"""Experiment reproductions, one module per paper artifact.

Each ``run_*`` function is deterministic given its seed, returns an
:class:`repro.analysis.report.ExperimentResult`, and is exercised by the
corresponding benchmark in ``benchmarks/``.

| Artifact  | Module            | What it regenerates                              |
|-----------|-------------------|--------------------------------------------------|
| Fig. 5    | fig5_packing      | PMs used by QUEUE/RP/RB per pattern              |
| Fig. 6    | fig6_cvr          | per-PM CVR distribution of QUEUE/RB placements   |
| Fig. 7    | fig7_cost         | Algorithm 2 computation cost vs d and n          |
| Fig. 8    | fig8_trace        | sample web-server workload trace                 |
| Table I   | table1            | workload-pattern specifications                  |
| Fig. 9    | fig9_migration    | migrations + final PMs with live migration       |
| Fig. 10   | fig10_timeline    | time-ordered migration events                    |
"""

from repro.experiments.config import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    strategies_for_packing,
    strategies_for_runtime,
)
from repro.experiments.fig5_packing import run_fig5
from repro.experiments.fig6_cvr import run_fig6
from repro.experiments.fig7_cost import run_fig7
from repro.experiments.fig8_trace import run_fig8
from repro.experiments.fig9_migration import run_fig9
from repro.experiments.fig10_timeline import run_fig10
from repro.experiments.table1 import run_table1

__all__ = [
    "DEFAULT_SETTINGS",
    "ExperimentSettings",
    "strategies_for_packing",
    "strategies_for_runtime",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_table1",
]
