"""The ``perf_scaling`` experiment: a perf probe that rides the bench suite.

``python -m repro perf`` is the interactive scaling harness; this module
packages a small fixed sweep as a registered experiment so the *durable*
bench runner (journal, retries, quarantine, ``bench --parallel``) and the
plain suite (``python -m repro bench``) exercise the perf observatory like
any other artifact.  The rendered table contains only run-invariant facts
(structure counts, event counts, span call counts) — wall clock would
break the byte-identical serial-vs-parallel contract of
``BENCH_results.json``.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentResult

#: fixed probe parameters — small enough to keep the suite fast
SWEEP_SIZES = (20, 40)
INTERVALS = 10
SEED = 2013


def run_perf_scaling() -> ExperimentResult:
    """Run the fixed probe sweep; tabulate its deterministic facts."""
    from repro.observability.perf import run_perf_sweep

    sweep = run_perf_sweep(sweep=SWEEP_SIZES, intervals=INTERVALS,
                           repeats=1, seed=SEED, mode="vector",
                           trace_memory=False)
    result = ExperimentResult(
        experiment_id="perf_scaling",
        description="perf observatory probe: deterministic scaling facts",
        params={"sweep": list(SWEEP_SIZES), "intervals": INTERVALS,
                "seed": SEED, "mode": "vector"},
        headers=["n_vms", "n_pms", "vm_intervals", "events", "migrations",
                 "ticks", "span_names"],
    )
    for n, point in sorted(sweep.points.items()):
        result.add_row(
            point.n_vms, point.n_pms, point.vm_intervals,
            point.events_emitted, point.migrations,
            point.span_calls.get("tick", 0), len(point.span_calls),
        )
    checks = []
    for n, point in sorted(sweep.points.items()):
        phase_sum = sum(point.report.phase_seconds.values())
        total = point.report.tick_seconds
        ok = total == 0 or abs(phase_sum - total) <= 0.05 * total
        checks.append(ok)
    result.notes.append(
        "phase attribution sums to tick total at every size: "
        + ("PASS" if all(checks) else "FAIL"))
    return result
