"""``ablation_service``: the placement service under sustained load.

Drives :class:`~repro.service.service.PlacementService` with a
deterministic arrival/departure process at several sustained rates and
compares the two selection rules it supports — the paper's QueuingFFD
first-fit and GRAND's uniform-random choice (arXiv:1212.0875) — with the
elastic PM pool off and on.

The yardstick is the **fluid-limit bound**: with mean offered load
``n = rate x mean_lifetime`` VMs and at most ``k*`` VMs per PM (the
largest ``k`` whose Eq. (17) reservation ``r_extra * table[k] +
k * r_base`` fits the capacity), no policy can hold steady state on fewer
than ``ceil(n / k*)`` PMs.  GRAND's spreading is expected to cost PMs
against first-fit at moderate load and to converge toward the same bound
as load saturates — that convergence is Stolyar's asymptotic-optimality
claim, observed here through the service (WAL, inbox, pool guard and all)
rather than through a bare packing loop.

Everything is seeded and hash-based, so reruns are byte-identical — the
CI ``service-smoke`` job asserts exactly that.
"""

from __future__ import annotations

import math
import tempfile
from pathlib import Path

import numpy as np

from repro.analysis.report import ExperimentResult
from repro.core.mapcal import mapcal_table
from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import PMSpec, VMSpec
from repro.placement.grand import GreedyRandomPlacer
from repro.service.pool import ElasticPMPool
from repro.service.service import PlacementService


def fluid_limit_pms(rate: float, mean_life: float, vm: VMSpec,
                    capacity: float, *, rho: float, d: int) -> int:
    """Lower bound on steady-state PMs for a homogeneous offered load.

    ``k*`` is the densest per-PM packing the Eq. (17) reservation allows
    for this VM class; the fluid limit then needs at least
    ``ceil(rate * mean_life / k*)`` PMs.  Infeasible VM classes (no
    ``k >= 1`` fits) raise — the experiment is misconfigured.
    """
    table = mapcal_table(d, vm.p_on, vm.p_off, rho)
    k_star = 0
    for k in range(1, d + 1):
        if vm.r_extra * int(table.table[k]) + k * vm.r_base \
                <= capacity + 1e-9:
            k_star = k
    if k_star == 0:
        raise ValueError("VM class fits on no PM; raise capacity")
    return max(1, math.ceil(rate * mean_life / k_star))


def _drive_service(placer, *, elastic: bool, rate: float, n_pms: int,
                   capacity: float, n_ticks: int, mean_life: float,
                   seed: int, workdir: Path) -> dict:
    """One service run; returns summary stats (deterministic in ``seed``)."""
    rng = np.random.RandomState(seed)
    pms = [PMSpec(capacity=capacity)] * n_pms
    pool = None
    if elastic:
        pool = ElasticPMPool(n_pms, initial_active=max(2, n_pms // 2),
                             low_watermark=1, high_watermark=2,
                             patience=4, drain_ticks=2)
    svc = PlacementService(
        pms, placer, wal_path=workdir / "wal.jsonl",
        checkpoint_path=workdir / "ckpt.json", checkpoint_every=256,
        inbox_capacity=64, pool=pool)
    deaths: dict[int, list[int]] = {}  # tick -> vm_ids departing
    used_samples: list[int] = []
    for t in range(n_ticks):
        for vm_id in deaths.pop(t, []):
            svc.depart(f"d-{vm_id}", vm_id)
        n_arr = int(rng.poisson(rate))
        keys = [f"a-{t}-{j}" for j in range(n_arr)]
        vm = VMSpec(p_on=0.1, p_off=0.5, r_base=2.0, r_extra=3.0)
        for key in keys:
            svc.submit(key, vm)
        svc.drain()
        for key in keys:
            outcome = svc.results.get(key)
            if outcome and outcome["op"] == "admit":
                life = int(rng.geometric(1.0 / mean_life))
                deaths.setdefault(t + max(1, life), []).append(
                    outcome["vm_id"])
        used_samples.append(svc.consolidator.n_used_pms)
    m = svc.metrics()
    # The drain-before-retire guard is an invariant, not a sample: every
    # retired PM went through prepare -> empty -> commit, or PoolGuardError
    # would have aborted the run above.
    return {
        "mean_used": float(np.mean(used_samples)) if used_samples else 0.0,
        "peak_used": int(max(used_samples)) if used_samples else 0,
        "shed_rate": (m["shed"] / m["requests"]) if m["requests"] else 0.0,
        "retired": m["retired_pms"],
        "active": m["active_pms"],
    }


def run_service_ablation(n_pms=10, capacity=10.0, n_ticks=40, mean_life=8.0,
                         rates=(0.5, 2.0, 5.0), seed=11):
    """PMs-used vs. the fluid bound: QueuingFFD x GRAND x pool elasticity."""
    vm = VMSpec(p_on=0.1, p_off=0.5, r_base=2.0, r_extra=3.0)
    result = ExperimentResult(
        experiment_id="ablation_service",
        description="Placement service: QueuingFFD vs GRAND, static vs "
                    "elastic pool, PMs-used against the fluid-limit bound",
        params={"n_pms": n_pms, "capacity": capacity, "n_ticks": n_ticks,
                "mean_life": mean_life, "rates": list(rates), "seed": seed},
        headers=["strategy", "pool", "rate", "PMs_fluid", "mean_used",
                 "peak_used", "shed_rate", "retired"],
    )
    for rate in rates:
        bound = fluid_limit_pms(rate, mean_life, vm, capacity,
                                rho=0.01, d=8)
        for name, make_placer in (
            ("QUEUE", lambda: QueuingFFD(rho=0.01, d=8)),
            ("GRAND", lambda: GreedyRandomPlacer(rho=0.01, d=8, seed=seed)),
        ):
            for elastic in (False, True):
                with tempfile.TemporaryDirectory() as tmp:
                    stats = _drive_service(
                        make_placer(), elastic=elastic, rate=rate,
                        n_pms=n_pms, capacity=capacity, n_ticks=n_ticks,
                        mean_life=mean_life, seed=seed, workdir=Path(tmp))
                result.add_row(
                    name, "elastic" if elastic else "static", rate, bound,
                    round(stats["mean_used"], 2), stats["peak_used"],
                    round(stats["shed_rate"], 4), stats["retired"])
    return result
