"""Regime-shift ablation: autopilot vs oracle knowledge vs never adapting.

The scenario every arm shares: a fleet consolidated by QueuingFFD against
the paper's nominal law (``p_on = 0.01``), whose true spike rate then
shifts mid-run (``p_on`` multiplied severalfold).  The placement's CVR
guarantee evaporates; the three arms differ only in what the control plane
does about it:

- **never-adapt** — the paper's posture: the one-shot placement stands,
  only the (deliberately tolerant) reactive trigger fights the violations.
- **autopilot** — :class:`repro.autopilot.Autopilot` closed loop: detect
  drift / SLO burn, refit from the live stream, replan under a migration
  budget, guarded by checkpoint rollback.
- **oracle** — upper bound: the true post-shift parameters are handed to
  the scheduler one interval after the shift, same migration budget.

Scored on post-shift windowed CVR, SLO burn (alert-active intervals), and
migration spend — the acceptance gate asserts the autopilot beats
never-adapt on CVR and burn while staying within its budget.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.analysis.report import ExperimentResult
from repro.autopilot import Autopilot, AutopilotConfig
from repro.core.queuing_ffd import QueuingFFD
from repro.core.types import VMSpec
from repro.observability import Observatory
from repro.simulation import Scenario
from repro.simulation.triggers import SlidingWindowCVRTrigger
from repro.telemetry import RingBufferSink, Telemetry
from repro.workload.patterns import generate_pattern_instance

__all__ = [
    "build_autopilot_scenario",
    "regime_shift_hook",
    "run_autopilot_ablation",
]

#: reconsolidation knobs shared by every arm: on-demand replans only (the
#: periodic cadence is disabled) and a deliberately slow reactive path, so
#: the difference between arms is the *planned* adaptation
RECON_KWARGS = {"period": 10**9, "max_migrations_per_interval": 2}


def build_autopilot_scenario(
    vms: list[VMSpec],
    pms: list,
    *,
    rho: float = 0.01,
    d: int = 16,
    telemetry: Telemetry | None = None,
    observatory: Observatory | None = None,
    reactive_rho: float = 0.3,
) -> Scenario:
    """The shared arm stack: QueuingFFD + tolerant trigger + replan layer.

    The reactive trigger is a :class:`SlidingWindowCVRTrigger` with a
    *loose* threshold (``reactive_rho``), modelling an operator who
    tolerates violations rather than thrashing — the regime where planned
    adaptation (or the lack of it) dominates the outcome.
    """
    if observatory is None:
        observatory = Observatory(rho=rho)
    if telemetry is None:
        telemetry = Telemetry(RingBufferSink())
    return Scenario(
        vms, pms,
        placer=QueuingFFD(rho=rho, d=d),
        trigger=SlidingWindowCVRTrigger(len(pms), rho=reactive_rho,
                                        window=50),
        telemetry=telemetry,
        observatory=observatory,
        start_stationary=True,
        reconsolidation={"rho": rho, "d": d, **RECON_KWARGS},
    )


def regime_shift_hook(scenario: Scenario, *, shift_at: int,
                      p_on: float) -> Callable[[int], None]:
    """An ``on_tick`` hook drifting the whole fleet's spike rate once."""
    def on_tick(t: int) -> None:
        if t == shift_at:
            scenario.datacenter.set_switch_probabilities(
                range(scenario.datacenter.n_vms), p_on=p_on)
    return on_tick


def _burn_intervals(obs: Observatory, end_time: int) -> int:
    """Total alert-active intervals across the SLO timeline."""
    return sum(
        (span.resolved_at if span.resolved_at is not None else end_time)
        - span.fired_at
        for span in obs.slo.timeline
    )


def _arm_metrics(obs: Observatory, *, end_time: int,
                 post_window: int) -> dict[str, float]:
    return {
        "cvr_post": obs.recorder.cvr(post_window),
        "burn_intervals": float(_burn_intervals(obs, end_time)),
    }


def run_autopilot_ablation(
    n_vms: int = 48,
    n_intervals: int = 420,
    shift_at: int = 60,
    shifted_p_on: float = 0.05,
    rho: float = 0.01,
    migration_budget: int = 24,
    seed: int = 230,
    config: AutopilotConfig | None = None,
) -> ExperimentResult:
    """Score the three adaptation postures under one regime shift.

    All arms share the instance, the initial placement, and the workload
    seed; they diverge only once their control planes act.  The autopilot
    acceptance assertions (beats never-adapt on CVR and burn, stays within
    budget) live in ``tests/test_experiments_autopilot.py`` and the CI
    ``autopilot-smoke`` job, not here — the table is descriptive.
    """
    vms, pms = generate_pattern_instance("equal", n_vms, seed=seed)
    post_window = max(60, n_intervals - shift_at - 120)
    if config is None:
        config = AutopilotConfig(migration_budget=migration_budget)

    result = ExperimentResult(
        experiment_id="ablation_autopilot",
        description="Closed-loop adaptation under a p_on regime shift",
        params={"n_vms": n_vms, "n_intervals": n_intervals,
                "shift_at": shift_at, "shifted_p_on": shifted_p_on,
                "rho": rho, "migration_budget": config.migration_budget,
                "seed": seed},
        headers=["arm", "CVR_post", "burn_intervals", "migrations",
                 "planned_migrations", "replans", "rollbacks"],
    )

    arms: dict[str, dict[str, Any]] = {}

    # -- never-adapt -------------------------------------------------- #
    obs = Observatory(rho=rho)
    sc = build_autopilot_scenario(vms, pms, rho=rho, observatory=obs)
    hook = regime_shift_hook(sc, shift_at=shift_at, p_on=shifted_p_on)
    report = sc.run(n_intervals, seed=seed, on_tick=hook)
    arms["never-adapt"] = {
        **_arm_metrics(obs, end_time=n_intervals, post_window=post_window),
        "migrations": report.total_migrations,
        "planned": 0, "replans": 0, "rollbacks": 0,
        "observatory": obs, "report": report,
    }

    # -- autopilot ---------------------------------------------------- #
    obs = Observatory(rho=rho)
    sc = build_autopilot_scenario(vms, pms, rho=rho, observatory=obs)
    hook = regime_shift_hook(sc, shift_at=shift_at, p_on=shifted_p_on)
    pilot = Autopilot(sc, config=config)
    ap = pilot.run(n_intervals, seed=seed, on_tick=hook)
    arms["autopilot"] = {
        **_arm_metrics(obs, end_time=n_intervals, post_window=post_window),
        "migrations": ap.report.total_migrations,
        "planned": ap.planned_migrations,
        "replans": ap.replans_started, "rollbacks": ap.replans_rolled_back,
        "observatory": obs, "report": ap.report, "autopilot": ap,
    }

    # -- oracle ------------------------------------------------------- #
    obs = Observatory(rho=rho)
    sc = build_autopilot_scenario(vms, pms, rho=rho, observatory=obs)
    hook = regime_shift_hook(sc, shift_at=shift_at, p_on=shifted_p_on)
    run = sc.start(seed=seed, on_tick=hook)
    true_specs = [VMSpec(shifted_p_on, v.p_off, v.r_base, v.r_extra)
                  for v in vms]
    planned = 0
    try:
        run.advance(shift_at + 1)
        run.scheduler.request_replan(vms=true_specs,
                                     max_moves=config.migration_budget)
        run.datacenter.set_assumed_law(
            [v.p_on for v in true_specs], [v.p_off for v in true_specs])
        obs.drift.reset_evidence()
        run.advance(n_intervals - run.time)
        planned = run.scheduler.planned_migrations
    finally:
        run.close()
    report = run.finish()
    arms["oracle"] = {
        **_arm_metrics(obs, end_time=n_intervals, post_window=post_window),
        "migrations": report.total_migrations,
        "planned": planned, "replans": 1, "rollbacks": 0,
        "observatory": obs, "report": report,
    }

    for name in ("never-adapt", "autopilot", "oracle"):
        a = arms[name]
        result.add_row(name, a["cvr_post"], a["burn_intervals"],
                       a["migrations"], a["planned"], a["replans"],
                       a["rollbacks"])
    result.notes.append(
        "CVR_post = windowed CVR over the last "
        f"{post_window} intervals; burn_intervals = SLO alert-active "
        "intervals (x0.5 = burn-minutes at the paper's 30 s interval)")
    #: stashed for tests/CI gating (not part of the rendered table)
    result.arms = arms  # type: ignore[attr-defined]
    return result
