"""Figure 5: packing results (PMs used by QUEUE / RP / RB).

The paper plots, per workload pattern, the number of PMs each strategy uses
as the VM count grows.  Section V-C reports QUEUE's reduction vs RP as 45%
for ``R_b > R_e``, 30% for ``R_b = R_e`` and 18% for ``R_b < R_e`` (note the
abstract instead attributes 45% to *large* spikes — the paper is internally
inconsistent here; EXPERIMENTS.md records our measured values against both
readings).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.consolidation import pm_reduction_percent
from repro.analysis.report import ExperimentResult
from repro.experiments.config import DEFAULT_SETTINGS, ExperimentSettings, strategies_for_packing
from repro.utils.rng import SeedLike, spawn_children
from repro.workload.patterns import PatternName, generate_pattern_instance

PATTERNS: tuple[PatternName, ...] = ("equal", "small", "large")
PATTERN_LABELS = {"equal": "Rb=Re", "small": "Rb>Re", "large": "Rb<Re"}


def run_fig5(
    *,
    n_vms_list: Sequence[int] = (100, 200, 400, 800),
    n_repetitions: int = 3,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    seed: SeedLike = 2013,
) -> ExperimentResult:
    """Regenerate Fig. 5(a-c): PMs used per strategy, pattern and VM count.

    Each (pattern, n) cell averages ``n_repetitions`` random instances.
    Columns additionally report QUEUE's percent PM reduction vs RP and the
    extra PMs QUEUE needs vs RB.
    """
    result = ExperimentResult(
        experiment_id="fig5",
        description="Packing result: PMs used by QUEUE vs FFD-by-Rp vs FFD-by-Rb",
        params={
            "rho": settings.rho, "d": settings.d,
            "p_on": settings.p_on, "p_off": settings.p_off,
            "repetitions": n_repetitions,
        },
        headers=["pattern", "n_vms", "QUEUE", "RP", "RB",
                 "QUEUE_vs_RP_%", "QUEUE_extra_vs_RB"],
    )
    strategies = strategies_for_packing(settings)
    rngs = iter(spawn_children(seed, len(PATTERNS) * len(n_vms_list) * n_repetitions))
    for pattern in PATTERNS:
        for n in n_vms_list:
            used = {name: [] for name in strategies}
            reductions, extras = [], []
            for _ in range(n_repetitions):
                rng = next(rngs)
                vms, pms = generate_pattern_instance(
                    pattern, n, p_on=settings.p_on, p_off=settings.p_off, seed=rng
                )
                placements = {
                    name: placer.place(vms, pms)
                    for name, placer in strategies.items()
                }
                for name, placement in placements.items():
                    used[name].append(placement.n_used_pms)
                reductions.append(
                    pm_reduction_percent(placements["QUEUE"], placements["RP"])
                )
                extras.append(
                    placements["QUEUE"].n_used_pms - placements["RB"].n_used_pms
                )
            result.add_row(
                PATTERN_LABELS[pattern], n,
                float(np.mean(used["QUEUE"])),
                float(np.mean(used["RP"])),
                float(np.mean(used["RB"])),
                float(np.mean(reductions)),
                float(np.mean(extras)),
            )
    # Shape notes matching the paper's claims.
    by_pattern = {}
    for row in result.rows:
        by_pattern.setdefault(row[0], []).append(row[5])
    for label, reds in by_pattern.items():
        result.notes.append(
            f"{label}: QUEUE uses {np.mean(reds):.0f}% fewer PMs than RP "
            f"(paper: ~30% for Rb=Re, 45% for Rb>Re, 18% for Rb<Re)"
        )
    return result
