"""Machine-checkable paper claims.

EXPERIMENTS.md records paper-vs-measured prose; this module makes the
headline claims *executable*: each :class:`PaperClaim` names the paper
statement, the experiment that produces the evidence, and a predicate over
that experiment's result table.  :func:`verify_claims` runs them and
returns a pass/fail report — the one-command answer to "does the
reproduction still hold?" (``python -m repro claims``).

Claims use reduced-scale experiment parameters so the whole sweep finishes
in about a minute; the benchmarks assert the same shapes at full scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analysis.report import ExperimentResult
from repro.experiments.fig5_packing import run_fig5
from repro.experiments.fig6_cvr import run_fig6
from repro.experiments.fig9_migration import run_fig9

CheckFn = Callable[[ExperimentResult], bool]


@dataclass(frozen=True)
class PaperClaim:
    """One verifiable claim from the paper.

    Attributes
    ----------
    claim_id:
        Short identifier (used in the report table).
    statement:
        The paper's claim, paraphrased.
    source:
        Where the paper makes it (section/figure).
    check:
        Predicate over the evidence experiment's result.
    """

    claim_id: str
    statement: str
    source: str
    check: CheckFn


def _mean_reduction(result: ExperimentResult, pattern: str) -> float:
    return float(np.mean([r[5] for r in result.rows if r[0] == pattern]))


def _fig5_checks() -> list[PaperClaim]:
    return [
        PaperClaim(
            "pm-reduction-large",
            "QUEUE uses up to ~45% fewer PMs than peak provisioning with "
            "large spikes",
            "abstract / Fig. 5(c)",
            lambda r: _mean_reduction(r, "Rb<Re") >= 35.0,
        ),
        PaperClaim(
            "pm-reduction-normal",
            "QUEUE uses ~30% fewer PMs than peak provisioning with normal "
            "spikes",
            "abstract / Fig. 5(a)",
            lambda r: 18.0 <= _mean_reduction(r, "Rb=Re") <= 40.0,
        ),
        PaperClaim(
            "queue-between-rb-and-rp",
            "QUEUE packs between normal and peak provisioning everywhere",
            "Fig. 5",
            lambda r: all(row[4] <= row[2] <= row[3] for row in r.rows),
        ),
    ]


def _fig6_checks() -> list[PaperClaim]:
    def queue_bounded(r: ExperimentResult) -> bool:
        return all(row[2] <= 0.02 for row in r.rows if row[1] == "QUEUE")

    def rp_clean(r: ExperimentResult) -> bool:
        return all(row[2] == 0.0 for row in r.rows if row[1] == "RP")

    def rb_disastrous(r: ExperimentResult) -> bool:
        return all(row[2] > 0.1 for row in r.rows if row[1] == "RB")

    return [
        PaperClaim(
            "cvr-bounded",
            "QUEUE's CVR stays bounded by rho (a few PMs slightly above)",
            "Section V-C / Fig. 6",
            queue_bounded,
        ),
        PaperClaim(
            "rp-never-violates",
            "Peak provisioning never incurs capacity violations",
            "Section V-C",
            rp_clean,
        ),
        PaperClaim(
            "rb-disastrous",
            "Normal provisioning's CVR is unacceptably high",
            "Section V-C / Fig. 6",
            rb_disastrous,
        ),
    ]


def _fig9_checks() -> list[PaperClaim]:
    def by(r: ExperimentResult, pattern: str, strategy: str):
        return next(row for row in r.rows
                    if row[0] == pattern and row[1] == strategy)

    def rb_migrates_most(r: ExperimentResult) -> bool:
        return all(
            by(r, p, "RB")[2] > 3 * max(by(r, p, "QUEUE")[2], 0.5)
            for p in ("Rb=Re", "Rb>Re", "Rb<Re")
        )

    def queue_rarely_migrates(r: ExperimentResult) -> bool:
        return all(by(r, p, "QUEUE")[2] <= 4.0
                   for p in ("Rb=Re", "Rb>Re", "Rb<Re"))

    def rbex_between(r: ExperimentResult) -> bool:
        return all(by(r, p, "RB-EX")[2] <= by(r, p, "RB")[2]
                   for p in ("Rb=Re", "Rb>Re", "Rb<Re"))

    def cycle_migration_keeps_rb_low(r: ExperimentResult) -> bool:
        return all(by(r, p, "RB")[5] <= by(r, p, "QUEUE")[5] + 1.0
                   for p in ("Rb=Re", "Rb>Re", "Rb<Re"))

    return [
        PaperClaim(
            "rb-migration-storm",
            "RB incurs unacceptably more migrations than QUEUE",
            "Section V-D / Fig. 9(a)",
            rb_migrates_most,
        ),
        PaperClaim(
            "queue-migration-free",
            "QUEUE incurs very few migrations throughout",
            "Section V-D",
            queue_rarely_migrates,
        ),
        PaperClaim(
            "rbex-alleviates",
            "RB-EX alleviates the migration problem to some extent",
            "Section V-D",
            rbex_between,
        ),
        PaperClaim(
            "cycle-migration",
            "Cycle migration keeps RB's PM count at or below QUEUE's "
            "despite the thrash",
            "Section V-D / Fig. 9(b)",
            cycle_migration_keeps_rb_low,
        ),
    ]


#: evidence experiments (reduced scale) and the claims they support
CLAIM_SUITES: list[tuple[str, Callable[[], ExperimentResult],
                         list[PaperClaim]]] = [
    ("fig5", lambda: run_fig5(n_vms_list=(100, 200), n_repetitions=3,
                              seed=2013), _fig5_checks()),
    ("fig6", lambda: run_fig6(n_vms=120, n_steps=10_000, n_repetitions=2,
                              seed=2013), _fig6_checks()),
    ("fig9", lambda: run_fig9(n_vms=100, n_repetitions=5, seed=2013),
     _fig9_checks()),
]


def verify_claims() -> ExperimentResult:
    """Run every evidence experiment and evaluate every claim.

    Returns a table with one row per claim: id, source, verdict.
    """
    report = ExperimentResult(
        experiment_id="claims",
        description="Machine-checked paper claims (reduced scale)",
        headers=["claim", "source", "verdict", "statement"],
    )
    for _, evidence_fn, claims in CLAIM_SUITES:
        evidence = evidence_fn()
        for claim in claims:
            verdict = "PASS" if claim.check(evidence) else "FAIL"
            report.add_row(claim.claim_id, claim.source, verdict,
                           claim.statement)
    report.notes.append(
        f"{sum(1 for r in report.rows if r[2] == 'PASS')}/"
        f"{len(report.rows)} claims hold at reduced scale"
    )
    return report
