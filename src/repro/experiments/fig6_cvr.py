"""Figure 6: runtime CVR of the Fig. 5 placements (no live migration).

Only local resizing is allowed; per-PM CVR (Eq. 4) is measured on simulated
ON-OFF traces.  The paper's observations: QUEUE's CVR stays bounded by rho
(a very few PMs slightly above), RB's CVR is "unacceptably high", and RP is
omitted because it can never violate.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cvr import cvr_per_pm
from repro.analysis.report import ExperimentResult
from repro.experiments.config import DEFAULT_SETTINGS, ExperimentSettings, strategies_for_packing
from repro.utils.rng import SeedLike, spawn_children
from repro.workload.onoff_generator import ensemble_states
from repro.workload.patterns import PatternName, generate_pattern_instance

PATTERNS: tuple[PatternName, ...] = ("equal", "small", "large")
PATTERN_LABELS = {"equal": "Rb=Re", "small": "Rb>Re", "large": "Rb<Re"}


def run_fig6(
    *,
    n_vms: int = 200,
    n_steps: int = 20_000,
    n_repetitions: int = 3,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    seed: SeedLike = 2013,
) -> ExperimentResult:
    """Regenerate Fig. 6(a-c): CVR statistics per strategy and pattern.

    Reports mean/max CVR over used PMs and the fraction of PMs whose CVR
    exceeds rho.  RP is included as a zero-CVR sanity row.
    """
    result = ExperimentResult(
        experiment_id="fig6",
        description="Runtime CVR per placement (local resizing only)",
        params={
            "rho": settings.rho, "n_vms": n_vms, "n_steps": n_steps,
            "p_on": settings.p_on, "p_off": settings.p_off,
            "repetitions": n_repetitions,
        },
        headers=["pattern", "strategy", "mean_CVR", "max_CVR",
                 "frac_PMs_above_rho"],
    )
    strategies = strategies_for_packing(settings)
    rngs = iter(spawn_children(seed, len(PATTERNS) * n_repetitions))
    for pattern in PATTERNS:
        stats = {name: {"mean": [], "max": [], "above": []} for name in strategies}
        for _ in range(n_repetitions):
            rng = next(rngs)
            vms, pms = generate_pattern_instance(
                pattern, n_vms, p_on=settings.p_on, p_off=settings.p_off, seed=rng
            )
            states = ensemble_states(vms, n_steps, start_stationary=True, seed=rng)
            for name, placer in strategies.items():
                placement = placer.place(vms, pms)
                cvr = cvr_per_pm(placement, vms, pms, states)
                used = placement.used_pms()
                used_cvr = cvr[used]
                stats[name]["mean"].append(float(used_cvr.mean()))
                stats[name]["max"].append(float(used_cvr.max()))
                stats[name]["above"].append(
                    float((used_cvr > settings.rho).mean())
                )
        for name in strategies:
            result.add_row(
                PATTERN_LABELS[pattern], name,
                float(np.mean(stats[name]["mean"])),
                float(np.mean(stats[name]["max"])),
                float(np.mean(stats[name]["above"])),
            )
    result.notes.append(
        "expected shape: RP rows ~0 CVR; QUEUE mean CVR <= rho with at most a "
        "few PMs slightly above; RB CVR far above rho"
    )
    return result
