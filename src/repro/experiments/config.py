"""Shared experiment settings (the paper's Section V parameters)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.queuing_ffd import QueuingFFD
from repro.placement.base import Placer
from repro.placement.ffd import ffd_by_base, ffd_by_peak
from repro.placement.rbex import RBExPlacer


@dataclass(frozen=True)
class ExperimentSettings:
    """The paper's evaluation parameters.

    Attributes
    ----------
    rho:
        CVR threshold (paper: 0.01).
    d:
        Max VMs per PM (paper: 16).
    p_on, p_off:
        Switch probabilities (paper: 0.01 / 0.09 — rare, short spikes).
    delta:
        RB-EX reservation fraction (paper: 0.3).
    n_intervals:
        Evaluation-period length in information-update intervals
        (paper: 100 sigma with sigma = 30 s).
    interval_seconds:
        Length of sigma in seconds (for energy accounting only).
    """

    rho: float = 0.01
    d: int = 16
    p_on: float = 0.01
    p_off: float = 0.09
    delta: float = 0.3
    n_intervals: int = 100
    interval_seconds: float = 30.0


DEFAULT_SETTINGS = ExperimentSettings()


def strategies_for_packing(settings: ExperimentSettings = DEFAULT_SETTINGS
                           ) -> dict[str, Placer]:
    """The Fig. 5 strategy set: QUEUE vs RP vs RB."""
    return {
        "QUEUE": QueuingFFD(rho=settings.rho, d=settings.d),
        "RP": ffd_by_peak(max_vms_per_pm=settings.d),
        "RB": ffd_by_base(max_vms_per_pm=settings.d),
    }


def strategies_for_runtime(settings: ExperimentSettings = DEFAULT_SETTINGS
                           ) -> dict[str, Placer]:
    """The Fig. 9/10 strategy set: QUEUE vs RB vs RB-EX."""
    return {
        "QUEUE": QueuingFFD(rho=settings.rho, d=settings.d),
        "RB": ffd_by_base(max_vms_per_pm=settings.d),
        "RB-EX": RBExPlacer(settings.delta, max_vms_per_pm=settings.d),
    }
