"""Table I: experiment settings on workload patterns.

The table itself is data (:data:`repro.workload.patterns.TABLE_I`); this
experiment renders it verbatim and cross-checks the derived VM specs
(demand = users / scale) against the paper's size classes.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentResult
from repro.workload.patterns import TABLE_I, USERS_PER_CLASS, table_i_vms

_LABELS = {"equal": "Rb=Re", "small": "Rb>Re", "large": "Rb<Re"}


def run_table1() -> ExperimentResult:
    """Regenerate Table I row-for-row, with the user-capacity columns."""
    result = ExperimentResult(
        experiment_id="table1",
        description="Experiment settings on workload patterns (paper Table I)",
        headers=["pattern", "R_b", "R_e", "normal_users", "peak_users"],
    )
    for row in TABLE_I:
        result.add_row(
            _LABELS[row.pattern], row.base_class, row.extra_class,
            row.normal_users, row.peak_users,
        )
    # Cross-check: every generated VM's demand maps back to a valid row.
    for pattern in ("equal", "small", "large"):
        vms = table_i_vms(pattern, 50, seed=0)
        valid_bases = {
            USERS_PER_CLASS[r.base_class] / 100.0
            for r in TABLE_I if r.pattern == pattern
        }
        assert all(v.r_base in valid_bases for v in vms), pattern
    result.notes.append("generated VM specs verified against table rows")
    return result
