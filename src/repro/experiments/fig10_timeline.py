"""Figure 10: time-ordered migration events.

One ``R_b = R_e`` run per strategy; the artifact is the cumulative migration
count over the evaluation period.  Expected shapes: QUEUE stays near zero;
RB and RB-EX burst at the start (over-tight initial packing) and RB keeps
climbing throughout (cycle migration); RB-EX either keeps climbing slowly or
flattens after the initial burst.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentResult
from repro.experiments.config import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    strategies_for_runtime,
)
from repro.simulation.scheduler import run_simulation
from repro.utils.rng import SeedLike, as_generator
from repro.workload.patterns import make_pms, table_i_vms


def run_fig10(
    *,
    n_vms: int = 120,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    seed: SeedLike = 2013,
    sample_every: int = 10,
) -> ExperimentResult:
    """Regenerate Fig. 10: cumulative migrations over time per strategy."""
    rng = as_generator(seed)
    vms = table_i_vms("equal", n_vms, p_on=settings.p_on,
                      p_off=settings.p_off, seed=rng)
    pms = make_pms(n_vms, seed=rng)
    sim_seed = int(rng.integers(0, 2**62))
    strategies = strategies_for_runtime(settings)
    curves: dict[str, np.ndarray] = {}
    pm_series: dict[str, np.ndarray] = {}
    for name, placer in strategies.items():
        placement = placer.place(vms, pms)
        sim = run_simulation(vms, pms, placement,
                             n_intervals=settings.n_intervals, seed=sim_seed)
        curves[name] = sim.record.cumulative_migrations
        pm_series[name] = sim.record.pms_used_series
    result = ExperimentResult(
        experiment_id="fig10",
        description="Time-ordered migration events (cumulative, Rb=Re run)",
        params={"n_vms": n_vms, "n_intervals": settings.n_intervals},
        headers=["interval"] + [f"{n}_cum_migrations" for n in strategies]
        + [f"{n}_pms_used" for n in strategies],
    )
    for t in range(0, settings.n_intervals, sample_every):
        result.add_row(
            t,
            *[int(curves[n][t]) for n in strategies],
            *[int(pm_series[n][t]) for n in strategies],
        )
    # final row
    t_end = settings.n_intervals - 1
    result.add_row(
        t_end,
        *[int(curves[n][t_end]) for n in strategies],
        *[int(pm_series[n][t_end]) for n in strategies],
    )
    result.notes.append(
        "expected shape: QUEUE flat near zero; RB/RB-EX initial burst; "
        "RB keeps climbing (cycle migration) while its PM count stays lower"
    )
    return result
