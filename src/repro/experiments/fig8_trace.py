"""Figure 8: sample generated web-server workload trace.

One VM's request-count trace driven by its ON-OFF state, with users sending
requests after exponential think times (mean 1 s, floored at 0.1 s).  The
artifact is a trace whose OFF-level hovers at the normal request rate and
whose spikes jump to the peak rate — we report the trace's summary statistics
and a coarse time series.
"""

from __future__ import annotations


from repro.analysis.report import ExperimentResult
from repro.experiments.config import DEFAULT_SETTINGS, ExperimentSettings
from repro.markov.onoff import OnOffChain
from repro.utils.rng import SeedLike
from repro.workload.stats import index_of_dispersion, peak_to_mean_ratio
from repro.workload.webserver import WebServerWorkload


def run_fig8(
    *,
    normal_users: int = 400,
    peak_users: int = 1200,
    n_intervals: int = 200,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    seed: SeedLike = 2013,
) -> ExperimentResult:
    """Regenerate Fig. 8: one VM's request-count trace and its statistics.

    Rows give a decimated view of the trace (every 10th interval) plus the
    ON/OFF state, so the spike structure is visible in text form.
    """
    chain = OnOffChain(settings.p_on, settings.p_off)
    workload = WebServerWorkload(chain, normal_users, peak_users,
                                 interval=settings.interval_seconds)
    states, counts = workload.generate(n_intervals, seed=seed)
    result = ExperimentResult(
        experiment_id="fig8",
        description="Sample generated web-server workload (requests per interval)",
        params={
            "normal_users": normal_users, "peak_users": peak_users,
            "p_on": settings.p_on, "p_off": settings.p_off,
            "interval_s": settings.interval_seconds,
        },
        headers=["interval", "state", "requests"],
    )
    for t in range(0, n_intervals, 10):
        result.add_row(t, "ON" if states[t] else "OFF", int(counts[t]))
    off_counts = counts[states == 0]
    on_counts = counts[states == 1]
    from repro.workload.webserver import UserPool

    theory = UserPool(normal_users).request_rate * settings.interval_seconds
    result.notes.append(
        f"normal-level mean requests/interval: "
        f"{float(off_counts.mean()) if off_counts.size else float('nan'):.1f} "
        f"(theory ~{theory:.0f} for {normal_users} users)"
    )
    if on_counts.size:
        result.notes.append(
            f"spike-level mean requests/interval: {float(on_counts.mean()):.1f}"
        )
    result.notes.append(
        f"index of dispersion {index_of_dispersion(counts):.1f}, "
        f"peak-to-mean {peak_to_mean_ratio(counts):.2f} "
        f"(>1 confirms burstiness)"
    )
    return result
